package facil_test

import (
	"fmt"

	"facil"
)

// ExampleArena demonstrates the pimalloc flow: allocate a weight matrix
// with a PIM-optimized mapping and observe the MapID the page table
// records.
func ExampleArena() {
	arena, err := facil.NewArena("Apple iPhone 15 Pro")
	if err != nil {
		fmt.Println(err)
		return
	}
	w, err := arena.Pimalloc(4096, 4096, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("MapID=%d partitioned=%v pages=%d\n", w.MapID, w.Partitioned, w.HugePages)
	// Output: MapID=8 partitioned=false pages=16
}

// ExampleArena_dualView shows that the same tensor bytes resolve to
// PIM-friendly locations while the conventional mapping would scatter
// them across channels.
func ExampleArena_dualView() {
	arena, _ := facil.NewArena("Apple iPhone 15 Pro")
	w, _ := arena.Pimalloc(1024, 4096, 2)

	// Matrix rows 0 and 1 land on different processing units.
	a, _ := arena.ElementLocation(w, 0, 0)
	b, _ := arena.ElementLocation(w, 1, 0)
	fmt.Println("different PUs:", a.Bank != b.Bank || a.Rank != b.Rank || a.Channel != b.Channel)

	// Consecutive bursts interleave channels under the conventional view.
	c0, _ := arena.ConventionalLocation(w.VA)
	c1, _ := arena.ConventionalLocation(w.VA + 32)
	fmt.Println("channel interleave:", c0.Channel != c1.Channel)
	// Output:
	// different PUs: true
	// channel interleave: true
}

// ExampleSystem compares the paper's designs on a single query.
func ExampleSystem() {
	sys, err := facil.NewSystem("NVIDIA Jetson AGX Orin 64GB", "")
	if err != nil {
		fmt.Println(err)
		return
	}
	base, _ := sys.TTFT(facil.HybridStatic, 32)
	ours, _ := sys.TTFT(facil.FACIL, 32)
	fmt.Printf("FACIL faster: %v\n", ours < base)
	// Output: FACIL faster: true
}

// ExampleSpeedup shows the helper's definition.
func ExampleSpeedup() {
	fmt.Printf("%.1f\n", facil.Speedup(3.0, 1.5))
	// Output: 2.0
}
