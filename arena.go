package facil

import (
	"fmt"

	"facil/internal/core"
	"facil/internal/mapping"
	"facil/internal/soc"
	"facil/internal/vm"
)

// Arena is the user-facing pimalloc walkthrough: a FACIL memory system
// (internal/core) on one platform. It demonstrates the paper's full
// Fig. 7 flow — allocate a weight matrix with a PIM-optimized MapID
// recorded in the page table, then access the same bytes from the SoC by
// virtual address while the frontend applies the right PA-to-DA mapping
// per page.
type Arena struct {
	sys *core.Facil
}

// DRAMLocation is a fully resolved burst location.
type DRAMLocation struct {
	Channel, Rank, Bank, Row, Column int
}

// String renders the location.
func (d DRAMLocation) String() string {
	return fmt.Sprintf("ch%d rk%d ba%d row%d col%d", d.Channel, d.Rank, d.Bank, d.Row, d.Column)
}

// Tensor is a pimalloc-allocated weight matrix.
type Tensor struct {
	region *vm.Region

	// VA is the virtual base address; the SoC sees the matrix as a
	// plain row-major array starting here.
	VA uint64
	// Rows, Cols, DTypeBytes echo the matrix configuration.
	Rows, Cols, DTypeBytes int
	// Bytes is the padded allocation size.
	Bytes int64
	// MapID is the PA-to-DA mapping recorded in the PTEs.
	MapID int
	// Partitioned reports column-wise partitioning across PUs
	// (rows larger than the per-bank huge-page share).
	Partitioned bool
	// PartitionsPerRow is the partial-sum reduction factor.
	PartitionsPerRow int
	// MappingLayout renders the page-offset bit assignment MSB->LSB.
	MappingLayout string
	// HugePages is the number of 2 MB pages backing the tensor.
	HugePages int
}

// NewArena builds an arena on a platform's memory system (see Platforms).
func NewArena(platform string) (*Arena, error) {
	p, err := soc.ByName(platform)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(p.Spec, core.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	return &Arena{sys: sys}, nil
}

// Pimalloc allocates a rows x cols matrix of dtypeBytes elements with a
// PIM-optimized mapping.
func (a *Arena) Pimalloc(rows, cols, dtypeBytes int) (*Tensor, error) {
	m := mapping.MatrixConfig{Rows: rows, Cols: cols, DTypeBytes: dtypeBytes}
	reg, err := a.sys.Pimalloc(m)
	if err != nil {
		return nil, err
	}
	return &Tensor{
		region:           reg,
		VA:               reg.VA,
		Rows:             rows,
		Cols:             cols,
		DTypeBytes:       dtypeBytes,
		Bytes:            reg.Bytes,
		MapID:            int(reg.MapID),
		Partitioned:      reg.Selection.Partitioned,
		PartitionsPerRow: reg.Selection.PartitionsPerRow,
		MappingLayout:    a.sys.Frontend().Table().Lookup(reg.MapID).String(),
		HugePages:        len(reg.Pages),
	}, nil
}

// Free releases a tensor's huge pages and unmaps it.
func (a *Arena) Free(t *Tensor) error {
	if t.region == nil {
		return fmt.Errorf("facil: tensor already freed")
	}
	if err := a.sys.Free(t.region); err != nil {
		return err
	}
	t.region = nil
	return nil
}

// Translate resolves a virtual address all the way to its DRAM location:
// TLB/page walk yields {physical address, MapID}; the frontend mux applies
// the mapping. This is exactly the access path of paper Fig. 7(b)/(c).
func (a *Arena) Translate(va uint64) (DRAMLocation, error) {
	addr, err := a.sys.Resolve(va)
	if err != nil {
		return DRAMLocation{}, err
	}
	return DRAMLocation{
		Channel: addr.Channel,
		Rank:    addr.Rank,
		Bank:    addr.Bank,
		Row:     addr.Row,
		Column:  addr.Column,
	}, nil
}

// ElementVA returns the virtual address of matrix element (row, col),
// accounting for row padding.
func (a *Arena) ElementVA(t *Tensor, row, col int) (uint64, error) {
	if row < 0 || row >= t.Rows || col < 0 || col >= t.Cols {
		return 0, fmt.Errorf("facil: element (%d,%d) outside %dx%d", row, col, t.Rows, t.Cols)
	}
	m := mapping.MatrixConfig{Rows: t.Rows, Cols: t.Cols, DTypeBytes: t.DTypeBytes}
	return t.VA + uint64(row)*uint64(m.PaddedRowBytes()) + uint64(col)*uint64(t.DTypeBytes), nil
}

// ElementLocation resolves matrix element (row, col) of a tensor.
func (a *Arena) ElementLocation(t *Tensor, row, col int) (DRAMLocation, error) {
	va, err := a.ElementVA(t, row, col)
	if err != nil {
		return DRAMLocation{}, err
	}
	return a.Translate(va)
}

// ConventionalLocation shows where a physical address would land under
// the SoC's default mapping — the contrast that motivates FACIL.
func (a *Arena) ConventionalLocation(va uint64) (DRAMLocation, error) {
	addr, err := a.sys.ResolveConventional(va)
	if err != nil {
		return DRAMLocation{}, err
	}
	return DRAMLocation{
		Channel: addr.Channel,
		Rank:    addr.Rank,
		Bank:    addr.Bank,
		Row:     addr.Row,
		Column:  addr.Column,
	}, nil
}

// MapIDOf returns the MapID the page table records for a virtual address.
func (a *Arena) MapIDOf(va uint64) (int, error) {
	tr, err := a.sys.TLB().Translate(va)
	if err != nil {
		return 0, err
	}
	return int(tr.MapID), nil
}

// SupportedMappings returns the frontend's mux fan-in (PIM mappings plus
// the conventional one).
func (a *Arena) SupportedMappings() int { return a.sys.Frontend().Table().Size() }

// TLBHitRate reports the arena TLB's hit rate so far.
func (a *Arena) TLBHitRate() float64 { return a.sys.TLB().Stats().HitRate() }
