package facil

// One benchmark per paper table and figure (DESIGN.md experiment index),
// plus micro-benchmarks of the core primitives. Each experiment benchmark
// prints its rendered table once, so `go test -bench=.` regenerates every
// row/series the paper reports.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/mapping"
	"facil/internal/mc"
	"facil/internal/pim"
	"facil/internal/soc"
	"facil/internal/vm"
	"facil/internal/workload"
)

// benchLab shares simulation caches across benchmarks.
var (
	benchLabOnce sync.Once
	benchLab     *exp.Lab
)

func lab() *exp.Lab {
	benchLabOnce.Do(func() { benchLab = exp.NewLab(engine.DefaultConfig()) })
	return benchLab
}

var printed sync.Map

// printOnce emits an experiment's tables a single time per process.
func printOnce(name string, tabs []exp.Table) {
	if _, loaded := printed.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Println()
	for _, t := range tabs {
		fmt.Println(t.String())
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	l := lab()
	for i := 0; i < b.N; i++ {
		tabs, err := l.Run(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(id, tabs)
	}
}

// --- Paper artifacts -------------------------------------------------

func BenchmarkFig2aDecodeBreakdown(b *testing.B) { runExperiment(b, "fig2a") }
func BenchmarkFig2bGEMVUtilization(b *testing.B) { runExperiment(b, "fig2b") }
func BenchmarkFig3PIMPotential(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig6RelayoutTTFT(b *testing.B)     { runExperiment(b, "fig6") }
func BenchmarkTable2PlatformSpecs(b *testing.B)  { runExperiment(b, "tab2") }
func BenchmarkTable3GEMMSlowdown(b *testing.B)   { runExperiment(b, "tab3") }
func BenchmarkFig13TTFT(b *testing.B)            { runExperiment(b, "fig13") }
func BenchmarkFig14TTLT(b *testing.B)            { runExperiment(b, "fig14") }
func BenchmarkFig15DatasetTTFT(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16DatasetTTLT(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkMaxMapIDFormula(b *testing.B)      { runExperiment(b, "maxmap") }

// Extensions beyond the paper's figures.
func BenchmarkExtCoscheduling(b *testing.B) { runExperiment(b, "cosched") }
func BenchmarkExtQuantization(b *testing.B) { runExperiment(b, "quant") }
func BenchmarkExtPIMStyle(b *testing.B)     { runExperiment(b, "pimstyle") }
func BenchmarkExtEnergy(b *testing.B)       { runExperiment(b, "energy") }
func BenchmarkExtServing(b *testing.B)      { runExperiment(b, "serving") }

func BenchmarkTable1HugePageLoad(b *testing.B) {
	cfg := exp.DefaultTable1Config()
	cfg.Scale = 16 // 1 GB model in a 4 GB memory per cell; times rescaled
	for i := 0; i < b.N; i++ {
		tab, err := lab().Table1(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("tab1", []exp.Table{tab})
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---------------

func BenchmarkAblationRelayoutPolicy(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		tab, err := l.AblationRelayoutPolicy()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-relayout-policy", []exp.Table{tab})
	}
}

func BenchmarkAblationDynamicThreshold(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		tab, err := l.AblationDynamicThreshold(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-dynamic-threshold", []exp.Table{tab})
	}
}

func BenchmarkAblationRowPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := lab().AblationRowPolicy(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-row-policy", []exp.Table{tab})
	}
}

func BenchmarkAblationSchedulerWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := lab().AblationSchedulerWindow(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-scheduler-window", []exp.Table{tab})
	}
}

func BenchmarkAblationConventionalMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := lab().AblationConventionalMapping(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-conventional-mapping", []exp.Table{tab})
	}
}

func BenchmarkAblationMACInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := lab().AblationMACInterval(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-mac-interval", []exp.Table{tab})
	}
}

// BenchmarkParallelSweep compares serial (-par 1) against the full worker
// pool (-par 0 = GOMAXPROCS) on the two heaviest sweeps. Each iteration
// uses a fresh lab so both settings pay the same cold simulation caches;
// on a multi-core runner the parallel variants should show the speedup
// the DESIGN.md concurrency model promises.
func BenchmarkParallelSweep(b *testing.B) {
	for _, id := range []string{"fig14", "fig15"} {
		for _, par := range []int{1, 0} {
			b.Run(fmt.Sprintf("%s/par=%d", id, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					l := exp.NewLab(engine.DefaultConfig())
					l.SetParallelism(par)
					b.StartTimer()
					tabs, err := l.Run(context.Background(), id)
					if err != nil {
						b.Fatal(err)
					}
					if len(tabs) == 0 {
						b.Fatal("no tables")
					}
				}
			})
		}
	}
}

// --- Core primitive micro-benchmarks ----------------------------------

func BenchmarkMappingTranslate(b *testing.B) {
	g := soc.Jetson.Spec.Geometry
	mcfg := mapping.MemoryConfig{Geometry: g, HugePageBytes: 2 << 20}
	m, err := mapping.BuildPIM(mcfg, mapping.AiMChunk(g), mapping.MaxMapID(mcfg))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		a, _ := m.Translate(uint64(i) * 32)
		sink += a.Bank
	}
	_ = sink
}

func BenchmarkFrontendTranslate(b *testing.B) {
	spec := soc.IPhone.Spec
	mcfg := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mcfg, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		b.Fatal(err)
	}
	f, err := mc.NewFrontend(spec, tab)
	if err != nil {
		b.Fatal(err)
	}
	min, _ := tab.Range()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		id := mapping.ConventionalMapID
		if i%2 == 0 {
			id = min
		}
		a := f.Translate(uint64(i)*32%uint64(spec.Geometry.CapacityBytes()), id)
		sink += a.Row
	}
	_ = sink
}

func BenchmarkDRAMSequentialStream(b *testing.B) {
	spec, err := dram.LPDDR5("bench", 16, 6400, 2, 256<<20)
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]dram.Request, 0, 4096)
	for row := 0; row < 4; row++ {
		for bank := 0; bank < 16; bank++ {
			for col := 0; col < 64; col++ {
				reqs = append(reqs, dram.Request{Addr: dram.Addr{Bank: bank, Row: row, Column: col}})
			}
		}
	}
	b.SetBytes(int64(len(reqs) * 32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// SliceSource enqueues by value, so iterations share the slice.
		if _, err := dram.MeasureStreamFunc(spec, dram.SliceSource(reqs)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPIMGEMV(b *testing.B) {
	spec := soc.IPhone.Spec
	matrix := mapping.MatrixConfig{Rows: 4096, Cols: 4096, DTypeBytes: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pim.NewDevice(spec, pim.DefaultAiM(spec.Geometry))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.GEMV(matrix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuddyAllocFree(b *testing.B) {
	buddy, err := vm.NewBuddy(1<<20, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := buddy.Alloc(vm.HugeOrder)
		if err != nil {
			b.Fatal(err)
		}
		if err := buddy.Free(s, vm.HugeOrder); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLBTranslate(b *testing.B) {
	pt := vm.NewPageTable()
	for i := uint64(0); i < 64; i++ {
		if err := pt.MapHuge(i<<21, i<<21, 7, vm.PTEWrite); err != nil {
			b.Fatal(err)
		}
	}
	tlb, err := vm.NewTLB(16, 4, pt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tlb.Translate(uint64(i%64) << 21); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTTFT(b *testing.B) {
	s, err := NewSystem(soc.Jetson.Name, "")
	if err != nil {
		b.Fatal(err)
	}
	// Warm the caches once so the benchmark measures the query path.
	if _, err := s.TTFT(FACIL, 64); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TTFT(FACIL, 8+i%121); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	spec := workload.AlpacaSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(spec, 100, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
