// Package facil is the public API of the FACIL reproduction: flexible
// DRAM address mapping for SoC-PIM cooperative on-device LLM inference
// (Seo et al., HPCA 2025).
//
// The package wraps the internal simulation stack behind a small surface:
//
//   - Arena: the pimalloc allocation path — select a PIM-optimized MapID
//     for a weight matrix, back it with huge pages, record the MapID in
//     the page-table entries, and translate virtual addresses through the
//     flexible memory-controller frontend.
//   - System: end-to-end inference latency modeling — TTFT and TTLT for
//     the designs the paper compares (SoC-only, hybrid static/dynamic,
//     FACIL, weight duplication) on the paper's four platforms.
//   - RunExperiment: regenerate any table or figure of the paper.
//
// See examples/ for runnable walkthroughs and DESIGN.md for the system
// inventory.
package facil

import (
	"context"

	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/llm"
	"facil/internal/soc"
)

// Design identifies one of the compared execution designs.
type Design int

// The designs of the paper's evaluation.
const (
	SoCOnly Design = iota
	HybridStatic
	HybridDynamic
	FACIL
	WeightDuplication
)

// String names the design.
func (d Design) String() string { return d.kind().String() }

func (d Design) kind() engine.Kind {
	switch d {
	case SoCOnly:
		return engine.SoCOnly
	case HybridStatic:
		return engine.HybridStatic
	case HybridDynamic:
		return engine.HybridDynamic
	case FACIL:
		return engine.FACIL
	case WeightDuplication:
		return engine.WeightDuplication
	default:
		return engine.Kind(-1)
	}
}

// Designs lists every design in presentation order.
func Designs() []Design {
	return []Design{SoCOnly, HybridStatic, HybridDynamic, FACIL, WeightDuplication}
}

// Platforms lists the evaluated platform names (paper Table II).
func Platforms() []string {
	var out []string
	for _, p := range soc.All() {
		out = append(out, p.Name)
	}
	return out
}

// Models lists the available LLM preset names.
func Models() []string {
	return []string{"Llama3-8B", "OPT-6.7B", "Phi-1.5", "GPT-J-6B"}
}

// System models one platform running one LLM under every design.
type System struct {
	inner *engine.System
}

// NewSystem builds a system for a platform name (see Platforms) and model
// name (see Models). An empty model selects the paper's assignment for
// the platform.
func NewSystem(platform, model string) (*System, error) {
	p, err := soc.ByName(platform)
	if err != nil {
		return nil, err
	}
	var m llm.Model
	if model == "" {
		m = exp.PlatformModel(p)
	} else {
		if m, err = llm.ByName(model); err != nil {
			return nil, err
		}
	}
	s, err := engine.NewSystem(p, m, engine.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &System{inner: s}, nil
}

// PlatformName returns the platform.
func (s *System) PlatformName() string { return s.inner.Platform.Name }

// ModelName returns the LLM.
func (s *System) ModelName() string { return s.inner.Model.Name }

// TTFT returns the time-to-first-token in seconds for a design at the
// given prefill (input) length. HybridDynamic and FACIL route short
// prefills to PIM automatically.
func (s *System) TTFT(d Design, prefill int) (float64, error) {
	return s.inner.TTFT(d.kind(), prefill)
}

// TTLT returns the time-to-last-token in seconds for a (prefill, decode)
// query.
func (s *System) TTLT(d Design, prefill, decode int) (float64, error) {
	return s.inner.TTLT(d.kind(), prefill, decode)
}

// DecodeStep returns one decode-step latency at a context length.
func (s *System) DecodeStep(d Design, ctx int) (float64, error) {
	return s.inner.DecodeStepSeconds(d.kind(), ctx)
}

// PrefillThreshold returns the profiled prefill length at which the SoC
// route overtakes PIM for a design.
func (s *System) PrefillThreshold(d Design) (int, error) {
	return s.inner.PrefillThreshold(d.kind())
}

// WeightFootprint returns the bytes of weight storage a design holds.
func (s *System) WeightFootprint(d Design) int64 {
	return s.inner.WeightFootprint(d.kind())
}

// Speedup is baseline/t (0 if t <= 0).
func Speedup(baseline, t float64) float64 { return engine.Speedup(baseline, t) }

// RunExperiment regenerates a paper table/figure by its identifier (see
// ExperimentIDs) and returns the rendered text tables. It runs serially;
// use RunExperimentContext for cancellation and parallel sweeps.
func RunExperiment(id string) ([]string, error) {
	return RunExperimentContext(context.Background(), id, 1)
}

// RunExperimentContext is RunExperiment with cancellation and a sweep
// worker bound: experiments fan their points out over up to par workers
// (0 = GOMAXPROCS, 1 = serial). Tables are byte-identical at any par.
func RunExperimentContext(ctx context.Context, id string, par int) ([]string, error) {
	lab := exp.NewLab(engine.DefaultConfig())
	lab.SetParallelism(par)
	tabs, err := lab.Run(ctx, id)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(tabs))
	for i, t := range tabs {
		out[i] = t.String()
	}
	return out, nil
}

// ExperimentIDs lists the regenerable experiments in DESIGN.md order.
func ExperimentIDs() []string {
	return append([]string(nil), exp.AllIDs...)
}

// Version identifies the reproduction release.
const Version = "1.0.0"
