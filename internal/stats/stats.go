// Package stats provides the small statistical helpers the experiment
// harness uses: geometric means, percentiles and histogram summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of positive values. Non-positive
// values make the result 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logs float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logs += math.Log(x)
	}
	return math.Exp(logs / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Min and Max return extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the usual descriptive statistics.
type Summary struct {
	N             int
	Mean, Geomean float64
	Min, P50, P90 float64
	Max           float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:       len(xs),
		Mean:    Mean(xs),
		Geomean: Geomean(xs),
		Min:     Min(xs),
		P50:     Percentile(xs, 50),
		P90:     Percentile(xs, 90),
		Max:     Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f geomean=%.3f min=%.3f p50=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.Geomean, s.Min, s.P50, s.P90, s.Max)
}

// Histogram counts values into equal-width bins over [lo, hi).
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		if x < lo || x >= hi {
			continue
		}
		counts[int((x-lo)/w)]++
	}
	return counts
}
