package stats

import (
	"math"
	"testing"
)

func TestTimeHistMeanMaxTotal(t *testing.T) {
	var h TimeHist
	if h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Errorf("empty hist not zero: %s", h.String())
	}
	h.Add(2, 1)  // depth 2 for 1s
	h.Add(4, 3)  // depth 4 for 3s
	h.Add(0, -1) // ignored
	h.Add(9, 0)  // ignored
	if h.TotalTime() != 4 {
		t.Errorf("total = %g", h.TotalTime())
	}
	if want := (2*1 + 4*3) / 4.0; math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", h.Mean(), want)
	}
	if h.Max() != 4 {
		t.Errorf("max = %g", h.Max())
	}
}

func TestTimeHistPercentile(t *testing.T) {
	var h TimeHist
	// Signal sits at 1 for 9s and spikes to 100 for 1s: the p50 must see
	// the long-held level, the p95+ the spike.
	h.Add(100, 1)
	h.Add(1, 9)
	if got := h.Percentile(50); got != 1 {
		t.Errorf("p50 = %g, want 1 (time-weighted)", got)
	}
	if got := h.Percentile(95); got != 100 {
		t.Errorf("p95 = %g, want 100", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
}

func TestTimeHistBins(t *testing.T) {
	var h TimeHist
	h.Add(0.5, 2)
	h.Add(1.5, 1)
	h.Add(9.5, 4)
	h.Add(10, 7) // out of [0, 10)
	bins := h.Bins(0, 10, 10)
	if bins[0] != 2 || bins[1] != 1 || bins[9] != 4 {
		t.Errorf("bins = %v", bins)
	}
	if got := h.Bins(0, 0, 5); len(got) != 5 {
		t.Errorf("degenerate range bins = %v", got)
	}
}

func TestQuantilesOf(t *testing.T) {
	q := QuantilesOf(nil)
	if !q.IsZero() || !q.Finite() {
		t.Errorf("empty quantiles = %+v", q)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	q = QuantilesOf(xs)
	if q.Mean != 50.5 {
		t.Errorf("mean = %g", q.Mean)
	}
	if q.P50 >= q.P95 || q.P95 >= q.P99 {
		t.Errorf("quantiles unordered: %+v", q)
	}
	if !q.Finite() || q.IsZero() {
		t.Errorf("quantiles flags: %+v", q)
	}
}
