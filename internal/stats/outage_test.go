package stats

import "testing"

func TestOutages(t *testing.T) {
	var o Outages
	if o.MTTR() != 0 || o.Availability(10) != 1 {
		t.Fatalf("zero tracker: MTTR=%g availability=%g", o.MTTR(), o.Availability(10))
	}
	o.Record(2)
	o.Record(4)
	o.Record(0)  // ignored
	o.Record(-1) // ignored
	if o.Count != 2 || o.TotalDown != 6 {
		t.Fatalf("tracker = %+v, want Count 2 TotalDown 6", o)
	}
	if got := o.MTTR(); got != 3 {
		t.Fatalf("MTTR = %g, want 3", got)
	}
	if got := o.Availability(12); got != 0.5 {
		t.Fatalf("Availability(12) = %g, want 0.5", got)
	}
	if got := o.Availability(3); got != 0 {
		t.Fatalf("Availability(3) = %g, want clamp to 0", got)
	}
	if got := o.Availability(0); got != 1 {
		t.Fatalf("Availability(0) = %g, want 1", got)
	}
	var sum Outages
	sum.Merge(o)
	sum.Merge(Outages{Count: 1, TotalDown: 2})
	if sum.Count != 3 || sum.TotalDown != 8 {
		t.Fatalf("merged = %+v", sum)
	}
}
