package stats

import (
	"fmt"
	"math"
	"sort"
)

// TimeHist accumulates a piecewise-constant signal (queue depth, busy
// lane count) weighted by how long each value was held, so summaries
// reflect *time at a level* rather than *number of transitions*. The
// event-driven serving simulator feeds it one (value, duration) pair per
// inter-event interval.
//
// The common signals are small non-negative integers (depths, lane
// counts), so their weight accumulates in a dense per-level array:
// memory stays O(max level) instead of O(events), and once the array has
// grown to the signal's range Add allocates nothing — the serving loop's
// steady state depends on that. Non-integer or out-of-range values spill
// into a sample list with the original behavior.
type TimeHist struct {
	dense   []float64 // dense[v] = time spent at integer level v
	values  []float64 // spill samples: non-integer or huge levels
	weights []float64
	total   float64
	max     float64
	sum     float64 // integral of value*dt
}

// timeHistDenseMax bounds the dense array so a wild sample cannot ask
// for gigabytes; levels at or beyond it spill.
const timeHistDenseMax = 1 << 16

// Add records that the signal held value for duration seconds. Zero or
// negative durations are ignored (zero-width intervals carry no weight).
func (h *TimeHist) Add(value, duration float64) {
	if duration <= 0 {
		return
	}
	h.total += duration
	h.sum += value * duration
	if value > h.max {
		h.max = value
	}
	if iv := int(value); float64(iv) == value && iv >= 0 && iv < timeHistDenseMax {
		for iv >= len(h.dense) {
			h.dense = append(h.dense, 0)
		}
		h.dense[iv] += duration
		return
	}
	h.values = append(h.values, value)
	h.weights = append(h.weights, duration)
}

// TotalTime returns the summed duration.
func (h *TimeHist) TotalTime() float64 { return h.total }

// Mean returns the time-weighted mean (0 when nothing was recorded).
func (h *TimeHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / h.total
}

// Max returns the largest recorded value (0 when empty).
func (h *TimeHist) Max() float64 { return h.max }

// Percentile returns the value below which the signal spent p percent of
// the time (time-weighted percentile, 0 <= p <= 100). The walk merges
// the dense levels (already in value order) with the sorted spill
// samples.
func (h *TimeHist) Percentile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	idx := make([]int, len(h.values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.values[idx[a]] < h.values[idx[b]] })
	target := p / 100 * h.total
	var acc float64
	si := 0
	lastV := math.Inf(-1)
	for v, w := range h.dense {
		if w == 0 {
			continue
		}
		fv := float64(v)
		for si < len(idx) && h.values[idx[si]] < fv {
			acc += h.weights[idx[si]]
			if acc >= target {
				return h.values[idx[si]]
			}
			si++
		}
		acc += w
		if acc >= target {
			return fv
		}
		lastV = fv
	}
	for si < len(idx) {
		acc += h.weights[idx[si]]
		if acc >= target {
			return h.values[idx[si]]
		}
		si++
	}
	if len(idx) > 0 && h.values[idx[len(idx)-1]] > lastV {
		return h.values[idx[len(idx)-1]]
	}
	return lastV
}

// Bins histograms the time spent at each level into `bins` equal-width
// buckets over [lo, hi); out-of-range time is dropped, mirroring
// Histogram's convention.
func (h *TimeHist) Bins(lo, hi float64, bins int) []float64 {
	out := make([]float64, bins)
	if bins == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(bins)
	for v, wt := range h.dense {
		fv := float64(v)
		if wt == 0 || fv < lo || fv >= hi {
			continue
		}
		out[int((fv-lo)/w)] += wt
	}
	for i, v := range h.values {
		if v < lo || v >= hi {
			continue
		}
		out[int((v-lo)/w)] += h.weights[i]
	}
	return out
}

// String renders a compact summary.
func (h *TimeHist) String() string {
	return fmt.Sprintf("time=%.3fs mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(95), h.max)
}

// Quantiles bundles the common percentiles of a plain sample slice; a
// small convenience for the serving metrics.
type Quantiles struct {
	Mean, P50, P95, P99 float64
}

// QuantilesOf summarizes xs (zeros for empty input).
func QuantilesOf(xs []float64) Quantiles {
	return Quantiles{
		Mean: Mean(xs),
		P50:  Percentile(xs, 50),
		P95:  Percentile(xs, 95),
		P99:  Percentile(xs, 99),
	}
}

// IsZero reports whether no samples contributed.
func (q Quantiles) IsZero() bool {
	return q.Mean == 0 && q.P50 == 0 && q.P95 == 0 && q.P99 == 0
}

// Finite reports whether every field is a finite number — a guard the
// simulator's metrics tests use.
func (q Quantiles) Finite() bool {
	for _, v := range []float64{q.Mean, q.P50, q.P95, q.P99} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
