package stats

import (
	"fmt"
	"math"
	"sort"
)

// TimeHist accumulates a piecewise-constant signal (queue depth, busy
// lane count) weighted by how long each value was held, so summaries
// reflect *time at a level* rather than *number of transitions*. The
// event-driven serving simulator feeds it one (value, duration) pair per
// inter-event interval.
type TimeHist struct {
	values  []float64
	weights []float64
	total   float64
	max     float64
	sum     float64 // integral of value*dt
}

// Add records that the signal held value for duration seconds. Zero or
// negative durations are ignored (zero-width intervals carry no weight).
func (h *TimeHist) Add(value, duration float64) {
	if duration <= 0 {
		return
	}
	h.values = append(h.values, value)
	h.weights = append(h.weights, duration)
	h.total += duration
	h.sum += value * duration
	if value > h.max {
		h.max = value
	}
}

// TotalTime returns the summed duration.
func (h *TimeHist) TotalTime() float64 { return h.total }

// Mean returns the time-weighted mean (0 when nothing was recorded).
func (h *TimeHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / h.total
}

// Max returns the largest recorded value (0 when empty).
func (h *TimeHist) Max() float64 { return h.max }

// Percentile returns the value below which the signal spent p percent of
// the time (time-weighted percentile, 0 <= p <= 100).
func (h *TimeHist) Percentile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	idx := make([]int, len(h.values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.values[idx[a]] < h.values[idx[b]] })
	target := p / 100 * h.total
	var acc float64
	for _, i := range idx {
		acc += h.weights[i]
		if acc >= target {
			return h.values[i]
		}
	}
	return h.values[idx[len(idx)-1]]
}

// Bins histograms the time spent at each level into `bins` equal-width
// buckets over [lo, hi); out-of-range time is dropped, mirroring
// Histogram's convention.
func (h *TimeHist) Bins(lo, hi float64, bins int) []float64 {
	out := make([]float64, bins)
	if bins == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(bins)
	for i, v := range h.values {
		if v < lo || v >= hi {
			continue
		}
		out[int((v-lo)/w)] += h.weights[i]
	}
	return out
}

// String renders a compact summary.
func (h *TimeHist) String() string {
	return fmt.Sprintf("time=%.3fs mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(95), h.max)
}

// Quantiles bundles the common percentiles of a plain sample slice; a
// small convenience for the serving metrics.
type Quantiles struct {
	Mean, P50, P95, P99 float64
}

// QuantilesOf summarizes xs (zeros for empty input).
func QuantilesOf(xs []float64) Quantiles {
	return Quantiles{
		Mean: Mean(xs),
		P50:  Percentile(xs, 50),
		P95:  Percentile(xs, 95),
		P99:  Percentile(xs, 99),
	}
}

// IsZero reports whether no samples contributed.
func (q Quantiles) IsZero() bool {
	return q.Mean == 0 && q.P50 == 0 && q.P95 == 0 && q.P99 == 0
}

// Finite reports whether every field is a finite number — a guard the
// simulator's metrics tests use.
func (q Quantiles) Finite() bool {
	for _, v := range []float64{q.Mean, q.P50, q.P95, q.P99} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
