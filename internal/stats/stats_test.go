package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanGeomean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean = %g", got)
	}
	if Mean(nil) != 0 || Geomean(nil) != 0 {
		t.Error("empty inputs must yield 0")
	}
	if Geomean([]float64{1, -1}) != 0 {
		t.Error("non-positive input must yield 0")
	}
}

func TestGeomeanLeqMeanProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		xs := make([]float64, len(seeds))
		for i, s := range seeds {
			xs[i] = float64(s)/16 + 0.1
		}
		return Geomean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %g", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("P50 = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extrema must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1.5, 2.5, 9.9, 10, -1}, 0, 10, 10)
	if h[0] != 2 || h[1] != 1 || h[2] != 1 || h[9] != 1 {
		t.Errorf("Histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 { // 10 and -1 excluded
		t.Errorf("histogram counted %d values, want 5", total)
	}
	if got := Histogram(nil, 0, 0, 0); len(got) != 0 {
		t.Errorf("degenerate histogram = %v", got)
	}
}
