package stats

// Outages accumulates down-interval observations of a repairable
// resource (e.g. one replica's PIM decode lane): how often it went
// down, for how long in total, and the derived mean-time-to-repair and
// availability. The zero value is ready to use.
type Outages struct {
	// Count is the number of recorded outages.
	Count int
	// TotalDown is the summed outage duration in seconds.
	TotalDown float64
}

// Record adds one outage of the given duration (non-positive durations
// are ignored — an outage that never started has nothing to repair).
func (o *Outages) Record(dur float64) {
	if dur <= 0 {
		return
	}
	o.Count++
	o.TotalDown += dur
}

// Merge folds another tracker into o (merge-on-join, like the DRAM
// channel counters).
func (o *Outages) Merge(other Outages) {
	o.Count += other.Count
	o.TotalDown += other.TotalDown
}

// MTTR returns the mean outage duration, or 0 with no observations.
func (o Outages) MTTR() float64 {
	if o.Count == 0 {
		return 0
	}
	return o.TotalDown / float64(o.Count)
}

// Availability returns the up-fraction over a span of resource-seconds,
// clamped to [0, 1]; a non-positive span reports full availability.
func (o Outages) Availability(span float64) float64 {
	if span <= 0 {
		return 1
	}
	a := 1 - o.TotalDown/span
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}
