// Package tune implements the mapping auto-tuner: a design-space
// exploration (DSE) engine over generalized PA-to-DA mappings.
//
// The paper's select_mapping hand-picks from the fixed MapID family —
// mappings that keep the huge-page offset bits in the canonical
// column/row/PU order and only slide the PU-changing bits up and down.
// This package searches a strict superset of that family: arbitrary
// permutations of the huge-page offset bits (above the byte-within-burst
// offset) plus XOR bank/channel hashing terms over internal/addr's
// HashedMapping, constrained just enough to stay PIM-usable (the chunk
// column bits stay contiguous at the bottom and every column bit sits
// below every PU-changing bit, so lock-step all-bank execution still
// sees whole chunks).
//
// The engine is a two-tier evaluator. Tier one captures one canonical
// burst-address trace per workload (a GEMV decode scan plus a GEMM
// prefill tile walk, see Trace) and scores each candidate with a
// lightweight replay cost model (Evaluator): a per-bank open-row /
// activation / conflict estimator with no scheduler and no event loop,
// value-typed, zero heap allocations per candidate in steady state.
// Candidates are deduplicated through parallel.Flight and fanned out
// with parallel.Sweep. Tier two re-validates only the surviving Pareto
// front (estimated latency vs. re-layout cost) with the full
// bit-identical dram.Channel scheduler (SimScore). Every candidate must
// pass the PA-DA bijection property check (VerifyBijection) before it
// is scored.
package tune

import (
	"fmt"

	"facil/internal/mapping"
)

// Space describes the searchable design space for one platform: the
// memory configuration (geometry + huge page) and PIM chunk shape, plus
// the derived bit-budget every Genome must satisfy. A Space is immutable
// and safe for concurrent use.
type Space struct {
	// MC is the memory-system configuration the space is built for.
	MC mapping.MemoryConfig
	// Chunk is the PIM chunk configuration constraining valid layouts.
	Chunk mapping.ChunkConfig

	pageBits    int // huge-page offset bits above the burst offset
	chunkPrefix int // column bits pinned to the bottom (chunk column dim)
	colBits     int
	bankBits    int
	rankBits    int
	chBits      int
	puBits      int // bankBits + rankBits + chBits
	pageRowBits int // row bits placed inside the page offset
}

// NewSpace validates the configuration and derives the bit budget.
func NewSpace(mc mapping.MemoryConfig, chunk mapping.ChunkConfig) (*Space, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	g := mc.Geometry
	if err := chunk.Validate(g); err != nil {
		return nil, err
	}
	s := &Space{
		MC:       mc,
		Chunk:    chunk,
		colBits:  g.ColumnBits(),
		bankBits: g.BankBits(),
		rankBits: g.RankBits(),
		chBits:   g.ChannelBits(),
	}
	s.puBits = s.bankBits + s.rankBits + s.chBits
	s.pageBits = mc.HugePageBits() - g.OffsetBits()
	s.pageRowBits = s.pageBits - s.colBits - s.puBits
	s.chunkPrefix = log2(chunk.ColBytes / g.TransferBytes)
	if s.pageRowBits < 0 {
		return nil, fmt.Errorf("tune: huge page (%d bits above burst) cannot hold column (%d) + PU (%d) bits",
			s.pageBits, s.colBits, s.puBits)
	}
	if s.pageRowBits > g.RowBits() {
		return nil, fmt.Errorf("tune: geometry has %d row bits, page layout needs %d", g.RowBits(), s.pageRowBits)
	}
	// The estimator packs the per-page-bit DA contribution into a uint32
	// and splits the page offset into two 8/(pageBits-8)-bit LUT halves.
	if s.pageBits > 24 {
		return nil, fmt.Errorf("tune: page offset of %d bits exceeds the 24-bit estimator budget", s.pageBits)
	}
	if s.colBits+s.puBits+s.pageRowBits > 32 {
		return nil, fmt.Errorf("tune: packed DA of %d bits exceeds 32", s.colBits+s.puBits+s.pageRowBits)
	}
	return s, nil
}

// PageBits returns the number of searchable huge-page offset bits (above
// the byte-within-burst offset).
func (s *Space) PageBits() int { return s.pageBits }

// PageRowBits returns how many DRAM row bits live inside the page offset
// — the only legal XOR hash sources, since the mapping must remain a
// pure function of the page offset for per-page PTE selection.
func (s *Space) PageRowBits() int { return s.pageRowBits }

// ChunkPrefixBits returns the number of low column bits pinned to the
// bottom of the page offset (the chunk column dimension).
func (s *Space) ChunkPrefixBits() int { return s.chunkPrefix }

// log2 returns the floor base-2 logarithm of v (0 for v < 1); inputs are
// validated powers of two.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
