package tune

import (
	"fmt"
	"sort"
	"strings"

	"facil/internal/addr"
	"facil/internal/mapping"
)

// maxXORPairs bounds a genome's hash-term list; beyond a handful the
// terms only relabel banks without changing conflict structure.
const maxXORPairs = 8

// Genome encodes one generalized mapping candidate: an assignment of
// every huge-page offset bit (LSB to MSB, above the byte-within-burst
// offset) to a DRAM coordinate, plus optional XOR pairs folding
// page-local row bits into bank or channel index bits. Bits of the same
// coordinate keep their LSB-to-MSB order (reordering bits within one
// field only relabels indices bijectively and cannot change timing), so
// a genome is a canonical representative of its mapping.
type Genome struct {
	// Fields assigns each page-offset bit a coordinate; legal kinds are
	// FieldColumn, FieldBank, FieldRank, FieldChannel and FieldRow.
	Fields []addr.FieldKind
	// XOR lists the hash terms (target bank/channel bit ^= row bit); row
	// sources must be page-local (RowBit < Space.PageRowBits).
	XOR []addr.XORPair
}

// Clone returns a deep copy safe to mutate.
func (g Genome) Clone() Genome {
	return Genome{
		Fields: append([]addr.FieldKind(nil), g.Fields...),
		XOR:    append([]addr.XORPair(nil), g.XOR...),
	}
}

// fieldCode returns the one-letter key code for a page-bit coordinate.
func fieldCode(k addr.FieldKind) byte {
	switch k {
	case addr.FieldColumn:
		return 'c'
	case addr.FieldBank:
		return 'b'
	case addr.FieldRank:
		return 'k'
	case addr.FieldChannel:
		return 'h'
	case addr.FieldRow:
		return 'r'
	default:
		return '?'
	}
}

// Key returns a canonical string identity for the genome (XOR pairs are
// order-insensitive), used for memoization and deduplication.
func (g Genome) Key() string {
	var sb strings.Builder
	sb.Grow(len(g.Fields) + 8*len(g.XOR))
	for _, k := range g.Fields {
		sb.WriteByte(fieldCode(k))
	}
	if len(g.XOR) > 0 {
		pairs := append([]addr.XORPair(nil), g.XOR...)
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Target != pairs[j].Target {
				return pairs[i].Target < pairs[j].Target
			}
			if pairs[i].TargetBit != pairs[j].TargetBit {
				return pairs[i].TargetBit < pairs[j].TargetBit
			}
			return pairs[i].RowBit < pairs[j].RowBit
		})
		for _, p := range pairs {
			fmt.Fprintf(&sb, "|%c%d^%d", fieldCode(p.Target), p.TargetBit, p.RowBit)
		}
	}
	return sb.String()
}

// Describe renders the genome's page layout MSB-to-LSB with merged runs,
// e.g. "row[1]:channel[4]:rank[1]:bank[4]:column[6]+xor(bank0^row0)".
func (g Genome) Describe() string {
	var parts []string
	for i := len(g.Fields) - 1; i >= 0; {
		k := g.Fields[i]
		n := 1
		for i-n >= 0 && g.Fields[i-n] == k {
			n++
		}
		parts = append(parts, fmt.Sprintf("%s[%d]", k, n))
		i -= n
	}
	s := strings.Join(parts, ":")
	if len(g.XOR) > 0 {
		var xs []string
		for _, p := range g.XOR {
			xs = append(xs, fmt.Sprintf("%s%d^row%d", p.Target, p.TargetBit, p.RowBit))
		}
		s += "+xor(" + strings.Join(xs, ",") + ")"
	}
	return s
}

// Validate checks that the genome is a legal, PIM-usable member of the
// space: exact per-coordinate bit counts, the chunk column bits pinned
// at the bottom, every column bit below every PU-changing bit, and XOR
// terms sourced only from page-local row bits. It performs no heap
// allocation on the success path, so the estimator can re-check cheaply.
func (s *Space) Validate(g Genome) error {
	if len(g.Fields) != s.pageBits {
		return fmt.Errorf("tune: genome has %d page bits, space needs %d", len(g.Fields), s.pageBits)
	}
	var counts [6]int
	lastCol, firstPU := -1, len(g.Fields)
	for i, k := range g.Fields {
		switch k {
		case addr.FieldColumn:
			lastCol = i
		case addr.FieldBank, addr.FieldRank, addr.FieldChannel:
			if i < firstPU {
				firstPU = i
			}
		case addr.FieldRow:
		default:
			return fmt.Errorf("tune: page bit %d assigned illegal coordinate %v", i, k)
		}
		counts[k]++
	}
	if counts[addr.FieldColumn] != s.colBits {
		return fmt.Errorf("tune: genome has %d column bits, geometry needs %d", counts[addr.FieldColumn], s.colBits)
	}
	if counts[addr.FieldBank] != s.bankBits {
		return fmt.Errorf("tune: genome has %d bank bits, geometry needs %d", counts[addr.FieldBank], s.bankBits)
	}
	if counts[addr.FieldRank] != s.rankBits {
		return fmt.Errorf("tune: genome has %d rank bits, geometry needs %d", counts[addr.FieldRank], s.rankBits)
	}
	if counts[addr.FieldChannel] != s.chBits {
		return fmt.Errorf("tune: genome has %d channel bits, geometry needs %d", counts[addr.FieldChannel], s.chBits)
	}
	if counts[addr.FieldRow] != s.pageRowBits {
		return fmt.Errorf("tune: genome has %d page row bits, layout needs %d", counts[addr.FieldRow], s.pageRowBits)
	}
	for i := 0; i < s.chunkPrefix; i++ {
		if g.Fields[i] != addr.FieldColumn {
			return fmt.Errorf("tune: page bit %d must stay a chunk column bit, got %v", i, g.Fields[i])
		}
	}
	if lastCol > firstPU {
		return fmt.Errorf("tune: column bit at %d above PU-changing bit at %d breaks chunk placement", lastCol, firstPU)
	}
	if len(g.XOR) > maxXORPairs {
		return fmt.Errorf("tune: %d XOR pairs exceed the limit of %d", len(g.XOR), maxXORPairs)
	}
	for i, p := range g.XOR {
		switch p.Target {
		case addr.FieldBank:
			if p.TargetBit < 0 || p.TargetBit >= s.bankBits {
				return fmt.Errorf("tune: XOR target bank bit %d out of range", p.TargetBit)
			}
		case addr.FieldChannel:
			if p.TargetBit < 0 || p.TargetBit >= s.chBits {
				return fmt.Errorf("tune: XOR target channel bit %d out of range", p.TargetBit)
			}
		default:
			return fmt.Errorf("tune: XOR target %v not supported", p.Target)
		}
		if p.RowBit < 0 || p.RowBit >= s.pageRowBits {
			return fmt.Errorf("tune: XOR row source %d is not page-local (have %d page row bits)", p.RowBit, s.pageRowBits)
		}
		for j := 0; j < i; j++ {
			if g.XOR[j] == p {
				return fmt.Errorf("tune: duplicate XOR pair %s%d^row%d cancels itself", p.Target, p.TargetBit, p.RowBit)
			}
		}
	}
	return nil
}

// Build materializes the genome as a concrete address mapping: the page
// bits become one-bit segments over addr.New, physical-address bits
// above the huge page supply the remaining row MSBs, and the XOR pairs
// wrap the result in an addr.HashedMapping. The built mapping translates
// bit-identically to what the estimator models.
func (s *Space) Build(g Genome) (*addr.HashedMapping, error) {
	if err := s.Validate(g); err != nil {
		return nil, err
	}
	geo := s.MC.Geometry
	segs := make([]addr.Segment, 0, len(g.Fields)+2)
	segs = append(segs, addr.Segment{Kind: addr.FieldOffset, Bits: geo.OffsetBits()})
	for _, k := range g.Fields {
		segs = append(segs, addr.Segment{Kind: k, Bits: 1})
	}
	segs = append(segs, addr.Segment{Kind: addr.FieldRow, Bits: geo.RowBits() - s.pageRowBits})
	base, err := addr.New(geo, "tuned "+g.Describe(), segs)
	if err != nil {
		return nil, err
	}
	return addr.WithXOR(base, g.XOR)
}

// FromMapping encodes an existing page-permutation mapping (any MapID
// family member) as a genome, or errors if the mapping permutes bits
// outside the huge page.
func (s *Space) FromMapping(m *addr.Mapping) (Genome, error) {
	geo := s.MC.Geometry
	offBits := geo.OffsetBits()
	fields := make([]addr.FieldKind, s.pageBits)
	pos := 0
	for _, seg := range m.Segments() {
		for b := 0; b < seg.Bits; b++ {
			switch {
			case pos < offBits:
				if seg.Kind != addr.FieldOffset {
					return Genome{}, fmt.Errorf("tune: mapping %q places %v in the burst offset", m.Name(), seg.Kind)
				}
			case pos < offBits+s.pageBits:
				fields[pos-offBits] = seg.Kind
			default:
				if seg.Kind != addr.FieldRow {
					return Genome{}, fmt.Errorf("tune: mapping %q places %v above the huge page", m.Name(), seg.Kind)
				}
			}
			pos++
		}
	}
	g := Genome{Fields: fields}
	return g, s.Validate(g)
}

// Seeds returns the fixed MapID family encoded as genomes — the search's
// starting population — together with the family IDs, index-aligned.
func (s *Space) Seeds() ([]Genome, []mapping.MapID, error) {
	tab, err := mapping.NewTable(s.MC, s.Chunk)
	if err != nil {
		return nil, nil, err
	}
	min, max := tab.Range()
	genomes := make([]Genome, 0, int(max-min)+1)
	ids := make([]mapping.MapID, 0, int(max-min)+1)
	for id := min; id <= max; id++ {
		g, err := s.FromMapping(tab.Lookup(id))
		if err != nil {
			return nil, nil, err
		}
		genomes = append(genomes, g)
		ids = append(ids, id)
	}
	return genomes, ids, nil
}
