package tune

import (
	"context"
	"testing"

	"facil/internal/dram"
)

func searchConfig(t *testing.T, workers int) Config {
	t.Helper()
	spec := dram.JetsonOrinLPDDR5
	tr, sel := testTrace(t, spec, 1<<19)
	return Config{
		Spec:      spec,
		Trace:     tr,
		Baseline:  sel.ID,
		Budget:    128,
		Seed:      7,
		Workers:   workers,
		EstWindow: 4096,
	}
}

// TestSearchDeterministic pins the sweep determinism contract for the
// tuner: one worker and eight workers produce identical results.
func TestSearchDeterministic(t *testing.T) {
	r1, err := Search(context.Background(), searchConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Search(context.Background(), searchConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Evaluated != r8.Evaluated {
		t.Fatalf("evaluated %d at par1, %d at par8", r1.Evaluated, r8.Evaluated)
	}
	if len(r1.Front) != len(r8.Front) {
		t.Fatalf("front size %d at par1, %d at par8", len(r1.Front), len(r8.Front))
	}
	for i := range r1.Front {
		if r1.Front[i].Key != r8.Front[i].Key || r1.Front[i].Cost != r8.Front[i].Cost {
			t.Fatalf("front[%d] differs: par1 %s %+v, par8 %s %+v",
				i, r1.Front[i].Key, r1.Front[i].Cost, r8.Front[i].Key, r8.Front[i].Cost)
		}
	}
}

// TestSearchInvariants checks the structural contract of a search
// result: the budget is respected, every front member is a valid,
// bijective genome, the front is mutually non-dominated and sorted, and
// it is at least as good as every fixed family member on the estimate
// axis (the family seeds the population, so the front can only improve
// on it).
func TestSearchInvariants(t *testing.T) {
	cfg := searchConfig(t, 0)
	res, err := Search(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > cfg.Budget {
		t.Fatalf("evaluated %d candidates, budget was %d", res.Evaluated, cfg.Budget)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	if len(res.Fixed) == 0 {
		t.Fatal("missing fixed-family scores")
	}
	for i, c := range res.Front {
		if err := res.Space.Validate(c.Genome); err != nil {
			t.Fatalf("front[%d] invalid: %v", i, err)
		}
		m, err := res.Space.Build(c.Genome)
		if err != nil {
			t.Fatalf("front[%d] does not build: %v", i, err)
		}
		if err := VerifyBijection(m, cfg.Spec.Geometry, 64, 1); err != nil {
			t.Fatalf("front[%d] fails bijection: %v", i, err)
		}
		if i > 0 && c.Cost.EstCycles < res.Front[i-1].Cost.EstCycles {
			t.Fatalf("front not sorted by EstCycles at %d", i)
		}
		for j, o := range res.Front {
			if i != j && dominates(o.Cost, c.Cost) {
				t.Fatalf("front[%d] dominates front[%d]", j, i)
			}
		}
	}
	bestFixed := res.Fixed[0].Cost.EstCycles
	for _, f := range res.Fixed {
		if f.Cost.EstCycles < bestFixed {
			bestFixed = f.Cost.EstCycles
		}
	}
	if res.Front[0].Cost.EstCycles > bestFixed {
		t.Fatalf("front best %.0f worse than best fixed %.0f despite family seeding",
			res.Front[0].Cost.EstCycles, bestFixed)
	}
	// The family member matching the baseline must report zero re-layout
	// cost, and it must survive on the front (nothing dominates the
	// moved=0 point).
	var baseMoved float64 = -1
	for _, f := range res.Fixed {
		if f.ID == searchConfig(t, 0).Baseline {
			baseMoved = f.Cost.MovedFrac
		}
	}
	if baseMoved != 0 {
		t.Fatalf("baseline family member reports MovedFrac %v, want 0", baseMoved)
	}
}

// TestSearchBaselineOutOfRange pins the config error path.
func TestSearchBaselineOutOfRange(t *testing.T) {
	cfg := searchConfig(t, 1)
	cfg.Baseline = 0 // conventional: not a PIM family member
	if _, err := Search(context.Background(), cfg); err == nil {
		t.Fatal("Search accepted an out-of-range baseline")
	}
}
