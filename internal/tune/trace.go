package tune

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
)

// Trace is a canonical burst-address trace of one workload's weight
// traffic: burst indices (physical address >> OffsetBits) in issue
// order, split into weighted segments. The trace is mapping-independent
// — candidates are scored by translating the same physical stream — and
// is captured once per platform/workload cell, then shared read-only by
// every estimator and full-sim replay.
type Trace struct {
	// Codes holds burst indices (PA divided by the transfer size).
	Codes []uint32
	// Segments partitions Codes into weighted phases.
	Segments []TraceSegment
	// Geometry records the geometry the codes were generated against.
	Geometry dram.Geometry
}

// TraceSegment is one weighted phase of a trace: Codes[Start:End].
type TraceSegment struct {
	// Label names the phase ("gemv", "gemm").
	Label string
	// Start and End bound the segment's code range.
	Start, End int
	// Weight scales the segment's cycle contribution in the combined
	// score (e.g. the workload's median decode length for the GEMV
	// phase vs. one prefill pass for the GEMM phase).
	Weight float64
}

// Bursts returns the total number of bursts in the trace.
func (t *Trace) Bursts() int { return len(t.Codes) }

// TraceConfig controls trace capture for one platform/workload cell.
type TraceConfig struct {
	// Matrix is the representative weight matrix the phases walk.
	Matrix mapping.MatrixConfig
	// Streams is the number of concurrent row streams the GEMM tile
	// walk keeps in flight (a well-tiled kernel's natural value is the
	// placement's RowsPerPass). Must be positive.
	Streams int
	// SampleBytes bounds each phase's simulated weight window
	// (default 2 MiB — one huge page).
	SampleBytes int64
	// DecodeWeight scales the GEMV segment (default 1); callers pass
	// the workload's median decode length so the combined score
	// reflects decode-dominance.
	DecodeWeight float64
	// PrefillWeight scales the GEMM segment (default 1).
	PrefillWeight float64
}

// CaptureTrace generates the two-phase canonical trace for a workload:
//
//   - gemv: the PIM decode access shape — a sequential row-major scan of
//     the weight matrix (each all-bank pass streams every row once).
//   - gemm: the SoC prefill access shape — Streams concurrent row
//     walkers advancing one burst per tick, mirroring the tiled-kernel
//     model of soc.MeasureLayoutSlowdown.
//
// Both phases are emitted as physical burst indices so one captured
// trace scores every candidate mapping.
func CaptureTrace(g dram.Geometry, cfg TraceConfig) (*Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Matrix.Validate(); err != nil {
		return nil, err
	}
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("tune: trace needs a positive GEMM stream count, got %d", cfg.Streams)
	}
	if cfg.SampleBytes <= 0 {
		cfg.SampleBytes = 2 << 20
	}
	if cfg.DecodeWeight <= 0 {
		cfg.DecodeWeight = 1
	}
	if cfg.PrefillWeight <= 0 {
		cfg.PrefillWeight = 1
	}
	transfer := int64(g.TransferBytes)
	offBits := uint(g.OffsetBits())
	rowBytes := int64(cfg.Matrix.PaddedRowBytes())
	rows := cfg.Matrix.Rows

	tr := &Trace{Geometry: g}

	// gemv: sequential scan of the padded matrix, capped by SampleBytes.
	scan := cfg.Matrix.PaddedBytes()
	if scan > cfg.SampleBytes {
		scan = cfg.SampleBytes
	}
	for pa := int64(0); pa < scan; pa += transfer {
		tr.Codes = append(tr.Codes, uint32(uint64(pa)>>offBits))
	}
	tr.Segments = append(tr.Segments, TraceSegment{
		Label: "gemv", Start: 0, End: len(tr.Codes), Weight: cfg.DecodeWeight,
	})

	// gemm: Streams concurrent row walkers, column-major across each row
	// group — one tick advances every stream one burst. The size cap
	// gates new ticks, never splits one.
	start := len(tr.Codes)
	streams := cfg.Streams
	if streams > rows {
		streams = rows
	}
	burstsPerRow := rowBytes / transfer
	var emitted int64
walk:
	for group := 0; group*streams < rows; group++ {
		for b := int64(0); b < burstsPerRow; b++ {
			if emitted*transfer >= cfg.SampleBytes {
				break walk
			}
			for si := 0; si < streams; si++ {
				row := group*streams + si
				if row >= rows {
					break
				}
				pa := int64(row)*rowBytes + b*transfer
				tr.Codes = append(tr.Codes, uint32(uint64(pa)>>offBits))
				emitted++
			}
		}
	}
	tr.Segments = append(tr.Segments, TraceSegment{
		Label: "gemm", Start: start, End: len(tr.Codes), Weight: cfg.PrefillWeight,
	})

	if len(tr.Codes) == 0 {
		return nil, fmt.Errorf("tune: captured an empty trace")
	}
	return tr, nil
}
