package tune

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"facil/internal/dram"
)

// TestEstimatorMatchesMapping differentially checks the LUT translation
// path against the built addr mapping for every trace code of a set of
// random genomes — the estimator must model exactly the mapping the
// scheduler would see.
func TestEstimatorMatchesMapping(t *testing.T) {
	for _, spec := range []dram.Spec{dram.JetsonOrinLPDDR5, dram.IPhoneLPDDR5} {
		s := testSpace(t, spec)
		tr, _ := testTrace(t, spec, 1<<19)
		ev, err := NewEvaluator(s, tr, spec.Timing, 0)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Geometry
		offBits := uint(g.OffsetBits())
		for _, genome := range exhaustiveGenomes(t, s) {
			m, err := s.Build(genome)
			if err != nil {
				t.Fatal(err)
			}
			if err := ev.prepare(genome); err != nil {
				t.Fatal(err)
			}
			for _, code := range tr.Codes[:4096] {
				wa, _ := m.Translate(uint64(code) << offBits)
				gb, row, col, ch := ev.packedDA(code)
				wantGB := uint32(wa.Bank) | uint32(wa.Rank)<<uint(g.BankBits()) |
					uint32(wa.Channel)<<uint(g.BankBits()+g.RankBits())
				if gb != wantGB || row != uint32(wa.Row) || col != uint32(wa.Column) || ch != uint32(wa.Channel) {
					t.Fatalf("%s %s: packedDA(%#x) = gb%d row%d col%d ch%d, mapping gives %v",
						spec.Name, genome.Describe(), code, gb, row, col, ch, wa)
				}
			}
		}
	}
}

// TestEstimatorZeroAllocs is the CI alloc gate of the tentpole: scoring
// a candidate in steady state must not touch the heap.
func TestEstimatorZeroAllocs(t *testing.T) {
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(t, spec)
	tr, _ := testTrace(t, spec, 1<<19)
	ev, err := NewEvaluator(s, tr, spec.Timing, 4096)
	if err != nil {
		t.Fatal(err)
	}
	seeds, _, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.SetBaseline(seeds[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ev.Score(seeds[i%len(seeds)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("estimator hot loop allocates %.1f times per candidate, want 0", allocs)
	}
}

// TestEstimatorMovedFrac pins the re-layout axis: identical mapping
// moves nothing, any differing linear map moves 1 - 2^-rank of the
// difference (>= half the bytes as soon as one bit assignment differs).
func TestEstimatorMovedFrac(t *testing.T) {
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(t, spec)
	tr, _ := testTrace(t, spec, 1<<18)
	ev, err := NewEvaluator(s, tr, spec.Timing, 1024)
	if err != nil {
		t.Fatal(err)
	}
	seeds, _, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.SetBaseline(seeds[0]); err != nil {
		t.Fatal(err)
	}
	same, err := ev.Score(seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	if same.MovedFrac != 0 {
		t.Fatalf("identical mapping reports MovedFrac %v, want 0", same.MovedFrac)
	}
	other, err := ev.Score(seeds[len(seeds)-1])
	if err != nil {
		t.Fatal(err)
	}
	if other.MovedFrac < 0.5 || other.MovedFrac > 1 {
		t.Fatalf("differing mapping reports MovedFrac %v, want in [0.5, 1]", other.MovedFrac)
	}
}

// rankCandidates builds a diverse candidate population for the
// estimator-vs-full-sim comparison tests.
func rankCandidates(t testing.TB, s *Space, n int) []Genome {
	t.Helper()
	genomes, _, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	seen := map[string]bool{}
	for _, g := range genomes {
		seen[g.Key()] = true
	}
	for tries := 0; len(genomes) < n && tries < 10000; tries++ {
		g := mutate(s, rng, genomes[rng.Intn(len(genomes))], 2)
		if s.Validate(g) != nil || seen[g.Key()] {
			continue
		}
		seen[g.Key()] = true
		genomes = append(genomes, g)
	}
	if len(genomes) < n {
		t.Fatalf("could not build %d distinct candidates", n)
	}
	return genomes
}

// TestEstimatorFullSimRankAgreement is the differential gate of the
// acceptance criteria: over a diverse candidate set, the estimator's
// top-8 must substantially agree with the full scheduler's top-8.
func TestEstimatorFullSimRankAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scheduler comparison is slow")
	}
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(t, spec)
	tr, sel := testTrace(t, spec, 1<<19)
	ev, err := NewEvaluator(s, tr, spec.Timing, 8192)
	if err != nil {
		t.Fatal(err)
	}
	seeds, ids, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	baseline := seeds[0]
	for i, id := range ids {
		if id == sel.ID {
			baseline = seeds[i]
		}
	}
	if err := ev.SetBaseline(baseline); err != nil {
		t.Fatal(err)
	}

	const n = 20
	genomes := rankCandidates(t, s, n)
	type scored struct {
		idx      int
		est, sim float64
	}
	results := make([]scored, n)
	for i, g := range genomes {
		c, err := ev.Score(g)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SimScore(spec, tr, m)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = scored{idx: i, est: c.EstCycles, sim: sim.SimCycles}
	}
	top := func(key func(scored) float64) map[int]bool {
		order := append([]scored(nil), results...)
		sort.Slice(order, func(i, j int) bool { return key(order[i]) < key(order[j]) })
		set := map[int]bool{}
		for _, s := range order[:8] {
			set[s.idx] = true
		}
		return set
	}
	estTop := top(func(s scored) float64 { return s.est })
	simTop := top(func(s scored) float64 { return s.sim })
	overlap := 0
	for i := range estTop {
		if simTop[i] {
			overlap++
		}
	}
	if overlap < 6 {
		for _, r := range results {
			t.Logf("cand %2d est=%12.0f sim=%12.0f  %s", r.idx, r.est, r.sim, genomes[r.idx].Describe())
		}
		t.Fatalf("estimator top-8 overlaps full-sim top-8 on only %d candidates, want >= 6", overlap)
	}
}

// TestEstimatorSpeedupGate enforces the acceptance criterion: the
// estimator must evaluate >= 10^4 candidates in the time the full
// scheduler needs for <= 10^2 — a >= 100x per-candidate speedup.
func TestEstimatorSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate is slow")
	}
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(t, spec)
	tr, _ := testTrace(t, spec, 2<<20)
	ev, err := NewEvaluator(s, tr, spec.Timing, 16384)
	if err != nil {
		t.Fatal(err)
	}
	seeds, _, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.SetBaseline(seeds[0]); err != nil {
		t.Fatal(err)
	}
	genomes := rankCandidates(t, s, 8)

	// Warm both paths once, then time.
	if _, err := ev.Score(genomes[0]); err != nil {
		t.Fatal(err)
	}
	m, err := s.Build(genomes[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimScore(spec, tr, m); err != nil {
		t.Fatal(err)
	}

	const nEst = 400
	start := time.Now()
	for i := 0; i < nEst; i++ {
		if _, err := ev.Score(genomes[i%len(genomes)]); err != nil {
			t.Fatal(err)
		}
	}
	estPer := time.Since(start) / nEst

	const nSim = 2
	start = time.Now()
	for i := 0; i < nSim; i++ {
		mm, err := s.Build(genomes[i%len(genomes)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SimScore(spec, tr, mm); err != nil {
			t.Fatal(err)
		}
	}
	simPer := time.Since(start) / nSim

	speedup := float64(simPer) / float64(estPer)
	t.Logf("estimator %v/candidate, full scheduler %v/candidate: %.0fx", estPer, simPer, speedup)
	if speedup < 100 {
		t.Fatalf("per-candidate speedup %.0fx below the 100x gate (est %v, sim %v)", speedup, estPer, simPer)
	}
}
