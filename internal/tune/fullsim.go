package tune

import (
	"fmt"

	"facil/internal/dram"
)

// SimResult is the full-scheduler verdict on one mapping.
type SimResult struct {
	// SimCycles is the weighted completion-cycle sum across the trace
	// segments under the bit-identical dram.Channel scheduler.
	SimCycles float64
	// RowHitRate is the scheduler's aggregate row-buffer hit rate.
	RowHitRate float64
	// Bytes is the total data replayed.
	Bytes int64
}

// SimScore is the tier-two validator: it replays the full trace through
// the real FR-FCFS controller (dram.MeasureStreamFunc) under mapping m
// and returns the weighted cycle score the estimator approximates. Each
// segment is replayed on a fresh controller, paced at the memory
// system's peak consumption rate (one burst per channel per cycle) so a
// mapping that concentrates traffic on few channels exhibits queueing
// rather than being reordered away.
func SimScore(spec dram.Spec, tr *Trace, m Translator) (SimResult, error) {
	if tr == nil || len(tr.Codes) == 0 {
		return SimResult{}, fmt.Errorf("tune: cannot replay an empty trace")
	}
	var out SimResult
	var hits, misses int64
	offBits := uint(spec.Geometry.OffsetBits())
	channels := int64(spec.Geometry.Channels)
	for _, seg := range tr.Segments {
		i := seg.Start
		var emitted int64
		src := func(r *dram.Request) bool {
			if i >= seg.End {
				return false
			}
			pa := uint64(tr.Codes[i]) << offBits
			a, _ := m.Translate(pa)
			*r = dram.Request{Addr: a, Arrival: emitted / channels}
			emitted++
			i++
			return true
		}
		res, err := dram.MeasureStreamFunc(spec, src)
		if err != nil {
			return SimResult{}, err
		}
		out.SimCycles += seg.Weight * float64(res.Cycles)
		out.Bytes += res.Bytes
		hits += res.Stats.RowHits
		misses += res.Stats.RowMisses
	}
	if hm := hits + misses; hm > 0 {
		out.RowHitRate = float64(hits) / float64(hm)
	}
	return out, nil
}
