package tune

import (
	"fmt"
	"math/bits"

	"facil/internal/addr"
	"facil/internal/dram"
)

// Cost is the estimator's verdict on one candidate mapping.
type Cost struct {
	// EstCycles is the weighted cycle estimate across the trace segments
	// (lower is better). It is a ranking signal calibrated against the
	// full scheduler by the rank-agreement test, not a cycle-exact
	// prediction.
	EstCycles float64
	// RowHitRate is hits / (hits + activations) over the scored window.
	RowHitRate float64
	// Activations counts row activations over the scored window.
	Activations int64
	// MovedFrac is the exact fraction of bytes whose physical placement
	// differs from the baseline mapping (the re-layout cost axis),
	// computed from the GF(2) rank of the difference map.
	MovedFrac float64
}

// Evaluator is the tier-one replay cost model: it scores a Genome
// against a captured Trace with a per-bank open-row/activation estimator
// — no scheduler, no event loop. All state is preallocated; Score
// performs zero heap allocations in steady state, which is what lets
// the search push 10^4+ candidates through where the full scheduler
// manages 10^2.
//
// The model exploits that every candidate is GF(2)-linear over the page
// offset bits: each page bit contributes a fixed XOR pattern to the
// packed DRAM address, so translation of a burst code is two table
// lookups and one XOR. Packed DA layout (LSB to MSB): column, bank,
// rank, channel, then page-local row bits; row MSBs come from the page
// index untouched.
//
// An Evaluator is not safe for concurrent use; the search keeps a pool.
type Evaluator struct {
	space  *Space
	trace  *Trace
	timing dram.Timing
	window int // max bursts scored per segment (0 = all)

	colBits, puBits   uint
	bankBits, rankBit uint
	pageBits          uint
	pageRowBits       uint
	pageMask          uint32
	puMask            uint32
	missCost, tccd    int64

	contrib []uint32 // per-page-bit packed-DA contribution (scratch)
	base    []uint32 // baseline contributions for MovedFrac
	rowPos  []int    // page index of each page-local row bit (scratch)
	lo      [256]uint32
	hi      []uint32
	lastRow []uint32 // per global bank: last open row (^uint32(0) = none)
	bankT   []int64  // per global bank: next cycle the bank is free
	chanT   []int64  // per channel: next cycle the data bus is free
}

// NewEvaluator builds an evaluator for one space/trace pair. window
// bounds how many bursts of each segment are scored (0 = all); scores
// are scaled back to the full segment length so windowed and full
// scoring stay comparable.
func NewEvaluator(s *Space, trace *Trace, t dram.Timing, window int) (*Evaluator, error) {
	if trace == nil || len(trace.Codes) == 0 {
		return nil, fmt.Errorf("tune: evaluator needs a non-empty trace")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	g := s.MC.Geometry
	missCost := int64(t.TRP + t.TRCD + t.TCCD)
	if int64(t.TRC) > missCost {
		missCost = int64(t.TRC)
	}
	nHi := 1
	if s.pageBits > 8 {
		nHi = 1 << (s.pageBits - 8)
	}
	e := &Evaluator{
		space:       s,
		trace:       trace,
		timing:      t,
		window:      window,
		colBits:     uint(s.colBits),
		puBits:      uint(s.puBits),
		bankBits:    uint(s.bankBits),
		rankBit:     uint(s.rankBits),
		pageBits:    uint(s.pageBits),
		pageRowBits: uint(s.pageRowBits),
		pageMask:    uint32(1)<<uint(s.pageBits) - 1,
		puMask:      uint32(1)<<uint(s.puBits) - 1,
		missCost:    missCost,
		tccd:        int64(t.TCCD),
		contrib:     make([]uint32, s.pageBits),
		base:        make([]uint32, s.pageBits),
		rowPos:      make([]int, s.pageRowBits),
		hi:          make([]uint32, nHi),
		lastRow:     make([]uint32, g.TotalBanks()),
		bankT:       make([]int64, g.TotalBanks()),
		chanT:       make([]int64, g.Channels),
	}
	return e, nil
}

// fillContrib computes each page bit's packed-DA contribution vector for
// g into out, folding the XOR hash terms into their row-source bits.
// Zero allocations on the success path.
func (e *Evaluator) fillContrib(g Genome, out []uint32) error {
	if err := e.space.Validate(g); err != nil {
		return err
	}
	var n [6]int
	for i, k := range g.Fields {
		var pos uint
		switch k {
		case addr.FieldColumn:
			pos = uint(n[k])
		case addr.FieldBank:
			pos = e.colBits + uint(n[k])
		case addr.FieldRank:
			pos = e.colBits + e.bankBits + uint(n[k])
		case addr.FieldChannel:
			pos = e.colBits + e.bankBits + e.rankBit + uint(n[k])
		case addr.FieldRow:
			e.rowPos[n[k]] = i
			pos = e.colBits + e.puBits + uint(n[k])
		}
		out[i] = 1 << pos
		n[k]++
	}
	for _, p := range g.XOR {
		var pos uint
		if p.Target == addr.FieldBank {
			pos = e.colBits + uint(p.TargetBit)
		} else {
			pos = e.colBits + e.bankBits + e.rankBit + uint(p.TargetBit)
		}
		out[e.rowPos[p.RowBit]] ^= 1 << pos
	}
	return nil
}

// SetBaseline fixes the mapping every candidate's MovedFrac is measured
// against (typically the MapID select_mapping would pick).
func (e *Evaluator) SetBaseline(g Genome) error {
	return e.fillContrib(g, e.base)
}

// prepare compiles a genome into the translation LUTs: lut[x] extends
// lut[x with lowest bit cleared] by one page bit's contribution, so the
// build is one XOR per table entry.
func (e *Evaluator) prepare(g Genome) error {
	if err := e.fillContrib(g, e.contrib); err != nil {
		return err
	}
	e.lo[0] = 0
	nLo := 256
	if e.pageBits < 8 {
		nLo = 1 << e.pageBits
	}
	for x := 1; x < nLo; x++ {
		e.lo[x] = e.lo[x&(x-1)] ^ e.contrib[bits.TrailingZeros32(uint32(x))]
	}
	e.hi[0] = 0
	for x := 1; x < len(e.hi); x++ {
		e.hi[x] = e.hi[x&(x-1)] ^ e.contrib[8+bits.TrailingZeros32(uint32(x))]
	}
	return nil
}

// packedDA translates one burst code through the prepared LUTs and
// unpacks the coordinates the cost loop uses: dense global bank
// (bank | rank<<bankBits | channel<<(bankBits+rankBits)), full row
// index, column, and channel. Tests verify it bit-identical to the
// built addr mapping.
func (e *Evaluator) packedDA(code uint32) (gb, row, col, ch uint32) {
	pb := code & e.pageMask
	pg := code >> e.pageBits
	da := e.lo[pb&0xff] ^ e.hi[pb>>8]
	gb = (da >> e.colBits) & e.puMask
	row = (da >> (e.colBits + e.puBits)) | (pg << e.pageRowBits)
	col = da & (1<<e.colBits - 1)
	ch = gb >> (e.bankBits + e.rankBit)
	return
}

// Score evaluates one candidate with a paced virtual-time replay:
// bursts arrive at the memory system's peak consumption rate (one per
// channel per cycle, matching SimScore's pacing), each burst issues
// when its arrival, its channel bus and its bank are all free, a row
// miss holds the bank for the activation penalty, and the segment's
// score is the last completion cycle. That is three running maxes per
// burst — no scheduler, no event loop — yet it captures both
// channel-level serialization and per-bank row locality, the two
// effects that separate mappings. Steady state performs zero heap
// allocations (gated by TestEstimatorZeroAllocs).
func (e *Evaluator) Score(g Genome) (Cost, error) {
	if err := e.prepare(g); err != nil {
		return Cost{}, err
	}

	// Re-layout cost: two GF(2)-linear maps agree exactly on the kernel
	// of their difference, so the moved fraction is 1 - 2^-rank(diff).
	var basis [32]uint32
	rank := 0
	for i := range e.contrib {
		v := e.contrib[i] ^ e.base[i]
		for v != 0 {
			b := bits.Len32(v) - 1
			if basis[b] == 0 {
				basis[b] = v
				rank++
				break
			}
			v ^= basis[b]
		}
	}
	moved := 1 - 1/float64(uint64(1)<<uint(rank))

	rowShift := e.colBits + e.puBits
	chShift := e.bankBits + e.rankBit
	chBits := uint(0)
	for 1<<chBits < len(e.chanT) {
		chBits++
	}
	var total float64
	var hits, acts int64
	for _, seg := range e.trace.Segments {
		for i := range e.lastRow {
			e.lastRow[i] = ^uint32(0)
			e.bankT[i] = 0
		}
		for i := range e.chanT {
			e.chanT[i] = 0
		}
		segLen := seg.End - seg.Start
		scored := segLen
		if e.window > 0 && scored > e.window {
			scored = e.window
		}
		codes := e.trace.Codes[seg.Start : seg.Start+scored]
		var end int64
		for i, code := range codes {
			pb := code & e.pageMask
			pg := code >> e.pageBits
			da := e.lo[pb&0xff] ^ e.hi[pb>>8]
			gb := (da >> e.colBits) & e.puMask
			row := (da >> rowShift) | (pg << e.pageRowBits)
			ch := gb >> chShift

			issue := int64(i) >> chBits // paced arrival
			if t := e.chanT[ch]; t > issue {
				issue = t
			}
			if t := e.bankT[gb]; t > issue {
				issue = t
			}
			serv := e.tccd
			if e.lastRow[gb] == row {
				hits++
			} else {
				e.lastRow[gb] = row
				serv = e.missCost
				acts++
			}
			e.chanT[ch] = issue + e.tccd
			e.bankT[gb] = issue + serv
			if done := issue + serv; done > end {
				end = done
			}
		}
		cyc := float64(end)
		if scored < segLen {
			cyc *= float64(segLen) / float64(scored)
		}
		total += seg.Weight * cyc
	}

	c := Cost{EstCycles: total, Activations: acts, MovedFrac: moved}
	if hm := hits + acts; hm > 0 {
		c.RowHitRate = float64(hits) / float64(hm)
	}
	return c, nil
}
