package tune

import (
	"fmt"

	"facil/internal/dram"
)

// Translator is the mapping surface the tuner validates and replays:
// PA-to-DA translation and its inverse (satisfied by addr.Mapping and
// addr.HashedMapping).
type Translator interface {
	Translate(pa uint64) (dram.Addr, int)
	Inverse(a dram.Addr, offset int) uint64
}

// splitmix64 is the deterministic probe generator for the sampled
// bijection check (no math/rand allocation in the scoring path).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// VerifyBijection runs the PA-DA bijection property check every
// candidate must pass before scoring: zero, every single-bit basis
// address (sufficient to pin down a GF(2)-linear map) and `samples`
// seeded random addresses must translate to in-geometry DRAM addresses
// and round-trip exactly through Inverse. The exhaustive full-page
// variant lives in the property tests; this probe set is the per-
// candidate gate.
func VerifyBijection(m Translator, g dram.Geometry, samples int, seed uint64) error {
	mask := uint64(1)<<uint(g.AddressBits()) - 1
	probe := func(pa uint64) error {
		a, off := m.Translate(pa)
		if !a.Valid(g) {
			return fmt.Errorf("tune: PA %#x translates outside the geometry (%s)", pa, a)
		}
		if off < 0 || off >= g.TransferBytes {
			return fmt.Errorf("tune: PA %#x translates to burst offset %d", pa, off)
		}
		if back := m.Inverse(a, off); back != pa {
			return fmt.Errorf("tune: PA %#x round-trips to %#x", pa, back)
		}
		return nil
	}
	if err := probe(0); err != nil {
		return err
	}
	for b := 0; b < g.AddressBits(); b++ {
		if err := probe(uint64(1) << uint(b)); err != nil {
			return err
		}
	}
	x := seed
	for i := 0; i < samples; i++ {
		x = splitmix64(x)
		if err := probe(x & mask); err != nil {
			return err
		}
	}
	return nil
}
