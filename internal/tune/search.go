package tune

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"facil/internal/addr"
	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/parallel"
)

// Config parameterizes one search run.
type Config struct {
	// Spec is the memory system candidates are scored against.
	Spec dram.Spec
	// HugePageBytes is the OS huge-page size (default 2 MiB).
	HugePageBytes int
	// Chunk is the PIM chunk shape (zero value selects AiM).
	Chunk mapping.ChunkConfig
	// Trace is the captured workload trace every candidate replays.
	Trace *Trace
	// Baseline is the fixed MapID re-layout cost is measured against —
	// the mapping select_mapping would pick for the traced matrix. It
	// must be inside the platform's PIM MapID range.
	Baseline mapping.MapID
	// Budget caps the number of unique candidates scored (default 512).
	Budget int
	// PopSize is the number of fresh candidates per generation
	// (default 32).
	PopSize int
	// TopK caps the returned Pareto front (default 8).
	TopK int
	// MaxXOR caps a candidate's XOR hash terms (default 2).
	MaxXOR int
	// Seed drives the deterministic mutation stream (default 1).
	Seed int64
	// Workers bounds the evaluation pool (<= 0 selects GOMAXPROCS).
	Workers int
	// EstWindow bounds the bursts the estimator scores per trace
	// segment (default 16384, 0 keeps the default; scores are scaled
	// back to full segment length).
	EstWindow int
}

func (c *Config) defaults() {
	if c.HugePageBytes <= 0 {
		c.HugePageBytes = 2 << 20
	}
	if c.Chunk == (mapping.ChunkConfig{}) {
		c.Chunk = mapping.AiMChunk(c.Spec.Geometry)
	}
	if c.Budget <= 0 {
		c.Budget = 512
	}
	if c.PopSize <= 0 {
		c.PopSize = 32
	}
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.MaxXOR <= 0 {
		c.MaxXOR = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EstWindow <= 0 {
		c.EstWindow = 16384
	}
}

// Candidate is one scored mapping.
type Candidate struct {
	// Genome is the candidate's canonical encoding.
	Genome Genome
	// Key is the genome's memoization identity.
	Key string
	// Cost is the estimator's verdict.
	Cost Cost
}

// FixedScore is one fixed-family member's estimator verdict.
type FixedScore struct {
	// ID is the family MapID.
	ID mapping.MapID
	// Candidate is its genome encoding and cost.
	Candidate
}

// Result is a completed search.
type Result struct {
	// Space is the design space searched.
	Space *Space
	// Front is the Pareto front over (EstCycles, MovedFrac), sorted by
	// ascending EstCycles and capped at Config.TopK.
	Front []Candidate
	// Fixed holds the MapID family's scores (the baselines the front is
	// judged against), ascending by ID.
	Fixed []FixedScore
	// Evaluated counts unique candidates scored (family included).
	Evaluated int
}

// bijectionSamples is the random-probe count of the per-candidate
// bijection gate; bijectionSeed keeps the probe set deterministic.
const (
	bijectionSamples = 64
	bijectionSeed    = 0x5eed
)

// Search runs the design-space exploration: the MapID family seeds the
// population, deterministic seeded mutations propose new genomes,
// parallel.Sweep fans the estimator out over a worker pool with
// parallel.Flight deduplicating by genome key, and the Pareto front over
// (estimated cycles, re-layout fraction) survives. Every candidate
// passes VerifyBijection before scoring. Identical configs produce
// byte-identical results at any worker count.
func Search(ctx context.Context, cfg Config) (*Result, error) {
	cfg.defaults()
	space, err := NewSpace(mapping.MemoryConfig{Geometry: cfg.Spec.Geometry, HugePageBytes: cfg.HugePageBytes}, cfg.Chunk)
	if err != nil {
		return nil, err
	}
	seeds, ids, err := space.Seeds()
	if err != nil {
		return nil, err
	}
	baseIdx := -1
	for i, id := range ids {
		if id == cfg.Baseline {
			baseIdx = i
		}
	}
	if baseIdx < 0 {
		return nil, fmt.Errorf("tune: baseline %s outside the PIM MapID range [%s, %s]",
			cfg.Baseline, ids[0], ids[len(ids)-1])
	}
	baseline := seeds[baseIdx]

	// Validate the evaluator configuration once, then pool per-worker
	// instances (an Evaluator's scratch state is single-threaded).
	if _, err := NewEvaluator(space, cfg.Trace, cfg.Spec.Timing, cfg.EstWindow); err != nil {
		return nil, err
	}
	pool := sync.Pool{New: func() any {
		e, err := NewEvaluator(space, cfg.Trace, cfg.Spec.Timing, cfg.EstWindow)
		if err != nil {
			panic(err) // prototype construction above succeeded
		}
		if err := e.SetBaseline(baseline); err != nil {
			panic(err)
		}
		return e
	}}

	var flight parallel.Flight[string, Cost]
	geo := cfg.Spec.Geometry
	score := func(g Genome, key string) (Cost, error) {
		return flight.Do(key, func() (Cost, error) {
			m, err := space.Build(g)
			if err != nil {
				return Cost{}, err
			}
			if err := VerifyBijection(m, geo, bijectionSamples, bijectionSeed); err != nil {
				return Cost{}, err
			}
			e := pool.Get().(*Evaluator)
			c, err := e.Score(g)
			pool.Put(e)
			return c, err
		})
	}

	res := &Result{Space: space}
	seen := make(map[string]bool)
	var all []Candidate
	evalBatch := func(batch []Genome) error {
		cands, err := parallel.Sweep(ctx, batch, func(_ context.Context, g Genome) (Candidate, error) {
			key := g.Key()
			c, err := score(g, key)
			if err != nil {
				return Candidate{}, err
			}
			return Candidate{Genome: g, Key: key, Cost: c}, nil
		}, parallel.Workers(cfg.Workers))
		if err != nil {
			return err
		}
		all = append(all, cands...)
		res.Evaluated += len(cands)
		return nil
	}

	if err := evalBatch(seeds); err != nil {
		return nil, err
	}
	for i, id := range ids {
		res.Fixed = append(res.Fixed, FixedScore{ID: id, Candidate: all[i]})
	}
	for _, c := range all {
		seen[c.Key] = true
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	front := paretoFront(all, 0)
	for res.Evaluated < cfg.Budget {
		want := cfg.Budget - res.Evaluated
		if want > cfg.PopSize {
			want = cfg.PopSize
		}
		batch := nextGeneration(space, rng, front, want, cfg.MaxXOR, seen)
		if len(batch) == 0 {
			break // mutation stream exhausted the reachable neighborhood
		}
		if err := evalBatch(batch); err != nil {
			return nil, err
		}
		front = paretoFront(all, 0)
	}
	res.Front = paretoFront(all, cfg.TopK)
	return res, nil
}

// nextGeneration proposes up to want fresh, valid, unseen genomes by
// mutating random front members. The rng is consumed serially, keeping
// the candidate stream deterministic; proposals are capped so an
// exhausted neighborhood terminates the search instead of spinning.
func nextGeneration(s *Space, rng *rand.Rand, front []Candidate, want, maxXOR int, seen map[string]bool) []Genome {
	var out []Genome
	for tries := 0; len(out) < want && tries < 64*want; tries++ {
		parent := front[rng.Intn(len(front))].Genome
		child := mutate(s, rng, parent, maxXOR)
		if s.Validate(child) != nil {
			continue
		}
		key := child.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, child)
	}
	return out
}

// mutate applies one or two random edits to a copy of parent: swapping
// two page-bit assignments above the chunk prefix, shuffling the whole
// permutable suffix, or adding/dropping/rewiring an XOR hash term.
func mutate(s *Space, rng *rand.Rand, parent Genome, maxXOR int) Genome {
	g := parent.Clone()
	edits := 1 + rng.Intn(2)
	for i := 0; i < edits; i++ {
		switch rng.Intn(6) {
		case 0, 1, 2: // swap two differing page bits
			lo := s.chunkPrefix
			n := len(g.Fields) - lo
			if n < 2 {
				continue
			}
			a := lo + rng.Intn(n)
			b := lo + rng.Intn(n)
			g.Fields[a], g.Fields[b] = g.Fields[b], g.Fields[a]
		case 3: // shuffle the permutable suffix (exploration)
			lo := s.chunkPrefix
			for j := len(g.Fields) - 1; j > lo; j-- {
				k := lo + rng.Intn(j-lo+1)
				g.Fields[j], g.Fields[k] = g.Fields[k], g.Fields[j]
			}
		case 4: // add an XOR term
			if s.pageRowBits == 0 || len(g.XOR) >= maxXOR {
				continue
			}
			g.XOR = append(g.XOR, randomXOR(s, rng))
		case 5: // drop or rewire an XOR term
			if len(g.XOR) == 0 {
				continue
			}
			j := rng.Intn(len(g.XOR))
			if rng.Intn(2) == 0 {
				g.XOR = append(g.XOR[:j], g.XOR[j+1:]...)
			} else {
				g.XOR[j] = randomXOR(s, rng)
			}
		}
	}
	return g
}

// randomXOR draws a random hash term; callers require pageRowBits > 0.
func randomXOR(s *Space, rng *rand.Rand) addr.XORPair {
	p := addr.XORPair{RowBit: rng.Intn(s.pageRowBits)}
	if s.chBits > 0 && rng.Intn(2) == 0 {
		p.Target = addr.FieldChannel
		p.TargetBit = rng.Intn(s.chBits)
	} else {
		p.Target = addr.FieldBank
		p.TargetBit = rng.Intn(s.bankBits)
	}
	return p
}

// dominates reports Pareto dominance of a over b on (EstCycles,
// MovedFrac).
func dominates(a, b Cost) bool {
	if a.EstCycles > b.EstCycles || a.MovedFrac > b.MovedFrac {
		return false
	}
	return a.EstCycles < b.EstCycles || a.MovedFrac < b.MovedFrac
}

// paretoFront returns the non-dominated candidates sorted by ascending
// (EstCycles, MovedFrac, Key); exact cost ties keep the first-seen
// candidate. topK > 0 caps the result.
func paretoFront(all []Candidate, topK int) []Candidate {
	var front []Candidate
	for i, c := range all {
		keep := true
		for j, o := range all {
			if j == i {
				continue
			}
			if dominates(o.Cost, c.Cost) || (o.Cost == c.Cost && j < i) {
				keep = false
				break
			}
		}
		if keep {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Cost.EstCycles != front[j].Cost.EstCycles {
			return front[i].Cost.EstCycles < front[j].Cost.EstCycles
		}
		if front[i].Cost.MovedFrac != front[j].Cost.MovedFrac {
			return front[i].Cost.MovedFrac < front[j].Cost.MovedFrac
		}
		return front[i].Key < front[j].Key
	})
	if topK > 0 && len(front) > topK {
		front = front[:topK]
	}
	return front
}
