package tune

import (
	"context"
	"testing"

	"facil/internal/dram"
)

// BenchmarkEvaluatorScore measures the tier-one hot loop: one paced
// virtual-time replay of the windowed trace per candidate. This is the
// raw per-candidate cost the search pays Budget times; BENCH_tune.json
// records the committed baseline for it.
func BenchmarkEvaluatorScore(b *testing.B) {
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(b, spec)
	tr, _ := testTrace(b, spec, 2<<20)
	ev, err := NewEvaluator(s, tr, spec.Timing, 16384)
	if err != nil {
		b.Fatal(err)
	}
	seeds, _, err := s.Seeds()
	if err != nil {
		b.Fatal(err)
	}
	if err := ev.SetBaseline(seeds[0]); err != nil {
		b.Fatal(err)
	}
	genomes := rankCandidates(b, s, 8)
	if _, err := ev.Score(genomes[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Score(genomes[i%len(genomes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScore measures the tier-two cost: the full FR-FCFS
// scheduler replaying the whole trace, paid only for Pareto survivors.
func BenchmarkSimScore(b *testing.B) {
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(b, spec)
	tr, _ := testTrace(b, spec, 2<<20)
	genomes := rankCandidates(b, s, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := s.Build(genomes[i%len(genomes)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := SimScore(spec, tr, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearch measures a small end-to-end search — generation,
// dedup, the bijection gate, memoization and Pareto maintenance
// included — at the benchmark harness's parallelism.
func BenchmarkSearch(b *testing.B) {
	spec := dram.JetsonOrinLPDDR5
	s := testSpace(b, spec)
	tr, _ := testTrace(b, spec, 1<<20)
	_, ids, err := s.Seeds()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Spec:      spec,
		Trace:     tr,
		Baseline:  ids[0],
		Budget:    64,
		TopK:      4,
		Seed:      1,
		EstWindow: 8192,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
