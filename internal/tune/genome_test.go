package tune

import (
	"math/rand"
	"testing"

	"facil/internal/addr"
	"facil/internal/dram"
	"facil/internal/mapping"
)

// testSpecs returns the platform memory systems the tuner targets.
func testSpecs() []dram.Spec {
	return []dram.Spec{
		dram.JetsonOrinLPDDR5,
		dram.MacbookLPDDR5,
		dram.IdeaPadLPDDR5X,
		dram.IPhoneLPDDR5,
	}
}

func testSpace(t testing.TB, spec dram.Spec) *Space {
	t.Helper()
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	s, err := NewSpace(mc, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		t.Fatalf("NewSpace(%s): %v", spec.Name, err)
	}
	return s
}

// testTrace captures a small canonical trace for estimator tests.
func testTrace(t testing.TB, spec dram.Spec, sampleBytes int64) (*Trace, mapping.Selection) {
	t.Helper()
	g := spec.Geometry
	mc := mapping.MemoryConfig{Geometry: g, HugePageBytes: 2 << 20}
	chunk := mapping.AiMChunk(g)
	matrix := mapping.MatrixConfig{Rows: 2048, Cols: 2048, DTypeBytes: 2}
	sel, err := mapping.SelectMapping(matrix, mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CaptureTrace(g, TraceConfig{
		Matrix:       matrix,
		Streams:      sel.RowsPerPass,
		SampleBytes:  sampleBytes,
		DecodeWeight: 65,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, sel
}

func TestSpaceAllPlatforms(t *testing.T) {
	for _, spec := range testSpecs() {
		s := testSpace(t, spec)
		g := spec.Geometry
		if got, want := s.PageBits(), 21-g.OffsetBits(); got != want {
			t.Errorf("%s: PageBits = %d, want %d", spec.Name, got, want)
		}
		wantRow := s.PageBits() - g.ColumnBits() - g.BankBits() - g.RankBits() - g.ChannelBits()
		if got := s.PageRowBits(); got != wantRow {
			t.Errorf("%s: PageRowBits = %d, want %d", spec.Name, got, wantRow)
		}
		if got := s.ChunkPrefixBits(); got != g.ColumnBits() {
			t.Errorf("%s: ChunkPrefixBits = %d, want %d (AiM chunk = whole row)", spec.Name, got, g.ColumnBits())
		}
	}
}

// TestSeedsMatchFamily pins that encoding a fixed MapID family member as
// a genome and rebuilding it yields a bit-identical translation — the
// generalized space is a strict superset of the family.
func TestSeedsMatchFamily(t *testing.T) {
	for _, spec := range testSpecs() {
		s := testSpace(t, spec)
		tab, err := mapping.NewTable(s.MC, s.Chunk)
		if err != nil {
			t.Fatal(err)
		}
		seeds, ids, err := s.Seeds()
		if err != nil {
			t.Fatalf("%s: Seeds: %v", spec.Name, err)
		}
		if len(seeds) == 0 {
			t.Fatalf("%s: empty seed family", spec.Name)
		}
		rng := rand.New(rand.NewSource(42))
		mask := uint64(1)<<uint(spec.Geometry.AddressBits()) - 1
		for i, seed := range seeds {
			built, err := s.Build(seed)
			if err != nil {
				t.Fatalf("%s: Build(seed %v): %v", spec.Name, ids[i], err)
			}
			want := tab.Lookup(ids[i])
			for probe := 0; probe < 2000; probe++ {
				pa := rng.Uint64() & mask
				ga, goff := built.Translate(pa)
				wa, woff := want.Translate(pa)
				if ga != wa || goff != woff {
					t.Fatalf("%s seed %v: Translate(%#x) = %v,%d, family gives %v,%d",
						spec.Name, ids[i], pa, ga, goff, wa, woff)
				}
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	s := testSpace(t, dram.JetsonOrinLPDDR5)
	seeds, _, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	base := seeds[len(seeds)-1]

	mutate := func(fn func(g *Genome)) Genome {
		g := base.Clone()
		fn(&g)
		return g
	}
	cases := []struct {
		name string
		g    Genome
	}{
		{"short", Genome{Fields: base.Fields[:len(base.Fields)-1]}},
		{"offset kind", mutate(func(g *Genome) { g.Fields[len(g.Fields)-1] = addr.FieldOffset })},
		{"column above PU", mutate(func(g *Genome) {
			// Swap a chunk column bit with the top PU bit.
			g.Fields[0], g.Fields[len(g.Fields)-1] = g.Fields[len(g.Fields)-1], g.Fields[0]
		})},
		{"count mismatch", mutate(func(g *Genome) { g.Fields[len(g.Fields)-1] = addr.FieldBank })},
		{"duplicate XOR", mutate(func(g *Genome) {
			p := addr.XORPair{Target: addr.FieldBank, TargetBit: 0, RowBit: 0}
			g.XOR = []addr.XORPair{p, p}
		})},
		{"non-page row source", mutate(func(g *Genome) {
			g.XOR = []addr.XORPair{{Target: addr.FieldBank, TargetBit: 0, RowBit: s.PageRowBits()}}
		})},
		{"XOR target out of range", mutate(func(g *Genome) {
			g.XOR = []addr.XORPair{{Target: addr.FieldChannel, TargetBit: 99, RowBit: 0}}
		})},
		{"XOR target rank", mutate(func(g *Genome) {
			g.XOR = []addr.XORPair{{Target: addr.FieldRank, TargetBit: 0, RowBit: 0}}
		})},
	}
	for _, tc := range cases {
		if err := s.Validate(tc.g); err == nil {
			t.Errorf("%s: Validate accepted an invalid genome", tc.name)
		}
	}
	if err := s.Validate(base); err != nil {
		t.Fatalf("baseline seed rejected: %v", err)
	}
}

// exhaustiveGenomes builds the property-test population for one space:
// the whole fixed family plus deterministic permutation+XOR mutants.
func exhaustiveGenomes(t *testing.T, s *Space) []Genome {
	t.Helper()
	genomes, _, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	parent := genomes[0]
	for tries := 0; len(genomes) < 12 && tries < 1000; tries++ {
		g := mutate(s, rng, parent, 4)
		if s.Validate(g) != nil {
			continue
		}
		genomes = append(genomes, g)
	}
	return genomes
}

// TestGeneralizedBijectionExhaustive is the property test of the
// satellite: every generalized permutation+XOR mapping is a bijection
// over the full huge-page offset range, verified explicitly through
// Inverse (never by assuming the map is an involution) and through an
// independent injectivity check on the packed DRAM coordinates.
func TestGeneralizedBijectionExhaustive(t *testing.T) {
	for _, spec := range []dram.Spec{dram.JetsonOrinLPDDR5, dram.IPhoneLPDDR5} {
		s := testSpace(t, spec)
		g := spec.Geometry
		offBits := uint(g.OffsetBits())
		pageBursts := 1 << uint(s.PageBits())
		for _, genome := range exhaustiveGenomes(t, s) {
			m, err := s.Build(genome)
			if err != nil {
				t.Fatalf("%s %s: %v", spec.Name, genome.Describe(), err)
			}
			seen := make(map[dram.Addr]bool, pageBursts)
			// Every burst of the first huge page, plus the same offsets
			// in a higher page to exercise the row-MSB path.
			for _, pageBase := range []uint64{0, 3 << 21} {
				for b := 0; b < pageBursts; b++ {
					pa := pageBase | uint64(b)<<offBits
					a, off := m.Translate(pa)
					if !a.Valid(g) {
						t.Fatalf("%s %s: PA %#x -> invalid %v", spec.Name, genome.Describe(), pa, a)
					}
					if off != 0 {
						t.Fatalf("%s %s: PA %#x -> offset %d", spec.Name, genome.Describe(), pa, off)
					}
					if back := m.Inverse(a, off); back != pa {
						t.Fatalf("%s %s: PA %#x round-trips to %#x", spec.Name, genome.Describe(), pa, back)
					}
					if pageBase == 0 {
						if seen[a] {
							t.Fatalf("%s %s: DA %v hit twice within one page", spec.Name, genome.Describe(), a)
						}
						seen[a] = true
					}
				}
			}
			// Byte offsets within a burst stay the identity.
			for _, b := range []int{0, 1, pageBursts - 1} {
				for off := 0; off < g.TransferBytes; off++ {
					pa := uint64(b)<<offBits | uint64(off)
					a, gotOff := m.Translate(pa)
					if gotOff != off {
						t.Fatalf("%s %s: PA %#x -> offset %d, want %d", spec.Name, genome.Describe(), pa, gotOff, off)
					}
					if back := m.Inverse(a, gotOff); back != pa {
						t.Fatalf("%s %s: PA %#x round-trips to %#x", spec.Name, genome.Describe(), pa, back)
					}
				}
			}
		}
	}
}

// genomeFromFuzz derives a (possibly invalid) genome deterministically
// from fuzz-provided entropy: a seeded shuffle of a family member's
// permutable suffix plus up to two decoded XOR terms.
func genomeFromFuzz(s *Space, permSeed uint64, xorA, xorB uint16) (Genome, bool) {
	genomes, _, err := s.Seeds()
	if err != nil {
		return Genome{}, false
	}
	g := genomes[int(permSeed%uint64(len(genomes)))].Clone()
	lo := s.ChunkPrefixBits()
	x := permSeed
	for j := len(g.Fields) - 1; j > lo; j-- {
		x = splitmix64(x)
		k := lo + int(x%uint64(j-lo+1))
		g.Fields[j], g.Fields[k] = g.Fields[k], g.Fields[j]
	}
	decode := func(v uint16) (addr.XORPair, bool) {
		if v == 0 {
			return addr.XORPair{}, false
		}
		p := addr.XORPair{RowBit: int(v>>8) & 0x7}
		if v&1 == 0 {
			p.Target = addr.FieldBank
			p.TargetBit = int(v>>1) & 0x7
		} else {
			p.Target = addr.FieldChannel
			p.TargetBit = int(v>>1) & 0x7
		}
		return p, true
	}
	if p, ok := decode(xorA); ok {
		g.XOR = append(g.XOR, p)
	}
	if p, ok := decode(xorB); ok {
		g.XOR = append(g.XOR, p)
	}
	return g, true
}

// FuzzGeneralizedMapping mirrors the addr/mapping round-trip fuzzers for
// the generalized space: any genome the validator accepts must build a
// mapping that passes the bijection gate, round-trips fuzz-chosen
// physical addresses, and translates bit-identically to the estimator's
// packed LUT path.
func FuzzGeneralizedMapping(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(0), uint64(0))
	f.Add(uint64(2), uint16(0x0102), uint16(0x0203), uint64(1<<21))
	f.Add(uint64(99), uint16(0xffff), uint16(0x0001), uint64(123456789))
	spec := dram.JetsonOrinLPDDR5
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	space, err := NewSpace(mc, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		f.Fatal(err)
	}
	tr, err := CaptureTrace(spec.Geometry, TraceConfig{
		Matrix:  mapping.MatrixConfig{Rows: 256, Cols: 2048, DTypeBytes: 2},
		Streams: 64, SampleBytes: 1 << 18,
	})
	if err != nil {
		f.Fatal(err)
	}
	ev, err := NewEvaluator(space, tr, spec.Timing, 0)
	if err != nil {
		f.Fatal(err)
	}
	g := spec.Geometry
	mask := uint64(1)<<uint(g.AddressBits()) - 1
	f.Fuzz(func(t *testing.T, permSeed uint64, xorA, xorB uint16, paProbe uint64) {
		genome, ok := genomeFromFuzz(space, permSeed, xorA, xorB)
		if !ok || space.Validate(genome) != nil {
			return
		}
		m, err := space.Build(genome)
		if err != nil {
			t.Fatalf("validated genome failed to build: %v", err)
		}
		if err := VerifyBijection(m, g, 32, permSeed|1); err != nil {
			t.Fatalf("%s: %v", genome.Describe(), err)
		}
		pa := paProbe & mask
		a, off := m.Translate(pa)
		if !a.Valid(g) {
			t.Fatalf("%s: PA %#x -> invalid %v", genome.Describe(), pa, a)
		}
		if back := m.Inverse(a, off); back != pa {
			t.Fatalf("%s: PA %#x round-trips to %#x", genome.Describe(), pa, back)
		}
		// Differential: the estimator's packed translation must agree
		// with the built mapping on the fuzz-chosen burst.
		if err := ev.prepare(genome); err != nil {
			t.Fatal(err)
		}
		code := uint32(pa >> uint(g.OffsetBits()))
		burstPA := pa &^ (uint64(g.TransferBytes) - 1)
		wa, _ := m.Translate(burstPA)
		gb, row, col, ch := ev.packedDA(code)
		wantGB := uint32(wa.Bank) | uint32(wa.Rank)<<uint(g.BankBits()) |
			uint32(wa.Channel)<<uint(g.BankBits()+g.RankBits())
		if gb != wantGB || row != uint32(wa.Row) || col != uint32(wa.Column) || ch != uint32(wa.Channel) {
			t.Fatalf("%s: packedDA(%#x) = gb%d row%d col%d ch%d, mapping gives %v",
				genome.Describe(), code, gb, row, col, ch, wa)
		}
	})
}
