package cluster

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/pim"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// testFleets caches tiny fleets per class-mask so the fuzz loop pays
// system construction once per mix, not once per input. The model
// choice mirrors exp.PlatformModel (this package cannot import exp).
var testFleets struct {
	mu sync.Mutex
	m  map[uint8]*Fleet
}

func testModel(p soc.Platform) llm.Model {
	switch p.Name {
	case soc.IdeaPad.Name:
		return llm.OPT_6_7B()
	case soc.IPhone.Name:
		return llm.Phi1_5()
	default:
		return llm.Llama3_8B()
	}
}

// testFleet builds (or reuses) a fleet whose classes are selected by
// the low four bits of mask — one device per selected platform, the
// IdeaPad on a derated PIM stack so heterogeneity includes PIM config.
func testFleet(t testing.TB, mask uint8) *Fleet {
	mask &= 0x0F
	if mask == 0 {
		mask = 0x05
	}
	testFleets.mu.Lock()
	defer testFleets.mu.Unlock()
	if testFleets.m == nil {
		testFleets.m = make(map[uint8]*Fleet)
	}
	if fl, ok := testFleets.m[mask]; ok {
		return fl
	}
	all := []DeviceClass{
		{Platform: soc.Jetson, Count: 1},
		{Platform: soc.Macbook, Count: 1},
		{Platform: soc.IdeaPad, Count: 1, MACIntervalCycles: 8},
		{Platform: soc.IPhone, Count: 1},
	}
	var classes []DeviceClass
	for i, c := range all {
		if mask&(1<<i) != 0 {
			classes = append(classes, c)
		}
	}
	fl, err := NewFleet(classes, func(c DeviceClass) (*engine.System, error) {
		cfg := engine.DefaultConfig()
		if c.MACIntervalCycles > 0 {
			pc := pim.DefaultAiM(c.Platform.Spec.Geometry)
			pc.MACIntervalCycles = c.MACIntervalCycles
			cfg.PIM = &pc
		}
		return engine.NewSystem(c.Platform, testModel(c.Platform), cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	testFleets.m[mask] = fl
	return fl
}

// FuzzCluster drives a tiny heterogeneous cluster through arbitrary
// (strategy, fleet-mix, fault, load, steal) corners and checks the two
// properties every configuration must keep: the run's conservation
// identities hold — including the migration flow when stealing is
// enabled — and a 4-worker run reproduces the serial run exactly.
func FuzzCluster(f *testing.F) {
	f.Add(uint8(0), uint8(0x0F), uint8(0), uint8(40), uint8(0))
	f.Add(uint8(1), uint8(0x03), uint8(7), uint8(60), uint8(0))
	f.Add(uint8(2), uint8(0x05), uint8(255), uint8(25), uint8(0))
	f.Add(uint8(3), uint8(0x0A), uint8(128), uint8(50), uint8(0))
	f.Add(uint8(1), uint8(0x0F), uint8(255), uint8(60), uint8(0x81)) // steal + faults, threshold 1
	f.Add(uint8(0), uint8(0x03), uint8(130), uint8(44), uint8(0x84)) // steal + faults, threshold 4
	f.Add(uint8(3), uint8(0x05), uint8(0), uint8(70), uint8(0x82))   // steal, no faults (depth only)
	f.Fuzz(func(t *testing.T, stratB, fleetB, faultB, loadB, stealB uint8) {
		fl := testFleet(t, fleetB)
		cfg := Config{
			Strategy:     StrategyKind(int(stratB) % len(Strategies())),
			ArrivalRate:  0.5 + float64(loadB%8)/2,
			Queries:      20 + int(loadB)%60,
			Workload:     workload.AlpacaSpec(),
			Seed:         int64(fleetB)<<8 + int64(loadB),
			SyncInterval: float64(1 + int(faultB)%9),
			QueueCap:     int(loadB) % 5, // 0 = unbounded
			DeadlineTTLT: 30,
			Policy:       serve.Policy(int(faultB) % 3),
		}
		if faultB&0x80 != 0 {
			cfg.FaultMTBF = 20 + float64(faultB%32)
			cfg.FaultMTTR = 5
			cfg.FaultFraction = 0.5
			cfg.FaultSeed = int64(faultB)
			cfg.BreakerThreshold = 1 + int(faultB)%3
			cfg.BreakerCooldown = 30
			cfg.DeviceBreakerThreshold = int(faultB) % 4
		}
		if stealB&0x80 != 0 {
			cfg.Steal = true
			cfg.StealThreshold = int(stealB) % 8 // 0 = breaker-driven only
			cfg.ProbeQuota = 1 + int(stealB>>3)%4
		}
		run := func(par int) Metrics {
			c := cfg
			c.Parallelism = par
			m, err := Run(context.Background(), fl, c)
			if err != nil {
				t.Fatalf("par %d: %v", par, err)
			}
			return m
		}
		serial := run(1)
		if serial.Routed+serial.Shed != serial.Queries {
			t.Errorf("routed %d + shed %d != queries %d", serial.Routed, serial.Shed, serial.Queries)
		}
		if serial.Arrived != serial.Routed+serial.Stolen {
			t.Errorf("arrived %d != routed %d + stolen %d", serial.Arrived, serial.Routed, serial.Stolen)
		}
		if serial.Retracted != serial.Stolen {
			t.Errorf("retracted %d != stolen %d", serial.Retracted, serial.Stolen)
		}
		if !cfg.Steal && serial.Stolen != 0 {
			t.Errorf("stolen %d without stealing enabled", serial.Stolen)
		}
		if got := serial.Completed + serial.Failed + serial.TimedOut + serial.Rejected; got != serial.Routed {
			t.Errorf("terminal %d != routed %d", got, serial.Routed)
		}
		if par := run(4); !reflect.DeepEqual(serial, par) {
			t.Errorf("par 4 metrics diverge from serial:\n%+v\nvs\n%+v", serial, par)
		}
	})
}
