// Package cluster is the fleet layer of the serving stack: a router
// that owns many heterogeneous device replicas — each an independent
// Stream-mode serve.Sim built from its own soc platform and PIM
// configuration — and dispatches an arrival stream across them through
// a pluggable balancing strategy.
//
// The router is the only component that sees the whole fleet. It
// observes devices exclusively at telemetry barriers (every
// Config.SyncInterval seconds of virtual time): between barriers every
// device advances independently — and concurrently, via
// parallel.Sweep — while the router routes the interval's arrivals
// using the signals frozen at the last barrier plus its own
// arrival-ordered ledger. Because every piece of cross-device
// information flows through that serial barrier/route alternation, a
// cluster run is deterministic in its seeds at any worker count (the
// par1/parN tests hold runs byte-identical; DESIGN.md §13 sketches the
// argument).
//
// Per-device health feeds the same serve.Breaker state machine the
// in-device PIM-lane breaker uses: barrier-observed query failures
// strike a device's breaker, an open breaker removes the device from
// every strategy's candidate set until its cooldown, and the first
// routed query after the cooldown is the half-open probe.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"facil/internal/engine"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/stats"
	"facil/internal/workload"
)

// DeviceClass is one homogeneous slice of the fleet: Count devices of
// one soc platform sharing a PIM configuration (and therefore one
// engine.System — systems are goroutine-safe and read-only at serve
// time).
type DeviceClass struct {
	// Platform is the device hardware (one of the four soc platforms).
	Platform soc.Platform
	// Count is how many devices of this class the fleet fields.
	Count int
	// MACIntervalCycles overrides the AiM PIM MAC issue interval for
	// this class (0 keeps the platform default) — the knob that models
	// a weaker or binned PIM stack without changing DRAM geometry.
	MACIntervalCycles int
}

// Label names the class for fleet specs and per-class reporting.
func (c DeviceClass) Label() string {
	short := "?"
	for tok, p := range fleetPlatforms {
		if p.Name == c.Platform.Name {
			short = tok
			break
		}
	}
	if c.MACIntervalCycles > 0 {
		return fmt.Sprintf("%s/mac%d", short, c.MACIntervalCycles)
	}
	return short
}

// SystemBuilder constructs the engine.System one device class runs on;
// the caller owns model selection and engine configuration (internal/exp
// supplies one built on exp.PlatformModel), keeping this package free of
// an exp dependency.
type SystemBuilder func(DeviceClass) (*engine.System, error)

// Fleet is an immutable device-class roster with the per-class systems
// already built; one Fleet serves any number of Run calls concurrently.
type Fleet struct {
	classes []DeviceClass
	systems []*engine.System
}

// NewFleet validates the class roster and builds (or reuses) one
// engine.System per distinct (platform, PIM config) pair, in roster
// order, so construction is deterministic.
func NewFleet(classes []DeviceClass, build SystemBuilder) (*Fleet, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one device class")
	}
	fl := &Fleet{
		classes: append([]DeviceClass(nil), classes...),
		systems: make([]*engine.System, len(classes)),
	}
	type key struct {
		name string
		mac  int
	}
	shared := make(map[key]*engine.System)
	for i, c := range fl.classes {
		if c.Count <= 0 {
			return nil, fmt.Errorf("cluster: class %d (%s) has non-positive count %d", i, c.Platform.Name, c.Count)
		}
		if c.MACIntervalCycles < 0 {
			return nil, fmt.Errorf("cluster: class %d (%s) has negative MACIntervalCycles", i, c.Platform.Name)
		}
		k := key{c.Platform.Name, c.MACIntervalCycles}
		if s, ok := shared[k]; ok {
			fl.systems[i] = s
			continue
		}
		s, err := build(c)
		if err != nil {
			return nil, fmt.Errorf("cluster: building system for class %d (%s): %w", i, c.Platform.Name, err)
		}
		if s == nil {
			return nil, fmt.Errorf("cluster: nil system for class %d (%s)", i, c.Platform.Name)
		}
		shared[k] = s
		fl.systems[i] = s
	}
	return fl, nil
}

// Classes returns the fleet's device-class roster (callers must not
// mutate it).
func (f *Fleet) Classes() []DeviceClass { return f.classes }

// Devices is the total device count across all classes.
func (f *Fleet) Devices() int {
	n := 0
	for _, c := range f.classes {
		n += c.Count
	}
	return n
}

// fleetPlatforms maps fleet-spec tokens to platforms.
var fleetPlatforms = map[string]soc.Platform{
	"jetson":  soc.Jetson,
	"macbook": soc.Macbook,
	"ideapad": soc.IdeaPad,
	"iphone":  soc.IPhone,
}

// ParseFleet parses a fleet-mix spec: comma-separated
// platform[/macN]:count tokens, e.g. "jetson:26,ideapad/mac8:26".
// Platforms are the short names jetson, macbook, ideapad, iphone; the
// optional /macN suffix sets the class's MACIntervalCycles override.
func ParseFleet(spec string) ([]DeviceClass, error) {
	var classes []DeviceClass
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, countStr, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: fleet token %q wants platform:count", tok)
		}
		mac := 0
		if base, macStr, has := strings.Cut(name, "/mac"); has {
			v, err := strconv.Atoi(macStr)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("cluster: bad MAC interval in fleet token %q", tok)
			}
			name, mac = base, v
		}
		p, ok := fleetPlatforms[name]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown platform %q in fleet spec (jetson, macbook, ideapad, iphone)", name)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("cluster: bad device count in fleet token %q", tok)
		}
		classes = append(classes, DeviceClass{Platform: p, Count: count, MACIntervalCycles: mac})
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet spec %q", spec)
	}
	return classes, nil
}

// ScaleFleet rescales a class roster to total devices, preserving the
// mix ratio; every class keeps at least one device and rounding
// remainders go to the largest classes first (deterministically).
func ScaleFleet(classes []DeviceClass, total int) []DeviceClass {
	if total <= 0 || len(classes) == 0 {
		return classes
	}
	if total < len(classes) {
		total = len(classes)
	}
	sum := 0
	for _, c := range classes {
		sum += c.Count
	}
	out := append([]DeviceClass(nil), classes...)
	assigned := 0
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, len(out))
	for i := range out {
		exact := float64(out[i].Count) * float64(total) / float64(sum)
		n := int(exact)
		if n < 1 {
			n = 1
		}
		out[i].Count = n
		assigned += n
		fracs[i] = frac{idx: i, rem: exact - float64(n)}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for i := 0; assigned < total; i = (i + 1) % len(fracs) {
		out[fracs[i].idx].Count++
		assigned++
	}
	for assigned > total {
		shrunk := false
		for i := len(fracs) - 1; i >= 0 && assigned > total; i-- {
			if out[fracs[i].idx].Count > 1 {
				out[fracs[i].idx].Count--
				assigned--
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}
	return out
}

// DefaultSyncInterval is the telemetry-barrier period in virtual
// seconds when Config leaves SyncInterval 0 — the cadence at which the
// router refreshes device signals and devices advance concurrently.
const DefaultSyncInterval = 5.0

// Default per-device queue-depth admission thresholds for the
// SLOTiered strategy's Standard and Batch priority classes.
const (
	DefaultShedStandard = 6
	DefaultShedBatch    = 2
)

// Config describes one cluster run over a Fleet.
type Config struct {
	// Strategy selects the balancing strategy.
	Strategy StrategyKind
	// ArrivalRate is the cluster-wide offered load in queries/second
	// (exponential inter-arrival gaps).
	ArrivalRate float64
	// Queries is the total query count routed (or shed) by the run.
	Queries int
	// Workload samples the (prefill, decode) token lengths.
	Workload workload.Spec
	// Seed drives arrivals, lengths and priority classes; FaultSeed
	// (with FaultMTBF) drives the per-device fault streams.
	Seed int64
	// SyncInterval is the telemetry-barrier period in virtual seconds
	// (0 = DefaultSyncInterval). Shorter intervals mean fresher routing
	// signals and more merge overhead; the interval does not affect
	// determinism, only fidelity.
	SyncInterval float64
	// QueueCap bounds each device's in-system query count; arrivals
	// routed to a full device are rejected by the device (0 =
	// unbounded).
	QueueCap int
	// DeadlineTTLT is the per-query SLO on arrival-to-last-token
	// (0 disables it; goodput == throughput).
	DeadlineTTLT float64
	// Policy is the in-device degradation policy for PIM-lane loss.
	Policy serve.Policy
	// BreakerThreshold opens a device's router-side health breaker
	// after that many consecutive barrier-observed query failures
	// (0 disables router health breakers).
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell in seconds before a
	// half-open probe (0 = serve.DefaultBreakerCooldown).
	BreakerCooldown float64
	// EWMAAlpha weights the newest TTFT sample in the per-device
	// latency EWMA behind LatencyWeighted routing (0 =
	// DefaultEWMAAlpha).
	EWMAAlpha float64
	// ShedStandard and ShedBatch are the SLOTiered strategy's
	// least-loaded-device depth thresholds above which Standard and
	// Batch arrivals are shed (0 = the defaults).
	ShedStandard int
	ShedBatch    int
	// FaultMTBF, with FaultMTTR, arms per-device PIM-lane fault streams
	// on the FaultFraction of devices selected by FaultSeed (MTBF 0 =
	// no faults anywhere).
	FaultMTBF     float64
	FaultMTTR     float64
	FaultFraction float64
	FaultSeed     int64
	// DeviceBreakerThreshold arms each faulty device's own in-sim
	// PIM-lane breaker (0 disables it; router health breakers are
	// independent).
	DeviceBreakerThreshold int
	// Steal enables cross-device query migration: a serial re-route
	// phase after each barrier's collect retracts queued work from
	// devices whose health breaker is open (admission-queued first,
	// then prefilled queries) or whose in-system depth reaches
	// StealThreshold (admission-queued only) and re-injects it on the
	// least-loaded eligible device with room (see LatencySteal for the
	// latency-aware destination choice). Prefilled queries are
	// charged MigrationPenalty at the destination — the KV-cache
	// transfer and re-layout into the adopting device's mapping —
	// while unstarted queries move free.
	Steal bool
	// StealThreshold is the in-system depth at and above which a
	// healthy device's admission queue is stolen from (0 disables
	// depth-based stealing; breaker-open evacuation still runs
	// whenever Steal is set and BreakerThreshold > 0).
	StealThreshold int
	// LatencySteal switches the steal destination choice from
	// least-loaded to the expected-wait proxy the LatencyWeighted
	// strategy routes by — observed-TTFT-EWMA × (in-flight + 1),
	// lowest index on ties — so stolen work lands on fast-and-idle
	// devices instead of merely shallow ones (a slow device with a
	// short queue can still be the worse adoption target). Devices
	// with no TTFT observation yet score zero and win first, matching
	// LatencyWeighted's probing behavior.
	LatencySteal bool
	// MigrationPenalty is the per-query cross-device handoff cost in
	// seconds charged when a prefilled query resumes elsewhere
	// (0 = DefaultMigrationPenalty).
	MigrationPenalty float64
	// ProbeQuota caps the queries routed or stolen to a device whose
	// health breaker is half-open, per barrier interval, until a
	// probe outcome is observed (0 = DefaultProbeQuota): recovered
	// devices re-earn traffic gradually instead of being slammed the
	// moment their cooldown expires.
	ProbeQuota int
	// Parallelism caps the workers advancing devices between barriers
	// (0 = GOMAXPROCS). It cannot change results, only wall-clock.
	Parallelism int
}

// DefaultEWMAAlpha is the TTFT EWMA weight when Config leaves it 0.
const DefaultEWMAAlpha = 0.2

// DefaultMigrationPenalty is the cross-device handoff cost in seconds
// when Config leaves MigrationPenalty 0: moving a prefilled query's KV
// cache off-device and re-laying it into the destination's mapping —
// an order of magnitude above serve.DefaultFailoverPenalty, which only
// crosses replicas inside one device.
const DefaultMigrationPenalty = 0.25

// DefaultProbeQuota is the per-barrier half-open traffic cap when
// Config leaves ProbeQuota 0.
const DefaultProbeQuota = 1

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.SyncInterval == 0 {
		c.SyncInterval = DefaultSyncInterval
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = serve.DefaultBreakerCooldown
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	if c.ShedStandard == 0 {
		c.ShedStandard = DefaultShedStandard
	}
	if c.ShedBatch == 0 {
		c.ShedBatch = DefaultShedBatch
	}
	if c.MigrationPenalty == 0 {
		c.MigrationPenalty = DefaultMigrationPenalty
	}
	if c.ProbeQuota == 0 {
		c.ProbeQuota = DefaultProbeQuota
	}
	return c
}

// Validate rejects degenerate cluster configurations (after defaults).
func (c Config) Validate() error {
	if c.Strategy < RoundRobin || c.Strategy > SLOTiered {
		return fmt.Errorf("cluster: unknown strategy %d", int(c.Strategy))
	}
	if !(c.ArrivalRate > 0) || math.IsInf(c.ArrivalRate, 0) {
		return fmt.Errorf("cluster: arrival rate must be positive and finite, got %g", c.ArrivalRate)
	}
	if c.Queries <= 0 {
		return fmt.Errorf("cluster: query count must be positive")
	}
	for name, v := range map[string]float64{
		"SyncInterval":     c.SyncInterval,
		"DeadlineTTLT":     c.DeadlineTTLT,
		"BreakerCooldown":  c.BreakerCooldown,
		"FaultMTBF":        c.FaultMTBF,
		"FaultMTTR":        c.FaultMTTR,
		"MigrationPenalty": c.MigrationPenalty,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: %s must be a finite non-negative duration, got %g", name, v)
		}
	}
	if c.SyncInterval <= 0 {
		return fmt.Errorf("cluster: SyncInterval must be positive, got %g", c.SyncInterval)
	}
	if c.QueueCap < 0 || c.BreakerThreshold < 0 || c.DeviceBreakerThreshold < 0 || c.ShedStandard < 0 || c.ShedBatch < 0 || c.StealThreshold < 0 || c.ProbeQuota < 0 {
		return fmt.Errorf("cluster: negative limit in %+v", c)
	}
	if math.IsNaN(c.EWMAAlpha) || c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		return fmt.Errorf("cluster: EWMAAlpha must be in (0, 1], got %g", c.EWMAAlpha)
	}
	if c.FaultFraction < 0 || c.FaultFraction > 1 || math.IsNaN(c.FaultFraction) {
		return fmt.Errorf("cluster: FaultFraction must be in [0, 1], got %g", c.FaultFraction)
	}
	if c.FaultMTBF > 0 && c.FaultMTTR <= 0 {
		return fmt.Errorf("cluster: FaultMTBF without a positive FaultMTTR")
	}
	if c.Policy < serve.PolicyNone || c.Policy > serve.PolicyFailover {
		return fmt.Errorf("cluster: unknown policy %d", int(c.Policy))
	}
	return nil
}

// ClassMetrics aggregates one device class's slice of a cluster run.
type ClassMetrics struct {
	// Class is the DeviceClass label; Devices its device count.
	Class   string
	Devices int
	// Routed counts arrivals the router sent to this class; the
	// remaining fields are summed device outcomes for those arrivals.
	Routed, Completed, Failed, TimedOut, Rejected int
	// TTFT summarizes arrival-to-first-token over the class's
	// completions.
	TTFT stats.Quantiles
	// PIMUtilization and Availability are device means over the class.
	PIMUtilization float64
	Availability   float64
}

// Metrics summarizes one cluster run.
type Metrics struct {
	// Strategy, Devices and Queries echo the run shape.
	Strategy StrategyKind
	Devices  int
	Queries  int

	// Routed + Shed == Queries: every arrival is either dispatched to a
	// device or shed at the router (no eligible device, or a tiered
	// admission refusal). ShedByClass splits Shed by priority class.
	Routed, Shed int
	ShedByClass  [NumClasses]int

	// Device-side accounting over routed queries: every migration
	// re-counts its query as Arrived at the destination, so once
	// drained Arrived == Routed + Stolen while the terminal identity
	// Completed + Failed + TimedOut + Rejected == Routed counts each
	// query exactly once (without stealing both reduce to
	// Arrived == Routed).
	Arrived, Completed, Failed, TimedOut, Rejected int
	// Degraded, FailedOver and DeviceBreakerOpens sum the in-device
	// degradation machinery; BreakerOpens counts router-side health
	// breaker opens.
	Degraded, FailedOver, DeviceBreakerOpens, BreakerOpens int

	// Steal echoes Config.Steal. Stolen counts queries migrated between
	// devices at barrier re-route phases; StolenPrefilled is the subset
	// that had already finished prefill (each charged MigrationPenalty
	// at its destination). Retracted sums the device-side retraction
	// counters and always equals Stolen — kept separate as a
	// conservation cross-check.
	Steal                   bool
	Stolen, StolenPrefilled int
	Retracted               int

	// Barriers is the number of telemetry barriers the run crossed.
	Barriers int

	// TTFT and TTLT pool the per-query samples across all devices.
	TTFT, TTLT stats.Quantiles
	// SLOMet counts completions within DeadlineTTLT; Makespan is the
	// latest device clock after the drain; ThroughputQPS and GoodputQPS
	// divide Completed and SLOMet by it.
	SLOMet                    int
	Makespan                  float64
	ThroughputQPS, GoodputQPS float64

	// PerClass breaks the run down by device class, in roster order.
	PerClass []ClassMetrics
}
