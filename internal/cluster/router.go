package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"facil/internal/engine"
	"facil/internal/fault"
	"facil/internal/parallel"
	"facil/internal/serve"
	"facil/internal/stats"
	"facil/internal/workload"
)

// device is the router's ledger entry for one fleet member: the
// Stream-mode sim it drives, the router-side health breaker, and the
// assignment-time signals the strategies read. inflight is assigned
// minus observed-terminal — it leads the device's own counters by up to
// one barrier, which is exactly the knowledge an assignment-time router
// has.
type device struct {
	class    int
	sim      *serve.Sim
	brk      serve.Breaker
	inflight int
	routed   int
	// probes counts queries routed or stolen to this device while its
	// breaker is half-open, within the current barrier interval; the
	// probation quota caps it so a recovering device re-earns traffic
	// gradually (collect resets it every barrier).
	probes   int
	ewma     float64
	ttftSeen int
	last     serve.Probe
}

// splitmix64 decorrelates per-device seeds from one cluster seed (same
// finalizer internal/fault uses for its stream hashing).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// faulty deterministically selects whether device di carries a lane
// fault stream: a FaultFraction Bernoulli drawn by hashing (FaultSeed,
// di), so the faulty subset is a pure function of the config — stable
// across strategies, worker counts and runs.
func faulty(cfg Config, di int) bool {
	if cfg.FaultFraction <= 0 {
		return false
	}
	h := splitmix64(uint64(cfg.FaultSeed)<<16 + uint64(di))
	return float64(h>>11)/(1<<53) < cfg.FaultFraction
}

// Run routes cfg.Queries across the fleet under cfg.Strategy and
// returns the cluster-level reduction. The run is deterministic in
// (cfg, fleet) at any Parallelism: all cross-device information flows
// through the serial route/collect phases at telemetry barriers, and
// between barriers devices advance independently (concurrently, via
// parallel.Sweep) with no shared mutable state — see DESIGN.md §13 for
// the merge argument.
func Run(ctx context.Context, fl *Fleet, cfg Config) (Metrics, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	n := fl.Devices()

	// Build one Stream-mode sim per device. Per-device seeds are
	// decorrelated with splitmix64; the per-device ArrivalRate share
	// only sizes each sim's timing wheel (arrivals come from Inject).
	devs := make([]*device, 0, n)
	for ci, cl := range fl.classes {
		for k := 0; k < cl.Count; k++ {
			di := len(devs)
			scfg := serve.SimConfig{
				Mode:             serve.Cooperative,
				Kind:             engine.FACIL,
				Replicas:         1,
				ArrivalRate:      cfg.ArrivalRate / float64(n),
				Stream:           true,
				NoTBT:            true,
				Seed:             int64(splitmix64(uint64(cfg.Seed) + 0x5EED*uint64(di))),
				QueueCap:         cfg.QueueCap,
				DeadlineTTLT:     cfg.DeadlineTTLT,
				Policy:           cfg.Policy,
				BreakerThreshold: cfg.DeviceBreakerThreshold,
			}
			if cfg.FaultMTBF > 0 && faulty(cfg, di) {
				scfg.Faults = fault.Scenario{
					Seed:     int64(splitmix64(uint64(cfg.FaultSeed) + uint64(di))),
					LaneMTBF: cfg.FaultMTBF,
					LaneMTTR: cfg.FaultMTTR,
				}
			}
			sim, err := serve.NewSim(fl.systems[ci], scfg)
			if err != nil {
				return Metrics{}, fmt.Errorf("cluster: device %d (%s): %w", di, cl.Platform.Name, err)
			}
			devs = append(devs, &device{class: ci, sim: sim})
		}
	}

	// The cluster arrival process mirrors a single sim's: one
	// exponential gap per query from a run-owned RNG, plus a second
	// stream drawing the priority class (Interactive 50%, Standard 30%,
	// Batch 20%). Both streams are consumed for every query — shed or
	// routed — so strategies see identical arrival sequences.
	ds, err := workload.Generate(cfg.Workload, cfg.Queries, cfg.Seed+1)
	if err != nil {
		return Metrics{}, err
	}
	arrRNG := rand.New(rand.NewSource(cfg.Seed))
	clsRNG := rand.New(rand.NewSource(cfg.Seed + 3))
	strat := NewStrategy(cfg.Strategy, cfg)
	views := make([]DeviceView, n)
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}

	m := Metrics{Strategy: cfg.Strategy, Devices: n, Queries: cfg.Queries, Steal: cfg.Steal}
	Live.runsStarted.Add(1)

	// eligible is the router's routing/stealing admission predicate: a
	// device is out while its health breaker blocks it, and a half-open
	// device stops receiving once its probation quota for the current
	// barrier interval is spent.
	eligible := func(d *device, at float64) bool {
		if cfg.BreakerThreshold == 0 {
			return true
		}
		if d.brk.Blocked(at, cfg.BreakerCooldown) {
			return false
		}
		return !d.brk.Probing() || d.probes < cfg.ProbeQuota
	}

	// advanceAll moves every device's virtual clock up to (strictly
	// before) t, concurrently; devices share nothing mutable, and
	// results are discarded by index, so worker count cannot matter.
	advanceAll := func(t float64) error {
		_, err := parallel.Sweep(ctx, idxs, func(_ context.Context, i int) (struct{}, error) {
			return struct{}{}, devs[i].sim.AdvanceTo(t)
		}, parallel.Workers(cfg.Parallelism))
		return err
	}
	// collect refreshes the router's ledger from each device's counters
	// — serially, in device order, so health-breaker strikes and EWMA
	// updates happen in one deterministic sequence.
	collect := func(at float64) {
		for _, d := range devs {
			p := d.sim.Probe()
			termNew := p.Completed + p.Failed + p.TimedOut + p.Rejected
			termOld := d.last.Completed + d.last.Failed + d.last.TimedOut + d.last.Rejected
			d.inflight -= termNew - termOld
			if cfg.BreakerThreshold > 0 {
				for f := d.last.Failed; f < p.Failed; f++ {
					if d.brk.Failure(at, cfg.BreakerThreshold) {
						m.BreakerOpens++
						Live.breakerOpens.Add(1)
					}
				}
				if p.Completed > d.last.Completed && p.Failed == d.last.Failed {
					d.brk.Success()
				}
			}
			ttft, _ := d.sim.Latencies()
			for _, v := range ttft[d.ttftSeen:] {
				if d.ewma == 0 {
					d.ewma = v
				} else {
					d.ewma = cfg.EWMAAlpha*v + (1-cfg.EWMAAlpha)*d.ewma
				}
			}
			d.ttftSeen = len(ttft)
			d.last = p
			// A fresh barrier interval starts: half-open devices get a
			// fresh probation quota (their probe outcome, if any, was just
			// observed above).
			d.probes = 0
		}
	}

	// reroute is the serial re-route phase after each barrier's collect:
	// it steals queued work from breaker-open devices (full evacuation)
	// and from over-threshold healthy devices (down to the threshold, and
	// only while the move strictly improves balance), re-injecting each
	// query on the least-loaded eligible device with queue room (or, with
	// LatencySteal, the one minimizing the TTFT-EWMA expected-wait proxy). Both
	// paths take admission-queued queries first — those move free — then
	// prefilled-but-preempted ones, which pay the KV handoff penalty. It runs serially in
	// device order — all sims are quiescent at the barrier — so the
	// migration flow is part of the deterministic merge, and because the
	// router's ledger is settled right after collect (inflight equals
	// each device's in-system depth), one counter serves both the source
	// condition and the destination choice.
	reroute := func(at float64) error {
		if !cfg.Steal {
			return nil
		}
		for di, d := range devs {
			open := cfg.BreakerThreshold > 0 && d.brk.Blocked(at, cfg.BreakerCooldown)
			target := cfg.StealThreshold
			if open {
				target = 0
			} else if cfg.StealThreshold == 0 || d.inflight < cfg.StealThreshold {
				continue
			}
			for d.inflight > target {
				dst := -1
				var dstScore float64
				for j, e := range devs {
					if j == di || !eligible(e, at) {
						continue
					}
					if cfg.QueueCap > 0 && e.inflight >= cfg.QueueCap {
						continue
					}
					// Never fill a destination up to the steal trigger:
					// that work would just be stolen again next barrier.
					// Evacuations are exempt — a breaker-open source
					// cannot serve at all, so any live destination with
					// queue room beats leaving the query stranded.
					if !open && cfg.StealThreshold > 0 && e.inflight >= cfg.StealThreshold {
						continue
					}
					if cfg.LatencySteal {
						// Expected-wait proxy, as LatencyWeighted routes:
						// unobserved devices score 0 and win first.
						score := e.ewma * (float64(e.inflight) + 1)
						if dst < 0 || score < dstScore {
							dst, dstScore = j, score
						}
					} else if dst < 0 || e.inflight < devs[dst].inflight {
						dst = j
					}
				}
				if dst < 0 {
					break
				}
				if !open && devs[dst].inflight+1 >= d.inflight {
					break
				}
				r, ok := d.sim.Retract()
				if !ok {
					r, ok = d.sim.RetractPrefilled()
				}
				if !ok {
					break
				}
				pen := 0.0
				if r.Prefilled {
					pen = cfg.MigrationPenalty
				}
				if err := devs[dst].sim.InjectResume(at, r, pen); err != nil {
					return err
				}
				d.inflight--
				devs[dst].inflight++
				if cfg.BreakerThreshold > 0 && devs[dst].brk.Probing() {
					devs[dst].probes++
				}
				m.Stolen++
				Live.stolen.Add(1)
				if r.Prefilled {
					m.StolenPrefilled++
					Live.stolenPrefilled.Add(1)
				}
			}
		}
		return nil
	}

	var clock float64
	nextB := cfg.SyncInterval
	for qi := 0; qi < cfg.Queries; qi++ {
		clock += arrRNG.ExpFloat64() / cfg.ArrivalRate
		u := clsRNG.Float64()
		class := Interactive
		switch {
		case u >= 0.8:
			class = Batch
		case u >= 0.5:
			class = Standard
		}
		// Cross every barrier at or before this arrival first, so the
		// routing signals are at most one SyncInterval stale.
		for clock >= nextB {
			if err := ctx.Err(); err != nil {
				return Metrics{}, err
			}
			if err := advanceAll(nextB); err != nil {
				return Metrics{}, err
			}
			collect(nextB)
			if err := reroute(nextB); err != nil {
				return Metrics{}, err
			}
			m.Barriers++
			Live.barriers.Add(1)
			nextB += cfg.SyncInterval
		}
		q := QueryInfo{
			ID: qi, Arrival: clock,
			Prefill: ds.Queries[qi].Prefill, Decode: ds.Queries[qi].Decode,
			Class: class,
		}
		for i, d := range devs {
			views[i] = DeviceView{
				Eligible: eligible(d, clock),
				InFlight: d.inflight,
				TTFTEWMA: d.ewma,
			}
		}
		pick := strat.Pick(views, q)
		if pick < 0 {
			m.Shed++
			m.ShedByClass[class]++
			Live.shed.Add(1)
			continue
		}
		if pick >= n || !views[pick].Eligible {
			return Metrics{}, fmt.Errorf("cluster: strategy %s picked invalid device %d", cfg.Strategy, pick)
		}
		d := devs[pick]
		if cfg.BreakerThreshold > 0 {
			// Routing to a cooled-down open breaker is the half-open
			// probe; the next collect's outcome closes or reopens it,
			// and the probation quota meters further traffic until then.
			d.brk.Admit(clock, cfg.BreakerCooldown)
			if d.brk.Probing() {
				d.probes++
			}
		}
		if err := d.sim.Inject(clock, q.Prefill, q.Decode); err != nil {
			return Metrics{}, err
		}
		d.inflight++
		d.routed++
		m.Routed++
		Live.routed.Add(1)
	}

	// Drain: seal every arrival stream and run all devices to
	// quiescence, then settle the ledger one last time. With stealing
	// enabled the drain keeps the barrier cadence while work remains,
	// so queues stranded behind a breaker that opens during the drain
	// still get evacuated — the final no-steal AdvanceTo just discards
	// tail fault events without moving any clock.
	for _, d := range devs {
		d.sim.Seal()
	}
	if cfg.Steal {
		for {
			busy := false
			for _, d := range devs {
				if d.inflight > 0 {
					busy = true
					break
				}
			}
			if !busy {
				break
			}
			if err := ctx.Err(); err != nil {
				return Metrics{}, err
			}
			if err := advanceAll(nextB); err != nil {
				return Metrics{}, err
			}
			collect(nextB)
			if err := reroute(nextB); err != nil {
				return Metrics{}, err
			}
			m.Barriers++
			Live.barriers.Add(1)
			nextB += cfg.SyncInterval
		}
	}
	if err := advanceAll(math.Inf(1)); err != nil {
		return Metrics{}, err
	}
	collect(clock)

	// Reduce: pool latency samples, sum outcome counters, and average
	// the per-device utilization/availability within each class.
	var allTTFT, allTTLT []float64
	classTTFT := make([][]float64, len(fl.classes))
	m.PerClass = make([]ClassMetrics, len(fl.classes))
	for ci, cl := range fl.classes {
		m.PerClass[ci] = ClassMetrics{Class: cl.Label(), Devices: cl.Count}
	}
	for di, d := range devs {
		if d.inflight != 0 {
			return Metrics{}, fmt.Errorf("cluster: device %d ledger leak: %d in flight after drain", di, d.inflight)
		}
		dm := d.sim.Finish()
		m.Arrived += dm.Arrived
		m.Completed += dm.Completed
		m.Failed += dm.Failed
		m.TimedOut += dm.TimedOut
		m.Rejected += dm.Rejected
		m.Retracted += dm.Retracted
		m.Degraded += dm.Degraded
		m.FailedOver += dm.FailedOver
		m.DeviceBreakerOpens += dm.BreakerOpens
		m.SLOMet += dm.SLOMet
		if dm.Makespan > m.Makespan {
			m.Makespan = dm.Makespan
		}
		ttft, ttlt := d.sim.Latencies()
		allTTFT = append(allTTFT, ttft...)
		allTTLT = append(allTTLT, ttlt...)
		classTTFT[d.class] = append(classTTFT[d.class], ttft...)
		pc := &m.PerClass[d.class]
		pc.Routed += d.routed
		pc.Completed += dm.Completed
		pc.Failed += dm.Failed
		pc.TimedOut += dm.TimedOut
		pc.Rejected += dm.Rejected
		pc.PIMUtilization += dm.PIMUtilization
		pc.Availability += dm.Availability
	}
	for ci := range m.PerClass {
		pc := &m.PerClass[ci]
		if pc.Devices > 0 {
			pc.PIMUtilization /= float64(pc.Devices)
			pc.Availability /= float64(pc.Devices)
		}
		pc.TTFT = stats.QuantilesOf(classTTFT[ci])
	}
	m.TTFT = stats.QuantilesOf(allTTFT)
	m.TTLT = stats.QuantilesOf(allTTLT)
	if m.Makespan > 0 {
		m.ThroughputQPS = float64(m.Completed) / m.Makespan
		m.GoodputQPS = float64(m.SLOMet) / m.Makespan
	}
	Live.runsFinished.Add(1)
	return m, nil
}
