package cluster

import "sync/atomic"

// LiveStats is the cluster layer's set of process-wide, lock-free
// counters, in the style of serve.Live: every cluster run increments
// them with one atomic add per router decision, and observers (the
// facild /metrics endpoint) snapshot them at any time without pausing
// the run. Counters are cumulative over the process lifetime and never
// feed back into routing or timing, so observation cannot perturb
// results. Device-level activity (events, admissions, completions) is
// already counted by serve.Live — these counters cover only what the
// router itself adds: runs, routing decisions, sheds, barriers and
// health-breaker opens.
type LiveStats struct {
	runsStarted  atomic.Int64
	runsFinished atomic.Int64

	routed          atomic.Int64
	shed            atomic.Int64
	barriers        atomic.Int64
	breakerOpens    atomic.Int64
	stolen          atomic.Int64
	stolenPrefilled atomic.Int64
}

// Live aggregates every cluster run in the process.
var Live LiveStats

// RunsStarted returns the number of cluster runs started.
func (l *LiveStats) RunsStarted() int64 { return l.runsStarted.Load() }

// RunsFinished returns the number of cluster runs that completed.
func (l *LiveStats) RunsFinished() int64 { return l.runsFinished.Load() }

// Routed returns the total arrivals dispatched to a device.
func (l *LiveStats) Routed() int64 { return l.routed.Load() }

// Shed returns the total arrivals dropped at the router.
func (l *LiveStats) Shed() int64 { return l.shed.Load() }

// Stolen returns the total queries migrated between devices at barrier
// re-route phases.
func (l *LiveStats) Stolen() int64 { return l.stolen.Load() }

// LiveSnapshot is one point-in-time copy of the cluster counters,
// shaped for JSON export inside the facild /metrics payload. Fields are
// read atomically but not as one transaction — fine for observability,
// never used for results.
type LiveSnapshot struct {
	// RunsStarted and RunsFinished count cluster runs; their difference
	// is the number currently in flight.
	RunsStarted int64 `json:"runs_started"`
	// RunsFinished counts cluster runs that completed their drain.
	RunsFinished int64 `json:"runs_finished"`
	// Routed counts arrivals dispatched to a device.
	Routed int64 `json:"routed"`
	// Shed counts arrivals dropped at the router (no eligible device,
	// or a tiered admission refusal).
	Shed int64 `json:"shed"`
	// Barriers counts telemetry barriers crossed (each one concurrent
	// device advancement plus a serial signal refresh).
	Barriers int64 `json:"barriers"`
	// BreakerOpens counts router-side device health-breaker opens.
	BreakerOpens int64 `json:"breaker_opens"`
	// Stolen counts queries migrated between devices at barrier
	// re-route phases; StolenPrefilled is the subset that moved with a
	// finished prefill (and paid the KV handoff penalty).
	Stolen int64 `json:"stolen"`
	// StolenPrefilled counts migrations of prefilled queries.
	StolenPrefilled int64 `json:"stolen_prefilled"`
}

// Snapshot reads every counter atomically and returns the copy.
func (l *LiveStats) Snapshot() LiveSnapshot {
	return LiveSnapshot{
		RunsStarted:     l.runsStarted.Load(),
		RunsFinished:    l.runsFinished.Load(),
		Routed:          l.routed.Load(),
		Shed:            l.shed.Load(),
		Barriers:        l.barriers.Load(),
		BreakerOpens:    l.breakerOpens.Load(),
		Stolen:          l.stolen.Load(),
		StolenPrefilled: l.stolenPrefilled.Load(),
	}
}
