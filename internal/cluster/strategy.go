package cluster

import "fmt"

// Class is a query's priority tier. The SLOTiered strategy admits
// Interactive traffic unconditionally and sheds Standard, then Batch,
// as the fleet's least-loaded device deepens; the other strategies
// route all classes identically (the class still labels shed counts).
type Class int

const (
	// Interactive queries are user-facing turns: never shed while any
	// device is eligible.
	Interactive Class = iota
	// Standard queries are ordinary background requests.
	Standard
	// Batch queries are deferrable bulk work: first to shed.
	Batch
	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// String names the priority class.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Standard:
		return "standard"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// StrategyKind identifies a balancing strategy.
type StrategyKind int

const (
	// RoundRobin cycles through eligible devices in index order —
	// the oblivious baseline.
	RoundRobin StrategyKind = iota
	// LeastLoaded routes to the eligible device with the fewest
	// in-flight queries (router's ledger view), lowest index on ties.
	LeastLoaded
	// LatencyWeighted routes to the eligible device minimizing
	// observed-TTFT-EWMA × (in-flight + 1) — an expected-wait proxy
	// that sends work to fast and idle devices first. Devices with no
	// observation yet score zero, so every device gets probed.
	LatencyWeighted
	// SLOTiered is LeastLoaded plus classful admission: when even the
	// least-loaded eligible device is deeper than the Standard (or
	// Batch) shed threshold, arrivals of that class are shed at the
	// router to protect Interactive latency.
	SLOTiered
)

// String names the strategy.
func (k StrategyKind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case LatencyWeighted:
		return "latency-weighted"
	case SLOTiered:
		return "slo-tiered"
	default:
		return fmt.Sprintf("strategy(%d)", int(k))
	}
}

// ParseStrategy resolves a command-line strategy name.
func ParseStrategy(s string) (StrategyKind, error) {
	for _, k := range Strategies() {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown strategy %q (round-robin, least-loaded, latency-weighted, slo-tiered)", s)
}

// Strategies lists the balancing strategies in presentation order.
func Strategies() []StrategyKind {
	return []StrategyKind{RoundRobin, LeastLoaded, LatencyWeighted, SLOTiered}
}

// DeviceView is the router's frozen per-device signal set offered to a
// strategy: ledger state updated at arrival granularity plus telemetry
// refreshed at the last barrier. Strategies read views; only the router
// writes them.
type DeviceView struct {
	// Eligible is false while the device's health breaker blocks it;
	// no strategy may pick an ineligible device.
	Eligible bool
	// InFlight is the router's ledger count of queries assigned to the
	// device and not yet observed terminal — assignment-time knowledge,
	// ahead of the device's own barrier-frozen counters.
	InFlight int
	// TTFTEWMA is the exponentially-weighted moving average of the
	// device's observed TTFT samples (0 until the first observation).
	TTFTEWMA float64
}

// QueryInfo describes one arrival being routed.
type QueryInfo struct {
	// ID is the cluster-wide arrival index.
	ID int
	// Arrival is the arrival time on the cluster clock.
	Arrival float64
	// Prefill and Decode are the token lengths.
	Prefill, Decode int
	// Class is the priority tier.
	Class Class
}

// Strategy picks the device for each arrival. Implementations must be
// deterministic functions of (their own state, views, q): the router
// calls Pick serially in arrival order, so any internal state (e.g. the
// round-robin cursor) evolves deterministically too.
type Strategy interface {
	// Kind identifies the strategy.
	Kind() StrategyKind
	// Pick returns the index of the chosen device, or -1 to shed the
	// arrival. Picking an ineligible device is a contract violation.
	Pick(views []DeviceView, q QueryInfo) int
}

// NewStrategy builds a fresh strategy instance (cursor state zeroed)
// for one run.
func NewStrategy(k StrategyKind, cfg Config) Strategy {
	switch k {
	case LeastLoaded:
		return leastLoaded{}
	case LatencyWeighted:
		return latencyWeighted{}
	case SLOTiered:
		return &sloTiered{shedStandard: cfg.ShedStandard, shedBatch: cfg.ShedBatch}
	default:
		return &roundRobin{}
	}
}

// roundRobin cycles a cursor over eligible devices.
type roundRobin struct {
	next int
}

// Kind identifies the strategy.
func (*roundRobin) Kind() StrategyKind { return RoundRobin }

// Pick returns the next eligible device at or after the cursor.
func (r *roundRobin) Pick(views []DeviceView, _ QueryInfo) int {
	n := len(views)
	for off := 0; off < n; off++ {
		i := (r.next + off) % n
		if views[i].Eligible {
			r.next = (i + 1) % n
			return i
		}
	}
	return -1
}

// leastLoaded picks the shallowest eligible device.
type leastLoaded struct{}

// Kind identifies the strategy.
func (leastLoaded) Kind() StrategyKind { return LeastLoaded }

// Pick returns the eligible device with minimum in-flight count
// (lowest index on ties), or -1 when none is eligible.
func (leastLoaded) Pick(views []DeviceView, _ QueryInfo) int {
	best, depth := -1, 0
	for i := range views {
		if !views[i].Eligible {
			continue
		}
		if best < 0 || views[i].InFlight < depth {
			best, depth = i, views[i].InFlight
		}
	}
	return best
}

// latencyWeighted minimizes an expected-wait proxy.
type latencyWeighted struct{}

// Kind identifies the strategy.
func (latencyWeighted) Kind() StrategyKind { return LatencyWeighted }

// Pick returns the eligible device minimizing TTFTEWMA × (InFlight+1),
// lowest index on ties; unobserved devices score 0 and win first.
func (latencyWeighted) Pick(views []DeviceView, _ QueryInfo) int {
	best := -1
	var score float64
	for i := range views {
		if !views[i].Eligible {
			continue
		}
		s := views[i].TTFTEWMA * float64(views[i].InFlight+1)
		if best < 0 || s < score {
			best, score = i, s
		}
	}
	return best
}

// sloTiered is least-loaded routing behind classful admission gates.
type sloTiered struct {
	shedStandard int
	shedBatch    int
}

// Kind identifies the strategy.
func (*sloTiered) Kind() StrategyKind { return SLOTiered }

// Pick admits the arrival against its class's depth threshold — judged
// on the least-loaded eligible device, so a single hot device cannot
// shed traffic the rest of the fleet could take — then routes
// least-loaded.
func (t *sloTiered) Pick(views []DeviceView, q QueryInfo) int {
	best := leastLoaded{}.Pick(views, q)
	if best < 0 {
		return -1
	}
	depth := views[best].InFlight
	switch q.Class {
	case Standard:
		if depth >= t.shedStandard {
			return -1
		}
	case Batch:
		if depth >= t.shedBatch {
			return -1
		}
	}
	return best
}
