package cluster

import (
	"testing"
)

// v builds a DeviceView row for the scripted strategy tests.
func v(eligible bool, inflight int, ewma float64) DeviceView {
	return DeviceView{Eligible: eligible, InFlight: inflight, TTFTEWMA: ewma}
}

// picks feeds one scripted view set to a strategy repeatedly and
// records the pick sequence, mutating the views' in-flight counts the
// way the router's ledger would.
func picks(s Strategy, views []DeviceView, qs []QueryInfo) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		p := s.Pick(views, q)
		out[i] = p
		if p >= 0 {
			views[p].InFlight++
		}
	}
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundRobinOrder(t *testing.T) {
	s := NewStrategy(RoundRobin, Config{})
	views := []DeviceView{v(true, 0, 0), v(false, 0, 0), v(true, 0, 0)}
	qs := make([]QueryInfo, 5)
	// Ineligible device 1 is skipped; the cursor wraps past it.
	if got := picks(s, views, qs); !eq(got, []int{0, 2, 0, 2, 0}) {
		t.Errorf("round-robin picks %v", got)
	}
	// All devices blocked: shed.
	none := []DeviceView{v(false, 0, 0), v(false, 0, 0)}
	if p := s.Pick(none, QueryInfo{}); p != -1 {
		t.Errorf("round-robin picked %d from an empty candidate set", p)
	}
}

func TestLeastLoadedOrder(t *testing.T) {
	s := NewStrategy(LeastLoaded, Config{})
	views := []DeviceView{v(true, 2, 0), v(true, 0, 0), v(true, 1, 0)}
	// Fills the shallowest first, then lowest index on depth ties.
	if got := picks(s, views, make([]QueryInfo, 4)); !eq(got, []int{1, 1, 2, 0}) {
		t.Errorf("least-loaded picks %v", got)
	}
	// An ineligible device never wins, however shallow.
	views = []DeviceView{v(false, 0, 0), v(true, 9, 0)}
	if p := s.Pick(views, QueryInfo{}); p != 1 {
		t.Errorf("least-loaded picked %d past an ineligible device", p)
	}
}

func TestLatencyWeightedOrder(t *testing.T) {
	s := NewStrategy(LatencyWeighted, Config{})
	// Unobserved device 2 scores zero and is probed before the fast one.
	views := []DeviceView{v(true, 0, 0.9), v(true, 0, 0.1), v(true, 0, 0)}
	if p := s.Pick(views, QueryInfo{}); p != 2 {
		t.Errorf("latency-weighted skipped the unobserved device: picked %d", p)
	}
	// With all devices observed, expected wait EWMA*(inflight+1) rules:
	// the fast device absorbs load until its queue outweighs its speed.
	views = []DeviceView{v(true, 0, 0.9), v(true, 0, 0.1), v(true, 0, 0.4)}
	got := picks(s, views, make([]QueryInfo, 5))
	// Scores start 0.9/0.1/0.4: device 1 wins until 0.1*(n+1) exceeds
	// 0.4 (the 0.4-vs-0.4 tie stays on the lower index).
	if !eq(got, []int{1, 1, 1, 1, 2}) {
		t.Errorf("latency-weighted picks %v", got)
	}
}

func TestSLOTieredAdmission(t *testing.T) {
	s := NewStrategy(SLOTiered, Config{ShedStandard: 3, ShedBatch: 1}.withDefaults())
	views := []DeviceView{v(true, 2, 0), v(true, 1, 0)}
	// Least-loaded depth is 1: Batch is at its threshold and sheds,
	// Standard and Interactive are admitted.
	if p := s.Pick(views, QueryInfo{Class: Batch}); p != -1 {
		t.Errorf("batch admitted at depth 1 with threshold 1: device %d", p)
	}
	if p := s.Pick(views, QueryInfo{Class: Standard}); p != 1 {
		t.Errorf("standard routed to %d, want least-loaded 1", p)
	}
	// Interactive is admitted at any depth while a device is eligible.
	deep := []DeviceView{v(true, 100, 0)}
	if p := s.Pick(deep, QueryInfo{Class: Interactive}); p != 0 {
		t.Errorf("interactive shed at depth 100: pick %d", p)
	}
	if p := s.Pick(deep, QueryInfo{Class: Standard}); p != -1 {
		t.Errorf("standard admitted at depth 100 with threshold 3: device %d", p)
	}
}

func TestParseStrategyRoundTrips(t *testing.T) {
	for _, k := range Strategies() {
		got, err := ParseStrategy(k.String())
		if err != nil || got != k {
			t.Errorf("ParseStrategy(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseStrategy("random"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

func TestParseFleet(t *testing.T) {
	classes, err := ParseFleet("jetson:2, ideapad/mac8:3 ,iphone:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 || classes[0].Count != 2 || classes[1].MACIntervalCycles != 8 || classes[2].Count != 1 {
		t.Errorf("ParseFleet = %+v", classes)
	}
	for _, bad := range []string{"", "jetson", "vax:3", "jetson:0", "jetson/mac0:2", "jetson:two"} {
		if _, err := ParseFleet(bad); err == nil {
			t.Errorf("ParseFleet(%q) accepted", bad)
		}
	}
}

func TestScaleFleet(t *testing.T) {
	base := []DeviceClass{
		{Platform: fleetPlatforms["jetson"], Count: 1},
		{Platform: fleetPlatforms["macbook"], Count: 1},
		{Platform: fleetPlatforms["ideapad"], Count: 1},
		{Platform: fleetPlatforms["iphone"], Count: 1},
	}
	for _, total := range []int{1, 4, 5, 7, 100, 104} {
		got := ScaleFleet(base, total)
		sum := 0
		for _, c := range got {
			if c.Count < 1 {
				t.Errorf("total %d: class scaled below one device: %+v", total, got)
			}
			sum += c.Count
		}
		want := total
		if want < len(base) {
			want = len(base)
		}
		if sum != want {
			t.Errorf("ScaleFleet(total=%d) assigned %d devices: %+v", total, sum, got)
		}
	}
	// Ratio preservation: a 3:1 mix scaled to 8 stays 6:2.
	mix := []DeviceClass{
		{Platform: fleetPlatforms["jetson"], Count: 3},
		{Platform: fleetPlatforms["iphone"], Count: 1},
	}
	got := ScaleFleet(mix, 8)
	if got[0].Count != 6 || got[1].Count != 2 {
		t.Errorf("ScaleFleet 3:1 to 8 = %d:%d", got[0].Count, got[1].Count)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Strategy: LeastLoaded, ArrivalRate: 2, Queries: 10}.withDefaults()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Strategy: -1, ArrivalRate: 2, Queries: 10},
		{Strategy: LeastLoaded, ArrivalRate: 0, Queries: 10},
		{Strategy: LeastLoaded, ArrivalRate: 2, Queries: 0},
		{Strategy: LeastLoaded, ArrivalRate: 2, Queries: 10, FaultMTBF: 100},
		{Strategy: LeastLoaded, ArrivalRate: 2, Queries: 10, FaultFraction: 1.5},
		{Strategy: LeastLoaded, ArrivalRate: 2, Queries: 10, EWMAAlpha: 2},
		{Strategy: LeastLoaded, ArrivalRate: 2, Queries: 10, QueueCap: -1},
	}
	for i, c := range bad {
		if err := c.withDefaults().Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}
