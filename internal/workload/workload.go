// Package workload generates the (prefill, decode) token-length samples
// driving the paper's real-world dataset evaluation (Figs. 15-16).
//
// The paper samples the Alpaca dataset (LLM virtual-assistant traffic) and
// the autocompletion subset of RealHumanEval (code completion traffic),
// tokenizes them, and uses the token counts as input/output lengths. The
// datasets themselves are not redistributable here, so this package
// synthesizes deterministic samples from log-normal length distributions
// fitted to the published statistics of each dataset:
//
//   - Alpaca: short conversational prompts (instruction+input, ~20 tokens
//     median) with medium-length GPT-3.5 answers (~65 tokens median).
//   - RealHumanEval autocompletion: long code-context prompts (~250
//     tokens median) with short completions (~25 tokens median).
//
// The TTFT/TTLT comparison depends only on these length distributions,
// which is what makes the substitution behaviour-preserving.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Query is one inference request: prefill (input) and decode (output)
// token counts.
type Query struct {
	Prefill int
	Decode  int
}

// Dataset is a named collection of queries.
type Dataset struct {
	Name    string
	Queries []Query
}

// LengthDist is a clamped log-normal token-length distribution.
type LengthDist struct {
	// MedianTokens is exp(mu).
	MedianTokens float64
	// Sigma is the log-space standard deviation.
	Sigma float64
	// Min and Max clamp the sample.
	Min, Max int
}

// Sample draws one length.
func (d LengthDist) Sample(rng *rand.Rand) int {
	v := math.Exp(math.Log(d.MedianTokens) + d.Sigma*rng.NormFloat64())
	n := int(v + 0.5)
	if n < d.Min {
		n = d.Min
	}
	if n > d.Max {
		n = d.Max
	}
	return n
}

// Spec describes a synthetic dataset.
type Spec struct {
	Name    string
	Prefill LengthDist
	Decode  LengthDist
}

// AlpacaSpec matches the Alpaca conversation profile.
func AlpacaSpec() Spec {
	return Spec{
		Name:    "Alpaca",
		Prefill: LengthDist{MedianTokens: 20, Sigma: 0.8, Min: 2, Max: 512},
		Decode:  LengthDist{MedianTokens: 65, Sigma: 0.7, Min: 2, Max: 512},
	}
}

// AutocompleteSpec matches the RealHumanEval autocompletion profile.
func AutocompleteSpec() Spec {
	return Spec{
		Name:    "Code autocompletion",
		Prefill: LengthDist{MedianTokens: 250, Sigma: 0.7, Min: 8, Max: 2048},
		Decode:  LengthDist{MedianTokens: 25, Sigma: 0.6, Min: 1, Max: 128},
	}
}

// Generate draws n queries deterministically from a spec.
func Generate(spec Spec, n int, seed int64) (Dataset, error) {
	if n <= 0 {
		return Dataset{}, fmt.Errorf("workload: sample size %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{Name: spec.Name, Queries: make([]Query, n)}
	for i := range ds.Queries {
		ds.Queries[i] = Query{
			Prefill: spec.Prefill.Sample(rng),
			Decode:  spec.Decode.Sample(rng),
		}
	}
	return ds, nil
}

// MeanPrefill and MeanDecode summarize a dataset.
func (d Dataset) MeanPrefill() float64 {
	if len(d.Queries) == 0 {
		return 0
	}
	var s int
	for _, q := range d.Queries {
		s += q.Prefill
	}
	return float64(s) / float64(len(d.Queries))
}

// MeanDecode returns the mean output length.
func (d Dataset) MeanDecode() float64 {
	if len(d.Queries) == 0 {
		return 0
	}
	var s int
	for _, q := range d.Queries {
		s += q.Decode
	}
	return float64(s) / float64(len(d.Queries))
}
