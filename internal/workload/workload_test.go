package workload

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(AlpacaSpec(), 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(AlpacaSpec(), 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
	c, err := Generate(AlpacaSpec(), 100, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Queries {
		if a.Queries[i] != c.Queries[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateBounds(t *testing.T) {
	for _, spec := range []Spec{AlpacaSpec(), AutocompleteSpec()} {
		ds, err := Generate(spec, 2000, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ds.Queries {
			if q.Prefill < spec.Prefill.Min || q.Prefill > spec.Prefill.Max {
				t.Fatalf("%s: prefill %d out of [%d,%d]", spec.Name, q.Prefill, spec.Prefill.Min, spec.Prefill.Max)
			}
			if q.Decode < spec.Decode.Min || q.Decode > spec.Decode.Max {
				t.Fatalf("%s: decode %d out of [%d,%d]", spec.Name, q.Decode, spec.Decode.Min, spec.Decode.Max)
			}
		}
	}
}

func TestDatasetProfilesDiffer(t *testing.T) {
	// The defining property of the two workloads: conversation has
	// short prompts and longer answers; autocompletion is the reverse.
	alpaca, err := Generate(AlpacaSpec(), 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(AutocompleteSpec(), 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(alpaca.MeanPrefill() < alpaca.MeanDecode()) {
		t.Errorf("Alpaca prefill %.1f !< decode %.1f", alpaca.MeanPrefill(), alpaca.MeanDecode())
	}
	if !(code.MeanPrefill() > code.MeanDecode()) {
		t.Errorf("autocomplete prefill %.1f !> decode %.1f", code.MeanPrefill(), code.MeanDecode())
	}
	if !(code.MeanPrefill() > 4*alpaca.MeanPrefill()) {
		t.Errorf("code prompts (%.1f) not much longer than chat prompts (%.1f)",
			code.MeanPrefill(), alpaca.MeanPrefill())
	}
}

func TestLengthDistClamps(t *testing.T) {
	d := LengthDist{MedianTokens: 100, Sigma: 5, Min: 10, Max: 20}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 10 || v > 20 {
			t.Fatalf("sample %d escaped clamp", v)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(AlpacaSpec(), 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMeansOnEmptyDataset(t *testing.T) {
	var d Dataset
	if d.MeanPrefill() != 0 || d.MeanDecode() != 0 {
		t.Error("empty dataset means must be 0")
	}
}
