// Package pim models near-bank DRAM PIM devices (SK Hynix AiM-style, with
// the HBM-PIM chunk variant) executing GEMV in lock-step, all-bank mode on
// top of the cycle-level DRAM timing engine of internal/dram.
//
// The execution model follows the paper's description (Sec. II-B/II-C and
// VI-A): every bank has a processing unit; the 16 banks of a rank share a
// global input buffer the size of a DRAM row (2 KB); a single all-bank MAC
// command makes every bank read one burst of weights from its open row and
// multiply it against the matching slice of the global buffer. Input
// vectors are broadcast into the global buffers over the channel data bus;
// accumulated outputs are drained the same way; partial sums of
// column-partitioned rows are reduced by the SoC.
package pim

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
)

// Config describes one PIM-enabled memory device.
type Config struct {
	// Chunk is the per-PU computation unit (AiM: 1 x one DRAM row).
	Chunk mapping.ChunkConfig
	// MACIntervalCycles is the minimum spacing of all-bank MAC commands
	// on one rank, in burst cycles. It sets the internal compute
	// bandwidth: one MAC moves banksPerRank x transferBytes of weights
	// into the PUs. The default of 6 calibrates the aggregate internal
	// bandwidth to the multiple of external bandwidth implied by the
	// paper's Fig. 3 (PIM ~3.3x over an ideal bandwidth-bound NPU
	// end-to-end).
	MACIntervalCycles int
	// GlobalBufferBytes is the shared input buffer per rank; the paper
	// assumes one DRAM row (2 KB).
	GlobalBufferBytes int
}

// DefaultAiM returns the paper's evaluation configuration for a geometry:
// AiM-style PIM where 16 banks of each rank share a row-sized buffer.
func DefaultAiM(g dram.Geometry) Config {
	return Config{
		Chunk:             mapping.AiMChunk(g),
		MACIntervalCycles: 6,
		GlobalBufferBytes: g.RowBytes,
	}
}

// DefaultHBMPIM returns an HBM-PIM-style configuration.
func DefaultHBMPIM(g dram.Geometry) Config {
	return Config{
		Chunk:             mapping.HBMPIMChunk(g),
		MACIntervalCycles: 6,
		GlobalBufferBytes: g.RowBytes,
	}
}

// Validate checks the configuration against a geometry.
func (c Config) Validate(g dram.Geometry) error {
	if err := c.Chunk.Validate(g); err != nil {
		return err
	}
	if c.MACIntervalCycles < 1 {
		return fmt.Errorf("pim: MACIntervalCycles %d must be >= 1", c.MACIntervalCycles)
	}
	if c.GlobalBufferBytes < g.RowBytes {
		return fmt.Errorf("pim: global buffer %d B smaller than a DRAM row %d B",
			c.GlobalBufferBytes, g.RowBytes)
	}
	return nil
}

// InternalBandwidthGBs returns the peak internal (in-device) weight
// bandwidth of the whole memory system: every bank streams one burst per
// MAC interval.
func (c Config) InternalBandwidthGBs(spec dram.Spec) float64 {
	g := spec.Geometry
	bytesPerInterval := float64(g.TotalBanks() * g.TransferBytes)
	intervalSec := float64(c.MACIntervalCycles) * spec.Timing.CycleNS * 1e-9
	return bytesPerInterval / intervalSec / 1e9
}
