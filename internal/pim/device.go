package pim

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/parallel"
)

// GEMVResult reports one simulated GEMV execution.
type GEMVResult struct {
	// Cycles is the per-channel completion cycle (channels run the same
	// lock-step schedule, so one channel's timeline is the system's).
	Cycles int64
	// Seconds is Cycles in wall-clock time.
	Seconds float64
	// MACs is the number of all-bank MAC commands issued per rank.
	MACs int64
	// Activations is the number of all-bank row activations per rank.
	Activations int64
	// InputBursts / OutputBursts is the data-bus traffic per channel.
	InputBursts  int64
	OutputBursts int64
	// PartialSums reports the column-partition factor; values > 1 mean
	// the SoC must reduce that many partial outputs per element.
	PartialSums int
	// EffectiveInternalGBs is weight bytes / Seconds for the whole
	// system.
	EffectiveInternalGBs float64
}

// Device simulates GEMV offload onto a PIM-enabled memory system. GEMV
// timings are cached per matrix shape: the schedule depends only on the
// placement, not on values.
//
// A Device is safe for concurrent use: the configuration is immutable
// after NewDevice and the shape cache is internally synchronized with
// in-flight deduplication, so concurrent misses on the same shape
// simulate the schedule exactly once and share the result.
type Device struct {
	spec dram.Spec
	cfg  Config
	mem  mapping.MemoryConfig

	cach parallel.Flight[mapping.MatrixConfig, GEMVResult]
}

// NewDevice validates the configuration and builds a device.
func NewDevice(spec dram.Spec, cfg Config) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(spec.Geometry); err != nil {
		return nil, err
	}
	return &Device{
		spec: spec,
		cfg:  cfg,
		mem:  mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20},
	}, nil
}

// Spec returns the memory spec.
func (d *Device) Spec() dram.Spec { return d.spec }

// Config returns the PIM configuration.
func (d *Device) Config() Config { return d.cfg }

// GEMV simulates y = W·x for a weight matrix placed by FACIL's mapping
// selector. The schedule per channel:
//
//	for each 2 KB input segment:
//	    broadcast the segment into each rank's global buffer (data bus)
//	    for each DRAM row (pass) using that segment:
//	        all-bank ACT on each rank
//	        one all-bank MAC per burst of the row, ranks interleaved
//	        all-bank PRE on each rank
//	drain accumulated outputs over the data bus
//
// Channels execute identical lock-step schedules, so a single channel is
// simulated and its completion time is the device's.
func (d *Device) GEMV(matrix mapping.MatrixConfig) (GEMVResult, error) {
	return d.cach.Do(matrix, func() (GEMVResult, error) {
		return d.gemv(matrix)
	})
}

// gemv simulates one GEMV schedule; GEMV memoizes it per shape.
func (d *Device) gemv(matrix mapping.MatrixConfig) (GEMVResult, error) {
	sel, err := mapping.SelectMapping(matrix, d.mem, d.cfg.Chunk)
	if err != nil {
		return GEMVResult{}, err
	}
	g := d.spec.Geometry
	res := GEMVResult{PartialSums: sel.PartitionsPerRow}

	rowBytes := int64(matrix.PaddedRowBytes())
	totalBytes := int64(matrix.Rows) * rowBytes
	// Weight bytes per bank, rounded up to whole DRAM rows.
	perBank := (totalBytes + int64(g.TotalBanks()) - 1) / int64(g.TotalBanks())
	dramRowsPerBank := int((perBank + int64(g.RowBytes) - 1) / int64(g.RowBytes))
	if dramRowsPerBank == 0 {
		dramRowsPerBank = 1
	}
	// Input segments: the vector is consumed in global-buffer-sized
	// slices. A partitioned matrix splits the vector across PU groups,
	// but every segment still reaches every rank's buffer over the bus.
	inBytes := int64(matrix.Cols) * int64(matrix.DTypeBytes)
	segments := int((inBytes + int64(g.RowBytes) - 1) / int64(g.RowBytes))
	if segments == 0 {
		segments = 1
	}
	// Passes per segment: DRAM rows per bank are spread evenly over the
	// segments they consume.
	passesPerSeg := (dramRowsPerBank + segments - 1) / segments

	burstsPerRow := g.ColumnsPerRow()
	segBursts := d.cfg.GlobalBufferBytes / g.TransferBytes

	ch := dram.NewChannel(&d.spec)
	ranks := g.RanksPerChannel
	row := 0
	passesLeft := dramRowsPerBank
	for seg := 0; seg < segments && passesLeft > 0; seg++ {
		for rk := 0; rk < ranks; rk++ {
			if _, err := ch.WriteGlobalBuffer(rk, segBursts); err != nil {
				return GEMVResult{}, err
			}
			res.InputBursts += int64(segBursts)
		}
		passes := passesPerSeg
		if passes > passesLeft {
			passes = passesLeft
		}
		for p := 0; p < passes; p++ {
			for rk := 0; rk < ranks; rk++ {
				if _, err := ch.AllBankACT(rk, row%g.Rows); err != nil {
					return GEMVResult{}, err
				}
			}
			res.Activations++
			for b := 0; b < burstsPerRow; b++ {
				for rk := 0; rk < ranks; rk++ {
					if _, err := ch.AllBankMAC(rk, b, d.cfg.MACIntervalCycles); err != nil {
						return GEMVResult{}, err
					}
				}
				res.MACs++
			}
			for rk := 0; rk < ranks; rk++ {
				if _, err := ch.AllBankPRE(rk); err != nil {
					return GEMVResult{}, err
				}
			}
			row++
		}
		passesLeft -= passes
	}
	// Output drain: Rows x PartitionsPerRow partial elements system-
	// wide, spread across channels.
	outElems := int64(matrix.Rows) * int64(sel.PartitionsPerRow)
	outBytes := outElems * int64(matrix.DTypeBytes)
	outBurstsPerChannel := int((outBytes/int64(g.Channels) + int64(g.TransferBytes) - 1) / int64(g.TransferBytes))
	perRank := (outBurstsPerChannel + ranks - 1) / ranks
	for rk := 0; rk < ranks; rk++ {
		if _, err := ch.ReadMACResults(rk, perRank); err != nil {
			return GEMVResult{}, err
		}
		res.OutputBursts += int64(perRank)
	}

	res.Cycles = ch.Now()
	res.Seconds = d.spec.Timing.Seconds(res.Cycles)
	if res.Seconds > 0 {
		res.EffectiveInternalGBs = float64(totalBytes) / res.Seconds / 1e9
	}
	return res, nil
}

// GEMVSeconds is a convenience wrapper returning only the latency.
func (d *Device) GEMVSeconds(matrix mapping.MatrixConfig) (float64, error) {
	r, err := d.GEMV(matrix)
	if err != nil {
		return 0, err
	}
	return r.Seconds, nil
}

// GEMMSeconds models a prefill GEMM executed on PIM as L back-to-back
// GEMV passes: the weights stream from the banks once per input row (the
// global buffer holds one input vector at a time), so latency scales
// linearly with L. This is what makes PIM competitive only for
// tall-and-skinny GEMMs (paper Sec. VI-C, "hybrid dynamic").
func (d *Device) GEMMSeconds(matrix mapping.MatrixConfig, l int) (float64, error) {
	if l <= 0 {
		return 0, fmt.Errorf("pim: GEMM length %d must be positive", l)
	}
	s, err := d.GEMVSeconds(matrix)
	if err != nil {
		return 0, err
	}
	return float64(l) * s, nil
}
