package pim

import (
	"testing"

	"facil/internal/dram"
	"facil/internal/mapping"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	spec, err := dram.LPDDR5("pim test", 64, 6400, 2, 2<<30) // 4 channels
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(spec, DefaultAiM(spec.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGEMVBeatsExternalBandwidth(t *testing.T) {
	// The whole point of near-bank PIM: GEMV faster than streaming the
	// weights over the external bus.
	d := testDevice(t)
	m := mapping.MatrixConfig{Rows: 4096, Cols: 4096, DTypeBytes: 2}
	res, err := d.GEMV(m)
	if err != nil {
		t.Fatal(err)
	}
	ext := d.Spec().PeakBandwidthGBs()
	if res.EffectiveInternalGBs < 2*ext {
		t.Errorf("internal BW %.1f GB/s not well above external %.1f", res.EffectiveInternalGBs, ext)
	}
	// And bounded by the configured MAC cadence.
	peakInternal := d.Config().InternalBandwidthGBs(d.Spec())
	if res.EffectiveInternalGBs > peakInternal {
		t.Errorf("internal BW %.1f exceeds theoretical %.1f", res.EffectiveInternalGBs, peakInternal)
	}
}

func TestGEMVScalesWithMatrixSize(t *testing.T) {
	d := testDevice(t)
	small, err := d.GEMVSeconds(mapping.MatrixConfig{Rows: 1024, Cols: 4096, DTypeBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := d.GEMVSeconds(mapping.MatrixConfig{Rows: 4096, Cols: 4096, DTypeBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := large / small
	if r < 3 || r > 5 {
		t.Errorf("4x weights scaled time by %.2f, want ~4", r)
	}
}

func TestGEMVCommandAccounting(t *testing.T) {
	d := testDevice(t)
	g := d.Spec().Geometry
	m := mapping.MatrixConfig{Rows: 2048, Cols: 4096, DTypeBytes: 2} // 16 MiB padded
	res, err := d.GEMV(m)
	if err != nil {
		t.Fatal(err)
	}
	// Per bank: 16 MiB / 128 banks = 128 KiB of DRAM rows.
	wantRows := 16 << 20 / int64(g.TotalBanks()) / int64(g.RowBytes)
	if res.Activations != wantRows {
		t.Errorf("Activations = %d, want %d", res.Activations, wantRows)
	}
	if res.MACs != wantRows*int64(g.ColumnsPerRow()) {
		t.Errorf("MACs = %d, want %d", res.MACs, wantRows*int64(g.ColumnsPerRow()))
	}
	// Input: 8 KB vector = 4 segments x 64 bursts x 2 ranks.
	if res.InputBursts != 4*64*2 {
		t.Errorf("InputBursts = %d, want 512", res.InputBursts)
	}
	if res.PartialSums != 1 {
		t.Errorf("PartialSums = %d, want 1", res.PartialSums)
	}
	if res.OutputBursts <= 0 {
		t.Error("no output drain traffic")
	}
}

func TestGEMVPartitionedReportsPartialSums(t *testing.T) {
	d := testDevice(t)
	// 32768-column rows (64 KB) exceed the per-bank huge-page share
	// (2 MB / 128 banks = 16 KB): partitioned across 4 PUs.
	m := mapping.MatrixConfig{Rows: 128, Cols: 32768, DTypeBytes: 2}
	res, err := d.GEMV(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialSums != 4 {
		t.Errorf("PartialSums = %d, want 4", res.PartialSums)
	}
}

func TestGEMVCached(t *testing.T) {
	d := testDevice(t)
	m := mapping.MatrixConfig{Rows: 1024, Cols: 1024, DTypeBytes: 2}
	a, err := d.GEMV(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.GEMV(m)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached result differs")
	}
}

func TestGEMMSecondsLinearInL(t *testing.T) {
	d := testDevice(t)
	m := mapping.MatrixConfig{Rows: 1024, Cols: 4096, DTypeBytes: 2}
	one, err := d.GEMMSeconds(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := d.GEMMSeconds(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r := eight / one; r < 7.99 || r > 8.01 {
		t.Errorf("GEMM L=8 / L=1 = %.3f, want 8", r)
	}
	if _, err := d.GEMMSeconds(m, 0); err == nil {
		t.Error("L=0 accepted")
	}
}

func TestMACIntervalGovernsGEMV(t *testing.T) {
	spec, err := dram.LPDDR5("pim cadence", 64, 6400, 2, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	m := mapping.MatrixConfig{Rows: 2048, Cols: 4096, DTypeBytes: 2}
	run := func(interval int) float64 {
		cfg := DefaultAiM(spec.Geometry)
		cfg.MACIntervalCycles = interval
		d, err := NewDevice(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.GEMVSeconds(m)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	fast, slow := run(2), run(8)
	if r := slow / fast; r < 2.5 {
		t.Errorf("4x MAC interval sped ratio %.2f, want >= 2.5", r)
	}
}

func TestHBMPIMStyleRuns(t *testing.T) {
	spec, err := dram.LPDDR5("pim hbm-style", 64, 6400, 2, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(spec, DefaultHBMPIM(spec.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.GEMV(mapping.MatrixConfig{Rows: 4096, Cols: 128, DTypeBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Error("zero-latency GEMV")
	}
}

func TestConfigValidate(t *testing.T) {
	g := dram.JetsonOrinLPDDR5.Geometry
	cfg := DefaultAiM(g)
	cfg.MACIntervalCycles = 0
	if err := cfg.Validate(g); err == nil {
		t.Error("zero MAC interval accepted")
	}
	cfg = DefaultAiM(g)
	cfg.GlobalBufferBytes = 128
	if err := cfg.Validate(g); err == nil {
		t.Error("sub-row global buffer accepted")
	}
	if err := DefaultAiM(g).Validate(g); err != nil {
		t.Error(err)
	}
}

func TestInternalBandwidthFormula(t *testing.T) {
	spec := dram.JetsonOrinLPDDR5 // 512 banks, 2.5 ns cycle
	cfg := DefaultAiM(spec.Geometry)
	got := cfg.InternalBandwidthGBs(spec)
	// 512 banks x 32 B / (6 x 2.5 ns) = 1092 GB/s.
	want := 512.0 * 32 / (6 * 2.5e-9) / 1e9
	if diff := got - want; diff > 1 || diff < -1 {
		t.Errorf("InternalBandwidthGBs = %.1f, want %.1f", got, want)
	}
}
