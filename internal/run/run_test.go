package run

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"facil/internal/engine"
	"facil/internal/exp"
)

func TestDecodeDefaults(t *testing.T) {
	sc, err := Decode(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.QueueCap != -1 || sc.SLO != -1 {
		t.Errorf("empty scenario = %+v, want queuecap/slo at their -1 sentinels", sc)
	}
	sc, err = Decode(strings.NewReader(`{"queuecap": 0, "slo": 0, "experiments": ["fig3"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.QueueCap != 0 || sc.SLO != 0 {
		t.Errorf("explicit zeros decoded as %+v, want unbounded queue / no SLO", sc)
	}
	if !reflect.DeepEqual(sc.Experiments, []string{"fig3"}) {
		t.Errorf("experiments = %v", sc.Experiments)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"quries": 5}`)); err == nil {
		t.Fatal("typo'd field decoded without error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sc := DefaultScenario()
	sc.Experiments = []string{"serving2"}
	sc.Rates = "0.5,1"
	sc.QueueCap = 0
	sc.SLO = 12.5
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Errorf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestIDsDefaultsToAll(t *testing.T) {
	if got := DefaultScenario().IDs(); !reflect.DeepEqual(got, exp.AllIDs) {
		t.Errorf("empty scenario IDs = %v, want exp.AllIDs", got)
	}
	sc := Scenario{Experiments: []string{"tab2", "fig3"}}
	if got := sc.IDs(); !reflect.DeepEqual(got, []string{"tab2", "fig3"}) {
		t.Errorf("IDs = %v", got)
	}
}

func TestArgsCanonicalForm(t *testing.T) {
	if got := DefaultScenario().Args(); len(got) != 0 {
		t.Errorf("default scenario Args = %v, want none", got)
	}
	sc := DefaultScenario()
	sc.Experiments = []string{"serving2", "resilience"}
	sc.Queries = 40
	sc.QueueCap = 0
	sc.SLO = 20
	sc.Policy = "failover"
	want := []string{"-id", "serving2,resilience", "-queries", "40", "-queuecap", "0", "-slo", "20", "-policy", "failover"}
	if got := sc.Args(); !reflect.DeepEqual(got, want) {
		t.Errorf("Args = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	sc := DefaultScenario()
	sc.Experiments = []string{"fig3", "serving2"}
	sc.Rates = "0.5,1"
	sc.Modes = "cooperative"
	if err := sc.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	bad := DefaultScenario()
	bad.Experiments = []string{"fig99"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown experiment accepted")
	}
	bad = DefaultScenario()
	bad.Rates = "0.5,potato"
	if err := bad.Validate(); err == nil {
		t.Error("unparsable rate accepted")
	}
	bad = DefaultScenario()
	bad.Policy = "shrug"
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	bad = DefaultScenario()
	bad.StealScore = "psychic"
	if err := bad.Validate(); err == nil {
		t.Error("unknown stealscore accepted")
	}
	bad = DefaultScenario()
	bad.TuneBudget = -3
	if err := bad.Validate(); err == nil {
		t.Error("negative tunebudget accepted")
	}
	ok := DefaultScenario()
	ok.StealScore = "depth"
	ok.TuneBudget = 128
	ok.TuneSeed = 42
	if err := ok.Validate(); err != nil {
		t.Errorf("valid stealscore/tune fields rejected: %v", err)
	}
}

// cheapEngine builds an engine suitable for fast registry-driven tests.
func cheapEngine(t *testing.T) *Engine {
	t.Helper()
	return New(Options{Config: engine.DefaultConfig(), Tool: "runtest", Parallelism: 2})
}

func TestExecuteOrderAndFailures(t *testing.T) {
	eng := cheapEngine(t)
	sc := DefaultScenario()
	sc.Experiments = []string{"tab2", "fig99", "fig3"}
	var streamed []string
	rep, err := eng.Execute(context.Background(), sc, ExecOpts{
		Sink: func(res exp.Result) error {
			streamed = append(streamed, res.ID)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, sc.Experiments) {
		t.Errorf("sink order = %v, want request order %v", streamed, sc.Experiments)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	for i, id := range sc.Experiments {
		if rep.Results[i].ID != id {
			t.Errorf("results[%d].ID = %q, want %q", i, rep.Results[i].ID, id)
		}
	}
	if rep.Results[1].Error == "" || rep.Results[1].Tables != nil {
		t.Errorf("fig99 result = %+v, want error and no tables", rep.Results[1])
	}
	if rep.Results[0].Error != "" || rep.Results[2].Error != "" {
		t.Error("valid experiments failed alongside the bad one")
	}
	if !reflect.DeepEqual(rep.Manifest.Failed, []string{"fig99"}) {
		t.Errorf("manifest failed = %v", rep.Manifest.Failed)
	}
	if !reflect.DeepEqual(rep.Manifest.Experiments, sc.Experiments) {
		t.Errorf("manifest experiments = %v", rep.Manifest.Experiments)
	}
}

func TestExecuteWritesOutDir(t *testing.T) {
	eng := cheapEngine(t)
	sc := DefaultScenario()
	sc.Experiments = []string{"tab2"}
	dir := filepath.Join(t.TempDir(), "out")
	if _, err := eng.Execute(context.Background(), sc, ExecOpts{OutDir: dir, Format: "json"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tab2.json", "manifest.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Errorf("%s is not valid JSON", name)
		}
	}
}

// TestCanonicalDeterminism pins the property the daemon-vs-batch test
// relies on: two executions of one scenario have byte-identical
// canonical reports even though their manifests carry different wall
// times.
func TestCanonicalDeterminism(t *testing.T) {
	sc := DefaultScenario()
	sc.Experiments = []string{"fig3", "tab2"}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		rep, err := cheapEngine(t).Execute(context.Background(), sc, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Manifest.Start.IsZero() {
			t.Fatal("manifest start not stamped")
		}
		can := Canonical(rep)
		if can.Manifest.Start != (exp.Report{}).Manifest.Start {
			t.Error("Canonical kept the start timestamp")
		}
		for _, res := range can.Results {
			if res.ElapsedSeconds != 0 {
				t.Errorf("Canonical kept %s elapsed time", res.ID)
			}
		}
		if err := can.WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("canonical reports differ between two runs of one scenario")
	}
}
