// Package run is the run-engine layer between the front ends (the
// facilsim CLI, the facild daemon) and the experiment stack: it owns
// the scenario schema, experiment dispatch with per-identifier
// overrides, Lab construction with tracer and progress wiring, manifest
// assembly and result export. cmd/facilsim and internal/daemon are thin
// shells over this package — a scenario runs identically (byte-for-byte
// in its Report tables) whichever front end submits it.
package run

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"facil/internal/exp"
	"facil/internal/serve"
)

// Scenario is one engine invocation: the experiment identifiers to run
// plus the parameter overrides the CLI exposes as flags. The JSON form
// is the daemon's POST /runs body and the record/replay file format;
// field names mirror the facilsim flag names, so a recorded scenario
// reads like the command line that produced it.
//
// QueueCap and SLO use -1 (the CLI flag default) for "keep the
// experiment's own default", because 0 is meaningful for both (0 =
// unbounded queue / no SLO). Decode layers JSON over DefaultScenario so
// omitted fields keep that semantics.
type Scenario struct {
	// Experiments lists the identifiers to run, in order (empty = every
	// experiment in DESIGN.md order). Merged from positional arguments
	// and -id on the CLI.
	Experiments []string `json:"experiments,omitempty"`
	// Queries overrides the per-dataset query count of the dataset and
	// serving experiments (0 = experiment default).
	Queries int `json:"queries,omitempty"`
	// Seed overrides the sampling seed (0 = experiment default).
	Seed int64 `json:"seed,omitempty"`
	// Scale is tab1's memory down-scale factor (0 = default 8,
	// 1 = paper-size).
	Scale int64 `json:"scale,omitempty"`
	// Rates is serving2's comma-separated arrival-rate sweep in q/s
	// ("" = default).
	Rates string `json:"rates,omitempty"`
	// Replicas is serving2's comma-separated replica-count sweep
	// ("" = default).
	Replicas string `json:"replicas,omitempty"`
	// Modes is the comma-separated lane-scheduler sweep for serving2 and
	// resilience ("" = default).
	Modes string `json:"modes,omitempty"`
	// QueueCap bounds the admission queue of serving2/resilience
	// (0 = unbounded, -1 = experiment default). Not omitempty: 0 is
	// meaningful, so the recorded form always spells it out.
	QueueCap int `json:"queuecap"`
	// SLO is the TTLT goodput deadline in seconds (0 = none,
	// -1 = experiment default). Not omitempty, as for QueueCap.
	SLO float64 `json:"slo"`
	// Faults is resilience's comma-separated lane-MTBF sweep in seconds
	// ("" = default).
	Faults string `json:"faults,omitempty"`
	// FaultSeed is resilience's fault-scenario seed (0 = default).
	FaultSeed int64 `json:"faultseed,omitempty"`
	// Policy is resilience's comma-separated degradation-policy sweep
	// ("" = default).
	Policy string `json:"policy,omitempty"`
}

// DefaultScenario returns the scenario matching facilsim's flag
// defaults: every experiment, every override at its "experiment
// default" sentinel.
func DefaultScenario() Scenario {
	return Scenario{QueueCap: -1, SLO: -1}
}

// Decode parses one scenario JSON document layered over the defaults,
// so omitted fields keep their CLI-default semantics. Unknown fields
// are rejected — a typo'd override should fail the submission, not
// silently run the default.
func Decode(r io.Reader) (Scenario, error) {
	sc := DefaultScenario()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("run: bad scenario: %w", err)
	}
	return sc, nil
}

// Load replays a scenario file recorded by Save (or written by hand).
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	sc, err := Decode(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Save records the scenario as an indented JSON file a later -scenario
// flag or daemon POST can replay.
func (sc Scenario) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// IDs returns the experiment identifiers the scenario runs: its
// explicit list, or every experiment in DESIGN.md order when empty.
func (sc Scenario) IDs() []string {
	if len(sc.Experiments) > 0 {
		return sc.Experiments
	}
	return exp.AllIDs
}

// Args renders the scenario back to its canonical facilsim flag form.
// Manifests stamp it as the run's command line, so a daemon-produced
// report names the CLI invocation that reproduces it.
func (sc Scenario) Args() []string {
	var args []string
	str := func(flag, v string) {
		if v != "" {
			args = append(args, "-"+flag, v)
		}
	}
	num := func(flag string, v int64) {
		if v != 0 {
			args = append(args, "-"+flag, strconv.FormatInt(v, 10))
		}
	}
	if len(sc.Experiments) > 0 {
		str("id", strings.Join(sc.Experiments, ","))
	}
	num("queries", int64(sc.Queries))
	num("seed", sc.Seed)
	num("scale", sc.Scale)
	str("rates", sc.Rates)
	str("replicas", sc.Replicas)
	str("modes", sc.Modes)
	if sc.QueueCap >= 0 {
		args = append(args, "-queuecap", strconv.Itoa(sc.QueueCap))
	}
	if sc.SLO >= 0 {
		args = append(args, "-slo", strconv.FormatFloat(sc.SLO, 'g', -1, 64))
	}
	str("faults", sc.Faults)
	num("faultseed", sc.FaultSeed)
	str("policy", sc.Policy)
	return args
}

// Validate resolves every experiment identifier and parses every sweep
// list, returning the first problem. The daemon rejects a bad scenario
// at submission with this; the CLI instead lets unknown identifiers
// surface as per-experiment failures so one typo cannot take down a
// batch of valid experiments.
func (sc Scenario) Validate() error {
	for _, id := range sc.Experiments {
		if !exp.Known(id) {
			return fmt.Errorf("run: unknown experiment %q (see -list or GET /experiments)", id)
		}
	}
	s2 := exp.DefaultServing2Config()
	if err := sc.applyServing2(&s2); err != nil {
		return err
	}
	rc := exp.DefaultResilienceConfig()
	if err := sc.applyResilience(&rc); err != nil {
		return err
	}
	return nil
}

// applyServing2 folds the scenario's overrides into a serving2 config.
func (sc Scenario) applyServing2(cfg *exp.Serving2Config) error {
	if sc.Queries > 0 {
		cfg.Queries = sc.Queries
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.QueueCap >= 0 {
		cfg.QueueCap = sc.QueueCap
	}
	if sc.SLO >= 0 {
		cfg.DeadlineTTLT = sc.SLO
	}
	if sc.Rates != "" {
		cfg.Rates = cfg.Rates[:0]
		for _, f := range strings.Split(sc.Rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("run: bad rates entry %q", f)
			}
			cfg.Rates = append(cfg.Rates, r)
		}
	}
	if sc.Replicas != "" {
		cfg.Replicas = cfg.Replicas[:0]
		for _, f := range strings.Split(sc.Replicas, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("run: bad replicas entry %q", f)
			}
			cfg.Replicas = append(cfg.Replicas, n)
		}
	}
	if sc.Modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(sc.Modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}

// applyResilience folds the scenario's overrides into a resilience
// config.
func (sc Scenario) applyResilience(cfg *exp.ResilienceConfig) error {
	if sc.Queries > 0 {
		cfg.Queries = sc.Queries
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.FaultSeed != 0 {
		cfg.FaultSeed = sc.FaultSeed
	}
	if sc.QueueCap >= 0 {
		cfg.QueueCap = sc.QueueCap
	}
	if sc.SLO >= 0 {
		cfg.DeadlineTTLT = sc.SLO
	}
	if sc.Faults != "" {
		cfg.LaneMTBFs = cfg.LaneMTBFs[:0]
		for _, f := range strings.Split(sc.Faults, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("run: bad faults entry %q (want a positive MTBF in seconds)", f)
			}
			cfg.LaneMTBFs = append(cfg.LaneMTBFs, v)
		}
	}
	if sc.Policy != "" {
		cfg.Policies = cfg.Policies[:0]
		for _, f := range strings.Split(sc.Policy, ",") {
			p, err := serve.ParsePolicy(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Policies = append(cfg.Policies, p)
		}
	}
	if sc.Modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(sc.Modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}
