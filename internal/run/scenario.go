// Package run is the run-engine layer between the front ends (the
// facilsim CLI, the facild daemon) and the experiment stack: it owns
// the scenario schema, experiment dispatch with per-identifier
// overrides, Lab construction with tracer and progress wiring, manifest
// assembly and result export. cmd/facilsim and internal/daemon are thin
// shells over this package — a scenario runs identically (byte-for-byte
// in its Report tables) whichever front end submits it.
package run

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"facil/internal/cluster"
	"facil/internal/exp"
	"facil/internal/serve"
)

// Scenario is one engine invocation: the experiment identifiers to run
// plus the parameter overrides the CLI exposes as flags. The JSON form
// is the daemon's POST /runs body and the record/replay file format;
// field names mirror the facilsim flag names, so a recorded scenario
// reads like the command line that produced it.
//
// QueueCap and SLO use -1 (the CLI flag default) for "keep the
// experiment's own default", because 0 is meaningful for both (0 =
// unbounded queue / no SLO). Decode layers JSON over DefaultScenario so
// omitted fields keep that semantics.
type Scenario struct {
	// Experiments lists the identifiers to run, in order (empty = every
	// experiment in DESIGN.md order). Merged from positional arguments
	// and -id on the CLI.
	Experiments []string `json:"experiments,omitempty"`
	// Queries overrides the per-dataset query count of the dataset and
	// serving experiments (0 = experiment default).
	Queries int `json:"queries,omitempty"`
	// Seed overrides the sampling seed (0 = experiment default).
	Seed int64 `json:"seed,omitempty"`
	// Scale is tab1's memory down-scale factor (0 = default 8,
	// 1 = paper-size).
	Scale int64 `json:"scale,omitempty"`
	// Rates is serving2's comma-separated arrival-rate sweep in q/s
	// ("" = default).
	Rates string `json:"rates,omitempty"`
	// Replicas is serving2's comma-separated replica-count sweep
	// ("" = default).
	Replicas string `json:"replicas,omitempty"`
	// Modes is the comma-separated lane-scheduler sweep for serving2 and
	// resilience ("" = default).
	Modes string `json:"modes,omitempty"`
	// QueueCap bounds the admission queue of serving2/resilience
	// (0 = unbounded, -1 = experiment default). Not omitempty: 0 is
	// meaningful, so the recorded form always spells it out.
	QueueCap int `json:"queuecap"`
	// SLO is the TTLT goodput deadline in seconds (0 = none,
	// -1 = experiment default). Not omitempty, as for QueueCap.
	SLO float64 `json:"slo"`
	// Faults is resilience's comma-separated lane-MTBF sweep in seconds
	// ("" = default).
	Faults string `json:"faults,omitempty"`
	// FaultSeed is resilience's fault-scenario seed (0 = default).
	FaultSeed int64 `json:"faultseed,omitempty"`
	// Policy is resilience's comma-separated degradation-policy sweep
	// ("" = default). The cluster experiment reads a single policy from
	// it (a one-entry list) as each device's degradation policy.
	Policy string `json:"policy,omitempty"`
	// Strategy is the cluster experiment's comma-separated
	// balancing-strategy sweep ("" = all four).
	Strategy string `json:"strategy,omitempty"`
	// Fleet is the cluster device-class roster as a
	// "platform[/macN]:count" comma list, e.g. "jetson:26,ideapad/mac8:26"
	// ("" = experiment default).
	Fleet string `json:"fleet,omitempty"`
	// Devices rescales the cluster fleet (default or -fleet) to a total
	// device count, preserving the class mix (0 = keep the roster's own
	// counts).
	Devices int `json:"devices,omitempty"`
	// Rate is the cluster-wide arrival rate in q/s (0 = default).
	Rate float64 `json:"rate,omitempty"`
	// Sync is the cluster telemetry-barrier interval in virtual seconds
	// (0 = default).
	Sync float64 `json:"sync,omitempty"`
	// Steal toggles the cluster experiment's cross-device migration rows
	// (1 = on, 0 = off, -1 = experiment default). Not omitempty: 0 is
	// meaningful, so the recorded form always spells it out.
	Steal int `json:"steal"`
	// StealThreshold is the in-system depth that triggers stealing from a
	// healthy device (0 = breaker-driven evacuation only, -1 = experiment
	// default). Not omitempty, as for Steal.
	StealThreshold int `json:"stealthreshold"`
	// StealScore picks the cluster steal-destination scoring: "depth"
	// (least-loaded) or "latency" (TTFT-EWMA expected-wait proxy);
	// "" keeps the experiment default.
	StealScore string `json:"stealscore,omitempty"`
	// TuneBudget overrides the maptune candidate budget per cell
	// (0 = experiment default).
	TuneBudget int `json:"tunebudget,omitempty"`
	// TuneSeed overrides the maptune mutation seed (0 = experiment
	// default).
	TuneSeed int64 `json:"tuneseed,omitempty"`
}

// DefaultScenario returns the scenario matching facilsim's flag
// defaults: every experiment, every override at its "experiment
// default" sentinel.
func DefaultScenario() Scenario {
	return Scenario{QueueCap: -1, SLO: -1, Steal: -1, StealThreshold: -1}
}

// Decode parses one scenario JSON document layered over the defaults,
// so omitted fields keep their CLI-default semantics. Unknown fields
// are rejected — a typo'd override should fail the submission, not
// silently run the default.
func Decode(r io.Reader) (Scenario, error) {
	sc := DefaultScenario()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("run: bad scenario: %w", err)
	}
	return sc, nil
}

// Load replays a scenario file recorded by Save (or written by hand).
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	sc, err := Decode(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Save records the scenario as an indented JSON file a later -scenario
// flag or daemon POST can replay.
func (sc Scenario) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// IDs returns the experiment identifiers the scenario runs: its
// explicit list, or every experiment in DESIGN.md order when empty.
func (sc Scenario) IDs() []string {
	if len(sc.Experiments) > 0 {
		return sc.Experiments
	}
	return exp.AllIDs
}

// Args renders the scenario back to its canonical facilsim flag form.
// Manifests stamp it as the run's command line, so a daemon-produced
// report names the CLI invocation that reproduces it.
func (sc Scenario) Args() []string {
	var args []string
	str := func(flag, v string) {
		if v != "" {
			args = append(args, "-"+flag, v)
		}
	}
	num := func(flag string, v int64) {
		if v != 0 {
			args = append(args, "-"+flag, strconv.FormatInt(v, 10))
		}
	}
	if len(sc.Experiments) > 0 {
		str("id", strings.Join(sc.Experiments, ","))
	}
	num("queries", int64(sc.Queries))
	num("seed", sc.Seed)
	num("scale", sc.Scale)
	str("rates", sc.Rates)
	str("replicas", sc.Replicas)
	str("modes", sc.Modes)
	if sc.QueueCap >= 0 {
		args = append(args, "-queuecap", strconv.Itoa(sc.QueueCap))
	}
	if sc.SLO >= 0 {
		args = append(args, "-slo", strconv.FormatFloat(sc.SLO, 'g', -1, 64))
	}
	str("faults", sc.Faults)
	num("faultseed", sc.FaultSeed)
	str("policy", sc.Policy)
	str("strategy", sc.Strategy)
	str("fleet", sc.Fleet)
	num("devices", int64(sc.Devices))
	if sc.Rate > 0 {
		args = append(args, "-rate", strconv.FormatFloat(sc.Rate, 'g', -1, 64))
	}
	if sc.Sync > 0 {
		args = append(args, "-sync", strconv.FormatFloat(sc.Sync, 'g', -1, 64))
	}
	if sc.Steal >= 0 {
		args = append(args, "-steal="+strconv.FormatBool(sc.Steal != 0))
	}
	if sc.StealThreshold >= 0 {
		args = append(args, "-stealthreshold", strconv.Itoa(sc.StealThreshold))
	}
	str("stealscore", sc.StealScore)
	num("tunebudget", int64(sc.TuneBudget))
	num("tuneseed", sc.TuneSeed)
	return args
}

// Validate resolves every experiment identifier and parses every sweep
// list, returning the first problem. The daemon rejects a bad scenario
// at submission with this; the CLI instead lets unknown identifiers
// surface as per-experiment failures so one typo cannot take down a
// batch of valid experiments.
func (sc Scenario) Validate() error {
	for _, id := range sc.Experiments {
		if !exp.Known(id) {
			return fmt.Errorf("run: unknown experiment %q (see -list or GET /experiments)", id)
		}
	}
	s2 := exp.DefaultServing2Config()
	if err := sc.applyServing2(&s2); err != nil {
		return err
	}
	rc := exp.DefaultResilienceConfig()
	if err := sc.applyResilience(&rc); err != nil {
		return err
	}
	cc := exp.DefaultClusterConfig()
	if err := sc.applyCluster(&cc); err != nil {
		return err
	}
	mt := exp.DefaultMapTuneConfig()
	if err := sc.applyMapTune(&mt); err != nil {
		return err
	}
	return nil
}

// applyServing2 folds the scenario's overrides into a serving2 config.
func (sc Scenario) applyServing2(cfg *exp.Serving2Config) error {
	if sc.Queries > 0 {
		cfg.Queries = sc.Queries
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.QueueCap >= 0 {
		cfg.QueueCap = sc.QueueCap
	}
	if sc.SLO >= 0 {
		cfg.DeadlineTTLT = sc.SLO
	}
	if sc.Rates != "" {
		cfg.Rates = cfg.Rates[:0]
		for _, f := range strings.Split(sc.Rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("run: bad rates entry %q", f)
			}
			cfg.Rates = append(cfg.Rates, r)
		}
	}
	if sc.Replicas != "" {
		cfg.Replicas = cfg.Replicas[:0]
		for _, f := range strings.Split(sc.Replicas, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("run: bad replicas entry %q", f)
			}
			cfg.Replicas = append(cfg.Replicas, n)
		}
	}
	if sc.Modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(sc.Modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}

// applyResilience folds the scenario's overrides into a resilience
// config.
func (sc Scenario) applyResilience(cfg *exp.ResilienceConfig) error {
	if sc.Queries > 0 {
		cfg.Queries = sc.Queries
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.FaultSeed != 0 {
		cfg.FaultSeed = sc.FaultSeed
	}
	if sc.QueueCap >= 0 {
		cfg.QueueCap = sc.QueueCap
	}
	if sc.SLO >= 0 {
		cfg.DeadlineTTLT = sc.SLO
	}
	if sc.Faults != "" {
		cfg.LaneMTBFs = cfg.LaneMTBFs[:0]
		for _, f := range strings.Split(sc.Faults, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("run: bad faults entry %q (want a positive MTBF in seconds)", f)
			}
			cfg.LaneMTBFs = append(cfg.LaneMTBFs, v)
		}
	}
	if sc.Policy != "" {
		cfg.Policies = cfg.Policies[:0]
		for _, f := range strings.Split(sc.Policy, ",") {
			p, err := serve.ParsePolicy(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Policies = append(cfg.Policies, p)
		}
	}
	if sc.Modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(sc.Modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}

// applyCluster folds the scenario's overrides into a cluster config.
// The shared fields keep their meaning from the other serving
// experiments: Queries/Seed/FaultSeed seed the run, QueueCap and SLO
// bound each device, a single-entry Policy list picks every device's
// degradation policy, and a single-entry Faults list overrides the
// lane MTBF on the faulty fraction of the fleet.
func (sc Scenario) applyCluster(cfg *exp.ClusterConfig) error {
	if sc.Queries > 0 {
		cfg.Queries = sc.Queries
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.FaultSeed != 0 {
		cfg.FaultSeed = sc.FaultSeed
	}
	if sc.QueueCap >= 0 {
		cfg.QueueCap = sc.QueueCap
	}
	if sc.SLO >= 0 {
		cfg.DeadlineTTLT = sc.SLO
	}
	if sc.Rate > 0 {
		cfg.Rate = sc.Rate
	}
	if sc.Sync > 0 {
		cfg.SyncInterval = sc.Sync
	}
	if sc.Strategy != "" {
		cfg.Strategies = cfg.Strategies[:0]
		for _, f := range strings.Split(sc.Strategy, ",") {
			k, err := cluster.ParseStrategy(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Strategies = append(cfg.Strategies, k)
		}
	}
	if sc.Fleet != "" {
		classes, err := cluster.ParseFleet(sc.Fleet)
		if err != nil {
			return err
		}
		cfg.Fleet = classes
	}
	if sc.Devices > 0 {
		cfg.Fleet = cluster.ScaleFleet(cfg.Fleet, sc.Devices)
	}
	if sc.Policy != "" {
		ps := strings.Split(sc.Policy, ",")
		if len(ps) != 1 {
			return fmt.Errorf("run: the cluster experiment takes a single -policy, got %q", sc.Policy)
		}
		p, err := serve.ParsePolicy(strings.TrimSpace(ps[0]))
		if err != nil {
			return err
		}
		cfg.Policy = p
	}
	if sc.Faults != "" {
		fs := strings.Split(sc.Faults, ",")
		if len(fs) != 1 {
			return fmt.Errorf("run: the cluster experiment takes a single -faults MTBF, got %q", sc.Faults)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fs[0]), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("run: bad faults entry %q (want a positive MTBF in seconds)", fs[0])
		}
		cfg.FaultMTBF = v
	}
	if sc.Steal >= 0 {
		cfg.Migration = sc.Steal != 0
	}
	if sc.StealThreshold >= 0 {
		cfg.StealThreshold = sc.StealThreshold
	}
	switch sc.StealScore {
	case "":
	case "depth":
		cfg.LatencySteal = false
	case "latency":
		cfg.LatencySteal = true
	default:
		return fmt.Errorf("run: bad stealscore %q (want depth or latency)", sc.StealScore)
	}
	return nil
}

// applyMapTune folds the scenario's overrides into a maptune config.
func (sc Scenario) applyMapTune(cfg *exp.MapTuneConfig) error {
	if sc.TuneBudget < 0 {
		return fmt.Errorf("run: bad tunebudget %d (want >= 0)", sc.TuneBudget)
	}
	if sc.TuneBudget > 0 {
		cfg.Budget = sc.TuneBudget
	}
	if sc.TuneSeed != 0 {
		cfg.Seed = sc.TuneSeed
	}
	return nil
}
