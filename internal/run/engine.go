package run

import (
	"context"
	"os"
	"path/filepath"
	"time"

	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/obs"
	"facil/internal/parallel"
	"facil/internal/workload"
)

// Options configures an Engine: the engine.Config its Lab builds
// Systems with, the manifest tool name, and the sweep plumbing (worker
// bound, progress sink, tracer) formerly hardwired in cmd/facilsim.
type Options struct {
	// Config is the latency-model configuration every System is built
	// with; pass engine.DefaultConfig() unless experimenting.
	Config engine.Config
	// Tool names the front end in manifests ("facilsim", "facild");
	// empty defaults to "run".
	Tool string
	// Parallelism bounds every sweep's worker pool (0 = GOMAXPROCS,
	// 1 = serial).
	Parallelism int
	// Progress observes sweep progress (nil = none).
	Progress exp.ProgressFunc
	// Tracer, when non-nil, records trace-aware experiments' timelines
	// into its ring (shared by every scenario the engine executes).
	Tracer *obs.Tracer
}

// Engine executes scenarios against one shared Lab: platform Systems
// (and their memoization caches) persist across Execute calls, so a
// daemon serving many scenarios pays the System construction cost once.
// An Engine is safe for concurrent Execute calls (the Lab is
// goroutine-safe), though front ends typically serialize them.
type Engine struct {
	lab    *exp.Lab
	tool   string
	par    int
	tracer *obs.Tracer
}

// New builds an engine and its Lab from opts.
func New(opts Options) *Engine {
	lab := exp.NewLab(opts.Config)
	lab.SetParallelism(opts.Parallelism)
	if opts.Progress != nil {
		lab.SetProgress(opts.Progress)
	}
	if opts.Tracer != nil {
		lab.SetTracer(opts.Tracer)
	}
	tool := opts.Tool
	if tool == "" {
		tool = "run"
	}
	return &Engine{lab: lab, tool: tool, par: opts.Parallelism, tracer: opts.Tracer}
}

// Lab exposes the engine's shared Lab (tests and the bench path reuse
// its cached Systems).
func (e *Engine) Lab() *exp.Lab { return e.lab }

// Tracer returns the tracer the engine was built with (nil = off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// ExecOpts carries the per-invocation (non-scenario) execution options:
// where results stream and where files land. Scenario describes *what*
// to run; ExecOpts describes what this front end does with the output.
type ExecOpts struct {
	// Sink consumes results in request order as they become ready (the
	// CLI streams tables from it); nil discards nothing — results are
	// always collected into the returned Report. A sink error marks the
	// experiment failed and execution continues.
	Sink func(exp.Result) error
	// OutDir, when non-empty, mirrors per-experiment files plus
	// manifest.json into the directory (created if needed).
	OutDir string
	// Format selects the OutDir file format: "table", "csv" or "json"
	// (default "json").
	Format string
}

// Execute runs one scenario to completion and returns the Report: a
// manifest stamped with the scenario's canonical command line plus one
// Result per experiment in request order. Per-experiment failures are
// recorded in their Result (and the manifest's Failed list) without
// aborting the remaining identifiers; Execute itself errors only on
// export I/O failures.
func (e *Engine) Execute(ctx context.Context, sc Scenario, opts ExecOpts) (exp.Report, error) {
	ids := sc.IDs()
	manifest := obs.NewManifest(e.tool, sc.Args())
	manifest.Seed = sc.Seed
	manifest.Parallelism = e.par
	manifest.Experiments = ids

	format := opts.Format
	if format == "" {
		format = "json"
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return exp.Report{}, err
		}
	}

	var report exp.Report
	var failed []string
	results := e.launch(ctx, ids, sc)
	for i, id := range ids {
		<-results[i].ready
		res := results[i].res
		report.Results = append(report.Results, res)
		if res.Error != "" {
			failed = append(failed, id)
		}
		if opts.Sink != nil {
			if err := opts.Sink(res); err != nil {
				failed = append(failed, id)
				continue
			}
		}
		if opts.OutDir != "" && res.Error == "" {
			if err := writeResultFile(opts.OutDir, format, res); err != nil {
				return exp.Report{}, err
			}
		}
	}
	manifest.Failed = failed
	manifest.WallSeconds = time.Since(manifest.Start).Seconds()
	report.Manifest = manifest
	if opts.OutDir != "" {
		if err := writeManifest(opts.OutDir, manifest); err != nil {
			return exp.Report{}, err
		}
	}
	return report, nil
}

// pending is one experiment's future result: res is valid once ready is
// closed.
type pending struct {
	ready chan struct{}
	res   exp.Result
}

// launch starts every identifier on a bounded worker pool and returns
// the per-identifier futures. A failing experiment is captured in its
// Result rather than cancelling the sweep, so one bad experiment cannot
// take the others down.
func (e *Engine) launch(ctx context.Context, ids []string, sc Scenario) []pending {
	results := make([]pending, len(ids))
	for i := range results {
		results[i].ready = make(chan struct{})
	}
	idxs := make([]int, len(ids))
	for i := range idxs {
		idxs[i] = i
	}
	go func() {
		finished := make([]bool, len(ids))
		_, _ = parallel.Sweep(ctx, idxs, func(ctx context.Context, i int) (struct{}, error) {
			start := time.Now()
			tabs, err := e.runOne(ctx, ids[i], sc)
			res := exp.Result{ID: ids[i], Tables: tabs, ElapsedSeconds: time.Since(start).Seconds()}
			if err != nil {
				res.Error = err.Error()
				res.Tables = nil
			}
			results[i].res = res
			finished[i] = true
			close(results[i].ready)
			return struct{}{}, nil
		}, parallel.Workers(e.par))
		// On cancellation some identifiers are never dispatched; release
		// the consumer with the context's error so it cannot block. Sweep
		// has returned, so no worker still touches finished/results.
		for i := range ids {
			if !finished[i] {
				results[i].res = exp.Result{ID: ids[i], Error: ctx.Err().Error()}
				close(results[i].ready)
			}
		}
	}()
	return results
}

// runOne dispatches one experiment, honoring the scenario's overrides
// for the parameterizable ones.
func (e *Engine) runOne(ctx context.Context, id string, sc Scenario) ([]exp.Table, error) {
	switch id {
	case "tab1":
		cfg := exp.DefaultTable1Config()
		if sc.Scale > 0 {
			cfg.Scale = sc.Scale
		}
		if sc.Seed != 0 {
			cfg.Seed = sc.Seed
		}
		t, err := e.lab.Table1(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "serving2":
		cfg := exp.DefaultServing2Config()
		if err := sc.applyServing2(&cfg); err != nil {
			return nil, err
		}
		t, err := e.lab.Serving2(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "resilience":
		cfg := exp.DefaultResilienceConfig()
		if err := sc.applyResilience(&cfg); err != nil {
			return nil, err
		}
		t, err := e.lab.Resilience(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "cluster":
		cfg := exp.DefaultClusterConfig()
		if err := sc.applyCluster(&cfg); err != nil {
			return nil, err
		}
		return e.lab.Cluster(ctx, cfg)
	case "maptune":
		cfg := exp.DefaultMapTuneConfig()
		if err := sc.applyMapTune(&cfg); err != nil {
			return nil, err
		}
		return e.lab.MapTune(ctx, cfg)
	case "fig15", "fig16":
		if sc.Queries <= 0 && sc.Seed == 0 {
			return e.lab.Run(ctx, id)
		}
		cfg := exp.DefaultDatasetConfig()
		if sc.Queries > 0 {
			cfg.Queries = sc.Queries
		}
		if sc.Seed != 0 {
			cfg.Seed = sc.Seed
		}
		var out []exp.Table
		for _, spec := range []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()} {
			var (
				t   exp.Table
				err error
			)
			if id == "fig15" {
				t, err = e.lab.Fig15(ctx, spec, cfg)
			} else {
				t, err = e.lab.Fig16(ctx, spec, cfg)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	default:
		return e.lab.Run(ctx, id)
	}
}

// writeResultFile mirrors one result into dir as <id>.<ext>.
func writeResultFile(dir, format string, res exp.Result) error {
	ext := map[string]string{"table": "txt", "csv": "csv", "json": "json"}[format]
	f, err := os.Create(filepath.Join(dir, res.ID+"."+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "table":
		err = res.WriteText(f)
	case "csv":
		err = res.WriteCSV(f)
	default:
		err = res.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// writeManifest writes the run manifest as dir/manifest.json.
func writeManifest(dir string, m obs.Manifest) error {
	f, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// Canonical strips a report's wall-clock-dependent fields — manifest
// start/wall time, build environment and per-result elapsed seconds —
// leaving exactly the simulation payload. Two runs of one scenario are
// deterministic, so their canonical forms must be byte-identical
// however they were driven (batch CLI, daemon, any parallelism); the
// daemon-vs-batch determinism test pins this.
func Canonical(r exp.Report) exp.Report {
	r.Manifest = obs.Manifest{
		Tool:          "canonical",
		SchemaVersion: r.Manifest.SchemaVersion,
		Args:          r.Manifest.Args,
		Seed:          r.Manifest.Seed,
		Experiments:   r.Manifest.Experiments,
		Failed:        r.Manifest.Failed,
	}
	out := make([]exp.Result, len(r.Results))
	copy(out, r.Results)
	for i := range out {
		out[i].ElapsedSeconds = 0
	}
	r.Results = out
	return r
}
