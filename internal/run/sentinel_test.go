package run

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSentinelRoundTrips pins the scenario sentinel semantics through
// the full Decode -> Save -> Load -> Args pipeline: QueueCap and SLO use
// -1 for "keep the experiment default" because 0 is meaningful for both
// (unbounded queue / no SLO), so the recorded form must spell those
// fields out, survive a replay byte-exactly, and render to the flag
// form only when explicitly set (>= 0).
func TestSentinelRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		json string
		want Scenario
		args []string
	}{
		{
			name: "empty document keeps every default sentinel",
			json: `{}`,
			want: DefaultScenario(),
			args: nil,
		},
		{
			name: "explicit -1 sentinels equal the defaults",
			json: `{"queuecap": -1, "slo": -1}`,
			want: DefaultScenario(),
			args: nil,
		},
		{
			name: "zero queuecap means unbounded, not default",
			json: `{"queuecap": 0}`,
			want: Scenario{QueueCap: 0, SLO: -1, Steal: -1, StealThreshold: -1},
			args: []string{"-queuecap", "0"},
		},
		{
			name: "zero slo means no deadline, not default",
			json: `{"slo": 0}`,
			want: Scenario{QueueCap: -1, SLO: 0, Steal: -1, StealThreshold: -1},
			args: []string{"-slo", "0"},
		},
		{
			name: "both zero-valued fields survive explicitly",
			json: `{"queuecap": 0, "slo": 0}`,
			want: Scenario{QueueCap: 0, SLO: 0, Steal: -1, StealThreshold: -1},
			args: []string{"-queuecap", "0", "-slo", "0"},
		},
		{
			name: "positive overrides pass through",
			json: `{"queuecap": 8, "slo": 12.5, "queries": 64}`,
			want: Scenario{Queries: 64, QueueCap: 8, SLO: 12.5, Steal: -1, StealThreshold: -1},
			args: []string{"-queries", "64", "-queuecap", "8", "-slo", "12.5"},
		},
		{
			name: "zero-value numeric fields stay experiment defaults",
			json: `{"queries": 0, "seed": 0, "scale": 0, "faultseed": 0}`,
			want: DefaultScenario(),
			args: nil,
		},
		{
			name: "zero steal means migration off, not default",
			json: `{"steal": 0}`,
			want: Scenario{QueueCap: -1, SLO: -1, Steal: 0, StealThreshold: -1},
			args: []string{"-steal=false"},
		},
		{
			name: "steal on with breaker-driven-only threshold",
			json: `{"steal": 1, "stealthreshold": 0}`,
			want: Scenario{QueueCap: -1, SLO: -1, Steal: 1, StealThreshold: 0},
			args: []string{"-steal=true", "-stealthreshold", "0"},
		},
		{
			name: "string sweeps ride along unchanged",
			json: `{"experiments": ["serving2"], "modes": "cooperative", "queuecap": 4}`,
			want: Scenario{
				Experiments: []string{"serving2"},
				Modes:       "cooperative",
				QueueCap:    4, SLO: -1,
				Steal: -1, StealThreshold: -1,
			},
			args: []string{"-id", "serving2", "-modes", "cooperative", "-queuecap", "4"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := Decode(strings.NewReader(tc.json))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(sc, tc.want) {
				t.Fatalf("Decode = %+v, want %+v", sc, tc.want)
			}
			path := filepath.Join(t.TempDir(), "scenario.json")
			if err := sc.Save(path); err != nil {
				t.Fatalf("Save: %v", err)
			}
			replayed, err := Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !reflect.DeepEqual(replayed, sc) {
				t.Fatalf("Save/Load round trip changed the scenario:\n before %+v\n after  %+v", sc, replayed)
			}
			got := replayed.Args()
			if len(got) == 0 && len(tc.args) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.args) {
				t.Fatalf("Args = %q, want %q", got, tc.args)
			}
		})
	}
}

// TestSentinelSecondGeneration replays a saved scenario through a second
// Save/Load cycle: the recorded form must be a fixed point (recording a
// replay changes nothing), including the not-omitempty sentinel fields.
func TestSentinelSecondGeneration(t *testing.T) {
	sc, err := Decode(strings.NewReader(`{"queuecap": 0, "slo": 0, "modes": "serial"}`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "gen1.json")
	p2 := filepath.Join(dir, "gen2.json")
	if err := sc.Save(p1); err != nil {
		t.Fatal(err)
	}
	gen1, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen1.Save(p2); err != nil {
		t.Fatal(err)
	}
	gen2, err := Load(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gen2, sc) || !reflect.DeepEqual(gen2.Args(), sc.Args()) {
		t.Fatalf("second-generation replay drifted:\n original %+v\n replayed %+v", sc, gen2)
	}
}
