// Package trace reads, writes and generates physical-address memory
// traces for the DRAM simulator, in a line-oriented text format
// compatible with common academic trace tools:
//
//	# comment
//	<arrival-cycle> <R|W> 0x<phys-addr>
//
// Traces are translated to DRAM requests through any PA-to-DA mapping,
// which makes the simulator usable as a standalone tool (cmd/facildram).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"facil/internal/addr"
	"facil/internal/dram"
)

// Entry is one trace record.
type Entry struct {
	// Arrival is the request's arrival cycle.
	Arrival int64
	// Write marks a write burst.
	Write bool
	// Phys is the physical byte address (aligned down to the transfer
	// size during translation).
	Phys uint64
}

// Parse reads a text trace.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want '<cycle> <R|W> <addr>', got %q", lineNo, line)
		}
		cycle, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || cycle < 0 {
			return nil, fmt.Errorf("trace: line %d: bad cycle %q", lineNo, fields[0])
		}
		var write bool
		switch strings.ToUpper(fields[1]) {
		case "R":
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		pa, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[2])
		}
		out = append(out, Entry{Arrival: cycle, Write: write, Phys: pa})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Write emits entries in the text format.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		op := "R"
		if e.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %s 0x%x\n", e.Arrival, op, e.Phys); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ToRequests translates entries into DRAM requests through a mapping.
// Addresses beyond the geometry's capacity wrap (common in synthetic
// traces). The result is a value slice, replayable without copies via
// dram.SliceSource.
func ToRequests(entries []Entry, m *addr.Mapping) []dram.Request {
	g := m.Geometry()
	cap := uint64(g.CapacityBytes())
	out := make([]dram.Request, len(entries))
	for i, e := range entries {
		a, _ := m.Translate(e.Phys % cap)
		out[i] = dram.Request{Addr: a, Write: e.Write, Arrival: e.Arrival}
	}
	return out
}

// Sequential generates a streaming read trace of `bytes` bytes in
// transfer-size steps, arriving back to back.
func Sequential(bytes int64, transfer int, write bool) []Entry {
	n := bytes / int64(transfer)
	out := make([]Entry, n)
	for i := int64(0); i < n; i++ {
		out[i] = Entry{Phys: uint64(i) * uint64(transfer), Write: write}
	}
	return out
}

// Random generates n uniformly random transfer-aligned accesses within
// `span` bytes with the given write fraction, arriving at `rate`
// requests/cycle.
func Random(n int, span int64, transfer int, writeFrac, rate float64, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	var cycle float64
	step := 0.0
	if rate > 0 {
		step = 1 / rate
	}
	slots := span / int64(transfer)
	for i := range out {
		out[i] = Entry{
			Arrival: int64(cycle),
			Phys:    uint64(rng.Int63n(slots)) * uint64(transfer),
			Write:   rng.Float64() < writeFrac,
		}
		cycle += step
	}
	return out
}

// Strided generates n accesses walking `span` bytes with a fixed stride.
func Strided(n int, stride int64, transfer int) []Entry {
	out := make([]Entry, n)
	var pa uint64
	for i := range out {
		out[i] = Entry{Phys: pa}
		pa += uint64(stride)
	}
	_ = transfer
	return out
}
