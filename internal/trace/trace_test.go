package trace

import (
	"bytes"
	"strings"
	"testing"

	"facil/internal/addr"
	"facil/internal/dram"
)

func TestParseRoundTrip(t *testing.T) {
	in := []Entry{
		{Arrival: 0, Write: false, Phys: 0x1000},
		{Arrival: 5, Write: true, Phys: 0xdeadbe0},
		{Arrival: 9, Write: false, Phys: 0},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("parsed %d entries", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestParseCommentsAndErrors(t *testing.T) {
	good := "# header\n\n0 R 0x40\n10 W 0x80\n"
	entries, err := Parse(strings.NewReader(good))
	if err != nil || len(entries) != 2 {
		t.Fatalf("parse: %v, %d entries", err, len(entries))
	}
	for _, bad := range []string{
		"x R 0x40\n",
		"0 Q 0x40\n",
		"0 R zz\n",
		"0 R\n",
		"-1 R 0x40\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("bad line %q accepted", bad)
		}
	}
}

func TestToRequestsWrapsAndMaps(t *testing.T) {
	g := dram.Geometry{
		Channels: 2, RanksPerChannel: 1, BanksPerRank: 4,
		Rows: 128, RowBytes: 2048, TransferBytes: 32,
	}
	m, err := addr.Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	cap := uint64(g.CapacityBytes())
	entries := []Entry{
		{Phys: 0},
		{Phys: cap + 32}, // wraps to 32
		{Phys: 32},
	}
	reqs := ToRequests(entries, m)
	if reqs[1].Addr != reqs[2].Addr {
		t.Errorf("wrap failed: %v vs %v", reqs[1].Addr, reqs[2].Addr)
	}
	if !reqs[0].Addr.Valid(g) {
		t.Errorf("invalid mapped address %v", reqs[0].Addr)
	}
}

func TestGenerators(t *testing.T) {
	seq := Sequential(1024, 32, false)
	if len(seq) != 32 {
		t.Fatalf("sequential length %d", len(seq))
	}
	for i, e := range seq {
		if e.Phys != uint64(i*32) || e.Write {
			t.Fatalf("sequential entry %d = %+v", i, e)
		}
	}
	rnd := Random(100, 1<<20, 32, 0.25, 0.5, 7)
	if len(rnd) != 100 {
		t.Fatalf("random length %d", len(rnd))
	}
	writes := 0
	for i, e := range rnd {
		if e.Phys%32 != 0 || e.Phys >= 1<<20 {
			t.Fatalf("random entry %d out of range: %+v", i, e)
		}
		if e.Write {
			writes++
		}
	}
	if writes == 0 || writes == 100 {
		t.Errorf("write fraction degenerate: %d/100", writes)
	}
	// Arrival pacing at 0.5 req/cycle: last arrival ~ 198.
	if last := rnd[99].Arrival; last < 150 || last > 250 {
		t.Errorf("last arrival %d, want ~198", last)
	}
	st := Strided(10, 4096, 32)
	if st[9].Phys != 9*4096 {
		t.Errorf("strided entry = %+v", st[9])
	}
}

func TestTraceThroughSimulator(t *testing.T) {
	spec, err := dram.LPDDR5("trace sim", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := addr.Conventional(spec.Geometry)
	if err != nil {
		t.Fatal(err)
	}
	entries := Sequential(256<<10, spec.Geometry.TransferBytes, false)
	res, err := dram.MeasureStreamFunc(spec, dram.SliceSource(ToRequests(entries, m)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthGBs < 0.8*spec.PeakBandwidthGBs() {
		t.Errorf("sequential trace bandwidth %.1f GB/s", res.BandwidthGBs)
	}
}
