package addr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"facil/internal/dram"
)

func testGeom() dram.Geometry {
	return dram.Geometry{
		Channels:        4,
		RanksPerChannel: 2,
		BanksPerRank:    8,
		Rows:            1 << 14,
		RowBytes:        2048,
		TransferBytes:   32,
	}
}

func TestFromLayoutConventional(t *testing.T) {
	g := testGeom()
	m, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	// LSB-first: offset(5), channel(2), bank(3), column(6), rank(1), row(14).
	a, off := m.Translate(0)
	if a != (dram.Addr{}) || off != 0 {
		t.Errorf("Translate(0) = %v off %d, want zero", a, off)
	}
	// Bit 5 flips the channel.
	a, _ = m.Translate(1 << 5)
	if a.Channel != 1 {
		t.Errorf("bit 5 should flip channel, got %v", a)
	}
	// Bit 7 (channel MSB+1) flips the bank.
	a, _ = m.Translate(1 << 7)
	if a.Bank != 1 {
		t.Errorf("bit 7 should flip bank LSB, got %v", a)
	}
	// Bit 10 flips column.
	a, _ = m.Translate(1 << 10)
	if a.Column != 1 {
		t.Errorf("bit 10 should flip column LSB, got %v", a)
	}
	// Bit 16 flips rank.
	a, _ = m.Translate(1 << 16)
	if a.Rank != 1 {
		t.Errorf("bit 16 should flip rank, got %v", a)
	}
	// Bit 17 flips row LSB.
	a, _ = m.Translate(1 << 17)
	if a.Row != 1 {
		t.Errorf("bit 17 should flip row LSB, got %v", a)
	}
}

func TestTranslateInverseRoundTrip(t *testing.T) {
	g := testGeom()
	m, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	max := uint64(g.CapacityBytes())
	for i := 0; i < 10000; i++ {
		pa := rng.Uint64() % max
		a, off := m.Translate(pa)
		if !a.Valid(g) {
			t.Fatalf("Translate(%#x) = %v invalid", pa, a)
		}
		back := m.Inverse(a, off)
		if back != pa {
			t.Fatalf("Inverse(Translate(%#x)) = %#x", pa, back)
		}
	}
}

func TestTranslateInverseProperty(t *testing.T) {
	g := testGeom()
	m, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	max := uint64(g.CapacityBytes())
	f := func(pa uint64) bool {
		pa %= max
		a, off := m.Translate(pa)
		return a.Valid(g) && m.Inverse(a, off) == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTranslateBijectionSample(t *testing.T) {
	// On a tiny geometry, Translate must be a bijection over the whole
	// address space.
	g := dram.Geometry{
		Channels: 2, RanksPerChannel: 1, BanksPerRank: 2,
		Rows: 4, RowBytes: 64, TransferBytes: 32,
	}
	m, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.CapacityBytes()
	seen := make(map[dram.Addr]map[int]bool)
	for pa := int64(0); pa < n; pa++ {
		a, off := m.Translate(uint64(pa))
		if !a.Valid(g) {
			t.Fatalf("invalid address for pa %d: %v", pa, a)
		}
		if seen[a] == nil {
			seen[a] = map[int]bool{}
		}
		if seen[a][off] {
			t.Fatalf("pa %d collides at %v off %d", pa, a, off)
		}
		seen[a][off] = true
	}
	if int64(len(seen))*int64(g.TransferBytes) != n {
		t.Errorf("bijection covered %d burst slots, want %d", len(seen), n/int64(g.TransferBytes))
	}
}

func TestNewRejectsBadSegments(t *testing.T) {
	g := testGeom()
	// Missing a row bit.
	segs := []Segment{
		{FieldOffset, g.OffsetBits()},
		{FieldChannel, g.ChannelBits()},
		{FieldBank, g.BankBits()},
		{FieldColumn, g.ColumnBits()},
		{FieldRank, g.RankBits()},
		{FieldRow, g.RowBits() - 1},
	}
	if _, err := New(g, "bad", segs); err == nil {
		t.Error("under-covered row field accepted")
	}
	segs[len(segs)-1].Bits = g.RowBits() + 1
	if _, err := New(g, "bad", segs); err == nil {
		t.Error("over-covered row field accepted")
	}
	if _, err := New(g, "bad", []Segment{{FieldRow, -1}}); err == nil {
		t.Error("negative segment accepted")
	}
}

func TestSplitFieldSegments(t *testing.T) {
	// FACIL-style: row bits split below and above the bank bits.
	g := testGeom()
	segs := []Segment{
		{FieldOffset, g.OffsetBits()},
		{FieldColumn, g.ColumnBits()},
		{FieldRow, 3}, // row LSBs inside the page offset
		{FieldBank, g.BankBits()},
		{FieldRank, g.RankBits()},
		{FieldChannel, g.ChannelBits()},
		{FieldRow, g.RowBits() - 3},
	}
	m, err := New(g, "split-row", segs)
	if err != nil {
		t.Fatal(err)
	}
	// Row LSB sits right above the column bits (bit 11).
	a, _ := m.Translate(1 << 11)
	if a.Row != 1 {
		t.Errorf("bit 11 should be row bit 0, got %v", a)
	}
	// Row bit 3 sits above the channel bits (bit 11+3+3+1+2 = 20).
	a, _ = m.Translate(1 << 20)
	if a.Row != 8 {
		t.Errorf("bit 20 should be row bit 3, got %v", a)
	}
	// Round-trip still holds.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		pa := rng.Uint64() % uint64(g.CapacityBytes())
		a, off := m.Translate(pa)
		if m.Inverse(a, off) != pa {
			t.Fatalf("round trip failed at %#x", pa)
		}
	}
}

func TestFromLayoutErrors(t *testing.T) {
	g := testGeom()
	if _, err := FromLayout(g, "row:rank:column:bank:chnnel"); err == nil {
		t.Error("typo field accepted")
	}
}

func TestMappingString(t *testing.T) {
	g := testGeom()
	m, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	want := "row[14]:rank[1]:column[6]:bank[3]:channel[2]:offset[5]"
	if got := m.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestFieldKindString(t *testing.T) {
	names := map[FieldKind]string{
		FieldOffset: "offset", FieldColumn: "column", FieldBank: "bank",
		FieldRank: "rank", FieldChannel: "channel", FieldRow: "row",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
		back, err := parseFieldKind(want)
		if err != nil || back != k {
			t.Errorf("parseFieldKind(%q) = %v, %v", want, back, err)
		}
	}
}

func TestSequentialStreamInterleavesChannelsFirst(t *testing.T) {
	g := testGeom()
	m, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive bursts must rotate through all channels before
	// repeating one — that is what makes the conventional mapping
	// bandwidth-optimal for sequential streams.
	for i := 0; i < g.Channels; i++ {
		a, _ := m.Translate(uint64(i * g.TransferBytes))
		if a.Channel != i {
			t.Errorf("burst %d on channel %d, want %d", i, a.Channel, i)
		}
	}
}
