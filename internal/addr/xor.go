package addr

import (
	"fmt"

	"facil/internal/dram"
)

// XOR bank hashing. Production memory controllers commonly XOR the bank
// (and channel) index bits with row bits so that pathological strides do
// not concentrate on one bank — the addressing behaviour the DRAMA study
// the paper cites reverse-engineers. FACIL's conventional mapping can
// carry such hashing; the PIM mappings must not, because lock-step
// placement depends on untangled PU-changing bits.

// XORPair hashes one target-field bit with one row bit:
// target[TargetBit] ^= row[RowBit].
type XORPair struct {
	// Target is the hashed field (FieldBank or FieldChannel).
	Target FieldKind
	// TargetBit is the bit index within the target field.
	TargetBit int
	// RowBit is the row bit folded in.
	RowBit int
}

// HashedMapping decorates a base mapping with XOR bank/channel hashing.
// Translate and Inverse remain exact inverses: the hash depends only on
// row bits, which it never modifies, and XOR is self-inverse.
type HashedMapping struct {
	base  *Mapping
	pairs []XORPair
}

// WithXOR wraps a mapping with hash pairs.
func WithXOR(m *Mapping, pairs []XORPair) (*HashedMapping, error) {
	g := m.Geometry()
	for _, p := range pairs {
		switch p.Target {
		case FieldBank:
			if p.TargetBit < 0 || p.TargetBit >= g.BankBits() {
				return nil, fmt.Errorf("addr: xor target bank bit %d out of range", p.TargetBit)
			}
		case FieldChannel:
			if p.TargetBit < 0 || p.TargetBit >= g.ChannelBits() {
				return nil, fmt.Errorf("addr: xor target channel bit %d out of range", p.TargetBit)
			}
		default:
			return nil, fmt.Errorf("addr: xor target %v not supported (bank or channel only)", p.Target)
		}
		if p.RowBit < 0 || p.RowBit >= g.RowBits() {
			return nil, fmt.Errorf("addr: xor row bit %d out of range", p.RowBit)
		}
	}
	return &HashedMapping{base: m, pairs: append([]XORPair(nil), pairs...)}, nil
}

// Geometry returns the base geometry.
func (h *HashedMapping) Geometry() dram.Geometry { return h.base.Geometry() }

// Base returns the undecorated mapping.
func (h *HashedMapping) Base() *Mapping { return h.base }

// apply folds the row bits into the interleave fields (self-inverse).
func (h *HashedMapping) apply(a dram.Addr) dram.Addr {
	for _, p := range h.pairs {
		bit := (a.Row >> p.RowBit) & 1
		switch p.Target {
		case FieldBank:
			a.Bank ^= bit << p.TargetBit
		case FieldChannel:
			a.Channel ^= bit << p.TargetBit
		}
	}
	return a
}

// Translate maps a physical address to a DRAM address with hashing.
func (h *HashedMapping) Translate(pa uint64) (dram.Addr, int) {
	a, off := h.base.Translate(pa)
	return h.apply(a), off
}

// Inverse converts a hashed DRAM address back to the physical address.
func (h *HashedMapping) Inverse(a dram.Addr, offset int) uint64 {
	return h.base.Inverse(h.apply(a), offset)
}
