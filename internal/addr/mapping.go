// Package addr implements configurable physical-address-to-DRAM-address
// (PA-to-DA) bit mappings.
//
// A Mapping assigns every physical-address bit to one DRAM coordinate
// (channel, rank, bank, row, column or byte-offset-within-burst). Mappings
// are described as an ordered list of contiguous bit segments from LSB to
// MSB, mirroring how memory-controller frontends are specified (e.g. the
// conventional "row:rank:column:bank:channel" scheme of the paper, written
// MSB-to-LSB).
//
// The FACIL-specific PIM-optimized mappings, which permute only the huge-
// page offset bits, are built on top of this package by internal/mapping.
package addr

import (
	"fmt"
	"strings"

	"facil/internal/dram"
)

// FieldKind identifies one DRAM coordinate.
type FieldKind int

// DRAM coordinate kinds.
const (
	FieldOffset FieldKind = iota // byte within burst
	FieldColumn                  // burst within row
	FieldBank
	FieldRank
	FieldChannel
	FieldRow
	numFields
)

// String returns the lower-case field name used in layout strings.
func (k FieldKind) String() string {
	switch k {
	case FieldOffset:
		return "offset"
	case FieldColumn:
		return "column"
	case FieldBank:
		return "bank"
	case FieldRank:
		return "rank"
	case FieldChannel:
		return "channel"
	case FieldRow:
		return "row"
	default:
		return fmt.Sprintf("field(%d)", int(k))
	}
}

// parseFieldKind maps a layout token to its kind.
func parseFieldKind(s string) (FieldKind, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "offset":
		return FieldOffset, nil
	case "column", "col":
		return FieldColumn, nil
	case "bank", "ba":
		return FieldBank, nil
	case "rank", "rk":
		return FieldRank, nil
	case "channel", "ch":
		return FieldChannel, nil
	case "row":
		return FieldRow, nil
	default:
		return 0, fmt.Errorf("addr: unknown field %q", s)
	}
}

// Segment is a contiguous run of physical-address bits assigned to one
// DRAM coordinate. Bits within a segment keep their relative order.
type Segment struct {
	Kind FieldKind
	Bits int
}

// segPlan is a compiled segment: where it sits in the PA and which bits of
// its field it provides.
type segPlan struct {
	kind       FieldKind
	paShift    uint // position of segment LSB in the physical address
	fieldShift uint // position of segment LSB within the field value
	mask       uint64
}

// Mapping is a complete, validated PA-to-DA bit assignment for a geometry.
type Mapping struct {
	geom dram.Geometry
	// segs is the LSB-to-MSB segment list as provided.
	segs  []Segment
	plans []segPlan
	name  string
}

// fieldBits returns the number of address bits each field needs.
func fieldBits(g dram.Geometry, k FieldKind) int {
	switch k {
	case FieldOffset:
		return g.OffsetBits()
	case FieldColumn:
		return g.ColumnBits()
	case FieldBank:
		return g.BankBits()
	case FieldRank:
		return g.RankBits()
	case FieldChannel:
		return g.ChannelBits()
	case FieldRow:
		return g.RowBits()
	}
	return 0
}

// New builds a Mapping from an LSB-to-MSB segment list. The segments must
// cover each field with exactly the number of bits the geometry requires.
// Fields may be split across multiple segments (as FACIL does with row
// bits); earlier segments provide lower-order field bits.
func New(g dram.Geometry, name string, segs []Segment) (*Mapping, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &Mapping{geom: g, name: name, segs: append([]Segment(nil), segs...)}
	var got [numFields]int
	paShift := uint(0)
	for _, s := range segs {
		if s.Bits < 0 {
			return nil, fmt.Errorf("addr: mapping %q: negative segment width for %s", name, s.Kind)
		}
		if s.Bits == 0 {
			continue
		}
		m.plans = append(m.plans, segPlan{
			kind:       s.Kind,
			paShift:    paShift,
			fieldShift: uint(got[s.Kind]),
			mask:       (uint64(1) << s.Bits) - 1,
		})
		got[s.Kind] += s.Bits
		paShift += uint(s.Bits)
	}
	for k := FieldKind(0); k < numFields; k++ {
		want := fieldBits(g, k)
		if got[k] != want {
			return nil, fmt.Errorf("addr: mapping %q: field %s has %d bits, geometry needs %d",
				name, k, got[k], want)
		}
	}
	if int(paShift) != g.AddressBits() {
		return nil, fmt.Errorf("addr: mapping %q covers %d bits, geometry has %d",
			name, paShift, g.AddressBits())
	}
	return m, nil
}

// FromLayout builds a mapping from an MSB-to-LSB colon-separated layout
// such as "row:rank:column:bank:channel". The byte-offset field is
// appended implicitly at the LSB end if not mentioned. Each field named
// receives all of its bits as one contiguous run.
func FromLayout(g dram.Geometry, layout string) (*Mapping, error) {
	tokens := strings.Split(layout, ":")
	var kinds []FieldKind
	seenOffset := false
	for _, tok := range tokens {
		k, err := parseFieldKind(tok)
		if err != nil {
			return nil, err
		}
		if k == FieldOffset {
			seenOffset = true
		}
		kinds = append(kinds, k)
	}
	if !seenOffset {
		kinds = append(kinds, FieldOffset)
	}
	// Reverse MSB-to-LSB into LSB-to-MSB segments.
	segs := make([]Segment, 0, len(kinds))
	for i := len(kinds) - 1; i >= 0; i-- {
		segs = append(segs, Segment{Kind: kinds[i], Bits: fieldBits(g, kinds[i])})
	}
	return New(g, layout, segs)
}

// Name returns the mapping's descriptive name.
func (m *Mapping) Name() string { return m.name }

// Geometry returns the geometry this mapping was built for.
func (m *Mapping) Geometry() dram.Geometry { return m.geom }

// Segments returns a copy of the LSB-to-MSB segment list.
func (m *Mapping) Segments() []Segment {
	return append([]Segment(nil), m.segs...)
}

// Translate converts a physical byte address into a DRAM address plus the
// byte offset within the burst.
func (m *Mapping) Translate(pa uint64) (dram.Addr, int) {
	var f [numFields]uint64
	for i := range m.plans {
		p := &m.plans[i]
		f[p.kind] |= ((pa >> p.paShift) & p.mask) << p.fieldShift
	}
	return dram.Addr{
		Channel: int(f[FieldChannel]),
		Rank:    int(f[FieldRank]),
		Bank:    int(f[FieldBank]),
		Row:     int(f[FieldRow]),
		Column:  int(f[FieldColumn]),
	}, int(f[FieldOffset])
}

// Inverse converts a DRAM address plus burst byte offset back to the
// physical address. It is the exact inverse of Translate.
func (m *Mapping) Inverse(a dram.Addr, offset int) uint64 {
	var f [numFields]uint64
	f[FieldChannel] = uint64(a.Channel)
	f[FieldRank] = uint64(a.Rank)
	f[FieldBank] = uint64(a.Bank)
	f[FieldRow] = uint64(a.Row)
	f[FieldColumn] = uint64(a.Column)
	f[FieldOffset] = uint64(offset)
	var pa uint64
	for i := range m.plans {
		p := &m.plans[i]
		pa |= ((f[p.kind] >> p.fieldShift) & p.mask) << p.paShift
	}
	return pa
}

// String renders the mapping MSB-to-LSB with bit widths, e.g.
// "row[22]:rank[1]:column[6]:bank[4]:channel[4]:offset[5]". Adjacent
// segments of the same field are merged for readability.
func (m *Mapping) String() string {
	parts := make([]string, 0, len(m.segs))
	for i := len(m.segs) - 1; i >= 0; i-- {
		s := m.segs[i]
		if s.Bits == 0 {
			continue
		}
		bits := s.Bits
		for i > 0 && m.segs[i-1].Kind == s.Kind {
			i--
			bits += m.segs[i].Bits
		}
		parts = append(parts, fmt.Sprintf("%s[%d]", s.Kind, bits))
	}
	return strings.Join(parts, ":")
}

// Conventional returns the paper's default SoC mapping,
// row:rank:column:bank:channel, which interleaves consecutive bursts
// across channels then banks and achieves near-peak sequential bandwidth.
func Conventional(g dram.Geometry) (*Mapping, error) {
	return FromLayout(g, "row:rank:column:bank:channel")
}
