package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func hashedTestMapping(t *testing.T) *HashedMapping {
	t.Helper()
	g := testGeom()
	base, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := WithXOR(base, []XORPair{
		{Target: FieldBank, TargetBit: 0, RowBit: 0},
		{Target: FieldBank, TargetBit: 1, RowBit: 1},
		{Target: FieldChannel, TargetBit: 0, RowBit: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestXORRoundTrip(t *testing.T) {
	h := hashedTestMapping(t)
	g := h.Geometry()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		pa := rng.Uint64() % uint64(g.CapacityBytes())
		a, off := h.Translate(pa)
		if !a.Valid(g) {
			t.Fatalf("hashed translate invalid at %#x: %v", pa, a)
		}
		if back := h.Inverse(a, off); back != pa {
			t.Fatalf("hashed round trip %#x -> %#x", pa, back)
		}
	}
}

func TestXORRoundTripProperty(t *testing.T) {
	h := hashedTestMapping(t)
	max := uint64(h.Geometry().CapacityBytes())
	f := func(pa uint64) bool {
		pa %= max
		a, off := h.Translate(pa)
		return h.Inverse(a, off) == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestXORSpreadsPathologicalStride(t *testing.T) {
	// A stride equal to one bank's row span maps every access to the
	// same bank under the plain mapping; hashing spreads them.
	g := testGeom()
	base, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := WithXOR(base, []XORPair{
		{Target: FieldBank, TargetBit: 0, RowBit: 0},
		{Target: FieldBank, TargetBit: 1, RowBit: 1},
		{Target: FieldBank, TargetBit: 2, RowBit: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stride: one full row-of-banks span -> same bank, next row.
	stride := uint64(g.RowBytes * g.BanksPerRank * g.Channels * g.RanksPerChannel)
	plainBanks := map[int]bool{}
	hashedBanks := map[int]bool{}
	for i := uint64(0); i < 64; i++ {
		a, _ := base.Translate(i * stride)
		plainBanks[a.Bank] = true
		b, _ := h.Translate(i * stride)
		hashedBanks[b.Bank] = true
	}
	if len(plainBanks) != 1 {
		t.Fatalf("plain mapping hit %d banks, expected the pathological 1", len(plainBanks))
	}
	if len(hashedBanks) < 4 {
		t.Errorf("hashed mapping hit only %d banks", len(hashedBanks))
	}
}

func TestXORPreservesRowAndColumn(t *testing.T) {
	h := hashedTestMapping(t)
	base := h.Base()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		pa := rng.Uint64() % uint64(h.Geometry().CapacityBytes())
		a, _ := base.Translate(pa)
		b, _ := h.Translate(pa)
		if a.Row != b.Row || a.Column != b.Column || a.Rank != b.Rank {
			t.Fatalf("hash modified non-target fields: %v vs %v", a, b)
		}
	}
}

func TestWithXORValidation(t *testing.T) {
	g := testGeom()
	base, err := Conventional(g)
	if err != nil {
		t.Fatal(err)
	}
	bad := []XORPair{{Target: FieldBank, TargetBit: 99, RowBit: 0}}
	if _, err := WithXOR(base, bad); err == nil {
		t.Error("bank bit out of range accepted")
	}
	bad = []XORPair{{Target: FieldRow, TargetBit: 0, RowBit: 0}}
	if _, err := WithXOR(base, bad); err == nil {
		t.Error("row target accepted")
	}
	bad = []XORPair{{Target: FieldBank, TargetBit: 0, RowBit: 99}}
	if _, err := WithXOR(base, bad); err == nil {
		t.Error("row bit out of range accepted")
	}
}
