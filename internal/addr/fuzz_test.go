package addr

import (
	"testing"

	"facil/internal/dram"
)

// FuzzConventionalRoundTrip fuzzes physical addresses through the
// conventional row:rank:column:bank:channel mapping: Translate and
// Inverse must be exact inverses over the device's address space.
func FuzzConventionalRoundTrip(f *testing.F) {
	g := dram.Geometry{
		Channels:        4,
		RanksPerChannel: 2,
		BanksPerRank:    8,
		Rows:            1 << 15,
		RowBytes:        2048,
		TransferBytes:   32,
	}
	m, err := Conventional(g)
	if err != nil {
		f.Fatal(err)
	}
	capacity := uint64(g.CapacityBytes())
	f.Add(uint64(0))
	f.Add(uint64(g.RowBytes - 1))
	f.Add(capacity - 1)
	f.Fuzz(func(t *testing.T, pa uint64) {
		pa %= capacity
		a, off := m.Translate(pa)
		if back := m.Inverse(a, off); back != pa {
			t.Fatalf("round trip %#x -> %v+%d -> %#x", pa, a, off, back)
		}
	})
}
