package core

import (
	"testing"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/pim"
	"facil/internal/vm"
)

func testFacil(t *testing.T) *Facil {
	t.Helper()
	spec, err := dram.LPDDR5("core test", 64, 6400, 2, 2<<30) // 4ch x 2rk x 16ba
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(spec, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEndToEndPimallocPlacement(t *testing.T) {
	f := testFacil(t)
	// Multi-huge-page matrix with physically scattered pages: the
	// placement invariants must hold through the real page tables.
	m := mapping.MatrixConfig{Rows: 2048, Cols: 4096, DTypeBytes: 2} // 16 MiB
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.VerifyPlacement(reg, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HugePages != 8 {
		t.Errorf("HugePages = %d, want 8", rep.HugePages)
	}
	if rep.ChunksChecked == 0 {
		t.Error("no chunks verified")
	}
}

func TestEndToEndPlacementWithFragmentedMemory(t *testing.T) {
	// Allocate and free churn first so the huge pages are genuinely
	// scattered, then verify placement still holds per page.
	f := testFacil(t)
	var regions []*vm.Region
	for i := 0; i < 6; i++ {
		r, err := f.Alloc(3 << 20)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	// Free every other one to punch holes.
	for i := 0; i < len(regions); i += 2 {
		if err := f.Free(regions[i]); err != nil {
			t.Fatal(err)
		}
	}
	m := mapping.MatrixConfig{Rows: 1024, Cols: 4096, DTypeBytes: 2}
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.VerifyPlacement(reg, m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPlacementPartitioned(t *testing.T) {
	f := testFacil(t)
	// 32 KB rows > 16 KB per-bank share: partitioned placement.
	m := mapping.MatrixConfig{Rows: 256, Cols: 16384, DTypeBytes: 2}
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Selection.Partitioned {
		t.Fatal("expected partitioned placement")
	}
	if _, err := f.VerifyPlacement(reg, m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPlacementRejectsWrongRegion(t *testing.T) {
	f := testFacil(t)
	m := mapping.MatrixConfig{Rows: 1024, Cols: 1024, DTypeBytes: 2}
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	other := mapping.MatrixConfig{Rows: 256, Cols: 16384, DTypeBytes: 2}
	if _, err := f.VerifyPlacement(reg, other); err == nil {
		t.Error("mismatched matrix accepted")
	}
}

func TestResolveDualView(t *testing.T) {
	f := testFacil(t)
	m := mapping.MatrixConfig{Rows: 512, Cols: 4096, DTypeBytes: 2}
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	pimView, err := f.Resolve(reg.VA + 32)
	if err != nil {
		t.Fatal(err)
	}
	convView, err := f.ResolveConventional(reg.VA + 32)
	if err != nil {
		t.Fatal(err)
	}
	if pimView == convView {
		t.Error("PIM and conventional views agree; mux has no effect")
	}
	// Conventionally allocated memory resolves identically both ways.
	plain, err := f.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Resolve(plain.VA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.ResolveConventional(plain.VA)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("conventional region resolved differently through the mux")
	}
}

func TestTimedAccessPath(t *testing.T) {
	f := testFacil(t)
	m := mapping.MatrixConfig{Rows: 64, Cols: 1024, DTypeBytes: 2}
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*dram.Request
	for i := 0; i < 128; i++ {
		r, err := f.Access(reg.VA+uint64(i*32), i%2 == 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	done := f.Drain()
	if done <= 0 {
		t.Fatal("no completion")
	}
	for _, r := range reqs {
		if r.Done <= 0 {
			t.Fatal("request never completed")
		}
	}
	if _, err := f.Access(0xdead<<32, false, 0); err == nil {
		t.Error("unmapped access accepted")
	}
}

func TestFreeShootsDownTLB(t *testing.T) {
	f := testFacil(t)
	m := mapping.MatrixConfig{Rows: 256, Cols: 1024, DTypeBytes: 2}
	reg, err := f.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the TLB with the region's translation.
	if _, err := f.Resolve(reg.VA); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(reg); err != nil {
		t.Fatal(err)
	}
	// The stale cached translation must not survive the unmap.
	if _, err := f.Resolve(reg.VA); err == nil {
		t.Error("TLB served a translation for freed memory")
	}
}

func TestGEMVThroughCore(t *testing.T) {
	f := testFacil(t)
	s, err := f.GEMVSeconds(mapping.MatrixConfig{Rows: 1024, Cols: 4096, DTypeBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Error("non-positive GEMV latency")
	}
}

func TestOptionsOverrides(t *testing.T) {
	spec, err := dram.LPDDR5("core opts", 64, 6400, 2, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pim.DefaultHBMPIM(spec.Geometry)
	f, err := New(spec, Options{PIM: &cfg, TLBSets: 8, TLBWays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.PIM().Config().Chunk.Style != mapping.StyleHBMPIM {
		t.Error("PIM override lost")
	}
	bad := spec
	bad.Geometry.Rows = 0
	if _, err := New(bad, Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
}
