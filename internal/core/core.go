// Package core assembles FACIL's primary contribution into one system
// object: the pimalloc allocation path (internal/vm), the MapID-aware
// memory-controller frontend (internal/mc), the mapping family
// (internal/mapping) and the PIM device model (internal/pim), wired
// together exactly as in paper Fig. 7:
//
//	user ── pimalloc(matrix) ──► mapping selector ──► OS allocator
//	         │                                         │ PTE{PFN, MapID}
//	         ▼                                         ▼
//	virtual address ──► TLB/page walk ──► MC frontend mux ──► DRAM
//
// The Facil type provides programmer-transparent dual-view access: SoC
// code addresses tensors through contiguous virtual addresses while the
// same bytes satisfy every PIM placement requirement.
package core

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/mc"
	"facil/internal/pim"
	"facil/internal/vm"
)

// Facil is one FACIL-enabled memory system.
type Facil struct {
	spec  dram.Spec
	mem   mapping.MemoryConfig
	chunk mapping.ChunkConfig

	space *vm.AddressSpace
	tlb   *vm.TLB
	front *mc.Frontend
	dev   *pim.Device
}

// Options tunes construction.
type Options struct {
	// PIM overrides the default AiM device configuration.
	PIM *pim.Config
	// TLBSets and TLBWays size the TLB (defaults 64x4).
	TLBSets, TLBWays int
	// Seed drives the allocator's randomized choices.
	Seed int64
}

// New builds a FACIL system over a DRAM spec.
func New(spec dram.Spec, opts Options) (*Facil, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pimCfg := pim.DefaultAiM(spec.Geometry)
	if opts.PIM != nil {
		pimCfg = *opts.PIM
	}
	if opts.TLBSets <= 0 {
		opts.TLBSets = 64
	}
	if opts.TLBWays <= 0 {
		opts.TLBWays = 4
	}
	f := &Facil{
		spec:  spec,
		mem:   mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: vm.HugePageBytes},
		chunk: pimCfg.Chunk,
	}
	var err error
	if f.space, err = vm.NewAddressSpace(f.mem, f.chunk, opts.Seed); err != nil {
		return nil, err
	}
	if f.tlb, err = vm.NewTLB(opts.TLBSets, opts.TLBWays, f.space.PageTable()); err != nil {
		return nil, err
	}
	table, err := mapping.NewTable(f.mem, f.chunk)
	if err != nil {
		return nil, err
	}
	if f.front, err = mc.NewFrontend(spec, table); err != nil {
		return nil, err
	}
	if f.dev, err = pim.NewDevice(spec, pimCfg); err != nil {
		return nil, err
	}
	return f, nil
}

// Spec returns the DRAM spec.
func (f *Facil) Spec() dram.Spec { return f.spec }

// Memory returns the memory configuration.
func (f *Facil) Memory() mapping.MemoryConfig { return f.mem }

// Frontend exposes the memory-controller frontend.
func (f *Facil) Frontend() *mc.Frontend { return f.front }

// AddressSpace exposes the OS allocation state.
func (f *Facil) AddressSpace() *vm.AddressSpace { return f.space }

// TLB exposes the translation cache.
func (f *Facil) TLB() *vm.TLB { return f.tlb }

// PIM exposes the device model.
func (f *Facil) PIM() *pim.Device { return f.dev }

// Pimalloc allocates a matrix with a PIM-optimized mapping (Fig. 7(a)).
func (f *Facil) Pimalloc(m mapping.MatrixConfig) (*vm.Region, error) {
	return f.space.Pimalloc(m)
}

// Alloc allocates conventionally mapped memory.
func (f *Facil) Alloc(bytes int64) (*vm.Region, error) {
	return f.space.Alloc(bytes)
}

// Free releases a region and performs the TLB shootdown so no stale
// translation (or stale MapID) survives the unmap.
func (f *Facil) Free(r *vm.Region) error {
	if err := f.space.Free(r); err != nil {
		return err
	}
	f.tlb.Flush()
	return nil
}

// Resolve translates a virtual address to its DRAM location: TLB/page
// walk yields {PA, MapID}; the frontend mux applies the mapping
// (Fig. 7(b)/(c)).
func (f *Facil) Resolve(va uint64) (dram.Addr, error) {
	tr, err := f.tlb.Translate(va)
	if err != nil {
		return dram.Addr{}, err
	}
	return f.front.Translate(tr.Phys, tr.MapID), nil
}

// ResolveConventional shows where the same virtual address would land if
// the page used the default mapping — the contrast FACIL's mux resolves.
func (f *Facil) ResolveConventional(va uint64) (dram.Addr, error) {
	tr, err := f.tlb.Translate(va)
	if err != nil {
		return dram.Addr{}, err
	}
	return f.front.Translate(tr.Phys, mapping.ConventionalMapID), nil
}

// Access drives one burst access through the timed frontend: translation
// plus DRAM scheduling. Call Drain to complete outstanding requests.
func (f *Facil) Access(va uint64, write bool, arrival int64) (*dram.Request, error) {
	tr, err := f.tlb.Translate(va)
	if err != nil {
		return nil, err
	}
	return f.front.Access(tr.Phys, tr.MapID, write, arrival)
}

// Drain completes all outstanding frontend requests.
func (f *Facil) Drain() int64 { return f.front.Drain() }

// PlacementReport summarizes VerifyPlacement.
type PlacementReport struct {
	// HugePages checked.
	HugePages int
	// RowsPerPass is the lock-step tile height.
	RowsPerPass int
	// ChunksChecked counts verified chunk placements.
	ChunksChecked int
}

// VerifyPlacement checks, through the real page tables and the frontend
// mux, that a pimalloc'd matrix satisfies the paper's three placement
// requirements (Sec. II-C) in physical memory:
//
//  1. each chunk is contiguous inside one DRAM row of one bank,
//  2. each matrix row (or row partition) stays within one bank, and
//  3. the k-th chunks of the rows of one pass sit at identical
//     (row, column) coordinates in pairwise-distinct banks, enabling
//     lock-step all-bank execution.
//
// Because huge pages are physically scattered, the lock-step property
// must hold within every huge page independently — which it does, since
// one pass's rows exactly fill one huge page.
func (f *Facil) VerifyPlacement(reg *vm.Region, m mapping.MatrixConfig) (PlacementReport, error) {
	sel, err := mapping.SelectMapping(m, f.mem, f.chunk)
	if err != nil {
		return PlacementReport{}, err
	}
	if sel.ID != reg.MapID {
		return PlacementReport{}, fmt.Errorf("core: region MapID %d does not match selector %d", reg.MapID, sel.ID)
	}
	g := f.spec.Geometry
	rowBytes := int64(m.PaddedRowBytes())
	partBytes := rowBytes / int64(sel.PartitionsPerRow)
	chunkBytes := int64(f.chunk.ColBytes)
	report := PlacementReport{HugePages: len(reg.Pages), RowsPerPass: sel.RowsPerPass}

	totalRows := int64(m.Rows)
	pass := int64(sel.RowsPerPass)
	for passStart := int64(0); passStart < totalRows; passStart += pass {
		rows := pass
		if passStart+rows > totalRows {
			rows = totalRows - passStart
		}
		// Reference coordinates per chunk index from the first row
		// of the pass.
		type coord struct{ row, col int }
		var refs []coord
		seen := make(map[int]map[int]bool) // chunk index -> banks
		for r := int64(0); r < rows; r++ {
			va := reg.VA + uint64((passStart+r)*rowBytes)
			for part := int64(0); part < int64(sel.PartitionsPerRow); part++ {
				partBank := -1
				for c := int64(0); c*chunkBytes < partBytes; c++ {
					base := va + uint64(part*partBytes+c*chunkBytes)
					first, err := f.Resolve(base)
					if err != nil {
						return report, err
					}
					// (1) chunk contiguity.
					for b := int64(0); b < chunkBytes; b += int64(g.TransferBytes) {
						a, err := f.Resolve(base + uint64(b))
						if err != nil {
							return report, err
						}
						if a.GlobalBank(g) != first.GlobalBank(g) || a.Row != first.Row {
							return report, fmt.Errorf("core: chunk at va %#x scattered: %v vs %v", base, a, first)
						}
						if a.Column != first.Column+int(b)/g.TransferBytes {
							return report, fmt.Errorf("core: chunk at va %#x non-contiguous columns", base)
						}
					}
					// (2) row partition bank consistency.
					if partBank == -1 {
						partBank = first.GlobalBank(g)
					} else if partBank != first.GlobalBank(g) {
						return report, fmt.Errorf("core: row %d partition %d spans banks", passStart+r, part)
					}
					// (3) lock-step alignment across the pass.
					ci := int(part*(partBytes/chunkBytes) + c)
					if r == 0 {
						refs = append(refs, coord{first.Row, first.Column})
						seen[ci] = map[int]bool{}
					} else if ci < len(refs) {
						if first.Row != refs[ci].row || first.Column != refs[ci].col {
							return report, fmt.Errorf("core: row %d chunk %d misaligned: (%d,%d) vs (%d,%d)",
								passStart+r, ci, first.Row, first.Column, refs[ci].row, refs[ci].col)
						}
					}
					if seen[ci][first.GlobalBank(g)] {
						return report, fmt.Errorf("core: pass at row %d: chunk %d bank collision", passStart, ci)
					}
					seen[ci][first.GlobalBank(g)] = true
					report.ChunksChecked++
				}
			}
		}
	}
	return report, nil
}

// GEMVSeconds runs the PIM device on a matrix placement.
func (f *Facil) GEMVSeconds(m mapping.MatrixConfig) (float64, error) {
	return f.dev.GEMVSeconds(m)
}
