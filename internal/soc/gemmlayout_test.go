package soc

import "testing"

func TestLayoutSlowdownSmall(t *testing.T) {
	// Table III: GEMM on the PIM-optimized layout loses at most a few
	// percent when the kernel has normal memory-level parallelism.
	op := Linear{L: 64, In: 4096, Out: 4096, DTypeBytes: 2}
	mem, opSlow, err := MeasureLayoutSlowdown(IPhone, op, LayoutSlowdownConfig{SampleBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if mem < 0 {
		t.Errorf("negative memory slowdown %g", mem)
	}
	if mem > 0.15 {
		t.Errorf("memory-phase slowdown = %.3f, want small (< 15%%)", mem)
	}
	if opSlow > mem+1e-12 {
		t.Errorf("op slowdown %g exceeds memory slowdown %g", opSlow, mem)
	}
}

func TestLayoutSlowdownFewStreamsWorse(t *testing.T) {
	// With little memory-level parallelism the PIM layout's per-row
	// bank locality hurts much more — the reason GPUs' abundant
	// parallelism is what keeps Table III small.
	op := Linear{L: 16, In: 4096, Out: 4096, DTypeBytes: 2}
	oneStream, _, err := MeasureLayoutSlowdown(IPhone, op, LayoutSlowdownConfig{Streams: 1, SampleBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	manyStreams, _, err := MeasureLayoutSlowdown(IPhone, op, LayoutSlowdownConfig{Streams: 128, SampleBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if oneStream <= manyStreams {
		t.Errorf("1-stream slowdown %.3f not worse than 128-stream %.3f", oneStream, manyStreams)
	}
}

func TestLayoutSlowdownValidation(t *testing.T) {
	if _, _, err := MeasureLayoutSlowdown(IPhone, Linear{}, LayoutSlowdownConfig{}); err == nil {
		t.Error("invalid op accepted")
	}
}
