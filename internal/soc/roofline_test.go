package soc

import (
	"math"
	"testing"
)

func TestGEMVIsMemoryBound(t *testing.T) {
	// Paper Fig. 2(b): GEMV compute utilization stays below 1% while
	// memory bandwidth is heavily utilized, across the four Llama3-8B
	// projection dimensions.
	dims := []Linear{
		{L: 1, In: 4096, Out: 4096, DTypeBytes: 2},  // Q/O proj
		{L: 1, In: 4096, Out: 1024, DTypeBytes: 2},  // K/V proj (GQA)
		{L: 1, In: 4096, Out: 14336, DTypeBytes: 2}, // FC1 (gate/up)
		{L: 1, In: 14336, Out: 4096, DTypeBytes: 2}, // FC2 (down)
	}
	for _, op := range dims {
		u := Jetson.UtilizationOf(op)
		if u.Compute >= 0.01 {
			t.Errorf("GEMV %dx%d compute util = %.4f, want < 1%%", op.In, op.Out, u.Compute)
		}
		if u.Memory < 0.5 {
			t.Errorf("GEMV %dx%d memory util = %.2f, want high", op.In, op.Out, u.Memory)
		}
	}
}

func TestGEMMSublinearUntilRidge(t *testing.T) {
	// Doubling L below the ridge point must cost much less than 2x.
	op := func(l int) Linear { return Linear{L: l, In: 4096, Out: 4096, DTypeBytes: 2} }
	t8 := Jetson.Seconds(op(8))
	t16 := Jetson.Seconds(op(16))
	if r := t16 / t8; r > 1.2 {
		t.Errorf("L 8->16 scaled time by %.2f, want sublinear", r)
	}
	// Far above the ridge, scaling approaches linear.
	t1k := Jetson.Seconds(op(1024))
	t2k := Jetson.Seconds(op(2048))
	if r := t2k / t1k; r < 1.8 {
		t.Errorf("L 1024->2048 scaled time by %.2f, want near-linear", r)
	}
}

func TestRooflineCrossoverAtRidge(t *testing.T) {
	for _, p := range All() {
		ridge := p.RidgePoint()
		// Well below ridge: memory-bound fraction ~1.
		low := Linear{L: 1, In: 4096, Out: 4096, DTypeBytes: 2}
		if ai := low.ArithmeticIntensity(); ai >= ridge {
			t.Fatalf("%s: GEMV AI %.1f not below ridge %.1f", p.Name, ai, ridge)
		}
		if f := p.MemoryBoundFraction(low); f < 0.99 {
			t.Errorf("%s: below-ridge memory fraction = %.2f", p.Name, f)
		}
		// Far above ridge: compute-bound, memory fraction < 1.
		high := Linear{L: 4096, In: 4096, Out: 4096, DTypeBytes: 2}
		if ai := high.ArithmeticIntensity(); ai > ridge {
			if f := p.MemoryBoundFraction(high); f >= 1 {
				t.Errorf("%s: above-ridge memory fraction = %.2f", p.Name, f)
			}
		}
	}
}

func TestLinearAccounting(t *testing.T) {
	op := Linear{L: 4, In: 100, Out: 200, DTypeBytes: 2}
	if got, want := op.FLOPs(), 2.0*4*100*200; got != want {
		t.Errorf("FLOPs = %g, want %g", got, want)
	}
	wantBytes := float64(100*200*2 + 4*100*2 + 4*200*2)
	if got := op.Bytes(); got != wantBytes {
		t.Errorf("Bytes = %g, want %g", got, wantBytes)
	}
	if got := op.WeightBytes(); got != 100*200*2 {
		t.Errorf("WeightBytes = %d", got)
	}
	if !(Linear{L: 1, In: 2, Out: 2, DTypeBytes: 2}).IsGEMV() {
		t.Error("L=1 not GEMV")
	}
	if (Linear{L: 2, In: 2, Out: 2, DTypeBytes: 2}).IsGEMV() {
		t.Error("L=2 is GEMV")
	}
	if err := (Linear{L: 0, In: 1, Out: 1, DTypeBytes: 2}).Validate(); err == nil {
		t.Error("L=0 accepted")
	}
	if err := (Linear{L: 1, In: 1, Out: 1, DTypeBytes: 0}).Validate(); err == nil {
		t.Error("dtype 0 accepted")
	}
}

func TestSecondsOnPIMLayoutAppliesSlowdown(t *testing.T) {
	op := Linear{L: 64, In: 4096, Out: 4096, DTypeBytes: 2}
	base := Jetson.Seconds(op)
	pim := Jetson.SecondsOnPIMLayout(op)
	want := base * 1.021
	if math.Abs(pim-want)/want > 1e-12 {
		t.Errorf("PIM-layout time = %g, want %g", pim, want)
	}
}

func TestGEMVTimeMatchesBandwidth(t *testing.T) {
	// A decode GEMV should take ~weightBytes / effective bandwidth.
	op := Linear{L: 1, In: 4096, Out: 4096, DTypeBytes: 2}
	got := Jetson.Seconds(op)
	want := op.Bytes() / (Jetson.EffectiveBWGBs() * 1e9)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("GEMV seconds = %g, want %g", got, want)
	}
}
