package soc

import (
	"math"
	"testing"
)

func TestPlatformsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestRidgePointsMatchPaper(t *testing.T) {
	// Paper Sec. VI-B: ridge arithmetic intensities 207.5 (Jetson),
	// 69.3 (MacBook), 93.8 (IdeaPad), 83.8 (iPhone).
	cases := []struct {
		p    Platform
		want float64
	}{
		{Jetson, 207.5},
		{Macbook, 69.3},
		{IdeaPad, 93.8},
		{IPhone, 83.8},
	}
	for _, c := range cases {
		got := c.p.RidgePoint()
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("%s ridge = %.1f, want %.1f", c.p.Name, got, c.want)
		}
	}
}

func TestPeakBandwidthsMatchTable2(t *testing.T) {
	cases := []struct {
		p    Platform
		want float64
	}{
		{Jetson, 204.8},
		{Macbook, 409.6},
		{IdeaPad, 59.7},
		{IPhone, 51.2},
	}
	for _, c := range cases {
		if got := c.p.PeakBWGBs(); math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("%s peak BW = %.1f, want %.1f", c.p.Name, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Apple iPhone 15 Pro")
	if err != nil || p.Processor != "A17 Pro" {
		t.Errorf("ByName: %+v, %v", p, err)
	}
	if _, err := ByName("Pixel"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestPlatformValidateRejectsBadFields(t *testing.T) {
	p := Jetson
	p.MemBWUtil = 0
	if err := p.Validate(); err == nil {
		t.Error("zero MemBWUtil accepted")
	}
	p = Jetson
	p.PeakTFLOPS = -1
	if err := p.Validate(); err == nil {
		t.Error("negative TFLOPS accepted")
	}
	p = Jetson
	p.GEMMSlowdown = 2
	if err := p.Validate(); err == nil {
		t.Error("GEMMSlowdown > 1 accepted")
	}
	p = Jetson
	p.Name = ""
	if err := p.Validate(); err == nil {
		t.Error("empty name accepted")
	}
}
