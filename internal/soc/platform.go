// Package soc models the SoC processors (GPU/NPU) of the paper's four
// evaluation platforms with a roofline execution model, plus the
// cache-line-locality model used to estimate the GEMM slowdown when
// operating directly on a PIM-optimized layout (paper Table III).
package soc

import (
	"fmt"

	"facil/internal/dram"
)

// Platform captures one row of paper Table II plus the measured per-device
// constants the evaluation uses.
type Platform struct {
	// Name is the device name, e.g. "NVIDIA Jetson AGX Orin 64GB".
	Name string
	// Processor is the primary SoC processor executing non-PIM work.
	Processor string
	// ProcessorType is "GPU" or "NPU".
	ProcessorType string
	// PeakTFLOPS is the FP16 peak throughput of the processor.
	PeakTFLOPS float64
	// Spec is the platform's memory system.
	Spec dram.Spec
	// MemBWUtil is the memory-bandwidth utilization the paper measured
	// for GEMV kernels on this device (Sec. VI-C): 0.763 / 0.883 /
	// 0.333 / 0.746.
	MemBWUtil float64
	// GEMMSlowdown is the conservative worst-case slowdown the paper
	// applies to GEMM on a PIM-optimized layout (Table III).
	GEMMSlowdown float64
	// Model is the LLM evaluated on this platform.
	Model string
	// Framework is the inference library the paper used.
	Framework string
}

// Validate rejects incomplete platforms.
func (p Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("soc: platform needs a name")
	}
	if p.PeakTFLOPS <= 0 {
		return fmt.Errorf("soc: platform %s: PeakTFLOPS must be positive", p.Name)
	}
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if p.MemBWUtil <= 0 || p.MemBWUtil > 1 {
		return fmt.Errorf("soc: platform %s: MemBWUtil %g out of (0,1]", p.Name, p.MemBWUtil)
	}
	if p.GEMMSlowdown < 0 || p.GEMMSlowdown > 1 {
		return fmt.Errorf("soc: platform %s: GEMMSlowdown %g out of [0,1]", p.Name, p.GEMMSlowdown)
	}
	return nil
}

// PeakBWGBs returns the theoretical peak memory bandwidth.
func (p Platform) PeakBWGBs() float64 { return p.Spec.PeakBandwidthGBs() }

// EffectiveBWGBs returns the bandwidth memory-bound kernels achieve.
func (p Platform) EffectiveBWGBs() float64 { return p.PeakBWGBs() * p.MemBWUtil }

// RidgePoint returns the roofline ridge arithmetic intensity in FLOP/byte:
// peak FLOPS / peak bandwidth (paper Sec. VI-B quotes 207.5 / 69.3 / 93.8 /
// 83.8 for the four platforms).
func (p Platform) RidgePoint() float64 {
	return p.PeakTFLOPS * 1e12 / (p.PeakBWGBs() * 1e9)
}

// The four evaluation platforms (paper Table II). Peak bandwidths derive
// from the memory specs; the remaining constants are the paper's.
var (
	// Jetson is the NVIDIA Jetson AGX Orin 64GB.
	Jetson = Platform{
		Name:          "NVIDIA Jetson AGX Orin 64GB",
		Processor:     "Ampere CUDA/Tensor Cores",
		ProcessorType: "GPU",
		PeakTFLOPS:    42.5,
		Spec:          dram.JetsonOrinLPDDR5,
		MemBWUtil:     0.763,
		GEMMSlowdown:  0.021,
		Model:         "Llama3-8B",
		Framework:     "TinyChatEngine",
	}
	// Macbook is the Apple MacBook Pro (M3 Max).
	Macbook = Platform{
		Name:          "Apple MacBook Pro",
		Processor:     "M3 Max",
		ProcessorType: "GPU",
		PeakTFLOPS:    28.4,
		Spec:          dram.MacbookLPDDR5,
		MemBWUtil:     0.883,
		GEMMSlowdown:  0.001,
		Model:         "Llama3-8B",
		Framework:     "MLX",
	}
	// IdeaPad is the Lenovo IdeaPad Slim 5 (Core Ultra 7 155H NPU).
	IdeaPad = Platform{
		Name:          "Lenovo IdeaPad Slim 5",
		Processor:     "Intel Core Ultra 7 155H",
		ProcessorType: "NPU",
		PeakTFLOPS:    5.6,
		Spec:          dram.IdeaPadLPDDR5X,
		MemBWUtil:     0.333,
		GEMMSlowdown:  0.011,
		Model:         "OPT-6.7B",
		Framework:     "Intel NPU Library",
	}
	// IPhone is the Apple iPhone 15 Pro (A17 Pro).
	IPhone = Platform{
		Name:          "Apple iPhone 15 Pro",
		Processor:     "A17 Pro",
		ProcessorType: "GPU",
		PeakTFLOPS:    4.29,
		Spec:          dram.IPhoneLPDDR5,
		MemBWUtil:     0.746,
		GEMMSlowdown:  0.016,
		Model:         "Phi-1.5",
		Framework:     "MLX Swift",
	}
)

// All returns the four platforms in the paper's order.
func All() []Platform {
	return []Platform{Jetson, Macbook, IdeaPad, IPhone}
}

// ByName finds a platform by (case-sensitive) name.
func ByName(name string) (Platform, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("soc: unknown platform %q", name)
}
