package soc

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
)

// The paper estimates the side effect of running GEMM kernels directly on
// a PIM-optimized layout with GPGPU-Sim and ONNXim (Table III: at most a
// few percent). This file reproduces that estimate with the in-repo DRAM
// simulator: a GEMM's weight traffic is modeled as many concurrent
// streams — one per tile row the kernel walks — and the achieved DRAM
// bandwidth is compared between the conventional and the PIM-optimized
// mapping. Because each matrix row lives in its own bank under the PIM
// layout, per-stream locality degrades, but the kernel's abundant
// memory-level parallelism spreads streams across banks, leaving only a
// small residual slowdown — the paper's observation.

// LayoutSlowdownConfig controls the measurement.
type LayoutSlowdownConfig struct {
	// Streams is the number of concurrent row streams the kernel keeps
	// in flight (warps/DMA engines). Zero selects the placement's
	// natural tile height (RowsPerPass), modeling a well-tiled kernel
	// whose in-flight rows cover every processing unit exactly once —
	// the regime real GEMM kernels operate in and the reason the
	// paper's measured slowdowns stay within a few percent. The
	// AblationGEMMStreams study documents the sensitivity to this
	// choice.
	Streams int
	// SampleBytes bounds the simulated weight window. Defaults to 4 MiB.
	SampleBytes int64
}

func (c *LayoutSlowdownConfig) defaults() {
	if c.SampleBytes <= 0 {
		c.SampleBytes = 4 << 20
	}
}

// gemmWeightStream generates the burst stream of a tiled GEMM reading a
// weight matrix with `rows` rows of `rowBytes` each: `streams` concurrent
// row-walkers issuing round-robin. Requests are paced at the memory
// system's peak consumption rate (`channels` bursts per cycle), so a
// mapping that concentrates a tile's traffic on few channels exhibits the
// queueing it would cause in hardware instead of being reordered across
// the whole kernel. The stream is produced one burst per pull — it walks
// row groups of `streams` rows concurrently, column-major across the
// group (each "tick" advances every stream one burst) — so the window
// never materializes as a request slice.
func gemmWeightStream(m interface {
	Translate(uint64) (dram.Addr, int)
}, rows int, rowBytes int64, streams, channels int, limit int64, transfer int64) dram.RequestSource {
	if streams > rows {
		streams = rows
	}
	burstsPerRow := rowBytes / transfer
	group, s := 0, 0
	b := int64(0)
	var emitted int64
	return func(r *dram.Request) bool {
		for {
			if s == 0 {
				// Tick boundary: the size limit gates new ticks (and new
				// groups), never splits one — every stream in a started
				// tick advances.
				if b == 0 && (group*streams >= rows || emitted*transfer >= limit) {
					return false
				}
				if b >= burstsPerRow || emitted*transfer >= limit {
					group++
					b = 0
					continue
				}
			}
			row := group*streams + s
			if row >= rows {
				s = 0
				b++
				continue
			}
			pa := uint64(int64(row)*rowBytes + b*transfer)
			a, _ := m.Translate(pa)
			*r = dram.Request{
				Addr:    a,
				Arrival: emitted / int64(channels),
			}
			emitted++
			s++
			if s == streams {
				s = 0
				b++
			}
			return true
		}
	}
}

// MeasureLayoutSlowdown returns the fractional slowdown of the GEMM's
// memory phase when the weight matrix uses the PIM mapping chosen by
// SelectMapping instead of the conventional mapping, plus the end-to-end
// slowdown for a given op (scaled by the op's memory-bound fraction).
func MeasureLayoutSlowdown(p Platform, op Linear, cfg LayoutSlowdownConfig) (memSlowdown, opSlowdown float64, err error) {
	cfg.defaults()
	if err := op.Validate(); err != nil {
		return 0, 0, err
	}
	mc := mapping.MemoryConfig{Geometry: p.Spec.Geometry, HugePageBytes: 2 << 20}
	chunk := mapping.AiMChunk(p.Spec.Geometry)
	tab, err := mapping.NewTable(mc, chunk)
	if err != nil {
		return 0, 0, err
	}
	matrix := mapping.MatrixConfig{Rows: op.Out, Cols: op.In, DTypeBytes: op.DTypeBytes}
	sel, err := mapping.SelectMapping(matrix, mc, chunk)
	if err != nil {
		return 0, 0, err
	}
	rowBytes := int64(matrix.PaddedRowBytes())
	transfer := int64(p.Spec.Geometry.TransferBytes)
	if cfg.Streams <= 0 {
		cfg.Streams = sel.RowsPerPass
	}

	run := func(id mapping.MapID) (float64, error) {
		m := tab.Lookup(id)
		src := gemmWeightStream(m, op.Out, rowBytes, cfg.Streams, p.Spec.Geometry.Channels, cfg.SampleBytes, transfer)
		res, err := dram.MeasureStreamFunc(p.Spec, src)
		if err != nil {
			return 0, err
		}
		if res.Bytes == 0 {
			return 0, fmt.Errorf("soc: empty GEMM stream")
		}
		return res.BandwidthGBs, nil
	}
	convBW, err := run(mapping.ConventionalMapID)
	if err != nil {
		return 0, 0, err
	}
	pimBW, err := run(sel.ID)
	if err != nil {
		return 0, 0, err
	}
	if pimBW <= 0 {
		return 0, 0, fmt.Errorf("soc: PIM-layout stream produced zero bandwidth")
	}
	memSlowdown = convBW/pimBW - 1
	if memSlowdown < 0 {
		memSlowdown = 0
	}
	opSlowdown = memSlowdown * p.MemoryBoundFraction(op)
	return memSlowdown, opSlowdown, nil
}
