package soc

import "fmt"

// Linear describes one linear operator Y[L,Out] = X[L,In] · W[In,Out]
// executed with batch (sequence) length L.
type Linear struct {
	// L is the number of input rows (1 for decode GEMV, the prefill
	// length for prefill GEMM).
	L int
	// In and Out are the weight dimensions.
	In, Out int
	// DTypeBytes is the element size.
	DTypeBytes int
}

// Validate rejects degenerate shapes.
func (op Linear) Validate() error {
	if op.L <= 0 || op.In <= 0 || op.Out <= 0 {
		return fmt.Errorf("soc: linear shape (%d,%d,%d) must be positive", op.L, op.In, op.Out)
	}
	if op.DTypeBytes <= 0 {
		return fmt.Errorf("soc: element size %d must be positive", op.DTypeBytes)
	}
	return nil
}

// FLOPs returns 2·L·In·Out.
func (op Linear) FLOPs() float64 {
	return 2 * float64(op.L) * float64(op.In) * float64(op.Out)
}

// Bytes returns the minimum DRAM traffic: weights + activations + outputs.
func (op Linear) Bytes() float64 {
	d := float64(op.DTypeBytes)
	w := float64(op.In) * float64(op.Out) * d
	x := float64(op.L) * float64(op.In) * d
	y := float64(op.L) * float64(op.Out) * d
	return w + x + y
}

// WeightBytes returns the weight footprint alone.
func (op Linear) WeightBytes() int64 {
	return int64(op.In) * int64(op.Out) * int64(op.DTypeBytes)
}

// ArithmeticIntensity returns FLOPs/Bytes.
func (op Linear) ArithmeticIntensity() float64 {
	return op.FLOPs() / op.Bytes()
}

// IsGEMV reports whether the op degenerates to a matrix-vector product.
func (op Linear) IsGEMV() bool { return op.L == 1 }

// Seconds returns the roofline execution time of the op on the platform:
// FLOPs divided by min(peak FLOPS, AI × effective bandwidth). This mirrors
// the paper's observation that GEMM latency grows sublinearly with prefill
// length until the arithmetic intensity reaches the ridge point.
func (p Platform) Seconds(op Linear) float64 {
	ai := op.ArithmeticIntensity()
	attainable := ai * p.EffectiveBWGBs() * 1e9
	peak := p.PeakTFLOPS * 1e12
	if attainable > peak {
		attainable = peak
	}
	return op.FLOPs() / attainable
}

// MemorySeconds returns the memory-traffic component alone.
func (p Platform) MemorySeconds(op Linear) float64 {
	return op.Bytes() / (p.EffectiveBWGBs() * 1e9)
}

// MemoryBoundFraction returns how much of the op's roofline time is
// memory-bound: 1 when below the ridge point, decreasing above it.
func (p Platform) MemoryBoundFraction(op Linear) float64 {
	f := p.MemorySeconds(op) / p.Seconds(op)
	if f > 1 {
		return 1
	}
	return f
}

// SecondsOnPIMLayout returns the op time when the weights stay in the
// PIM-optimized layout, applying the platform's conservative worst-case
// slowdown (paper Table III / Sec. VI-A: "we conservatively choose the
// worst-case slowdown for each device ... and scale its GEMM latency").
func (p Platform) SecondsOnPIMLayout(op Linear) float64 {
	return p.Seconds(op) * (1 + p.GEMMSlowdown)
}

// Utilization reports the compute and memory-bandwidth utilization of an
// op, as in paper Fig. 2(b).
type Utilization struct {
	Compute float64
	Memory  float64
}

// UtilizationOf evaluates utilization at the op's roofline runtime.
func (p Platform) UtilizationOf(op Linear) Utilization {
	t := p.Seconds(op)
	return Utilization{
		Compute: op.FLOPs() / (t * p.PeakTFLOPS * 1e12),
		Memory:  op.Bytes() / (t * p.PeakBWGBs() * 1e9),
	}
}
