// Package mc implements FACIL's augmented memory-controller frontend
// (paper Fig. 12): the physical-address-to-DRAM-address translation stage,
// extended with a small mux network that selects among the conventional
// mapping and the PIM-optimized mappings according to the MapID delivered
// with each request from the TLB/page-table walk.
package mc

import (
	"errors"
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/obs"
)

// ErrBadMapID is the sentinel wrapped by Access (and ValidateMapID)
// when a request carries a MapID outside the mapping table — e.g. a
// corrupted PTE bit (paper Fig. 11 stores the ID in repurposed PTE
// bits, so a single flipped bit yields a plausible-looking but wrong
// selector). The frontend refuses to silently translate garbage;
// callers either repair the PTE (page-table re-walk) or opt into the
// accounted degrade-to-conventional mode (SetDegradeOnBadMapID).
var ErrBadMapID = errors.New("mc: bad MapID")

// MuxesPerRequest is the number of N-to-1 multiplexer groups the frontend
// needs: one each for the channel, rank, bank, column and row fields.
const MuxesPerRequest = 5

// HardwareCost summarizes the combinational logic FACIL adds to the
// frontend — the paper's argument that the change is a local, memory-free
// augmentation.
type HardwareCost struct {
	// Mappings is N, the mux fan-in (conventional + PIM mappings).
	Mappings int
	// MuxGroups is the number of mux groups (5).
	MuxGroups int
	// MapIDBits is the width of the select signal.
	MapIDBits int
}

// Frontend translates {physical address, MapID} pairs into DRAM addresses
// and drives a DRAM controller backend.
type Frontend struct {
	spec  dram.Spec
	table *mapping.Table
	ctl   *dram.Controller

	// perMapID counts requests per mapping for diagnostics.
	perMapID map[mapping.MapID]int64
	seq      int64

	// degrade selects the bad-MapID policy: reject (false, default) or
	// translate under the conventional mapping with accounting (true).
	degrade bool
	// badMapIDs counts requests that failed MapID validation.
	badMapIDs int64
}

// NewFrontend wires a mapping table to a fresh DRAM controller. The
// table's geometry must match the spec.
func NewFrontend(spec dram.Spec, table *mapping.Table) (*Frontend, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if table.Memory().Geometry != spec.Geometry {
		return nil, fmt.Errorf("mc: mapping table geometry does not match DRAM spec %q", spec.Name)
	}
	ctl, err := dram.NewController(spec)
	if err != nil {
		return nil, err
	}
	return &Frontend{
		spec:     spec,
		table:    table,
		ctl:      ctl,
		perMapID: make(map[mapping.MapID]int64),
	}, nil
}

// Spec returns the DRAM spec.
func (f *Frontend) Spec() dram.Spec { return f.spec }

// Controller exposes the backend for draining and statistics.
func (f *Frontend) Controller() *dram.Controller { return f.ctl }

// Table returns the mapping table (the mux inputs).
func (f *Frontend) Table() *mapping.Table { return f.table }

// SetTracer attaches an observability tracer to the backend controller:
// every DRAM channel gets a counter track (row hits/misses, reads,
// writes, activations, refresh markers) at pids from pidBase. See
// dram.Controller.SetTracer.
func (f *Frontend) SetTracer(tr *obs.Tracer, pidBase int64) {
	f.ctl.SetTracer(tr, pidBase)
}

// Cost reports the added hardware.
func (f *Frontend) Cost() HardwareCost {
	n := f.table.Size()
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	return HardwareCost{Mappings: n, MuxGroups: MuxesPerRequest, MapIDBits: bits}
}

// ValidateMapID checks that id selects a mux input that actually
// exists: the conventional mapping or a PIM mapping inside the table's
// range. Anything else wraps ErrBadMapID.
func (f *Frontend) ValidateMapID(id mapping.MapID) error {
	if id == mapping.ConventionalMapID {
		return nil
	}
	if min, max := f.table.Range(); id >= min && id <= max {
		return nil
	}
	min, max := f.table.Range()
	return fmt.Errorf("%w: MapID %d outside {conventional, [%d, %d]}", ErrBadMapID, id, min, max)
}

// SetDegradeOnBadMapID selects the frontend's bad-MapID policy: when
// enabled, a request failing ValidateMapID is served under the
// conventional mapping (losing its PIM locality but staying correct at
// the byte level) and counted in BadMapIDs and in the owning channel's
// stats; when disabled (the default), Access rejects it with
// ErrBadMapID.
func (f *Frontend) SetDegradeOnBadMapID(on bool) { f.degrade = on }

// BadMapIDs returns the number of requests that failed MapID validation
// (rejected or degraded, depending on the policy).
func (f *Frontend) BadMapIDs() int64 { return f.badMapIDs }

// Translate performs the mux selection: the MapID picks the mapping, which
// splits the physical address into DRAM coordinates. Out-of-range IDs
// fall back to the conventional mapping (the table's mux default);
// Access is the validating entry point.
func (f *Frontend) Translate(phys uint64, id mapping.MapID) dram.Addr {
	a, _ := f.table.Lookup(id).Translate(phys)
	return a
}

// Access enqueues one burst access. The caller provides the physical
// address and MapID exactly as the paper's page-table entry delivers
// them. The MapID is validated on every request: an ID outside the
// mapping table returns ErrBadMapID (wrapped), or — with
// SetDegradeOnBadMapID(true) — is served under the conventional mapping
// and accounted in BadMapIDs plus the channel's stats. The returned
// request carries the completion cycle after Drain.
func (f *Frontend) Access(phys uint64, id mapping.MapID, write bool, arrival int64) (*dram.Request, error) {
	if phys >= uint64(f.spec.Geometry.CapacityBytes()) {
		return nil, fmt.Errorf("mc: physical address %#x outside capacity", phys)
	}
	bad := f.ValidateMapID(id)
	if bad != nil {
		f.badMapIDs++
		if !f.degrade {
			return nil, bad
		}
		id = mapping.ConventionalMapID
	}
	f.seq++
	req := &dram.Request{
		Addr:    f.Translate(phys, id),
		Write:   write,
		Arrival: arrival,
		ID:      f.seq,
	}
	if err := f.ctl.Enqueue(req); err != nil {
		return nil, err
	}
	if bad != nil {
		f.ctl.Channel(req.Addr.Channel).NoteBadMapID()
	}
	f.perMapID[id]++
	return req, nil
}

// Drain completes all outstanding requests and returns the last cycle.
func (f *Frontend) Drain() int64 { return f.ctl.Drain() }

// RequestsByMapID returns a copy of the per-mapping request counters.
func (f *Frontend) RequestsByMapID() map[mapping.MapID]int64 {
	out := make(map[mapping.MapID]int64, len(f.perMapID))
	for k, v := range f.perMapID {
		out[k] = v
	}
	return out
}
