// Package mc implements FACIL's augmented memory-controller frontend
// (paper Fig. 12): the physical-address-to-DRAM-address translation stage,
// extended with a small mux network that selects among the conventional
// mapping and the PIM-optimized mappings according to the MapID delivered
// with each request from the TLB/page-table walk.
package mc

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/obs"
)

// MuxesPerRequest is the number of N-to-1 multiplexer groups the frontend
// needs: one each for the channel, rank, bank, column and row fields.
const MuxesPerRequest = 5

// HardwareCost summarizes the combinational logic FACIL adds to the
// frontend — the paper's argument that the change is a local, memory-free
// augmentation.
type HardwareCost struct {
	// Mappings is N, the mux fan-in (conventional + PIM mappings).
	Mappings int
	// MuxGroups is the number of mux groups (5).
	MuxGroups int
	// MapIDBits is the width of the select signal.
	MapIDBits int
}

// Frontend translates {physical address, MapID} pairs into DRAM addresses
// and drives a DRAM controller backend.
type Frontend struct {
	spec  dram.Spec
	table *mapping.Table
	ctl   *dram.Controller

	// perMapID counts requests per mapping for diagnostics.
	perMapID map[mapping.MapID]int64
	seq      int64
}

// NewFrontend wires a mapping table to a fresh DRAM controller. The
// table's geometry must match the spec.
func NewFrontend(spec dram.Spec, table *mapping.Table) (*Frontend, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if table.Memory().Geometry != spec.Geometry {
		return nil, fmt.Errorf("mc: mapping table geometry does not match DRAM spec %q", spec.Name)
	}
	ctl, err := dram.NewController(spec)
	if err != nil {
		return nil, err
	}
	return &Frontend{
		spec:     spec,
		table:    table,
		ctl:      ctl,
		perMapID: make(map[mapping.MapID]int64),
	}, nil
}

// Spec returns the DRAM spec.
func (f *Frontend) Spec() dram.Spec { return f.spec }

// Controller exposes the backend for draining and statistics.
func (f *Frontend) Controller() *dram.Controller { return f.ctl }

// Table returns the mapping table (the mux inputs).
func (f *Frontend) Table() *mapping.Table { return f.table }

// SetTracer attaches an observability tracer to the backend controller:
// every DRAM channel gets a counter track (row hits/misses, reads,
// writes, activations, refresh markers) at pids from pidBase. See
// dram.Controller.SetTracer.
func (f *Frontend) SetTracer(tr *obs.Tracer, pidBase int64) {
	f.ctl.SetTracer(tr, pidBase)
}

// Cost reports the added hardware.
func (f *Frontend) Cost() HardwareCost {
	n := f.table.Size()
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	return HardwareCost{Mappings: n, MuxGroups: MuxesPerRequest, MapIDBits: bits}
}

// Translate performs the mux selection: the MapID picks the mapping, which
// splits the physical address into DRAM coordinates.
func (f *Frontend) Translate(phys uint64, id mapping.MapID) dram.Addr {
	a, _ := f.table.Lookup(id).Translate(phys)
	return a
}

// Access enqueues one burst access. The caller provides the physical
// address and MapID exactly as the paper's page-table entry delivers them.
// The returned request carries the completion cycle after Drain.
func (f *Frontend) Access(phys uint64, id mapping.MapID, write bool, arrival int64) (*dram.Request, error) {
	if phys >= uint64(f.spec.Geometry.CapacityBytes()) {
		return nil, fmt.Errorf("mc: physical address %#x outside capacity", phys)
	}
	f.seq++
	req := &dram.Request{
		Addr:    f.Translate(phys, id),
		Write:   write,
		Arrival: arrival,
		ID:      f.seq,
	}
	if err := f.ctl.Enqueue(req); err != nil {
		return nil, err
	}
	f.perMapID[id]++
	return req, nil
}

// Drain completes all outstanding requests and returns the last cycle.
func (f *Frontend) Drain() int64 { return f.ctl.Drain() }

// RequestsByMapID returns a copy of the per-mapping request counters.
func (f *Frontend) RequestsByMapID() map[mapping.MapID]int64 {
	out := make(map[mapping.MapID]int64, len(f.perMapID))
	for k, v := range f.perMapID {
		out[k] = v
	}
	return out
}
