package mc

import (
	"errors"
	"testing"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/vm"
)

func testSetup(t *testing.T) (dram.Spec, *mapping.Table) {
	t.Helper()
	spec, err := dram.LPDDR5("mc test", 32, 6400, 2, 1<<30) // 2 channels, 1 GiB
	if err != nil {
		t.Fatal(err)
	}
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mc, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	return spec, tab
}

func TestFrontendTranslateMux(t *testing.T) {
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	// The same physical address translates differently under the
	// conventional and a PIM mapping — the essence of the mux.
	pa := uint64(0x123460)
	conv := f.Translate(pa, mapping.ConventionalMapID)
	min, _ := tab.Range()
	pim := f.Translate(pa, min)
	if conv == pim {
		t.Errorf("conventional and PIM translation agree at %#x: %v", pa, conv)
	}
	// Both must match the underlying mappings exactly.
	wantConv, _ := tab.Conventional().Translate(pa)
	if conv != wantConv {
		t.Errorf("conventional mux output %v, want %v", conv, wantConv)
	}
	wantPIM, _ := tab.Lookup(min).Translate(pa)
	if pim != wantPIM {
		t.Errorf("PIM mux output %v, want %v", pim, wantPIM)
	}
}

func TestFrontendAccessAndDrain(t *testing.T) {
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := tab.Range()
	var reqs []*dram.Request
	for i := 0; i < 256; i++ {
		id := mapping.ConventionalMapID
		if i%2 == 1 {
			id = min
		}
		r, err := f.Access(uint64(i*32), id, i%4 == 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	done := f.Drain()
	if done <= 0 {
		t.Fatal("no completion cycle")
	}
	for i, r := range reqs {
		if r.Done <= 0 {
			t.Errorf("request %d never completed", i)
		}
	}
	counts := f.RequestsByMapID()
	if counts[mapping.ConventionalMapID] != 128 || counts[min] != 128 {
		t.Errorf("per-MapID counts = %v", counts)
	}
	s := f.Controller().Stats()
	if s.Reads+s.Writes != 256 {
		t.Errorf("controller saw %d requests, want 256", s.Reads+s.Writes)
	}
}

func TestFrontendRejectsOutOfRange(t *testing.T) {
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Access(uint64(spec.Geometry.CapacityBytes()), 0, false, 0); err == nil {
		t.Error("out-of-capacity physical address accepted")
	}
}

func TestFrontendGeometryMismatch(t *testing.T) {
	spec, _ := testSetup(t)
	other, err := dram.LPDDR5("other", 64, 6400, 2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mapping.MemoryConfig{Geometry: other.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mcfg, mapping.AiMChunk(other.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrontend(spec, tab); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestHardwareCost(t *testing.T) {
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cost()
	if c.MuxGroups != 5 {
		t.Errorf("MuxGroups = %d, want 5 (channel/rank/bank/column/row)", c.MuxGroups)
	}
	if c.Mappings != tab.Size() {
		t.Errorf("Mappings = %d, want %d", c.Mappings, tab.Size())
	}
	// Paper Sec. V-A: four PTE bits suffice even in the worst case.
	if c.MapIDBits > 4 {
		t.Errorf("MapIDBits = %d, want <= 4", c.MapIDBits)
	}
}

func TestFrontendBadMapIDRejected(t *testing.T) {
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, max := tab.Range()
	bad := max + 1
	if err := f.ValidateMapID(bad); !errors.Is(err, ErrBadMapID) {
		t.Fatalf("ValidateMapID(%d) = %v, want ErrBadMapID", bad, err)
	}
	if _, err := f.Access(0x1000, bad, false, 0); !errors.Is(err, ErrBadMapID) {
		t.Fatalf("Access with MapID %d = %v, want ErrBadMapID", bad, err)
	}
	if n := f.BadMapIDs(); n != 1 {
		t.Fatalf("BadMapIDs = %d after one rejection, want 1", n)
	}
	// Valid IDs pass: the conventional mapping and the full table range.
	min, max := tab.Range()
	for id := min; id <= max; id++ {
		if err := f.ValidateMapID(id); err != nil {
			t.Fatalf("in-range MapID %d rejected: %v", id, err)
		}
	}
	if err := f.ValidateMapID(mapping.ConventionalMapID); err != nil {
		t.Fatalf("conventional MapID rejected: %v", err)
	}
}

func TestFrontendDegradeOnBadMapID(t *testing.T) {
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	f.SetDegradeOnBadMapID(true)
	_, max := tab.Range()
	pa := uint64(0x123460)
	req, err := f.Access(pa, max+3, false, 0)
	if err != nil {
		t.Fatalf("degrade mode rejected the request: %v", err)
	}
	// The degraded request is served under the conventional mapping.
	if want := f.Translate(pa, mapping.ConventionalMapID); req.Addr != want {
		t.Fatalf("degraded request at %v, want conventional %v", req.Addr, want)
	}
	if _, err := f.Access(pa+32, mapping.ConventionalMapID, false, 0); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if n := f.BadMapIDs(); n != 1 {
		t.Fatalf("BadMapIDs = %d, want 1", n)
	}
	if got := f.Controller().Stats().BadMapIDs; got != 1 {
		t.Fatalf("channel stats BadMapIDs = %d, want 1", got)
	}
	if f.RequestsByMapID()[mapping.ConventionalMapID] != 2 {
		t.Fatalf("degraded request not accounted to the conventional mapping: %v", f.RequestsByMapID())
	}
}

func TestCorruptPTECaughtAtFrontend(t *testing.T) {
	// End to end: flip one MapID bit in a huge-page PTE (the fault
	// model's single-event upset) and verify the frontend detects it
	// whenever the result leaves the mapping table.
	spec, tab := testSetup(t)
	f, err := NewFrontend(spec, tab)
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	caught := 0
	for id := min; id <= max; id++ {
		pte, err := vm.NewHugePTE(0, id, vm.PTEWrite)
		if err != nil {
			t.Fatal(err)
		}
		for bit := 0; bit < 4; bit++ {
			flipped := pte.WithFlippedMapIDBit(bit).MapID()
			verr := f.ValidateMapID(flipped)
			inTable := flipped == mapping.ConventionalMapID || (flipped >= min && flipped <= max)
			if inTable != (verr == nil) {
				t.Fatalf("MapID %d->%d: ValidateMapID = %v, in-table = %v", id, flipped, verr, inTable)
			}
			if verr != nil {
				caught++
			}
		}
	}
	if caught == 0 {
		t.Fatal("no corrupted MapID left the table range; test exercises nothing")
	}
}
