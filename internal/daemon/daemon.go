// Package daemon is the long-running serving front end over the
// internal/run engine: facild embeds a Server, clients POST scenarios
// as JSON (the same schema facilsim records with -record), a single
// runner goroutine advances them in submission order in virtual time,
// and live observability rides alongside — lock-free /metrics
// snapshots, a Chrome-trace ring at /trace, the experiment catalog at
// /experiments. One Server owns one Engine, so platform Systems and
// their memoization caches persist across runs.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/obs"
	"facil/internal/run"
	"facil/internal/serve"
)

// State is a run's lifecycle stage.
type State string

// Run lifecycle: queued → running → done | failed; queued runs that a
// reload or drain displaces become canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// ErrDraining rejects submissions once a drain has begun.
var ErrDraining = errors.New("daemon: draining, not accepting runs")

// Options configures a Server.
type Options struct {
	// Parallelism bounds each run's sweep worker pool (0 = GOMAXPROCS).
	Parallelism int
	// TraceBuf is the trace ring capacity in events (0 =
	// obs.DefaultCapacity).
	TraceBuf int
	// OutDir, when non-empty, mirrors each run's result files plus
	// manifest.json into OutDir/<run-id>/.
	OutDir string
	// DrainOutage, when positive, is a simulated PIM-lane outage (in
	// virtual seconds) injected into the in-flight run's sims when a
	// drain begins — the shutdown path doubles as a fault drill, so the
	// degradation/migration machinery is exercised on every graceful
	// stop. Zero disables the drill.
	DrainOutage float64
}

// Run is one submitted scenario's lifecycle record. The JSON form is
// what GET /runs returns; the report rides separately under
// /runs/{id}/report.
type Run struct {
	// ID is the server-assigned identifier ("r1", "r2", ...).
	ID string `json:"id"`
	// State is the current lifecycle stage.
	State State `json:"state"`
	// Scenario echoes the submitted scenario.
	Scenario run.Scenario `json:"scenario"`
	// Error carries the failure reason for failed runs.
	Error string `json:"error,omitempty"`
	// Submitted, Started and Finished stamp the lifecycle transitions.
	Submitted time.Time `json:"submitted"`
	// Started is set when the runner picks the run up.
	Started *time.Time `json:"started,omitempty"`
	// Finished is set when the run reaches a terminal state.
	Finished *time.Time `json:"finished,omitempty"`

	report *exp.Report
}

// Server queues scenarios and runs them one at a time on a background
// goroutine. All exported methods are safe for concurrent use; the
// hot observability path (Metrics) reads only atomics and three small
// counters under the mutex.
type Server struct {
	eng         *run.Engine
	tracer      *obs.Tracer
	outDir      string
	drainOutage float64
	start       time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	runs     map[string]*Run
	order    []string
	queue    []string
	seq      int
	active   string
	draining bool
	stopped  bool
	done     chan struct{}
}

// New builds a server, its engine and its trace ring, and starts the
// runner goroutine. Call Close to stop it.
func New(opts Options) *Server {
	buf := opts.TraceBuf
	if buf <= 0 {
		buf = obs.DefaultCapacity
	}
	tracer := obs.New(buf)
	s := &Server{
		eng: run.New(run.Options{
			Config:      engine.DefaultConfig(),
			Tool:        "facild",
			Parallelism: opts.Parallelism,
			Tracer:      tracer,
		}),
		tracer:      tracer,
		outDir:      opts.OutDir,
		drainOutage: opts.DrainOutage,
		start:       time.Now(),
		runs:        map[string]*Run{},
		done:        make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.runner()
	return s
}

// Submit validates and enqueues a scenario, returning the queued run's
// snapshot. It fails with ErrDraining during a drain and with the
// validation error for a bad scenario.
func (s *Server) Submit(sc run.Scenario) (Run, error) {
	if err := sc.Validate(); err != nil {
		return Run{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return Run{}, ErrDraining
	}
	r := s.enqueueLocked(sc)
	return *r, nil
}

// Reload atomically replaces the pending queue: every queued (not yet
// started) run is canceled and the new scenario becomes the next run.
// The in-flight run, if any, completes undisturbed.
func (s *Server) Reload(sc run.Scenario) (Run, error) {
	if err := sc.Validate(); err != nil {
		return Run{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return Run{}, ErrDraining
	}
	s.cancelQueuedLocked()
	r := s.enqueueLocked(sc)
	return *r, nil
}

// enqueueLocked records and queues a new run. Callers hold s.mu.
func (s *Server) enqueueLocked(sc run.Scenario) *Run {
	s.seq++
	r := &Run{
		ID:        fmt.Sprintf("r%d", s.seq),
		State:     StateQueued,
		Scenario:  sc,
		Submitted: time.Now(),
	}
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
	s.queue = append(s.queue, r.ID)
	s.cond.Broadcast()
	return r
}

// cancelQueuedLocked moves every queued run to canceled. Callers hold
// s.mu.
func (s *Server) cancelQueuedLocked() {
	now := time.Now()
	for _, id := range s.queue {
		r := s.runs[id]
		r.State = StateCanceled
		r.Finished = &now
	}
	s.queue = nil
}

// Get returns a run's snapshot by ID.
func (s *Server) Get(id string) (Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return Run{}, false
	}
	return *r, true
}

// Runs lists every run in submission order.
func (s *Server) Runs() []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Run, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.runs[id])
	}
	return out
}

// Report returns a finished run's report. The second result reports
// whether the run exists; the third whether its report is ready (done,
// or failed with partial results).
func (s *Server) Report(id string) (exp.Report, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return exp.Report{}, false, false
	}
	if r.report == nil {
		return exp.Report{}, true, false
	}
	return *r.report, true, true
}

// Drain stops admission (POST /runs and /reload return 503), cancels
// every queued run, and blocks until the in-flight run — if any —
// completes. Its manifest and result files are flushed by the engine
// before completion, so returning means everything durable is on disk.
// Metrics and report endpoints keep serving during and after a drain.
//
// With Options.DrainOutage set and a run in flight, the drain first
// injects the configured lane outage into the run's live sims (the
// fault drill: the run completes through its degradation policy rather
// than on a healthy fleet). Drain is idempotent; the outage fires only
// on the first call that observes an active run.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drainOutage > 0 && !s.draining && s.active != "" {
		serve.TriggerDrainOutage(s.drainOutage)
	}
	s.draining = true
	s.cancelQueuedLocked()
	for s.active != "" {
		s.cond.Wait()
	}
}

// Close drains the server and stops the runner goroutine.
func (s *Server) Close() {
	s.Drain()
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.done
}

// runner is the background loop: it pops runs in submission order and
// executes them against the shared engine, advancing the simulator in
// virtual time while /metrics observes the serve-layer counters live.
func (s *Server) runner() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		r := s.runs[id]
		now := time.Now()
		r.State = StateRunning
		r.Started = &now
		s.active = id
		sc := r.Scenario
		s.mu.Unlock()

		var opts run.ExecOpts
		if s.outDir != "" {
			opts.OutDir = filepath.Join(s.outDir, id)
			opts.Format = "json"
		}
		// Drain lets the in-flight run complete rather than cancelling
		// it, so the run's own context is never revoked.
		rep, err := s.eng.Execute(context.Background(), sc, opts)

		s.mu.Lock()
		fin := time.Now()
		r.Finished = &fin
		switch {
		case err != nil:
			r.State = StateFailed
			r.Error = err.Error()
		case len(rep.Manifest.Failed) > 0:
			r.State = StateFailed
			r.Error = fmt.Sprintf("%d of %d experiments failed", len(rep.Manifest.Failed), len(rep.Manifest.Experiments))
			r.report = &rep
		default:
			r.State = StateDone
			r.report = &rep
		}
		s.active = ""
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
