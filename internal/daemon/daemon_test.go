package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/obs"
	"facil/internal/run"
)

// testServer starts a daemon plus its HTTP front end; both are torn
// down with the test.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postScenario submits a scenario body and decodes the run record.
func postScenario(t *testing.T, url, path, body string) (Run, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec Run
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
	}
	return rec, resp
}

// waitDone polls a run until it reaches a terminal state.
func waitDone(t *testing.T, s *Server, id string) Run {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		rec, ok := s.Get(id)
		if !ok {
			t.Fatalf("run %s disappeared", id)
		}
		switch rec.State {
		case StateDone, StateFailed, StateCanceled:
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return Run{}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s, ts := testServer(t, Options{})
	rec, resp := postScenario(t, ts.URL, "/runs", `{"experiments": ["fig3"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if rec.State != StateQueued || rec.ID == "" {
		t.Fatalf("submitted run = %+v", rec)
	}
	fin := waitDone(t, s, rec.ID)
	if fin.State != StateDone {
		t.Fatalf("run finished %s (%s)", fin.State, fin.Error)
	}
	resp2, err := http.Get(ts.URL + "/runs/" + rec.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rep exp.Report
	if err := json.NewDecoder(resp2.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Manifest.Tool != "facild" {
		t.Errorf("report tool = %q", rep.Manifest.Tool)
	}
	if len(rep.Results) != 1 || rep.Results[0].ID != "fig3" || rep.Results[0].Error != "" {
		t.Errorf("report results = %+v", rep.Results)
	}
}

func TestSubmitRejectsBadScenarios(t *testing.T) {
	_, ts := testServer(t, Options{})
	for _, body := range []string{
		`{"experiments": ["fig99"]}`, // unknown experiment
		`{"quries": 5}`,              // unknown field
		`{"rates": "potato"}`,        // unparsable sweep
	} {
		if _, resp := postScenario(t, ts.URL, "/runs", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestExperimentsEndpointMatchesCatalog(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []exp.Info
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, exp.Catalog()) {
		t.Errorf("/experiments = %+v, want exp.Catalog()", got)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b obs.Build
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.GoVersion == "" || b.OS == "" {
		t.Errorf("/version = %+v", b)
	}
}

// TestMetricsAdvanceDuringRun pins the live-observability acceptance:
// polling /metrics while a run is in flight yields at least two
// distinct serve-layer event counts, i.e. the metrics really do move
// with the simulator rather than only updating at run boundaries.
func TestMetricsAdvanceDuringRun(t *testing.T) {
	s, ts := testServer(t, Options{})
	rec, _ := postScenario(t, ts.URL, "/runs",
		`{"experiments": ["serving2"], "queries": 2000, "rates": "1,2", "replicas": "1,2"}`)
	distinct := map[int64]bool{}
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		state, _ := s.Get(rec.ID)
		if state.State == StateRunning {
			distinct[m.Serve.Events] = true
		}
		if state.State == StateDone || state.State == StateFailed {
			break
		}
	}
	fin := waitDone(t, s, rec.ID)
	if fin.State != StateDone {
		t.Fatalf("run finished %s (%s)", fin.State, fin.Error)
	}
	if len(distinct) < 2 {
		t.Errorf("saw %d distinct in-flight event counts, want >= 2", len(distinct))
	}
}

func TestTraceEndpointStreamsRing(t *testing.T) {
	s, ts := testServer(t, Options{})
	rec, _ := postScenario(t, ts.URL, "/runs", `{"experiments": ["serving2"], "queries": 100}`)
	if fin := waitDone(t, s, rec.ID); fin.State != StateDone {
		t.Fatalf("run finished %s (%s)", fin.State, fin.Error)
	}
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace ring empty after a trace-aware run")
	}
}

// TestReloadSwapsPendingQueue pins hot reload: queued runs are
// canceled, the replacement becomes the next run, and the in-flight run
// is left to complete.
func TestReloadSwapsPendingQueue(t *testing.T) {
	s, ts := testServer(t, Options{})
	// A run long enough that the next submissions stay queued under it.
	first, _ := postScenario(t, ts.URL, "/runs",
		`{"experiments": ["serving2"], "queries": 2000, "rates": "1,2", "replicas": "1,2"}`)
	second, _ := postScenario(t, ts.URL, "/runs", `{"experiments": ["fig3"]}`)
	swapped, resp := postScenario(t, ts.URL, "/reload", `{"experiments": ["tab2"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if fin := waitDone(t, s, second.ID); fin.State != StateCanceled {
		t.Errorf("queued run finished %s, want canceled", fin.State)
	}
	if fin := waitDone(t, s, first.ID); fin.State != StateDone {
		t.Errorf("in-flight run finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin := waitDone(t, s, swapped.ID); fin.State != StateDone {
		t.Errorf("replacement run finished %s (%s), want done", fin.State, fin.Error)
	}
}

// TestDrainClosesAdmission pins the graceful-drain contract: after
// Drain returns, submissions get 503 but observability stays up.
func TestDrainClosesAdmission(t *testing.T) {
	s, ts := testServer(t, Options{})
	rec, _ := postScenario(t, ts.URL, "/runs", `{"experiments": ["tab2"]}`)
	s.Drain()
	if fin, ok := s.Get(rec.ID); !ok || (fin.State != StateDone && fin.State != StateCanceled) {
		t.Errorf("after drain, run state = %+v", fin)
	}
	if _, resp := postScenario(t, ts.URL, "/runs", `{"experiments": ["tab2"]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit status %d, want 503", resp.StatusCode)
	}
	if _, resp := postScenario(t, ts.URL, "/reload", `{"experiments": ["tab2"]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain reload status %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Draining {
		t.Error("metrics do not report draining")
	}
}

func TestPimallocEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/pimalloc?rows=1024&cols=1024")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep PimallocReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.MapID == 0 || rep.HugePages == 0 || len(rep.Corners) != 4 {
		t.Errorf("pimalloc report = %+v", rep)
	}
	for _, c := range rep.Corners {
		if c.PIM == "" || c.Conventional == "" {
			t.Errorf("unresolved corner %+v", c)
		}
	}
	if resp2, err := http.Get(ts.URL + "/pimalloc?rows=-3"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusBadRequest {
			t.Errorf("bad rows status %d", resp2.StatusCode)
		}
	}
}

// TestDaemonReportMatchesBatch pins cross-front-end determinism: one
// scenario produces a byte-identical canonical report whether the
// daemon ran it (tracer attached, runner goroutine) or a batch engine
// did (no tracer, caller's goroutine) — observability must not perturb
// simulated results.
func TestDaemonReportMatchesBatch(t *testing.T) {
	sc := run.DefaultScenario()
	sc.Experiments = []string{"fig3", "serving2"}
	sc.Queries = 200
	sc.Rates = "1,2"
	sc.Replicas = "1,2"

	s, _ := testServer(t, Options{})
	rec, err := s.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitDone(t, s, rec.ID); fin.State != StateDone {
		t.Fatalf("daemon run finished %s (%s)", fin.State, fin.Error)
	}
	daemonRep, _, ready := s.Report(rec.ID)
	if !ready {
		t.Fatal("report not ready after done")
	}

	batch := run.New(run.Options{Config: engine.DefaultConfig(), Tool: "facilsim"})
	batchRep, err := batch.Execute(context.Background(), sc, run.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}

	var dbuf, bbuf bytes.Buffer
	if err := run.Canonical(daemonRep).WriteJSON(&dbuf); err != nil {
		t.Fatal(err)
	}
	if err := run.Canonical(batchRep).WriteJSON(&bbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dbuf.Bytes(), bbuf.Bytes()) {
		t.Errorf("canonical reports differ between daemon and batch:\ndaemon: %.400s\nbatch:  %.400s",
			dbuf.String(), bbuf.String())
	}
}
