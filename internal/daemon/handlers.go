package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"facil/internal/cluster"
	"facil/internal/dram"
	"facil/internal/exp"
	"facil/internal/obs"
	"facil/internal/run"
	"facil/internal/serve"
)

// Metrics is the GET /metrics document: a point-in-time snapshot of
// the process-global observability counters (serve-layer live stats,
// DRAM totals, trace-ring occupancy) plus the server's run accounting.
// Every counter is read from atomics, so polling it during a run is
// wait-free with respect to the simulator's hot path.
type Metrics struct {
	// UptimeSeconds is the server's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Draining reports whether a drain is in progress (admission closed).
	Draining bool `json:"draining"`
	// Runs counts runs by lifecycle state.
	Runs RunCounts `json:"runs"`
	// Serve is the serving simulator's live counter snapshot.
	Serve serve.LiveSnapshot `json:"serve"`
	// Cluster is the fleet router's live counter snapshot.
	Cluster cluster.LiveSnapshot `json:"cluster"`
	// DRAM aggregates every DRAM stream replay in the process.
	DRAM DRAMTotals `json:"dram"`
	// Trace reports the trace ring's occupancy.
	Trace TraceStats `json:"trace"`
}

// RunCounts buckets the server's runs by state.
type RunCounts struct {
	// Queued counts runs waiting for the runner.
	Queued int `json:"queued"`
	// Running is 1 while a run is in flight.
	Running int `json:"running"`
	// Done counts fully successful runs.
	Done int `json:"done"`
	// Failed counts runs with at least one failed experiment.
	Failed int `json:"failed"`
	// Canceled counts queued runs displaced by a reload or drain.
	Canceled int `json:"canceled"`
}

// DRAMTotals mirrors dram.Global for the metrics document.
type DRAMTotals struct {
	// Streams counts finished stream replays.
	Streams int64 `json:"streams"`
	// Requests counts simulated read+write requests.
	Requests int64 `json:"requests"`
	// Cycles counts simulated burst-clock cycles.
	Cycles int64 `json:"cycles"`
}

// TraceStats reports the trace ring's occupancy.
type TraceStats struct {
	// Events is the ring's current event count.
	Events int `json:"events"`
	// Dropped counts events evicted on ring overflow.
	Dropped uint64 `json:"dropped"`
}

// Metrics snapshots the live counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining,
	}
	for _, r := range s.runs {
		switch r.State {
		case StateQueued:
			m.Runs.Queued++
		case StateRunning:
			m.Runs.Running++
		case StateDone:
			m.Runs.Done++
		case StateFailed:
			m.Runs.Failed++
		case StateCanceled:
			m.Runs.Canceled++
		}
	}
	s.mu.Unlock()
	m.Serve = serve.Live.Snapshot()
	m.Cluster = cluster.Live.Snapshot()
	m.DRAM = DRAMTotals{
		Streams:  dram.Global.Streams(),
		Requests: dram.Global.Requests(),
		Cycles:   dram.Global.Cycles(),
	}
	m.Trace = TraceStats{Events: s.tracer.Len(), Dropped: s.tracer.Dropped()}
	return m
}

// Handler returns the daemon's HTTP API:
//
//	POST /runs              submit a scenario (run.Scenario JSON), 202 + run
//	GET  /runs              list runs in submission order
//	GET  /runs/{id}         one run's lifecycle record
//	GET  /runs/{id}/report  a finished run's exp.Report JSON
//	POST /reload            cancel queued runs, enqueue the new scenario
//	GET  /metrics           live counter snapshot (Metrics JSON)
//	GET  /trace             Chrome trace-event timeline from the ring
//	GET  /experiments       the experiment catalog (exp.Catalog JSON)
//	GET  /version           the binary's build identity
//	GET  /pimalloc          a pimalloc walkthrough on the public Arena API
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Runs())
	})
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/report", s.handleReport)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, exp.Catalog())
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.CurrentBuild())
	})
	mux.HandleFunc("GET /pimalloc", s.handlePimalloc)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

// handleSubmit enqueues the POSTed scenario.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc, err := run.Decode(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rec, err := s.Submit(sc)
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// handleReload swaps the pending queue for the POSTed scenario.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	sc, err := run.Decode(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rec, err := s.Reload(sc)
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// submitStatus maps a Submit/Reload error to its HTTP status.
func submitStatus(err error) int {
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// handleRun serves one run's lifecycle record.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("daemon: no such run"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleReport serves a finished run's report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, ok, ready := s.Report(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("daemon: no such run"))
		return
	}
	if !ready {
		httpError(w, http.StatusConflict, errors.New("daemon: run not finished"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rep.WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

// handleTrace streams the trace ring as a Chrome trace-event document.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteJSON(w)
}

// writeJSON writes an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error document.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
