package daemon

import (
	"errors"
	"net/http"
	"strconv"

	"facil"
)

// PimallocReport is the GET /pimalloc document: one allocation
// walkthrough on the public facil.Arena API — the paper's Fig. 7 flow
// of pimalloc'ing a weight matrix and resolving its elements through
// the per-page mapping — rendered as data. It exercises exactly the
// code path the examples/quickstart walkthrough prints, so the daemon
// doubles as a live demo endpoint for the address-mapping layer.
type PimallocReport struct {
	// Platform is the memory system the arena was built on.
	Platform string `json:"platform"`
	// Rows, Cols and DTypeBytes echo the allocated matrix shape.
	Rows int `json:"rows"`
	// Cols is the matrix column count.
	Cols int `json:"cols"`
	// DTypeBytes is the element size.
	DTypeBytes int `json:"dtype_bytes"`
	// VA is the tensor's virtual base address.
	VA uint64 `json:"va"`
	// Bytes is the padded allocation size.
	Bytes int64 `json:"bytes"`
	// HugePages is the number of 2 MB pages backing the tensor.
	HugePages int `json:"huge_pages"`
	// MapID is the PA-to-DA mapping recorded in the PTEs, and
	// MappingLayout its page-offset bit assignment (MSB->LSB).
	MapID int `json:"map_id"`
	// MappingLayout renders the mapping's bit layout.
	MappingLayout string `json:"mapping_layout"`
	// Partitioned reports column-wise partitioning across PUs.
	Partitioned bool `json:"partitioned"`
	// SupportedMappings is the frontend mux fan-in.
	SupportedMappings int `json:"supported_mappings"`
	// Corners resolves the matrix's four corner elements: their DRAM
	// locations under the PIM mapping and under the conventional one.
	Corners []ElementResolution `json:"corners"`
	// TLBHitRate is the arena TLB's hit rate over the walkthrough.
	TLBHitRate float64 `json:"tlb_hit_rate"`
}

// ElementResolution contrasts one element's PIM-mapped DRAM location
// with where the conventional mapping would put it.
type ElementResolution struct {
	// Row and Col locate the element in the matrix.
	Row int `json:"row"`
	// Col is the element's column.
	Col int `json:"col"`
	// PIM is the location under the tensor's recorded mapping.
	PIM string `json:"pim"`
	// Conventional is the location under the SoC's default mapping.
	Conventional string `json:"conventional"`
}

// handlePimalloc runs one pimalloc walkthrough. Query parameters:
// platform (default jetson-agx-orin, see facil.Platforms), rows, cols
// (default 4096 each) and dtype (element bytes, default 2).
func (s *Server) handlePimalloc(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	platform := q.Get("platform")
	if platform == "" {
		platform = facil.Platforms()[0]
	}
	rows, err1 := intParam(q.Get("rows"), 4096)
	cols, err2 := intParam(q.Get("cols"), 4096)
	dtype, err3 := intParam(q.Get("dtype"), 2)
	if err := errors.Join(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := pimallocWalkthrough(platform, rows, cols, dtype)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// intParam parses a positive integer query parameter with a default.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, errors.New("daemon: want a positive integer, got " + strconv.Quote(s))
	}
	return n, nil
}

// pimallocWalkthrough allocates, resolves the corners, and frees.
func pimallocWalkthrough(platform string, rows, cols, dtype int) (PimallocReport, error) {
	arena, err := facil.NewArena(platform)
	if err != nil {
		return PimallocReport{}, err
	}
	tensor, err := arena.Pimalloc(rows, cols, dtype)
	if err != nil {
		return PimallocReport{}, err
	}
	rep := PimallocReport{
		Platform:          platform,
		Rows:              rows,
		Cols:              cols,
		DTypeBytes:        dtype,
		VA:                tensor.VA,
		Bytes:             tensor.Bytes,
		HugePages:         tensor.HugePages,
		MapID:             tensor.MapID,
		MappingLayout:     tensor.MappingLayout,
		Partitioned:       tensor.Partitioned,
		SupportedMappings: arena.SupportedMappings(),
	}
	for _, rc := range [][2]int{{0, 0}, {0, cols - 1}, {rows - 1, 0}, {rows - 1, cols - 1}} {
		pim, err := arena.ElementLocation(tensor, rc[0], rc[1])
		if err != nil {
			return PimallocReport{}, err
		}
		va, err := arena.ElementVA(tensor, rc[0], rc[1])
		if err != nil {
			return PimallocReport{}, err
		}
		conv, err := arena.ConventionalLocation(va)
		if err != nil {
			return PimallocReport{}, err
		}
		rep.Corners = append(rep.Corners, ElementResolution{
			Row: rc[0], Col: rc[1], PIM: pim.String(), Conventional: conv.String(),
		})
	}
	rep.TLBHitRate = arena.TLBHitRate()
	if err := arena.Free(tensor); err != nil {
		return PimallocReport{}, err
	}
	return rep, nil
}
