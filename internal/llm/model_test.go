package llm

import (
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []Model{Llama3_8B(), OPT_6_7B(), Phi1_5(), GPTJ6B()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestParameterCountsPlausible(t *testing.T) {
	cases := []struct {
		m        Model
		min, max float64 // billions
	}{
		{Llama3_8B(), 7.5, 8.5},
		{OPT_6_7B(), 6.0, 7.0},
		{Phi1_5(), 1.2, 1.6},
		{GPTJ6B(), 5.5, 6.5},
	}
	for _, c := range cases {
		b := float64(c.m.Params()) / 1e9
		if b < c.min || b > c.max {
			t.Errorf("%s: %.2fB params, want [%.1f, %.1f]", c.m.Name, b, c.min, c.max)
		}
	}
}

func TestLlama3WeightBytesMatchPaper(t *testing.T) {
	// The paper loads 16.2 GB of Llama3-8B FP16 weights.
	gb := float64(Llama3_8B().TotalWeightBytes()) / 1e9
	if gb < 15.5 || gb > 16.8 {
		t.Errorf("Llama3-8B weights = %.1f GB, want ~16.2", gb)
	}
}

func TestWeightMatricesShapes(t *testing.T) {
	m := Llama3_8B()
	byName := map[string]WeightMatrix{}
	for _, w := range m.WeightMatrices() {
		byName[w.Name] = w
	}
	if w := byName["q_proj"]; w.Out != 4096 || w.In != 4096 || !w.PerLayer {
		t.Errorf("q_proj = %+v", w)
	}
	// GQA: K/V projections are 1024 wide (8 KV heads x 128).
	if w := byName["k_proj"]; w.Out != 1024 || w.In != 4096 {
		t.Errorf("k_proj = %+v", w)
	}
	if w := byName["gate_proj"]; w.Out != 14336 || w.In != 4096 {
		t.Errorf("gate_proj = %+v", w)
	}
	if w := byName["lm_head"]; w.Out != 128256 || w.PerLayer {
		t.Errorf("lm_head = %+v", w)
	}
	if _, ok := byName["fc1"]; ok {
		t.Error("gated model has fc1")
	}
	// Standard-MLP model has fc1/fc2, no gate.
	opt := OPT_6_7B()
	names := map[string]bool{}
	for _, w := range opt.WeightMatrices() {
		names[w.Name] = true
	}
	if !names["fc1"] || !names["fc2"] || names["gate_proj"] {
		t.Errorf("OPT matrices = %v", names)
	}
}

func TestPrefillDecodeOps(t *testing.T) {
	m := Llama3_8B()
	pre := m.PrefillLinears(64)
	// 7 per-layer matrices x 32 layers + lm head.
	if got, want := len(pre), 7*32+1; got != want {
		t.Errorf("prefill op count = %d, want %d", got, want)
	}
	for _, op := range pre[:len(pre)-1] {
		if op.L != 64 {
			t.Errorf("prefill op L = %d, want 64", op.L)
		}
	}
	if head := pre[len(pre)-1]; head.L != 1 || head.Out != m.Vocab {
		t.Errorf("lm head op = %+v", head)
	}
	dec := m.DecodeLinears()
	if len(dec) != len(pre) {
		t.Errorf("decode op count %d != prefill %d", len(dec), len(pre))
	}
	for _, op := range dec {
		if !op.IsGEMV() {
			t.Errorf("decode op not GEMV: %+v", op)
		}
	}
}

func TestKVAccounting(t *testing.T) {
	m := Llama3_8B()
	// 2 x 32 layers x 1024 x 2 B = 128 KiB per token.
	if got := m.KVBytesPerToken(); got != 131072 {
		t.Errorf("KVBytesPerToken = %d, want 131072", got)
	}
	if got := m.AttentionBytesPerStep(100); got != 100*131072 {
		t.Errorf("AttentionBytesPerStep(100) = %d", got)
	}
	kv := m.AttentionKVMatrix(64)
	if kv.Rows != 64 || kv.Cols != 1024 {
		t.Errorf("AttentionKVMatrix = %+v", kv)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := Llama3_8B()
	m.HeadDim = 100
	if err := m.Validate(); err == nil {
		t.Error("heads x headDim != hidden accepted")
	}
	m = Llama3_8B()
	m.KVHeads = 7
	if err := m.Validate(); err == nil {
		t.Error("non-divisible KV heads accepted")
	}
	m = Llama3_8B()
	m.Layers = 0
	if err := m.Validate(); err == nil {
		t.Error("zero layers accepted")
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("Phi-1.5")
	if err != nil || m.Hidden != 2048 {
		t.Errorf("ByName: %+v, %v", m, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestTiedEmbeddingsCounting(t *testing.T) {
	opt := OPT_6_7B()
	untied := opt
	untied.TiedEmbeddings = false
	if untied.TotalWeightBytes() <= opt.TotalWeightBytes() {
		t.Error("untied embeddings not larger")
	}
	diff := untied.TotalWeightBytes() - opt.TotalWeightBytes()
	want := int64(opt.Vocab) * int64(opt.Hidden) * int64(opt.DTypeBytes)
	if diff != want {
		t.Errorf("embedding delta = %d, want %d", diff, want)
	}
}
