package llm

import "fmt"

// The four models of the paper's evaluation (Table II) plus GPT-J-6B,
// which the paper's introduction cites from MLPerf Inference.

// Llama3_8B returns Meta Llama 3 8B (Jetson and MacBook workload).
func Llama3_8B() Model {
	return Model{
		Name:         "Llama3-8B",
		Layers:       32,
		Hidden:       4096,
		Intermediate: 14336,
		Heads:        32,
		KVHeads:      8, // grouped-query attention
		HeadDim:      128,
		Vocab:        128256,
		DTypeBytes:   2,
		MLP:          MLPGated,
	}
}

// OPT_6_7B returns Meta OPT-6.7B (IdeaPad workload).
func OPT_6_7B() Model {
	return Model{
		Name:           "OPT-6.7B",
		Layers:         32,
		Hidden:         4096,
		Intermediate:   16384,
		Heads:          32,
		KVHeads:        32,
		HeadDim:        128,
		Vocab:          50272,
		DTypeBytes:     2,
		MLP:            MLPStandard,
		TiedEmbeddings: true,
	}
}

// Phi1_5 returns Microsoft Phi-1.5 (iPhone workload).
func Phi1_5() Model {
	return Model{
		Name:         "Phi-1.5",
		Layers:       24,
		Hidden:       2048,
		Intermediate: 8192,
		Heads:        32,
		KVHeads:      32,
		HeadDim:      64,
		Vocab:        51200,
		DTypeBytes:   2,
		MLP:          MLPStandard,
	}
}

// GPTJ6B returns EleutherAI GPT-J-6B (the MLPerf Inference edge LLM the
// paper's introduction references).
func GPTJ6B() Model {
	return Model{
		Name:         "GPT-J-6B",
		Layers:       28,
		Hidden:       4096,
		Intermediate: 16384,
		Heads:        16,
		KVHeads:      16,
		HeadDim:      256,
		Vocab:        50400,
		DTypeBytes:   2,
		MLP:          MLPStandard,
	}
}

// ByName resolves a preset model.
func ByName(name string) (Model, error) {
	for _, m := range []Model{Llama3_8B(), OPT_6_7B(), Phi1_5(), GPTJ6B()} {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("llm: unknown model %q", name)
}
