// Package llm describes transformer decoder models at the tensor-shape
// level: which weight matrices exist, which GEMM/GEMV operations each
// inference phase performs, and how large the KV cache grows. Latency
// depends only on these shapes, so no weight values are stored.
package llm

import (
	"fmt"

	"facil/internal/mapping"
	"facil/internal/soc"
)

// MLPKind distinguishes the feed-forward variants.
type MLPKind int

const (
	// MLPGated is the Llama-style gate/up/down SwiGLU block.
	MLPGated MLPKind = iota
	// MLPStandard is the classic fc1/fc2 block (OPT, Phi, GPT-J).
	MLPStandard
)

// Model is a decoder-only transformer architecture.
type Model struct {
	Name         string
	Layers       int
	Hidden       int
	Intermediate int
	Heads        int
	// KVHeads < Heads means grouped-query attention.
	KVHeads    int
	HeadDim    int
	Vocab      int
	DTypeBytes int
	MLP        MLPKind
	// TiedEmbeddings means the LM head shares the embedding matrix.
	TiedEmbeddings bool
}

// Validate rejects inconsistent architectures.
func (m Model) Validate() error {
	if m.Layers <= 0 || m.Hidden <= 0 || m.Intermediate <= 0 ||
		m.Heads <= 0 || m.KVHeads <= 0 || m.HeadDim <= 0 || m.Vocab <= 0 {
		return fmt.Errorf("llm: %s: all dimensions must be positive", m.Name)
	}
	if m.Heads*m.HeadDim != m.Hidden {
		return fmt.Errorf("llm: %s: heads(%d) x headDim(%d) != hidden(%d)",
			m.Name, m.Heads, m.HeadDim, m.Hidden)
	}
	if m.Heads%m.KVHeads != 0 {
		return fmt.Errorf("llm: %s: heads %d not divisible by KV heads %d", m.Name, m.Heads, m.KVHeads)
	}
	if m.DTypeBytes <= 0 {
		return fmt.Errorf("llm: %s: element size must be positive", m.Name)
	}
	return nil
}

// KVDim returns the K (or V) projection output width.
func (m Model) KVDim() int { return m.KVHeads * m.HeadDim }

// WeightMatrix names one weight matrix of the model.
type WeightMatrix struct {
	// Name identifies the matrix, e.g. "layer.q_proj" (one instance
	// per layer) or "lm_head".
	Name string
	// Out, In are the GEMV dimensions: y[Out] = W[Out,In] · x[In].
	Out, In int
	// PerLayer is true for matrices repeated in every decoder layer.
	PerLayer bool
}

// Matrix converts to the mapping selector's input.
func (w WeightMatrix) Matrix(dtypeBytes int) mapping.MatrixConfig {
	return mapping.MatrixConfig{Rows: w.Out, Cols: w.In, DTypeBytes: dtypeBytes}
}

// Bytes returns the matrix footprint.
func (w WeightMatrix) Bytes(dtypeBytes int) int64 {
	return int64(w.Out) * int64(w.In) * int64(dtypeBytes)
}

// WeightMatrices lists every distinct linear weight matrix of the model,
// per-layer matrices once (flagged PerLayer).
func (m Model) WeightMatrices() []WeightMatrix {
	h, kv, i := m.Hidden, m.KVDim(), m.Intermediate
	ms := []WeightMatrix{
		{Name: "q_proj", Out: h, In: h, PerLayer: true},
		{Name: "k_proj", Out: kv, In: h, PerLayer: true},
		{Name: "v_proj", Out: kv, In: h, PerLayer: true},
		{Name: "o_proj", Out: h, In: h, PerLayer: true},
	}
	switch m.MLP {
	case MLPGated:
		ms = append(ms,
			WeightMatrix{Name: "gate_proj", Out: i, In: h, PerLayer: true},
			WeightMatrix{Name: "up_proj", Out: i, In: h, PerLayer: true},
			WeightMatrix{Name: "down_proj", Out: h, In: i, PerLayer: true},
		)
	default:
		ms = append(ms,
			WeightMatrix{Name: "fc1", Out: i, In: h, PerLayer: true},
			WeightMatrix{Name: "fc2", Out: h, In: i, PerLayer: true},
		)
	}
	ms = append(ms, WeightMatrix{Name: "lm_head", Out: m.Vocab, In: h, PerLayer: false})
	return ms
}

// LinearWeightBytes sums all linear weights (layers x per-layer matrices
// plus the LM head; embeddings excluded — they are gathered, not GEMVed).
func (m Model) LinearWeightBytes() int64 {
	var total int64
	for _, w := range m.WeightMatrices() {
		b := w.Bytes(m.DTypeBytes)
		if w.PerLayer {
			b *= int64(m.Layers)
		}
		total += b
	}
	return total
}

// TotalWeightBytes adds the token embedding table.
func (m Model) TotalWeightBytes() int64 {
	emb := int64(m.Vocab) * int64(m.Hidden) * int64(m.DTypeBytes)
	if m.TiedEmbeddings {
		// The LM head already counted the shared matrix.
		emb = 0
	}
	return m.LinearWeightBytes() + emb
}

// Params returns the approximate parameter count of the linear weights.
func (m Model) Params() int64 {
	return m.TotalWeightBytes() / int64(m.DTypeBytes)
}

// KVBytesPerToken returns the KV-cache growth per generated/prefilled
// token across all layers (K and V).
func (m Model) KVBytesPerToken() int64 {
	return 2 * int64(m.Layers) * int64(m.KVDim()) * int64(m.DTypeBytes)
}

// PrefillLinears returns the GEMM operations of one prefill pass with
// sequence length l: every per-layer matrix at batch l, plus the LM head
// for the single next-token logit computation.
func (m Model) PrefillLinears(l int) []soc.Linear {
	var ops []soc.Linear
	for _, w := range m.WeightMatrices() {
		if !w.PerLayer {
			continue
		}
		op := soc.Linear{L: l, In: w.In, Out: w.Out, DTypeBytes: m.DTypeBytes}
		for k := 0; k < m.Layers; k++ {
			ops = append(ops, op)
		}
	}
	// LM head computes logits for the last position only.
	ops = append(ops, soc.Linear{L: 1, In: m.Hidden, Out: m.Vocab, DTypeBytes: m.DTypeBytes})
	return ops
}

// DecodeLinears returns the GEMV operations of one decode step.
func (m Model) DecodeLinears() []soc.Linear {
	return m.PrefillLinears(1)
}

// AttentionKVMatrix describes the per-layer KV-cache tensor at context
// length ctx as a GEMV operand: scoring reads K (ctx x kvDim) and the
// weighted sum reads V (same shape). Used to model attention on PIM.
func (m Model) AttentionKVMatrix(ctx int) mapping.MatrixConfig {
	return mapping.MatrixConfig{Rows: ctx, Cols: m.KVDim(), DTypeBytes: m.DTypeBytes}
}

// AttentionBytesPerStep returns the KV-cache bytes one decode step reads
// across all layers at context length ctx.
func (m Model) AttentionBytesPerStep(ctx int) int64 {
	return 2 * int64(m.Layers) * int64(ctx) * int64(m.KVDim()) * int64(m.DTypeBytes)
}
