package serve

import (
	"bytes"
	"testing"

	"facil/internal/engine"
	"facil/internal/obs"
)

// perfConfig is the steady-state measurement scenario: heavy sustained
// load on a bounded queue (so the backlog pins at the cap and every
// TimeHist level is visited during warmup), a fixed-length workload (so
// the flat latency caches fill early), no faults, no retries, no tracer.
func perfConfig(queries int) SimConfig {
	return SimConfig{
		Mode:        Cooperative,
		Kind:        engine.FACIL,
		Replicas:    2,
		ArrivalRate: 50,
		Queries:     queries,
		Workload:    fixedSpec(256, 64),
		Seed:        42,
		QueueCap:    16,
	}
}

// drainSim steps a Sim to exhaustion and returns its Metrics.
func drainSim(tb testing.TB, sim *Sim) Metrics {
	for {
		more, err := sim.Step()
		if err != nil {
			tb.Fatal(err)
		}
		if !more {
			return sim.Finish()
		}
	}
}

// TestServeSteadyStateZeroAllocs is the allocation regression gate on
// the serving loop: after warmup (event-arena slab, flat latency caches,
// TimeHist levels and the engine's memoized caches all grown), stepping
// the simulation must not allocate at all.
func TestServeSteadyStateZeroAllocs(t *testing.T) {
	s := servingSystem(t)
	cfg := perfConfig(4000)
	// Probe run: learn the total event count (it depends on the
	// admission mix) and warm the engine's process-wide latency caches.
	probe, err := NewSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		more, err := probe.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		total++
	}
	probe.Finish()
	// Measured run: warm the first half, then require the tail to step
	// allocation-free. AllocsPerRun invokes the closure runs+1 times.
	sim, err := NewSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := total / 2
	for i := 0; i < warm; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	const runs = 10
	chunk := (total - warm) / (runs + 2)
	if chunk < 100 {
		t.Fatalf("only %d events to measure over; grow the query count", total-warm)
	}
	exhausted := false
	var stepErr error
	avg := testing.AllocsPerRun(runs, func() {
		for i := 0; i < chunk; i++ {
			more, err := sim.Step()
			if err != nil {
				stepErr = err
				return
			}
			if !more {
				exhausted = true
				return
			}
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if exhausted {
		t.Fatal("simulation drained during measurement; grow the query count")
	}
	if avg != 0 {
		t.Fatalf("steady-state stepping allocates %.1f times per %d events, want 0", avg, chunk)
	}
}

// TestOptimizedSimSpeedup gates the perf win of the timing-wheel
// rebuild: a full simulation run (construction included) must beat the
// retained reference engine by at least 3x (the acceptance bar; it
// measures well above that on an idle runner, leaving headroom for CI
// noise).
func TestOptimizedSimSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping timing comparison in -short mode")
	}
	s := servingSystem(t)
	cfg := perfConfig(2000)
	// Time only the event loop: construction (workload sampling, slab
	// setup) is identical work for both engines and would dilute the
	// ratio the gate is about.
	time := func(construct func() (func() (bool, error), func() Metrics)) float64 {
		step, finish := construct() // warm the shared latency caches
		for more, _ := step(); more; more, _ = step() {
		}
		finish()
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				step, finish := construct()
				b.StartTimer()
				for {
					more, err := step()
					if err != nil {
						b.Fatal(err)
					}
					if !more {
						break
					}
				}
				finish()
			}
		})
		return float64(r.NsPerOp())
	}
	optNs := time(func() (func() (bool, error), func() Metrics) {
		sim, err := NewSim(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Step, sim.Finish
	})
	refNs := time(func() (func() (bool, error), func() Metrics) {
		sim, err := NewReferenceSim(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Step, sim.Finish
	})
	if ratio := refNs / optNs; ratio < 3 {
		t.Errorf("optimized sim only %.2fx faster than reference (opt %.0f ns, ref %.0f ns), want >= 3x",
			ratio, optNs, refNs)
	}
}

// BenchmarkSimDrain measures the optimized serving loop end to end —
// construction, every event, Finish — reporting per-query cost and
// simulated queries per wall-clock second (the ROADMAP's fleet-sweep
// currency; the acceptance target is >= 1e5 queries/sec single-core).
func BenchmarkSimDrain(b *testing.B) {
	s := servingSystem(b)
	cfg := perfConfig(2000)
	if _, err := Run(s, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSim(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		drainSim(b, sim)
	}
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(cfg.Queries)
	b.ReportMetric(perQuery, "ns/query")
	b.ReportMetric(1e9/perQuery, "queries/sec")
}

// BenchmarkReferenceSimDrain is BenchmarkSimDrain on the retained heap
// engine — the denominator of the speedup the rebuild buys.
func BenchmarkReferenceSimDrain(b *testing.B) {
	s := servingSystem(b)
	cfg := perfConfig(2000)
	if _, err := ReferenceRun(s, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewReferenceSim(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for {
			more, err := sim.Step()
			if err != nil {
				b.Fatal(err)
			}
			if !more {
				break
			}
		}
		sim.Finish()
	}
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(cfg.Queries)
	b.ReportMetric(perQuery, "ns/query")
	b.ReportMetric(1e9/perQuery, "queries/sec")
}

// traceBytes runs one simulation with a fresh tracer attached and
// returns the serialized Chrome-trace JSON.
func traceBytes(t *testing.T, run func(SimConfig), cfg SimConfig) []byte {
	t.Helper()
	tr := obs.New(1 << 16)
	cfg.Tracer = tr
	run(cfg)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSteppedTraceMatchesOneShot pins the tracer-aliasing fix: driving a
// traced simulation one Step at a time must produce byte-identical
// Chrome-trace output to the one-shot Run — a recycled event slot must
// never leak stale state into an instrumentation callback. (See also
// TestDifferentialTrace for optimized-vs-reference trace identity.)
func TestSteppedTraceMatchesOneShot(t *testing.T) {
	s := servingSystem(t)
	base := traceConfig(Cooperative)
	base.MaxRetries = 2
	oneShot := traceBytes(t, func(cfg SimConfig) {
		if _, err := Run(s, cfg); err != nil {
			t.Fatal(err)
		}
	}, base)
	stepped := traceBytes(t, func(cfg SimConfig) {
		sim, err := NewSim(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		drainSim(t, sim)
	}, base)
	if !bytes.Equal(oneShot, stepped) {
		t.Errorf("stepped trace diverges from one-shot: %d vs %d bytes", len(stepped), len(oneShot))
	}
}
