package serve

import (
	"math"
	"testing"

	"facil/internal/engine"
)

// drainTestConfig is the mid-load scenario the drain drill fires into:
// enough sustained traffic that plenty of queries are in flight or
// still arriving when the outage lands.
func drainTestConfig(policy Policy) SimConfig {
	return SimConfig{
		Mode:        Cooperative,
		Kind:        engine.FACIL,
		Replicas:    2,
		ArrivalRate: 4,
		Queries:     200,
		Workload:    fixedSpec(256, 64),
		Seed:        11,
		Policy:      policy,
	}
}

// stepHalfThenTrigger sizes the run with a probe sim, steps the
// measured sim through half its events, fires the process-wide drain
// outage, and drains the rest.
func stepHalfThenTrigger(t *testing.T, cfg SimConfig, seconds float64) Metrics {
	t.Helper()
	s := servingSystem(t)
	probe, err := NewSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		more, err := probe.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		total++
	}
	probe.Finish()
	sim, err := NewSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total/2; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	TriggerDrainOutage(seconds)
	return drainSim(t, sim)
}

// TestDrainOutageFailsUnderPolicyNone pins the fault drill's teeth: a
// triggered lane outage lands on every replica of a mid-flight run, and
// under the no-policy tier the queries caught by it fail terminally —
// while the accounting identity still balances.
func TestDrainOutageFailsUnderPolicyNone(t *testing.T) {
	m := stepHalfThenTrigger(t, drainTestConfig(PolicyNone), 1e6)
	if m.LaneFailures != 2 {
		t.Errorf("lane failures %d, want one per replica", m.LaneFailures)
	}
	if m.Failed == 0 {
		t.Error("no query failed through a full-fleet outage under PolicyNone")
	}
	if got := m.Completed + m.TimedOut + m.Failed + m.Retracted; got != m.Admitted {
		t.Errorf("outcomes %d != admitted %d", got, m.Admitted)
	}
}

// TestDrainOutageDegradesUnderFallback is the same drill under the SoC
// fallback tier: nothing fails, the caught queries finish on the SoC
// path and count as Degraded.
func TestDrainOutageDegradesUnderFallback(t *testing.T) {
	m := stepHalfThenTrigger(t, drainTestConfig(PolicySoCFallback), 1e6)
	if m.Failed != 0 {
		t.Errorf("%d queries failed under the fallback policy", m.Failed)
	}
	if m.Degraded == 0 {
		t.Error("no query degraded through a full-fleet outage under PolicySoCFallback")
	}
	if m.Completed != m.Admitted {
		t.Errorf("completed %d != admitted %d (fallback should finish everything)", m.Completed, m.Admitted)
	}
}

// TestDrainOutageSerialIgnored pins that Serial-mode sims ignore the
// trigger: the fault model targets the two-lane schedulers, and a
// serial run triggered mid-flight finishes clean.
func TestDrainOutageSerialIgnored(t *testing.T) {
	cfg := drainTestConfig(PolicyNone)
	cfg.Mode = Serial
	m := stepHalfThenTrigger(t, cfg, 1e6)
	if m.LaneFailures != 0 || m.Failed != 0 || m.Degraded != 0 {
		t.Errorf("serial run took the drain outage: %d failures, %d failed, %d degraded",
			m.LaneFailures, m.Failed, m.Degraded)
	}
	if m.Completed != m.Admitted {
		t.Errorf("completed %d != admitted %d", m.Completed, m.Admitted)
	}
}

// TestDrainOutageInvalidDurationsIgnored pins that non-positive and
// non-finite durations never arm the drill.
func TestDrainOutageInvalidDurationsIgnored(t *testing.T) {
	sim, err := NewSim(servingSystem(t), drainTestConfig(PolicyNone))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	TriggerDrainOutage(0)
	TriggerDrainOutage(-5)
	TriggerDrainOutage(math.Inf(1))
	m := drainSim(t, sim)
	if m.LaneFailures != 0 || m.Failed != 0 {
		t.Errorf("invalid trigger durations armed the drill: %d failures, %d failed", m.LaneFailures, m.Failed)
	}
}
