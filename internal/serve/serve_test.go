package serve

import (
	"context"
	"sync"
	"testing"

	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/soc"
	"facil/internal/workload"
)

// servingSystem returns a shared engine.System: it is immutable and
// goroutine-safe, so every test reuses one instance and its memoized
// latency caches instead of paying a cold build each.
var servingOnce = struct {
	sync.Once
	s   *engine.System
	err error
}{}

func servingSystem(t testing.TB) *engine.System {
	t.Helper()
	servingOnce.Do(func() {
		servingOnce.s, servingOnce.err = engine.NewSystem(soc.IPhone, llm.Phi1_5(), engine.DefaultConfig())
	})
	if servingOnce.err != nil {
		t.Fatal(servingOnce.err)
	}
	return servingOnce.s
}

func testConfig(rate float64) Config {
	return Config{
		ArrivalRate: rate,
		Queries:     120,
		Workload:    workload.AlpacaSpec(),
		Seed:        5,
	}
}

func TestSimulateBasics(t *testing.T) {
	s := servingSystem(t)
	sum, err := Simulate(s, engine.FACIL, testConfig(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if sum.PerceivedTTFTMean <= 0 || sum.PerceivedTTLTMean <= sum.PerceivedTTFTMean {
		t.Errorf("latencies implausible: %+v", sum)
	}
	if sum.Utilization <= 0 || sum.Utilization > 1 {
		t.Errorf("utilization = %g", sum.Utilization)
	}
	if sum.PerceivedTTFTP99 < sum.PerceivedTTFTMean {
		t.Errorf("p99 %.3f below mean %.3f", sum.PerceivedTTFTP99, sum.PerceivedTTFTMean)
	}
	if sum.MaxQueueDepth < 1 {
		t.Errorf("queue depth %d", sum.MaxQueueDepth)
	}
}

func TestLoadAmplifiesLatency(t *testing.T) {
	s := servingSystem(t)
	light, err := Simulate(s, engine.HybridStatic, testConfig(0.02))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Simulate(s, engine.HybridStatic, testConfig(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.PerceivedTTFTMean <= light.PerceivedTTFTMean {
		t.Errorf("load did not raise perceived TTFT: %.3f vs %.3f",
			heavy.PerceivedTTFTMean, light.PerceivedTTFTMean)
	}
	if heavy.Utilization <= light.Utilization {
		t.Error("utilization did not rise with load")
	}
}

func TestFACILServesBetterUnderLoad(t *testing.T) {
	s := servingSystem(t)
	cfg := testConfig(0.3)
	sums, err := Compare(context.Background(), s, []engine.Kind{engine.HybridStatic, engine.FACIL}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, facil := sums[0], sums[1]
	if facil.PerceivedTTFTMean >= hybrid.PerceivedTTFTMean {
		t.Errorf("FACIL perceived TTFT %.3f not below hybrid %.3f",
			facil.PerceivedTTFTMean, hybrid.PerceivedTTFTMean)
	}
	if facil.Utilization >= hybrid.Utilization {
		t.Errorf("FACIL utilization %.2f not below hybrid %.2f (same offered load)",
			facil.Utilization, hybrid.Utilization)
	}
}

func TestConfigValidation(t *testing.T) {
	s := servingSystem(t)
	if _, err := Simulate(s, engine.FACIL, Config{ArrivalRate: 0, Queries: 10}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Simulate(s, engine.FACIL, Config{ArrivalRate: 1, Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
}
