package serve

import (
	"math"
	"math/rand"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/fault"
	"facil/internal/stats"
)

// Defaults for the fault-handling knobs SimConfig leaves at zero.
const (
	// DefaultFailoverPenalty is the decode-migration cost in seconds
	// (KV-cache transfer to the adopting replica) when
	// SimConfig.FailoverPenalty is 0.
	DefaultFailoverPenalty = 0.05
	// DefaultBreakerCooldown is the open-state dwell in seconds before
	// a half-open probe when SimConfig.BreakerCooldown is 0.
	DefaultBreakerCooldown = 1.0
	// DefaultRetryBase is the first client-retry backoff in seconds
	// when SimConfig.RetryBase is 0.
	DefaultRetryBase = 0.05
	// DefaultRetryCap bounds the exponential backoff in seconds when
	// SimConfig.RetryCap is 0.
	DefaultRetryCap = 2.0
	// MapIDRepairSeconds is the page-table re-walk that repairs a
	// corrupted PTE MapID after the MC frontend rejects it with
	// ErrBadMapID (policies other than PolicyNone detect-and-repair
	// instead of decoding garbage).
	MapIDRepairSeconds = 0.002
)

// faultState is the per-run fault-injection machinery; sm.flt is nil
// when the scenario is empty, making the layer provably zero-impact:
// no RNG draws, no extra events, no arithmetic on the hot path.
type faultState struct {
	sc    fault.Scenario
	lanes []*fault.LaneFaults
	// thermal is the measured DRAM slowdown factor inside a
	// thermal-throttle window (dram.ThrottleFactor; 1 outside).
	thermal float64
	// crng draws the per-admission MapID-corruption Bernoulli.
	crng *rand.Rand
	// outages tracks completed (repaired) lane outages; residualDown
	// adds lanes still dead at the end of the run.
	outages      stats.Outages
	residualDown float64
}

// initFaults arms the fault layer for a non-empty scenario: measures
// the thermal throttle factor on the platform's DRAM spec, seeds the
// corruption RNG, and schedules the first outage window of every
// replica's lane-fault stream.
func (sm *sim) initFaults(s *engine.System) error {
	fs := &faultState{sc: sm.cfg.Faults, thermal: 1}
	if len(fs.sc.Thermal) > 0 {
		f, err := dram.ThrottleFactor(s.Platform.Spec, fs.sc.EffectiveRefreshMult())
		if err != nil {
			return err
		}
		fs.thermal = f
	}
	if fs.sc.MapIDCorruptRate > 0 {
		fs.crng = rand.New(rand.NewSource(fs.sc.Seed ^ 0x6A09E667))
	}
	fs.lanes = make([]*fault.LaneFaults, sm.cfg.Replicas)
	for ri := range fs.lanes {
		fs.lanes[ri] = fs.sc.Lanes(ri)
		if w, ok := fs.lanes[ri].Next(); ok {
			sm.push(event{at: w.Start, kind: evLaneDown, rep: int32(ri), until: w.End})
		}
	}
	sm.flt = fs
	sm.failoverPen = sm.cfg.FailoverPenalty
	if sm.failoverPen == 0 {
		sm.failoverPen = DefaultFailoverPenalty
	}
	sm.brkCooldown = sm.cfg.BreakerCooldown
	if sm.brkCooldown == 0 {
		sm.brkCooldown = DefaultBreakerCooldown
	}
	return nil
}

// factorAt returns the lane slowdown at time t: the measured thermal
// throttle factor inside a thermal window, exactly 1 otherwise (and
// always 1 with the fault layer off, keeping durations bit-identical).
func (sm *sim) factorAt(t float64) float64 {
	if sm.flt == nil || sm.flt.thermal == 1 || !sm.flt.sc.ThermalAt(t) {
		return 1
	}
	return sm.flt.thermal
}

// maybeCorrupt draws the admission-time MapID-corruption Bernoulli.
func (sm *sim) maybeCorrupt(q *query) {
	if sm.flt == nil || sm.flt.crng == nil {
		return
	}
	if sm.flt.crng.Float64() < sm.flt.sc.MapIDCorruptRate {
		q.corrupt = true
		sm.m.CorruptMapIDs++
	}
}

// onCorruptHandoff resolves a corrupted MapID at the decode handoff —
// where the PTE-carried ID first reaches the MC frontend mux. Under
// PolicyNone the garbage ID is silently mis-translated (the pre-FACIL
// frontend has no validator) and the query fails terminally; under the
// other policies the frontend's ErrBadMapID triggers a page-table
// re-walk that repairs the PTE for MapIDRepairSeconds. Returns whether
// the query survived.
func (sm *sim) onCorruptHandoff(q *query) bool {
	if sm.cfg.Policy == PolicyNone {
		sm.failQuery(q, "corrupt-mapid")
		return false
	}
	q.penalty += MapIDRepairSeconds
	sm.m.CorruptRepaired++
	sm.traceInstant("mapid-repair", q)
	return true
}

// failQuery terminally fails a query (fault consequence, not a timeout
// or rejection).
func (sm *sim) failQuery(q *query, why string) {
	sm.m.Failed++
	Live.failed.Add(1)
	sm.inSystem--
	sm.open--
	sm.traceInstant(why, q)
	sm.traceDepth()
}

// onLaneDown starts (or extends) a PIM-lane outage on a replica and
// chains the stream's next window into the event heap.
func (sm *sim) onLaneDown(ri int, until float64) error {
	r := &sm.reps[ri]
	if !r.pimDown {
		r.pimDown = true
		r.downAt = sm.now
		sm.m.LaneFailures++
		sm.traceFault("lane-down", ri)
	}
	if until > r.downUntil {
		r.downUntil = until
	}
	sm.push(event{at: until, kind: evLaneUp, rep: int32(ri)})
	// Drain-triggered outages have no per-replica fault stream to chain.
	if ri < len(sm.flt.lanes) {
		if w, ok := sm.flt.lanes[ri].Next(); ok {
			sm.push(event{at: w.Start, kind: evLaneDown, rep: int32(ri), until: w.End})
		}
	}
	// Queries already queued on the dead lane reroute now; an in-flight
	// quantum still completes (fail-stop at scheduling boundaries).
	return sm.dispatchDecode(ri)
}

// onLaneUp ends an outage unless a later-ending overlap still holds the
// lane down.
func (sm *sim) onLaneUp(ri int) error {
	r := &sm.reps[ri]
	if !r.pimDown || sm.now < r.downUntil {
		return nil
	}
	r.pimDown = false
	sm.flt.outages.Record(sm.now - r.downAt)
	sm.traceFault("lane-up", ri)
	return sm.dispatchDecode(ri)
}

// pimLive reports whether dispatching on ri's PIM lane would succeed
// right now, without mutating breaker state (used to pick failover
// targets).
func (sm *sim) pimLive(ri int) bool {
	r := &sm.reps[ri]
	if sm.cfg.BreakerThreshold > 0 && r.brk.Blocked(sm.now, sm.brkCooldown) {
		return false
	}
	return !r.pimDown
}

// acquirePIM decides whether a decode quantum may start on ri's PIM
// lane, driving the circuit breaker: failures count toward opening it,
// an open breaker rejects dispatches until its cooldown, and the first
// dispatch after the cooldown probes the lane (half-open).
func (sm *sim) acquirePIM(ri int) bool {
	r := &sm.reps[ri]
	threshold := sm.cfg.BreakerThreshold
	if threshold > 0 && !r.brk.Admit(sm.now, sm.brkCooldown) {
		return false
	}
	if r.pimDown {
		if threshold > 0 && r.brk.Failure(sm.now, threshold) {
			sm.m.BreakerOpens++
			sm.traceFault("breaker-open", ri)
		}
		return false
	}
	if threshold > 0 && r.brk.Success() {
		sm.traceFault("breaker-close", ri)
	}
	return true
}

// liveReplica returns the lowest-index replica other than ri with spare
// live decode capacity right now — PIM lane up, idle, and no decode
// backlog — or -1. Migrating onto a busy lane would just queue the
// query behind the target's own decodes (often worse than the local SoC
// fallback), so failover only claims genuinely idle capacity; that is
// what makes it never worse than PolicySoCFallback.
func (sm *sim) liveReplica(ri int) int {
	for i := range sm.reps {
		if i != ri && sm.pimLive(i) && !sm.reps[i].pimBusy && sm.reps[i].decodeQ.empty() {
			return i
		}
	}
	return -1
}

// degrade routes a query whose PIM dispatch failed according to the
// configured policy: fail it, run its decode on the SoC fallback path,
// or migrate it to a live replica (falling back to SoC when none).
func (sm *sim) degrade(qi int32, ri int) error {
	q := &sm.qs[qi]
	switch sm.cfg.Policy {
	case PolicyFailover:
		if rj := sm.liveReplica(ri); rj >= 0 {
			sm.m.FailedOver++
			Live.failedOver.Add(1)
			q.penalty += sm.failoverPen
			sm.traceInstant("failover", q)
			sm.reps[rj].decodeQ.push(sm.qs, qi)
			return sm.dispatchDecode(rj)
		}
		fallthrough
	case PolicySoCFallback:
		if !q.degraded {
			q.degraded = true
			sm.m.Degraded++
			Live.degraded.Add(1)
			sm.traceInstant("degrade", q)
		}
		sm.reps[ri].socQ.push(sm.qs, qi)
		return sm.dispatchSoCDecode(ri)
	default:
		sm.failQuery(q, "lane-fail")
		return nil
	}
}

// dispatchSoCDecode starts the next degraded decode quantum on a
// replica's SoC lane. Prefills have priority: every lane-freeing event
// offers the lane to dispatchPrefills first, so the fallback path only
// uses prefill-idle time — the degradation is visible as TBT/TTLT
// inflation rather than starved admissions.
func (sm *sim) dispatchSoCDecode(ri int) error {
	r := &sm.reps[ri]
	for !r.socBusy && !r.socQ.empty() {
		qi := r.socQ.pop(sm.qs)
		q := &sm.qs[qi]
		if sm.expired(q) {
			sm.abort(q)
			continue
		}
		steps := q.decode - 1 - q.stepsDone
		if steps > sm.cfg.PreemptSteps {
			steps = sm.cfg.PreemptSteps
		}
		factor := sm.factorAt(sm.now)
		dur, err := sm.quantumSecondsKind(q, steps, engine.SoCOnly, factor)
		if err != nil {
			return err
		}
		penalty := q.penalty
		q.penalty = 0
		r.socBusy = true
		sm.busySoC++
		sm.socBusySecs += penalty + dur
		if penalty > 0 {
			sm.traceSpan(ri, traceLaneSoC, "fault-recovery", q, sm.now, penalty)
		}
		sm.push(event{
			at: sm.now + penalty + dur, kind: evQuantumDone, q: qi, rep: int32(ri),
			steps: int32(steps), dur: dur, factor: factor, soc: true,
		})
	}
	return nil
}

// backoff returns the jittered, capped exponential client backoff for
// a retry attempt (attempt >= 1). The jitter comes from the run-owned
// retry RNG, so runs stay reproducible.
func (sm *sim) backoff(attempt int) float64 {
	d := sm.retryBase * math.Pow(2, float64(attempt-1))
	if d > sm.retryCap {
		d = sm.retryCap
	}
	return d/2 + sm.retryRNG.Float64()*d/2
}

// traceFault records a lane-level fault marker on the replica's PIM
// lane track.
func (sm *sim) traceFault(name string, ri int) {
	if sm.tr == nil {
		return
	}
	sm.tr.InstantArg(sm.pid0+int64(ri), traceLanePIM, name, sm.now*traceUSPerS, "replica", float64(ri))
}
