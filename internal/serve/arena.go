package serve

// eventArena is the serving simulator's event allocator: a contiguous
// slab of event values with an intrusive free list threaded through the
// events' next links (the ROADMAP "arena" treatment applied to the serve
// event path, mirroring the DRAM scheduler's slot pool). The simulator
// addresses events by int32 slab index — never by pointer — so retiring
// and recycling one is two stores, the steady state allocates nothing,
// and a retired event cannot be aliased by a stale pointer. One arena
// belongs to one wheel (one sim), so no locking is needed.
type eventArena struct {
	slab []event
	// free heads the intrusive free list (-1 = empty; reset arms it).
	free int32
}

// reset readies the arena, keeping any slab capacity from a prior run.
func (a *eventArena) reset() {
	a.slab = a.slab[:0]
	a.free = -1
}

// alloc returns the index of a free slab slot, reusing a retired one
// when available. The caller overwrites the whole event value, so alloc
// does not clear.
func (a *eventArena) alloc() int32 {
	if a.free >= 0 {
		idx := a.free
		a.free = a.slab[idx].next
		return idx
	}
	a.slab = append(a.slab, event{})
	return int32(len(a.slab) - 1)
}

// release retires a processed event for the next alloc. The slot is
// cleared so stale scheduling state cannot leak into its next use.
func (a *eventArena) release(idx int32) {
	a.slab[idx] = event{next: a.free}
	a.free = idx
}
