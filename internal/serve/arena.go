package serve

// eventArena is the serving simulator's event allocator: a free list of
// event values recycled as the loop retires them (the ROADMAP "arena"
// treatment applied to the serve event allocation path, mirroring the
// DRAM scheduler's slot pool). The simulator allocates each event box at
// most once; steady state — retries, prefill/quantum chains, fault
// streams — reuses retired boxes instead of garbage-collecting them.
// One arena belongs to one sim, so no locking is needed.
type eventArena struct {
	free []*event
}

// get returns an event box, reusing a retired one when available. The
// caller overwrites every field (push copies a whole event value in),
// so get does not zero.
func (a *eventArena) get() *event {
	if n := len(a.free); n > 0 {
		e := a.free[n-1]
		a.free = a.free[:n-1]
		return e
	}
	return new(event)
}

// put retires a processed event for the next get. The box is cleared so
// a stale query pointer cannot keep a retired query reachable.
func (a *eventArena) put(e *event) {
	*e = event{}
	a.free = append(a.free, e)
}
