package serve

import "sync/atomic"

// LiveStats is a set of process-wide, lock-free serving counters in the
// style of dram.Totals: every running simulation increments them with
// one atomic add per transition, and observers (the facild /metrics
// endpoint, the facilsim -v footer) read a consistent-enough snapshot at
// any time without pausing the event loop. The counters are cumulative
// over the process lifetime — like a network stack's interface counters
// — and never feed back into simulated timing, so enabling an observer
// cannot perturb a run's results.
type LiveStats struct {
	runsStarted  atomic.Int64
	runsFinished atomic.Int64
	events       atomic.Int64
	virtualNanos atomic.Int64

	arrived   atomic.Int64
	admitted  atomic.Int64
	rejected  atomic.Int64
	retries   atomic.Int64
	completed atomic.Int64
	timedOut  atomic.Int64
	failed    atomic.Int64
	retracted atomic.Int64

	degraded   atomic.Int64
	failedOver atomic.Int64
}

// Live aggregates every serving simulation in the process, however many
// runs or sweep points are in flight.
var Live LiveStats

// RunsStarted returns the number of simulations started.
func (l *LiveStats) RunsStarted() int64 { return l.runsStarted.Load() }

// RunsFinished returns the number of simulations that reached Finish.
func (l *LiveStats) RunsFinished() int64 { return l.runsFinished.Load() }

// Events returns the total simulator events processed.
func (l *LiveStats) Events() int64 { return l.events.Load() }

// VirtualSeconds returns the total virtual time advanced across all
// runs, in seconds.
func (l *LiveStats) VirtualSeconds() float64 {
	return float64(l.virtualNanos.Load()) / 1e9
}

// Arrived returns the total queries that arrived at admission.
func (l *LiveStats) Arrived() int64 { return l.arrived.Load() }

// Admitted returns the total queries admitted into the system.
func (l *LiveStats) Admitted() int64 { return l.admitted.Load() }

// Completed returns the total queries that completed.
func (l *LiveStats) Completed() int64 { return l.completed.Load() }

// LiveSnapshot is one point-in-time copy of the live counters, shaped
// for JSON export (the facild /metrics payload). Each field is read
// atomically; the snapshot as a whole is taken without any lock, so
// fields may be skewed by events landing between loads — acceptable for
// observability, never used for results.
type LiveSnapshot struct {
	// RunsStarted and RunsFinished count serve simulations; their
	// difference is the number currently in flight.
	RunsStarted int64 `json:"runs_started"`
	// RunsFinished counts simulations that reached Finish.
	RunsFinished int64 `json:"runs_finished"`
	// Events is the total simulator events processed.
	Events int64 `json:"events"`
	// VirtualSeconds is the total virtual time advanced, summed over
	// every run (a throughput odometer, not a clock).
	VirtualSeconds float64 `json:"virtual_seconds"`
	// Arrived through TimedOut mirror the Metrics query accounting,
	// summed over every run.
	Arrived int64 `json:"arrived"`
	// Admitted counts queries admitted into the system.
	Admitted int64 `json:"admitted"`
	// Rejected counts queries dropped at admission (retry budgets
	// exhausted).
	Rejected int64 `json:"rejected"`
	// Retries counts client-side re-submissions after a rejection.
	Retries int64 `json:"retries"`
	// Completed counts queries that emitted their last token.
	Completed int64 `json:"completed"`
	// TimedOut counts queries aborted at a scheduling boundary.
	TimedOut int64 `json:"timed_out"`
	// Failed counts queries terminally lost to faults.
	Failed int64 `json:"failed"`
	// Retracted counts queries pulled back out of a sim for
	// cross-device migration (each is re-admitted elsewhere).
	Retracted int64 `json:"retracted"`
	// Degraded counts queries that ran at least one decode quantum on
	// the SoC fallback path.
	Degraded int64 `json:"degraded"`
	// FailedOver counts decode migrations to another replica.
	FailedOver int64 `json:"failed_over"`
}

// Snapshot reads every counter atomically and returns the copy.
func (l *LiveStats) Snapshot() LiveSnapshot {
	return LiveSnapshot{
		RunsStarted:    l.runsStarted.Load(),
		RunsFinished:   l.runsFinished.Load(),
		Events:         l.events.Load(),
		VirtualSeconds: float64(l.virtualNanos.Load()) / 1e9,
		Arrived:        l.arrived.Load(),
		Admitted:       l.admitted.Load(),
		Rejected:       l.rejected.Load(),
		Retries:        l.retries.Load(),
		Completed:      l.completed.Load(),
		TimedOut:       l.timedOut.Load(),
		Failed:         l.failed.Load(),
		Retracted:      l.retracted.Load(),
		Degraded:       l.degraded.Load(),
		FailedOver:     l.failedOver.Load(),
	}
}

// addVirtual accumulates one clock advance (seconds) into the odometer.
func (l *LiveStats) addVirtual(dt float64) {
	l.virtualNanos.Add(int64(dt * 1e9))
}
