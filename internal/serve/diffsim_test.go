package serve

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"facil/internal/engine"
	"facil/internal/fault"
	"facil/internal/obs"
	"facil/internal/workload"
)

// liveDelta captures how one run moved the global Live counters.
func liveDelta(before, after LiveSnapshot) LiveSnapshot {
	return LiveSnapshot{
		RunsStarted:    after.RunsStarted - before.RunsStarted,
		RunsFinished:   after.RunsFinished - before.RunsFinished,
		Events:         after.Events - before.Events,
		VirtualSeconds: after.VirtualSeconds - before.VirtualSeconds,
		Arrived:        after.Arrived - before.Arrived,
		Admitted:       after.Admitted - before.Admitted,
		Rejected:       after.Rejected - before.Rejected,
		Retries:        after.Retries - before.Retries,
		Completed:      after.Completed - before.Completed,
		TimedOut:       after.TimedOut - before.TimedOut,
		Failed:         after.Failed - before.Failed,
		Degraded:       after.Degraded - before.Degraded,
		FailedOver:     after.FailedOver - before.FailedOver,
	}
}

// diffGrid enumerates the differential-test scenarios: every scheduling
// mode crossed with load, fleet size, preemption, admission/timeout/
// retry pressure and the fault machinery (outage windows, stochastic
// failures, thermal throttle, MapID corruption under each policy).
func diffGrid() []SimConfig {
	alpaca := workload.AlpacaSpec()
	base := func(mode Mode, rate float64) SimConfig {
		return SimConfig{
			Mode: mode, Kind: engine.FACIL, Replicas: 2, ArrivalRate: rate,
			Queries: 120, Workload: alpaca, Seed: 11,
		}
	}
	grid := []SimConfig{
		base(Serial, 0.05),
		base(Cooperative, 0.5),
		base(RelayoutHybrid, 0.5),
	}

	// Load × replicas × preemption sweep on the cooperative scheduler.
	for _, rate := range []float64{0.2, 2, 8} {
		for _, reps := range []int{1, 3} {
			for _, preempt := range []int{1, 8, 32} {
				c := base(Cooperative, rate)
				c.Replicas = reps
				c.PreemptSteps = preempt
				grid = append(grid, c)
			}
		}
	}

	// Admission pressure: bounded queue, SLO, hard timeout, retries.
	pressured := base(Cooperative, 4)
	pressured.QueueCap = 6
	pressured.DeadlineTTLT = 15
	pressured.Timeout = 30
	pressured.MaxRetries = 3
	grid = append(grid, pressured)

	hybridPressured := base(RelayoutHybrid, 2)
	hybridPressured.QueueCap = 4
	hybridPressured.Timeout = 20
	grid = append(grid, hybridPressured)

	// Fault scenarios under each degradation policy: scheduled outage
	// windows, stochastic failures, thermal throttle and corruption.
	faulted := fault.Scenario{
		Seed:     13,
		LaneMTBF: 20, LaneMTTR: 4,
		LaneWindows:      [][]fault.Window{{{Start: 5, End: 15}}},
		Thermal:          []fault.Window{{Start: 10, End: 40}},
		MapIDCorruptRate: 0.1,
	}
	for _, pol := range Policies() {
		c := base(Cooperative, 2)
		c.Replicas = 3
		c.Faults = faulted
		c.Policy = pol
		c.BreakerThreshold = 2
		grid = append(grid, c)
	}
	withRetries := base(Cooperative, 4)
	withRetries.Replicas = 2
	withRetries.QueueCap = 5
	withRetries.MaxRetries = 2
	withRetries.Faults = faulted
	withRetries.Policy = PolicyFailover
	grid = append(grid, withRetries)

	return grid
}

// diffName labels one grid cell for subtest output.
func diffName(i int, cfg SimConfig) string {
	return fmt.Sprintf("%02d-%s-r%g-x%d-p%d-q%d-f%v-pol%d",
		i, cfg.Mode, cfg.ArrivalRate, cfg.Replicas, cfg.PreemptSteps,
		cfg.QueueCap, !cfg.Faults.Empty(), cfg.Policy)
}

// TestDifferentialSim locksteps the optimized Sim against the retained
// ReferenceSim over the scenario grid: every step must land both
// simulators on the same virtual clock, and the runs must produce
// identical Metrics (latency quantiles, makespan, utilization,
// time-weighted histograms — reflect.DeepEqual over the whole struct)
// and move the global Live counters by identical deltas.
func TestDifferentialSim(t *testing.T) {
	s := servingSystem(t)
	for i, cfg := range diffGrid() {
		if testing.Short() && i%4 != 0 {
			continue
		}
		t.Run(diffName(i, cfg), func(t *testing.T) {
			// Pass 1: full runs back to back, comparing Metrics and the
			// exact movement each run imparts to the global Live counters
			// (the package's tests run sequentially, so the deltas are
			// exact).
			b0 := Live.Snapshot()
			mr, err := ReferenceRun(s, cfg)
			if err != nil {
				t.Fatalf("ReferenceRun: %v", err)
			}
			b1 := Live.Snapshot()
			mo, err := Run(s, cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			b2 := Live.Snapshot()
			if !reflect.DeepEqual(mo, mr) {
				t.Errorf("metrics diverge:\n optimized %+v\n reference %+v", mo, mr)
			}
			dRef, dOpt := liveDelta(b0, b1), liveDelta(b1, b2)
			// The virtual-time odometer is reported in float64 seconds off
			// a global nanosecond counter, so differencing it loses ulps as
			// the counter grows across cells; compare it approximately and
			// everything else exactly.
			if math.Abs(dRef.VirtualSeconds-dOpt.VirtualSeconds) > 1e-6 {
				t.Errorf("VirtualSeconds deltas diverge: optimized %v, reference %v",
					dOpt.VirtualSeconds, dRef.VirtualSeconds)
			}
			dRef.VirtualSeconds, dOpt.VirtualSeconds = 0, 0
			if dRef != dOpt {
				t.Errorf("Live deltas diverge:\n optimized %+v\n reference %+v", dOpt, dRef)
			}
			// Pass 2: lockstep stepping — both engines must pop the same
			// event sequence, landing on identical completion clocks with
			// identical backlog at every step.
			ref, err := NewReferenceSim(s, cfg)
			if err != nil {
				t.Fatalf("NewReferenceSim: %v", err)
			}
			opt, err := NewSim(s, cfg)
			if err != nil {
				t.Fatalf("NewSim: %v", err)
			}
			for step := 0; ; step++ {
				if rp, op := ref.Pending(), opt.Pending(); rp != op {
					t.Fatalf("step %d: Pending diverges: reference %d, optimized %d", step, rp, op)
				}
				moreRef, errRef := ref.Step()
				moreOpt, errOpt := opt.Step()
				if (errRef == nil) != (errOpt == nil) {
					t.Fatalf("step %d: reference err %v, optimized err %v", step, errRef, errOpt)
				}
				if errRef != nil {
					t.Fatalf("step %d: %v", step, errRef)
				}
				if moreRef != moreOpt {
					t.Fatalf("step %d: reference more=%v, optimized more=%v", step, moreRef, moreOpt)
				}
				if rn, on := ref.Now(), opt.Now(); rn != on {
					t.Fatalf("step %d: completion clocks diverge: reference %v, optimized %v", step, rn, on)
				}
				if !moreRef {
					break
				}
			}
			ref.Finish()
			opt.Finish()
		})
	}
}

// TestDifferentialRunEntrypoints pins the one-shot drivers too: Run and
// ReferenceRun agree for a representative faulted cell.
func TestDifferentialRunEntrypoints(t *testing.T) {
	s := servingSystem(t)
	cfg := diffGrid()[len(diffGrid())-1]
	mr, err := ReferenceRun(s, cfg)
	if err != nil {
		t.Fatalf("ReferenceRun: %v", err)
	}
	mo, err := Run(s, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(mo, mr) {
		t.Errorf("metrics diverge:\n optimized %+v\n reference %+v", mo, mr)
	}
}

// TestDifferentialTrace runs both simulators with tracers attached and
// requires byte-identical Chrome-trace output: the rebuild may not move,
// rename or re-order a single instrumentation point.
func TestDifferentialTrace(t *testing.T) {
	s := servingSystem(t)
	cfg := SimConfig{
		Mode: Cooperative, Kind: engine.FACIL, Replicas: 2, ArrivalRate: 4,
		Queries: 120, Workload: workload.AlpacaSpec(), Seed: 11,
		QueueCap: 6, DeadlineTTLT: 15, Timeout: 30, MaxRetries: 3,
	}
	trace := func(run func(SimConfig) error) []byte {
		tr := obs.New(1 << 16)
		c := cfg
		c.Tracer = tr
		if err := run(c); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := trace(func(c SimConfig) error { _, err := ReferenceRun(s, c); return err })
	opt := trace(func(c SimConfig) error { _, err := Run(s, c); return err })
	if !bytes.Equal(ref, opt) {
		t.Errorf("trace output diverges: reference %d bytes, optimized %d bytes", len(ref), len(opt))
	}
}

// FuzzSimDifferential fuzzes the optimized Sim against the reference
// over randomized arrival/timeout/fault interleavings: any reachable
// configuration must produce bit-identical Metrics.
func FuzzSimDifferential(f *testing.F) {
	f.Add(int64(1), 2.0, 40, 2, 1, 8, 6, 10.0, 2, 0.0, 0.0, 0.0, 1)
	f.Add(int64(7), 0.3, 25, 1, 0, 1, 0, 0.0, 0, 0.0, 0.0, 0.0, 0)
	f.Add(int64(9), 5.0, 60, 3, 2, 16, 4, 8.0, 3, 15.0, 3.0, 0.2, 2)
	f.Add(int64(3), 1.0, 30, 2, 1, 4, 0, 5.0, 0, 6.0, 2.0, 1.0, 0)
	f.Fuzz(func(t *testing.T, seed int64, rate float64, queries, replicas, mode, preempt, queueCap int,
		timeout float64, retries int, mtbf, mttr, corrupt float64, policy int) {
		cfg := SimConfig{
			Mode:         Mode(clampInt(mode, 0, 2)),
			Kind:         engine.FACIL,
			Replicas:     clampInt(replicas, 1, 4),
			ArrivalRate:  rate,
			Queries:      clampInt(queries, 1, 60),
			Workload:     workload.AlpacaSpec(),
			Seed:         seed,
			QueueCap:     clampInt(queueCap, 0, 16),
			Timeout:      timeout,
			PreemptSteps: clampInt(preempt, 0, 64),
			MaxRetries:   clampInt(retries, 0, 4),
		}
		if mtbf > 0 || corrupt > 0 {
			cfg.Faults = fault.Scenario{
				Seed:             seed ^ 0x9E3779B9,
				LaneMTBF:         mtbf,
				LaneMTTR:         mttr,
				MapIDCorruptRate: corrupt,
			}
			cfg.Policy = Policy(clampInt(policy, 0, 2))
		}
		if cfg.Validate() != nil {
			t.Skip()
		}
		s := servingSystem(t)
		mr, err := ReferenceRun(s, cfg)
		mo, err2 := Run(s, cfg)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("error divergence: reference %v, optimized %v", err, err2)
		}
		if err != nil {
			t.Skip()
		}
		if !reflect.DeepEqual(mo, mr) {
			t.Fatalf("metrics diverge for %+v:\n optimized %+v\n reference %+v", cfg, mo, mr)
		}
	})
}

// clampInt pins v into [lo, hi] (fuzz inputs are unconstrained).
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
