package serve

import (
	"math"
	"math/rand"
	"testing"

	"facil/internal/engine"
)

// streamConfig is the externally-driven sim shape the cluster router
// runs: a Stream-mode two-lane scheduler fed by Inject/InjectResume
// between AdvanceTo horizons. Workload and Queries stay zero — arrivals
// carry their own token lengths.
func streamConfig(replicas, queueCap int) SimConfig {
	return SimConfig{
		Mode:        Cooperative,
		Kind:        engine.FACIL,
		Replicas:    replicas,
		ArrivalRate: 2,
		QueueCap:    queueCap,
		Stream:      true,
	}
}

// drainStream seals a Stream sim and steps it to exhaustion.
func drainStream(tb testing.TB, sim *Sim) Metrics {
	tb.Helper()
	sim.Seal()
	return drainSim(tb, sim)
}

// TestRetractConservation is the migration-flow identity on a two-sim
// fleet: queries retracted from a loaded source and resumed on an idle
// destination leave the source's books balanced (Admitted = Completed +
// TimedOut + Failed + Retracted), arrive exactly once at the
// destination, and every injected query completes somewhere.
func TestRetractConservation(t *testing.T) {
	s := servingSystem(t)
	src, err := NewSim(s, streamConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewSim(s, streamConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := src.Inject(float64(i)*0.05, 256, 64); err != nil {
			t.Fatal(err)
		}
	}
	src.Seal()
	dst.Seal()

	// Barrier loop: advance both sims in lockstep, steal up to two
	// queries per barrier — admission-queued first (free), prefilled
	// second (paying the handoff penalty), exactly the router's order.
	stolen, prefilled := 0, 0
	for barrier := 1.0; ; barrier++ {
		if barrier > 1e4 {
			t.Fatal("fleet never drained")
		}
		if err := src.AdvanceTo(barrier); err != nil {
			t.Fatal(err)
		}
		if err := dst.AdvanceTo(barrier); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			r, ok := src.Retract()
			if !ok {
				r, ok = src.RetractPrefilled()
			}
			if !ok {
				break
			}
			penalty := 0.0
			if r.Prefilled {
				penalty = 0.25
				prefilled++
			}
			if err := dst.InjectResume(barrier, r, penalty); err != nil {
				t.Fatal(err)
			}
			stolen++
		}
		if src.Pending() == 0 && dst.Pending() == 0 {
			break
		}
	}
	if stolen == 0 {
		t.Fatal("barrier loop never stole a query; the scenario is too light to test migration")
	}

	ms := src.Finish()
	md := dst.Finish()
	if ms.Retracted != stolen {
		t.Errorf("source retracted %d, stole %d", ms.Retracted, stolen)
	}
	if got := ms.Completed + ms.TimedOut + ms.Failed + ms.Retracted; got != ms.Admitted {
		t.Errorf("source identity: outcomes %d != admitted %d", got, ms.Admitted)
	}
	if md.Arrived != stolen || md.Admitted != stolen {
		t.Errorf("destination saw %d arrived / %d admitted, want %d both", md.Arrived, md.Admitted, stolen)
	}
	if md.Retracted != 0 {
		t.Errorf("destination retracted %d queries; nothing stole from it", md.Retracted)
	}
	if total := ms.Completed + md.Completed; total != n {
		t.Errorf("fleet completed %d of %d queries", total, n)
	}
}

// TestRetractPrefilledKeepsProgress pins the prefilled-retraction
// contract: the retracted record reports Prefilled with consistent
// decode progress, the source loses exactly that query, and a
// destination resumes it to completion under the handoff penalty.
func TestRetractPrefilledKeepsProgress(t *testing.T) {
	s := servingSystem(t)
	src, err := NewSim(s, streamConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := src.Inject(float64(i)*0.001, 128, 64); err != nil {
			t.Fatal(err)
		}
	}
	src.Seal()
	var r Retracted
	ok := false
	for barrier := 0.5; barrier < 200 && !ok; barrier += 0.5 {
		if err := src.AdvanceTo(barrier); err != nil {
			t.Fatal(err)
		}
		r, ok = src.RetractPrefilled()
	}
	if !ok {
		t.Fatal("no prefilled query ever became retractable; the decode queue never built")
	}
	if !r.Prefilled {
		t.Error("RetractPrefilled returned Prefilled=false")
	}
	if r.StepsDone < 0 || r.StepsDone > r.Decode-1 {
		t.Errorf("inconsistent decode progress %d of %d", r.StepsDone, r.Decode)
	}
	if r.Prefill != 128 || r.Decode != 64 {
		t.Errorf("retracted lengths %d/%d, want 128/64", r.Prefill, r.Decode)
	}

	dst, err := NewSim(s, streamConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.InjectResume(src.Now(), r, 0.25); err != nil {
		t.Fatal(err)
	}
	md := drainStream(t, dst)
	if md.Completed != 1 {
		t.Errorf("destination completed %d, want the one resumed query", md.Completed)
	}
	ms := drainStream(t, src)
	if ms.Completed != n-1 || ms.Retracted != 1 {
		t.Errorf("source completed %d retracted %d, want %d and 1", ms.Completed, ms.Retracted, n-1)
	}
}

// TestRetractionAPIValidation pins the guard rails: retraction refuses
// non-Stream sims, and InjectResume rejects malformed resume records
// rather than corrupting the destination's books.
func TestRetractionAPIValidation(t *testing.T) {
	s := servingSystem(t)
	fixed, err := NewSim(s, simConfig(Cooperative, engine.FACIL, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fixed.Retract(); ok {
		t.Error("Retract succeeded on a non-Stream sim")
	}
	if _, ok := fixed.RetractPrefilled(); ok {
		t.Error("RetractPrefilled succeeded on a non-Stream sim")
	}
	good := Retracted{Arrival: 0, Prefill: 64, Decode: 16}
	if err := fixed.InjectResume(1, good, 0); err == nil {
		t.Error("InjectResume accepted a non-Stream sim")
	}

	sim, err := NewSim(s, streamConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name    string
		at      float64
		r       Retracted
		penalty float64
	}{
		{"zero prefill", 1, Retracted{Prefill: 0, Decode: 16}, 0},
		{"zero decode", 1, Retracted{Prefill: 64, Decode: 0}, 0},
		{"progress without prefill", 1, Retracted{Prefill: 64, Decode: 16, StepsDone: 3}, 0},
		{"progress past the end", 1, Retracted{Prefill: 64, Decode: 16, StepsDone: 16, Prefilled: true}, 0.25},
		{"negative progress", 1, Retracted{Prefill: 64, Decode: 16, StepsDone: -1, Prefilled: true}, 0.25},
		{"negative penalty", 1, good, -1},
		{"NaN penalty", 1, good, math.NaN()},
		{"infinite penalty", 1, good, math.Inf(1)},
		{"NaN time", math.NaN(), good, 0},
		{"arrival after resume", 1, Retracted{Arrival: 2, Prefill: 64, Decode: 16}, 0},
	}
	for _, tc := range bad {
		if err := sim.InjectResume(tc.at, tc.r, tc.penalty); err == nil {
			t.Errorf("%s: InjectResume accepted %+v at %g penalty %g", tc.name, tc.r, tc.at, tc.penalty)
		}
	}
	// The sim stays usable after rejected resumes.
	if err := sim.InjectResume(1, good, 0); err != nil {
		t.Errorf("valid resume rejected after error cases: %v", err)
	}
	if m := drainStream(t, sim); m.Completed != 1 {
		t.Errorf("completed %d, want 1", m.Completed)
	}
}

// TestRetractSteadyStateZeroAllocs gates allocations on the barrier-time
// steal path: once a Stream sim is warm, the router's per-barrier reads
// (Probe) and retractions must not allocate — the re-route phase runs
// inside the serial barrier window on every sync interval.
func TestRetractSteadyStateZeroAllocs(t *testing.T) {
	s := servingSystem(t)
	sim, err := NewSim(s, streamConfig(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	for i := 0; i < n; i++ {
		if err := sim.Inject(float64(i)*0.001, 64, 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.AdvanceTo(1.0); err != nil {
		t.Fatal(err)
	}
	if p := sim.Probe(); p.InSystem < 300 {
		t.Fatalf("only %d queries in system after warmup; backlog too shallow to measure", p.InSystem)
	}
	starved := false
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 20; i++ {
			_ = sim.Probe()
			if _, ok := sim.Retract(); !ok {
				starved = true
				return
			}
		}
	})
	if starved {
		t.Fatal("admission queue drained during measurement; grow the injected backlog")
	}
	if avg != 0 {
		t.Errorf("barrier steal path allocates %.1f times per 20 retractions, want 0", avg)
	}
	drainStream(t, sim)
}

// FuzzStreamRetract drives a randomized two-sim migration schedule and
// checks the conservation identities survive arbitrary mixes of queue
// caps, steal rates and token lengths: per-sim books balance and every
// injected query reaches exactly one terminal outcome fleet-wide.
func FuzzStreamRetract(f *testing.F) {
	f.Add(int64(1), uint8(24), uint8(2), uint8(0))
	f.Add(int64(7), uint8(50), uint8(1), uint8(4))
	f.Add(int64(3), uint8(10), uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, perRaw, capRaw uint8) {
		n := 1 + int(nRaw)%60
		stealPer := int(perRaw) % 4
		queueCap := int(capRaw) % 12
		s := servingSystem(t)
		src, err := NewSim(s, streamConfig(1, queueCap))
		if err != nil {
			t.Fatal(err)
		}
		dst, err := NewSim(s, streamConfig(1, queueCap))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		at := 0.0
		for i := 0; i < n; i++ {
			at += rng.Float64() * 0.1
			if err := src.Inject(at, 1+rng.Intn(256), 1+rng.Intn(64)); err != nil {
				t.Fatal(err)
			}
		}
		src.Seal()
		dst.Seal()
		stolen := 0
		for barrier := 1.0; ; barrier++ {
			if barrier > 1e5 {
				t.Fatal("fleet never drained")
			}
			if err := src.AdvanceTo(barrier); err != nil {
				t.Fatal(err)
			}
			if err := dst.AdvanceTo(barrier); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < stealPer; k++ {
				r, ok := src.Retract()
				if !ok {
					r, ok = src.RetractPrefilled()
				}
				if !ok {
					break
				}
				penalty := 0.0
				if r.Prefilled {
					penalty = 0.25
				}
				if err := dst.InjectResume(barrier, r, penalty); err != nil {
					t.Fatal(err)
				}
				stolen++
			}
			if src.Pending() == 0 && dst.Pending() == 0 {
				break
			}
		}
		ms := src.Finish()
		md := dst.Finish()
		if ms.Retracted != stolen {
			t.Errorf("source retracted %d, stole %d", ms.Retracted, stolen)
		}
		if md.Arrived != stolen {
			t.Errorf("destination arrivals %d != stolen %d", md.Arrived, stolen)
		}
		for _, side := range []struct {
			name string
			m    Metrics
		}{{"src", ms}, {"dst", md}} {
			m := side.m
			if m.Arrived != m.Admitted+m.Rejected {
				t.Errorf("%s: arrived %d != admitted %d + rejected %d", side.name, m.Arrived, m.Admitted, m.Rejected)
			}
			if got := m.Completed + m.TimedOut + m.Failed + m.Retracted; got != m.Admitted {
				t.Errorf("%s: outcomes %d != admitted %d", side.name, got, m.Admitted)
			}
		}
		terminal := ms.Completed + ms.TimedOut + ms.Failed + ms.Rejected +
			md.Completed + md.TimedOut + md.Failed + md.Rejected
		if terminal != n {
			t.Errorf("fleet terminal outcomes %d != injected %d", terminal, n)
		}
	})
}
