package serve

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/fault"
	"facil/internal/obs"
	"facil/internal/stats"
	"facil/internal/workload"
)

// ReferenceSim is the retained heap-based serving simulator: the
// implementation serve.Sim had before the timing-wheel rebuild, kept
// verbatim as the differential-testing oracle (the dram.ReferenceChannel
// pattern). It drives every event through a global container/heap of
// pointer-boxed events and allocates per query; the optimized Sim must
// reproduce its Metrics, Live counter movement and completion clocks
// bit-for-bit. It is not maintained for speed — use Sim for real runs.
type ReferenceSim struct {
	sm       *refSim
	finished bool
}

// NewReferenceSim validates cfg and builds a ready-to-step reference
// simulation, exactly as NewSim does for the optimized engine.
func NewReferenceSim(s *engine.System, cfg SimConfig) (*ReferenceSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PreemptSteps == 0 {
		cfg.PreemptSteps = DefaultPreemptSteps
	}
	ds, err := workload.Generate(cfg.Workload, cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	sm := &refSim{
		cfg:  cfg,
		sys:  s,
		reps: make([]refReplica, cfg.Replicas),
		m:    Metrics{Mode: cfg.Mode, Kind: cfg.Kind, Replicas: cfg.Replicas},
	}
	if cfg.Tracer.Enabled() {
		sm.tr = cfg.Tracer
		sm.pid0 = cfg.TracePIDBase
		sm.qpid = cfg.TracePIDBase + int64(cfg.Replicas)
		sm.initTrace()
	}
	if cfg.Mode == RelayoutHybrid {
		if sm.relay, err = s.RelayoutAllWeightsSeconds(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var clock float64
	for i, q := range ds.Queries {
		clock += rng.ExpFloat64() / cfg.ArrivalRate
		sm.push(refEvent{at: clock, kind: evArrival, q: &query{
			id: i, arrival: clock, prefill: q.Prefill, decode: q.Decode,
		}})
	}
	sm.open = cfg.Queries
	if cfg.MaxRetries > 0 {
		sm.retryBase, sm.retryCap = cfg.RetryBase, cfg.RetryCap
		if sm.retryBase == 0 {
			sm.retryBase = DefaultRetryBase
		}
		if sm.retryCap == 0 {
			sm.retryCap = DefaultRetryCap
		}
		sm.retryRNG = rand.New(rand.NewSource(cfg.Seed + 2))
	}
	if !cfg.Faults.Empty() {
		if err := sm.initFaults(s); err != nil {
			return nil, err
		}
	}
	Live.runsStarted.Add(1)
	return &ReferenceSim{sm: sm}, nil
}

// ReferenceRun drives a ReferenceSim to exhaustion and returns its
// Metrics — the oracle counterpart of Run.
func ReferenceRun(s *engine.System, cfg SimConfig) (Metrics, error) {
	sim, err := NewReferenceSim(s, cfg)
	if err != nil {
		return Metrics{}, err
	}
	for {
		more, err := sim.Step()
		if err != nil {
			return Metrics{}, err
		}
		if !more {
			break
		}
	}
	return sim.Finish(), nil
}

// Step processes the next pending event and reports whether any events
// remain afterwards.
func (s *ReferenceSim) Step() (bool, error) { return s.sm.step() }

// Now returns the simulation's virtual clock in seconds.
func (s *ReferenceSim) Now() float64 { return s.sm.now }

// Pending returns the number of scheduled events not yet processed.
func (s *ReferenceSim) Pending() int { return s.sm.evs.Len() }

// Finish reduces the run into its Metrics (idempotent in the Live
// counters, like Sim.Finish).
func (s *ReferenceSim) Finish() Metrics {
	if !s.finished {
		s.finished = true
		Live.runsFinished.Add(1)
	}
	return s.sm.finish()
}

// refEvent is one entry of the reference simulator's time-ordered heap:
// the pre-wheel pointer-boxed event layout.
type refEvent struct {
	at     float64
	seq    int64
	kind   evKind
	q      *query
	rep    int
	steps  int
	dur    float64
	factor float64
	soc    bool
	until  float64
}

// refEventHeap is the reference min-heap ordered by (at, seq).
type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push appends a boxed event (container/heap plumbing).
func (h *refEventHeap) Push(x any) { *h = append(*h, x.(*refEvent)) }

// Pop removes and returns the last element (container/heap plumbing).
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// refArena is the reference simulator's pointer free list — the original
// eventArena, retained alongside the heap it fed.
type refArena struct {
	free []*refEvent
}

func (a *refArena) get() *refEvent {
	if n := len(a.free); n > 0 {
		e := a.free[n-1]
		a.free = a.free[:n-1]
		return e
	}
	return new(refEvent)
}

func (a *refArena) put(e *refEvent) {
	*e = refEvent{}
	a.free = append(a.free, e)
}

// refReplica is one device in the reference simulator, with slice-backed
// pending queues.
type refReplica struct {
	socBusy   bool
	pimBusy   bool
	pimFreeAt float64
	decodeQ   []*query

	pimDown   bool
	downAt    float64
	downUntil float64
	brk       Breaker
	socQ      []*query
}

// refSim is the run state of one reference simulation — a field-for-field
// copy of the pre-wheel sim.
type refSim struct {
	cfg   SimConfig
	sys   *engine.System
	evs   refEventHeap
	arena refArena
	seq   int64
	reps  []refReplica
	wait  []*query
	relay float64

	now      float64
	inSystem int
	busySoC  int
	busyPIM  int
	lastT    float64

	open int

	flt         *faultState
	failoverPen float64
	brkCooldown float64

	retryRNG  *rand.Rand
	retryBase float64
	retryCap  float64

	socBusySecs, pimBusySecs float64

	m     Metrics
	ttfts []float64
	ttlts []float64
	tbts  []float64

	tr   *obs.Tracer
	pid0 int64
	qpid int64
}

func (sm *refSim) initTrace() {
	label := sm.cfg.TraceLabel
	if label == "" {
		label = sm.cfg.Mode.String()
	}
	for ri := 0; ri < sm.cfg.Replicas; ri++ {
		pid := sm.pid0 + int64(ri)
		sm.tr.ProcessName(pid, fmt.Sprintf("%s replica %d", label, ri))
		sm.tr.ThreadName(pid, traceLaneSoC, "SoC prefill lane")
		sm.tr.ThreadName(pid, traceLanePIM, "PIM decode lane")
	}
	sm.tr.ProcessName(sm.qpid, label+" admission queue")
}

func (sm *refSim) traceSpan(ri int, lane int64, name string, q *query, start, dur float64) {
	if sm.tr == nil {
		return
	}
	sm.tr.CompleteArg(sm.pid0+int64(ri), lane, name, start*traceUSPerS, dur*traceUSPerS, "query", float64(q.id))
}

func (sm *refSim) traceInstant(name string, q *query) {
	if sm.tr == nil {
		return
	}
	sm.tr.InstantArg(sm.qpid, 0, name, sm.now*traceUSPerS, "query", float64(q.id))
}

func (sm *refSim) traceDepth() {
	if sm.tr == nil {
		return
	}
	sm.tr.Counter(sm.qpid, "in-system queries", sm.now*traceUSPerS, float64(sm.inSystem))
}

func (sm *refSim) push(ev refEvent) {
	e := sm.arena.get()
	*e = ev
	e.seq = sm.seq
	sm.seq++
	heap.Push(&sm.evs, e)
}

func (sm *refSim) advance(t float64) {
	if dt := t - sm.lastT; dt > 0 {
		sm.m.QueueDepth.Add(float64(sm.inSystem), dt)
		sm.m.SoCBusy.Add(float64(sm.busySoC), dt)
		sm.m.PIMBusy.Add(float64(sm.busyPIM), dt)
		sm.lastT = t
		Live.addVirtual(dt)
	}
	sm.now = t
}

func (sm *refSim) step() (bool, error) {
	for sm.evs.Len() > 0 {
		e := heap.Pop(&sm.evs).(*refEvent)
		if (e.kind == evLaneDown || e.kind == evLaneUp) && sm.open == 0 {
			sm.arena.put(e)
			continue
		}
		sm.advance(e.at)
		Live.events.Add(1)
		var err error
		switch e.kind {
		case evArrival:
			err = sm.onArrival(e.q)
		case evPrefillDone:
			err = sm.onPrefillDone(e.q, e.rep)
		case evQuantumDone:
			err = sm.onQuantumDone(e)
		case evLaneDown:
			err = sm.onLaneDown(e.rep, e.until)
		case evLaneUp:
			err = sm.onLaneUp(e.rep)
		}
		sm.arena.put(e)
		return true, err
	}
	return false, nil
}

func (sm *refSim) onArrival(q *query) error {
	if q.attempts == 0 {
		sm.m.Arrived++
		Live.arrived.Add(1)
	}
	if sm.cfg.QueueCap > 0 && sm.inSystem >= sm.cfg.QueueCap {
		if sm.cfg.MaxRetries > 0 && q.attempts < sm.cfg.MaxRetries {
			q.attempts++
			sm.m.Retries++
			Live.retries.Add(1)
			sm.traceInstant("retry", q)
			sm.push(refEvent{at: sm.now + sm.backoff(q.attempts), kind: evArrival, q: q})
			return nil
		}
		sm.m.Rejected++
		Live.rejected.Add(1)
		sm.open--
		sm.traceInstant("reject", q)
		return nil
	}
	sm.m.Admitted++
	Live.admitted.Add(1)
	sm.maybeCorrupt(q)
	sm.inSystem++
	if sm.inSystem > sm.m.MaxQueueDepth {
		sm.m.MaxQueueDepth = sm.inSystem
	}
	sm.traceInstant("arrival", q)
	sm.traceDepth()
	sm.wait = append(sm.wait, q)
	return sm.dispatchPrefills()
}

func (sm *refSim) expired(q *query) bool {
	return sm.cfg.Timeout > 0 && sm.now-q.arrival > sm.cfg.Timeout
}

func (sm *refSim) abort(q *query) {
	sm.m.TimedOut++
	Live.timedOut.Add(1)
	sm.inSystem--
	sm.open--
	sm.traceInstant("timeout", q)
	sm.traceDepth()
}

func (sm *refSim) dispatchPrefills() error {
	for len(sm.wait) > 0 {
		q := sm.wait[0]
		if sm.expired(q) {
			sm.wait = sm.wait[1:]
			sm.abort(q)
			continue
		}
		ri := -1
		for i := range sm.reps {
			r := &sm.reps[i]
			if r.socBusy {
				continue
			}
			if sm.cfg.Mode == Serial && (r.pimBusy || len(r.decodeQ) > 0) {
				continue
			}
			ri = i
			break
		}
		if ri < 0 {
			return nil
		}
		sm.wait = sm.wait[1:]
		if err := sm.startPrefill(q, ri); err != nil {
			return err
		}
	}
	return nil
}

func (sm *refSim) startPrefill(q *query, ri int) error {
	r := &sm.reps[ri]
	switch sm.cfg.Mode {
	case Serial:
		ttft, err := sm.sys.TTFT(sm.cfg.Kind, q.prefill)
		if err != nil {
			return err
		}
		ttlt, err := sm.sys.TTLT(sm.cfg.Kind, q.prefill, q.decode)
		if err != nil {
			return err
		}
		r.socBusy, r.pimBusy = true, true
		sm.busySoC++
		sm.busyPIM++
		sm.socBusySecs += ttlt
		sm.pimBusySecs += ttlt
		sm.traceSpan(ri, traceLaneSoC, "prefill", q, sm.now, ttft)
		sm.push(refEvent{at: sm.now + ttft, kind: evPrefillDone, q: q, rep: ri})
		return nil
	default:
		pre, err := sm.sys.TTFTStatic(sm.cfg.Kind, q.prefill)
		if err != nil {
			return err
		}
		pre *= sm.factorAt(sm.now)
		if sm.cfg.Mode == RelayoutHybrid {
			switch sm.cfg.Kind {
			case engine.HybridStatic, engine.HybridDynamic:
				// Re-layout already inside TTFTStatic.
			default:
				pre += sm.relay
			}
			if t := sm.now + sm.relay; t > r.pimFreeAt {
				r.pimFreeAt = t
			}
			sm.traceSpan(ri, traceLanePIM, "relayout", q, sm.now, sm.relay)
		}
		r.socBusy = true
		sm.busySoC++
		sm.socBusySecs += pre
		sm.traceSpan(ri, traceLaneSoC, "prefill", q, sm.now, pre)
		sm.push(refEvent{at: sm.now + pre, kind: evPrefillDone, q: q, rep: ri})
		return nil
	}
}

func (sm *refSim) onPrefillDone(q *query, ri int) error {
	r := &sm.reps[ri]
	q.firstToken = sm.now
	q.prevToken = sm.now
	sm.ttfts = append(sm.ttfts, sm.now-q.arrival)
	if sm.cfg.Mode == Serial {
		if q.decode <= 1 {
			return sm.completeSerial(q, ri)
		}
		dur, err := sm.quantumSeconds(q, q.decode-1)
		if err != nil {
			return err
		}
		sm.push(refEvent{at: sm.now + dur, kind: evQuantumDone, q: q, rep: ri, steps: q.decode - 1})
		return nil
	}
	r.socBusy = false
	sm.busySoC--
	if q.decode <= 1 {
		sm.complete(q)
	} else if !q.corrupt || sm.onCorruptHandoff(q) {
		r.decodeQ = append(r.decodeQ, q)
	}
	if err := sm.dispatchPrefills(); err != nil {
		return err
	}
	return sm.dispatchDecode(ri)
}

func (sm *refSim) quantumSeconds(q *query, steps int) (float64, error) {
	return sm.quantumSecondsKind(q, steps, sm.cfg.Kind, 1)
}

func (sm *refSim) quantumSecondsKind(q *query, steps int, kind engine.Kind, factor float64) (float64, error) {
	var t float64
	for i := 0; i < steps; i++ {
		st, err := sm.sys.DecodeStepSeconds(kind, q.prefill+q.stepsDone+i+1)
		if err != nil {
			return 0, err
		}
		t += st * factor
	}
	return t, nil
}

func (sm *refSim) emitTokens(q *query, start float64, steps int, kind engine.Kind, factor float64) error {
	t := start
	for i := 0; i < steps; i++ {
		st, err := sm.sys.DecodeStepSeconds(kind, q.prefill+q.stepsDone+i+1)
		if err != nil {
			return err
		}
		t += st * factor
		sm.tbts = append(sm.tbts, t-q.prevToken)
		q.prevToken = t
	}
	q.stepsDone += steps
	return nil
}

func (sm *refSim) dispatchDecode(ri int) error {
	r := &sm.reps[ri]
	for !r.pimBusy && len(r.decodeQ) > 0 {
		q := r.decodeQ[0]
		r.decodeQ = r.decodeQ[1:]
		if sm.expired(q) {
			sm.abort(q)
			continue
		}
		if sm.flt != nil && !sm.acquirePIM(ri) {
			if err := sm.degrade(q, ri); err != nil {
				return err
			}
			continue
		}
		steps := q.decode - 1 - q.stepsDone
		if steps > sm.cfg.PreemptSteps {
			steps = sm.cfg.PreemptSteps
		}
		start := sm.now
		if r.pimFreeAt > start {
			start = r.pimFreeAt
		}
		factor := sm.factorAt(start)
		dur, err := sm.quantumSecondsKind(q, steps, sm.cfg.Kind, factor)
		if err != nil {
			return err
		}
		penalty := q.penalty
		q.penalty = 0
		r.pimBusy = true
		sm.busyPIM++
		sm.pimBusySecs += penalty + dur
		if penalty > 0 {
			sm.traceSpan(ri, traceLanePIM, "fault-recovery", q, start, penalty)
		}
		sm.push(refEvent{
			at: start + penalty + dur, kind: evQuantumDone, q: q, rep: ri,
			steps: steps, dur: dur, factor: factor,
		})
	}
	if sm.flt != nil && sm.cfg.Policy != PolicyNone {
		return sm.dispatchSoCDecode(ri)
	}
	return nil
}

func (sm *refSim) onQuantumDone(e *refEvent) error {
	q, ri, steps := e.q, e.rep, e.steps
	r := &sm.reps[ri]
	if sm.cfg.Mode == Serial {
		if err := sm.emitTokens(q, q.firstToken, steps, sm.cfg.Kind, 1); err != nil {
			return err
		}
		sm.traceSpan(ri, traceLanePIM, "decode", q, q.firstToken, sm.now-q.firstToken)
		return sm.completeSerial(q, ri)
	}
	kind, lane := sm.cfg.Kind, traceLanePIM
	if e.soc {
		kind, lane = engine.SoCOnly, traceLaneSoC
	}
	if err := sm.emitTokens(q, sm.now-e.dur, steps, kind, e.factor); err != nil {
		return err
	}
	sm.traceSpan(ri, lane, "decode", q, sm.now-e.dur, e.dur)
	if e.soc {
		r.socBusy = false
		sm.busySoC--
	} else {
		r.pimBusy = false
		sm.busyPIM--
	}
	if q.stepsDone >= q.decode-1 {
		sm.complete(q)
	} else {
		r.decodeQ = append(r.decodeQ, q)
	}
	if e.soc {
		if err := sm.dispatchPrefills(); err != nil {
			return err
		}
	}
	return sm.dispatchDecode(ri)
}

func (sm *refSim) complete(q *query) {
	sm.m.Completed++
	Live.completed.Add(1)
	sm.inSystem--
	sm.open--
	ttlt := q.prevToken - q.arrival
	sm.ttlts = append(sm.ttlts, ttlt)
	if sm.cfg.DeadlineTTLT == 0 || ttlt <= sm.cfg.DeadlineTTLT {
		sm.m.SLOMet++
	}
	sm.traceInstant("complete", q)
	sm.traceDepth()
}

func (sm *refSim) completeSerial(q *query, ri int) error {
	r := &sm.reps[ri]
	r.socBusy, r.pimBusy = false, false
	sm.busySoC--
	sm.busyPIM--
	sm.complete(q)
	return sm.dispatchPrefills()
}

func (sm *refSim) finish() Metrics {
	m := &sm.m
	m.TTFT = stats.QuantilesOf(sm.ttfts)
	m.TTLT = stats.QuantilesOf(sm.ttlts)
	m.TBT = stats.QuantilesOf(sm.tbts)
	m.Makespan = sm.now
	if m.Makespan > 0 {
		m.ThroughputQPS = float64(m.Completed) / m.Makespan
		m.GoodputQPS = float64(m.SLOMet) / m.Makespan
		rs := float64(sm.cfg.Replicas) * m.Makespan
		m.SoCUtilization = sm.socBusySecs / rs
		m.PIMUtilization = sm.pimBusySecs / rs
	}
	m.Availability = 1
	if sm.flt != nil {
		for ri := range sm.reps {
			if sm.reps[ri].pimDown {
				sm.flt.residualDown += sm.now - sm.reps[ri].downAt
			}
		}
		m.LaneDownSecs = sm.flt.outages.TotalDown + sm.flt.residualDown
		m.LaneMTTR = sm.flt.outages.MTTR()
		if rs := float64(sm.cfg.Replicas) * m.Makespan; rs > 0 {
			m.Availability = 1 - m.LaneDownSecs/rs
			if m.Availability < 0 {
				m.Availability = 0
			}
		}
	}
	return *m
}

// Fault layer (reference copies of the sim methods in fault.go).

func (sm *refSim) initFaults(s *engine.System) error {
	fs := &faultState{sc: sm.cfg.Faults, thermal: 1}
	if len(fs.sc.Thermal) > 0 {
		f, err := dram.ThrottleFactor(s.Platform.Spec, fs.sc.EffectiveRefreshMult())
		if err != nil {
			return err
		}
		fs.thermal = f
	}
	if fs.sc.MapIDCorruptRate > 0 {
		fs.crng = rand.New(rand.NewSource(fs.sc.Seed ^ 0x6A09E667))
	}
	fs.lanes = make([]*fault.LaneFaults, sm.cfg.Replicas)
	for ri := range fs.lanes {
		fs.lanes[ri] = fs.sc.Lanes(ri)
		if w, ok := fs.lanes[ri].Next(); ok {
			sm.push(refEvent{at: w.Start, kind: evLaneDown, rep: ri, until: w.End})
		}
	}
	sm.flt = fs
	sm.failoverPen = sm.cfg.FailoverPenalty
	if sm.failoverPen == 0 {
		sm.failoverPen = DefaultFailoverPenalty
	}
	sm.brkCooldown = sm.cfg.BreakerCooldown
	if sm.brkCooldown == 0 {
		sm.brkCooldown = DefaultBreakerCooldown
	}
	return nil
}

func (sm *refSim) factorAt(t float64) float64 {
	if sm.flt == nil || sm.flt.thermal == 1 || !sm.flt.sc.ThermalAt(t) {
		return 1
	}
	return sm.flt.thermal
}

func (sm *refSim) maybeCorrupt(q *query) {
	if sm.flt == nil || sm.flt.crng == nil {
		return
	}
	if sm.flt.crng.Float64() < sm.flt.sc.MapIDCorruptRate {
		q.corrupt = true
		sm.m.CorruptMapIDs++
	}
}

func (sm *refSim) onCorruptHandoff(q *query) bool {
	if sm.cfg.Policy == PolicyNone {
		sm.failQuery(q, "corrupt-mapid")
		return false
	}
	q.penalty += MapIDRepairSeconds
	sm.m.CorruptRepaired++
	sm.traceInstant("mapid-repair", q)
	return true
}

func (sm *refSim) failQuery(q *query, why string) {
	sm.m.Failed++
	Live.failed.Add(1)
	sm.inSystem--
	sm.open--
	sm.traceInstant(why, q)
	sm.traceDepth()
}

func (sm *refSim) onLaneDown(ri int, until float64) error {
	r := &sm.reps[ri]
	if !r.pimDown {
		r.pimDown = true
		r.downAt = sm.now
		sm.m.LaneFailures++
		sm.traceFault("lane-down", ri)
	}
	if until > r.downUntil {
		r.downUntil = until
	}
	sm.push(refEvent{at: until, kind: evLaneUp, rep: ri})
	if w, ok := sm.flt.lanes[ri].Next(); ok {
		sm.push(refEvent{at: w.Start, kind: evLaneDown, rep: ri, until: w.End})
	}
	return sm.dispatchDecode(ri)
}

func (sm *refSim) onLaneUp(ri int) error {
	r := &sm.reps[ri]
	if !r.pimDown || sm.now < r.downUntil {
		return nil
	}
	r.pimDown = false
	sm.flt.outages.Record(sm.now - r.downAt)
	sm.traceFault("lane-up", ri)
	return sm.dispatchDecode(ri)
}

func (sm *refSim) pimLive(ri int) bool {
	r := &sm.reps[ri]
	if sm.cfg.BreakerThreshold > 0 && r.brk.Blocked(sm.now, sm.brkCooldown) {
		return false
	}
	return !r.pimDown
}

func (sm *refSim) acquirePIM(ri int) bool {
	r := &sm.reps[ri]
	threshold := sm.cfg.BreakerThreshold
	if threshold > 0 && !r.brk.Admit(sm.now, sm.brkCooldown) {
		return false
	}
	if r.pimDown {
		if threshold > 0 && r.brk.Failure(sm.now, threshold) {
			sm.m.BreakerOpens++
			sm.traceFault("breaker-open", ri)
		}
		return false
	}
	if threshold > 0 && r.brk.Success() {
		sm.traceFault("breaker-close", ri)
	}
	return true
}

func (sm *refSim) liveReplica(ri int) int {
	for i := range sm.reps {
		if i != ri && sm.pimLive(i) && !sm.reps[i].pimBusy && len(sm.reps[i].decodeQ) == 0 {
			return i
		}
	}
	return -1
}

func (sm *refSim) degrade(q *query, ri int) error {
	switch sm.cfg.Policy {
	case PolicyFailover:
		if rj := sm.liveReplica(ri); rj >= 0 {
			sm.m.FailedOver++
			Live.failedOver.Add(1)
			q.penalty += sm.failoverPen
			sm.traceInstant("failover", q)
			sm.reps[rj].decodeQ = append(sm.reps[rj].decodeQ, q)
			return sm.dispatchDecode(rj)
		}
		fallthrough
	case PolicySoCFallback:
		if !q.degraded {
			q.degraded = true
			sm.m.Degraded++
			Live.degraded.Add(1)
			sm.traceInstant("degrade", q)
		}
		sm.reps[ri].socQ = append(sm.reps[ri].socQ, q)
		return sm.dispatchSoCDecode(ri)
	default:
		sm.failQuery(q, "lane-fail")
		return nil
	}
}

func (sm *refSim) dispatchSoCDecode(ri int) error {
	r := &sm.reps[ri]
	for !r.socBusy && len(r.socQ) > 0 {
		q := r.socQ[0]
		r.socQ = r.socQ[1:]
		if sm.expired(q) {
			sm.abort(q)
			continue
		}
		steps := q.decode - 1 - q.stepsDone
		if steps > sm.cfg.PreemptSteps {
			steps = sm.cfg.PreemptSteps
		}
		factor := sm.factorAt(sm.now)
		dur, err := sm.quantumSecondsKind(q, steps, engine.SoCOnly, factor)
		if err != nil {
			return err
		}
		penalty := q.penalty
		q.penalty = 0
		r.socBusy = true
		sm.busySoC++
		sm.socBusySecs += penalty + dur
		if penalty > 0 {
			sm.traceSpan(ri, traceLaneSoC, "fault-recovery", q, sm.now, penalty)
		}
		sm.push(refEvent{
			at: sm.now + penalty + dur, kind: evQuantumDone, q: q, rep: ri,
			steps: steps, dur: dur, factor: factor, soc: true,
		})
	}
	return nil
}

func (sm *refSim) backoff(attempt int) float64 {
	d := sm.retryBase * math.Pow(2, float64(attempt-1))
	if d > sm.retryCap {
		d = sm.retryCap
	}
	return d/2 + sm.retryRNG.Float64()*d/2
}

func (sm *refSim) traceFault(name string, ri int) {
	if sm.tr == nil {
		return
	}
	sm.tr.InstantArg(sm.pid0+int64(ri), traceLanePIM, name, sm.now*traceUSPerS, "replica", float64(ri))
}
