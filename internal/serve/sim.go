package serve

import (
	"fmt"
	"math"
	"math/rand"

	"facil/internal/engine"
	"facil/internal/fault"
	"facil/internal/obs"
	"facil/internal/stats"
	"facil/internal/workload"
)

// Mode selects how a replica's two lanes — the SoC (prefill GEMM) lane
// and the PIM (decode GEMV) lane — are scheduled against each other.
type Mode int

const (
	// Serial reproduces the old closed-form queue: one query occupies
	// the whole device from prefill start to last token, nothing
	// overlaps. This is the pre-FACIL on-device baseline.
	Serial Mode = iota
	// Cooperative is the FACIL operating point: one weight copy serves
	// both processors, so the SoC lane prefills query B while the PIM
	// lane decodes query A. Prefill always takes the SoC route (the PIM
	// lane is reserved for decode).
	Cooperative
	// RelayoutHybrid is the paper's baseline under the same two-lane
	// scheduler: every prefill handoff first re-lays the weights into
	// the SoC layout (cost from internal/relayout), and the PIM lane
	// stalls for that window because the weights are in flight.
	RelayoutHybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case Cooperative:
		return "cooperative"
	case RelayoutHybrid:
		return "relayout-hybrid"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode resolves a command-line mode name.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Serial, Cooperative, RelayoutHybrid} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown mode %q (serial, cooperative, relayout-hybrid)", s)
}

// Modes lists all scheduling modes in presentation order.
func Modes() []Mode { return []Mode{Serial, Cooperative, RelayoutHybrid} }

// SimConfig describes one event-driven serving scenario.
type SimConfig struct {
	// Mode schedules the lanes; Kind selects the latency model design.
	Mode Mode
	Kind engine.Kind
	// Replicas is the number of identical devices pulling from one
	// admission queue (1 = single on-device accelerator).
	Replicas int
	// ArrivalRate is the mean arrival rate in queries/second
	// (exponential inter-arrival gaps).
	ArrivalRate float64
	// Queries is the number of simulated queries.
	Queries int
	// Workload samples the (prefill, decode) lengths.
	Workload workload.Spec
	// Seed drives arrivals and lengths. Every Run owns its RNG, so
	// concurrent sweep points never share arrival state.
	Seed int64
	// QueueCap bounds the number of queries in the system (waiting plus
	// executing); arrivals beyond it are rejected. 0 = unbounded.
	QueueCap int
	// DeadlineTTLT is the SLO on arrival-to-last-token: completions
	// within it count toward goodput. 0 disables the SLO (goodput ==
	// throughput).
	DeadlineTTLT float64
	// Timeout hard-aborts a query whose age exceeds it, checked at the
	// scheduling boundaries (prefill dispatch and decode preemption
	// points). 0 = never.
	Timeout float64
	// PreemptSteps is the decode-lane scheduling quantum in decode
	// steps: after that many tokens the lane rotates to the next
	// waiting query (round-robin). 0 selects DefaultPreemptSteps.
	PreemptSteps int
	// Tracer, when enabled, records the run's structured timeline —
	// per-lane occupancy spans, queue-depth counters, admission/
	// rejection/timeout instants and re-layout windows — in trace-event
	// form (see internal/obs). A nil tracer costs one pointer test per
	// instrumentation point and records nothing.
	Tracer *obs.Tracer
	// TracePIDBase offsets this run's trace process ids so several
	// sweep points can share one tracer without colliding: the run uses
	// pids [TracePIDBase, TracePIDBase+Replicas] — one per replica plus
	// one for the admission-queue counter track.
	TracePIDBase int64
	// TraceLabel prefixes the run's trace track names (defaults to the
	// mode name), letting sweep points identify themselves in Perfetto.
	TraceLabel string

	// Faults is the injected fault scenario. The zero value disables
	// the fault layer entirely: the run draws no fault randomness,
	// schedules no fault events, and is byte-identical to a faultless
	// build. Non-empty scenarios require a two-lane mode (not Serial).
	Faults fault.Scenario
	// Policy selects the degradation response to PIM-lane loss and
	// detected MapID corruption (PolicyNone fails affected queries).
	Policy Policy
	// FailoverPenalty is the decode-migration cost in seconds under
	// PolicyFailover (0 = DefaultFailoverPenalty).
	FailoverPenalty float64
	// BreakerThreshold opens a replica's circuit breaker after that
	// many consecutive failed PIM dispatches (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell in seconds before a
	// half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown float64
	// MaxRetries is the client-side retry budget of a rejected
	// arrival: each retry re-submits the query after a jittered,
	// capped exponential backoff; exhausting the budget counts the
	// query as Rejected. 0 disables retries.
	MaxRetries int
	// RetryBase and RetryCap bound the exponential backoff in seconds
	// (0 = DefaultRetryBase / DefaultRetryCap).
	RetryBase float64
	RetryCap  float64

	// Stream marks an externally-driven run: instead of generating
	// Queries arrivals from Workload at construction, the host feeds
	// arrivals one at a time with (*Sim).Inject while moving virtual
	// time forward with (*Sim).AdvanceTo, then calls (*Sim).Seal when
	// the stream ends. Queries must be 0 and Workload is unused;
	// ArrivalRate remains required as the expected offered rate (it
	// sizes the timing wheel's tick). The cluster router drives one
	// Stream-mode Sim per fleet device.
	Stream bool
	// NoTBT drops the per-token inter-token-gap samples (Metrics.TBT
	// reports zero quantiles). A fleet host running hundreds of devices
	// over 1e5+ queries sets it to bound sample memory; TTFT and TTLT
	// are unaffected.
	NoTBT bool
}

// DefaultPreemptSteps is the decode quantum when SimConfig leaves it 0.
const DefaultPreemptSteps = 8

// Validate rejects degenerate scenarios: non-positive sizes, negative
// limits, NaN/Inf rates or durations anywhere (including the fault and
// retry knobs), unknown policies, and fault injection in Serial mode
// (the fault model targets the two-lane schedulers).
func (c SimConfig) Validate() error {
	if badRate(c.ArrivalRate) {
		return fmt.Errorf("serve: arrival rate must be positive and finite, got %g", c.ArrivalRate)
	}
	if c.Stream {
		if c.Queries != 0 {
			return fmt.Errorf("serve: Stream mode takes arrivals from Inject; Queries must be 0, got %d", c.Queries)
		}
		if c.MaxRetries > 0 {
			return fmt.Errorf("serve: Stream mode leaves retry decisions to the host; MaxRetries must be 0")
		}
	} else if c.Queries <= 0 {
		return fmt.Errorf("serve: query count must be positive")
	}
	if c.Replicas <= 0 {
		return fmt.Errorf("serve: replica count must be positive")
	}
	for name, v := range map[string]float64{
		"DeadlineTTLT":    c.DeadlineTTLT,
		"Timeout":         c.Timeout,
		"FailoverPenalty": c.FailoverPenalty,
		"BreakerCooldown": c.BreakerCooldown,
		"RetryBase":       c.RetryBase,
		"RetryCap":        c.RetryCap,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("serve: %s must be a finite non-negative duration, got %g", name, v)
		}
	}
	if c.QueueCap < 0 || c.PreemptSteps < 0 || c.MaxRetries < 0 || c.BreakerThreshold < 0 {
		return fmt.Errorf("serve: negative limit in %+v", c)
	}
	if c.RetryCap > 0 && c.RetryBase > c.RetryCap {
		return fmt.Errorf("serve: RetryBase %g exceeds RetryCap %g", c.RetryBase, c.RetryCap)
	}
	if c.MaxRetries > 0 && c.QueueCap == 0 {
		return fmt.Errorf("serve: retries require a bounded queue (QueueCap > 0); nothing rejects otherwise")
	}
	if c.Policy < PolicyNone || c.Policy > PolicyFailover {
		return fmt.Errorf("serve: unknown policy %d", c.Policy)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if !c.Faults.Empty() && c.Mode == Serial {
		return fmt.Errorf("serve: fault injection requires a two-lane mode (cooperative or relayout-hybrid), not serial")
	}
	return nil
}

// badRate reports a rate that is non-positive, NaN or infinite.
func badRate(v float64) bool {
	return !(v > 0) || math.IsInf(v, 0)
}

// Metrics summarizes one event-driven serving run.
type Metrics struct {
	Mode     Mode
	Kind     engine.Kind
	Replicas int

	// Query accounting: Arrived = Admitted + Rejected and
	// Admitted = Completed + TimedOut + Failed + Retracted (Failed is
	// zero without a fault scenario and Retracted is zero outside
	// Stream-mode migration, reducing to the pre-fault identities).
	// Each query counts once regardless of retries: Rejected counts
	// only queries whose retry budget ran out.
	Arrived, Admitted, Rejected int
	Completed, TimedOut         int
	// Failed counts queries terminally lost to faults: PolicyNone
	// decode on a dead PIM lane, or silent MapID mis-translation.
	Failed int
	// Retracted counts queries pulled back out of this sim by the
	// Stream-mode retraction API (cross-device migration): admitted
	// here, finished elsewhere. A migrated query re-counts as Arrived
	// and Admitted at its destination, so fleet-level identities sum
	// the per-device ones plus the migration flow.
	Retracted int

	// Degraded counts queries that ran at least one decode quantum on
	// the SoC fallback path; FailedOver counts decode migrations to
	// another replica; Retries counts client-side re-submissions after
	// a rejection; BreakerOpens counts circuit-breaker open
	// transitions (including half-open reopens).
	Degraded, FailedOver, Retries, BreakerOpens int
	// CorruptMapIDs counts queries whose PTE MapID the scenario
	// corrupted; CorruptRepaired the subset caught by the validating
	// MC frontend and repaired by a page-table re-walk (the rest
	// surface in Failed).
	CorruptMapIDs, CorruptRepaired int

	// LaneFailures is the number of PIM-lane outages that began during
	// the run; LaneDownSecs their summed duration (clipped to the
	// makespan); LaneMTTR the mean observed repair time of outages
	// that were repaired within the run.
	LaneFailures int
	LaneDownSecs float64
	LaneMTTR     float64
	// Availability is the PIM-lane up fraction over replica-seconds of
	// makespan (1 with no faults).
	Availability float64

	// TTFT is arrival to first token, TTLT arrival to last token, TBT
	// the gap between consecutive tokens of one query (including
	// preemption wait). All in seconds, over completed queries.
	TTFT, TTLT, TBT stats.Quantiles

	// Makespan is simulation start (t=0) to the last event; the first
	// arrival lands one exponential gap after t=0, matching the legacy
	// Simulate clock (its utilization divides by the same span).
	Makespan float64
	// ThroughputQPS is completions per second of makespan; GoodputQPS
	// counts only completions within DeadlineTTLT.
	ThroughputQPS, GoodputQPS float64
	// SLOMet is the completion count behind GoodputQPS.
	SLOMet int

	// SoCUtilization and PIMUtilization are busy-seconds over
	// replica-seconds per lane type.
	SoCUtilization, PIMUtilization float64

	// QueueDepth is the time-weighted distribution of in-system queries
	// (waiting + executing); SoCBusy/PIMBusy the time-weighted busy-lane
	// counts (0..Replicas).
	QueueDepth       stats.TimeHist
	SoCBusy, PIMBusy stats.TimeHist
	// MaxQueueDepth is the deepest in-system backlog observed.
	MaxQueueDepth int
}

// query is one request flowing through the simulator. The optimized sim
// stores all of a run's queries in one slab, in arrival order, and
// threads pending FIFOs through the intrusive next link; the reference
// sim heap-allocates them and leaves next untouched.
type query struct {
	id      int
	arrival float64
	// start is the query's position in this sim's arrival stream — the
	// instant it enters admission. It equals arrival everywhere except
	// for migrated queries re-injected via InjectResume, which keep
	// their original arrival (latency and deadline accounting never
	// forget the wait on the retracting device) while entering this
	// sim's stream at the re-injection barrier.
	start           float64
	prefill, decode int
	stepsDone       int     // decode steps finished (of decode-1)
	firstToken      float64 // prefill completion (token 1)
	prevToken       float64 // last emitted token (TBT anchor)

	// next is the intrusive pending-list link (-1 = none). A query sits
	// in at most one place at a time — the admission FIFO, one decode
	// queue, one SoC fallback queue, or an in-flight event — so a single
	// link suffices.
	next int32

	// Fault-layer state (zero on the happy path):
	attempts int     // client retries consumed so far
	corrupt  bool    // scenario corrupted the PTE MapID
	degraded bool    // counted in Metrics.Degraded already
	resumed  bool    // migrated in after prefill ran elsewhere: skip straight to decode
	penalty  float64 // one-shot delay before the next quantum (failover migration, PTE repair)
}

// qlist is an intrusive FIFO of slab queries linked through query.next.
type qlist struct {
	head, tail int32
}

// emptyQlist is the ready-to-use empty list.
var emptyQlist = qlist{head: -1, tail: -1}

// empty reports whether the list holds no queries.
func (l *qlist) empty() bool { return l.head < 0 }

// push appends a query index to the tail.
func (l *qlist) push(qs []query, qi int32) {
	qs[qi].next = -1
	if l.tail < 0 {
		l.head = qi
	} else {
		qs[l.tail].next = qi
	}
	l.tail = qi
}

// pop unlinks and returns the head query index (callers check empty).
func (l *qlist) pop(qs []query) int32 {
	qi := l.head
	l.head = qs[qi].next
	if l.head < 0 {
		l.tail = -1
	}
	qs[qi].next = -1
	return qi
}

// replica is one device: a SoC lane, a PIM lane, and its decode queue
// (queries stay on the replica that prefilled them — the KV cache lives
// there).
type replica struct {
	socBusy bool
	pimBusy bool
	// pimFreeAt is when an in-flight relayout window releases the PIM
	// lane (RelayoutHybrid only).
	pimFreeAt float64
	decodeQ   qlist

	// Fault-layer state (untouched with the layer off):
	pimDown   bool    // PIM lane currently failed
	downAt    float64 // start of the current outage
	downUntil float64 // latest scheduled end of the current outage
	brk       Breaker // circuit breaker over the PIM lane
	socQ      qlist
}

// wheelTicksPerGap is the tick resolution relative to the mean arrival
// gap: with 8 ticks per gap, simultaneous dynamic events of one burst
// spread across level-0 slots while the per-event tick math stays in
// cheap int64 range for any realistic makespan.
const wheelTicksPerGap = 8

// sim is the run state of one event-driven simulation. The hot path is
// allocation-free in steady state: queries live in one slab indexed by
// arrival order (the arrival stream needs no scheduling structure at
// all — nextArr is a cursor), dynamic events live in the timing wheel's
// slab arena, pending queries thread through intrusive qlists, and the
// per-token engine latencies are memoized in flat per-context arrays
// that bypass the engine's mutex-guarded cache.
type sim struct {
	cfg SimConfig
	sys *engine.System
	evs wheel
	// seq numbers dynamic events after the arrival stream: arrivals own
	// sequence numbers 0..Queries-1 (their slab index), so an arrival
	// beats any wheel event scheduled at the same instant — exactly the
	// reference heap's push order.
	seq     int64
	qs      []query
	nextArr int32 // arrival cursor into qs
	reps    []replica
	wait    qlist   // admission FIFO feeding SoC lanes
	relay   float64 // per-handoff re-layout seconds (RelayoutHybrid)

	now      float64
	inSystem int
	busySoC  int
	busyPIM  int
	lastT    float64 // previous state-change instant for the TimeHists

	// open counts queries not yet terminal (completed, rejected, timed
	// out or failed); once it reaches zero — and the arrival stream is
	// sealed — pending fault events are discarded without advancing the
	// clock, so an infinite stochastic fault stream cannot stretch the
	// makespan.
	open int
	// sealed is true once no further arrivals can appear: at birth for
	// a generated (non-Stream) run, after Seal for a streamed one. An
	// unsealed idle sim keeps its fault events pending, because the
	// host may still inject work they must affect.
	sealed bool

	// stepMain/stepSoC memoize DecodeStepSeconds by context length for
	// the configured design and the SoC fallback path (0 = not yet
	// cached; real latencies are positive). preStatic memoizes
	// TTFTStatic by prefill length. The values come from the engine's
	// own memoized cache, so reading them here changes nothing but the
	// lookup cost.
	stepMain  []float64
	stepSoC   []float64
	preStatic []float64

	// flt is nil with an empty fault scenario (layer off).
	flt         *faultState
	failoverPen float64
	brkCooldown float64

	// retryRNG exists only when MaxRetries > 0.
	retryRNG  *rand.Rand
	retryBase float64
	retryCap  float64

	// drainSeen is the drain-outage generation this sim has applied
	// (captured at construction, so only sims already running when
	// TriggerDrainOutage fires take the outage).
	drainSeen int64

	socBusySecs, pimBusySecs float64

	m     Metrics
	ttfts []float64
	ttlts []float64
	tbts  []float64

	// tr is nil when tracing is off; pid0 is the first replica's trace
	// pid and qpid the admission-queue counter track.
	tr   *obs.Tracer
	pid0 int64
	qpid int64
}

// Trace lane (thread) ids within one replica's trace process, and the
// seconds-to-trace-microseconds scale (trace-event timestamps are µs).
const (
	traceLaneSoC int64 = 0
	traceLanePIM int64 = 1
	traceUSPerS        = 1e6
)

// initTrace names the run's trace tracks: one process per replica (a SoC
// and a PIM lane thread each) plus one admission-queue counter process.
func (sm *sim) initTrace() {
	label := sm.cfg.TraceLabel
	if label == "" {
		label = sm.cfg.Mode.String()
	}
	for ri := 0; ri < sm.cfg.Replicas; ri++ {
		pid := sm.pid0 + int64(ri)
		sm.tr.ProcessName(pid, fmt.Sprintf("%s replica %d", label, ri))
		sm.tr.ThreadName(pid, traceLaneSoC, "SoC prefill lane")
		sm.tr.ThreadName(pid, traceLanePIM, "PIM decode lane")
	}
	sm.tr.ProcessName(sm.qpid, label+" admission queue")
}

// traceSpan records one lane-occupancy slice (prefill, decode quantum,
// re-layout window) tagged with the owning query.
func (sm *sim) traceSpan(ri int, lane int64, name string, q *query, start, dur float64) {
	if sm.tr == nil {
		return
	}
	sm.tr.CompleteArg(sm.pid0+int64(ri), lane, name, start*traceUSPerS, dur*traceUSPerS, "query", float64(q.id))
}

// traceInstant records an admission-path marker (arrival, reject,
// timeout, complete) on the queue track.
func (sm *sim) traceInstant(name string, q *query) {
	if sm.tr == nil {
		return
	}
	sm.tr.InstantArg(sm.qpid, 0, name, sm.now*traceUSPerS, "query", float64(q.id))
}

// traceDepth samples the in-system query count after a transition.
func (sm *sim) traceDepth() {
	if sm.tr == nil {
		return
	}
	sm.tr.Counter(sm.qpid, "in-system queries", sm.now*traceUSPerS, float64(sm.inSystem))
}

// Run simulates cfg.Queries through the two-lane replica fleet and
// summarizes latencies, throughput and lane utilization. The run is
// single-threaded and fully deterministic in cfg.Seed.
func Run(s *engine.System, cfg SimConfig) (Metrics, error) {
	sim, err := NewSim(s, cfg)
	if err != nil {
		return Metrics{}, err
	}
	for {
		more, err := sim.Step()
		if err != nil {
			return Metrics{}, err
		}
		if !more {
			break
		}
	}
	return sim.Finish(), nil
}

// Sim is a pausable, steppable serving simulation: Run's event loop
// exposed one event at a time, so a long-running host (the facild
// daemon) can advance virtual time on a background goroutine while
// observers read lock-free Live counter snapshots between events.
// Create with NewSim, call Step until it reports no more events, then
// reduce with Finish. Driving the loop to exhaustion and calling Finish
// is byte-identical to Run with the same config: stepping changes who
// turns the crank, not what happens.
//
// Internally the event loop runs on a hierarchical timing wheel over
// value-typed slab events merged against the in-order arrival stream;
// ReferenceSim is the retained pre-wheel implementation, and the
// differential tests hold the two bit-identical.
//
// A Sim is single-threaded: Step and Finish must not be called
// concurrently (snapshots of the global Live counters are the
// concurrent-read path).
type Sim struct {
	sm       *sim
	finished bool
}

// NewSim validates cfg and builds a ready-to-step simulation with the
// arrival stream (and the fault scenario, when armed) already
// scheduled, exactly as Run does before entering its loop.
func NewSim(s *engine.System, cfg SimConfig) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PreemptSteps == 0 {
		cfg.PreemptSteps = DefaultPreemptSteps
	}
	var ds workload.Dataset
	if !cfg.Stream {
		var err error
		ds, err = workload.Generate(cfg.Workload, cfg.Queries, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
	}
	sm := &sim{
		cfg:  cfg,
		sys:  s,
		reps: make([]replica, cfg.Replicas),
		m:    Metrics{Mode: cfg.Mode, Kind: cfg.Kind, Replicas: cfg.Replicas},
		wait: emptyQlist,
	}
	for ri := range sm.reps {
		sm.reps[ri].decodeQ = emptyQlist
		sm.reps[ri].socQ = emptyQlist
	}
	if cfg.Tracer.Enabled() {
		sm.tr = cfg.Tracer
		sm.pid0 = cfg.TracePIDBase
		sm.qpid = cfg.TracePIDBase + int64(cfg.Replicas)
		sm.initTrace()
	}
	if cfg.Mode == RelayoutHybrid {
		relay, err := s.RelayoutAllWeightsSeconds()
		if err != nil {
			return nil, err
		}
		sm.relay = relay
	}
	// The arrival process is owned by this run: a fresh RNG consumes
	// exactly one exponential gap per query, in arrival order, matching
	// the legacy Simulate clock. Arrivals are not events — the slab,
	// ordered by arrival time with nextArr as cursor, is the stream; a
	// query's slab index doubles as its event sequence number. A
	// Stream-mode run starts with an empty, unsealed slab that Inject
	// appends to (growing the latency caches as longer contexts show
	// up); everything below degrades to the zero-query shape.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var clock float64
	sm.qs = make([]query, len(ds.Queries))
	maxCtx, maxPre, tbtCap := 0, 0, 0
	for i, q := range ds.Queries {
		clock += rng.ExpFloat64() / cfg.ArrivalRate
		sm.qs[i] = query{
			id: i, arrival: clock, start: clock, prefill: q.Prefill, decode: q.Decode, next: -1,
		}
		if c := q.Prefill + q.Decode; c > maxCtx {
			maxCtx = c
		}
		if q.Prefill > maxPre {
			maxPre = q.Prefill
		}
		if q.Decode > 1 {
			tbtCap += q.Decode - 1
		}
	}
	sm.seq = int64(len(sm.qs))
	sm.open = cfg.Queries
	sm.sealed = !cfg.Stream
	sm.evs.init(wheelTicksPerGap * cfg.ArrivalRate)
	sm.stepMain = make([]float64, maxCtx+1)
	sm.stepSoC = make([]float64, maxCtx+1)
	sm.preStatic = make([]float64, maxPre+1)
	sm.ttfts = make([]float64, 0, cfg.Queries)
	sm.ttlts = make([]float64, 0, cfg.Queries)
	sm.tbts = make([]float64, 0, tbtCap)
	// The fault and retry layers arm only when configured, after the
	// arrival stream claimed its sequence numbers, so a faultless run's
	// event sequence (and RNG stream) is untouched.
	if cfg.MaxRetries > 0 {
		sm.retryBase, sm.retryCap = cfg.RetryBase, cfg.RetryCap
		if sm.retryBase == 0 {
			sm.retryBase = DefaultRetryBase
		}
		if sm.retryCap == 0 {
			sm.retryCap = DefaultRetryCap
		}
		sm.retryRNG = rand.New(rand.NewSource(cfg.Seed + 2))
	}
	if !cfg.Faults.Empty() {
		if err := sm.initFaults(s); err != nil {
			return nil, err
		}
	}
	sm.drainSeen = drainGen.Load()
	Live.runsStarted.Add(1)
	return &Sim{sm: sm}, nil
}

// Step processes the next pending event and reports whether any events
// remain afterwards. On an error the simulation is poisoned: discard
// the Sim (partial metrics are meaningless).
func (s *Sim) Step() (bool, error) {
	return s.sm.step()
}

// Now returns the simulation's virtual clock in seconds.
func (s *Sim) Now() float64 { return s.sm.now }

// Pending returns the number of scheduled events not yet processed:
// arrivals still to stream plus wheel events (including tail fault
// events that Step will discard).
func (s *Sim) Pending() int {
	return len(s.sm.qs) - int(s.sm.nextArr) + s.sm.evs.count
}

// Finish reduces the run into its Metrics. Call it once, after Step
// reports that no events remain; calling earlier summarizes a truncated
// run. Finish is idempotent in the Live counters (only the first call
// counts the run as finished).
func (s *Sim) Finish() Metrics {
	if !s.finished {
		s.finished = true
		Live.runsFinished.Add(1)
	}
	return s.sm.finish()
}

// Inject appends one externally-routed arrival to a Stream-mode run.
// Arrivals must be time-ordered and never behind the sim's clock: the
// host advances the sim only up to a horizon at or before the next
// injection time (the cluster router's telemetry barrier), so both
// monotonicity checks hold by construction there. The injected query
// enters the admission path at `at` on the next AdvanceTo that crosses
// it, subject to QueueCap like any generated arrival.
func (s *Sim) Inject(at float64, prefill, decode int) error {
	sm := s.sm
	if !sm.cfg.Stream {
		return fmt.Errorf("serve: Inject requires a Stream-mode sim")
	}
	if sm.sealed {
		return fmt.Errorf("serve: Inject after Seal")
	}
	if prefill <= 0 || decode <= 0 {
		return fmt.Errorf("serve: Inject token counts must be positive, got prefill=%d decode=%d", prefill, decode)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) || at < sm.now {
		return fmt.Errorf("serve: Inject at %g behind the clock %g", at, sm.now)
	}
	if n := len(sm.qs); n > 0 && at < sm.qs[n-1].start {
		return fmt.Errorf("serve: Inject arrivals must be time-ordered (%g after %g)", at, sm.qs[n-1].start)
	}
	qi := len(sm.qs)
	sm.qs = append(sm.qs, query{id: qi, arrival: at, start: at, prefill: prefill, decode: decode, next: -1})
	sm.open++
	if c := prefill + decode + 1; c > len(sm.stepMain) {
		sm.stepMain = growCache(sm.stepMain, c)
		sm.stepSoC = growCache(sm.stepSoC, c)
	}
	if prefill+1 > len(sm.preStatic) {
		sm.preStatic = growCache(sm.preStatic, prefill+1)
	}
	return nil
}

// growCache resizes a flat latency-memo array, keeping cached entries.
func growCache(c []float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, c)
	return out
}

// Seal marks a Stream-mode arrival stream complete: no further Inject
// calls are accepted, and once every injected query is terminal the
// remaining stochastic fault events are discarded without advancing the
// clock — the same end-of-run rule a generated arrival stream gets at
// construction. Seal is idempotent and a no-op on non-Stream sims
// (they are born sealed).
func (s *Sim) Seal() { s.sm.sealed = true }

// AdvanceTo processes every pending event strictly before t, in event
// order, leaving the clock on the last processed event (not at t —
// virtual time only ever sits on events). Events at exactly t stay
// pending for the next call, so advancing to a barrier then injecting
// arrivals at or after the barrier is race-free. AdvanceTo(math.Inf(1))
// drains the run; on error the simulation is poisoned, as with Step.
func (s *Sim) AdvanceTo(t float64) error {
	for {
		more, err := s.sm.stepUntil(t)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// Probe is a point-in-time, allocation-free view of a running sim's
// counters — the per-device health signal a fleet router reads at each
// telemetry barrier. All counts are cumulative since construction;
// deltas between probes are the barrier-interval signal.
type Probe struct {
	// Now is the sim's virtual clock (the last processed event).
	Now float64
	// InSystem is the current admitted-but-unfinished query count — the
	// live queue-depth signal behind least-loaded routing.
	InSystem int
	// Arrived, Admitted and Rejected mirror the Metrics admission
	// identities (Arrived = Admitted + Rejected for terminal queries).
	Arrived, Admitted, Rejected int
	// Completed, TimedOut and Failed are the terminal outcomes so far.
	Completed, TimedOut, Failed int
	// Retracted counts queries the host pulled back out for migration;
	// they left the system without a terminal outcome here.
	Retracted int
	// Degraded, FailedOver and BreakerOpens count the in-device
	// degradation machinery's activity.
	Degraded, FailedOver, BreakerOpens int
}

// Probe snapshots the sim's live counters. It must not race with Step
// or AdvanceTo on another goroutine (the cluster router probes between
// barriers, when the device is quiescent).
func (s *Sim) Probe() Probe {
	sm := s.sm
	return Probe{
		Now:          sm.now,
		InSystem:     sm.inSystem,
		Arrived:      sm.m.Arrived,
		Admitted:     sm.m.Admitted,
		Rejected:     sm.m.Rejected,
		Completed:    sm.m.Completed,
		TimedOut:     sm.m.TimedOut,
		Failed:       sm.m.Failed,
		Retracted:    sm.m.Retracted,
		Degraded:     sm.m.Degraded,
		FailedOver:   sm.m.FailedOver,
		BreakerOpens: sm.m.BreakerOpens,
	}
}

// Latencies exposes the raw per-query samples collected so far: TTFT
// (one per prefill completion) and TTLT (one per completion), both in
// completion order. The slices alias the sim's sample buffers — callers
// must treat them as read-only and re-fetch after advancing further
// (appends may reallocate). The cluster router tails TTFT for its
// latency-weighted EWMA.
func (s *Sim) Latencies() (ttft, ttlt []float64) {
	return s.sm.ttfts, s.sm.ttlts
}

// Retracted is one query pulled back out of a Stream-mode sim by
// Retract or RetractPrefilled — the unit of cross-device migration. It
// carries exactly what a destination sim needs to resume the query
// honestly via InjectResume: the original arrival time (latency and
// deadline accounting never forget the wait on the retracting device),
// the token lengths, and the decode progress when prefill already ran.
type Retracted struct {
	// Arrival is the query's original arrival time on the source sim's
	// clock (the fleet shares one virtual clock across devices).
	Arrival float64
	// Prefill and Decode are the query's token lengths.
	Prefill, Decode int
	// StepsDone is the decode progress so far (always 0 unless
	// Prefilled).
	StepsDone int
	// Prefilled reports that the query finished prefill on the source
	// device: its KV cache lives there, so resuming it elsewhere should
	// be charged the cross-device handoff penalty. Unstarted queries
	// move free — nothing has been computed for them yet.
	Prefilled bool
}

// Retract pulls the longest-waiting admission-queued query back out of
// a Stream-mode sim without perturbing started ones: the query leaves
// the system counted as Retracted (not as any terminal outcome), and
// the host re-injects it elsewhere with InjectResume. It returns false
// when the admission queue is empty or the sim is not Stream-mode.
// Like Inject, it must be called between advances, never concurrently
// with them — the cluster router retracts in the serial re-route phase
// at each telemetry barrier.
func (s *Sim) Retract() (Retracted, bool) {
	sm := s.sm
	if !sm.cfg.Stream || sm.wait.empty() {
		return Retracted{}, false
	}
	return sm.retract(sm.wait.pop(sm.qs), false), true
}

// RetractPrefilled pulls one prefilled-but-preempted query out of a
// Stream-mode sim: the head of the first non-empty decode queue. Its
// prefill work is kept (StepsDone and Prefilled travel with it), and
// the caller is expected to charge the KV-transfer penalty on
// re-injection. Queries mid-quantum and queries on the SoC fallback
// path are never retracted — the former are executing, the latter are
// already being served by the degradation policy. Returns false when
// nothing is retractable.
func (s *Sim) RetractPrefilled() (Retracted, bool) {
	sm := s.sm
	if !sm.cfg.Stream {
		return Retracted{}, false
	}
	for ri := range sm.reps {
		if !sm.reps[ri].decodeQ.empty() {
			return sm.retract(sm.reps[ri].decodeQ.pop(sm.qs), true), true
		}
	}
	return Retracted{}, false
}

// retract books one already-unlinked query out of the sim.
func (sm *sim) retract(qi int32, prefilled bool) Retracted {
	q := &sm.qs[qi]
	sm.m.Retracted++
	Live.retracted.Add(1)
	sm.inSystem--
	sm.open--
	sm.traceInstant("retract", q)
	sm.traceDepth()
	return Retracted{
		Arrival: q.arrival, Prefill: q.prefill, Decode: q.decode,
		StepsDone: q.stepsDone, Prefilled: prefilled,
	}
}

// InjectResume appends a retracted query to a Stream-mode sim's arrival
// stream at time `at`, subject to the same ordering rules as Inject.
// The query keeps its original arrival for latency and deadline
// accounting but enters this sim's admission path at `at`; penalty is
// the one-shot handoff cost (KV-cache transfer and re-layout into the
// destination's mapping) charged before its first decode quantum here —
// pass 0 for unstarted queries, whose state is only their lengths. A
// prefilled query skips the destination's prefill lanes entirely and
// resumes decode where it left off. Unlike Inject, InjectResume is
// legal after Seal: it redistributes a query the fleet already
// admitted, which is exactly what a drain that keeps migrating away
// from failing devices needs.
func (s *Sim) InjectResume(at float64, r Retracted, penalty float64) error {
	sm := s.sm
	if !sm.cfg.Stream {
		return fmt.Errorf("serve: InjectResume requires a Stream-mode sim")
	}
	if r.Prefill <= 0 || r.Decode <= 0 {
		return fmt.Errorf("serve: InjectResume token counts must be positive, got prefill=%d decode=%d", r.Prefill, r.Decode)
	}
	if r.StepsDone < 0 || r.StepsDone > r.Decode-1 || (!r.Prefilled && r.StepsDone != 0) {
		return fmt.Errorf("serve: InjectResume got inconsistent decode progress %d of %d (prefilled=%t)", r.StepsDone, r.Decode, r.Prefilled)
	}
	if penalty < 0 || math.IsNaN(penalty) || math.IsInf(penalty, 0) {
		return fmt.Errorf("serve: InjectResume penalty must be a finite non-negative duration, got %g", penalty)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) || at < sm.now {
		return fmt.Errorf("serve: InjectResume at %g behind the clock %g", at, sm.now)
	}
	if math.IsNaN(r.Arrival) || r.Arrival > at {
		return fmt.Errorf("serve: InjectResume arrival %g after re-injection time %g", r.Arrival, at)
	}
	if n := len(sm.qs); n > 0 && at < sm.qs[n-1].start {
		return fmt.Errorf("serve: Inject arrivals must be time-ordered (%g after %g)", at, sm.qs[n-1].start)
	}
	qi := len(sm.qs)
	sm.qs = append(sm.qs, query{
		id: qi, arrival: r.Arrival, start: at,
		prefill: r.Prefill, decode: r.Decode, stepsDone: r.StepsDone,
		resumed: r.Prefilled, penalty: penalty, next: -1,
	})
	sm.open++
	if c := r.Prefill + r.Decode + 1; c > len(sm.stepMain) {
		sm.stepMain = growCache(sm.stepMain, c)
		sm.stepSoC = growCache(sm.stepSoC, c)
	}
	if r.Prefill+1 > len(sm.preStatic) {
		sm.preStatic = growCache(sm.preStatic, r.Prefill+1)
	}
	return nil
}

// push schedules a dynamic event with the next tie-break sequence
// number into the timing wheel.
func (sm *sim) push(ev event) {
	ev.seq = sm.seq
	sm.seq++
	sm.evs.schedule(ev)
}

// stepSeconds is the flat-cache front of engine.DecodeStepSeconds: the
// serving loop calls it twice per token (quantum sizing and token
// replay), so the mutex-and-map engine cache is paid once per (kind,
// context) and array reads after that.
func (sm *sim) stepSeconds(kind engine.Kind, ctx int) (float64, error) {
	var cache []float64
	switch kind {
	case sm.cfg.Kind:
		cache = sm.stepMain
	case engine.SoCOnly:
		cache = sm.stepSoC
	}
	if cache != nil && ctx >= 0 && ctx < len(cache) {
		if v := cache[ctx]; v != 0 {
			return v, nil
		}
		v, err := sm.sys.DecodeStepSeconds(kind, ctx)
		if err != nil {
			return 0, err
		}
		cache[ctx] = v
		return v, nil
	}
	return sm.sys.DecodeStepSeconds(kind, ctx)
}

// ttftStatic is the flat-cache front of engine.TTFTStatic by prefill
// length (non-Serial prefill dispatch).
func (sm *sim) ttftStatic(prefill int) (float64, error) {
	if prefill >= 0 && prefill < len(sm.preStatic) {
		if v := sm.preStatic[prefill]; v != 0 {
			return v, nil
		}
		v, err := sm.sys.TTFTStatic(sm.cfg.Kind, prefill)
		if err != nil {
			return 0, err
		}
		sm.preStatic[prefill] = v
		return v, nil
	}
	return sm.sys.TTFTStatic(sm.cfg.Kind, prefill)
}

// advance moves the clock to t, charging the elapsed interval to the
// time-weighted histograms at the state held since the last change.
// Every clock movement funnels through here — arrivals, wheel events,
// idle-gap jumps — so the histograms and the Live odometer cannot
// disagree about elapsed virtual time.
func (sm *sim) advance(t float64) {
	if dt := t - sm.lastT; dt > 0 {
		sm.m.QueueDepth.Add(float64(sm.inSystem), dt)
		sm.m.SoCBusy.Add(float64(sm.busySoC), dt)
		sm.m.PIMBusy.Add(float64(sm.busyPIM), dt)
		sm.lastT = t
		Live.addVirtual(dt)
	}
	sm.now = t
}

// step processes the next pending event with no horizon — the whole-run
// event loop. The merge logic lives in stepUntil; at an infinite horizon
// the limit reduces to the bare arrival cursor, so this is bit-identical
// to the pre-horizon loop.
func (sm *sim) step() (bool, error) {
	return sm.stepUntil(math.Inf(1))
}

// stepUntil merges the arrival cursor against the timing wheel, pops the
// earlier of the two if it lies strictly before horizon, handles it, and
// reports whether an event was processed. Arrivals always carry lower
// sequence numbers than wheel events, so on an exact (at) tie the
// arrival goes first — the reference heap's order. Events at or past the
// horizon stay pending and the clock does not reach the horizon: the
// clock only ever sits on a processed event, which is what makes
// fixed-horizon advancement composable with Inject (a later injection
// at t < horizon is still in this sim's future).
//
// Once every query is terminal in a sealed run, remaining fault events
// are discarded without advancing the clock: the makespan (and the
// time-weighted histograms) end at the last query event, not at whatever
// outage the infinite stochastic stream scheduled next.
func (sm *sim) stepUntil(horizon float64) (bool, error) {
	if g := drainGen.Load(); g != sm.drainSeen {
		sm.drainSeen = g
		sm.applyDrainOutage(math.Float64frombits(drainDur.Load()))
	}
	for {
		hasArr := int(sm.nextArr) < len(sm.qs)
		var limAt float64
		var limTick int64
		hasLim, arrLim := false, false
		if hasArr && sm.qs[sm.nextArr].start < horizon {
			limAt = sm.qs[sm.nextArr].start
			hasLim, arrLim = true, true
		} else if !math.IsInf(horizon, 1) {
			limAt = horizon
			hasLim = true
		}
		if hasLim {
			limTick = sm.evs.tickOf(limAt)
		}
		idx, limFirst := sm.evs.pop(hasLim, limAt, limTick)
		if idx >= 0 {
			// Copy the event out and retire its slot before handling:
			// everything the handler schedules allocates fresh slots, so
			// no callback can alias a recycled event.
			ev := sm.evs.arena.slab[idx]
			sm.evs.arena.release(idx)
			if (ev.kind == evLaneDown || ev.kind == evLaneUp) && sm.open == 0 && sm.sealed {
				continue
			}
			sm.advance(ev.at)
			Live.events.Add(1)
			var err error
			switch ev.kind {
			case evArrival:
				err = sm.onArrival(ev.q)
			case evPrefillDone:
				err = sm.onPrefillDone(ev.q, int(ev.rep))
			case evQuantumDone:
				err = sm.onQuantumDone(&ev)
			case evLaneDown:
				err = sm.onLaneDown(int(ev.rep), ev.until)
			case evLaneUp:
				err = sm.onLaneUp(int(ev.rep))
			}
			return true, err
		}
		if limFirst && arrLim {
			qi := sm.nextArr
			sm.nextArr++
			sm.advance(sm.qs[qi].start)
			Live.events.Add(1)
			return true, sm.onArrival(qi)
		}
		return false, nil
	}
}

// onArrival admits or rejects a query, then tries to start prefills.
// A rejected query with retry budget left re-arrives after a jittered
// exponential backoff instead of counting as Rejected.
func (sm *sim) onArrival(qi int32) error {
	q := &sm.qs[qi]
	if q.attempts == 0 {
		sm.m.Arrived++
		Live.arrived.Add(1)
	}
	if sm.cfg.QueueCap > 0 && sm.inSystem >= sm.cfg.QueueCap {
		if sm.cfg.MaxRetries > 0 && q.attempts < sm.cfg.MaxRetries {
			q.attempts++
			sm.m.Retries++
			Live.retries.Add(1)
			sm.traceInstant("retry", q)
			sm.push(event{at: sm.now + sm.backoff(q.attempts), kind: evArrival, q: qi})
			return nil
		}
		sm.m.Rejected++
		Live.rejected.Add(1)
		sm.open--
		sm.traceInstant("reject", q)
		return nil
	}
	sm.m.Admitted++
	Live.admitted.Add(1)
	if !q.resumed {
		sm.maybeCorrupt(q)
	}
	sm.inSystem++
	if sm.inSystem > sm.m.MaxQueueDepth {
		sm.m.MaxQueueDepth = sm.inSystem
	}
	sm.traceInstant("arrival", q)
	sm.traceDepth()
	if q.resumed {
		// A migrated query whose prefill already ran elsewhere skips the
		// SoC lane: its KV cache arrives with it (the handoff penalty was
		// charged at re-injection) and decode resumes where it left off.
		// The source sim recorded its TTFT at the original prefill; the
		// token clock restarts here so TBT/TTLT stay monotone.
		q.firstToken = sm.now
		q.prevToken = sm.now
		ri := int(qi) % len(sm.reps)
		sm.reps[ri].decodeQ.push(sm.qs, qi)
		return sm.dispatchDecode(ri)
	}
	sm.wait.push(sm.qs, qi)
	return sm.dispatchPrefills()
}

// expired reports whether q has outlived the hard timeout.
func (sm *sim) expired(q *query) bool {
	return sm.cfg.Timeout > 0 && sm.now-q.arrival > sm.cfg.Timeout
}

// abort drops a query at a scheduling boundary.
func (sm *sim) abort(q *query) {
	sm.m.TimedOut++
	Live.timedOut.Add(1)
	sm.inSystem--
	sm.open--
	sm.traceInstant("timeout", q)
	sm.traceDepth()
}

// dispatchPrefills starts waiting queries on every free SoC lane. In
// Serial mode a replica must be entirely idle (both lanes and no decode
// backlog) — the query owns the whole device.
func (sm *sim) dispatchPrefills() error {
	for !sm.wait.empty() {
		qi := sm.wait.head
		if sm.expired(&sm.qs[qi]) {
			sm.wait.pop(sm.qs)
			sm.abort(&sm.qs[qi])
			continue
		}
		ri := -1
		for i := range sm.reps {
			r := &sm.reps[i]
			if r.socBusy {
				continue
			}
			if sm.cfg.Mode == Serial && (r.pimBusy || !r.decodeQ.empty()) {
				continue
			}
			ri = i
			break
		}
		if ri < 0 {
			return nil
		}
		sm.wait.pop(sm.qs)
		if err := sm.startPrefill(qi, ri); err != nil {
			return err
		}
	}
	return nil
}

// startPrefill occupies the replica's SoC lane with q's prefill phase.
func (sm *sim) startPrefill(qi int32, ri int) error {
	q := &sm.qs[qi]
	r := &sm.reps[ri]
	switch sm.cfg.Mode {
	case Serial:
		// The whole query runs as one exclusive service interval, using
		// the design's own prefill routing (dynamic offload included) —
		// exactly the legacy closed-form model.
		ttft, err := sm.sys.TTFT(sm.cfg.Kind, q.prefill)
		if err != nil {
			return err
		}
		ttlt, err := sm.sys.TTLT(sm.cfg.Kind, q.prefill, q.decode)
		if err != nil {
			return err
		}
		r.socBusy, r.pimBusy = true, true
		sm.busySoC++
		sm.busyPIM++
		sm.socBusySecs += ttlt
		sm.pimBusySecs += ttlt
		sm.traceSpan(ri, traceLaneSoC, "prefill", q, sm.now, ttft)
		sm.push(event{at: sm.now + ttft, kind: evPrefillDone, q: qi, rep: int32(ri)})
		return nil
	default:
		// Cooperative lanes: prefill takes the SoC route (the PIM lane
		// is decoding other queries on the same weights). The hybrid
		// baseline's TTFTStatic already charges the re-layout; the mode
		// additionally stalls the PIM lane for that window, because the
		// weights are being rewritten. Designs that pay no re-layout of
		// their own get it charged explicitly.
		pre, err := sm.ttftStatic(q.prefill)
		if err != nil {
			return err
		}
		// Thermal throttling slows the SoC's DRAM too (the refresh derate
		// is chip-wide); factor is exactly 1 with the fault layer off.
		pre *= sm.factorAt(sm.now)
		if sm.cfg.Mode == RelayoutHybrid {
			switch sm.cfg.Kind {
			case engine.HybridStatic, engine.HybridDynamic:
				// Re-layout already inside TTFTStatic.
			default:
				pre += sm.relay
			}
			if t := sm.now + sm.relay; t > r.pimFreeAt {
				r.pimFreeAt = t
			}
			sm.traceSpan(ri, traceLanePIM, "relayout", q, sm.now, sm.relay)
		}
		r.socBusy = true
		sm.busySoC++
		sm.socBusySecs += pre
		sm.traceSpan(ri, traceLaneSoC, "prefill", q, sm.now, pre)
		sm.push(event{at: sm.now + pre, kind: evPrefillDone, q: qi, rep: int32(ri)})
		return nil
	}
}

// onPrefillDone emits the first token and hands the query to the decode
// lane (or completes it when there is nothing left to decode).
func (sm *sim) onPrefillDone(qi int32, ri int) error {
	q := &sm.qs[qi]
	r := &sm.reps[ri]
	q.firstToken = sm.now
	q.prevToken = sm.now
	sm.ttfts = append(sm.ttfts, sm.now-q.arrival)
	if sm.cfg.Mode == Serial {
		// The device stays occupied; completion arrives as one quantum
		// covering every decode step.
		if q.decode <= 1 {
			return sm.completeSerial(q, ri)
		}
		dur, err := sm.quantumSeconds(q, q.decode-1)
		if err != nil {
			return err
		}
		sm.push(event{at: sm.now + dur, kind: evQuantumDone, q: qi, rep: int32(ri), steps: int32(q.decode - 1)})
		return nil
	}
	r.socBusy = false
	sm.busySoC--
	if q.decode <= 1 {
		sm.complete(q)
	} else if !q.corrupt || sm.onCorruptHandoff(q) {
		// The decode handoff is where a corrupted PTE MapID first hits
		// the MC frontend mux; onCorruptHandoff fails or repairs it.
		r.decodeQ.push(sm.qs, qi)
	}
	if err := sm.dispatchPrefills(); err != nil {
		return err
	}
	return sm.dispatchDecode(ri)
}

// quantumSeconds sums the next `steps` decode-step latencies of q under
// the configured design at nominal speed (the happy path).
func (sm *sim) quantumSeconds(q *query, steps int) (float64, error) {
	return sm.quantumSecondsKind(q, steps, sm.cfg.Kind, 1)
}

// quantumSecondsKind sums the next `steps` decode-step latencies of q
// under an explicit design (degraded quanta run at engine.SoCOnly
// latency) and thermal slowdown factor. Each step is scaled before
// summing so the quantum's internal token times match emitTokens; at
// factor 1 the products are bit-identical to the unscaled sum.
func (sm *sim) quantumSecondsKind(q *query, steps int, kind engine.Kind, factor float64) (float64, error) {
	var t float64
	for i := 0; i < steps; i++ {
		st, err := sm.stepSeconds(kind, q.prefill+q.stepsDone+i+1)
		if err != nil {
			return 0, err
		}
		t += st * factor
	}
	return t, nil
}

// emitTokens replays the token emission times of a finished quantum that
// started at `start`, recording the inter-token gaps. kind and factor
// must match the dispatch-time values so the replayed times land exactly
// on the quantum's end event.
func (sm *sim) emitTokens(q *query, start float64, steps int, kind engine.Kind, factor float64) error {
	t := start
	for i := 0; i < steps; i++ {
		st, err := sm.stepSeconds(kind, q.prefill+q.stepsDone+i+1)
		if err != nil {
			return err
		}
		t += st * factor
		if !sm.cfg.NoTBT {
			sm.tbts = append(sm.tbts, t-q.prevToken)
		}
		q.prevToken = t
	}
	q.stepsDone += steps
	return nil
}

// dispatchDecode starts the next decode quantum on a replica's PIM lane
// (round-robin over its decode queue at PreemptSteps granularity). With
// the fault layer armed, a dead or breaker-guarded lane routes each
// queued query through the degradation policy instead.
func (sm *sim) dispatchDecode(ri int) error {
	r := &sm.reps[ri]
	for !r.pimBusy && !r.decodeQ.empty() {
		qi := r.decodeQ.pop(sm.qs)
		q := &sm.qs[qi]
		if sm.expired(q) {
			sm.abort(q)
			continue
		}
		if sm.flt != nil && !sm.acquirePIM(ri) {
			if err := sm.degrade(qi, ri); err != nil {
				return err
			}
			continue
		}
		steps := q.decode - 1 - q.stepsDone
		if steps > sm.cfg.PreemptSteps {
			steps = sm.cfg.PreemptSteps
		}
		// A relayout window may still hold the lane: the quantum is
		// reserved now and starts when the weights are back.
		start := sm.now
		if r.pimFreeAt > start {
			start = r.pimFreeAt
		}
		factor := sm.factorAt(start)
		dur, err := sm.quantumSecondsKind(q, steps, sm.cfg.Kind, factor)
		if err != nil {
			return err
		}
		// A one-shot penalty (failover migration, PTE repair) delays the
		// quantum without emitting tokens.
		penalty := q.penalty
		q.penalty = 0
		r.pimBusy = true
		sm.busyPIM++
		sm.pimBusySecs += penalty + dur
		if penalty > 0 {
			sm.traceSpan(ri, traceLanePIM, "fault-recovery", q, start, penalty)
		}
		sm.push(event{
			at: start + penalty + dur, kind: evQuantumDone, q: qi, rep: int32(ri),
			steps: int32(steps), dur: dur, factor: factor,
		})
	}
	if sm.flt != nil && sm.cfg.Policy != PolicyNone {
		return sm.dispatchSoCDecode(ri)
	}
	return nil
}

// onQuantumDone finishes one decode quantum: tokens are emitted, the
// query completes or rejoins the queue, and the lane picks its next
// quantum. The event carries the dispatch-time duration and thermal
// factor so the replay cannot drift if fault conditions changed
// mid-quantum.
func (sm *sim) onQuantumDone(e *event) error {
	q, ri, steps := &sm.qs[e.q], int(e.rep), int(e.steps)
	r := &sm.reps[ri]
	if sm.cfg.Mode == Serial {
		if err := sm.emitTokens(q, q.firstToken, steps, sm.cfg.Kind, 1); err != nil {
			return err
		}
		sm.traceSpan(ri, traceLanePIM, "decode", q, q.firstToken, sm.now-q.firstToken)
		return sm.completeSerial(q, ri)
	}
	kind, lane := sm.cfg.Kind, traceLanePIM
	if e.soc {
		kind, lane = engine.SoCOnly, traceLaneSoC
	}
	if err := sm.emitTokens(q, sm.now-e.dur, steps, kind, e.factor); err != nil {
		return err
	}
	sm.traceSpan(ri, lane, "decode", q, sm.now-e.dur, e.dur)
	if e.soc {
		r.socBusy = false
		sm.busySoC--
	} else {
		r.pimBusy = false
		sm.busyPIM--
	}
	if q.stepsDone >= q.decode-1 {
		sm.complete(q)
	} else {
		// Rejoin the replica's main decode queue: the next dispatch
		// re-decides the route, so a degraded query returns to the PIM
		// lane as soon as it recovers.
		r.decodeQ.push(sm.qs, e.q)
	}
	if e.soc {
		// The freed SoC lane goes to waiting prefills first.
		if err := sm.dispatchPrefills(); err != nil {
			return err
		}
	}
	return sm.dispatchDecode(ri)
}

// complete retires a cooperative-mode query.
func (sm *sim) complete(q *query) {
	sm.m.Completed++
	Live.completed.Add(1)
	sm.inSystem--
	sm.open--
	ttlt := q.prevToken - q.arrival
	sm.ttlts = append(sm.ttlts, ttlt)
	if sm.cfg.DeadlineTTLT == 0 || ttlt <= sm.cfg.DeadlineTTLT {
		sm.m.SLOMet++
	}
	sm.traceInstant("complete", q)
	sm.traceDepth()
}

// completeSerial retires a serial-mode query and frees the whole device.
func (sm *sim) completeSerial(q *query, ri int) error {
	r := &sm.reps[ri]
	r.socBusy, r.pimBusy = false, false
	sm.busySoC--
	sm.busyPIM--
	sm.complete(q)
	return sm.dispatchPrefills()
}

// finish reduces the collected samples into the Metrics.
func (sm *sim) finish() Metrics {
	m := &sm.m
	m.TTFT = stats.QuantilesOf(sm.ttfts)
	m.TTLT = stats.QuantilesOf(sm.ttlts)
	m.TBT = stats.QuantilesOf(sm.tbts)
	m.Makespan = sm.now
	if m.Makespan > 0 {
		m.ThroughputQPS = float64(m.Completed) / m.Makespan
		m.GoodputQPS = float64(m.SLOMet) / m.Makespan
		rs := float64(sm.cfg.Replicas) * m.Makespan
		m.SoCUtilization = sm.socBusySecs / rs
		m.PIMUtilization = sm.pimBusySecs / rs
	}
	m.Availability = 1
	if sm.flt != nil {
		// Lanes still down at the end contribute their elapsed outage but
		// not an MTTR sample (the repair never happened in-run).
		for ri := range sm.reps {
			if sm.reps[ri].pimDown {
				sm.flt.residualDown += sm.now - sm.reps[ri].downAt
			}
		}
		m.LaneDownSecs = sm.flt.outages.TotalDown + sm.flt.residualDown
		m.LaneMTTR = sm.flt.outages.MTTR()
		if rs := float64(sm.cfg.Replicas) * m.Makespan; rs > 0 {
			m.Availability = 1 - m.LaneDownSecs/rs
			if m.Availability < 0 {
				m.Availability = 0
			}
		}
	}
	return *m
}
