package serve

import (
	"container/heap"
	"fmt"
	"math/rand"

	"facil/internal/engine"
	"facil/internal/obs"
	"facil/internal/stats"
	"facil/internal/workload"
)

// Mode selects how a replica's two lanes — the SoC (prefill GEMM) lane
// and the PIM (decode GEMV) lane — are scheduled against each other.
type Mode int

const (
	// Serial reproduces the old closed-form queue: one query occupies
	// the whole device from prefill start to last token, nothing
	// overlaps. This is the pre-FACIL on-device baseline.
	Serial Mode = iota
	// Cooperative is the FACIL operating point: one weight copy serves
	// both processors, so the SoC lane prefills query B while the PIM
	// lane decodes query A. Prefill always takes the SoC route (the PIM
	// lane is reserved for decode).
	Cooperative
	// RelayoutHybrid is the paper's baseline under the same two-lane
	// scheduler: every prefill handoff first re-lays the weights into
	// the SoC layout (cost from internal/relayout), and the PIM lane
	// stalls for that window because the weights are in flight.
	RelayoutHybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case Cooperative:
		return "cooperative"
	case RelayoutHybrid:
		return "relayout-hybrid"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode resolves a command-line mode name.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Serial, Cooperative, RelayoutHybrid} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown mode %q (serial, cooperative, relayout-hybrid)", s)
}

// Modes lists all scheduling modes in presentation order.
func Modes() []Mode { return []Mode{Serial, Cooperative, RelayoutHybrid} }

// SimConfig describes one event-driven serving scenario.
type SimConfig struct {
	// Mode schedules the lanes; Kind selects the latency model design.
	Mode Mode
	Kind engine.Kind
	// Replicas is the number of identical devices pulling from one
	// admission queue (1 = single on-device accelerator).
	Replicas int
	// ArrivalRate is the mean arrival rate in queries/second
	// (exponential inter-arrival gaps).
	ArrivalRate float64
	// Queries is the number of simulated queries.
	Queries int
	// Workload samples the (prefill, decode) lengths.
	Workload workload.Spec
	// Seed drives arrivals and lengths. Every Run owns its RNG, so
	// concurrent sweep points never share arrival state.
	Seed int64
	// QueueCap bounds the number of queries in the system (waiting plus
	// executing); arrivals beyond it are rejected. 0 = unbounded.
	QueueCap int
	// DeadlineTTLT is the SLO on arrival-to-last-token: completions
	// within it count toward goodput. 0 disables the SLO (goodput ==
	// throughput).
	DeadlineTTLT float64
	// Timeout hard-aborts a query whose age exceeds it, checked at the
	// scheduling boundaries (prefill dispatch and decode preemption
	// points). 0 = never.
	Timeout float64
	// PreemptSteps is the decode-lane scheduling quantum in decode
	// steps: after that many tokens the lane rotates to the next
	// waiting query (round-robin). 0 selects DefaultPreemptSteps.
	PreemptSteps int
	// Tracer, when enabled, records the run's structured timeline —
	// per-lane occupancy spans, queue-depth counters, admission/
	// rejection/timeout instants and re-layout windows — in trace-event
	// form (see internal/obs). A nil tracer costs one pointer test per
	// instrumentation point and records nothing.
	Tracer *obs.Tracer
	// TracePIDBase offsets this run's trace process ids so several
	// sweep points can share one tracer without colliding: the run uses
	// pids [TracePIDBase, TracePIDBase+Replicas] — one per replica plus
	// one for the admission-queue counter track.
	TracePIDBase int64
	// TraceLabel prefixes the run's trace track names (defaults to the
	// mode name), letting sweep points identify themselves in Perfetto.
	TraceLabel string
}

// DefaultPreemptSteps is the decode quantum when SimConfig leaves it 0.
const DefaultPreemptSteps = 8

// Validate rejects degenerate scenarios.
func (c SimConfig) Validate() error {
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("serve: arrival rate must be positive")
	}
	if c.Queries <= 0 {
		return fmt.Errorf("serve: query count must be positive")
	}
	if c.Replicas <= 0 {
		return fmt.Errorf("serve: replica count must be positive")
	}
	if c.QueueCap < 0 || c.DeadlineTTLT < 0 || c.Timeout < 0 || c.PreemptSteps < 0 {
		return fmt.Errorf("serve: negative limit in %+v", c)
	}
	return nil
}

// Metrics summarizes one event-driven serving run.
type Metrics struct {
	Mode     Mode
	Kind     engine.Kind
	Replicas int

	// Query accounting: Arrived = Admitted + Rejected;
	// Admitted = Completed + TimedOut.
	Arrived, Admitted, Rejected int
	Completed, TimedOut         int

	// TTFT is arrival to first token, TTLT arrival to last token, TBT
	// the gap between consecutive tokens of one query (including
	// preemption wait). All in seconds, over completed queries.
	TTFT, TTLT, TBT stats.Quantiles

	// Makespan is simulation start (t=0) to the last event; the first
	// arrival lands one exponential gap after t=0, matching the legacy
	// Simulate clock (its utilization divides by the same span).
	Makespan float64
	// ThroughputQPS is completions per second of makespan; GoodputQPS
	// counts only completions within DeadlineTTLT.
	ThroughputQPS, GoodputQPS float64
	// SLOMet is the completion count behind GoodputQPS.
	SLOMet int

	// SoCUtilization and PIMUtilization are busy-seconds over
	// replica-seconds per lane type.
	SoCUtilization, PIMUtilization float64

	// QueueDepth is the time-weighted distribution of in-system queries
	// (waiting + executing); SoCBusy/PIMBusy the time-weighted busy-lane
	// counts (0..Replicas).
	QueueDepth       stats.TimeHist
	SoCBusy, PIMBusy stats.TimeHist
	// MaxQueueDepth is the deepest in-system backlog observed.
	MaxQueueDepth int
}

// query is one request flowing through the simulator.
type query struct {
	id              int
	arrival         float64
	prefill, decode int
	stepsDone       int     // decode steps finished (of decode-1)
	firstToken      float64 // prefill completion (token 1)
	prevToken       float64 // last emitted token (TBT anchor)
}

// replica is one device: a SoC lane, a PIM lane, and its decode queue
// (queries stay on the replica that prefilled them — the KV cache lives
// there).
type replica struct {
	socBusy bool
	pimBusy bool
	// pimFreeAt is when an in-flight relayout window releases the PIM
	// lane (RelayoutHybrid only).
	pimFreeAt float64
	decodeQ   []*query
}

// sim is the run state of one event-driven simulation.
type sim struct {
	cfg   SimConfig
	sys   *engine.System
	evs   eventHeap
	seq   int64
	reps  []replica
	wait  []*query // admission FIFO feeding SoC lanes
	relay float64  // per-handoff re-layout seconds (RelayoutHybrid)

	now      float64
	inSystem int
	busySoC  int
	busyPIM  int
	lastT    float64 // previous state-change instant for the TimeHists

	socBusySecs, pimBusySecs float64

	m     Metrics
	ttfts []float64
	ttlts []float64
	tbts  []float64

	// tr is nil when tracing is off; pid0 is the first replica's trace
	// pid and qpid the admission-queue counter track.
	tr   *obs.Tracer
	pid0 int64
	qpid int64
}

// Trace lane (thread) ids within one replica's trace process, and the
// seconds-to-trace-microseconds scale (trace-event timestamps are µs).
const (
	traceLaneSoC int64 = 0
	traceLanePIM int64 = 1
	traceUSPerS        = 1e6
)

// initTrace names the run's trace tracks: one process per replica (a SoC
// and a PIM lane thread each) plus one admission-queue counter process.
func (sm *sim) initTrace() {
	label := sm.cfg.TraceLabel
	if label == "" {
		label = sm.cfg.Mode.String()
	}
	for ri := 0; ri < sm.cfg.Replicas; ri++ {
		pid := sm.pid0 + int64(ri)
		sm.tr.ProcessName(pid, fmt.Sprintf("%s replica %d", label, ri))
		sm.tr.ThreadName(pid, traceLaneSoC, "SoC prefill lane")
		sm.tr.ThreadName(pid, traceLanePIM, "PIM decode lane")
	}
	sm.tr.ProcessName(sm.qpid, label+" admission queue")
}

// traceSpan records one lane-occupancy slice (prefill, decode quantum,
// re-layout window) tagged with the owning query.
func (sm *sim) traceSpan(ri int, lane int64, name string, q *query, start, dur float64) {
	if sm.tr == nil {
		return
	}
	sm.tr.CompleteArg(sm.pid0+int64(ri), lane, name, start*traceUSPerS, dur*traceUSPerS, "query", float64(q.id))
}

// traceInstant records an admission-path marker (arrival, reject,
// timeout, complete) on the queue track.
func (sm *sim) traceInstant(name string, q *query) {
	if sm.tr == nil {
		return
	}
	sm.tr.InstantArg(sm.qpid, 0, name, sm.now*traceUSPerS, "query", float64(q.id))
}

// traceDepth samples the in-system query count after a transition.
func (sm *sim) traceDepth() {
	if sm.tr == nil {
		return
	}
	sm.tr.Counter(sm.qpid, "in-system queries", sm.now*traceUSPerS, float64(sm.inSystem))
}

// Run simulates cfg.Queries through the two-lane replica fleet and
// summarizes latencies, throughput and lane utilization. The run is
// single-threaded and fully deterministic in cfg.Seed.
func Run(s *engine.System, cfg SimConfig) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if cfg.PreemptSteps == 0 {
		cfg.PreemptSteps = DefaultPreemptSteps
	}
	ds, err := workload.Generate(cfg.Workload, cfg.Queries, cfg.Seed+1)
	if err != nil {
		return Metrics{}, err
	}
	sm := &sim{
		cfg:  cfg,
		sys:  s,
		reps: make([]replica, cfg.Replicas),
		m:    Metrics{Mode: cfg.Mode, Kind: cfg.Kind, Replicas: cfg.Replicas},
	}
	if cfg.Tracer.Enabled() {
		sm.tr = cfg.Tracer
		sm.pid0 = cfg.TracePIDBase
		sm.qpid = cfg.TracePIDBase + int64(cfg.Replicas)
		sm.initTrace()
	}
	if cfg.Mode == RelayoutHybrid {
		if sm.relay, err = s.RelayoutAllWeightsSeconds(); err != nil {
			return Metrics{}, err
		}
	}
	// The arrival process is owned by this run: a fresh RNG consumes
	// exactly one exponential gap per query, in arrival order, matching
	// the legacy Simulate clock.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var clock float64
	for i, q := range ds.Queries {
		clock += rng.ExpFloat64() / cfg.ArrivalRate
		sm.push(&event{at: clock, kind: evArrival, q: &query{
			id: i, arrival: clock, prefill: q.Prefill, decode: q.Decode,
		}})
	}
	if err := sm.loop(); err != nil {
		return Metrics{}, err
	}
	return sm.finish(), nil
}

// push adds an event with the next tie-break sequence number.
func (sm *sim) push(e *event) {
	e.seq = sm.seq
	sm.seq++
	heap.Push(&sm.evs, e)
}

// advance moves the clock to t, charging the elapsed interval to the
// time-weighted histograms at the state held since the last change.
func (sm *sim) advance(t float64) {
	if dt := t - sm.lastT; dt > 0 {
		sm.m.QueueDepth.Add(float64(sm.inSystem), dt)
		sm.m.SoCBusy.Add(float64(sm.busySoC), dt)
		sm.m.PIMBusy.Add(float64(sm.busyPIM), dt)
		sm.lastT = t
	}
	sm.now = t
}

// loop drains the event heap.
func (sm *sim) loop() error {
	for sm.evs.Len() > 0 {
		e := heap.Pop(&sm.evs).(*event)
		sm.advance(e.at)
		switch e.kind {
		case evArrival:
			if err := sm.onArrival(e.q); err != nil {
				return err
			}
		case evPrefillDone:
			if err := sm.onPrefillDone(e.q, e.rep); err != nil {
				return err
			}
		case evQuantumDone:
			if err := sm.onQuantumDone(e.q, e.rep, e.steps); err != nil {
				return err
			}
		}
	}
	return nil
}

// onArrival admits or rejects a query, then tries to start prefills.
func (sm *sim) onArrival(q *query) error {
	sm.m.Arrived++
	if sm.cfg.QueueCap > 0 && sm.inSystem >= sm.cfg.QueueCap {
		sm.m.Rejected++
		sm.traceInstant("reject", q)
		return nil
	}
	sm.m.Admitted++
	sm.inSystem++
	if sm.inSystem > sm.m.MaxQueueDepth {
		sm.m.MaxQueueDepth = sm.inSystem
	}
	sm.traceInstant("arrival", q)
	sm.traceDepth()
	sm.wait = append(sm.wait, q)
	return sm.dispatchPrefills()
}

// expired reports whether q has outlived the hard timeout.
func (sm *sim) expired(q *query) bool {
	return sm.cfg.Timeout > 0 && sm.now-q.arrival > sm.cfg.Timeout
}

// abort drops a query at a scheduling boundary.
func (sm *sim) abort(q *query) {
	sm.m.TimedOut++
	sm.inSystem--
	sm.traceInstant("timeout", q)
	sm.traceDepth()
}

// dispatchPrefills starts waiting queries on every free SoC lane. In
// Serial mode a replica must be entirely idle (both lanes and no decode
// backlog) — the query owns the whole device.
func (sm *sim) dispatchPrefills() error {
	for len(sm.wait) > 0 {
		q := sm.wait[0]
		if sm.expired(q) {
			sm.wait = sm.wait[1:]
			sm.abort(q)
			continue
		}
		ri := -1
		for i := range sm.reps {
			r := &sm.reps[i]
			if r.socBusy {
				continue
			}
			if sm.cfg.Mode == Serial && (r.pimBusy || len(r.decodeQ) > 0) {
				continue
			}
			ri = i
			break
		}
		if ri < 0 {
			return nil
		}
		sm.wait = sm.wait[1:]
		if err := sm.startPrefill(q, ri); err != nil {
			return err
		}
	}
	return nil
}

// startPrefill occupies the replica's SoC lane with q's prefill phase.
func (sm *sim) startPrefill(q *query, ri int) error {
	r := &sm.reps[ri]
	switch sm.cfg.Mode {
	case Serial:
		// The whole query runs as one exclusive service interval, using
		// the design's own prefill routing (dynamic offload included) —
		// exactly the legacy closed-form model.
		ttft, err := sm.sys.TTFT(sm.cfg.Kind, q.prefill)
		if err != nil {
			return err
		}
		ttlt, err := sm.sys.TTLT(sm.cfg.Kind, q.prefill, q.decode)
		if err != nil {
			return err
		}
		r.socBusy, r.pimBusy = true, true
		sm.busySoC++
		sm.busyPIM++
		sm.socBusySecs += ttlt
		sm.pimBusySecs += ttlt
		sm.traceSpan(ri, traceLaneSoC, "prefill", q, sm.now, ttft)
		sm.push(&event{at: sm.now + ttft, kind: evPrefillDone, q: q, rep: ri})
		return nil
	default:
		// Cooperative lanes: prefill takes the SoC route (the PIM lane
		// is decoding other queries on the same weights). The hybrid
		// baseline's TTFTStatic already charges the re-layout; the mode
		// additionally stalls the PIM lane for that window, because the
		// weights are being rewritten. Designs that pay no re-layout of
		// their own get it charged explicitly.
		pre, err := sm.sys.TTFTStatic(sm.cfg.Kind, q.prefill)
		if err != nil {
			return err
		}
		if sm.cfg.Mode == RelayoutHybrid {
			switch sm.cfg.Kind {
			case engine.HybridStatic, engine.HybridDynamic:
				// Re-layout already inside TTFTStatic.
			default:
				pre += sm.relay
			}
			if t := sm.now + sm.relay; t > r.pimFreeAt {
				r.pimFreeAt = t
			}
			sm.traceSpan(ri, traceLanePIM, "relayout", q, sm.now, sm.relay)
		}
		r.socBusy = true
		sm.busySoC++
		sm.socBusySecs += pre
		sm.traceSpan(ri, traceLaneSoC, "prefill", q, sm.now, pre)
		sm.push(&event{at: sm.now + pre, kind: evPrefillDone, q: q, rep: ri})
		return nil
	}
}

// onPrefillDone emits the first token and hands the query to the decode
// lane (or completes it when there is nothing left to decode).
func (sm *sim) onPrefillDone(q *query, ri int) error {
	r := &sm.reps[ri]
	q.firstToken = sm.now
	q.prevToken = sm.now
	sm.ttfts = append(sm.ttfts, sm.now-q.arrival)
	if sm.cfg.Mode == Serial {
		// The device stays occupied; completion arrives as one quantum
		// covering every decode step.
		if q.decode <= 1 {
			return sm.completeSerial(q, ri)
		}
		dur, err := sm.quantumSeconds(q, q.decode-1)
		if err != nil {
			return err
		}
		sm.push(&event{at: sm.now + dur, kind: evQuantumDone, q: q, rep: ri, steps: q.decode - 1})
		return nil
	}
	r.socBusy = false
	sm.busySoC--
	if q.decode <= 1 {
		sm.complete(q)
	} else {
		r.decodeQ = append(r.decodeQ, q)
	}
	if err := sm.dispatchPrefills(); err != nil {
		return err
	}
	return sm.dispatchDecode(ri)
}

// quantumSeconds sums the next `steps` decode-step latencies of q.
func (sm *sim) quantumSeconds(q *query, steps int) (float64, error) {
	var t float64
	for i := 0; i < steps; i++ {
		st, err := sm.sys.DecodeStepSeconds(sm.cfg.Kind, q.prefill+q.stepsDone+i+1)
		if err != nil {
			return 0, err
		}
		t += st
	}
	return t, nil
}

// emitTokens replays the token emission times of a finished quantum that
// started at `start`, recording the inter-token gaps.
func (sm *sim) emitTokens(q *query, start float64, steps int) error {
	t := start
	for i := 0; i < steps; i++ {
		st, err := sm.sys.DecodeStepSeconds(sm.cfg.Kind, q.prefill+q.stepsDone+i+1)
		if err != nil {
			return err
		}
		t += st
		sm.tbts = append(sm.tbts, t-q.prevToken)
		q.prevToken = t
	}
	q.stepsDone += steps
	return nil
}

// dispatchDecode starts the next decode quantum on a replica's PIM lane
// (round-robin over its decode queue at PreemptSteps granularity).
func (sm *sim) dispatchDecode(ri int) error {
	r := &sm.reps[ri]
	for !r.pimBusy && len(r.decodeQ) > 0 {
		q := r.decodeQ[0]
		r.decodeQ = r.decodeQ[1:]
		if sm.expired(q) {
			sm.abort(q)
			continue
		}
		steps := q.decode - 1 - q.stepsDone
		if steps > sm.cfg.PreemptSteps {
			steps = sm.cfg.PreemptSteps
		}
		dur, err := sm.quantumSeconds(q, steps)
		if err != nil {
			return err
		}
		// A relayout window may still hold the lane: the quantum is
		// reserved now and starts when the weights are back.
		start := sm.now
		if r.pimFreeAt > start {
			start = r.pimFreeAt
		}
		r.pimBusy = true
		sm.busyPIM++
		sm.pimBusySecs += dur
		sm.push(&event{at: start + dur, kind: evQuantumDone, q: q, rep: ri, steps: steps})
	}
	return nil
}

// onQuantumDone finishes one decode quantum: tokens are emitted, the
// query completes or rejoins the queue, and the lane picks its next
// quantum.
func (sm *sim) onQuantumDone(q *query, ri int, steps int) error {
	r := &sm.reps[ri]
	if sm.cfg.Mode == Serial {
		if err := sm.emitTokens(q, q.firstToken, steps); err != nil {
			return err
		}
		sm.traceSpan(ri, traceLanePIM, "decode", q, q.firstToken, sm.now-q.firstToken)
		return sm.completeSerial(q, ri)
	}
	// Recover the quantum's start: its steps ran back-to-back ending
	// now (quantumSeconds is memoized, so the recompute is cheap).
	dur, err := sm.quantumSeconds(q, steps)
	if err != nil {
		return err
	}
	if err := sm.emitTokens(q, sm.now-dur, steps); err != nil {
		return err
	}
	sm.traceSpan(ri, traceLanePIM, "decode", q, sm.now-dur, dur)
	r.pimBusy = false
	sm.busyPIM--
	if q.stepsDone >= q.decode-1 {
		sm.complete(q)
	} else {
		r.decodeQ = append(r.decodeQ, q)
	}
	return sm.dispatchDecode(ri)
}

// complete retires a cooperative-mode query.
func (sm *sim) complete(q *query) {
	sm.m.Completed++
	sm.inSystem--
	ttlt := q.prevToken - q.arrival
	sm.ttlts = append(sm.ttlts, ttlt)
	if sm.cfg.DeadlineTTLT == 0 || ttlt <= sm.cfg.DeadlineTTLT {
		sm.m.SLOMet++
	}
	sm.traceInstant("complete", q)
	sm.traceDepth()
}

// completeSerial retires a serial-mode query and frees the whole device.
func (sm *sim) completeSerial(q *query, ri int) error {
	r := &sm.reps[ri]
	r.socBusy, r.pimBusy = false, false
	sm.busySoC--
	sm.busyPIM--
	sm.complete(q)
	return sm.dispatchPrefills()
}

// finish reduces the collected samples into the Metrics.
func (sm *sim) finish() Metrics {
	m := &sm.m
	m.TTFT = stats.QuantilesOf(sm.ttfts)
	m.TTLT = stats.QuantilesOf(sm.ttlts)
	m.TBT = stats.QuantilesOf(sm.tbts)
	m.Makespan = sm.now
	if m.Makespan > 0 {
		m.ThroughputQPS = float64(m.Completed) / m.Makespan
		m.GoodputQPS = float64(m.SLOMet) / m.Makespan
		rs := float64(sm.cfg.Replicas) * m.Makespan
		m.SoCUtilization = sm.socBusySecs / rs
		m.PIMUtilization = sm.pimBusySecs / rs
	}
	return *m
}
