package serve

import (
	"reflect"
	"testing"

	"facil/internal/engine"
	"facil/internal/workload"
)

// stepCfg is a small two-lane scenario exercising admission bounds,
// retries and preemption — enough machinery that a divergence between
// Run and the stepped loop would show.
func stepCfg() SimConfig {
	return SimConfig{
		Mode: Cooperative, Kind: engine.FACIL,
		Replicas: 2, ArrivalRate: 2, Queries: 40,
		Workload: workload.AlpacaSpec(), Seed: 7,
		QueueCap: 8, DeadlineTTLT: 20, MaxRetries: 2,
	}
}

// TestSteppedRunMatchesRun drives a Sim one event at a time and asserts
// the Metrics are identical to the one-shot Run of the same config —
// stepping changes who turns the crank, not what happens.
func TestSteppedRunMatchesRun(t *testing.T) {
	s := servingSystem(t)
	want, err := Run(s, stepCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sim, err := NewSim(s, stepCfg())
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	steps := 0
	var lastNow float64
	for {
		more, err := sim.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", steps, err)
		}
		if !more {
			break
		}
		steps++
		if now := sim.Now(); now < lastNow {
			t.Fatalf("virtual clock went backwards: %g after %g", now, lastNow)
		} else {
			lastNow = now
		}
	}
	if steps == 0 {
		t.Fatal("no events stepped")
	}
	got := sim.Finish()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stepped metrics diverge from Run:\n got %+v\nwant %+v", got, want)
	}
	if sim.Pending() != 0 {
		t.Errorf("Pending() = %d after drain", sim.Pending())
	}
}

// TestLiveCountersAdvance pins the Live counter wiring: a run moves the
// global counters by exactly its own Metrics accounting.
func TestLiveCountersAdvance(t *testing.T) {
	s := servingSystem(t)
	before := Live.Snapshot()
	m, err := Run(s, stepCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := Live.Snapshot()
	// Other tests may run concurrently under -parallel; counters are
	// monotonic, so deltas are at least this run's contribution.
	if d := after.Completed - before.Completed; d < int64(m.Completed) {
		t.Errorf("Completed advanced by %d, want >= %d", d, m.Completed)
	}
	if d := after.Arrived - before.Arrived; d < int64(m.Arrived) {
		t.Errorf("Arrived advanced by %d, want >= %d", d, m.Arrived)
	}
	if d := after.RunsFinished - before.RunsFinished; d < 1 {
		t.Errorf("RunsFinished advanced by %d, want >= 1", d)
	}
	if d := after.Events - before.Events; d <= 0 {
		t.Errorf("Events advanced by %d, want > 0", d)
	}
	if d := after.VirtualSeconds - before.VirtualSeconds; d < m.Makespan*0.99 {
		t.Errorf("VirtualSeconds advanced by %g, want >= makespan %g", d, m.Makespan)
	}
}

// TestEventArenaRecycles pins the free-list contract: a released slot is
// handed back by the next alloc, cleared, and an empty free list grows
// the slab instead of double-issuing a slot.
func TestEventArenaRecycles(t *testing.T) {
	var a eventArena
	a.reset()
	i1 := a.alloc()
	a.slab[i1].kind = evQuantumDone
	a.slab[i1].steps = 3
	a.release(i1)
	i2 := a.alloc()
	if i2 != i1 {
		t.Errorf("alloc returned slot %d, want the retired slot %d", i2, i1)
	}
	if e := a.slab[i2]; e.kind != evArrival || e.steps != 0 || e.next != -1 {
		t.Errorf("retired slot not cleared: %+v", e)
	}
	if i3 := a.alloc(); i3 == i1 {
		t.Error("empty free list re-issued an in-use slot")
	}
}
