// Package serve layers a single-device, FCFS serving queue on top of the
// inference engines: queries arrive over time, wait for the device, then
// run prefill+decode to completion. On-device assistants serve exactly
// this way (one user, bursty requests), and queueing amplifies the
// latency differences between the designs: a slower engine is closer to
// saturation at the same arrival rate, so its *perceived* time-to-first-
// token degrades super-linearly. Not a paper experiment — an extension
// quantifying user-perceived responsiveness under load.
package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"facil/internal/engine"
	"facil/internal/parallel"
	"facil/internal/stats"
	"facil/internal/workload"
)

// Config describes one serving scenario.
type Config struct {
	// ArrivalRate is the mean query arrival rate in queries/second
	// (exponential inter-arrival gaps).
	ArrivalRate float64
	// Queries is the number of simulated queries.
	Queries int
	// Workload samples the (prefill, decode) lengths.
	Workload workload.Spec
	// Seed drives arrivals and lengths.
	Seed int64
}

// Validate rejects degenerate scenarios.
func (c Config) Validate() error {
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("serve: arrival rate must be positive")
	}
	if c.Queries <= 0 {
		return fmt.Errorf("serve: query count must be positive")
	}
	return nil
}

// Summary reports the serving behaviour of one design.
type Summary struct {
	Kind engine.Kind
	// PerceivedTTFT is wait + TTFT (arrival to first token), seconds.
	PerceivedTTFTMean float64
	PerceivedTTFTP99  float64
	// PerceivedTTLT is arrival to last token.
	PerceivedTTLTMean float64
	// Utilization is busy time / makespan.
	Utilization float64
	// MaxQueueDepth is the deepest backlog observed.
	MaxQueueDepth int
}

// Simulate runs cfg.Queries through an FCFS single-device queue under a
// design and summarizes perceived latencies.
func Simulate(s *engine.System, k engine.Kind, cfg Config) (Summary, error) {
	if err := cfg.Validate(); err != nil {
		return Summary{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds, err := workload.Generate(cfg.Workload, cfg.Queries, cfg.Seed+1)
	if err != nil {
		return Summary{}, err
	}

	var (
		clock    float64 // arrival clock
		freeAt   float64 // device becomes free
		busy     float64
		ttfts    []float64
		ttlts    []float64
		inFlight floatHeap // completion times of queued/running queries
		maxDepth int
	)
	for _, q := range ds.Queries {
		clock += rng.ExpFloat64() / cfg.ArrivalRate
		ttft, err := s.TTFT(k, q.Prefill)
		if err != nil {
			return Summary{}, err
		}
		ttlt, err := s.TTLT(k, q.Prefill, q.Decode)
		if err != nil {
			return Summary{}, err
		}
		start := math.Max(clock, freeAt)
		freeAt = start + ttlt
		busy += ttlt
		ttfts = append(ttfts, start+ttft-clock)
		ttlts = append(ttlts, freeAt-clock)

		// Queue depth: completions still pending at this arrival. The
		// min-heap retires finished queries in O(log n) per arrival
		// instead of rescanning every query simulated so far.
		inFlight.pushTime(freeAt)
		inFlight.popExpired(clock)
		if depth := inFlight.Len(); depth > maxDepth {
			maxDepth = depth
		}
	}
	sum := Summary{
		Kind:              k,
		PerceivedTTFTMean: stats.Mean(ttfts),
		PerceivedTTFTP99:  stats.Percentile(ttfts, 99),
		PerceivedTTLTMean: stats.Mean(ttlts),
		MaxQueueDepth:     maxDepth,
	}
	if freeAt > 0 {
		sum.Utilization = busy / freeAt
	}
	return sum, nil
}

// Compare runs every design through the same scenario. Designs simulate
// as independent sweep points (each replays its own seeded arrival
// process), with summaries returned in kind order; opts tune the worker
// pool and progress reporting.
func Compare(ctx context.Context, s *engine.System, kinds []engine.Kind, cfg Config, opts ...parallel.Option) ([]Summary, error) {
	return parallel.Sweep(ctx, kinds, func(ctx context.Context, k engine.Kind) (Summary, error) {
		return Simulate(s, k, cfg)
	}, opts...)
}
