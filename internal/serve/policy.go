package serve

import "fmt"

// Policy selects the degradation response when a query's decode cannot
// run on its replica's PIM lane (lane failure or open circuit breaker)
// or when its MapID arrives corrupted at the MC frontend.
type Policy int

const (
	// PolicyNone is the no-policy tier: a query hitting a dead PIM
	// lane (or a silently mis-translated MapID) fails terminally. This
	// is what a fault-unaware serving stack does.
	PolicyNone Policy = iota
	// PolicySoCFallback degrades decode to the SoC-only path — the
	// paper's own baseline becomes the fallback tier. Decode quanta
	// run on the replica's SoC lane (contending with prefills, prefill
	// first) at SoC-only per-step latency until the PIM lane is usable
	// again.
	PolicySoCFallback
	// PolicyFailover migrates the decode to another replica whose PIM
	// lane is live and idle with no decode backlog, paying
	// FailoverPenalty (the KV-cache transfer) before its next quantum;
	// with no spare capacity anywhere it degrades to the SoC fallback
	// path. Failover therefore never does worse than PolicySoCFallback:
	// it only replaces SoC-speed decode with idle PIM-speed decode.
	PolicyFailover
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicySoCFallback:
		return "soc-fallback"
	case PolicyFailover:
		return "failover"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy resolves a command-line policy name.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown policy %q (none, soc-fallback, failover)", s)
}

// Policies lists the degradation policies in escalation order.
func Policies() []Policy { return []Policy{PolicyNone, PolicySoCFallback, PolicyFailover} }
