package serve

import "fmt"

// Policy selects the degradation response when a query's decode cannot
// run on its replica's PIM lane (lane failure or open circuit breaker)
// or when its MapID arrives corrupted at the MC frontend.
type Policy int

const (
	// PolicyNone is the no-policy tier: a query hitting a dead PIM
	// lane (or a silently mis-translated MapID) fails terminally. This
	// is what a fault-unaware serving stack does.
	PolicyNone Policy = iota
	// PolicySoCFallback degrades decode to the SoC-only path — the
	// paper's own baseline becomes the fallback tier. Decode quanta
	// run on the replica's SoC lane (contending with prefills, prefill
	// first) at SoC-only per-step latency until the PIM lane is usable
	// again.
	PolicySoCFallback
	// PolicyFailover migrates the decode to another replica whose PIM
	// lane is live and idle with no decode backlog, paying
	// FailoverPenalty (the KV-cache transfer) before its next quantum;
	// with no spare capacity anywhere it degrades to the SoC fallback
	// path. Failover therefore never does worse than PolicySoCFallback:
	// it only replaces SoC-speed decode with idle PIM-speed decode.
	PolicyFailover
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicySoCFallback:
		return "soc-fallback"
	case PolicyFailover:
		return "failover"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy resolves a command-line policy name.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown policy %q (none, soc-fallback, failover)", s)
}

// Policies lists the degradation policies in escalation order.
func Policies() []Policy { return []Policy{PolicyNone, PolicySoCFallback, PolicyFailover} }

// Breaker states: closed admits dispatches, open rejects them until the
// cooldown elapses, and the first dispatch after the cooldown runs as a
// half-open probe.
const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

// Breaker is the circuit breaker shared by every layer of the serving
// stack: the in-device PIM-lane breaker (one per replica, driven by
// failed decode dispatches) and the cluster router's per-device health
// breaker (one per fleet member, driven by barrier-observed failures)
// run the same state machine. Threshold consecutive Failure calls open
// it; while open, Admit refuses until the cooldown elapses, then the
// next Admit half-opens it and the dispatch probes the resource —
// Success closes it, Failure reopens it immediately.
//
// The zero value is a closed breaker, ready for use. Threshold and
// cooldown are call parameters rather than fields so a fleet of
// breakers costs three words each and reconfiguring is free.
type Breaker struct {
	state    int
	consec   int
	openedAt float64
}

// Blocked reports whether the breaker rejects dispatches at time now,
// without mutating state — the read-only form of Admit, used to filter
// candidates (failover targets, routable devices) before committing to
// one.
func (b *Breaker) Blocked(now, cooldown float64) bool {
	return b.state == brkOpen && now-b.openedAt < cooldown
}

// Admit decides whether a dispatch may proceed at time now: an open
// breaker inside its cooldown refuses; past the cooldown it transitions
// to half-open and admits the dispatch as a probe.
func (b *Breaker) Admit(now, cooldown float64) bool {
	if b.state == brkOpen {
		if now-b.openedAt < cooldown {
			return false
		}
		b.state = brkHalfOpen
	}
	return true
}

// Failure records one failed dispatch at time now and reports whether
// this call opened the breaker: a half-open probe reopens immediately,
// a closed breaker opens at threshold consecutive failures.
func (b *Breaker) Failure(now float64, threshold int) bool {
	b.consec++
	if b.state == brkHalfOpen || b.consec >= threshold {
		b.state = brkOpen
		b.openedAt = now
		return true
	}
	return false
}

// Success records one successful dispatch, closing the breaker and
// zeroing the consecutive-failure count; it reports whether the call
// closed a half-open probe (the recovery transition worth tracing).
func (b *Breaker) Success() bool {
	probed := b.state == brkHalfOpen
	b.state = brkClosed
	b.consec = 0
	return probed
}

// Probing reports whether the breaker is half-open: a probe dispatch
// was admitted after the cooldown and its outcome has not been recorded
// yet. Hosts that meter recovery (the cluster router's probation quota)
// use it to cap how much traffic a recovering resource earns before the
// probe's verdict is in.
func (b *Breaker) Probing() bool { return b.state == brkHalfOpen }
