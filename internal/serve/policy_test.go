package serve

import "testing"

// TestBreakerLifecycle walks the full breaker state machine: closed
// breakers absorb sub-threshold failures, the threshold-th consecutive
// failure opens, the cooldown blocks dispatches, the first Admit past
// the cooldown half-opens as a probe, a failed probe reopens instantly,
// and a successful probe closes.
func TestBreakerLifecycle(t *testing.T) {
	var b Breaker
	const threshold = 3
	const cooldown = 60.0

	// The zero value is closed and admitting.
	if b.Blocked(0, cooldown) {
		t.Error("zero-value breaker blocks")
	}
	if !b.Admit(0, cooldown) {
		t.Error("zero-value breaker refuses dispatch")
	}
	if b.Probing() {
		t.Error("closed breaker reports probing")
	}

	// Failures below the threshold leave it closed.
	if b.Failure(1, threshold) {
		t.Error("opened on first failure with threshold 3")
	}
	if b.Failure(2, threshold) {
		t.Error("opened on second failure with threshold 3")
	}
	if b.Blocked(2, cooldown) {
		t.Error("blocked while still closed")
	}

	// The threshold-th consecutive failure opens it.
	if !b.Failure(3, threshold) {
		t.Error("threshold-th consecutive failure did not open")
	}
	if !b.Blocked(3, cooldown) || !b.Blocked(3+cooldown-0.01, cooldown) {
		t.Error("open breaker not blocked inside the cooldown")
	}
	if b.Admit(3+cooldown-0.01, cooldown) {
		t.Error("admitted a dispatch inside the cooldown")
	}
	if b.Probing() {
		t.Error("probing inside the cooldown (Admit never half-opened)")
	}

	// Blocked is read-only: past the cooldown it reports false but the
	// breaker stays open until an Admit converts it to a probe.
	if b.Blocked(3+cooldown, cooldown) {
		t.Error("blocked at the exact cooldown boundary")
	}
	if b.Probing() {
		t.Error("Blocked mutated the breaker into half-open")
	}
	if !b.Admit(3+cooldown, cooldown) {
		t.Error("refused the probe dispatch at the cooldown boundary")
	}
	if !b.Probing() {
		t.Error("not half-open after the post-cooldown Admit")
	}

	// A failed probe reopens immediately — no threshold accumulation.
	if !b.Failure(3+cooldown, threshold) {
		t.Error("failed probe did not reopen")
	}
	if !b.Blocked(4+cooldown, cooldown) {
		t.Error("not blocked after a failed probe")
	}

	// Recover again; this time the probe succeeds and closes it.
	probeAt := 3 + 2*cooldown
	if !b.Admit(probeAt, cooldown) {
		t.Error("refused the second probe")
	}
	if !b.Success() {
		t.Error("Success on a half-open breaker did not report the probe close")
	}
	if b.Probing() || b.Blocked(probeAt, cooldown) {
		t.Error("breaker not fully closed after a successful probe")
	}
}

// TestBreakerSuccessResetsCount pins that Success zeroes the
// consecutive-failure count: failures after a success start a fresh run
// toward the threshold rather than resuming the old one.
func TestBreakerSuccessResetsCount(t *testing.T) {
	var b Breaker
	const threshold = 3
	b.Failure(0, threshold)
	b.Failure(1, threshold)
	if b.Success() {
		t.Error("Success on a closed breaker reported a probe close")
	}
	if b.Failure(2, threshold) {
		t.Error("opened on the first failure after a success")
	}
	if b.Failure(3, threshold) {
		t.Error("opened on the second failure after a success")
	}
	if !b.Failure(4, threshold) {
		t.Error("did not open at threshold consecutive failures")
	}
}

// TestBreakerThresholdOne pins the degenerate fail-fast configuration:
// every failure opens the breaker immediately.
func TestBreakerThresholdOne(t *testing.T) {
	var b Breaker
	if !b.Failure(0, 1) {
		t.Error("threshold-1 breaker did not open on first failure")
	}
	if !b.Blocked(0.5, 1.0) {
		t.Error("not blocked right after opening")
	}
	if !b.Admit(1.0, 1.0) || !b.Probing() {
		t.Error("did not half-open at the 1s cooldown")
	}
}
