package serve

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"facil/internal/engine"
	"facil/internal/fault"
)

// outageScenario schedules one long PIM-lane outage on replica 0 and
// leaves every other replica healthy.
func outageScenario(start, end float64) fault.Scenario {
	return fault.Scenario{
		Seed:        7,
		LaneWindows: [][]fault.Window{{{Start: start, End: end}}},
	}
}

// TestFaultConfigValidation is the table-driven rejection check of every
// fault/retry knob: NaN and Inf durations, negative limits, inconsistent
// retry bounds, unknown policies, bad scenarios and serial-mode faults
// must all be rejected before a run starts.
func TestFaultConfigValidation(t *testing.T) {
	base := simConfig(Cooperative, engine.FACIL, 1)
	cases := []struct {
		name   string
		mutate func(*SimConfig)
	}{
		{"NaN arrival rate", func(c *SimConfig) { c.ArrivalRate = math.NaN() }},
		{"Inf arrival rate", func(c *SimConfig) { c.ArrivalRate = math.Inf(1) }},
		{"NaN deadline", func(c *SimConfig) { c.DeadlineTTLT = math.NaN() }},
		{"Inf deadline", func(c *SimConfig) { c.DeadlineTTLT = math.Inf(1) }},
		{"negative deadline", func(c *SimConfig) { c.DeadlineTTLT = -1 }},
		{"NaN timeout", func(c *SimConfig) { c.Timeout = math.NaN() }},
		{"Inf timeout", func(c *SimConfig) { c.Timeout = math.Inf(1) }},
		{"NaN failover penalty", func(c *SimConfig) { c.FailoverPenalty = math.NaN() }},
		{"negative failover penalty", func(c *SimConfig) { c.FailoverPenalty = -0.1 }},
		{"Inf breaker cooldown", func(c *SimConfig) { c.BreakerCooldown = math.Inf(1) }},
		{"negative breaker threshold", func(c *SimConfig) { c.BreakerThreshold = -1 }},
		{"negative retries", func(c *SimConfig) { c.MaxRetries = -1 }},
		{"NaN retry base", func(c *SimConfig) { c.RetryBase = math.NaN() }},
		{"Inf retry cap", func(c *SimConfig) { c.RetryCap = math.Inf(1) }},
		{"retry base above cap", func(c *SimConfig) { c.RetryBase = 2; c.RetryCap = 1 }},
		{"retries without queue cap", func(c *SimConfig) { c.MaxRetries = 3 }},
		{"policy below range", func(c *SimConfig) { c.Policy = Policy(-1) }},
		{"policy above range", func(c *SimConfig) { c.Policy = Policy(99) }},
		{"MTBF without MTTR", func(c *SimConfig) { c.Faults.LaneMTBF = 10 }},
		{"NaN MTBF", func(c *SimConfig) { c.Faults.LaneMTBF = math.NaN() }},
		{"overlapping lane windows", func(c *SimConfig) {
			c.Faults.LaneWindows = [][]fault.Window{{{Start: 0, End: 5}, {Start: 4, End: 6}}}
		}},
		{"inverted thermal window", func(c *SimConfig) {
			c.Faults.Thermal = []fault.Window{{Start: 3, End: 3}}
		}},
		{"fractional refresh mult", func(c *SimConfig) {
			c.Faults.Thermal = []fault.Window{{Start: 0, End: 1}}
			c.Faults.RefreshMult = 0.5
		}},
		{"corrupt rate above 1", func(c *SimConfig) { c.Faults.MapIDCorruptRate = 1.5 }},
		{"NaN corrupt rate", func(c *SimConfig) { c.Faults.MapIDCorruptRate = math.NaN() }},
		{"faults in serial mode", func(c *SimConfig) {
			c.Mode = Serial
			c.Faults = outageScenario(1, 2)
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

// TestFaultConservation sweeps (seed x policy x fault rate) and checks
// the query-conservation identities on every cell — no query is lost or
// double-counted under any fault schedule — plus bitwise determinism:
// the same cell run twice yields deeply equal Metrics.
func TestFaultConservation(t *testing.T) {
	s := servingSystem(t)
	for _, seed := range []int64{1, 42} {
		for _, mtbf := range []float64{0, 20, 5} {
			for _, pol := range Policies() {
				cfg := simConfig(Cooperative, engine.FACIL, 2)
				cfg.Queries = 60
				cfg.Replicas = 2
				cfg.Seed = seed
				cfg.QueueCap = 8
				cfg.Timeout = 30
				cfg.MaxRetries = 2
				cfg.Policy = pol
				cfg.Faults = fault.Scenario{Seed: seed + 100, MapIDCorruptRate: 0.05}
				if mtbf > 0 {
					cfg.Faults.LaneMTBF = mtbf
					cfg.Faults.LaneMTTR = 2
				}
				name := fmt.Sprintf("seed=%d mtbf=%g policy=%v", seed, mtbf, pol)
				m, err := Run(s, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if m.Arrived != cfg.Queries {
					t.Errorf("%s: arrived %d, want %d", name, m.Arrived, cfg.Queries)
				}
				if m.Arrived != m.Admitted+m.Rejected {
					t.Errorf("%s: arrived %d != admitted %d + rejected %d",
						name, m.Arrived, m.Admitted, m.Rejected)
				}
				if m.Admitted != m.Completed+m.TimedOut+m.Failed {
					t.Errorf("%s: admitted %d != completed %d + timed out %d + failed %d",
						name, m.Admitted, m.Completed, m.TimedOut, m.Failed)
				}
				if m.Arrived != m.Completed+m.Rejected+m.TimedOut+m.Failed {
					t.Errorf("%s: conservation broken: %+v", name, m)
				}
				if m.Availability < 0 || m.Availability > 1 {
					t.Errorf("%s: availability %g out of range", name, m.Availability)
				}
				again, err := Run(s, cfg)
				if err != nil {
					t.Fatalf("%s rerun: %v", name, err)
				}
				if !reflect.DeepEqual(m, again) {
					t.Errorf("%s: repeated faulted runs diverged", name)
				}
			}
		}
	}
}

// TestEmptyScenarioPolicyInert locks the zero-impact contract from the
// other side: with an empty fault scenario, the policy/breaker/failover
// knobs change nothing — the fault layer is off, so every policy yields
// metrics deeply equal to the plain config's.
func TestEmptyScenarioPolicyInert(t *testing.T) {
	s := servingSystem(t)
	plain := simConfig(Cooperative, engine.FACIL, 0.4)
	plain.QueueCap = 16
	want, err := Run(s, plain)
	if err != nil {
		t.Fatal(err)
	}
	if want.Failed != 0 || want.Degraded != 0 || want.Availability != 1 {
		t.Fatalf("faultless run reports fault activity: %+v", want)
	}
	for _, pol := range Policies() {
		cfg := plain
		cfg.Policy = pol
		cfg.BreakerThreshold = 3
		cfg.FailoverPenalty = 0.5
		got, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("policy %v with empty scenario diverged from plain run", pol)
		}
	}
}

// TestPolicyMonotonicity is the acceptance-criteria ordering: under one
// fault schedule, failover (which can still use the healthy replica's
// PIM lane) completes at least as much useful work as SoC-only
// degradation, which beats failing queries outright.
func TestPolicyMonotonicity(t *testing.T) {
	s := servingSystem(t)
	run := func(pol Policy) Metrics {
		cfg := simConfig(Cooperative, engine.FACIL, 3)
		cfg.Queries = 80
		cfg.Replicas = 2
		cfg.DeadlineTTLT = 20
		cfg.Policy = pol
		cfg.Faults = outageScenario(1, 40)
		m, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	none, fallback, failover := run(PolicyNone), run(PolicySoCFallback), run(PolicyFailover)
	if none.Failed == 0 {
		t.Error("no-policy run failed no queries during a 39s outage")
	}
	if fallback.Degraded == 0 {
		t.Error("fallback run degraded no queries")
	}
	if failover.FailedOver == 0 {
		t.Error("failover run migrated no queries")
	}
	if fallback.Failed != 0 || failover.Failed != 0 {
		t.Errorf("graceful policies failed queries: fallback %d, failover %d",
			fallback.Failed, failover.Failed)
	}
	// Goodput under a fixed offered load is the count of completions
	// inside the SLO (per-second rates reward PolicyNone for dropping
	// queries: failing the backlog shrinks the makespan denominator).
	if !(failover.SLOMet >= fallback.SLOMet && fallback.SLOMet > none.SLOMet) {
		t.Errorf("SLO completions not monotone: failover %d, fallback %d, none %d",
			failover.SLOMet, fallback.SLOMet, none.SLOMet)
	}
	for _, m := range []Metrics{none, fallback, failover} {
		if m.LaneFailures != 1 {
			t.Errorf("lane failures = %d, want 1", m.LaneFailures)
		}
		if m.Availability >= 1 || m.Availability <= 0 {
			t.Errorf("availability %g not in (0,1) during an outage", m.Availability)
		}
		if m.LaneDownSecs <= 0 {
			t.Errorf("no lane downtime recorded: %+v", m)
		}
	}
}

// TestLaneMTTRMeasured: a repaired outage shows up as the observed mean
// time to repair.
func TestLaneMTTRMeasured(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 3)
	cfg.Queries = 80
	cfg.Policy = PolicySoCFallback
	cfg.Faults = outageScenario(1, 9)
	m, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan <= 9 {
		t.Fatalf("run ended at %.2fs, before the outage cleared", m.Makespan)
	}
	if math.Abs(m.LaneMTTR-8) > 1e-9 {
		t.Errorf("LaneMTTR = %g, want 8 (the scheduled window length)", m.LaneMTTR)
	}
}

// TestThermalThrottleSlowsRun: a thermal window spanning the run slows
// every quantum by the measured DRAM derate — completions survive but
// latency and makespan inflate.
func TestThermalThrottleSlowsRun(t *testing.T) {
	s := servingSystem(t)
	base := simConfig(Cooperative, engine.FACIL, 1)
	cool, err := Run(s, base)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Faults = fault.Scenario{Thermal: []fault.Window{{Start: 0, End: 1e9}}}
	m, err := Run(s, hot)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != cool.Completed || m.Failed != 0 {
		t.Fatalf("thermal run lost queries: %+v", m)
	}
	if m.TTLT.Mean <= cool.TTLT.Mean {
		t.Errorf("throttled TTLT mean %.4f not above nominal %.4f", m.TTLT.Mean, cool.TTLT.Mean)
	}
	if m.Makespan <= cool.Makespan {
		t.Errorf("throttled makespan %.2f not above nominal %.2f", m.Makespan, cool.Makespan)
	}
	if m.Availability != 1 {
		t.Errorf("thermal throttling is not an outage; availability = %g", m.Availability)
	}
}

// TestBreakerOpensAndRecovers: with a 1-failure threshold, the first
// dispatch onto the dead lane opens the breaker, and the lane is back in
// use after the outage plus cooldown (the run completes on the PIM
// path again, closing the breaker via a half-open probe).
func TestBreakerOpensAndRecovers(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 3)
	cfg.Queries = 80
	cfg.Policy = PolicySoCFallback
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = 0.5
	cfg.Faults = outageScenario(1, 10)
	m, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BreakerOpens == 0 {
		t.Error("breaker never opened against a dead lane")
	}
	if m.Completed+m.TimedOut != m.Admitted {
		t.Errorf("accounting with breaker: %+v", m)
	}
	// The lane must be in use again after recovery: decode busy-seconds
	// exceed what the outage window leaves for the SoC path alone.
	if m.PIMUtilization <= 0 {
		t.Errorf("PIM lane never recovered: utilization %g", m.PIMUtilization)
	}
}

// TestClientRetries: under overload with a bounded queue, rejected
// arrivals retry with backoff and some eventually land — retries happen,
// every query still counts exactly once, and a retried query that gets
// in completes normally.
func TestClientRetries(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 50)
	cfg.QueueCap = 4
	noRetry, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxRetries = 5
	m, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 {
		t.Error("overloaded run retried nothing")
	}
	if m.Arrived != cfg.Queries {
		t.Errorf("arrived %d, want %d (retries must not double-count)", m.Arrived, cfg.Queries)
	}
	if m.Arrived != m.Completed+m.Rejected+m.TimedOut+m.Failed {
		t.Errorf("conservation with retries: %+v", m)
	}
	if m.Completed <= noRetry.Completed {
		t.Errorf("retries completed %d, not above no-retry %d", m.Completed, noRetry.Completed)
	}
}

// TestMapIDCorruption: with every admitted query's PTE MapID corrupted,
// PolicyNone loses them all at the decode handoff (silent
// mis-translation), while the validating-frontend policies repair every
// one for a fixed page-table re-walk penalty.
func TestMapIDCorruption(t *testing.T) {
	s := servingSystem(t)
	base := simConfig(Cooperative, engine.FACIL, 1)
	base.Workload = fixedSpec(32, 16) // decode > 1: every query reaches the handoff
	base.Queries = 40
	base.Faults = fault.Scenario{Seed: 3, MapIDCorruptRate: 1}

	none := base
	none.Policy = PolicyNone
	mn, err := Run(s, none)
	if err != nil {
		t.Fatal(err)
	}
	if mn.CorruptMapIDs != mn.Admitted || mn.Failed != mn.Admitted || mn.Completed != 0 {
		t.Errorf("PolicyNone under full corruption: %+v", mn)
	}

	repair := base
	repair.Policy = PolicySoCFallback
	mr, err := Run(s, repair)
	if err != nil {
		t.Fatal(err)
	}
	if mr.CorruptRepaired != mr.CorruptMapIDs || mr.Failed != 0 || mr.Completed != mr.Admitted {
		t.Errorf("repairing policy under full corruption: %+v", mr)
	}
	if mr.Degraded != 0 {
		t.Errorf("MapID repair degraded %d queries; repair is not a lane fallback", mr.Degraded)
	}
}
