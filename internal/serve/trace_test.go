package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"facil/internal/engine"
	"facil/internal/obs"
	"facil/internal/workload"
)

// traceEventsOf runs one small simulation with a tracer attached and
// returns the parsed trace-event stream.
func traceEventsOf(t *testing.T, cfg SimConfig) ([]parsedEvent, Metrics) {
	t.Helper()
	tr := obs.New(1 << 14)
	cfg.Tracer = tr
	m, err := Run(servingSystem(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []parsedEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid trace-event JSON: %v", err)
	}
	return tf.TraceEvents, m
}

// parsedEvent mirrors the trace-event wire fields the tests inspect.
type parsedEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

// traceConfig is a small cooperative scenario that exercises admission
// pressure (tiny queue cap) and timeouts.
func traceConfig(mode Mode) SimConfig {
	return SimConfig{
		Mode:        mode,
		Kind:        engine.FACIL,
		Replicas:    2,
		ArrivalRate: 2,
		Queries:     30,
		Workload:    workload.AlpacaSpec(),
		Seed:        7,
		QueueCap:    4,
	}
}

// TestTraceValidAndMonotonic checks, for every mode, that the recorded
// trace parses as trace-event JSON, timestamps never decrease, metadata
// precedes data, and the event population matches the run's metrics
// (arrivals+rejects on the queue track, one prefill span per admitted
// query).
func TestTraceValidAndMonotonic(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			evs, m := traceEventsOf(t, traceConfig(mode))
			if len(evs) == 0 {
				t.Fatal("empty trace")
			}
			last := -1.0
			metaDone := false
			counts := map[string]int{}
			for _, e := range evs {
				if e.Ph == "M" {
					if metaDone {
						t.Fatalf("metadata event %q after data events", e.Name)
					}
					continue
				}
				metaDone = true
				if e.TS < last {
					t.Fatalf("timestamps not monotonic: %q at %v after %v", e.Name, e.TS, last)
				}
				last = e.TS
				counts[e.Name+"/"+e.Ph]++
			}
			if got, want := counts["arrival/i"], m.Admitted; got != want {
				t.Errorf("arrival instants = %d, want Admitted = %d", got, want)
			}
			if got, want := counts["reject/i"], m.Rejected; got != want {
				t.Errorf("reject instants = %d, want Rejected = %d", got, want)
			}
			if got, want := counts["complete/i"], m.Completed; got != want {
				t.Errorf("complete instants = %d, want Completed = %d", got, want)
			}
			if got, want := counts["prefill/X"], m.Admitted-m.TimedOut; got != want {
				t.Errorf("prefill spans = %d, want %d", got, want)
			}
			if counts["in-system queries/C"] == 0 {
				t.Error("no queue-depth counter samples")
			}
			if mode == RelayoutHybrid && counts["relayout/X"] == 0 {
				t.Error("relayout-hybrid trace has no relayout windows")
			}
			if mode != RelayoutHybrid && counts["relayout/X"] != 0 {
				t.Errorf("%s trace has %d relayout windows", mode, counts["relayout/X"])
			}
		})
	}
}

// TestTraceDoesNotPerturbMetrics pins that attaching a tracer changes
// nothing about the simulation: metrics with and without tracing must
// be identical.
func TestTraceDoesNotPerturbMetrics(t *testing.T) {
	cfg := traceConfig(Cooperative)
	plain, err := Run(servingSystem(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, traced := func() ([]parsedEvent, Metrics) { evs, m := traceEventsOf(t, cfg); return evs, m }()
	if plain.Completed != traced.Completed || plain.Makespan != traced.Makespan ||
		plain.TTFT != traced.TTFT || plain.TTLT != traced.TTLT {
		t.Fatalf("tracing perturbed the run:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

// TestTracePIDBaseSeparatesRuns shares one tracer between two runs at
// disjoint pid bases and checks their events land on disjoint tracks.
func TestTracePIDBaseSeparatesRuns(t *testing.T) {
	tr := obs.New(1 << 14)
	s := servingSystem(t)
	for i, base := range []int64{0, 100} {
		cfg := traceConfig(Cooperative)
		cfg.Tracer = tr
		cfg.TracePIDBase = base
		cfg.TraceLabel = []string{"runA", "runB"}[i]
		if _, err := Run(s, cfg); err != nil {
			t.Fatal(err)
		}
	}
	lowA, lowB := false, false
	for _, e := range tr.Snapshot() {
		switch {
		case e.PID <= 2:
			lowA = true
		case e.PID >= 100 && e.PID <= 102:
			lowB = true
		default:
			t.Fatalf("event on unexpected pid %d", e.PID)
		}
	}
	if !lowA || !lowB {
		t.Fatalf("expected events on both pid blocks (got A=%v B=%v)", lowA, lowB)
	}
}
