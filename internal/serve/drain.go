package serve

import (
	"math"
	"sync/atomic"
)

// drainGen versions the process-wide drain-outage request and drainDur
// carries the requested duration as float64 bits. Each sim captures the
// generation at construction and re-checks it with one atomic load per
// event batch, so a trigger reaches exactly the sims running when it
// fires — never runs created afterwards — without any registry of live
// sims or locking on the hot path.
var (
	drainGen atomic.Int64
	drainDur atomic.Uint64
)

// TriggerDrainOutage asks every currently-running two-lane simulation
// in the process to take an immediate PIM-lane outage of the given
// duration (virtual seconds) on all of its replicas. The facild daemon
// calls it at the start of a graceful drain, so the in-flight run
// finishes through its degradation policies — SoC fallback, failover,
// breakers — instead of merely completing on healthy lanes; that is
// the drain path a production stack actually takes when a host is
// being evicted. Serial-mode sims ignore the trigger (the fault model
// targets the two-lane schedulers), sims created after the call are
// unaffected, and non-positive or non-finite durations are no-ops.
//
// Because the trigger lands relative to however far each sim happens to
// have advanced, it is an operational tool for exercising the drain
// path, not a reproducible experiment knob — seeded fault scenarios
// (SimConfig.Faults) remain the deterministic way to study outages.
func TriggerDrainOutage(seconds float64) {
	if !(seconds > 0) || math.IsInf(seconds, 0) {
		return
	}
	drainDur.Store(math.Float64bits(seconds))
	drainGen.Add(1)
}

// applyDrainOutage schedules the triggered outage on every replica at
// the sim's current clock, lazily arming a minimal fault layer when the
// run has none (no RNG streams, no thermal window — just the outage and
// the policy machinery the config already selected).
func (sm *sim) applyDrainOutage(d float64) {
	if sm.cfg.Mode == Serial || !(d > 0) || math.IsInf(d, 0) {
		return
	}
	if sm.flt == nil {
		sm.flt = &faultState{thermal: 1}
		sm.failoverPen = sm.cfg.FailoverPenalty
		if sm.failoverPen == 0 {
			sm.failoverPen = DefaultFailoverPenalty
		}
		sm.brkCooldown = sm.cfg.BreakerCooldown
		if sm.brkCooldown == 0 {
			sm.brkCooldown = DefaultBreakerCooldown
		}
	}
	for ri := range sm.reps {
		sm.push(event{at: sm.now, kind: evLaneDown, rep: int32(ri), until: sm.now + d})
	}
}
