package serve

import (
	"math"
	"reflect"
	"testing"
	"time"

	"facil/internal/engine"
	"facil/internal/workload"
)

// fixedSpec builds a degenerate workload whose every query has exactly
// (prefill, decode) tokens — handy for scheduling-shape assertions.
func fixedSpec(prefill, decode int) workload.Spec {
	return workload.Spec{
		Name:    "fixed",
		Prefill: workload.LengthDist{MedianTokens: float64(prefill), Min: prefill, Max: prefill},
		Decode:  workload.LengthDist{MedianTokens: float64(decode), Min: decode, Max: decode},
	}
}

func simConfig(mode Mode, kind engine.Kind, rate float64) SimConfig {
	return SimConfig{
		Mode:        mode,
		Kind:        kind,
		Replicas:    1,
		ArrivalRate: rate,
		Queries:     120,
		Workload:    workload.AlpacaSpec(),
		Seed:        5,
	}
}

// TestSerialMatchesLegacySimulate locks the equivalence the new
// simulator is bootstrapped on: Serial mode with one replica reproduces
// the old closed-form Simulate on the same seed to float tolerance.
func TestSerialMatchesLegacySimulate(t *testing.T) {
	s := servingSystem(t)
	for _, kind := range []engine.Kind{engine.HybridStatic, engine.FACIL} {
		old, err := Simulate(s, kind, testConfig(0.3))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(s, simConfig(Serial, kind, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		closeTo := func(name string, got, want float64) {
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("%v %s: event-driven %.12f vs legacy %.12f", kind, name, got, want)
			}
		}
		closeTo("TTFT mean", m.TTFT.Mean, old.PerceivedTTFTMean)
		closeTo("TTFT p99", m.TTFT.P99, old.PerceivedTTFTP99)
		closeTo("TTLT mean", m.TTLT.Mean, old.PerceivedTTLTMean)
		closeTo("utilization", m.SoCUtilization, old.Utilization)
		if m.MaxQueueDepth != old.MaxQueueDepth {
			t.Errorf("%v max depth: %d vs legacy %d", kind, m.MaxQueueDepth, old.MaxQueueDepth)
		}
		if m.Completed != 120 || m.Rejected != 0 || m.TimedOut != 0 {
			t.Errorf("%v accounting: %+v", kind, m)
		}
	}
}

// TestCooperativeOverlapBeatsSerial is the point of the tentpole: with
// both phases non-zero, overlapping query B's prefill with query A's
// decode on one replica strictly raises steady-state throughput.
func TestCooperativeOverlapBeatsSerial(t *testing.T) {
	s := servingSystem(t)
	mk := func(mode Mode) Metrics {
		cfg := simConfig(mode, engine.FACIL, 50 /* saturating */)
		cfg.Workload = fixedSpec(64, 48)
		cfg.Queries = 60
		m, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, coop := mk(Serial), mk(Cooperative)
	if coop.ThroughputQPS <= serial.ThroughputQPS {
		t.Errorf("cooperative throughput %.4f q/s not above serial %.4f q/s",
			coop.ThroughputQPS, serial.ThroughputQPS)
	}
	// Overlap means both lanes are busy at once some of the time:
	// utilizations in serial mode are identical, in cooperative mode the
	// two lanes' busy time must coexist within the same (shorter)
	// makespan.
	if coop.Makespan >= serial.Makespan {
		t.Errorf("cooperative makespan %.2f not below serial %.2f", coop.Makespan, serial.Makespan)
	}
	if coop.SoCBusy.Max() < 1 || coop.PIMBusy.Max() < 1 {
		t.Error("cooperative run never used both lanes")
	}
}

// TestRelayoutHybridPaysForHandoffs: the hybrid baseline under the same
// two-lane scheduler loses throughput to FACIL's cooperative mode — the
// per-prefill re-layout both lengthens the SoC lane occupancy and stalls
// the PIM lane.
func TestRelayoutHybridPaysForHandoffs(t *testing.T) {
	s := servingSystem(t)
	run := func(mode Mode, kind engine.Kind) Metrics {
		cfg := simConfig(mode, kind, 2)
		cfg.Queries = 80
		m, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	coop := run(Cooperative, engine.FACIL)
	relay := run(RelayoutHybrid, engine.HybridStatic)
	if coop.ThroughputQPS <= relay.ThroughputQPS {
		t.Errorf("FACIL cooperative %.4f q/s not above relayout hybrid %.4f q/s",
			coop.ThroughputQPS, relay.ThroughputQPS)
	}
	if coop.TTFT.Mean >= relay.TTFT.Mean {
		t.Errorf("FACIL TTFT %.4f not below relayout hybrid %.4f",
			coop.TTFT.Mean, relay.TTFT.Mean)
	}
}

// TestReplicasScaleThroughput: at saturation, two replicas complete
// queries faster than one.
func TestReplicasScaleThroughput(t *testing.T) {
	s := servingSystem(t)
	run := func(replicas int) Metrics {
		cfg := simConfig(Cooperative, engine.FACIL, 50)
		cfg.Replicas = replicas
		cfg.Queries = 60
		m, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	one, two := run(1), run(2)
	if two.ThroughputQPS <= one.ThroughputQPS {
		t.Errorf("2 replicas %.4f q/s not above 1 replica %.4f q/s",
			two.ThroughputQPS, one.ThroughputQPS)
	}
	if two.SoCBusy.Max() < 2 {
		t.Error("second replica's SoC lane never used")
	}
}

// TestAdmissionControl: a bounded queue under overload rejects arrivals
// and the accounting identities hold.
func TestAdmissionControl(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 50)
	cfg.QueueCap = 4
	m, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected == 0 {
		t.Error("overloaded bounded queue rejected nothing")
	}
	if m.Arrived != m.Admitted+m.Rejected {
		t.Errorf("arrived %d != admitted %d + rejected %d", m.Arrived, m.Admitted, m.Rejected)
	}
	if m.Admitted != m.Completed+m.TimedOut {
		t.Errorf("admitted %d != completed %d + timed out %d", m.Admitted, m.Completed, m.TimedOut)
	}
	if m.MaxQueueDepth > cfg.QueueCap {
		t.Errorf("depth %d exceeded cap %d", m.MaxQueueDepth, cfg.QueueCap)
	}
}

// TestDeadlineGoodput: a tight TTLT SLO separates goodput from
// throughput; a loose one makes them equal.
func TestDeadlineGoodput(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 1.0)
	loose := cfg
	loose.DeadlineTTLT = 1e9
	ml, err := Run(s, loose)
	if err != nil {
		t.Fatal(err)
	}
	if ml.GoodputQPS != ml.ThroughputQPS || ml.SLOMet != ml.Completed {
		t.Errorf("loose SLO: goodput %.4f != throughput %.4f", ml.GoodputQPS, ml.ThroughputQPS)
	}
	tight := cfg
	tight.DeadlineTTLT = ml.TTLT.P50 // half the queries miss by construction
	mt, err := Run(s, tight)
	if err != nil {
		t.Fatal(err)
	}
	if mt.SLOMet >= mt.Completed {
		t.Errorf("tight SLO met by all %d completions", mt.Completed)
	}
	if mt.GoodputQPS >= mt.ThroughputQPS {
		t.Errorf("tight SLO: goodput %.4f not below throughput %.4f", mt.GoodputQPS, mt.ThroughputQPS)
	}
}

// TestTimeoutAborts: under overload with a hard timeout, some admitted
// queries are dropped at scheduling boundaries and never complete.
func TestTimeoutAborts(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 50)
	cfg.Timeout = 1.0
	m, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TimedOut == 0 {
		t.Error("no query timed out under overload")
	}
	if m.Admitted != m.Completed+m.TimedOut {
		t.Errorf("admitted %d != completed %d + timed out %d", m.Admitted, m.Completed, m.TimedOut)
	}
	for _, ttlt := range []float64{m.TTLT.P99} {
		if ttlt > 1e6 {
			t.Errorf("implausible TTLT %g with timeouts", ttlt)
		}
	}
}

// TestPreemptionRoundRobin: a 1-step quantum interleaves concurrent
// decodes. Run-to-completion parks a prefilled query behind whole other
// decodes, so its first inter-token gap is enormous; round-robin bounds
// that tail (at the price of later median completion), with total
// completions identical.
func TestPreemptionRoundRobin(t *testing.T) {
	s := servingSystem(t)
	run := func(quantum int) Metrics {
		cfg := simConfig(Cooperative, engine.FACIL, 50)
		cfg.Workload = fixedSpec(16, 32)
		cfg.Queries = 24
		cfg.PreemptSteps = quantum
		m, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fine, coarse := run(1), run(1<<20)
	if fine.Completed != coarse.Completed {
		t.Fatalf("completions differ: %d vs %d", fine.Completed, coarse.Completed)
	}
	if fine.TBT.P99 >= coarse.TBT.P99 {
		t.Errorf("1-step quantum TBT p99 %.5f not below run-to-completion %.5f",
			fine.TBT.P99, coarse.TBT.P99)
	}
	// Run-to-completion finishes the first queries earlier (SJF-free
	// FCFS property): its median TTLT is lower.
	if fine.TTLT.P50 <= coarse.TTLT.P50 {
		t.Errorf("round-robin median TTLT %.4f not above run-to-completion %.4f",
			fine.TTLT.P50, coarse.TTLT.P50)
	}
}

// TestRunDeterminism: identical configs produce deeply equal Metrics —
// the arrival process and heap ordering are fully owned by the run.
func TestRunDeterminism(t *testing.T) {
	s := servingSystem(t)
	cfg := simConfig(Cooperative, engine.FACIL, 0.4)
	cfg.QueueCap = 16
	cfg.DeadlineTTLT = 5
	a, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestScaleBoundedTime is the O(n²)-regression guard: 50k queries flow
// through both the fixed legacy queue and the event-driven simulator in
// bounded wall-clock time (the old depth scan was quadratic — 50k
// queries took minutes).
func TestScaleBoundedTime(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-query scale run skipped in -short mode")
	}
	s := servingSystem(t)
	const n = 50000
	start := time.Now()
	old, err := Simulate(s, engine.FACIL, Config{
		ArrivalRate: 5, Queries: n, Workload: workload.AlpacaSpec(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if old.MaxQueueDepth < 1 {
		t.Errorf("legacy depth = %d", old.MaxQueueDepth)
	}
	cfg := simConfig(Cooperative, engine.FACIL, 5)
	cfg.Queries = n
	m, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrived != n || m.Completed != n {
		t.Errorf("accounting at scale: %+v", m)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("50k-query runs took %v — queue bookkeeping is super-linear again", elapsed)
	}
}

// TestMetricsSanity: quantiles are finite and ordered, histograms span
// the makespan.
func TestMetricsSanity(t *testing.T) {
	s := servingSystem(t)
	m, err := Run(s, simConfig(Cooperative, engine.FACIL, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range map[string]struct {
		v interface{ Finite() bool }
	}{"TTFT": {m.TTFT}, "TTLT": {m.TTLT}, "TBT": {m.TBT}} {
		if !q.v.Finite() {
			t.Errorf("%s quantiles not finite: %+v", name, q.v)
		}
	}
	if m.TTFT.P50 > m.TTFT.P95 || m.TTFT.P95 > m.TTFT.P99 {
		t.Errorf("TTFT quantiles unordered: %+v", m.TTFT)
	}
	if m.TTLT.Mean <= m.TTFT.Mean {
		t.Errorf("TTLT mean %.4f not above TTFT mean %.4f", m.TTLT.Mean, m.TTFT.Mean)
	}
	if got, want := m.QueueDepth.TotalTime(), m.Makespan; math.Abs(got-want) > 1e-6*(1+want) {
		t.Errorf("depth histogram spans %.6f, makespan %.6f", got, want)
	}
	if m.SoCUtilization <= 0 || m.SoCUtilization > 1 || m.PIMUtilization <= 0 || m.PIMUtilization > 1 {
		t.Errorf("utilizations out of range: %+v", m)
	}
}

// TestSimConfigValidation rejects degenerate scenarios.
func TestSimConfigValidation(t *testing.T) {
	s := servingSystem(t)
	bad := []SimConfig{
		{ArrivalRate: 0, Queries: 10, Replicas: 1},
		{ArrivalRate: 1, Queries: 0, Replicas: 1},
		{ArrivalRate: 1, Queries: 10, Replicas: 0},
		{ArrivalRate: 1, Queries: 10, Replicas: 1, QueueCap: -1},
		{ArrivalRate: 1, Queries: 10, Replicas: 1, Timeout: -2},
	}
	for _, cfg := range bad {
		if _, err := Run(s, cfg); err == nil {
			t.Errorf("config accepted: %+v", cfg)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("bad mode parsed")
	}
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
}
