package serve

import "container/heap"

// evKind discriminates simulator events.
type evKind int

const (
	// evArrival enqueues a query at the admission controller.
	evArrival evKind = iota
	// evPrefillDone frees a replica's SoC lane and hands the query to
	// the decode lane (first token emitted here).
	evPrefillDone
	// evQuantumDone ends one decode scheduling quantum on a replica's
	// PIM lane (or, for degraded queries, its SoC lane): the query
	// either finished or rejoins the decode queue.
	evQuantumDone
	// evLaneDown starts (or extends) a PIM-lane outage on a replica;
	// scheduled by the fault layer only.
	evLaneDown
	// evLaneUp ends a PIM-lane outage, unless a later-ending overlap
	// still holds the lane down.
	evLaneUp
)

// event is one entry of the simulator's time-ordered heap.
type event struct {
	at   float64
	seq  int64 // tie-break: FIFO among simultaneous events
	kind evKind
	q    *query
	rep  int // replica index (evPrefillDone, evQuantumDone, lane events)
	// steps is the number of decode steps the ending quantum covered.
	steps int
	// dur is the token-emitting duration of the ending quantum
	// (excluding any fault-recovery penalty that preceded it), and
	// factor the thermal slowdown it was dispatched under — stored so
	// completion reconstructs the emission times without recomputing
	// under different fault conditions.
	dur    float64
	factor float64
	// soc marks a degraded quantum that ran on the SoC lane.
	soc bool
	// until is the outage end carried by evLaneDown.
	until float64
}

// eventHeap is a min-heap ordered by (at, seq); seq keeps simultaneous
// events in insertion order so runs are deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// floatHeap is a min-heap of float64 — the completion-time tracker that
// replaces the old Simulate's O(n²) in-flight rescan: arrivals pop every
// completion time at or before the clock and read the backlog as the
// heap length, O(log n) per query.
type floatHeap []float64

func (h floatHeap) Len() int           { return len(h) }
func (h floatHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// pushTime and popExpired wrap the container/heap plumbing.
func (h *floatHeap) pushTime(t float64) { heap.Push(h, t) }

// popExpired removes every completion time at or before now.
func (h *floatHeap) popExpired(now float64) {
	for h.Len() > 0 && (*h)[0] <= now {
		heap.Pop(h)
	}
}
