package serve

import (
	"container/heap"
	"math/bits"
)

// evKind discriminates simulator events.
type evKind int8

const (
	// evArrival enqueues a query at the admission controller.
	evArrival evKind = iota
	// evPrefillDone frees a replica's SoC lane and hands the query to
	// the decode lane (first token emitted here).
	evPrefillDone
	// evQuantumDone ends one decode scheduling quantum on a replica's
	// PIM lane (or, for degraded queries, its SoC lane): the query
	// either finished or rejoins the decode queue.
	evQuantumDone
	// evLaneDown starts (or extends) a PIM-lane outage on a replica;
	// scheduled by the fault layer only.
	evLaneDown
	// evLaneUp ends a PIM-lane outage, unless a later-ending overlap
	// still holds the lane down.
	evLaneUp
)

// event is one value-typed entry of the simulator's timing wheel. Events
// live in the wheel's slab arena and link into slot buckets (or the free
// list) through next; the hot loop never boxes one on the heap.
type event struct {
	at  float64
	seq int64 // tie-break: FIFO among simultaneous events
	// next is the intrusive slab link: the following event in this slot
	// bucket, far list neighbourhood or free list (-1 = none).
	next int32
	// q is the query-slab index the event targets (initial arrivals are
	// not events — they stream from the arrival cursor).
	q    int32
	rep  int32 // replica index (evPrefillDone, evQuantumDone, lane events)
	kind evKind
	// soc marks a degraded quantum that ran on the SoC lane.
	soc bool
	// steps is the number of decode steps the ending quantum covered.
	steps int32
	// dur is the token-emitting duration of the ending quantum
	// (excluding any fault-recovery penalty that preceded it), and
	// factor the thermal slowdown it was dispatched under — stored so
	// completion reconstructs the emission times without recomputing
	// under different fault conditions.
	dur    float64
	factor float64
	// until is the outage end carried by evLaneDown.
	until float64
}

// Timing-wheel geometry: wheelLevels levels of wheelSlots slots each.
// Level l buckets events whose tick, right-shifted by l*wheelBits, lands
// within wheelSlots blocks of the current tick; events beyond the top
// level's reach overflow into the far list.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelTopShift is the top level's block shift: when the current
	// tick crosses a top-level block boundary the far list is
	// redistributed, keeping every far event later than every wheel
	// event.
	wheelTopShift = wheelBits * (wheelLevels - 1)
)

// wheel is a hierarchical timing wheel (calendar queue) ordered by
// (at, seq), the optimized replacement for the global event heap. Events
// are hashed by discretized time (tick = at * invW) into per-level slot
// buckets tracked by occupancy bitmaps: level 0 buckets one tick per
// slot and keeps its lists sorted, higher levels cover geometrically
// wider windows and cascade down as time reaches them, so pops cost
// O(levels) bitmap scans amortized and an idle gap is crossed in one
// jump — no per-tick work. The ordering contract is exactly the old
// heap's: minimum (at, seq) first.
//
// Two invariants carry the proof of pop-order correctness:
//
//  1. Every stored tick is >= cur, and cur only advances to the window
//     start of the earliest occupied slot, so circular slot distance
//     from the per-level cursor equals block distance and the earliest
//     occupied slot is found by a rotated trailing-zeros scan.
//  2. Far events always sort after every wheel event: an event enters
//     the far list only when it is >= wheelSlots top-level blocks ahead,
//     and the far list is redistributed whenever cur crosses a top-level
//     block boundary, before any nearer insert could land in the wheel.
type wheel struct {
	arena eventArena
	invW  float64 // ticks per simulated second
	cur   int64   // current tick; every stored tick is >= cur
	count int     // scheduled events not yet popped (far included)

	bitmap [wheelLevels]uint64
	slot   [wheelLevels][wheelSlots]int32

	far        []int32
	farScratch []int32
}

// init readies the wheel with the given tick rate (ticks per simulated
// second). Finer ticks spread simultaneous events across level-0 slots;
// coarser ticks push more ordering work into the sorted level-0 lists.
func (w *wheel) init(invW float64) {
	w.arena.reset()
	w.invW = invW
	w.cur = 0
	w.count = 0
	for l := range w.slot {
		w.bitmap[l] = 0
		for s := range w.slot[l] {
			w.slot[l][s] = -1
		}
	}
	w.far = w.far[:0]
}

// tickOf discretizes a timestamp, clamped so a tick never precedes cur
// (inserts are never earlier than the event being processed).
func (w *wheel) tickOf(at float64) int64 {
	t := int64(at * w.invW)
	if t < w.cur {
		t = w.cur
	}
	return t
}

// schedule inserts an event drawn from the slab arena.
func (w *wheel) schedule(ev event) {
	idx := w.arena.alloc()
	w.arena.slab[idx] = ev
	w.place(idx)
	w.count++
}

// place hashes a slab event into its slot by block distance from cur, or
// into the far overflow when beyond the top level's reach.
func (w *wheel) place(idx int32) {
	e := &w.arena.slab[idx]
	t := w.tickOf(e.at)
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		if (t>>shift)-(w.cur>>shift) < wheelSlots {
			s := int((t >> shift) & wheelMask)
			if l == 0 {
				w.insertSorted(s, idx)
			} else {
				e.next = w.slot[l][s]
				w.slot[l][s] = idx
			}
			w.bitmap[l] |= 1 << uint(s)
			return
		}
	}
	e.next = -1
	w.far = append(w.far, idx)
}

// insertSorted links a slab event into a level-0 bucket in (at, seq)
// order, so the bucket head is always the slot's minimum.
func (w *wheel) insertSorted(s int, idx int32) {
	e := &w.arena.slab[idx]
	p := &w.slot[0][s]
	for *p >= 0 {
		o := &w.arena.slab[*p]
		if e.at < o.at || (e.at == o.at && e.seq < o.seq) {
			break
		}
		p = &o.next
	}
	e.next = *p
	*p = idx
}

// candidate returns the window-start tick and slot of the earliest
// occupied slot at one level: a lower bound on every tick stored there
// (exact for level 0).
func (w *wheel) candidate(l int) (int64, int, bool) {
	bm := w.bitmap[l]
	if bm == 0 {
		return 0, 0, false
	}
	shift := uint(wheelBits * l)
	cursor := uint((w.cur >> shift) & wheelMask)
	rot := bm>>cursor | bm<<(wheelSlots-cursor)
	d := int64(bits.TrailingZeros64(rot))
	s := int((int64(cursor) + d) & wheelMask)
	return ((w.cur >> shift) + d) << shift, s, true
}

// setCur advances the current tick; crossing a top-level block boundary
// redistributes the far list so invariant 2 holds before any new insert.
func (w *wheel) setCur(t int64) {
	cross := t>>wheelTopShift != w.cur>>wheelTopShift
	w.cur = t
	if cross && len(w.far) > 0 {
		w.redistributeFar()
	}
}

// redistributeFar re-places every far event against the current tick;
// events now within the wheel's span land in slots, the rest return to
// the far list.
func (w *wheel) redistributeFar() {
	old := w.far
	w.far = w.farScratch[:0]
	for _, idx := range old {
		w.place(idx)
	}
	w.farScratch = old[:0]
}

// pop unlinks and returns the slab index of the wheel's earliest event
// by (at, seq). When hasLim is set, limAt/limTick describe the caller's
// next arrival (whose sequence number is always lower than any wheel
// event's): if that arrival sorts first — arrivals win (at) ties — pop
// returns (-1, true) without disturbing the wheel. An empty wheel
// returns (-1, hasLim). Cascades performed on the way keep cur <=
// limTick, so events the arrival's handler schedules still satisfy
// invariant 1.
func (w *wheel) pop(hasLim bool, limAt float64, limTick int64) (int32, bool) {
	for {
		bestL := -1
		var bestW int64
		var bestS int
		// Smallest window start wins; ties go to the higher level, whose
		// events may be as early as the window start and must cascade
		// before the lower level's exact minimum is trusted.
		for l := wheelLevels - 1; l >= 0; l-- {
			if W, s, ok := w.candidate(l); ok && (bestL < 0 || W < bestW) {
				bestL, bestW, bestS = l, W, s
			}
		}
		if bestL < 0 {
			if len(w.far) == 0 {
				return -1, hasLim
			}
			// Wheel empty: the earliest far event is the global minimum.
			fi := 0
			for i := 1; i < len(w.far); i++ {
				a, b := &w.arena.slab[w.far[i]], &w.arena.slab[w.far[fi]]
				if a.at < b.at || (a.at == b.at && a.seq < b.seq) {
					fi = i
				}
			}
			m := &w.arena.slab[w.far[fi]]
			if hasLim && limAt <= m.at {
				return -1, true
			}
			// Rebase the wheel onto the far horizon and retry.
			if t := int64(m.at * w.invW); t > w.cur {
				w.cur = t
			}
			w.redistributeFar()
			continue
		}
		if hasLim && limTick < bestW {
			return -1, true
		}
		if bestL == 0 {
			head := w.slot[0][bestS]
			e := &w.arena.slab[head]
			if hasLim && limAt <= e.at {
				return -1, true
			}
			w.slot[0][bestS] = e.next
			if e.next < 0 {
				w.bitmap[0] &^= 1 << uint(bestS)
			}
			e.next = -1
			w.setCur(bestW)
			w.count--
			return head, false
		}
		// Cascade the earliest higher-level slot down and rescan. cur
		// moves to the slot's window start first, so every re-placed
		// event lands at a strictly lower level.
		w.setCur(bestW)
		head := w.slot[bestL][bestS]
		w.slot[bestL][bestS] = -1
		w.bitmap[bestL] &^= 1 << uint(bestS)
		for head >= 0 {
			nx := w.arena.slab[head].next
			w.place(head)
			head = nx
		}
	}
}

// floatHeap is a min-heap of float64 — the completion-time tracker that
// replaces the old Simulate's O(n²) in-flight rescan: arrivals pop every
// completion time at or before the clock and read the backlog as the
// heap length, O(log n) per query.
type floatHeap []float64

func (h floatHeap) Len() int           { return len(h) }
func (h floatHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// Push appends a completion time (container/heap plumbing).
func (h *floatHeap) Push(x any) { *h = append(*h, x.(float64)) }

// Pop removes and returns the last element (container/heap plumbing).
func (h *floatHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// pushTime and popExpired wrap the container/heap plumbing.
func (h *floatHeap) pushTime(t float64) { heap.Push(h, t) }

// popExpired removes every completion time at or before now.
func (h *floatHeap) popExpired(now float64) {
	for h.Len() > 0 && (*h)[0] <= now {
		heap.Pop(h)
	}
}
