package energy

import (
	"testing"

	"facil/internal/dram"
)

func TestDefaultsValidate(t *testing.T) {
	if err := DefaultLPDDR5().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLPDDR5()
	bad.ACTpJ = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative energy accepted")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Activate: 1, Array: 2, Interface: 3, MAC: 4, Background: 5}
	if a.Total() != 15 {
		t.Errorf("Total = %g", a.Total())
	}
	b := a
	b.Add(a)
	if b.Total() != 30 {
		t.Errorf("Add/Total = %g", b.Total())
	}
}

func TestPIMAvoidsInterfaceEnergy(t *testing.T) {
	p := DefaultLPDDR5()
	spec := dram.JetsonOrinLPDDR5
	const weights = int64(1 << 30)
	soc := SoCTraffic(p, spec, weights, 0, 0.95)
	pim := PIMGEMV(p, spec, weights, weights/int64(spec.Geometry.RowBytes)/int64(spec.Geometry.TotalBanks()), 1<<20)
	if pim.Interface >= soc.Interface/10 {
		t.Errorf("PIM interface energy %.3e not far below SoC %.3e", pim.Interface, soc.Interface)
	}
	if pim.Total() >= soc.Total() {
		t.Errorf("PIM GEMV energy %.3e not below SoC %.3e", pim.Total(), soc.Total())
	}
	if pim.MAC <= 0 {
		t.Error("PIM MAC energy missing")
	}
}

func TestSoCTrafficScalesLinearly(t *testing.T) {
	p := DefaultLPDDR5()
	spec := dram.IPhoneLPDDR5
	one := SoCTraffic(p, spec, 1<<20, 0.25, 0.9).Total()
	four := SoCTraffic(p, spec, 4<<20, 0.25, 0.9).Total()
	if r := four / one; r < 3.99 || r > 4.01 {
		t.Errorf("4x bytes gave %.3fx energy", r)
	}
}

func TestRowMissesCostActivations(t *testing.T) {
	p := DefaultLPDDR5()
	spec := dram.IPhoneLPDDR5
	hot := SoCTraffic(p, spec, 1<<20, 0, 0.99)
	cold := SoCTraffic(p, spec, 1<<20, 0, 0.50)
	if cold.Activate <= hot.Activate {
		t.Error("lower hit rate did not raise activation energy")
	}
}

func TestBackground(t *testing.T) {
	p := DefaultLPDDR5()
	b := Background(p, 2.0)
	want := p.BackgroundMW * 1e-3 * 2
	if b.Background != want {
		t.Errorf("Background = %g, want %g", b.Background, want)
	}
}
