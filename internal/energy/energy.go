// Package energy estimates DRAM and PIM energy for the compared designs.
// The paper evaluates latency only; energy is the natural companion
// question for edge devices, and near-bank PIM's headline energy win is
// that weight bits never cross the chip interface. The model uses
// LPDDR5-class per-operation energies:
//
//   - row activation+precharge energy per ACT,
//   - column access energy per burst (array read/write),
//   - interface (I/O + on-die termination) energy per burst that crosses
//     the channel — the component PIM avoids for weights,
//   - MAC energy per PIM multiply-accumulate burst.
//
// Values are pJ-scale constants from public LPDDR5 power studies; like
// the timing model, they are meant to reproduce relationships, not
// datasheet-exact numbers.
package energy

import (
	"fmt"

	"facil/internal/dram"
)

// Params holds per-operation energies in picojoules.
type Params struct {
	// ACTpJ is row activate + precharge energy (per bank activation).
	ACTpJ float64
	// ArrayReadPJPerByte is the cell-array access energy per byte.
	ArrayReadPJPerByte float64
	// ArrayWritePJPerByte is the array write energy per byte.
	ArrayWritePJPerByte float64
	// IOPJPerByte is the interface energy per byte crossing the channel
	// (I/O drivers, ODT, PHY) — paid by SoC accesses, not by PIM MACs.
	IOPJPerByte float64
	// MACPJPerByte is the PIM compute energy per weight byte MACed.
	MACPJPerByte float64
	// BackgroundMW is standby/refresh power for the whole device in mW.
	BackgroundMW float64
}

// DefaultLPDDR5 returns LPDDR5-class constants (~2 pJ/bit array access,
// ~4 pJ/bit interface, ~1 nJ per activate).
func DefaultLPDDR5() Params {
	return Params{
		ACTpJ:               1000,
		ArrayReadPJPerByte:  16,
		ArrayWritePJPerByte: 18,
		IOPJPerByte:         32,
		MACPJPerByte:        6,
		BackgroundMW:        80,
	}
}

// Validate rejects non-physical parameters.
func (p Params) Validate() error {
	if p.ACTpJ < 0 || p.ArrayReadPJPerByte < 0 || p.ArrayWritePJPerByte < 0 ||
		p.IOPJPerByte < 0 || p.MACPJPerByte < 0 || p.BackgroundMW < 0 {
		return fmt.Errorf("energy: parameters must be non-negative: %+v", p)
	}
	return nil
}

// Breakdown is an energy account in joules.
type Breakdown struct {
	Activate   float64
	Array      float64
	Interface  float64
	MAC        float64
	Background float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Activate + b.Array + b.Interface + b.MAC + b.Background
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Activate += o.Activate
	b.Array += o.Array
	b.Interface += o.Interface
	b.MAC += o.MAC
	b.Background += o.Background
}

// SoCTraffic returns the energy of `bytes` of SoC-side DRAM traffic with
// the given write fraction and row hit rate: every byte pays array and
// interface energy; misses pay activations (one per rowBytes on average
// at hitRate locality).
func SoCTraffic(p Params, spec dram.Spec, bytes int64, writeFrac, rowHitRate float64) Breakdown {
	var b Breakdown
	fb := float64(bytes)
	b.Array = (fb*(1-writeFrac)*p.ArrayReadPJPerByte + fb*writeFrac*p.ArrayWritePJPerByte) * 1e-12
	b.Interface = fb * p.IOPJPerByte * 1e-12
	// Activations: each opened row serves rowBytes * 1/(1-hitRate)...
	// model: miss fraction of bursts trigger an ACT.
	bursts := fb / float64(spec.Geometry.TransferBytes)
	b.Activate = bursts * (1 - rowHitRate) * p.ACTpJ * 1e-12
	return b
}

// PIMGEMV returns the energy of one PIM GEMV pass over `weightBytes` of
// weights with `activations` all-bank row activations (each activating
// every bank of a rank), plus the input/output bytes that do cross the
// interface.
func PIMGEMV(p Params, spec dram.Spec, weightBytes int64, allBankACTs int64, ioBytes int64) Breakdown {
	var b Breakdown
	fb := float64(weightBytes)
	b.Array = fb * p.ArrayReadPJPerByte * 1e-12
	b.MAC = fb * p.MACPJPerByte * 1e-12
	// All-bank ACT opens banksPerRank rows in every rank of every
	// channel participating; allBankACTs counts per-rank passes across
	// the whole device.
	b.Activate = float64(allBankACTs) * float64(spec.Geometry.BanksPerRank) * p.ACTpJ * 1e-12
	fio := float64(ioBytes)
	b.Interface = fio * p.IOPJPerByte * 1e-12
	b.Array += fio * p.ArrayWritePJPerByte * 1e-12 // buffer fills
	return b
}

// Background returns standby energy for a duration.
func Background(p Params, seconds float64) Breakdown {
	return Breakdown{Background: p.BackgroundMW * 1e-3 * seconds}
}
