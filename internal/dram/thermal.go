package dram

import (
	"fmt"

	"facil/internal/parallel"
)

// Derated returns a copy of the spec with refresh issued mult times
// more often — the JEDEC high-temperature operating mode (mult 2 is the
// standard temperature-doubled refresh, tREFI halved). TREFI is clamped
// so a rank still makes forward progress between refreshes. mult <= 1
// returns the spec unchanged.
func (s Spec) Derated(mult float64) Spec {
	if mult <= 1 || s.Timing.TREFI <= 0 {
		return s
	}
	d := s
	d.Name = fmt.Sprintf("%s (refresh x%g)", s.Name, mult)
	trefi := int(float64(s.Timing.TREFI) / mult)
	if min := s.Timing.TRFCab + 1; trefi < min {
		trefi = min
	}
	d.Timing.TREFI = trefi
	return d
}

// throttleCache memoizes ThrottleFactor per (spec name, multiplier):
// the measurement replays a fixed stream twice through the cycle-level
// channel, so sweep points sharing a platform pay for it once.
var throttleCache parallel.Flight[string, float64]

// throttleStreamBursts sizes the measurement stream: long enough to
// span many tREFI intervals (LPDDR5-6400: one refresh per ~1562 busy
// burst cycles), so the refresh tax converges.
const throttleStreamBursts = 16384

// ThrottleFactor measures how much a thermal-throttle window slows the
// memory system: the ratio of the cycles a fixed saturating read stream
// needs under refresh-derated timing (Derated(mult)) to the cycles it
// needs at nominal timing. The slowdown is measured on the cycle-level
// channel simulator — refresh blocks the rank for TRFCab every TREFI —
// not assumed from a formula. The result is >= 1 and deterministic;
// repeated calls for the same spec and multiplier are served from a
// process-wide cache.
func ThrottleFactor(s Spec, mult float64) (float64, error) {
	if mult <= 1 {
		return 1, nil
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return throttleCache.Do(fmt.Sprintf("%s|x%g", s.Name, mult), func() (float64, error) {
		base, err := throttleCycles(s)
		if err != nil {
			return 0, err
		}
		derated, err := throttleCycles(s.Derated(mult))
		if err != nil {
			return 0, err
		}
		if base <= 0 {
			return 0, fmt.Errorf("dram: throttle measurement of %q produced no cycles", s.Name)
		}
		f := float64(derated) / float64(base)
		if f < 1 {
			f = 1
		}
		return f, nil
	})
}

// throttleCycles replays the measurement stream on one channel of the
// spec and returns the completion cycle. One channel suffices: refresh
// is a per-rank constraint, so the single-channel slowdown ratio is the
// system's.
func throttleCycles(s Spec) (int64, error) {
	one := s
	one.Geometry.Channels = 1
	g := one.Geometry
	cols := g.ColumnsPerRow()
	// A row-major sequential sweep: every column of a row, then the
	// next bank's row (round-robin over ranks and banks). The stream
	// saturates the data bus, so any extra cycles are refresh tax. It
	// is generated on demand, one burst per pull.
	emitted, row, bank, rank, col := 0, 0, 0, 0, 0
	done, _, err := ReplayStream(one, func(r *Request) bool {
		if emitted >= throttleStreamBursts {
			return false
		}
		*r = Request{Addr: Addr{
			Channel: 0, Rank: rank, Bank: bank, Row: row, Column: col,
		}}
		emitted++
		col++
		if col == cols {
			col = 0
			bank++
			if bank == g.BanksPerRank {
				bank = 0
				rank++
				if rank == g.RanksPerChannel {
					rank = 0
					row = (row + 1) % g.Rows
				}
			}
		}
		return true
	})
	return done, err
}
