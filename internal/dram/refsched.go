package dram

// Reference FR-FCFS scheduler ("refsched"): the pre-optimization channel
// implementation, retained verbatim so the optimized scheduler in
// channel.go can be pinned against it command-for-command.
//
// The optimized scheduler replaces this code's per-step scratch map, its
// O(n) append-compaction queue removal and its full-queue arrival rescans
// with a slot pool, per-bank intrusive lists and incremental arrival
// tracking — data-structure changes only. Both schedulers must produce
// bit-identical schedules (per-request Done cycles and ChannelStats) for
// any request stream; the differential property tests and fuzz target in
// diffsched_test.go enforce that, and BenchmarkChannelDrain measures the
// speedup the rewrite buys.
//
// The only intentional divergence from the historical code is the refresh
// counter: like the optimized scheduler, the reference folds refreshes
// into stats at apply time instead of re-deriving them from rank state in
// Stats() (see ChannelStats), so stat snapshots of the two schedulers
// compare field-for-field.

// refPending wraps a Request with scheduler-internal bookkeeping.
type refPending struct {
	req *Request
	// activated is set once the scheduler issued an ACT on behalf of
	// this request; used to classify row hits vs misses.
	activated bool
}

// refCandidate is one issuable command considered by the reference
// scheduler.
type refCandidate struct {
	kind     CommandKind
	queueIdx int
	earliest int64
}

// ReferenceChannel is the retained pre-optimization single-channel
// FR-FCFS scheduler. It exists for differential testing and benchmarking
// against the optimized Channel; simulations should use Channel.
//
// A ReferenceChannel is not safe for concurrent use.
type ReferenceChannel struct {
	spec  *Spec
	t     *Timing
	ranks []rank

	queue []refPending

	now         int64
	cmdBusFree  int64
	rowCmdFree3 int64
	dataBusFree int64
	nextRead    int64
	nextWrite   int64

	window         int
	refreshEnabled bool
	rowPolicy      RowPolicy

	stats ChannelStats
}

// NewReferenceChannel builds a reference scheduler for one channel of the
// given spec.
func NewReferenceChannel(spec *Spec) *ReferenceChannel {
	c := &ReferenceChannel{
		spec:           spec,
		t:              &spec.Timing,
		window:         DefaultWindow,
		refreshEnabled: true,
	}
	c.ranks = make([]rank, spec.Geometry.RanksPerChannel)
	for i := range c.ranks {
		c.ranks[i] = newRank(spec.Geometry.BanksPerRank, spec.Timing.TREFI)
	}
	return c
}

// SetRefreshEnabled toggles periodic refresh (enabled by default).
func (c *ReferenceChannel) SetRefreshEnabled(v bool) { c.refreshEnabled = v }

// SetRowPolicy selects the row-buffer management policy (OpenRow default).
func (c *ReferenceChannel) SetRowPolicy(p RowPolicy) { c.rowPolicy = p }

// SetWindow sets the FR-FCFS reorder window; w < 1 means strict FCFS.
func (c *ReferenceChannel) SetWindow(w int) {
	if w < 1 {
		w = 1
	}
	c.window = w
}

// Now returns the cycle of the most recently issued command.
func (c *ReferenceChannel) Now() int64 { return c.now }

// Stats returns a snapshot of the channel statistics.
func (c *ReferenceChannel) Stats() ChannelStats { return c.stats }

// Enqueue adds a request to the channel queue.
func (c *ReferenceChannel) Enqueue(r *Request) error {
	if !r.Addr.chanLocalValid(c.spec.Geometry) {
		return addrRangeError(r.Addr)
	}
	c.queue = append(c.queue, refPending{req: r})
	return nil
}

// Pending returns the number of queued requests.
func (c *ReferenceChannel) Pending() int { return len(c.queue) }

// PendingReady counts queued requests that have arrived by the current
// clock (full-queue rescan, the behavior the optimized scheduler tracks
// incrementally).
func (c *ReferenceChannel) PendingReady() int {
	n := 0
	for i := range c.queue {
		if c.queue[i].req.Arrival <= c.now {
			n++
		}
	}
	return n
}

// Drain runs the scheduler until the queue is empty and returns the cycle
// at which the last request's data burst completed.
func (c *ReferenceChannel) Drain() int64 {
	for len(c.queue) > 0 {
		c.step()
	}
	return c.stats.LastDone
}

// DrainUpTo runs until at most n requests remain.
func (c *ReferenceChannel) DrainUpTo(n int) {
	for len(c.queue) > n {
		c.step()
	}
}

// StepOne issues exactly one command (or performs one refresh/idle jump).
func (c *ReferenceChannel) StepOne() {
	c.step()
}

// step issues exactly one command (or performs one refresh).
func (c *ReferenceChannel) step() {
	if len(c.queue) == 0 {
		return
	}
	if c.refreshEnabled {
		for ri := range c.ranks {
			if c.ranks[ri].refreshDue(c.now) {
				c.ranks[ri].applyRefresh(c.now, c.t)
				c.stats.Refreshes++
			}
		}
	}

	best, ok := c.pickCommand()
	if !ok {
		// Nothing arrived yet: jump to the first arrival.
		var minArr int64 = -1
		for i := range c.queue {
			if minArr < 0 || c.queue[i].req.Arrival < minArr {
				minArr = c.queue[i].req.Arrival
			}
		}
		if minArr > c.now {
			c.now = minArr
		}
		return
	}
	c.issue(best)
}

// pickCommand selects the next command FR-FCFS style, allocating a fresh
// hit-wanted scratch map per step — the hot-path cost the optimized
// scheduler eliminates.
func (c *ReferenceChannel) pickCommand() (refCandidate, bool) {
	g := c.spec.Geometry
	limit := len(c.queue)
	if limit > c.window {
		limit = c.window
	}

	var bestCol, bestPrep refCandidate
	haveCol, havePrep := false, false
	consider := func(cand refCandidate) {
		isCol := cand.kind == CmdRD || cand.kind == CmdWR
		if isCol {
			if !haveCol || cand.earliest < bestCol.earliest ||
				(cand.earliest == bestCol.earliest && cand.queueIdx < bestCol.queueIdx) {
				bestCol = cand
				haveCol = true
			}
			return
		}
		if !havePrep || cand.earliest < bestPrep.earliest ||
			(cand.earliest == bestPrep.earliest && cand.queueIdx < bestPrep.queueIdx) {
			bestPrep = cand
			havePrep = true
		}
	}

	// hitWanted marks banks for which some visible request targets the
	// currently open row; such banks must not be precharged (FR part).
	hitWanted := make(map[int]bool)
	for i := 0; i < limit; i++ {
		r := c.queue[i].req
		b := &c.ranks[r.Addr.Rank].banks[r.Addr.Bank]
		if b.state == bankActive && b.openRow == r.Addr.Row {
			hitWanted[r.Addr.Rank*g.BanksPerRank+r.Addr.Bank] = true
		}
	}

	for i := 0; i < limit; i++ {
		r := c.queue[i].req
		rk := &c.ranks[r.Addr.Rank]
		b := &rk.banks[r.Addr.Bank]
		arr := r.Arrival

		switch {
		case b.state == bankActive && b.openRow == r.Addr.Row:
			kind := r.Kind()
			e, legal := b.earliest(kind, r.Addr.Row)
			if !legal {
				continue
			}
			e = maxi64(e, c.columnEarliest(kind))
			e = maxi64(e, arr)
			consider(refCandidate{kind: kind, queueIdx: i, earliest: e})
		case b.state == bankIdle:
			e, legal := b.earliest(CmdACT, r.Addr.Row)
			if !legal {
				continue
			}
			e = maxi64(e, rk.earliestACT())
			e = maxi64(e, c.rowCmdEarliest())
			e = maxi64(e, c.now)
			e = maxi64(e, arr)
			consider(refCandidate{kind: CmdACT, queueIdx: i, earliest: e})
		default:
			// Conflict: open row differs. Only precharge if no
			// visible request still wants the open row.
			key := r.Addr.Rank*g.BanksPerRank + r.Addr.Bank
			if hitWanted[key] {
				continue
			}
			e, legal := b.earliest(CmdPRE, 0)
			if !legal {
				continue
			}
			e = maxi64(e, c.rowCmdEarliest())
			e = maxi64(e, c.now)
			e = maxi64(e, arr)
			consider(refCandidate{kind: CmdPRE, queueIdx: i, earliest: e})
		}
	}
	switch {
	case haveCol && havePrep:
		if bestPrep.earliest <= bestCol.earliest {
			return bestPrep, true
		}
		return bestCol, true
	case haveCol:
		return bestCol, true
	case havePrep:
		return bestPrep, true
	default:
		return refCandidate{}, false
	}
}

// rowStillWanted reports whether any visible request targets the open row
// of the bank at addr (O(window) rescan).
func (c *ReferenceChannel) rowStillWanted(a Addr) bool {
	limit := len(c.queue)
	if limit > c.window {
		limit = c.window
	}
	for i := 0; i < limit; i++ {
		q := c.queue[i].req.Addr
		if q.Rank == a.Rank && q.Bank == a.Bank && q.Row == a.Row {
			return true
		}
	}
	return false
}

// rowCmdEarliest returns the first cycle with a free row-command slot.
func (c *ReferenceChannel) rowCmdEarliest() int64 {
	return c.rowCmdFree3 / rowCmdSlots
}

// consumeRowCmdSlot books one ACT/PRE slot at cycle `at`.
func (c *ReferenceChannel) consumeRowCmdSlot(at int64) {
	if v := at * rowCmdSlots; c.rowCmdFree3 < v {
		c.rowCmdFree3 = v
	}
	c.rowCmdFree3++
}

// columnEarliest combines channel-level constraints for a column command.
func (c *ReferenceChannel) columnEarliest(kind CommandKind) int64 {
	e := maxi64(c.cmdBusFree, c.dataBusFree)
	switch kind {
	case CmdRD:
		e = maxi64(e, c.nextRead)
	case CmdWR:
		e = maxi64(e, c.nextWrite)
	}
	return e
}

// issue applies the chosen command.
func (c *ReferenceChannel) issue(cand refCandidate) {
	pr := &c.queue[cand.queueIdx]
	r := pr.req
	rk := &c.ranks[r.Addr.Rank]
	b := &rk.banks[r.Addr.Bank]
	at := cand.earliest

	switch cand.kind {
	case CmdPRE:
		b.apply(CmdPRE, 0, at, c.t)
		c.consumeRowCmdSlot(at)
	case CmdACT:
		b.apply(CmdACT, r.Addr.Row, at, c.t)
		rk.recordACT(at, c.t)
		pr.activated = true
		c.stats.Activations++
		c.consumeRowCmdSlot(at)
	case CmdRD, CmdWR:
		b.apply(cand.kind, r.Addr.Row, at, c.t)
		c.dataBusFree = at + int64(c.t.TCCD)
		c.stats.DataBusCycles += int64(c.t.TCCD)
		var done int64
		if cand.kind == CmdRD {
			c.stats.Reads++
			done = at + int64(c.t.CL) + int64(c.t.TCCD)
			c.nextWrite = maxi64(c.nextWrite, at+int64(c.t.TCCD)+int64(c.t.TRTW))
		} else {
			c.stats.Writes++
			done = at + int64(c.t.CWL) + int64(c.t.TCCD)
			c.nextRead = maxi64(c.nextRead, at+int64(c.t.TCCD)+int64(c.t.TWTR))
		}
		if pr.activated {
			c.stats.RowMisses++
		} else {
			c.stats.RowHits++
		}
		r.Done = done
		if done > c.stats.LastDone {
			c.stats.LastDone = done
		}
		// Remove from queue preserving order (the O(n) compaction the
		// optimized scheduler replaces with O(1) list unlinking).
		c.queue = append(c.queue[:cand.queueIdx], c.queue[cand.queueIdx+1:]...)
		c.cmdBusFree = at + 1
		if c.rowPolicy == CloseRow && !c.rowStillWanted(r.Addr) {
			// Auto-precharge (RDA/WRA): close as soon as the bank's
			// timing constraints allow, without a command-bus slot.
			b.apply(CmdPRE, 0, b.nextPRE, c.t)
		}
	}
	if at > c.now {
		c.now = at
	}
}
