package dram

import "errors"

// ErrConfig is the sentinel wrapped by every configuration-validation
// error of the package (Geometry.Validate, Timing.Validate,
// Spec.Validate and the spec constructors). Callers branch with
// errors.Is(err, ErrConfig) to distinguish recoverable configuration
// mistakes from simulator-internal failures; nothing in the package
// panics on bad configuration.
var ErrConfig = errors.New("dram: invalid configuration")
