package dram

import (
	"runtime"
	"testing"
)

// benchStream builds a locality-mixed request stream (the relayout-style
// read/write interleave plus bank rotation) sized for steady-state
// scheduler measurement on one channel.
func benchStream(spec *Spec, n int) []Request {
	g := spec.Geometry
	cols := g.ColumnsPerRow()
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Addr: Addr{
				Rank:   (i / cols / g.BanksPerRank) % g.RanksPerChannel,
				Bank:   (i / cols) % g.BanksPerRank,
				Row:    (i / cols / g.BanksPerRank / g.RanksPerChannel) % g.Rows,
				Column: i % cols,
			},
			Write: i%4 == 3,
		}
	}
	return reqs
}

// BenchmarkChannelDrain measures the optimized scheduler's steady-state
// cost per request on the default test LPDDR5 spec. The channel is warmed
// before timing so the slot pool and arrival heap are grown; after that
// the enqueue+drain loop must not allocate (the 0 allocs/op acceptance
// gate, also enforced by TestSteadyStateZeroAllocs).
func BenchmarkChannelDrain(b *testing.B) {
	spec := smallSpec()
	reqs := benchStream(&spec, 4096)
	ch := NewChannel(&spec)
	for i := range reqs {
		if err := ch.EnqueueValue(reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	ch.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			if err := ch.EnqueueValue(reqs[j]); err != nil {
				b.Fatal(err)
			}
		}
		ch.Drain()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(reqs)), "ns/req")
}

// BenchmarkReferenceChannelDrain is BenchmarkChannelDrain on the retained
// reference scheduler — the denominator of the speedup the rewrite buys.
func BenchmarkReferenceChannelDrain(b *testing.B) {
	spec := smallSpec()
	reqs := benchStream(&spec, 4096)
	ch := NewReferenceChannel(&spec)
	for i := range reqs {
		if err := ch.Enqueue(&reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	ch.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			if err := ch.Enqueue(&reqs[j]); err != nil {
				b.Fatal(err)
			}
		}
		ch.Drain()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(reqs)), "ns/req")
}

// BenchmarkReplayStream measures the full streaming replay path — pull
// source, value enqueue, bounded-queue drain — in simulated bytes per
// wall-clock second (MB/s throughput of the simulator itself).
func BenchmarkReplayStream(b *testing.B) {
	spec := smallSpec()
	g := spec.Geometry
	cols := g.ColumnsPerRow()
	const n = 1 << 16
	b.SetBytes(int64(n) * int64(g.TransferBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emitted := 0
		_, _, err := ReplayStream(spec, func(r *Request) bool {
			if emitted >= n {
				return false
			}
			*r = Request{Addr: Addr{
				Bank:   (emitted / cols) % g.BanksPerRank,
				Rank:   (emitted / cols / g.BanksPerRank) % g.RanksPerChannel,
				Row:    (emitted / cols / g.BanksPerRank / g.RanksPerChannel) % g.Rows,
				Column: emitted % cols,
			}}
			emitted++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateZeroAllocs is the allocation regression gate: once the
// channel's slot pool is warm, enqueue-by-value and drain must not
// allocate at all.
func TestSteadyStateZeroAllocs(t *testing.T) {
	spec := smallSpec()
	reqs := benchStream(&spec, 2048)
	ch := NewChannel(&spec)
	warm := func() {
		for i := range reqs {
			if err := ch.EnqueueValue(reqs[i]); err != nil {
				t.Fatal(err)
			}
		}
		ch.Drain()
	}
	warm()
	if avg := testing.AllocsPerRun(10, warm); avg != 0 {
		t.Fatalf("steady-state enqueue+drain allocates %.1f times per run, want 0", avg)
	}
}

// TestOptimizedSchedulerSpeedup gates the perf win: the optimized
// scheduler must beat the reference by at least 3x ns/request on the
// default LPDDR5 spec (the acceptance bar; it measures ~10x on an idle
// single-core runner, so 3x leaves headroom for CI noise).
func TestOptimizedSchedulerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping timing comparison in -short mode")
	}
	spec := smallSpec()
	reqs := benchStream(&spec, 4096)

	opt := NewChannel(&spec)
	ref := NewReferenceChannel(&spec)
	time := func(run func()) float64 {
		run() // warm
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run()
			}
		})
		return float64(r.NsPerOp())
	}
	optNs := time(func() {
		for j := range reqs {
			opt.EnqueueValue(reqs[j])
		}
		opt.Drain()
	})
	refNs := time(func() {
		for j := range reqs {
			ref.Enqueue(&reqs[j])
		}
		ref.Drain()
	})
	if ratio := refNs / optNs; ratio < 3 {
		t.Errorf("optimized scheduler only %.2fx faster than reference (opt %.0f ns, ref %.0f ns), want >= 3x",
			ratio, optNs, refNs)
	}
}

// TestParallelDrainMatchesSerial pins the parallel controller drain to the
// serial one: same completion cycle, same merged stats, same per-request
// Done cycles. GOMAXPROCS is raised for the parallel run so the test
// exercises the concurrent path even on a single-core runner.
func TestParallelDrainMatchesSerial(t *testing.T) {
	spec, err := LPDDR5("par drain test", 64, 6400, 2, 1<<30) // 4 channels
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Geometry
	cols := g.ColumnsPerRow()
	mkReqs := func() []Request {
		reqs := make([]Request, 20_000)
		for i := range reqs {
			reqs[i] = Request{
				Addr: Addr{
					Channel: i % g.Channels,
					Rank:    (i / cols) % g.RanksPerChannel,
					Bank:    (i * 7 / cols) % g.BanksPerRank,
					Row:     (i / cols / g.BanksPerRank) % g.Rows,
					Column:  i % cols,
				},
				Write:   i%5 == 0,
				Arrival: int64(i / (2 * g.Channels)),
			}
		}
		return reqs
	}

	run := func(procs int) (int64, ChannelStats, []int64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		ctl, err := NewController(spec)
		if err != nil {
			t.Fatal(err)
		}
		reqs := mkReqs()
		for i := range reqs {
			if err := ctl.Enqueue(&reqs[i]); err != nil {
				t.Fatal(err)
			}
		}
		last := ctl.Drain()
		dones := make([]int64, len(reqs))
		for i := range reqs {
			dones[i] = reqs[i].Done
		}
		return last, ctl.Stats(), dones
	}

	serialLast, serialStats, serialDones := run(1)
	parLast, parStats, parDones := run(4)
	if serialLast != parLast {
		t.Fatalf("completion diverged: serial=%d parallel=%d", serialLast, parLast)
	}
	if serialStats != parStats {
		t.Fatalf("stats diverged:\nserial:   %+v\nparallel: %+v", serialStats, parStats)
	}
	for i := range serialDones {
		if serialDones[i] != parDones[i] {
			t.Fatalf("request %d Done diverged: serial=%d parallel=%d", i, serialDones[i], parDones[i])
		}
	}
}
