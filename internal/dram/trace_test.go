package dram

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"facil/internal/obs"
)

// tracedDrain pushes n random requests through a traced controller and
// returns the tracer plus the final stats snapshot.
func tracedDrain(t *testing.T, n int) (*obs.Tracer, ChannelStats) {
	t.Helper()
	spec := smallSpec()
	ctl, err := NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(1 << 14)
	ctl.SetTracer(tr, 0)
	g := spec.Geometry
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		req := &Request{
			Addr: Addr{
				Rank:   rng.Intn(g.RanksPerChannel),
				Bank:   rng.Intn(g.BanksPerRank),
				Row:    rng.Intn(256),
				Column: rng.Intn(g.ColumnsPerRow()),
			},
			Write:   rng.Intn(4) == 0,
			Arrival: int64(i),
		}
		if err := ctl.Enqueue(req); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Drain()
	return tr, ctl.Stats()
}

// TestChannelTraceCounters drives random traffic through a traced
// channel and checks the emitted counter trace: valid trace-event JSON,
// monotonic timestamps, non-decreasing counter series that stay
// consistent with the final ChannelStats, and refresh instants.
func TestChannelTraceCounters(t *testing.T) {
	tr, stats := tracedDrain(t, 2000)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	last := -1.0
	lastHit, lastMiss := -1.0, -1.0
	samples, refreshes := 0, 0
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("timestamps not monotonic: %v after %v", e.TS, last)
		}
		last = e.TS
		switch {
		case e.Ph == "C" && e.Name == "row hits":
			samples++
			if v, _ := e.Args["value"].(float64); v < lastHit {
				t.Fatalf("row-hit counter decreased: %v after %v", v, lastHit)
			} else {
				lastHit = v
			}
		case e.Ph == "C" && e.Name == "row misses":
			if v, _ := e.Args["value"].(float64); v < lastMiss {
				t.Fatalf("row-miss counter decreased: %v after %v", v, lastMiss)
			} else {
				lastMiss = v
			}
		case e.Ph == "i" && e.Name == "refresh":
			refreshes++
		}
	}
	if samples == 0 {
		t.Fatal("no row-hit counter samples recorded")
	}
	if refreshes == 0 {
		t.Fatal("no refresh instants recorded (2000 random requests span several tREFI)")
	}
	if lastHit > float64(stats.RowHits) || lastMiss > float64(stats.RowMisses) {
		t.Fatalf("trace counters exceed final stats: trace %v/%v vs stats %d/%d",
			lastHit, lastMiss, stats.RowHits, stats.RowMisses)
	}
}

// TestChannelTracerDoesNotPerturbSchedule pins that attaching a tracer
// leaves the command schedule untouched: same completion cycle, same
// stats as an untraced run.
func TestChannelTracerDoesNotPerturbSchedule(t *testing.T) {
	run := func(traced bool) (int64, ChannelStats) {
		spec := smallSpec()
		ctl, err := NewController(spec)
		if err != nil {
			t.Fatal(err)
		}
		if traced {
			ctl.SetTracer(obs.New(1<<12), 0)
		}
		g := spec.Geometry
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 800; i++ {
			req := &Request{Addr: Addr{
				Rank: rng.Intn(g.RanksPerChannel), Bank: rng.Intn(g.BanksPerRank),
				Row: rng.Intn(64), Column: rng.Intn(g.ColumnsPerRow()),
			}, Arrival: int64(i)}
			if err := ctl.Enqueue(req); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Drain(), ctl.Stats()
	}
	plainDone, plainStats := run(false)
	tracedDone, tracedStats := run(true)
	if plainDone != tracedDone || plainStats != tracedStats {
		t.Fatalf("tracer perturbed the schedule:\nplain  %d %+v\ntraced %d %+v",
			plainDone, plainStats, tracedDone, tracedStats)
	}
}
