// Package dram implements a cycle-level DRAM device and memory-channel
// simulator for LPDDR5/LPDDR5X/HBM2-class parts.
//
// The simulator operates at burst granularity: one simulator cycle is the
// time needed to move one data burst (TransferBytes, typically 32 B) across
// one channel's data bus. At LPDDR5-6400 with a 16-bit channel this is
// 2.5 ns. All JEDEC-style timing parameters are expressed in these burst
// cycles (see Timing), which keeps bandwidth arithmetic exact: a channel
// that issues one read per cycle runs at its peak bandwidth.
//
// The package provides
//
//   - Geometry and Spec: device organization and timing presets,
//   - Bank / Rank / Channel: open-row state machines with tRCD/tRP/tRAS/
//     tCCD/tRRD/tFAW/tWR/tRTP/refresh constraints,
//   - Controller: an FR-FCFS multi-channel memory controller operating on
//     already-translated DRAM addresses (address mapping lives in
//     internal/addr and internal/mapping),
//   - trace replay helpers used by the re-layout and GEMM-layout models.
package dram

import "fmt"

// Geometry describes the physical organization of one memory system
// (all channels included).
type Geometry struct {
	// Channels is the number of independent channels. For LPDDR5 each
	// channel is 16 bits wide; a 256-bit bus is 16 channels.
	Channels int
	// RanksPerChannel is the number of ranks sharing one channel bus.
	RanksPerChannel int
	// BanksPerRank is the number of banks in one rank (LPDDR5: 16 in
	// BG mode, 8 in 8-bank mode).
	BanksPerRank int
	// Rows is the number of DRAM rows per bank.
	Rows int
	// RowBytes is the size of one DRAM row (page) in bytes, e.g. 2048.
	RowBytes int
	// TransferBytes is the size of one data burst in bytes (channel
	// width times burst length), e.g. 32 for LPDDR5 BL16 x16.
	TransferBytes int
}

// Validate reports an error if any field is non-positive or not a power of
// two where the address-mapping machinery requires one. Errors wrap
// ErrConfig, so callers can recover from configuration mistakes instead
// of crashing.
func (g Geometry) Validate() error {
	type field struct {
		name string
		v    int
		pow2 bool
	}
	fields := []field{
		{"Channels", g.Channels, true},
		{"RanksPerChannel", g.RanksPerChannel, true},
		{"BanksPerRank", g.BanksPerRank, true},
		{"Rows", g.Rows, true},
		{"RowBytes", g.RowBytes, true},
		{"TransferBytes", g.TransferBytes, true},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("%w: geometry field %s must be positive, got %d", ErrConfig, f.name, f.v)
		}
		if f.pow2 && f.v&(f.v-1) != 0 {
			return fmt.Errorf("%w: geometry field %s must be a power of two, got %d", ErrConfig, f.name, f.v)
		}
	}
	if g.TransferBytes > g.RowBytes {
		return fmt.Errorf("%w: TransferBytes %d exceeds RowBytes %d", ErrConfig, g.TransferBytes, g.RowBytes)
	}
	return nil
}

// TotalBanks returns the number of banks across all channels and ranks.
func (g Geometry) TotalBanks() int {
	return g.Channels * g.RanksPerChannel * g.BanksPerRank
}

// BanksPerChannel returns the number of banks sharing one channel.
func (g Geometry) BanksPerChannel() int {
	return g.RanksPerChannel * g.BanksPerRank
}

// ColumnsPerRow returns the number of bursts per DRAM row.
func (g Geometry) ColumnsPerRow() int {
	return g.RowBytes / g.TransferBytes
}

// CapacityBytes returns the total capacity of the memory system.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Channels) * int64(g.RanksPerChannel) * int64(g.BanksPerRank) *
		int64(g.Rows) * int64(g.RowBytes)
}

// BankBytes returns the capacity of a single bank.
func (g Geometry) BankBytes() int64 {
	return int64(g.Rows) * int64(g.RowBytes)
}

// ChannelBits, RankBits, BankBits, RowBits, ColumnBits and OffsetBits report
// the number of physical-address bits consumed by each DRAM coordinate.
func (g Geometry) ChannelBits() int { return log2(g.Channels) }

// RankBits returns log2(RanksPerChannel).
func (g Geometry) RankBits() int { return log2(g.RanksPerChannel) }

// BankBits returns log2(BanksPerRank).
func (g Geometry) BankBits() int { return log2(g.BanksPerRank) }

// RowBits returns log2(Rows).
func (g Geometry) RowBits() int { return log2(g.Rows) }

// ColumnBits returns log2(ColumnsPerRow), the number of burst-index bits.
func (g Geometry) ColumnBits() int { return log2(g.ColumnsPerRow()) }

// OffsetBits returns log2(TransferBytes), the byte-within-burst bits.
func (g Geometry) OffsetBits() int { return log2(g.TransferBytes) }

// AddressBits returns the total number of physical-address bits covered by
// the geometry (log2 of capacity).
func (g Geometry) AddressBits() int {
	return g.ChannelBits() + g.RankBits() + g.BankBits() + g.RowBits() +
		g.ColumnBits() + g.OffsetBits()
}

// log2 returns the floor base-2 logarithm of v, and 0 for v < 1. It is
// total: power-of-two-ness is a Geometry.Validate concern (every
// constructor and the controller validate before use), not a reason to
// crash address arithmetic.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Addr identifies one burst-sized location inside a memory system.
// Column is a burst index within the row ([0, ColumnsPerRow)).
type Addr struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Column  int
}

// Valid reports whether the address is inside the geometry.
func (a Addr) Valid(g Geometry) bool {
	return a.Channel >= 0 && a.Channel < g.Channels &&
		a.Rank >= 0 && a.Rank < g.RanksPerChannel &&
		a.Bank >= 0 && a.Bank < g.BanksPerRank &&
		a.Row >= 0 && a.Row < g.Rows &&
		a.Column >= 0 && a.Column < g.ColumnsPerRow()
}

// String renders the address as ch/rk/ba/row/col.
func (a Addr) String() string {
	return fmt.Sprintf("ch%d rk%d ba%d row%d col%d", a.Channel, a.Rank, a.Bank, a.Row, a.Column)
}

// GlobalBank returns a dense index identifying the bank across the whole
// system: ((channel*ranks)+rank)*banks + bank.
func (a Addr) GlobalBank(g Geometry) int {
	return (a.Channel*g.RanksPerChannel+a.Rank)*g.BanksPerRank + a.Bank
}
