package dram

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential tests pinning the optimized scheduler (Channel) against the
// retained reference implementation (ReferenceChannel) command-for-command:
// identical per-request Done cycles, identical clock, identical stats, for
// randomized streams across row policies, window sizes and refresh modes.

// diffStream generates one randomized request stream. shape selects the
// address pattern; arrivals are paced so the stream mixes back-pressured
// and idle phases (exercising both the FR-FCFS window and the idle jump).
func diffStream(spec *Spec, shape string, n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	g := spec.Geometry
	cols := g.ColumnsPerRow()
	reqs := make([]Request, n)
	var arrival int64
	hotRows := []int{rng.Intn(g.Rows), rng.Intn(g.Rows), rng.Intn(g.Rows)}
	for i := range reqs {
		var a Addr
		switch shape {
		case "sequential":
			lin := i
			a.Column = lin % cols
			lin /= cols
			a.Bank = lin % g.BanksPerRank
			lin /= g.BanksPerRank
			a.Rank = lin % g.RanksPerChannel
			lin /= g.RanksPerChannel
			a.Row = lin % g.Rows
		case "hotrow":
			// 80% of traffic hits three hot rows in two banks.
			if rng.Float64() < 0.8 {
				a.Row = hotRows[rng.Intn(len(hotRows))]
				a.Bank = rng.Intn(2)
			} else {
				a.Row = rng.Intn(g.Rows)
				a.Bank = rng.Intn(g.BanksPerRank)
			}
			a.Rank = rng.Intn(g.RanksPerChannel)
			a.Column = rng.Intn(cols)
		default: // "random"
			a.Rank = rng.Intn(g.RanksPerChannel)
			a.Bank = rng.Intn(g.BanksPerRank)
			a.Row = rng.Intn(g.Rows)
			a.Column = rng.Intn(cols)
		}
		// Pacing: mostly dense, with occasional gaps that let the queue
		// drain fully so the idle jump path fires.
		switch {
		case rng.Float64() < 0.02:
			arrival += int64(rng.Intn(5000))
		case rng.Float64() < 0.5:
			arrival += int64(rng.Intn(4))
		}
		reqs[i] = Request{
			Addr:    a,
			Write:   rng.Float64() < 0.3,
			Arrival: arrival,
			ID:      int64(i),
		}
	}
	return reqs
}

// runDifferential pumps the same stream through both schedulers in
// identical waves (bounding the reference's O(n) queues) and asserts
// bit-identical behavior. It also cross-checks PendingReady — the
// incrementally tracked count against the reference's full rescan — at
// every wave boundary.
func runDifferential(t *testing.T, spec *Spec, reqs []Request, policy RowPolicy, window int, refresh bool) {
	t.Helper()

	opt := NewChannel(spec)
	ref := NewReferenceChannel(spec)
	opt.SetRowPolicy(policy)
	ref.SetRowPolicy(policy)
	opt.SetWindow(window)
	ref.SetWindow(window)
	opt.SetRefreshEnabled(refresh)
	ref.SetRefreshEnabled(refresh)

	optReqs := make([]Request, len(reqs))
	refReqs := make([]Request, len(reqs))
	copy(optReqs, reqs)
	copy(refReqs, reqs)

	const wave = 192
	const drainTo = 48
	for lo := 0; lo < len(reqs); lo += wave {
		hi := lo + wave
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for i := lo; i < hi; i++ {
			if err := opt.Enqueue(&optReqs[i]); err != nil {
				t.Fatalf("opt enqueue %d: %v", i, err)
			}
			if err := ref.Enqueue(&refReqs[i]); err != nil {
				t.Fatalf("ref enqueue %d: %v", i, err)
			}
		}
		opt.DrainUpTo(drainTo)
		ref.DrainUpTo(drainTo)
		if opt.Now() != ref.Now() {
			t.Fatalf("clock diverged after wave at %d: opt=%d ref=%d", hi, opt.Now(), ref.Now())
		}
		if got, want := opt.PendingReady(), ref.PendingReady(); got != want {
			t.Fatalf("PendingReady diverged after wave at %d: opt=%d ref=%d", hi, got, want)
		}
	}
	optLast := opt.Drain()
	refLast := ref.Drain()
	if optLast != refLast {
		t.Fatalf("final LastDone diverged: opt=%d ref=%d", optLast, refLast)
	}
	for i := range reqs {
		if optReqs[i].Done != refReqs[i].Done {
			t.Fatalf("request %d Done diverged: opt=%d ref=%d (addr=%+v write=%v arrival=%d)",
				i, optReqs[i].Done, refReqs[i].Done, reqs[i].Addr, reqs[i].Write, reqs[i].Arrival)
		}
	}
	if os, rs := opt.Stats(), ref.Stats(); os != rs {
		t.Fatalf("stats diverged:\nopt: %+v\nref: %+v", os, rs)
	}
}

// TestDifferentialScheduler sweeps the full config cross-product. Each
// config sees >= 1e5 randomized requests in full mode (reduced under
// -short to keep the race-enabled CI run fast).
func TestDifferentialScheduler(t *testing.T) {
	spec := smallSpec()
	n := 100_000
	if testing.Short() {
		n = 8_000
	}
	shapes := []string{"sequential", "random", "hotrow"}
	for _, policy := range []RowPolicy{OpenRow, CloseRow} {
		for _, refresh := range []bool{true, false} {
			for _, window := range []int{1, 4, 32, 128} {
				for si, shape := range shapes {
					policy, refresh, window, shape, si := policy, refresh, window, shape, si
					name := fmt.Sprintf("policy=%d/refresh=%v/window=%d/%s", policy, refresh, window, shape)
					t.Run(name, func(t *testing.T) {
						per := n / len(shapes)
						seed := int64(1000*si + window + 7)
						if !refresh {
							seed += 31
						}
						reqs := diffStream(&spec, shape, per, seed)
						runDifferential(t, &spec, reqs, policy, window, refresh)
					})
				}
			}
		}
	}
}

// TestDifferentialStepInterleave drives both schedulers one StepOne at a
// time with enqueues interleaved mid-drain — the co-scheduler's usage
// pattern — checking clock and ready-count equivalence at every step.
func TestDifferentialStepInterleave(t *testing.T) {
	spec := smallSpec()
	reqs := diffStream(&spec, "hotrow", 4_000, 99)
	opt := NewChannel(&spec)
	ref := NewReferenceChannel(&spec)

	optReqs := make([]Request, len(reqs))
	refReqs := make([]Request, len(reqs))
	copy(optReqs, reqs)
	copy(refReqs, reqs)

	next := 0
	rng := rand.New(rand.NewSource(5))
	for next < len(reqs) || opt.Pending() > 0 {
		if next < len(reqs) && (opt.Pending() == 0 || rng.Intn(3) == 0) {
			burst := 1 + rng.Intn(7)
			for j := 0; j < burst && next < len(reqs); j++ {
				if err := opt.Enqueue(&optReqs[next]); err != nil {
					t.Fatal(err)
				}
				if err := ref.Enqueue(&refReqs[next]); err != nil {
					t.Fatal(err)
				}
				next++
			}
		}
		opt.StepOne()
		ref.StepOne()
		if opt.Now() != ref.Now() || opt.Pending() != ref.Pending() || opt.PendingReady() != ref.PendingReady() {
			t.Fatalf("step diverged at req %d: now %d/%d pending %d/%d ready %d/%d",
				next, opt.Now(), ref.Now(), opt.Pending(), ref.Pending(),
				opt.PendingReady(), ref.PendingReady())
		}
	}
	for i := range reqs {
		if optReqs[i].Done != refReqs[i].Done {
			t.Fatalf("request %d Done diverged: opt=%d ref=%d", i, optReqs[i].Done, refReqs[i].Done)
		}
	}
	if os, rs := opt.Stats(), ref.Stats(); os != rs {
		t.Fatalf("stats diverged:\nopt: %+v\nref: %+v", os, rs)
	}
}

// TestSetWindowMidStream resizes the FR-FCFS window while requests are
// queued, in both directions, and checks the schedulers stay locked. The
// optimized scheduler rebuilds its visible-window lists on SetWindow; the
// reference just changes a bound — both must agree afterwards.
func TestSetWindowMidStream(t *testing.T) {
	spec := smallSpec()
	reqs := diffStream(&spec, "random", 6_000, 42)
	opt := NewChannel(&spec)
	ref := NewReferenceChannel(&spec)

	optReqs := make([]Request, len(reqs))
	refReqs := make([]Request, len(reqs))
	copy(optReqs, reqs)
	copy(refReqs, reqs)

	windows := []int{64, 1, 16, 128, 2, 32}
	wave := len(reqs) / len(windows)
	for wi, w := range windows {
		opt.SetWindow(w)
		ref.SetWindow(w)
		lo, hi := wi*wave, (wi+1)*wave
		if wi == len(windows)-1 {
			hi = len(reqs)
		}
		for i := lo; i < hi; i++ {
			if err := opt.Enqueue(&optReqs[i]); err != nil {
				t.Fatal(err)
			}
			if err := ref.Enqueue(&refReqs[i]); err != nil {
				t.Fatal(err)
			}
		}
		// Drain partially so resizes hit a non-empty queue.
		opt.DrainUpTo(wave / 2)
		ref.DrainUpTo(wave / 2)
		if opt.Now() != ref.Now() {
			t.Fatalf("clock diverged after window %d: opt=%d ref=%d", w, opt.Now(), ref.Now())
		}
	}
	opt.Drain()
	ref.Drain()
	for i := range reqs {
		if optReqs[i].Done != refReqs[i].Done {
			t.Fatalf("request %d Done diverged: opt=%d ref=%d", i, optReqs[i].Done, refReqs[i].Done)
		}
	}
	if os, rs := opt.Stats(), ref.Stats(); os != rs {
		t.Fatalf("stats diverged:\nopt: %+v\nref: %+v", os, rs)
	}
}

// FuzzSchedulerDifferential feeds fuzz-chosen interleavings of enqueue
// waves and partial drains through both schedulers. Repeated
// enqueue/drain cycles force the optimized scheduler's slot pool through
// free-list reuse and its arrival heap through stale-entry invalidation —
// the queue "wraparound" states a single monotone drain never reaches.
func FuzzSchedulerDifferential(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0), []byte{40, 10, 80, 200, 5, 60})
	f.Add(int64(7), uint8(1), uint8(1), []byte{255, 0, 3, 3, 3, 128, 17})
	f.Add(int64(42), uint8(3), uint8(2), []byte{16, 16, 16, 16, 16, 16, 16, 16})
	f.Fuzz(func(t *testing.T, seed int64, mode, windowSel uint8, script []byte) {
		if len(script) == 0 || len(script) > 64 {
			t.Skip()
		}
		spec := smallSpec()
		shape := []string{"sequential", "random", "hotrow"}[int(mode)%3]
		window := []int{1, 4, 32, 128}[int(windowSel)%4]

		opt := NewChannel(&spec)
		ref := NewReferenceChannel(&spec)
		opt.SetWindow(window)
		ref.SetWindow(window)
		if mode%2 == 0 {
			opt.SetRowPolicy(CloseRow)
			ref.SetRowPolicy(CloseRow)
		}

		// The script alternates enqueue-wave sizes and drain targets.
		total := 0
		for _, b := range script {
			total += int(b)
		}
		if total == 0 {
			t.Skip()
		}
		reqs := diffStream(&spec, shape, total, seed)
		optReqs := make([]Request, len(reqs))
		refReqs := make([]Request, len(reqs))
		copy(optReqs, reqs)
		copy(refReqs, reqs)

		next := 0
		for i, b := range script {
			if i%2 == 0 {
				for j := 0; j < int(b) && next < len(reqs); j++ {
					if err := opt.Enqueue(&optReqs[next]); err != nil {
						t.Fatal(err)
					}
					if err := ref.Enqueue(&refReqs[next]); err != nil {
						t.Fatal(err)
					}
					next++
				}
			} else {
				opt.DrainUpTo(int(b) / 4)
				ref.DrainUpTo(int(b) / 4)
			}
			if opt.Now() != ref.Now() || opt.PendingReady() != ref.PendingReady() {
				t.Fatalf("diverged at script[%d]: now %d/%d ready %d/%d",
					i, opt.Now(), ref.Now(), opt.PendingReady(), ref.PendingReady())
			}
		}
		opt.Drain()
		ref.Drain()
		for i := 0; i < next; i++ {
			if optReqs[i].Done != refReqs[i].Done {
				t.Fatalf("request %d Done diverged: opt=%d ref=%d", i, optReqs[i].Done, refReqs[i].Done)
			}
		}
		if os, rs := opt.Stats(), ref.Stats(); os != rs {
			t.Fatalf("stats diverged:\nopt: %+v\nref: %+v", os, rs)
		}
	})
}
