package dram

import (
	"math"
	"testing"
)

func TestPresetPeakBandwidth(t *testing.T) {
	cases := []struct {
		spec Spec
		want float64 // GB/s, from paper Table II
	}{
		{JetsonOrinLPDDR5, 204.8},
		{MacbookLPDDR5, 409.6},
		{IdeaPadLPDDR5X, 59.736},
		{IPhoneLPDDR5, 51.2},
	}
	for _, c := range cases {
		got := c.spec.PeakBandwidthGBs()
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("%s: peak BW = %.1f GB/s, want %.1f", c.spec.Name, got, c.want)
		}
	}
}

func TestPresetCapacities(t *testing.T) {
	cases := []struct {
		spec Spec
		want int64
	}{
		{JetsonOrinLPDDR5, 64 * GiB},
		{MacbookLPDDR5, 64 * GiB},
		{IdeaPadLPDDR5X, 32 * GiB},
		{IPhoneLPDDR5, 8 * GiB},
	}
	for _, c := range cases {
		if got := c.spec.Geometry.CapacityBytes(); got != c.want {
			t.Errorf("%s: capacity = %d, want %d", c.spec.Name, got, c.want)
		}
	}
}

func TestBurstCycleNS(t *testing.T) {
	// 32 B over 16 pins at 6400 Mbps: 16 beats at 6.4 Gb/s/pin = 2.5 ns.
	got := burstCycleNS(32, 16, 6400)
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("burstCycleNS = %g, want 2.5", got)
	}
}

func TestTimingValidate(t *testing.T) {
	tm := JetsonOrinLPDDR5.Timing
	if err := tm.Validate(); err != nil {
		t.Fatalf("preset timing invalid: %v", err)
	}
	bad := tm
	bad.TRC = 1
	if err := bad.Validate(); err == nil {
		t.Error("TRC < TRAS+TRP accepted")
	}
	bad = tm
	bad.TCCD = 0
	if err := bad.Validate(); err == nil {
		t.Error("TCCD = 0 accepted")
	}
	bad = tm
	bad.CycleNS = 0
	if err := bad.Validate(); err == nil {
		t.Error("CycleNS = 0 accepted")
	}
}

func TestTimingRoundTrip(t *testing.T) {
	tm := JetsonOrinLPDDR5.Timing
	// Seconds(Cycles(x)) must round up, never down.
	for _, ns := range []float64{1, 2.5, 17.9, 42, 280} {
		c := tm.Cycles(ns)
		if got := float64(c) * tm.CycleNS; got < ns {
			t.Errorf("Cycles(%g ns) = %d cycles = %g ns, rounded down", ns, c, got)
		}
	}
	if tm.Cycles(0) != 0 || tm.Cycles(-5) != 0 {
		t.Error("non-positive durations must map to 0 cycles")
	}
}

func TestLPDDR5Errors(t *testing.T) {
	if _, err := LPDDR5("bad", 100, 6400, 2, 64*GiB); err == nil {
		t.Error("bus width not multiple of 16 accepted")
	}
	if _, err := LPDDR5("bad", 256, 6400, 2, 3*GiB); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
}

func TestHBM2Preset(t *testing.T) {
	s, err := HBM2("HBM2-2000 4ch", 4, 2000, 4*GiB)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Geometry.ColumnsPerRow(); got != 64 {
		t.Errorf("HBM2 columns/row = %d, want 64", got)
	}
	// 4 channels x 128 bit x 2 Gbps = 128 GB/s.
	if got := s.PeakBandwidthGBs(); math.Abs(got-128) > 0.5 {
		t.Errorf("HBM2 peak = %.1f, want 128", got)
	}
}
