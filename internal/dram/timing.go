package dram

import "fmt"

// Timing holds DRAM timing constraints expressed in burst cycles (one cycle
// = time for one TransferBytes burst on the channel data bus).
//
// The values are derived from JEDEC LPDDR5/5X (JESD209-5) and HBM2
// datasheet-class numbers, quantized to the burst clock. They intentionally
// model the constraints that dominate achieved bandwidth and row-locality
// effects; exotic constraints (per-bank-group tCCD_S/L distinction,
// tPPD, DQS training, ...) are folded into the ones below.
type Timing struct {
	// TRCD: ACT to first RD/WR to the same bank.
	TRCD int
	// TRP: PRE to next ACT to the same bank.
	TRP int
	// TRAS: ACT to PRE to the same bank.
	TRAS int
	// TRC: ACT to ACT to the same bank (>= TRAS+TRP).
	TRC int
	// TCCD: RD-to-RD / WR-to-WR command spacing on one rank.
	// 1 means seamless bursts.
	TCCD int
	// TRRD: ACT to ACT to different banks of the same rank.
	TRRD int
	// TFAW: window in which at most four ACTs may be issued per rank.
	TFAW int
	// TWR: write recovery, end of write burst to PRE.
	TWR int
	// TWTR: end of write burst to next read command (same rank).
	TWTR int
	// TRTP: read command to PRE.
	TRTP int
	// TRTW: read command to write command turnaround (same channel).
	TRTW int
	// CL: read command to first data beat (latency, informational for
	// completion times; does not gate throughput).
	CL int
	// CWL: write command to first data beat.
	CWL int
	// TRFCab: all-bank refresh duration.
	TRFCab int
	// TREFI: average interval between refresh commands.
	TREFI int
	// CycleNS is the wall-clock duration of one burst cycle in
	// nanoseconds (e.g. 2.5 at LPDDR5-6400 x16).
	CycleNS float64
}

// Validate reports an error for non-physical parameter combinations.
// Errors wrap ErrConfig.
func (t Timing) Validate() error {
	if t.CycleNS <= 0 {
		return fmt.Errorf("%w: CycleNS must be positive, got %g", ErrConfig, t.CycleNS)
	}
	nonNeg := map[string]int{
		"TRCD": t.TRCD, "TRP": t.TRP, "TRAS": t.TRAS, "TRC": t.TRC,
		"TCCD": t.TCCD, "TRRD": t.TRRD, "TFAW": t.TFAW, "TWR": t.TWR,
		"TWTR": t.TWTR, "TRTP": t.TRTP, "TRTW": t.TRTW, "CL": t.CL,
		"CWL": t.CWL, "TRFCab": t.TRFCab, "TREFI": t.TREFI,
	}
	for name, v := range nonNeg {
		if v < 0 {
			return fmt.Errorf("%w: timing %s must be non-negative, got %d", ErrConfig, name, v)
		}
	}
	if t.TCCD < 1 {
		return fmt.Errorf("%w: TCCD must be >= 1 burst cycle, got %d", ErrConfig, t.TCCD)
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("%w: TRC (%d) < TRAS+TRP (%d)", ErrConfig, t.TRC, t.TRAS+t.TRP)
	}
	return nil
}

// Seconds converts a cycle count to seconds.
func (t Timing) Seconds(cycles int64) float64 {
	return float64(cycles) * t.CycleNS * 1e-9
}

// Cycles converts a duration in nanoseconds to (rounded-up) burst cycles.
func (t Timing) Cycles(ns float64) int {
	if ns <= 0 {
		return 0
	}
	c := int(ns / t.CycleNS)
	if float64(c)*t.CycleNS < ns {
		c++
	}
	return c
}

// timingFromNS builds a Timing from nanosecond-valued constraints, rounding
// each up to whole burst cycles.
func timingFromNS(cycleNS float64, p nsParams) Timing {
	t := Timing{CycleNS: cycleNS}
	t.TRCD = t.Cycles(p.tRCD)
	t.TRP = t.Cycles(p.tRP)
	t.TRAS = t.Cycles(p.tRAS)
	t.TRC = t.Cycles(p.tRC)
	if t.TRC < t.TRAS+t.TRP {
		t.TRC = t.TRAS + t.TRP
	}
	t.TCCD = t.Cycles(p.tCCD)
	if t.TCCD < 1 {
		t.TCCD = 1
	}
	t.TRRD = t.Cycles(p.tRRD)
	t.TFAW = t.Cycles(p.tFAW)
	t.TWR = t.Cycles(p.tWR)
	t.TWTR = t.Cycles(p.tWTR)
	t.TRTP = t.Cycles(p.tRTP)
	t.TRTW = t.Cycles(p.tRTW)
	t.CL = t.Cycles(p.cl)
	t.CWL = t.Cycles(p.cwl)
	t.TRFCab = t.Cycles(p.tRFCab)
	t.TREFI = t.Cycles(p.tREFI)
	return t
}

// nsParams carries nanosecond-valued timing constraints used to build
// Timing presets.
type nsParams struct {
	tRCD, tRP, tRAS, tRC   float64
	tCCD, tRRD, tFAW       float64
	tWR, tWTR, tRTP, tRTW  float64
	cl, cwl, tRFCab, tREFI float64
}

// lpddr5NS holds LPDDR5-class core timing in nanoseconds (JESD209-5,
// typical speed-bin values).
var lpddr5NS = nsParams{
	tRCD: 18, tRP: 18, tRAS: 42, tRC: 60,
	tCCD: 0, // seamless at burst granularity
	tRRD: 5, tFAW: 20,
	tWR: 34, tWTR: 10, tRTP: 7.5, tRTW: 2.5,
	cl: 17, cwl: 9, tRFCab: 280, tREFI: 3906,
}

// hbm2NS holds HBM2-class core timing in nanoseconds.
var hbm2NS = nsParams{
	tRCD: 14, tRP: 14, tRAS: 33, tRC: 47,
	tCCD: 0,
	tRRD: 4, tFAW: 16,
	tWR: 16, tWTR: 8, tRTP: 5, tRTW: 2,
	cl: 14, cwl: 7, tRFCab: 260, tREFI: 3900,
}
