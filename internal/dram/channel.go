package dram

import (
	"fmt"

	"facil/internal/obs"
)

// ChannelStats aggregates per-channel scheduler statistics.
//
// Counters follow merge-on-join semantics: each Channel owns its counters
// single-threaded (a Channel is single-owner, never shared between
// goroutines), and cross-channel or cross-simulation aggregation happens
// by merging snapshots after the owning simulation finishes. Snapshots
// are plain values, so merging never races with a running scheduler.
//
// Every counter — including Refreshes — is folded into the snapshot at
// command-apply time, so Stats() is a pure read: repeated snapshots of
// the same channel are identical, and merging two snapshots taken at
// different times can never double-count a refresh.
type ChannelStats struct {
	Reads       int64
	Writes      int64
	Activations int64
	RowHits     int64
	RowMisses   int64
	Refreshes   int64
	// DataBusCycles counts cycles the data bus carried a burst.
	DataBusCycles int64
	// BadMapIDs counts requests that reached this channel through the
	// MC frontend's degrade-to-conventional path after failing MapID
	// validation (see mc.Frontend.SetDegradeOnBadMapID) — they are
	// served, but under the conventional mapping, so their PIM row
	// locality is gone.
	BadMapIDs int64
	// LastDone is the completion cycle of the last finished request.
	LastDone int64
}

// Merge folds another snapshot into s: counters add, LastDone takes the
// later completion cycle. This is the join step of the merge-on-join
// contract — call it only on snapshots of finished (or paused) channels.
func (s *ChannelStats) Merge(o ChannelStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Activations += o.Activations
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.Refreshes += o.Refreshes
	s.DataBusCycles += o.DataBusCycles
	s.BadMapIDs += o.BadMapIDs
	if o.LastDone > s.LastDone {
		s.LastDone = o.LastDone
	}
}

// noSlot is the nil value of slot-pool indexes.
const noSlot = int32(-1)

// slot is one queued request inside the channel's slot pool. Queued
// requests live in a reusable array and are linked into two intrusive
// lists by index: the queue-order list (every live request, FCFS order)
// and the per-bank visible list (requests inside the FR-FCFS window,
// grouped by bank, FCFS order). Freed slots are chained through next.
type slot struct {
	req Request
	// user, when non-nil, is the caller's Request struct; its Done field
	// is written back on completion (pointer-Enqueue compatibility).
	user *Request
	// activated is set once the scheduler issued an ACT on behalf of
	// this request; used to classify row hits vs misses.
	activated bool
	// ready marks the request as counted in readyCount (Arrival <= now).
	ready bool
	// gen is bumped on every free, invalidating stale arrival-heap
	// entries that still point at this slot.
	gen uint32
	// pos is the global enqueue sequence number — the FCFS tie-breaker
	// (monotone with the reference scheduler's queue index).
	pos uint64

	next, prev   int32 // queue-order list links
	bnext, bprev int32 // per-bank visible list links
}

// futureArrival is one queued request whose arrival is still in the
// future, tracked in Channel.future (a min-heap on arrival).
type futureArrival struct {
	arrival int64
	slot    int32
	gen     uint32
}

// Channel is a single-channel DRAM command scheduler implementing
// first-ready, first-come-first-served (FR-FCFS) scheduling with an
// open-row policy, bank/rank timing constraints, data-bus contention,
// read/write turnaround and periodic all-bank refresh.
//
// The scheduler's hot path is allocation-free in steady state: queued
// requests live in a reusable slot pool, FR-FCFS candidate selection
// walks per-bank intrusive lists (only banks with visible work), request
// completion unlinks in O(1) instead of compacting a slice, and the
// ready/arrival bookkeeping behind PendingReady and idle jumps is
// tracked incrementally instead of rescanned. The command schedule is
// bit-identical to the retained ReferenceChannel (see refsched.go and
// the differential tests pinning the equivalence).
//
// A Channel is not safe for concurrent use.
type Channel struct {
	spec  *Spec
	t     *Timing
	ranks []rank

	// Slot pool and queue-order list.
	slots    []slot
	freeHead int32
	head     int32
	tail     int32
	count    int
	seq      uint64

	// Visible-window state: the first min(count, window) queue entries
	// are "visible" to FR-FCFS. Visibility only ever extends forward
	// (enqueue fills a non-full window; completion slides it), except
	// for SetWindow, which rebuilds the boundary.
	visTail  int32
	visCount int

	// Per-bank visible lists indexed rank*BanksPerRank+bank, plus the
	// dense set of banks that currently have visible work.
	bankHead    []int32
	bankTail    []int32
	bankLen     []int32
	activeBanks []int32
	bankPos     []int32 // bank -> index into activeBanks, -1 if absent

	// Arrival tracking: readyCount counts live requests with
	// Arrival <= now; future holds the rest, ordered by arrival.
	readyCount int
	future     futureHeap

	// now is the cycle of the most recently issued command.
	now int64
	// cmdBusFree is the first cycle the command bus can take another
	// column (data) command. Row commands (ACT/PRE) use rowCmdFree:
	// at burst granularity one data burst spans several command-clock
	// slots, so row commands interleave freely with the data stream.
	cmdBusFree int64
	// rowCmdFree3 tracks row-command (ACT/PRE) slot occupancy in
	// third-cycles: the CA bus carries several command slots per data
	// burst (LPDDR5 issues commands at CK rate while a burst spans
	// four CK), so up to rowCmdSlots row commands may issue per burst
	// cycle.
	rowCmdFree3 int64
	// dataBusFree is the first cycle the data bus is available.
	dataBusFree int64
	// nextRead / nextWrite model channel-level read/write turnaround.
	nextRead  int64
	nextWrite int64
	// nextMAC holds per-rank earliest next all-bank MAC issue cycles.
	nextMAC []int64

	window         int
	refreshEnabled bool
	rowPolicy      RowPolicy
	// dualRowBuffer redirects all-bank (PIM) commands to shadow bank
	// state (see SetDualRowBuffer).
	dualRowBuffer bool
	shadow        []rank

	stats ChannelStats

	// tr, when non-nil, receives sampled counter events (row hits/
	// misses, reads/writes, activations) every traceSampleEvery column
	// commands plus an instant per refresh, on the tracePID track with
	// cycle timestamps scaled by traceUSPerCycle.
	tr             *obs.Tracer
	tracePID       int64
	traceUSPerCyc  float64
	colSinceSample int
}

// traceSampleEvery is the counter sampling stride in column commands: a
// sample every 64 bursts keeps trace volume ~1.5% of request volume
// while still resolving row-locality phase changes.
const traceSampleEvery = 64

// RowPolicy selects what happens to a row after a column access.
type RowPolicy int

const (
	// OpenRow keeps rows open until a conflict or refresh closes them
	// (page-open policy) — best for locality-rich streams.
	OpenRow RowPolicy = iota
	// CloseRow auto-precharges after a column access unless another
	// visible request still wants the open row (RDA/WRA-style) — best
	// for random traffic, where it hides precharge latency.
	CloseRow
)

// DefaultWindow is the FR-FCFS reorder window (visible queue depth).
const DefaultWindow = 32

// rowCmdSlots is the number of row-command (ACT/PRE) slots available per
// burst cycle on the command bus.
const rowCmdSlots = 3

// NewChannel builds a scheduler for one channel of the given spec.
func NewChannel(spec *Spec) *Channel {
	c := &Channel{
		spec:           spec,
		t:              &spec.Timing,
		window:         DefaultWindow,
		refreshEnabled: true,
		freeHead:       noSlot,
		head:           noSlot,
		tail:           noSlot,
		visTail:        noSlot,
	}
	c.ranks = make([]rank, spec.Geometry.RanksPerChannel)
	c.nextMAC = make([]int64, spec.Geometry.RanksPerChannel)
	for i := range c.ranks {
		c.ranks[i] = newRank(spec.Geometry.BanksPerRank, spec.Timing.TREFI)
	}
	nb := spec.Geometry.RanksPerChannel * spec.Geometry.BanksPerRank
	c.bankHead = make([]int32, nb)
	c.bankTail = make([]int32, nb)
	c.bankLen = make([]int32, nb)
	c.bankPos = make([]int32, nb)
	for i := 0; i < nb; i++ {
		c.bankHead[i] = noSlot
		c.bankTail[i] = noSlot
		c.bankPos[i] = -1
	}
	c.activeBanks = make([]int32, 0, nb)
	return c
}

// SetRefreshEnabled toggles periodic refresh (enabled by default).
func (c *Channel) SetRefreshEnabled(v bool) { c.refreshEnabled = v }

// SetRowPolicy selects the row-buffer management policy (OpenRow default).
func (c *Channel) SetRowPolicy(p RowPolicy) { c.rowPolicy = p }

// SetWindow sets the FR-FCFS reorder window; w < 1 means strict FCFS.
// The visible-window boundary is rebuilt, so SetWindow may be called with
// requests already queued.
func (c *Channel) SetWindow(w int) {
	if w < 1 {
		w = 1
	}
	c.window = w
	for c.visCount > w {
		c.hideVisTail()
	}
	for c.visCount < w {
		cand := c.firstInvisible()
		if cand == noSlot {
			break
		}
		c.makeVisible(cand)
	}
}

// SetTracer attaches an observability tracer to the scheduler: counter
// samples (row hits/misses, reads, writes, activations) are emitted on
// the pid track every traceSampleEvery column commands, and each
// all-bank refresh leaves an instant marker. usPerCycle converts
// scheduler cycles to trace microseconds (Timing.Seconds(1)*1e6). A nil
// tracer detaches; the disabled cost is one pointer test per command.
func (c *Channel) SetTracer(tr *obs.Tracer, pid int64, usPerCycle float64) {
	c.tr = tr
	c.tracePID = pid
	c.traceUSPerCyc = usPerCycle
	c.colSinceSample = 0
}

// traceCounters emits one sample of every scheduler counter at cycle at.
func (c *Channel) traceCounters(at int64) {
	ts := float64(at) * c.traceUSPerCyc
	c.tr.Counter(c.tracePID, "row hits", ts, float64(c.stats.RowHits))
	c.tr.Counter(c.tracePID, "row misses", ts, float64(c.stats.RowMisses))
	c.tr.Counter(c.tracePID, "reads", ts, float64(c.stats.Reads))
	c.tr.Counter(c.tracePID, "writes", ts, float64(c.stats.Writes))
	c.tr.Counter(c.tracePID, "activations", ts, float64(c.stats.Activations))
}

// Now returns the cycle of the most recently issued command.
func (c *Channel) Now() int64 { return c.now }

// NoteBadMapID records one degraded request: the MC frontend caught an
// invalid MapID and routed the access here under the conventional
// mapping instead of rejecting it.
func (c *Channel) NoteBadMapID() { c.stats.BadMapIDs++ }

// Stats returns a snapshot of the channel statistics. The snapshot is a
// pure copy: all counters (including refreshes) are folded into it at
// command-apply time, so calling Stats repeatedly — or merging snapshots
// taken at different times with Merge — never double-counts.
func (c *Channel) Stats() ChannelStats { return c.stats }

// chanLocalValid reports whether the channel-local coordinates of a are
// inside the geometry (the channel index is routed by the controller and
// not re-checked here).
func (a Addr) chanLocalValid(g Geometry) bool {
	return a.Rank >= 0 && a.Rank < g.RanksPerChannel &&
		a.Bank >= 0 && a.Bank < g.BanksPerRank &&
		a.Row >= 0 && a.Row < g.Rows &&
		a.Column >= 0 && a.Column < g.ColumnsPerRow()
}

// addrRangeError builds the enqueue rejection error for an address.
func addrRangeError(a Addr) error {
	return fmt.Errorf("dram: request address %v outside geometry", a)
}

// Enqueue adds a request to the channel queue. Requests must target this
// channel's rank/bank/row space; the channel index in the address is not
// re-checked. The request's Done field is written back on completion.
func (c *Channel) Enqueue(r *Request) error {
	if !r.Addr.chanLocalValid(c.spec.Geometry) {
		return addrRangeError(r.Addr)
	}
	c.push(*r, r)
	return nil
}

// EnqueueValue adds a request by value: the scheduler keeps its own copy
// and does not report the completion cycle back to the caller (it still
// lands in Stats().LastDone). This is the allocation-free enqueue path
// for streaming producers that only need aggregate results.
func (c *Channel) EnqueueValue(r Request) error {
	if !r.Addr.chanLocalValid(c.spec.Geometry) {
		return addrRangeError(r.Addr)
	}
	c.push(r, nil)
	return nil
}

// Pending returns the number of queued requests.
func (c *Channel) Pending() int { return c.count }

// PendingReady returns the number of queued requests that have arrived by
// the current clock and can therefore be scheduled without advancing time
// to a future arrival. Co-schedulers use it to interleave SoC requests
// with PIM work. The count is tracked incrementally (O(1) here).
func (c *Channel) PendingReady() int { return c.readyCount }

// bankIndex returns the per-channel dense bank index of a.
func (c *Channel) bankIndex(a Addr) int32 {
	return int32(a.Rank*c.spec.Geometry.BanksPerRank + a.Bank)
}

// allocSlot returns a free slot index, growing the pool if needed.
func (c *Channel) allocSlot() int32 {
	if s := c.freeHead; s != noSlot {
		c.freeHead = c.slots[s].next
		return s
	}
	c.slots = append(c.slots, slot{})
	return int32(len(c.slots) - 1)
}

// push appends one request to the queue tail.
func (c *Channel) push(r Request, user *Request) {
	s := c.allocSlot()
	sl := &c.slots[s]
	sl.req = r
	sl.user = user
	sl.activated = false
	sl.ready = false
	sl.pos = c.seq
	c.seq++
	sl.next, sl.prev = noSlot, noSlot
	sl.bnext, sl.bprev = noSlot, noSlot
	if c.tail == noSlot {
		c.head, c.tail = s, s
	} else {
		c.slots[c.tail].next = s
		sl.prev = c.tail
		c.tail = s
	}
	c.count++
	if c.visCount < c.window {
		c.makeVisible(s)
	}
	if r.Arrival <= c.now {
		sl.ready = true
		c.readyCount++
	} else {
		c.future.push(futureArrival{arrival: r.Arrival, slot: s, gen: sl.gen})
	}
}

// firstInvisible returns the first queue entry beyond the visible window
// (noSlot if the window covers the whole queue).
func (c *Channel) firstInvisible() int32 {
	if c.visTail == noSlot {
		return c.head
	}
	return c.slots[c.visTail].next
}

// makeVisible extends the visible window by one entry: s must be the
// first invisible queue entry. It is appended to its bank's visible list
// (entries become visible in FCFS order, so appending keeps the list
// sorted by pos).
func (c *Channel) makeVisible(s int32) {
	sl := &c.slots[s]
	b := c.bankIndex(sl.req.Addr)
	if t := c.bankTail[b]; t == noSlot {
		c.bankHead[b], c.bankTail[b] = s, s
		c.bankPos[b] = int32(len(c.activeBanks))
		c.activeBanks = append(c.activeBanks, b)
	} else {
		c.slots[t].bnext = s
		sl.bprev = t
		c.bankTail[b] = s
	}
	c.bankLen[b]++
	c.visTail = s
	c.visCount++
}

// bankUnlink removes a visible entry from its bank list, retiring the
// bank from the active set when its last visible entry leaves.
func (c *Channel) bankUnlink(s int32) {
	sl := &c.slots[s]
	b := c.bankIndex(sl.req.Addr)
	if sl.bprev != noSlot {
		c.slots[sl.bprev].bnext = sl.bnext
	} else {
		c.bankHead[b] = sl.bnext
	}
	if sl.bnext != noSlot {
		c.slots[sl.bnext].bprev = sl.bprev
	} else {
		c.bankTail[b] = sl.bprev
	}
	sl.bnext, sl.bprev = noSlot, noSlot
	c.bankLen[b]--
	if c.bankLen[b] == 0 {
		i := c.bankPos[b]
		last := c.activeBanks[len(c.activeBanks)-1]
		c.activeBanks[i] = last
		c.bankPos[last] = i
		c.activeBanks = c.activeBanks[:len(c.activeBanks)-1]
		c.bankPos[b] = -1
	}
}

// hideVisTail shrinks the visible window by one entry (SetWindow only).
func (c *Channel) hideVisTail() {
	s := c.visTail
	c.bankUnlink(s)
	c.visTail = c.slots[s].prev
	c.visCount--
}

// remove completes and frees a visible queue entry in O(1), sliding the
// visible window forward over the next invisible entry (if any).
func (c *Channel) remove(s int32) {
	sl := &c.slots[s]
	if sl.ready {
		c.readyCount--
	}
	c.bankUnlink(s)
	if c.visTail == s {
		c.visTail = sl.prev
	}
	if sl.prev != noSlot {
		c.slots[sl.prev].next = sl.next
	} else {
		c.head = sl.next
	}
	if sl.next != noSlot {
		c.slots[sl.next].prev = sl.prev
	} else {
		c.tail = sl.prev
	}
	c.count--
	c.visCount--
	if c.visCount < c.window {
		if cand := c.firstInvisible(); cand != noSlot {
			c.makeVisible(cand)
		}
	}
	sl.user = nil
	sl.gen++
	sl.next = c.freeHead
	c.freeHead = s
}

// advanceNow moves the channel clock forward to cycle t, promoting
// future arrivals that have now been reached into the ready count. All
// clock advances funnel through here so PendingReady stays exact.
func (c *Channel) advanceNow(t int64) {
	if t <= c.now {
		return
	}
	c.now = t
	for len(c.future) > 0 && c.future[0].arrival <= t {
		fa := c.future.pop()
		sl := &c.slots[fa.slot]
		// A stale heap entry (slot since completed and reused) is
		// recognized by its generation stamp and dropped.
		if sl.gen == fa.gen && !sl.ready {
			sl.ready = true
			c.readyCount++
		}
	}
}

// candidate is one issuable command considered by the scheduler.
type candidate struct {
	kind     CommandKind
	slot     int32
	pos      uint64
	earliest int64
}

// better reports whether (e, pos) beats cand under the FR-FCFS total
// order: earlier issue cycle first, then FCFS position.
func (cand *candidate) better(e int64, pos uint64) bool {
	return e < cand.earliest || (e == cand.earliest && pos < cand.pos)
}

// Drain runs the scheduler until the queue is empty and returns the cycle
// at which the last request's data burst completed.
func (c *Channel) Drain() int64 {
	for c.count > 0 {
		c.step()
	}
	return c.stats.LastDone
}

// DrainUpTo runs until at most n requests remain (used by streaming
// producers to bound queue growth).
func (c *Channel) DrainUpTo(n int) {
	for c.count > n {
		c.step()
	}
}

// StepOne issues exactly one command (or performs one refresh/idle jump)
// from the request queue. It exposes the scheduler's inner step for
// co-scheduling drivers that interleave queue traffic with all-bank ops.
func (c *Channel) StepOne() {
	c.step()
}

// step issues exactly one command (or performs one refresh).
func (c *Channel) step() {
	if c.count == 0 {
		return
	}
	if c.refreshEnabled {
		for ri := range c.ranks {
			if c.ranks[ri].refreshDue(c.now) {
				c.ranks[ri].applyRefresh(c.now, c.t)
				c.stats.Refreshes++
				if c.tr != nil {
					c.tr.InstantArg(c.tracePID, 0, "refresh",
						float64(c.now)*c.traceUSPerCyc, "rank", float64(ri))
				}
			}
		}
	}

	best, ok := c.pickCommand()
	if !ok {
		// Nothing issuable: every queued request is still in the
		// future. The earliest pending arrival is the heap minimum —
		// tracked incrementally, no queue rescan.
		if len(c.future) > 0 {
			c.advanceNow(c.future[0].arrival)
		}
		return
	}
	c.issue(best)
}

// pickCommand selects the next command FR-FCFS style. It returns false if
// no request inside the window has arrived yet.
//
// The scheduler tracks the best column (data) command and the best
// preparatory command (ACT/PRE) separately. A preparatory command is
// issued ahead of a ready column command only when doing so does not
// delay it — modeling the command bus issuing row and column commands
// for different banks in parallel.
//
// Candidate selection walks only banks with visible work (the per-bank
// lists), hoisting the bank- and channel-level earliest-issue floors out
// of the per-request loop. The winner is the lexicographic minimum over
// (earliest, FCFS position), which is iteration-order independent, so
// walking bank-by-bank selects exactly the command the reference
// scheduler's window-order scan selects.
func (c *Channel) pickCommand() (candidate, bool) {
	var bestCol, bestPrep candidate
	haveCol, havePrep := false, false

	banksPerRank := c.spec.Geometry.BanksPerRank
	rowCmdBase := maxi64(c.rowCmdEarliest(), c.now)
	rdBase := c.columnEarliest(CmdRD)
	wrBase := c.columnEarliest(CmdWR)

	for _, bi := range c.activeBanks {
		rk := &c.ranks[int(bi)/banksPerRank]
		b := &rk.banks[int(bi)%banksPerRank]
		head := c.bankHead[bi]

		if b.state == bankActive {
			open := b.openRow
			// One scan: requests on the open row are column (row hit)
			// candidates; the rest want a precharge, which is legal
			// only if no visible request still targets the open row
			// (the FR part — an open row with pending hits must not
			// be closed).
			rdEarliest := maxi64(b.nextRD, rdBase)
			wrEarliest := maxi64(b.nextWR, wrBase)
			preEarliest := maxi64(b.nextPRE, rowCmdBase)
			var hit, pre candidate
			haveHit, havePre := false, false
			for s := head; s != noSlot; s = c.slots[s].bnext {
				sl := &c.slots[s]
				if sl.req.Addr.Row == open {
					kind, e := CmdRD, rdEarliest
					if sl.req.Write {
						kind, e = CmdWR, wrEarliest
					}
					if sl.req.Arrival > e {
						e = sl.req.Arrival
					}
					if !haveHit || hit.better(e, sl.pos) {
						hit = candidate{kind: kind, slot: s, pos: sl.pos, earliest: e}
						haveHit = true
					}
				} else if !haveHit {
					// Collecting a PRE candidate is pointless once a
					// hit is seen, but hits later in the list must
					// still suppress it — resolved after the scan.
					e := preEarliest
					if sl.req.Arrival > e {
						e = sl.req.Arrival
					}
					if !havePre || pre.better(e, sl.pos) {
						pre = candidate{kind: CmdPRE, slot: s, pos: sl.pos, earliest: e}
						havePre = true
					}
				}
			}
			if haveHit {
				if !haveCol || bestCol.better(hit.earliest, hit.pos) {
					bestCol = hit
					haveCol = true
				}
			} else if havePre {
				if !havePrep || bestPrep.better(pre.earliest, pre.pos) {
					bestPrep = pre
					havePrep = true
				}
			}
			continue
		}

		// Idle bank: every visible request is an ACT candidate; only
		// the arrival varies, so the floors hoist out of the loop.
		actBase := maxi64(maxi64(b.nextACT, rk.earliestACT()), rowCmdBase)
		var act candidate
		haveAct := false
		for s := head; s != noSlot; s = c.slots[s].bnext {
			sl := &c.slots[s]
			e := actBase
			if sl.req.Arrival > e {
				e = sl.req.Arrival
			}
			if !haveAct || act.better(e, sl.pos) {
				act = candidate{kind: CmdACT, slot: s, pos: sl.pos, earliest: e}
				haveAct = true
			}
		}
		if haveAct {
			if !havePrep || bestPrep.better(act.earliest, act.pos) {
				bestPrep = act
				havePrep = true
			}
		}
	}

	switch {
	case haveCol && havePrep:
		// Row and column commands ride different command slots; issue
		// the preparatory command as long as it is not later than the
		// best column command.
		if bestPrep.earliest <= bestCol.earliest {
			return bestPrep, true
		}
		return bestCol, true
	case haveCol:
		return bestCol, true
	case havePrep:
		return bestPrep, true
	default:
		return candidate{}, false
	}
}

// rowStillWanted reports whether any visible request targets row a.Row in
// a's bank — an O(length of that bank's visible list) walk instead of an
// O(window) queue rescan.
func (c *Channel) rowStillWanted(a Addr) bool {
	for s := c.bankHead[c.bankIndex(a)]; s != noSlot; s = c.slots[s].bnext {
		if c.slots[s].req.Addr.Row == a.Row {
			return true
		}
	}
	return false
}

// rowCmdEarliest returns the first cycle with a free row-command slot.
func (c *Channel) rowCmdEarliest() int64 {
	return c.rowCmdFree3 / rowCmdSlots
}

// consumeRowCmdSlot books one ACT/PRE slot at cycle `at`.
func (c *Channel) consumeRowCmdSlot(at int64) {
	if v := at * rowCmdSlots; c.rowCmdFree3 < v {
		c.rowCmdFree3 = v
	}
	c.rowCmdFree3++
}

// columnEarliest combines channel-level constraints for a column command.
func (c *Channel) columnEarliest(kind CommandKind) int64 {
	e := maxi64(c.cmdBusFree, c.dataBusFree)
	switch kind {
	case CmdRD:
		e = maxi64(e, c.nextRead)
	case CmdWR:
		e = maxi64(e, c.nextWrite)
	}
	return e
}

// issue applies the chosen command.
func (c *Channel) issue(cand candidate) {
	sl := &c.slots[cand.slot]
	r := &sl.req
	rk := &c.ranks[r.Addr.Rank]
	b := &rk.banks[r.Addr.Bank]
	at := cand.earliest

	switch cand.kind {
	case CmdPRE:
		b.apply(CmdPRE, 0, at, c.t)
		c.consumeRowCmdSlot(at)
	case CmdACT:
		b.apply(CmdACT, r.Addr.Row, at, c.t)
		rk.recordACT(at, c.t)
		sl.activated = true
		c.stats.Activations++
		c.consumeRowCmdSlot(at)
	case CmdRD, CmdWR:
		b.apply(cand.kind, r.Addr.Row, at, c.t)
		c.dataBusFree = at + int64(c.t.TCCD)
		c.stats.DataBusCycles += int64(c.t.TCCD)
		var done int64
		if cand.kind == CmdRD {
			c.stats.Reads++
			done = at + int64(c.t.CL) + int64(c.t.TCCD)
			c.nextWrite = maxi64(c.nextWrite, at+int64(c.t.TCCD)+int64(c.t.TRTW))
		} else {
			c.stats.Writes++
			done = at + int64(c.t.CWL) + int64(c.t.TCCD)
			c.nextRead = maxi64(c.nextRead, at+int64(c.t.TCCD)+int64(c.t.TWTR))
		}
		if sl.activated {
			c.stats.RowMisses++
		} else {
			c.stats.RowHits++
		}
		if c.tr != nil {
			c.colSinceSample++
			if c.colSinceSample >= traceSampleEvery {
				c.colSinceSample = 0
				c.traceCounters(at)
			}
		}
		if sl.user != nil {
			sl.user.Done = done
		}
		if done > c.stats.LastDone {
			c.stats.LastDone = done
		}
		a := r.Addr
		c.remove(cand.slot)
		c.cmdBusFree = at + 1
		if c.rowPolicy == CloseRow && !c.rowStillWanted(a) {
			// Auto-precharge (RDA/WRA): close as soon as the bank's
			// timing constraints allow, without a command-bus slot.
			b.apply(CmdPRE, 0, b.nextPRE, c.t)
		}
	}
	c.advanceNow(at)
}

// futureHeap is a binary min-heap of pending arrivals, ordered by arrival
// cycle. It is hand-rolled (instead of container/heap) so push and pop
// stay allocation- and interface-free on the scheduler hot path.
type futureHeap []futureArrival

// push adds one entry, sifting it up.
func (h *futureHeap) push(fa futureArrival) {
	*h = append(*h, fa)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].arrival <= s[i].arrival {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the minimum entry. The caller must ensure the
// heap is non-empty.
func (h *futureHeap) pop() futureArrival {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].arrival < s[min].arrival {
			min = l
		}
		if r < n && s[r].arrival < s[min].arrival {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
