package dram

import (
	"fmt"

	"facil/internal/obs"
)

// ChannelStats aggregates per-channel scheduler statistics.
//
// Counters follow merge-on-join semantics: each Channel owns its counters
// single-threaded (a Channel is single-owner, never shared between
// goroutines), and cross-channel or cross-simulation aggregation happens
// by merging snapshots after the owning simulation finishes. Snapshots
// are plain values, so merging never races with a running scheduler.
type ChannelStats struct {
	Reads       int64
	Writes      int64
	Activations int64
	RowHits     int64
	RowMisses   int64
	Refreshes   int64
	// DataBusCycles counts cycles the data bus carried a burst.
	DataBusCycles int64
	// BadMapIDs counts requests that reached this channel through the
	// MC frontend's degrade-to-conventional path after failing MapID
	// validation (see mc.Frontend.SetDegradeOnBadMapID) — they are
	// served, but under the conventional mapping, so their PIM row
	// locality is gone.
	BadMapIDs int64
	// LastDone is the completion cycle of the last finished request.
	LastDone int64
}

// Merge folds another snapshot into s: counters add, LastDone takes the
// later completion cycle. This is the join step of the merge-on-join
// contract — call it only on snapshots of finished (or paused) channels.
func (s *ChannelStats) Merge(o ChannelStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Activations += o.Activations
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.Refreshes += o.Refreshes
	s.DataBusCycles += o.DataBusCycles
	s.BadMapIDs += o.BadMapIDs
	if o.LastDone > s.LastDone {
		s.LastDone = o.LastDone
	}
}

// pendingReq wraps a Request with scheduler-internal bookkeeping.
type pendingReq struct {
	req *Request
	// activated is set once the scheduler issued an ACT on behalf of
	// this request; used to classify row hits vs misses.
	activated bool
}

// Channel is a single-channel DRAM command scheduler implementing
// first-ready, first-come-first-served (FR-FCFS) scheduling with an
// open-row policy, bank/rank timing constraints, data-bus contention,
// read/write turnaround and periodic all-bank refresh.
//
// A Channel is not safe for concurrent use.
type Channel struct {
	spec  *Spec
	t     *Timing
	ranks []rank

	queue []pendingReq

	// now is the cycle of the most recently issued command.
	now int64
	// cmdBusFree is the first cycle the command bus can take another
	// column (data) command. Row commands (ACT/PRE) use rowCmdFree:
	// at burst granularity one data burst spans several command-clock
	// slots, so row commands interleave freely with the data stream.
	cmdBusFree int64
	// rowCmdFree3 tracks row-command (ACT/PRE) slot occupancy in
	// third-cycles: the CA bus carries several command slots per data
	// burst (LPDDR5 issues commands at CK rate while a burst spans
	// four CK), so up to rowCmdSlots row commands may issue per burst
	// cycle.
	rowCmdFree3 int64
	// dataBusFree is the first cycle the data bus is available.
	dataBusFree int64
	// nextRead / nextWrite model channel-level read/write turnaround.
	nextRead  int64
	nextWrite int64
	// nextMAC holds per-rank earliest next all-bank MAC issue cycles.
	nextMAC []int64

	window         int
	refreshEnabled bool
	rowPolicy      RowPolicy
	// dualRowBuffer redirects all-bank (PIM) commands to shadow bank
	// state (see SetDualRowBuffer).
	dualRowBuffer bool
	shadow        []rank

	stats ChannelStats

	// tr, when non-nil, receives sampled counter events (row hits/
	// misses, reads/writes, activations) every traceSampleEvery column
	// commands plus an instant per refresh, on the tracePID track with
	// cycle timestamps scaled by traceUSPerCycle.
	tr             *obs.Tracer
	tracePID       int64
	traceUSPerCyc  float64
	colSinceSample int
}

// traceSampleEvery is the counter sampling stride in column commands: a
// sample every 64 bursts keeps trace volume ~1.5% of request volume
// while still resolving row-locality phase changes.
const traceSampleEvery = 64

// RowPolicy selects what happens to a row after a column access.
type RowPolicy int

const (
	// OpenRow keeps rows open until a conflict or refresh closes them
	// (page-open policy) — best for locality-rich streams.
	OpenRow RowPolicy = iota
	// CloseRow auto-precharges after a column access unless another
	// visible request still wants the open row (RDA/WRA-style) — best
	// for random traffic, where it hides precharge latency.
	CloseRow
)

// DefaultWindow is the FR-FCFS reorder window (visible queue depth).
const DefaultWindow = 32

// rowCmdSlots is the number of row-command (ACT/PRE) slots available per
// burst cycle on the command bus.
const rowCmdSlots = 3

// NewChannel builds a scheduler for one channel of the given spec.
func NewChannel(spec *Spec) *Channel {
	c := &Channel{
		spec:           spec,
		t:              &spec.Timing,
		window:         DefaultWindow,
		refreshEnabled: true,
	}
	c.ranks = make([]rank, spec.Geometry.RanksPerChannel)
	c.nextMAC = make([]int64, spec.Geometry.RanksPerChannel)
	for i := range c.ranks {
		c.ranks[i] = newRank(spec.Geometry.BanksPerRank, spec.Timing.TREFI)
	}
	return c
}

// SetRefreshEnabled toggles periodic refresh (enabled by default).
func (c *Channel) SetRefreshEnabled(v bool) { c.refreshEnabled = v }

// SetRowPolicy selects the row-buffer management policy (OpenRow default).
func (c *Channel) SetRowPolicy(p RowPolicy) { c.rowPolicy = p }

// SetWindow sets the FR-FCFS reorder window; w < 1 means strict FCFS.
func (c *Channel) SetWindow(w int) {
	if w < 1 {
		w = 1
	}
	c.window = w
}

// SetTracer attaches an observability tracer to the scheduler: counter
// samples (row hits/misses, reads, writes, activations) are emitted on
// the pid track every traceSampleEvery column commands, and each
// all-bank refresh leaves an instant marker. usPerCycle converts
// scheduler cycles to trace microseconds (Timing.Seconds(1)*1e6). A nil
// tracer detaches; the disabled cost is one pointer test per command.
func (c *Channel) SetTracer(tr *obs.Tracer, pid int64, usPerCycle float64) {
	c.tr = tr
	c.tracePID = pid
	c.traceUSPerCyc = usPerCycle
	c.colSinceSample = 0
}

// traceCounters emits one sample of every scheduler counter at cycle at.
func (c *Channel) traceCounters(at int64) {
	ts := float64(at) * c.traceUSPerCyc
	c.tr.Counter(c.tracePID, "row hits", ts, float64(c.stats.RowHits))
	c.tr.Counter(c.tracePID, "row misses", ts, float64(c.stats.RowMisses))
	c.tr.Counter(c.tracePID, "reads", ts, float64(c.stats.Reads))
	c.tr.Counter(c.tracePID, "writes", ts, float64(c.stats.Writes))
	c.tr.Counter(c.tracePID, "activations", ts, float64(c.stats.Activations))
}

// Now returns the cycle of the most recently issued command.
func (c *Channel) Now() int64 { return c.now }

// NoteBadMapID records one degraded request: the MC frontend caught an
// invalid MapID and routed the access here under the conventional
// mapping instead of rejecting it.
func (c *Channel) NoteBadMapID() { c.stats.BadMapIDs++ }

// Stats returns a snapshot of the channel statistics.
func (c *Channel) Stats() ChannelStats {
	s := c.stats
	for i := range c.ranks {
		s.Refreshes += c.ranks[i].refreshes
	}
	return s
}

// Enqueue adds a request to the channel queue. Requests must target this
// channel's rank/bank/row space; the channel index in the address is not
// re-checked.
func (c *Channel) Enqueue(r *Request) error {
	g := c.spec.Geometry
	a := r.Addr
	if a.Rank < 0 || a.Rank >= g.RanksPerChannel ||
		a.Bank < 0 || a.Bank >= g.BanksPerRank ||
		a.Row < 0 || a.Row >= g.Rows ||
		a.Column < 0 || a.Column >= g.ColumnsPerRow() {
		return fmt.Errorf("dram: request address %v outside geometry", a)
	}
	c.queue = append(c.queue, pendingReq{req: r})
	return nil
}

// Pending returns the number of queued requests.
func (c *Channel) Pending() int { return len(c.queue) }

// candidate is one issuable command considered by the scheduler.
type candidate struct {
	kind     CommandKind
	queueIdx int
	earliest int64
	// rowHit marks a column command that needed no ACT.
	rowHit bool
}

// Drain runs the scheduler until the queue is empty and returns the cycle
// at which the last request's data burst completed.
func (c *Channel) Drain() int64 {
	for len(c.queue) > 0 {
		c.step()
	}
	return c.stats.LastDone
}

// DrainUpTo runs until at most n requests remain (used by streaming
// producers to bound queue growth).
func (c *Channel) DrainUpTo(n int) {
	for len(c.queue) > n {
		c.step()
	}
}

// PendingReady counts queued requests that have arrived by the current
// clock and can therefore be scheduled without advancing time to a future
// arrival. Co-schedulers use it to interleave SoC requests with PIM work.
func (c *Channel) PendingReady() int {
	n := 0
	for i := range c.queue {
		if c.queue[i].req.Arrival <= c.now {
			n++
		}
	}
	return n
}

// StepOne issues exactly one command (or performs one refresh/idle jump)
// from the request queue. It exposes the scheduler's inner step for
// co-scheduling drivers that interleave queue traffic with all-bank ops.
func (c *Channel) StepOne() {
	c.step()
}

// step issues exactly one command (or performs one refresh).
func (c *Channel) step() {
	if len(c.queue) == 0 {
		return
	}
	if c.refreshEnabled {
		for ri := range c.ranks {
			if c.ranks[ri].refreshDue(c.now) {
				c.ranks[ri].applyRefresh(c.now, c.t)
				if c.tr != nil {
					c.tr.InstantArg(c.tracePID, 0, "refresh",
						float64(c.now)*c.traceUSPerCyc, "rank", float64(ri))
				}
			}
		}
	}

	best, ok := c.pickCommand()
	if !ok {
		// Nothing arrived yet: jump to the first arrival.
		var minArr int64 = -1
		for i := range c.queue {
			if minArr < 0 || c.queue[i].req.Arrival < minArr {
				minArr = c.queue[i].req.Arrival
			}
		}
		if minArr > c.now {
			c.now = minArr
		}
		return
	}
	c.issue(best)
}

// pickCommand selects the next command FR-FCFS style. It returns false if
// no request inside the window has arrived yet.
func (c *Channel) pickCommand() (candidate, bool) {
	g := c.spec.Geometry
	limit := len(c.queue)
	if limit > c.window {
		limit = c.window
	}

	// The scheduler tracks the best column (data) command and the best
	// preparatory command (ACT/PRE) separately. A preparatory command is
	// issued ahead of a ready column command only when doing so does not
	// delay it — modeling the command bus issuing row and column commands
	// for different banks in parallel.
	var bestCol, bestPrep candidate
	haveCol, havePrep := false, false
	consider := func(cand candidate) {
		isCol := cand.kind == CmdRD || cand.kind == CmdWR
		if isCol {
			if !haveCol || cand.earliest < bestCol.earliest ||
				(cand.earliest == bestCol.earliest && cand.queueIdx < bestCol.queueIdx) {
				bestCol = cand
				haveCol = true
			}
			return
		}
		if !havePrep || cand.earliest < bestPrep.earliest ||
			(cand.earliest == bestPrep.earliest && cand.queueIdx < bestPrep.queueIdx) {
			bestPrep = cand
			havePrep = true
		}
	}

	// hitWanted marks banks for which some visible request targets the
	// currently open row; such banks must not be precharged (FR part).
	hitWanted := make(map[int]bool)
	for i := 0; i < limit; i++ {
		r := c.queue[i].req
		b := &c.ranks[r.Addr.Rank].banks[r.Addr.Bank]
		if b.state == bankActive && b.openRow == r.Addr.Row {
			hitWanted[r.Addr.Rank*g.BanksPerRank+r.Addr.Bank] = true
		}
	}

	for i := 0; i < limit; i++ {
		r := c.queue[i].req
		rk := &c.ranks[r.Addr.Rank]
		b := &rk.banks[r.Addr.Bank]
		arr := r.Arrival

		switch {
		case b.state == bankActive && b.openRow == r.Addr.Row:
			kind := r.Kind()
			e, legal := b.earliest(kind, r.Addr.Row)
			if !legal {
				continue
			}
			e = maxi64(e, c.columnEarliest(kind))
			e = maxi64(e, arr)
			consider(candidate{kind: kind, queueIdx: i, earliest: e, rowHit: !c.queue[i].activated})
		case b.state == bankIdle:
			e, legal := b.earliest(CmdACT, r.Addr.Row)
			if !legal {
				continue
			}
			e = maxi64(e, rk.earliestACT())
			e = maxi64(e, c.rowCmdEarliest())
			e = maxi64(e, c.now)
			e = maxi64(e, arr)
			consider(candidate{kind: CmdACT, queueIdx: i, earliest: e})
		default:
			// Conflict: open row differs. Only precharge if no
			// visible request still wants the open row.
			key := r.Addr.Rank*g.BanksPerRank + r.Addr.Bank
			if hitWanted[key] {
				continue
			}
			e, legal := b.earliest(CmdPRE, 0)
			if !legal {
				continue
			}
			e = maxi64(e, c.rowCmdEarliest())
			e = maxi64(e, c.now)
			e = maxi64(e, arr)
			consider(candidate{kind: CmdPRE, queueIdx: i, earliest: e})
		}
	}
	switch {
	case haveCol && havePrep:
		// Row and column commands ride different command slots; issue
		// the preparatory command as long as it is not later than the
		// best column command.
		if bestPrep.earliest <= bestCol.earliest {
			return bestPrep, true
		}
		return bestCol, true
	case haveCol:
		return bestCol, true
	case havePrep:
		return bestPrep, true
	default:
		return candidate{}, false
	}
}

// rowStillWanted reports whether any visible request targets the open row
// of the bank at addr.
func (c *Channel) rowStillWanted(a Addr) bool {
	limit := len(c.queue)
	if limit > c.window {
		limit = c.window
	}
	for i := 0; i < limit; i++ {
		q := c.queue[i].req.Addr
		if q.Rank == a.Rank && q.Bank == a.Bank && q.Row == a.Row {
			return true
		}
	}
	return false
}

// rowCmdEarliest returns the first cycle with a free row-command slot.
func (c *Channel) rowCmdEarliest() int64 {
	return c.rowCmdFree3 / rowCmdSlots
}

// consumeRowCmdSlot books one ACT/PRE slot at cycle `at`.
func (c *Channel) consumeRowCmdSlot(at int64) {
	if v := at * rowCmdSlots; c.rowCmdFree3 < v {
		c.rowCmdFree3 = v
	}
	c.rowCmdFree3++
}

// columnEarliest combines channel-level constraints for a column command.
func (c *Channel) columnEarliest(kind CommandKind) int64 {
	e := maxi64(c.cmdBusFree, c.dataBusFree)
	switch kind {
	case CmdRD:
		e = maxi64(e, c.nextRead)
	case CmdWR:
		e = maxi64(e, c.nextWrite)
	}
	return e
}

// issue applies the chosen command.
func (c *Channel) issue(cand candidate) {
	pr := &c.queue[cand.queueIdx]
	r := pr.req
	rk := &c.ranks[r.Addr.Rank]
	b := &rk.banks[r.Addr.Bank]
	at := cand.earliest

	switch cand.kind {
	case CmdPRE:
		b.apply(CmdPRE, 0, at, c.t)
		c.consumeRowCmdSlot(at)
	case CmdACT:
		b.apply(CmdACT, r.Addr.Row, at, c.t)
		rk.recordACT(at, c.t)
		pr.activated = true
		c.stats.Activations++
		c.consumeRowCmdSlot(at)
	case CmdRD, CmdWR:
		b.apply(cand.kind, r.Addr.Row, at, c.t)
		c.dataBusFree = at + int64(c.t.TCCD)
		c.stats.DataBusCycles += int64(c.t.TCCD)
		var done int64
		if cand.kind == CmdRD {
			c.stats.Reads++
			done = at + int64(c.t.CL) + int64(c.t.TCCD)
			c.nextWrite = maxi64(c.nextWrite, at+int64(c.t.TCCD)+int64(c.t.TRTW))
		} else {
			c.stats.Writes++
			done = at + int64(c.t.CWL) + int64(c.t.TCCD)
			c.nextRead = maxi64(c.nextRead, at+int64(c.t.TCCD)+int64(c.t.TWTR))
		}
		if pr.activated {
			c.stats.RowMisses++
		} else {
			c.stats.RowHits++
		}
		if c.tr != nil {
			c.colSinceSample++
			if c.colSinceSample >= traceSampleEvery {
				c.colSinceSample = 0
				c.traceCounters(at)
			}
		}
		r.Done = done
		if done > c.stats.LastDone {
			c.stats.LastDone = done
		}
		// Remove from queue preserving order.
		c.queue = append(c.queue[:cand.queueIdx], c.queue[cand.queueIdx+1:]...)
		c.cmdBusFree = at + 1
		if c.rowPolicy == CloseRow && !c.rowStillWanted(r.Addr) {
			// Auto-precharge (RDA/WRA): close as soon as the bank's
			// timing constraints allow, without a command-bus slot.
			b.apply(CmdPRE, 0, b.nextPRE, c.t)
		}
	}
	if at > c.now {
		c.now = at
	}
}
