package dram

// Replay feeds a request stream through a fresh controller and returns the
// completion cycle along with controller statistics. Requests are enqueued
// with their stated arrival cycles; the queue is drained incrementally so
// arbitrarily long traces use bounded memory per channel.
func Replay(spec Spec, reqs []*Request) (int64, ChannelStats, error) {
	return replayWindow(spec, reqs, 0)
}

func replayWindow(spec Spec, reqs []*Request, window int) (int64, ChannelStats, error) {
	ctl, err := NewController(spec)
	if err != nil {
		return 0, ChannelStats{}, err
	}
	if window > 0 {
		for i := 0; i < spec.Geometry.Channels; i++ {
			ctl.Channel(i).SetWindow(window)
		}
	}
	const maxQueue = 4096
	for _, r := range reqs {
		if err := ctl.Enqueue(r); err != nil {
			return 0, ChannelStats{}, err
		}
		ch := ctl.channels[r.Addr.Channel]
		if ch.Pending() > maxQueue {
			ch.DrainUpTo(maxQueue / 2)
		}
	}
	done := ctl.Drain()
	stats := ctl.Stats()
	Global.record(stats, done)
	return done, stats, nil
}

// RequestSource is a pull-style request generator: each call fills *r
// with the next request of the stream and returns true, or returns false
// when the stream is exhausted. Sources let arbitrarily long traces
// replay without materializing a request slice — the replay loop reuses
// one Request value for the whole stream.
type RequestSource func(r *Request) bool

// SliceSource adapts a value slice to a RequestSource. The slice is read,
// never written (completion cycles are not reported back), so one slice
// can feed many replays — including concurrent ones — without copying.
func SliceSource(reqs []Request) RequestSource {
	i := 0
	return func(r *Request) bool {
		if i >= len(reqs) {
			return false
		}
		*r = reqs[i]
		i++
		return true
	}
}

// ReplayStream is Replay for a pull source: requests are enqueued by
// value as the source produces them, with the same bounded-queue drain
// policy, so the schedule is identical to materializing the stream and
// calling Replay.
func ReplayStream(spec Spec, src RequestSource) (int64, ChannelStats, error) {
	return replayStreamWindow(spec, src, 0)
}

func replayStreamWindow(spec Spec, src RequestSource, window int) (int64, ChannelStats, error) {
	ctl, err := NewController(spec)
	if err != nil {
		return 0, ChannelStats{}, err
	}
	if window > 0 {
		for i := 0; i < spec.Geometry.Channels; i++ {
			ctl.Channel(i).SetWindow(window)
		}
	}
	const maxQueue = 4096
	var r Request
	for src(&r) {
		if err := ctl.EnqueueValue(r); err != nil {
			return 0, ChannelStats{}, err
		}
		ch := ctl.channels[r.Addr.Channel]
		if ch.Pending() > maxQueue {
			ch.DrainUpTo(maxQueue / 2)
		}
	}
	done := ctl.Drain()
	stats := ctl.Stats()
	Global.record(stats, done)
	return done, stats, nil
}

// StreamResult summarizes a replayed stream.
type StreamResult struct {
	// Cycles is the completion cycle of the last request.
	Cycles int64
	// Seconds is Cycles converted to wall-clock time.
	Seconds float64
	// Bytes is the total data moved.
	Bytes int64
	// BandwidthGBs is Bytes / Seconds in GB/s.
	BandwidthGBs float64
	// RowHitRate is hits / (hits + misses).
	RowHitRate float64
	Stats      ChannelStats
}

// MeasureStream replays reqs on spec and summarizes achieved bandwidth.
func MeasureStream(spec Spec, reqs []*Request) (StreamResult, error) {
	return MeasureStreamWindow(spec, reqs, 0)
}

// MeasureStreamWindow is MeasureStream with an explicit FR-FCFS reorder
// window on every channel (0 keeps the default); used by scheduler
// ablations.
func MeasureStreamWindow(spec Spec, reqs []*Request, window int) (StreamResult, error) {
	cycles, stats, err := replayWindow(spec, reqs, window)
	if err != nil {
		return StreamResult{}, err
	}
	return summarize(spec, cycles, stats), nil
}

// MeasureStreamFunc replays a pull source on spec and summarizes achieved
// bandwidth — MeasureStream without materializing the request slice.
func MeasureStreamFunc(spec Spec, src RequestSource) (StreamResult, error) {
	return MeasureStreamFuncWindow(spec, src, 0)
}

// MeasureStreamFuncWindow is MeasureStreamFunc with an explicit FR-FCFS
// reorder window on every channel (0 keeps the default).
func MeasureStreamFuncWindow(spec Spec, src RequestSource, window int) (StreamResult, error) {
	cycles, stats, err := replayStreamWindow(spec, src, window)
	if err != nil {
		return StreamResult{}, err
	}
	return summarize(spec, cycles, stats), nil
}

func summarize(spec Spec, cycles int64, stats ChannelStats) StreamResult {
	res := StreamResult{
		Cycles: cycles,
		Stats:  stats,
	}
	res.Seconds = spec.Timing.Seconds(cycles)
	res.Bytes = (stats.Reads + stats.Writes) * int64(spec.Geometry.TransferBytes)
	if res.Seconds > 0 {
		res.BandwidthGBs = float64(res.Bytes) / res.Seconds / 1e9
	}
	if hm := stats.RowHits + stats.RowMisses; hm > 0 {
		res.RowHitRate = float64(stats.RowHits) / float64(hm)
	}
	return res
}
