package dram

// Replay feeds a request stream through a fresh controller and returns the
// completion cycle along with controller statistics. Requests are enqueued
// with their stated arrival cycles; the queue is drained incrementally so
// arbitrarily long traces use bounded memory per channel.
func Replay(spec Spec, reqs []*Request) (int64, ChannelStats, error) {
	return replayWindow(spec, reqs, 0)
}

func replayWindow(spec Spec, reqs []*Request, window int) (int64, ChannelStats, error) {
	ctl, err := NewController(spec)
	if err != nil {
		return 0, ChannelStats{}, err
	}
	if window > 0 {
		for i := 0; i < spec.Geometry.Channels; i++ {
			ctl.Channel(i).SetWindow(window)
		}
	}
	const maxQueue = 4096
	for _, r := range reqs {
		if err := ctl.Enqueue(r); err != nil {
			return 0, ChannelStats{}, err
		}
		ch := ctl.channels[r.Addr.Channel]
		if ch.Pending() > maxQueue {
			ch.DrainUpTo(maxQueue / 2)
		}
	}
	done := ctl.Drain()
	stats := ctl.Stats()
	Global.record(stats, done)
	return done, stats, nil
}

// StreamResult summarizes a replayed stream.
type StreamResult struct {
	// Cycles is the completion cycle of the last request.
	Cycles int64
	// Seconds is Cycles converted to wall-clock time.
	Seconds float64
	// Bytes is the total data moved.
	Bytes int64
	// BandwidthGBs is Bytes / Seconds in GB/s.
	BandwidthGBs float64
	// RowHitRate is hits / (hits + misses).
	RowHitRate float64
	Stats      ChannelStats
}

// MeasureStream replays reqs on spec and summarizes achieved bandwidth.
func MeasureStream(spec Spec, reqs []*Request) (StreamResult, error) {
	return MeasureStreamWindow(spec, reqs, 0)
}

// MeasureStreamWindow is MeasureStream with an explicit FR-FCFS reorder
// window on every channel (0 keeps the default); used by scheduler
// ablations.
func MeasureStreamWindow(spec Spec, reqs []*Request, window int) (StreamResult, error) {
	cycles, stats, err := replayWindow(spec, reqs, window)
	if err != nil {
		return StreamResult{}, err
	}
	res := StreamResult{
		Cycles: cycles,
		Stats:  stats,
	}
	res.Seconds = spec.Timing.Seconds(cycles)
	res.Bytes = (stats.Reads + stats.Writes) * int64(spec.Geometry.TransferBytes)
	if res.Seconds > 0 {
		res.BandwidthGBs = float64(res.Bytes) / res.Seconds / 1e9
	}
	if hm := stats.RowHits + stats.RowMisses; hm > 0 {
		res.RowHitRate = float64(stats.RowHits) / float64(hm)
	}
	return res, nil
}
