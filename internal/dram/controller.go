package dram

import (
	"context"
	"fmt"
	"runtime"

	"facil/internal/obs"
	"facil/internal/parallel"
)

// Controller drives all channels of a memory system. Channels are
// independent at the command level (each has its own command/data bus), so
// the controller schedules them separately and reports system-level
// statistics and completion times.
type Controller struct {
	spec     Spec
	channels []*Channel
}

// NewController builds a controller with one scheduler per channel.
func NewController(spec Spec) (*Controller, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctl := &Controller{spec: spec}
	ctl.channels = make([]*Channel, spec.Geometry.Channels)
	for i := range ctl.channels {
		ctl.channels[i] = NewChannel(&ctl.spec)
	}
	return ctl, nil
}

// Spec returns the controller's memory spec.
func (ctl *Controller) Spec() Spec { return ctl.spec }

// Channel returns the scheduler for channel i.
func (ctl *Controller) Channel(i int) *Channel { return ctl.channels[i] }

// SetTracer attaches an observability tracer to every channel, naming
// one trace process per channel at pids [pidBase, pidBase+Channels).
// Cycle timestamps are converted to microseconds with the spec's burst
// clock so DRAM counters align with wall-clock trace tracks.
func (ctl *Controller) SetTracer(tr *obs.Tracer, pidBase int64) {
	usPerCycle := ctl.spec.Timing.Seconds(1) * 1e6
	for i, c := range ctl.channels {
		pid := pidBase + int64(i)
		tr.ProcessName(pid, fmt.Sprintf("%s channel %d", ctl.spec.Name, i))
		c.SetTracer(tr, pid, usPerCycle)
	}
}

// SetRefreshEnabled toggles refresh on every channel.
func (ctl *Controller) SetRefreshEnabled(v bool) {
	for _, c := range ctl.channels {
		c.SetRefreshEnabled(v)
	}
}

// Enqueue routes a request to its channel.
func (ctl *Controller) Enqueue(r *Request) error {
	if r.Addr.Channel < 0 || r.Addr.Channel >= len(ctl.channels) {
		return fmt.Errorf("dram: channel %d out of range", r.Addr.Channel)
	}
	return ctl.channels[r.Addr.Channel].Enqueue(r)
}

// EnqueueValue routes a request by value: the scheduler keeps its own
// copy and does not write the completion cycle back to the caller. This
// is the allocation-free path for streaming producers.
func (ctl *Controller) EnqueueValue(r Request) error {
	if r.Addr.Channel < 0 || r.Addr.Channel >= len(ctl.channels) {
		return fmt.Errorf("dram: channel %d out of range", r.Addr.Channel)
	}
	return ctl.channels[r.Addr.Channel].EnqueueValue(r)
}

// Drain runs every channel until its queue is empty and returns the cycle
// at which the last request in the whole system completed.
//
// Channels are independent single-owner schedulers with merge-on-join
// stats, so when more than one channel has pending work and GOMAXPROCS
// allows it, they drain concurrently through internal/parallel — the
// per-channel results (and therefore the returned cycle, Stats and every
// request's Done) are byte-identical to a serial drain. The serial path
// is kept when a tracer is attached: obs event timestamps stay correct
// either way, but the trace ring buffer's drop order under overflow
// depends on global emission order, which concurrency would scramble.
func (ctl *Controller) Drain() int64 {
	busy := 0
	traced := false
	for _, c := range ctl.channels {
		if c.Pending() > 0 {
			busy++
		}
		if c.tr != nil {
			traced = true
		}
	}
	if busy > 1 && !traced && runtime.GOMAXPROCS(0) > 1 {
		dones, _ := parallel.Sweep(context.Background(), ctl.channels,
			func(_ context.Context, c *Channel) (int64, error) {
				return c.Drain(), nil
			})
		var last int64
		for _, d := range dones {
			if d > last {
				last = d
			}
		}
		return last
	}
	var last int64
	for _, c := range ctl.channels {
		if d := c.Drain(); d > last {
			last = d
		}
	}
	return last
}

// Stats merges the per-channel snapshots into one system-level snapshot
// (merge-on-join: each channel's counters are single-owner while the
// simulation runs).
func (ctl *Controller) Stats() ChannelStats {
	var s ChannelStats
	for _, c := range ctl.channels {
		s.Merge(c.Stats())
	}
	return s
}

// Seconds converts cycles to seconds using the spec's burst clock.
func (ctl *Controller) Seconds(cycles int64) float64 {
	return ctl.spec.Timing.Seconds(cycles)
}

// AchievedBandwidthGBs computes the effective bandwidth of a finished run:
// total transferred bytes divided by the wall-clock completion time.
func (ctl *Controller) AchievedBandwidthGBs() float64 {
	s := ctl.Stats()
	if s.LastDone == 0 {
		return 0
	}
	bytes := float64(s.Reads+s.Writes) * float64(ctl.spec.Geometry.TransferBytes)
	return bytes / ctl.Seconds(s.LastDone) / 1e9
}
