package dram

// rank models rank-level constraints shared by all banks of a rank:
// ACT-to-ACT spacing (tRRD), the four-activate window (tFAW) and refresh.
type rank struct {
	banks []bank

	// nextACT is the earliest cycle any bank of this rank may activate
	// (tRRD from the previous ACT).
	nextACT int64
	// actWindow holds issue cycles of the most recent ACTs for the
	// tFAW sliding-window constraint.
	actWindow [4]int64
	actCount  int

	// nextRefresh is the cycle at which the next REFab is due.
	nextRefresh int64
}

func newRank(banksPerRank int, trefi int) rank {
	r := rank{banks: make([]bank, banksPerRank)}
	for i := range r.banks {
		r.banks[i] = newBank()
	}
	r.nextRefresh = int64(trefi)
	return r
}

// earliestACT returns the earliest cycle an ACT may issue on this rank.
// Both tRRD and tFAW are folded into nextACT by recordACT.
func (r *rank) earliestACT() int64 {
	return r.nextACT
}

// recordACT registers an ACT at cycle `at`, updating tRRD and tFAW state.
func (r *rank) recordACT(at int64, t *Timing) {
	r.nextACT = maxi64(r.nextACT, at+int64(t.TRRD))
	idx := r.actCount % 4
	// After four ACTs, the slot we are about to overwrite holds the
	// ACT four-back; tFAW says the next ACT after that one must wait.
	r.actWindow[idx] = at
	r.actCount++
	if r.actCount >= 4 {
		fourBack := r.actWindow[r.actCount%4]
		r.nextACT = maxi64(r.nextACT, fourBack+int64(t.TFAW))
	}
}

// refreshDue reports whether an all-bank refresh is due at cycle now.
func (r *rank) refreshDue(now int64) bool {
	return now >= r.nextRefresh
}

// applyRefresh performs REFab bookkeeping: all banks close and block for
// tRFCab; if any bank is active it is precharged first (tRP added).
// It returns the cycle at which the rank becomes usable again.
func (r *rank) applyRefresh(now int64, t *Timing) int64 {
	start := now
	for i := range r.banks {
		if r.banks[i].state == bankActive {
			// Implicit PREab before refresh.
			start = maxi64(start, r.banks[i].nextPRE)
		}
	}
	preDone := start
	anyActive := false
	for i := range r.banks {
		if r.banks[i].state == bankActive {
			anyActive = true
			r.banks[i].apply(CmdPRE, 0, start, t)
		}
	}
	if anyActive {
		preDone = start + int64(t.TRP)
	}
	for i := range r.banks {
		r.banks[i].apply(CmdREFab, 0, preDone, t)
	}
	r.nextRefresh += int64(t.TREFI)
	if r.nextRefresh <= preDone {
		r.nextRefresh = preDone + int64(t.TREFI)
	}
	return preDone + int64(t.TRFCab)
}
