package dram

// Request is one burst-sized memory access presented to the controller.
// The address is already translated to DRAM coordinates; physical-to-DRAM
// mapping happens in the memory-controller frontend (internal/mc).
type Request struct {
	// Addr is the DRAM coordinate of the burst.
	Addr Addr
	// Write is true for a write burst, false for a read.
	Write bool
	// Arrival is the cycle the request becomes visible to the scheduler.
	Arrival int64
	// Done is the cycle the request finished (data burst completed).
	// Populated by the controller.
	Done int64
	// ID is an optional caller tag carried through the pipeline.
	ID int64
}

// Kind returns the data command this request needs.
func (r *Request) Kind() CommandKind {
	if r.Write {
		return CmdWR
	}
	return CmdRD
}
