package dram

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	g := JetsonOrinLPDDR5.Geometry
	if err := g.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := g
	bad.Channels = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two channels accepted")
	}
	bad = g
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rows accepted")
	}
	bad = g
	bad.TransferBytes = 4096
	if err := bad.Validate(); err == nil {
		t.Fatal("transfer > row accepted")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := JetsonOrinLPDDR5.Geometry
	if got, want := g.Channels, 16; got != want {
		t.Errorf("Channels = %d, want %d", got, want)
	}
	if got, want := g.TotalBanks(), 16*2*16; got != want {
		t.Errorf("TotalBanks = %d, want %d", got, want)
	}
	if got, want := g.ColumnsPerRow(), 64; got != want {
		t.Errorf("ColumnsPerRow = %d, want %d", got, want)
	}
	if got, want := g.CapacityBytes(), 64*GiB; got != want {
		t.Errorf("CapacityBytes = %d, want %d", got, want)
	}
	if got, want := g.AddressBits(), 36; got != want { // 64 GiB
		t.Errorf("AddressBits = %d, want %d", got, want)
	}
}

func TestGeometryBitCounts(t *testing.T) {
	g := Geometry{
		Channels: 4, RanksPerChannel: 2, BanksPerRank: 8,
		Rows: 1 << 14, RowBytes: 2048, TransferBytes: 32,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := g.ChannelBits() + g.RankBits() + g.BankBits() + g.RowBits() +
		g.ColumnBits() + g.OffsetBits()
	if sum != g.AddressBits() {
		t.Errorf("bit counts sum %d != AddressBits %d", sum, g.AddressBits())
	}
	if g.ChannelBits() != 2 || g.RankBits() != 1 || g.BankBits() != 3 {
		t.Errorf("unexpected interleave bits: ch=%d rk=%d ba=%d",
			g.ChannelBits(), g.RankBits(), g.BankBits())
	}
}

func TestAddrValidAndGlobalBank(t *testing.T) {
	g := IPhoneLPDDR5.Geometry
	a := Addr{Channel: g.Channels - 1, Rank: 1, Bank: 15, Row: g.Rows - 1, Column: 63}
	if !a.Valid(g) {
		t.Fatalf("in-range address %v reported invalid", a)
	}
	a.Row = g.Rows
	if a.Valid(g) {
		t.Fatal("out-of-range row accepted")
	}
	// GlobalBank must be a bijection over (channel, rank, bank).
	seen := map[int]bool{}
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			for ba := 0; ba < g.BanksPerRank; ba++ {
				gb := Addr{Channel: ch, Rank: rk, Bank: ba}.GlobalBank(g)
				if gb < 0 || gb >= g.TotalBanks() {
					t.Fatalf("GlobalBank %d out of range", gb)
				}
				if seen[gb] {
					t.Fatalf("GlobalBank %d repeated", gb)
				}
				seen[gb] = true
			}
		}
	}
}

func TestGlobalBankBijectionProperty(t *testing.T) {
	// Property: for any valid geometry, GlobalBank of distinct
	// (channel,rank,bank) tuples is distinct and dense.
	f := func(chBits, rkBits, baBits uint8) bool {
		g := Geometry{
			Channels:        1 << (chBits % 4),
			RanksPerChannel: 1 << (rkBits % 2),
			BanksPerRank:    1 << (baBits%3 + 2),
			Rows:            1 << 10,
			RowBytes:        2048,
			TransferBytes:   32,
		}
		seen := make([]bool, g.TotalBanks())
		for ch := 0; ch < g.Channels; ch++ {
			for rk := 0; rk < g.RanksPerChannel; rk++ {
				for ba := 0; ba < g.BanksPerRank; ba++ {
					gb := Addr{Channel: ch, Rank: rk, Bank: ba}.GlobalBank(g)
					if gb < 0 || gb >= len(seen) || seen[gb] {
						return false
					}
					seen[gb] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Total(t *testing.T) {
	// log2 is total (floor semantics): non-power-of-two geometry is a
	// Validate error, never a crash.
	for _, tc := range []struct{ v, want int }{
		{-4, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, 20},
	} {
		if got := log2(tc.v); got != tc.want {
			t.Errorf("log2(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestValidateWrapsErrConfig(t *testing.T) {
	g := Geometry{Channels: 3, RanksPerChannel: 2, BanksPerRank: 16, Rows: 1 << 14, RowBytes: 2048, TransferBytes: 32}
	err := g.Validate()
	if err == nil {
		t.Fatal("non-power-of-two channel count validated")
	}
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("geometry error %v does not wrap ErrConfig", err)
	}
	if _, err := LPDDR5("bad", 16, 6400, 2, 100); !errors.Is(err, ErrConfig) {
		t.Fatalf("LPDDR5 constructor error %v does not wrap ErrConfig", err)
	}
	bad := Timing{CycleNS: -1}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("timing error %v does not wrap ErrConfig", err)
	}
}
