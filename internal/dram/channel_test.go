package dram

import (
	"math/rand"
	"testing"
)

// smallSpec returns a compact spec for fast unit tests. The arguments
// are known-good, so the constructor error is impossible; a regression
// there fails the first test that validates the zero spec.
func smallSpec() Spec {
	s, _ := LPDDR5("test LPDDR5 1ch", 16, 6400, 2, 256*1<<20) // 1 channel, 256 MiB
	return s
}

func TestSequentialReadsSaturateBus(t *testing.T) {
	spec := smallSpec()
	ctl, err := NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetRefreshEnabled(false)
	// Stream whole rows across banks: row-hit heavy, should approach
	// one burst per cycle.
	n := 0
	for bank := 0; bank < 4; bank++ {
		for col := 0; col < 64; col++ {
			req := &Request{Addr: Addr{Bank: bank, Row: 0, Column: col}}
			if err := ctl.Enqueue(req); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	done := ctl.Drain()
	// Lower bound: n bursts need >= n cycles plus one tRCD pipeline fill.
	if done < int64(n) {
		t.Fatalf("completed in %d cycles for %d bursts: too fast", done, n)
	}
	// Efficiency: with open rows in 4 banks the bus should be > 85% busy.
	eff := float64(n) / float64(done)
	if eff < 0.85 {
		t.Errorf("sequential read efficiency %.2f, want > 0.85 (cycles=%d)", eff, done)
	}
}

func TestRowConflictsSlowDown(t *testing.T) {
	spec := smallSpec()
	mk := func(rowStride int) int64 {
		ctl, _ := NewController(spec)
		ctl.SetRefreshEnabled(false)
		for i := 0; i < 256; i++ {
			req := &Request{Addr: Addr{Bank: 0, Row: (i * rowStride) % spec.Geometry.Rows, Column: i % 64}}
			if err := ctl.Enqueue(req); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Drain()
	}
	sameRow := mk(0)
	conflict := mk(1) // every access a new row in the same bank
	if conflict <= sameRow*2 {
		t.Errorf("row conflicts not penalized: same-row %d cycles, conflicts %d", sameRow, conflict)
	}
}

func TestRowHitClassification(t *testing.T) {
	spec := smallSpec()
	ctl, _ := NewController(spec)
	ctl.SetRefreshEnabled(false)
	for col := 0; col < 8; col++ {
		if err := ctl.Enqueue(&Request{Addr: Addr{Bank: 0, Row: 5, Column: col}}); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Drain()
	s := ctl.Stats()
	if s.RowMisses != 1 {
		t.Errorf("RowMisses = %d, want 1 (first access opens the row)", s.RowMisses)
	}
	if s.RowHits != 7 {
		t.Errorf("RowHits = %d, want 7", s.RowHits)
	}
	if s.Activations != 1 {
		t.Errorf("Activations = %d, want 1", s.Activations)
	}
}

func TestWriteReadTurnaroundPenalty(t *testing.T) {
	spec := smallSpec()
	run := func(alternate bool) int64 {
		ctl, _ := NewController(spec)
		ctl.SetRefreshEnabled(false)
		ctl.Channel(0).SetWindow(1) // strict FCFS so the pattern is preserved
		for i := 0; i < 64; i++ {
			w := false
			if alternate {
				w = i%2 == 1
			}
			if err := ctl.Enqueue(&Request{
				Addr:  Addr{Bank: 0, Row: 0, Column: i},
				Write: w,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Drain()
	}
	readsOnly := run(false)
	alternating := run(true)
	if alternating <= readsOnly {
		t.Errorf("read/write turnaround free: reads-only %d, alternating %d", readsOnly, alternating)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	spec := smallSpec()
	ctl, _ := NewController(spec)
	ctl.SetRefreshEnabled(false)
	ch := ctl.Channel(0)
	// Open row 0 via a first request, then enqueue a conflicting
	// request (row 1) ahead of more row-0 hits. FR-FCFS should finish
	// the hits before closing the row.
	reqs := []*Request{
		{Addr: Addr{Bank: 0, Row: 0, Column: 0}, ID: 0},
		{Addr: Addr{Bank: 0, Row: 1, Column: 0}, ID: 1},
		{Addr: Addr{Bank: 0, Row: 0, Column: 1}, ID: 2},
		{Addr: Addr{Bank: 0, Row: 0, Column: 2}, ID: 3},
	}
	for _, r := range reqs {
		if err := ch.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	ch.Drain()
	if !(reqs[2].Done < reqs[1].Done && reqs[3].Done < reqs[1].Done) {
		t.Errorf("row hits not prioritized: done cycles = %d,%d,%d,%d",
			reqs[0].Done, reqs[1].Done, reqs[2].Done, reqs[3].Done)
	}
	s := ch.Stats()
	if s.RowHits != 2 {
		t.Errorf("RowHits = %d, want 2", s.RowHits)
	}
}

func TestRefreshOverheadVisible(t *testing.T) {
	spec := smallSpec()
	run := func(refresh bool) int64 {
		ctl, _ := NewController(spec)
		ctl.SetRefreshEnabled(refresh)
		// Enough traffic to span several tREFI windows.
		n := spec.Timing.TREFI * 4
		for i := 0; i < n; i++ {
			if err := ctl.Enqueue(&Request{Addr: Addr{
				Bank:   i % 16,
				Row:    (i / 1024) % spec.Geometry.Rows,
				Column: i % 64,
			}}); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Drain()
	}
	without := run(false)
	with := run(true)
	if with <= without {
		t.Errorf("refresh has no cost: with=%d without=%d", with, without)
	}
}

func TestArrivalTimesRespected(t *testing.T) {
	spec := smallSpec()
	ctl, _ := NewController(spec)
	ctl.SetRefreshEnabled(false)
	late := &Request{Addr: Addr{Bank: 0, Row: 0, Column: 0}, Arrival: 10_000}
	if err := ctl.Enqueue(late); err != nil {
		t.Fatal(err)
	}
	ctl.Drain()
	if late.Done < 10_000 {
		t.Errorf("request completed at %d before its arrival 10000", late.Done)
	}
}

func TestEnqueueRejectsOutOfRange(t *testing.T) {
	spec := smallSpec()
	ctl, _ := NewController(spec)
	bad := []Addr{
		{Channel: 5},
		{Bank: 99},
		{Row: spec.Geometry.Rows},
		{Column: 64},
		{Rank: 2},
	}
	for _, a := range bad {
		if err := ctl.Enqueue(&Request{Addr: a}); err == nil {
			t.Errorf("address %v accepted", a)
		}
	}
}

func TestRandomTrafficCompletesAndCounts(t *testing.T) {
	spec := smallSpec()
	ctl, _ := NewController(spec)
	rng := rand.New(rand.NewSource(42))
	g := spec.Geometry
	const n = 2000
	var wantReads, wantWrites int64
	for i := 0; i < n; i++ {
		w := rng.Intn(2) == 0
		if w {
			wantWrites++
		} else {
			wantReads++
		}
		if err := ctl.Enqueue(&Request{
			Addr: Addr{
				Rank:   rng.Intn(g.RanksPerChannel),
				Bank:   rng.Intn(g.BanksPerRank),
				Row:    rng.Intn(g.Rows),
				Column: rng.Intn(g.ColumnsPerRow()),
			},
			Write: w,
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := ctl.Drain()
	s := ctl.Stats()
	if s.Reads != wantReads || s.Writes != wantWrites {
		t.Errorf("reads/writes = %d/%d, want %d/%d", s.Reads, s.Writes, wantReads, wantWrites)
	}
	if s.RowHits+s.RowMisses != n {
		t.Errorf("hits+misses = %d, want %d", s.RowHits+s.RowMisses, n)
	}
	if done <= 0 {
		t.Error("no completion cycle recorded")
	}
	if s.LastDone != done {
		t.Errorf("LastDone %d != Drain result %d", s.LastDone, done)
	}
}

func TestMeasureStreamBandwidth(t *testing.T) {
	spec := smallSpec()
	var reqs []*Request
	// Sequential physical stream under the conventional
	// row:rank:column:bank:channel mapping: consecutive 2 KB segments
	// land in consecutive banks of the same row, letting the scheduler
	// overlap the next bank's activation with the current data burst.
	// Should land near peak per-channel bandwidth (12.8 GB/s).
	for row := 0; row < 4; row++ {
		for bank := 0; bank < 16; bank++ {
			for col := 0; col < 64; col++ {
				reqs = append(reqs, &Request{Addr: Addr{Bank: bank, Row: row, Column: col}})
			}
		}
	}
	res, err := MeasureStream(spec, reqs)
	if err != nil {
		t.Fatal(err)
	}
	peak := spec.PeakBandwidthGBs()
	if res.BandwidthGBs < 0.85*peak {
		t.Errorf("sequential stream bandwidth %.2f GB/s < 85%% of peak %.2f", res.BandwidthGBs, peak)
	}
	if res.RowHitRate < 0.9 {
		t.Errorf("row hit rate %.2f, want > 0.9", res.RowHitRate)
	}
}

func TestCloseRowPolicyHelpsRandomTraffic(t *testing.T) {
	spec := smallSpec()
	run := func(policy RowPolicy, random bool) int64 {
		ctl, _ := NewController(spec)
		ctl.SetRefreshEnabled(false)
		ctl.Channel(0).SetRowPolicy(policy)
		rng := rand.New(rand.NewSource(21))
		g := spec.Geometry
		for i := 0; i < 1024; i++ {
			a := Addr{Bank: i % g.BanksPerRank, Row: i / 64 % g.Rows, Column: i % 64}
			if random {
				a = Addr{
					Rank:   rng.Intn(g.RanksPerChannel),
					Bank:   rng.Intn(g.BanksPerRank),
					Row:    rng.Intn(g.Rows),
					Column: rng.Intn(g.ColumnsPerRow()),
				}
			}
			if err := ctl.Enqueue(&Request{Addr: a}); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Drain()
	}
	// Random traffic: close-row hides precharge latency.
	openRandom := run(OpenRow, true)
	closeRandom := run(CloseRow, true)
	if closeRandom >= openRandom {
		t.Errorf("close-row no better on random traffic: open=%d close=%d", openRandom, closeRandom)
	}
	// Sequential traffic: close-row must not destroy row hits (visible
	// requests to the open row suppress the auto-precharge).
	openSeq := run(OpenRow, false)
	closeSeq := run(CloseRow, false)
	if closeSeq > openSeq*11/10 {
		t.Errorf("close-row hurt sequential traffic too much: open=%d close=%d", openSeq, closeSeq)
	}
}
