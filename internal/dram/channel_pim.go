package dram

import "fmt"

// All-bank (PIM) command interface. Near-bank PIM devices such as SK Hynix
// AiM operate banks of one rank in lock-step: a single command activates,
// MACs or precharges every bank simultaneously. These methods let the PIM
// device model (internal/pim) drive the channel timing engine directly;
// they bypass the request queue, so callers must not interleave them with a
// non-empty queue unless they intend to model contention.

// SetDualRowBuffer toggles NeuPIMs-style dual row buffers (paper Sec. V-C,
// "Remaining Challenges"): PIM all-bank operations use a second, dedicated
// row buffer per bank, so they neither require the SoC's rows to be
// precharged nor evict them. Command-bus slots and the MAC cadence remain
// shared. Internally, all-bank commands are redirected to a shadow bank
// state when enabled.
func (c *Channel) SetDualRowBuffer(v bool) {
	if v && c.shadow == nil {
		c.shadow = make([]rank, len(c.ranks))
		for i := range c.shadow {
			c.shadow[i] = newRank(c.spec.Geometry.BanksPerRank, c.t.TREFI)
		}
	}
	c.dualRowBuffer = v
}

// pimRank returns the bank state all-bank commands should operate on.
func (c *Channel) pimRank(rk int) *rank {
	if c.dualRowBuffer {
		return &c.shadow[rk]
	}
	return &c.ranks[rk]
}

// AllBankACT activates row `row` in every bank of rank `rk`, returning the
// issue cycle. All banks must be precharged.
func (c *Channel) AllBankACT(rk, row int) (int64, error) {
	if rk < 0 || rk >= len(c.ranks) {
		return 0, fmt.Errorf("dram: rank %d out of range", rk)
	}
	if row < 0 || row >= c.spec.Geometry.Rows {
		return 0, fmt.Errorf("dram: row %d out of range", row)
	}
	r := c.pimRank(rk)
	at := maxi64(c.cmdBusFree, c.now)
	for i := range r.banks {
		e, legal := r.banks[i].earliest(CmdACT, row)
		if !legal {
			return 0, fmt.Errorf("dram: AllBankACT rank %d bank %d not precharged", rk, i)
		}
		at = maxi64(at, e)
	}
	// All-bank activation draws the row in every bank at once. tRRD and
	// tFAW are per-single-bank-ACT constraints; the all-bank ACT of PIM
	// mode is one (heavier) command, modeled as one ACT record.
	at = maxi64(at, r.earliestACT())
	for i := range r.banks {
		r.banks[i].apply(CmdACT, row, at, c.t)
	}
	r.recordACT(at, c.t)
	c.stats.Activations += int64(len(r.banks))
	c.cmdBusFree = at + 1
	c.advanceNow(at)
	return at, nil
}

// AllBankPRE precharges every bank of rank `rk`, returning the issue cycle.
func (c *Channel) AllBankPRE(rk int) (int64, error) {
	if rk < 0 || rk >= len(c.ranks) {
		return 0, fmt.Errorf("dram: rank %d out of range", rk)
	}
	r := c.pimRank(rk)
	at := maxi64(c.cmdBusFree, c.now)
	for i := range r.banks {
		if r.banks[i].state != bankActive {
			continue
		}
		e, legal := r.banks[i].earliest(CmdPRE, 0)
		if !legal {
			continue
		}
		at = maxi64(at, e)
	}
	for i := range r.banks {
		if r.banks[i].state == bankActive {
			r.banks[i].apply(CmdPRE, 0, at, c.t)
		}
	}
	c.cmdBusFree = at + 1
	c.advanceNow(at)
	return at, nil
}

// AllBankMAC issues one lock-step MAC in every bank of rank `rk`: each bank
// reads one burst from its open row at column `col` into its processing
// unit. `interval` is the minimum spacing (in burst cycles) between MAC
// commands on one rank — the PIM compute cadence. MACs keep data inside the
// device and do not occupy the channel data bus.
func (c *Channel) AllBankMAC(rk, col, interval int) (int64, error) {
	if rk < 0 || rk >= len(c.ranks) {
		return 0, fmt.Errorf("dram: rank %d out of range", rk)
	}
	if interval < 1 {
		interval = 1
	}
	r := c.pimRank(rk)
	at := maxi64(c.cmdBusFree, c.nextMAC[rk])
	for i := range r.banks {
		if r.banks[i].state != bankActive {
			return 0, fmt.Errorf("dram: AllBankMAC rank %d bank %d has no open row", rk, i)
		}
		e, legal := r.banks[i].earliest(CmdRD, r.banks[i].openRow)
		if !legal {
			return 0, fmt.Errorf("dram: AllBankMAC rank %d bank %d illegal", rk, i)
		}
		at = maxi64(at, e)
	}
	_ = col // column index does not affect timing within an open row
	for i := range r.banks {
		r.banks[i].apply(CmdMACab, r.banks[i].openRow, at, c.t)
	}
	c.nextMAC[rk] = at + int64(interval)
	c.cmdBusFree = at + 1
	c.advanceNow(at)
	return at, nil
}

// WriteGlobalBuffer streams `bursts` write bursts into the PIM global
// (input) buffer of rank `rk` over the channel data bus. It returns the
// cycle the last burst completed.
func (c *Channel) WriteGlobalBuffer(rk, bursts int) (int64, error) {
	if rk < 0 || rk >= len(c.ranks) {
		return 0, fmt.Errorf("dram: rank %d out of range", rk)
	}
	var done int64
	for i := 0; i < bursts; i++ {
		at := maxi64(c.cmdBusFree, maxi64(c.dataBusFree, c.nextWrite))
		c.dataBusFree = at + int64(c.t.TCCD)
		c.nextRead = maxi64(c.nextRead, at+int64(c.t.TCCD)+int64(c.t.TWTR))
		c.cmdBusFree = at + 1
		done = at + int64(c.t.CWL) + int64(c.t.TCCD)
		c.advanceNow(at)
		c.stats.Writes++
		c.stats.DataBusCycles += int64(c.t.TCCD)
	}
	return done, nil
}

// ReadMACResults streams `bursts` read bursts of accumulated PU results out
// of rank `rk` over the channel data bus, returning the completion cycle.
func (c *Channel) ReadMACResults(rk, bursts int) (int64, error) {
	if rk < 0 || rk >= len(c.ranks) {
		return 0, fmt.Errorf("dram: rank %d out of range", rk)
	}
	var done int64
	for i := 0; i < bursts; i++ {
		at := maxi64(c.cmdBusFree, maxi64(c.dataBusFree, c.nextRead))
		c.dataBusFree = at + int64(c.t.TCCD)
		c.nextWrite = maxi64(c.nextWrite, at+int64(c.t.TCCD)+int64(c.t.TRTW))
		c.cmdBusFree = at + 1
		done = at + int64(c.t.CL) + int64(c.t.TCCD)
		c.advanceNow(at)
		c.stats.Reads++
		c.stats.DataBusCycles += int64(c.t.TCCD)
	}
	return done, nil
}

// AdvanceTo moves the channel clock forward to cycle `cycle` (no-op if the
// clock is already past it). Used to model synchronization points.
func (c *Channel) AdvanceTo(cycle int64) {
	c.advanceNow(cycle)
	if cycle > c.cmdBusFree {
		c.cmdBusFree = cycle
	}
}
