package dram

import "sync/atomic"

// Totals holds process-wide simulation counters aggregated across every
// concurrently-running DRAM simulation. Unlike ChannelStats (single-owner,
// merge-on-join), these counters are updated from many goroutines at
// once, so they are atomic: one Add per finished stream replay, loads at
// any time. They exist for observability — e.g. the facilsim -v footer —
// and never feed back into simulated timing.
type Totals struct {
	streams  atomic.Int64
	requests atomic.Int64
	cycles   atomic.Int64
}

// Streams returns the number of stream replays completed.
func (t *Totals) Streams() int64 { return t.streams.Load() }

// Requests returns the total read+write requests simulated.
func (t *Totals) Requests() int64 { return t.requests.Load() }

// Cycles returns the total burst-clock cycles simulated.
func (t *Totals) Cycles() int64 { return t.cycles.Load() }

// record accumulates one finished replay.
func (t *Totals) record(s ChannelStats, cycles int64) {
	t.streams.Add(1)
	t.requests.Add(s.Reads + s.Writes)
	t.cycles.Add(cycles)
}

// Global aggregates every stream replay in the process, however many
// sweeps are running.
var Global Totals
