package dram

// CommandKind enumerates DRAM commands the channel engine understands.
type CommandKind int

const (
	// CmdACT activates (opens) a row in one bank.
	CmdACT CommandKind = iota
	// CmdPRE precharges (closes) one bank.
	CmdPRE
	// CmdRD reads one burst from the open row.
	CmdRD
	// CmdWR writes one burst to the open row.
	CmdWR
	// CmdREFab performs an all-bank refresh on one rank.
	CmdREFab
	// CmdACTab activates the same row in every bank of a rank
	// (PIM all-bank mode).
	CmdACTab
	// CmdPREab precharges every bank of a rank.
	CmdPREab
	// CmdMACab issues a lock-step multiply-accumulate in every bank of a
	// rank: each bank reads one burst from its open row and feeds its
	// processing unit. The data stays inside the device, so the channel
	// data bus is NOT occupied.
	CmdMACab
	// CmdWRGB writes one burst into the PIM global (input) buffer of a
	// rank over the channel data bus.
	CmdWRGB
	// CmdRDMAC reads accumulated PU results out of a rank over the
	// channel data bus.
	CmdRDMAC
)

// String returns the conventional mnemonic.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREFab:
		return "REFab"
	case CmdACTab:
		return "ACTab"
	case CmdPREab:
		return "PREab"
	case CmdMACab:
		return "MACab"
	case CmdWRGB:
		return "WRGB"
	case CmdRDMAC:
		return "RDMAC"
	default:
		return "UNKNOWN"
	}
}

// usesDataBus reports whether the command occupies the channel data bus for
// one burst cycle.
func (k CommandKind) usesDataBus() bool {
	switch k {
	case CmdRD, CmdWR, CmdWRGB, CmdRDMAC:
		return true
	}
	return false
}

// isColumn reports whether the command is a column access subject to tCCD.
func (k CommandKind) isColumn() bool {
	switch k {
	case CmdRD, CmdWR, CmdMACab, CmdWRGB, CmdRDMAC:
		return true
	}
	return false
}
