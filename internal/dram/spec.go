package dram

import "fmt"

// Spec bundles a named DRAM configuration: geometry, timing and the
// data-rate it was derived from.
type Spec struct {
	// Name identifies the preset, e.g. "LPDDR5-6400 256-bit".
	Name string
	// Geometry is the physical organization.
	Geometry Geometry
	// Timing holds the burst-cycle timing constraints.
	Timing Timing
	// DataRateMbps is the per-pin transfer rate.
	DataRateMbps int
	// ChannelWidthBits is the data width of one channel.
	ChannelWidthBits int
}

// Validate checks geometry and timing together. Errors wrap ErrConfig
// (directly or through the field validators).
func (s Spec) Validate() error {
	if err := s.Geometry.Validate(); err != nil {
		return fmt.Errorf("spec %q: %w", s.Name, err)
	}
	if err := s.Timing.Validate(); err != nil {
		return fmt.Errorf("spec %q: %w", s.Name, err)
	}
	if s.DataRateMbps <= 0 {
		return fmt.Errorf("%w: spec %q: DataRateMbps must be positive", ErrConfig, s.Name)
	}
	if s.ChannelWidthBits <= 0 {
		return fmt.Errorf("%w: spec %q: ChannelWidthBits must be positive", ErrConfig, s.Name)
	}
	return nil
}

// PeakBandwidthGBs returns the theoretical peak bandwidth of the whole
// memory system in GB/s (10^9 bytes per second).
func (s Spec) PeakBandwidthGBs() float64 {
	bytesPerSec := float64(s.DataRateMbps) * 1e6 / 8 * float64(s.ChannelWidthBits) *
		float64(s.Geometry.Channels)
	return bytesPerSec / 1e9
}

// burstCycleNS computes the duration of one burst on one channel:
// TransferBytes at DataRateMbps over ChannelWidthBits pins.
func burstCycleNS(transferBytes, widthBits, dataRateMbps int) float64 {
	beats := float64(transferBytes*8) / float64(widthBits)
	return beats / (float64(dataRateMbps) * 1e-3) // Mbps -> bits/ns per pin
}

// LPDDR5 returns an LPDDR5 spec with the given total bus width in bits
// (width/16 channels), per-pin data rate in Mbps, ranks per channel and
// total capacity in bytes. Banks per rank is 16 (bank-group mode).
func LPDDR5(name string, busWidthBits, dataRateMbps, ranksPerChannel int, capacityBytes int64) (Spec, error) {
	const channelWidth = 16
	const rowBytes = 2048
	const transferBytes = 32 // BL16 x16
	const banksPerRank = 16
	if busWidthBits%channelWidth != 0 {
		return Spec{}, fmt.Errorf("%w: LPDDR5 bus width %d not a multiple of %d", ErrConfig, busWidthBits, channelWidth)
	}
	channels := busWidthBits / channelWidth
	g := Geometry{
		Channels:        channels,
		RanksPerChannel: ranksPerChannel,
		BanksPerRank:    banksPerRank,
		RowBytes:        rowBytes,
		TransferBytes:   transferBytes,
	}
	perBank := capacityBytes / int64(g.Channels*g.RanksPerChannel*g.BanksPerRank)
	rows := perBank / rowBytes
	if rows <= 0 || rows&(rows-1) != 0 {
		return Spec{}, fmt.Errorf("%w: capacity %d does not yield a power-of-two row count (got %d rows/bank)", ErrConfig, capacityBytes, rows)
	}
	g.Rows = int(rows)
	cyc := burstCycleNS(transferBytes, channelWidth, dataRateMbps)
	s := Spec{
		Name:             name,
		Geometry:         g,
		Timing:           timingFromNS(cyc, lpddr5NS),
		DataRateMbps:     dataRateMbps,
		ChannelWidthBits: channelWidth,
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// presetLPDDR5 builds a package-level preset without panicking: a
// mis-declared preset yields a named-but-invalid Spec whose first use
// fails Spec.Validate (every consumer validates), so configuration
// errors stay recoverable instead of crashing process init.
func presetLPDDR5(name string, busWidthBits, dataRateMbps, ranksPerChannel int, capacityBytes int64) Spec {
	s, err := LPDDR5(name, busWidthBits, dataRateMbps, ranksPerChannel, capacityBytes)
	if err != nil {
		return Spec{Name: name}
	}
	return s
}

// HBM2 returns an HBM2 spec: 128-bit pseudo-channels, BL4 (32 B bursts),
// 2 KB rows, 16 banks per rank.
func HBM2(name string, channels, dataRateMbps int, capacityBytes int64) (Spec, error) {
	const channelWidth = 128
	const rowBytes = 2048
	const transferBytes = 32 // BL4? 128 bits x 2 beats = 32 B
	const banksPerRank = 16
	g := Geometry{
		Channels:        channels,
		RanksPerChannel: 1,
		BanksPerRank:    banksPerRank,
		RowBytes:        rowBytes,
		TransferBytes:   transferBytes,
	}
	perBank := capacityBytes / int64(g.Channels*g.BanksPerRank)
	rows := perBank / rowBytes
	if rows <= 0 || rows&(rows-1) != 0 {
		return Spec{}, fmt.Errorf("%w: capacity %d does not yield a power-of-two row count", ErrConfig, capacityBytes)
	}
	g.Rows = int(rows)
	cyc := burstCycleNS(transferBytes, channelWidth, dataRateMbps)
	s := Spec{
		Name:             name,
		Geometry:         g,
		Timing:           timingFromNS(cyc, hbm2NS),
		DataRateMbps:     dataRateMbps,
		ChannelWidthBits: channelWidth,
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// GiB is a capacity helper.
const GiB = int64(1) << 30

// Presets matching the paper's Table II memory systems.
var (
	// JetsonOrinLPDDR5 is a 256-bit LPDDR5-6400, 64 GB, 2 ranks/channel
	// system (NVIDIA Jetson AGX Orin 64GB, 204.8 GB/s peak).
	JetsonOrinLPDDR5 = presetLPDDR5("LPDDR5-6400 256-bit (Jetson AGX Orin)", 256, 6400, 2, 64*GiB)
	// MacbookLPDDR5 is a 512-bit LPDDR5-6400, 64 GB system
	// (Apple MacBook Pro M3 Max, 409.6 GB/s peak).
	MacbookLPDDR5 = presetLPDDR5("LPDDR5-6400 512-bit (MacBook Pro M3 Max)", 512, 6400, 2, 64*GiB)
	// IdeaPadLPDDR5X is a 64-bit LPDDR5X-7467, 32 GB system
	// (Lenovo IdeaPad Slim 5, 59.7 GB/s peak).
	IdeaPadLPDDR5X = presetLPDDR5("LPDDR5X-7467 64-bit (IdeaPad Slim 5)", 64, 7467, 2, 32*GiB)
	// IPhoneLPDDR5 is a 64-bit LPDDR5-6400, 8 GB system
	// (Apple iPhone 15 Pro, 51.2 GB/s peak).
	IPhoneLPDDR5 = presetLPDDR5("LPDDR5-6400 64-bit (iPhone 15 Pro)", 64, 6400, 2, 8*GiB)
)
