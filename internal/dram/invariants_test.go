package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Timing-invariant checks over randomized traffic: properties that must
// hold for any legal DRAM schedule.

func randomTraffic(spec Spec, n int, seed int64) []*Request {
	rng := rand.New(rand.NewSource(seed))
	g := spec.Geometry
	reqs := make([]*Request, n)
	var arrival int64
	for i := range reqs {
		reqs[i] = &Request{
			Addr: Addr{
				Channel: rng.Intn(g.Channels),
				Rank:    rng.Intn(g.RanksPerChannel),
				Bank:    rng.Intn(g.BanksPerRank),
				Row:     rng.Intn(g.Rows),
				Column:  rng.Intn(g.ColumnsPerRow()),
			},
			Write:   rng.Intn(3) == 0,
			Arrival: arrival,
		}
		if rng.Intn(4) == 0 {
			arrival += int64(rng.Intn(8))
		}
	}
	return reqs
}

// TestDataBusExclusive: per channel, the data-bus slots implied by the
// completion times never collide — one burst per cycle.
func TestDataBusExclusive(t *testing.T) {
	spec, err := LPDDR5("inv", 32, 6400, 2, 512<<20) // 2 channels
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomTraffic(spec, 3000, 11)
	ctl, err := NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := ctl.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Drain()
	slots := map[int]map[int64]bool{}
	for _, r := range reqs {
		if r.Done <= 0 {
			t.Fatalf("request %v never completed", r.Addr)
		}
		// Reconstruct the data-bus cycle from the completion time.
		lat := int64(spec.Timing.CL)
		if r.Write {
			lat = int64(spec.Timing.CWL)
		}
		slot := r.Done - lat - int64(spec.Timing.TCCD)
		ch := r.Addr.Channel
		if slots[ch] == nil {
			slots[ch] = map[int64]bool{}
		}
		if slots[ch][slot] {
			t.Fatalf("channel %d: two bursts share data-bus cycle %d", ch, slot)
		}
		slots[ch][slot] = true
	}
}

// TestCompletionAfterArrival: no request finishes before its arrival plus
// the minimum pipeline latency.
func TestCompletionAfterArrival(t *testing.T) {
	spec, err := LPDDR5("inv2", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomTraffic(spec, 2000, 13)
	ctl, _ := NewController(spec)
	for _, r := range reqs {
		if err := ctl.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Drain()
	for _, r := range reqs {
		min := r.Arrival + int64(spec.Timing.CWL) + int64(spec.Timing.TCCD)
		if !r.Write {
			min = r.Arrival + int64(spec.Timing.CL) + int64(spec.Timing.TCCD)
		}
		if r.Done < min {
			t.Fatalf("request done at %d before minimum %d", r.Done, min)
		}
	}
}

// TestStatsConservation: reads+writes equals the request count and
// hits+misses equals the data commands for any traffic mix.
func TestStatsConservation(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		spec, err := LPDDR5("inv3", 16, 6400, 2, 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		n := int(nSeed)%500 + 10
		reqs := randomTraffic(spec, n, seed)
		ctl, err := NewController(spec)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if err := ctl.Enqueue(r); err != nil {
				return false
			}
		}
		ctl.Drain()
		s := ctl.Stats()
		return s.Reads+s.Writes == int64(n) && s.RowHits+s.RowMisses == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBankRowExclusiveUnderMACs: all-bank MACs never issue closer than
// the configured interval on a rank.
func TestBankRowExclusiveUnderMACs(t *testing.T) {
	spec, err := LPDDR5("inv4", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	if _, err := ch.AllBankACT(0, 0); err != nil {
		t.Fatal(err)
	}
	const interval = 5
	var last int64 = -1 << 62
	for i := 0; i < 64; i++ {
		at, err := ch.AllBankMAC(0, i, interval)
		if err != nil {
			t.Fatal(err)
		}
		if at-last < interval && last >= 0 {
			t.Fatalf("MACs %d apart, interval %d", at-last, interval)
		}
		last = at
	}
}

// TestDualRowBufferIsolation: with dual row buffers, PIM activity leaves
// the SoC-visible bank state untouched.
func TestDualRowBufferIsolation(t *testing.T) {
	spec, err := LPDDR5("inv5", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	// Open an SoC row via the queue.
	r1 := &Request{Addr: Addr{Bank: 0, Row: 7, Column: 0}}
	if err := ch.Enqueue(r1); err != nil {
		t.Fatal(err)
	}
	ch.Drain()

	ch.SetDualRowBuffer(true)
	if _, err := ch.AllBankACT(0, 99); err != nil {
		t.Fatalf("dual-buffer ACT should not require SoC precharge: %v", err)
	}
	if _, err := ch.AllBankMAC(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	// A row-7 access in bank 0 must still be a row hit.
	r2 := &Request{Addr: Addr{Bank: 0, Row: 7, Column: 1}}
	if err := ch.Enqueue(r2); err != nil {
		t.Fatal(err)
	}
	before := ch.Stats().RowHits
	ch.Drain()
	if got := ch.Stats().RowHits; got != before+1 {
		t.Errorf("SoC row evicted by dual-buffer PIM activity (hits %d -> %d)", before, got)
	}
}

// TestSingleRowBufferConflict: without dual buffers, an all-bank ACT on a
// bank with an open SoC row is rejected until precharge — the interference
// the co-scheduler must manage.
func TestSingleRowBufferConflict(t *testing.T) {
	spec, err := LPDDR5("inv6", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	if err := ch.Enqueue(&Request{Addr: Addr{Bank: 3, Row: 7}}); err != nil {
		t.Fatal(err)
	}
	ch.Drain()
	if _, err := ch.AllBankACT(0, 99); err == nil {
		t.Fatal("all-bank ACT succeeded over an open SoC row")
	}
	if _, err := ch.AllBankPRE(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.AllBankACT(0, 99); err != nil {
		t.Fatalf("ACT after precharge failed: %v", err)
	}
}
