package dram

// bankState is the row-buffer state of a single bank.
type bankState int

const (
	bankIdle bankState = iota // no row open (precharged)
	bankActive
)

// bank models one DRAM bank: its open row and the earliest cycles at which
// the next command of each class may be issued to it.
type bank struct {
	state   bankState
	openRow int

	// Earliest issue cycles for the respective commands, derived from
	// timing constraints triggered by earlier commands.
	nextACT   int64
	nextRD    int64
	nextWR    int64
	nextPRE   int64
	lastACTAt int64
}

func newBank() bank {
	return bank{state: bankIdle, openRow: -1}
}

// canIssue reports the earliest cycle (>= now) at which cmd targeting row
// may be issued to this bank, and whether the command is legal in the
// current state. It does not account for rank- or channel-level
// constraints; the channel engine layers those on top.
func (b *bank) earliest(cmd CommandKind, row int) (int64, bool) {
	switch cmd {
	case CmdACT:
		if b.state != bankIdle {
			return 0, false
		}
		return b.nextACT, true
	case CmdPRE:
		if b.state != bankActive {
			return 0, false
		}
		return b.nextPRE, true
	case CmdRD, CmdMACab:
		if b.state != bankActive || b.openRow != row {
			return 0, false
		}
		return b.nextRD, true
	case CmdWR:
		if b.state != bankActive || b.openRow != row {
			return 0, false
		}
		return b.nextWR, true
	default:
		return 0, false
	}
}

// apply updates the bank state for cmd issued at cycle `at`.
func (b *bank) apply(cmd CommandKind, row int, at int64, t *Timing) {
	switch cmd {
	case CmdACT:
		b.state = bankActive
		b.openRow = row
		b.lastACTAt = at
		b.nextRD = maxi64(b.nextRD, at+int64(t.TRCD))
		b.nextWR = maxi64(b.nextWR, at+int64(t.TRCD))
		b.nextPRE = maxi64(b.nextPRE, at+int64(t.TRAS))
		b.nextACT = maxi64(b.nextACT, at+int64(t.TRC))
	case CmdPRE:
		b.state = bankIdle
		b.openRow = -1
		b.nextACT = maxi64(b.nextACT, at+int64(t.TRP))
	case CmdRD, CmdMACab:
		b.nextRD = maxi64(b.nextRD, at+int64(t.TCCD))
		b.nextWR = maxi64(b.nextWR, at+int64(t.TCCD)+int64(t.TRTW))
		b.nextPRE = maxi64(b.nextPRE, at+int64(t.TRTP))
	case CmdWR:
		b.nextWR = maxi64(b.nextWR, at+int64(t.TCCD))
		b.nextRD = maxi64(b.nextRD, at+int64(t.TCCD)+int64(t.TWTR))
		b.nextPRE = maxi64(b.nextPRE, at+int64(t.TWR))
	case CmdREFab:
		b.state = bankIdle
		b.openRow = -1
		b.nextACT = maxi64(b.nextACT, at+int64(t.TRFCab))
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
