package dram

import (
	"strings"
	"testing"
)

func TestDerated(t *testing.T) {
	spec, err := LPDDR5("thermal base", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	d := spec.Derated(2)
	if d.Timing.TREFI >= spec.Timing.TREFI {
		t.Fatalf("Derated(2) TREFI %d not below nominal %d", d.Timing.TREFI, spec.Timing.TREFI)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("derated spec invalid: %v", err)
	}
	if !strings.Contains(d.Name, "refresh x2") {
		t.Fatalf("derated name %q does not mark the derate", d.Name)
	}
	if spec.Derated(1) != spec {
		t.Fatal("Derated(1) must be the identity")
	}
	// Extreme multipliers clamp TREFI so ranks still make progress.
	x := spec.Derated(1e9)
	if x.Timing.TREFI <= x.Timing.TRFCab {
		t.Fatalf("clamped TREFI %d does not exceed TRFCab %d", x.Timing.TREFI, x.Timing.TRFCab)
	}
}

func TestThrottleFactorMeasured(t *testing.T) {
	spec, err := LPDDR5("thermal measure", 16, 6400, 2, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ThrottleFactor(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f2 <= 1 {
		t.Fatalf("doubled refresh measured no slowdown: factor %g", f2)
	}
	if f2 > 1.5 {
		t.Fatalf("doubled refresh factor %g implausibly large", f2)
	}
	f4, err := ThrottleFactor(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f4 <= f2 {
		t.Fatalf("refresh x4 factor %g not above x2 factor %g", f4, f2)
	}
	again, err := ThrottleFactor(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again != f2 {
		t.Fatalf("memoized factor %g != first measurement %g", again, f2)
	}
	if f, err := ThrottleFactor(spec, 1); err != nil || f != 1 {
		t.Fatalf("mult 1 = (%g, %v), want (1, nil)", f, err)
	}
}
