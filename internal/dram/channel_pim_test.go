package dram

import "testing"

func TestAllBankACTMACPRECycle(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	ch.SetRefreshEnabled(false)

	act, err := ch.AllBankACT(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	for col := 0; col < 64; col++ {
		at, err := ch.AllBankMAC(0, col, 4)
		if err != nil {
			t.Fatal(err)
		}
		if at <= last && col > 0 {
			t.Fatalf("MAC %d issued at %d, not after previous %d", col, at, last)
		}
		last = at
	}
	if last < act+int64(spec.Timing.TRCD) {
		t.Errorf("first MAC before tRCD after ACT")
	}
	// MAC cadence: 64 MACs spaced >= 4 cycles.
	if got := last - act; got < 63*4 {
		t.Errorf("MAC stream took %d cycles, want >= %d", got, 63*4)
	}
	if _, err := ch.AllBankPRE(0); err != nil {
		t.Fatal(err)
	}
	// Next activation must respect tRP.
	act2, err := ch.AllBankACT(0, 101)
	if err != nil {
		t.Fatal(err)
	}
	if act2 <= last {
		t.Errorf("re-activation at %d not after MAC stream end %d", act2, last)
	}
}

func TestAllBankMACRequiresOpenRow(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	if _, err := ch.AllBankMAC(0, 0, 1); err == nil {
		t.Fatal("MAC on precharged bank accepted")
	}
}

func TestAllBankACTRequiresPrecharge(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	if _, err := ch.AllBankACT(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.AllBankACT(0, 1); err == nil {
		t.Fatal("double activation accepted")
	}
}

func TestAllBankBadArgs(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	if _, err := ch.AllBankACT(9, 0); err == nil {
		t.Error("bad rank accepted in AllBankACT")
	}
	if _, err := ch.AllBankACT(0, -1); err == nil {
		t.Error("bad row accepted in AllBankACT")
	}
	if _, err := ch.AllBankPRE(7); err == nil {
		t.Error("bad rank accepted in AllBankPRE")
	}
	if _, err := ch.AllBankMAC(7, 0, 1); err == nil {
		t.Error("bad rank accepted in AllBankMAC")
	}
	if _, err := ch.WriteGlobalBuffer(7, 1); err == nil {
		t.Error("bad rank accepted in WriteGlobalBuffer")
	}
	if _, err := ch.ReadMACResults(7, 1); err == nil {
		t.Error("bad rank accepted in ReadMACResults")
	}
}

func TestGlobalBufferTransfersUseDataBus(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	done, err := ch.WriteGlobalBuffer(0, 64) // 2 KB input segment
	if err != nil {
		t.Fatal(err)
	}
	if done < 64 {
		t.Errorf("64 bursts done at cycle %d, must be >= 64", done)
	}
	s := ch.Stats()
	if s.Writes != 64 {
		t.Errorf("Writes = %d, want 64", s.Writes)
	}
	done2, err := ch.ReadMACResults(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= done-int64(spec.Timing.CWL) {
		t.Errorf("RDMAC overlapped WRGB: %d <= %d", done2, done)
	}
}

func TestMACDoesNotUseDataBus(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	if _, err := ch.AllBankACT(0, 0); err != nil {
		t.Fatal(err)
	}
	before := ch.Stats().DataBusCycles
	for i := 0; i < 10; i++ {
		if _, err := ch.AllBankMAC(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := ch.Stats().DataBusCycles; got != before {
		t.Errorf("MAC consumed %d data-bus cycles, want 0", got-before)
	}
}

func TestAdvanceToMonotone(t *testing.T) {
	spec := smallSpec()
	ch := NewChannel(&spec)
	ch.AdvanceTo(500)
	if ch.Now() != 500 {
		t.Errorf("Now = %d after AdvanceTo(500)", ch.Now())
	}
	ch.AdvanceTo(100) // must not go backwards
	if ch.Now() != 500 {
		t.Errorf("AdvanceTo moved clock backwards to %d", ch.Now())
	}
}

func TestMACIntervalGovernsThroughput(t *testing.T) {
	spec := smallSpec()
	run := func(interval int) int64 {
		ch := NewChannel(&spec)
		ch.SetRefreshEnabled(false)
		if _, err := ch.AllBankACT(0, 0); err != nil {
			t.Fatal(err)
		}
		var last int64
		for i := 0; i < 64; i++ {
			at, err := ch.AllBankMAC(0, i, interval)
			if err != nil {
				t.Fatal(err)
			}
			last = at
		}
		return last
	}
	fast := run(1)
	slow := run(8)
	if slow < fast*4 {
		t.Errorf("interval 8 stream (%d) not ~8x slower than interval 1 (%d)", slow, fast)
	}
}
