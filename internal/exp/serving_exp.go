package exp

import (
	"context"
	"fmt"

	"facil/internal/engine"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// Serving evaluates perceived responsiveness under load: queries arrive
// over time and wait FCFS for the device, so designs with longer TTLT run
// closer to saturation at the same offered rate and their *perceived*
// TTFT degrades super-linearly. Not a paper figure — an extension showing
// how FACIL's latency advantage compounds in a serving setting. Arrival
// rates evaluate as independent sweep points, each comparing all designs.
func (l *Lab) Serving(ctx context.Context) (Table, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return Table{}, err
	}
	kinds := []engine.Kind{engine.SoCOnly, engine.HybridStatic, engine.HybridDynamic, engine.FACIL}
	tab := Table{
		ID:    "serving",
		Title: "Extension: perceived latency under serving load (Jetson, Alpaca traffic)",
		Header: []string{
			"arrival rate", "design", "perceived TTFT (mean)", "perceived TTFT (p99)",
			"utilization", "max queue",
		},
		Notes: []string{
			"perceived TTFT = queueing wait + TTFT; FCFS single device, 150 queries",
		},
	}
	rates := []float64{0.1, 0.3, 0.45}
	perRate, err := sweep(ctx, l, "serving", rates, func(ctx context.Context, rate float64) ([]serve.Summary, error) {
		cfg := serve.Config{
			ArrivalRate: rate,
			Queries:     150,
			Workload:    workload.AlpacaSpec(),
			Seed:        11,
		}
		return serve.Compare(ctx, s, kinds, cfg, l.sweepOpts("serving compare")...)
	})
	if err != nil {
		return Table{}, err
	}
	for ri, sums := range perRate {
		for _, sum := range sums {
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%.2f q/s", rates[ri]),
				sum.Kind.String(),
				ms(sum.PerceivedTTFTMean),
				ms(sum.PerceivedTTFTP99),
				pc(sum.Utilization),
				fmt.Sprintf("%d", sum.MaxQueueDepth),
			})
		}
	}
	return tab, nil
}
