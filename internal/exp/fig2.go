package exp

import (
	"fmt"

	"facil/internal/engine"
	"facil/internal/soc"
)

// Fig2a reproduces the decode-time breakdown of Fig. 2(a): one decode
// step of Llama3-8B on the Jetson SoC, split into the paper's categories.
func (l *Lab) Fig2a() (Table, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return Table{}, err
	}
	m := s.Model

	// Group the linear GEMVs the way the paper labels them.
	groups := []struct {
		label string
		match func(name string) bool
	}{
		{"Q/O proj", func(n string) bool { return n == "q_proj" || n == "o_proj" }},
		{"K/V proj", func(n string) bool { return n == "k_proj" || n == "v_proj" }},
		{"FC (gate/up)", func(n string) bool { return n == "gate_proj" || n == "up_proj" || n == "fc1" }},
		{"FC (down)", func(n string) bool { return n == "down_proj" || n == "fc2" }},
		{"LM head", func(n string) bool { return n == "lm_head" }},
	}
	times := make([]float64, len(groups))
	var linear float64
	for _, w := range m.WeightMatrices() {
		op := soc.Linear{L: 1, In: w.In, Out: w.Out, DTypeBytes: m.DTypeBytes}
		t := s.Platform.Seconds(op)
		if w.PerLayer {
			t *= float64(m.Layers)
		}
		linear += t
		for gi, g := range groups {
			if g.match(w.Name) {
				times[gi] += t
			}
		}
	}
	b, err := s.DecodeStepBreakdown(engine.SoCOnly, 64)
	if err != nil {
		return Table{}, err
	}
	total := linear + b.AttentionSeconds + b.OtherSeconds

	tab := Table{
		ID:     "fig2a",
		Title:  "Fig. 2(a): decode step time breakdown (Llama3-8B on Jetson SoC, ctx 64)",
		Header: []string{"component", "time", "share"},
	}
	for gi, g := range groups {
		tab.Rows = append(tab.Rows, []string{g.label, ms(times[gi]), pc(times[gi] / total)})
	}
	tab.Rows = append(tab.Rows,
		[]string{"attention (KV)", ms(b.AttentionSeconds), pc(b.AttentionSeconds / total)},
		[]string{"other (non-linear)", ms(b.OtherSeconds), pc(b.OtherSeconds / total)},
		[]string{"total", ms(total), pc(1)},
	)
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("linear ops take %.1f%% of the step; the paper reports >90%%", 100*linear/total))
	return tab, nil
}

// Fig2b reproduces Fig. 2(b): compute and memory-bandwidth utilization of
// the four Llama3-8B GEMV dimensions on the Jetson.
func (l *Lab) Fig2b() (Table, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return Table{}, err
	}
	m := s.Model
	dims := []struct {
		label   string
		in, out int
	}{
		{"4096x4096 (Q/O)", m.Hidden, m.Hidden},
		{"4096x1024 (K/V)", m.Hidden, m.KVDim()},
		{"4096x14336 (up/gate)", m.Hidden, m.Intermediate},
		{"14336x4096 (down)", m.Intermediate, m.Hidden},
	}
	tab := Table{
		ID:     "fig2b",
		Title:  "Fig. 2(b): GEMV compute vs memory utilization (Jetson)",
		Header: []string{"GEMV dim", "compute util", "memory BW util"},
	}
	for _, d := range dims {
		op := soc.Linear{L: 1, In: d.in, Out: d.out, DTypeBytes: m.DTypeBytes}
		u := s.Platform.UtilizationOf(op)
		tab.Rows = append(tab.Rows, []string{d.label, fmt.Sprintf("%.2f%%", 100*u.Compute), pc(u.Memory)})
	}
	tab.Notes = append(tab.Notes, "paper: compute utilization below 1%, memory bandwidth heavily utilized")
	return tab, nil
}
