package exp

import (
	"context"
	"fmt"
	"strconv"

	"facil/internal/addr"
	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/mapping"
	"facil/internal/pim"
	"facil/internal/soc"
)

// Ablation studies for the design choices DESIGN.md calls out.

// AblationRelayoutPolicy compares the two hybrid-baseline re-layout
// policies the paper discusses in Sec. III footnote 2: on-demand
// re-layout per matrix (the paper's baseline) versus re-laying all
// weights at each phase transition (which pays a second full re-layout
// when returning to the decode phase).
func (l *Lab) AblationRelayoutPolicy() (Table, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return Table{}, err
	}
	re, err := s.RelayoutAllWeightsSeconds()
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "ablations/relayout-policy",
		Title:  "Ablation: hybrid re-layout policy, TTLT on Jetson (Llama3-8B)",
		Header: []string{"prefill/decode", "on-demand", "all-at-once", "overhead"},
		Notes: []string{
			"all-at-once pays a second full re-layout when transitioning back to decode",
		},
	}
	for _, pd := range [][2]int{{16, 16}, {16, 64}, {64, 64}, {128, 32}} {
		onDemand, err := s.TTLTStatic(engine.HybridStatic, pd[0], pd[1])
		if err != nil {
			return Table{}, err
		}
		allAtOnce := onDemand + re
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("P%d/D%d", pd[0], pd[1]),
			fmt.Sprintf("%.3f s", onDemand),
			fmt.Sprintf("%.3f s", allAtOnce),
			x(allAtOnce / onDemand),
		})
	}
	return tab, nil
}

// AblationDynamicThreshold reports each platform's profiled prefill-length
// crossover between the PIM and SoC prefill routes, for the hybrid-dynamic
// baseline and for FACIL (Sec. VI-C). Platforms profile as independent
// sweep points.
func (l *Lab) AblationDynamicThreshold(ctx context.Context) (Table, error) {
	tab := Table{
		ID:     "ablations/offload-threshold",
		Title:  "Ablation: profiled prefill offload thresholds (SoC beats PIM at L >= threshold)",
		Header: []string{"platform", "hybrid dynamic", "FACIL"},
		Notes: []string{
			"FACIL's SoC route pays no re-layout, so it crosses over at shorter prefills",
		},
	}
	rows, err := sweep(ctx, l, "ablation-thresholds", soc.All(), func(ctx context.Context, p soc.Platform) ([]string, error) {
		s, err := l.System(p)
		if err != nil {
			return nil, err
		}
		hy, err := s.PrefillThreshold(engine.HybridDynamic)
		if err != nil {
			return nil, err
		}
		fa, err := s.PrefillThreshold(engine.FACIL)
		if err != nil {
			return nil, err
		}
		return []string{p.Name, strconv.Itoa(hy), strconv.Itoa(fa)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	tab.Rows = rows
	return tab, nil
}

// relayoutStream builds the mixed read(PIM)/write(conventional) burst
// stream used for re-layout measurements on a spec. The requests are
// values: replays read them through dram.SliceSource without mutating
// them, so one stream can feed many sweep points concurrently.
func relayoutStream(spec dram.Spec, bytes int64) ([]dram.Request, error) {
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mc, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		return nil, err
	}
	minID, _ := tab.Range()
	src := tab.Lookup(minID)
	dst := tab.Conventional()
	tb := int64(spec.Geometry.TransferBytes)
	dstBase := uint64(spec.Geometry.CapacityBytes() / 2)
	reqs := make([]dram.Request, 0, 2*bytes/tb)
	for i := int64(0); i < bytes/tb; i++ {
		pa := uint64(i) * uint64(tb)
		ra, _ := src.Translate(pa)
		wa, _ := dst.Translate(dstBase + pa)
		reqs = append(reqs, dram.Request{Addr: ra}, dram.Request{Addr: wa, Write: true})
	}
	return reqs, nil
}

// AblationSchedulerWindow measures how the memory controller's FR-FCFS
// reorder window affects the achieved re-layout bandwidth — the scheduling
// headroom the baseline's re-layout cost estimate depends on. Windows
// measure as independent sweep points over fresh controllers.
func (l *Lab) AblationSchedulerWindow(ctx context.Context) (Table, error) {
	spec := dram.JetsonOrinLPDDR5
	reqs, err := relayoutStream(spec, 4<<20)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "ablations/scheduler-window",
		Title:  "Ablation: FR-FCFS reorder window vs re-layout bandwidth (Jetson memory)",
		Header: []string{"window", "bandwidth", "row hit rate"},
	}
	rows, err := sweep(ctx, l, "ablation-window", []int{1, 4, 16, 32, 128}, func(ctx context.Context, w int) ([]string, error) {
		// SliceSource replays enqueue by value, so sweep points share the
		// request slice without copies or write races.
		res, err := dram.MeasureStreamFuncWindow(spec, dram.SliceSource(reqs), w)
		if err != nil {
			return nil, err
		}
		return []string{
			strconv.Itoa(w),
			fmt.Sprintf("%.1f GB/s", res.BandwidthGBs),
			pc(res.RowHitRate),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	tab.Rows = rows
	return tab, nil
}

// AblationRowPolicy compares open-row and close-row (auto-precharge) bank
// management on sequential and random traffic — the classic DRAM policy
// tradeoff the re-layout and GEMM-stream models sit on top of. The four
// (traffic, policy) combinations run as independent sweep points.
func (l *Lab) AblationRowPolicy(ctx context.Context) (Table, error) {
	spec := dram.IPhoneLPDDR5
	g := spec.Geometry
	run := func(policy dram.RowPolicy, random bool) (float64, error) {
		ctl, err := dram.NewController(spec)
		if err != nil {
			return 0, err
		}
		ctl.SetRefreshEnabled(false)
		for i := 0; i < g.Channels; i++ {
			ctl.Channel(i).SetRowPolicy(policy)
		}
		rng := newDetRand(77)
		const n = 16384
		for i := 0; i < n; i++ {
			var a dram.Addr
			if random {
				a = dram.Addr{
					Channel: rng.Intn(g.Channels),
					Rank:    rng.Intn(g.RanksPerChannel),
					Bank:    rng.Intn(g.BanksPerRank),
					Row:     rng.Intn(g.Rows),
					Column:  rng.Intn(g.ColumnsPerRow()),
				}
			} else {
				a = dram.Addr{
					Channel: i % g.Channels,
					Bank:    i / g.Channels % g.BanksPerRank,
					Row:     i / (g.Channels * g.BanksPerRank * 64) % g.Rows,
					Column:  i / (g.Channels * g.BanksPerRank) % 64,
				}
			}
			if err := ctl.EnqueueValue(dram.Request{Addr: a}); err != nil {
				return 0, err
			}
		}
		cycles := ctl.Drain()
		bytes := float64(n * g.TransferBytes)
		return bytes / spec.Timing.Seconds(cycles) / 1e9, nil
	}
	type combo struct {
		policy dram.RowPolicy
		random bool
	}
	var points []combo
	for _, random := range []bool{false, true} {
		for _, policy := range []dram.RowPolicy{dram.OpenRow, dram.CloseRow} {
			points = append(points, combo{policy: policy, random: random})
		}
	}
	bws, err := sweep(ctx, l, "ablation-rowpolicy", points, func(ctx context.Context, c combo) (float64, error) {
		return run(c.policy, c.random)
	})
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "ablations/row-policy",
		Title:  "Ablation: row-buffer policy vs traffic pattern (iPhone memory)",
		Header: []string{"traffic", "open-row", "close-row (auto-precharge)"},
		Notes: []string{
			"close-row hides precharge latency on random traffic; open-row wins on streams",
		},
	}
	for i, label := range []string{"sequential", "random"} {
		tab.Rows = append(tab.Rows, []string{
			label,
			fmt.Sprintf("%.1f GB/s", bws[2*i]),
			fmt.Sprintf("%.1f GB/s", bws[2*i+1]),
		})
	}
	return tab, nil
}

// AblationConventionalMapping compares sequential-read bandwidth across
// candidate conventional mappings, verifying the paper's choice of
// row:rank:column:bank:channel (Sec. VI-A). Layouts measure as
// independent sweep points.
func (l *Lab) AblationConventionalMapping(ctx context.Context) (Table, error) {
	spec := dram.JetsonOrinLPDDR5
	layouts := []string{
		"row:rank:column:bank:channel", // the paper's (channel bits at LSB)
		"row:rank:bank:column:channel",
		"row:column:rank:bank:channel",
		"row:rank:channel:bank:column", // column at LSB: single-bank streaks
		"channel:bank:rank:row:column", // interleave at MSB: pathological
	}
	tab := Table{
		ID:     "ablations/conventional-mapping",
		Title:  "Ablation: conventional mapping choice vs sequential read bandwidth (Jetson memory)",
		Header: []string{"mapping (MSB->LSB)", "bandwidth", "of peak"},
		Notes: []string{
			"the paper verifies row:rank:column:bank:channel reaches near-peak sequential bandwidth",
		},
	}
	tb := int64(spec.Geometry.TransferBytes)
	rows, err := sweep(ctx, l, "ablation-convmap", layouts, func(ctx context.Context, layout string) ([]string, error) {
		m, err := addr.FromLayout(spec.Geometry, layout)
		if err != nil {
			return nil, err
		}
		n := (8 << 20) / tb
		var i int64
		res, err := dram.MeasureStreamFunc(spec, func(r *dram.Request) bool {
			if i >= n {
				return false
			}
			a, _ := m.Translate(uint64(i) * uint64(tb))
			*r = dram.Request{Addr: a}
			i++
			return true
		})
		if err != nil {
			return nil, err
		}
		return []string{
			layout,
			fmt.Sprintf("%.1f GB/s", res.BandwidthGBs),
			pc(res.BandwidthGBs / spec.PeakBandwidthGBs()),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	tab.Rows = rows
	return tab, nil
}

// AblationXORHashing measures the DRAM-level effect of XOR bank hashing
// on pathological strided traffic: a stride equal to one bank's row span
// serializes on a single bank under the plain conventional mapping, while
// folding row bits into the bank index restores bank-level parallelism.
// The hash leaves FACIL's PIM mappings untouched (lock-step placement
// needs clean PU bits), so the two features compose per MapID.
func AblationXORHashing() (Table, error) {
	spec := dram.IPhoneLPDDR5
	g := spec.Geometry
	base, err := addr.Conventional(g)
	if err != nil {
		return Table{}, err
	}
	hashed, err := addr.WithXOR(base, []addr.XORPair{
		{Target: addr.FieldBank, TargetBit: 0, RowBit: 0},
		{Target: addr.FieldBank, TargetBit: 1, RowBit: 1},
		{Target: addr.FieldBank, TargetBit: 2, RowBit: 2},
		{Target: addr.FieldBank, TargetBit: 3, RowBit: 3},
	})
	if err != nil {
		return Table{}, err
	}
	stride := int64(g.RowBytes * g.BanksPerRank * g.Channels * g.RanksPerChannel)
	type translator interface {
		Translate(uint64) (dram.Addr, int)
	}
	run := func(m translator) (float64, error) {
		var i int64
		res, err := dram.MeasureStreamFunc(spec, func(r *dram.Request) bool {
			if i >= 4096 {
				return false
			}
			a, _ := m.Translate(uint64(i*stride) % uint64(g.CapacityBytes()))
			*r = dram.Request{Addr: a, Arrival: i / int64(g.Channels)}
			i++
			return true
		})
		if err != nil {
			return 0, err
		}
		return res.BandwidthGBs, nil
	}
	plainBW, err := run(base)
	if err != nil {
		return Table{}, err
	}
	hashedBW, err := run(hashed)
	if err != nil {
		return Table{}, err
	}
	return Table{
		ID:     "ablations/xor-hashing",
		Title:  "Ablation: XOR bank hashing vs pathological stride bandwidth (iPhone memory)",
		Header: []string{"conventional mapping", "bandwidth", "of peak"},
		Rows: [][]string{
			{"plain row:rank:column:bank:channel", fmt.Sprintf("%.1f GB/s", plainBW), pc(plainBW / spec.PeakBandwidthGBs())},
			{"with 4-bit XOR bank hash", fmt.Sprintf("%.1f GB/s", hashedBW), pc(hashedBW / spec.PeakBandwidthGBs())},
		},
		Notes: []string{
			fmt.Sprintf("stride = %d B (one bank's row span); hashing recovers %.1fx bandwidth", stride, hashedBW/plainBW),
		},
	}, nil
}

// AblationGEMMStreams sweeps the concurrency of the GEMM weight stream in
// the Table III layout-slowdown model, showing that the PIM layout only
// hurts kernels whose in-flight row coverage misaligns with the PU space —
// and that the default (RowsPerPass-aligned) operating point matches the
// paper's small measured slowdowns.
func (l *Lab) AblationGEMMStreams(ctx context.Context) (Table, error) {
	p := soc.Jetson
	op := soc.Linear{L: 16, In: 4096, Out: 4096, DTypeBytes: 2}
	tab := Table{
		ID:     "ablations/gemm-streams",
		Title:  "Ablation: GEMM stream concurrency vs PIM-layout memory slowdown (Jetson)",
		Header: []string{"streams", "memory slowdown"},
		Notes: []string{
			"0 = auto (RowsPerPass-aligned tile, the default operating point)",
		},
	}
	rows, err := sweep(ctx, l, "ablation-streams", []int{32, 128, 0, 512, 1024}, func(ctx context.Context, streams int) ([]string, error) {
		mem, _, err := soc.MeasureLayoutSlowdown(p, op, soc.LayoutSlowdownConfig{Streams: streams})
		if err != nil {
			return nil, err
		}
		label := strconv.Itoa(streams)
		if streams == 0 {
			label = "auto"
		}
		return []string{label, pc(mem)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	tab.Rows = rows
	return tab, nil
}

// AblationMACInterval sweeps the PIM MAC cadence and reports the decode
// speedup over the ideal NPU — documenting the calibration behind the
// default of 6 burst cycles (paper Fig. 3 implies ~3.3x). Each interval
// builds its own (serial) lab, so intervals sweep independently.
func (l *Lab) AblationMACInterval(ctx context.Context) (Table, error) {
	tab := Table{
		ID:     "ablations/mac-interval",
		Title:  "Ablation: PIM MAC interval calibration (Jetson, Llama3-8B, 64+64 tokens)",
		Header: []string{"MAC interval (burst cycles)", "internal BW", "PIM vs ideal NPU"},
		Notes: []string{
			"default interval 6 reproduces the paper's Fig. 3 ratio (3.32x)",
		},
	}
	rows, err := sweep(ctx, l, "ablation-mac", []int{2, 4, 6, 8, 12}, func(ctx context.Context, interval int) ([]string, error) {
		cfg := engine.DefaultConfig()
		pimCfg := pim.DefaultAiM(soc.Jetson.Spec.Geometry)
		pimCfg.MACIntervalCycles = interval
		cfg.PIM = &pimCfg
		lab := NewLab(cfg)
		lab.SetParallelism(1)
		r, err := lab.Fig3Compute()
		if err != nil {
			return nil, err
		}
		return []string{
			strconv.Itoa(interval),
			fmt.Sprintf("%.0f GB/s", pimCfg.InternalBandwidthGBs(soc.Jetson.Spec)),
			x(r.SpeedupVsIdealNPU),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	tab.Rows = rows
	return tab, nil
}
