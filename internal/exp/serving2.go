package exp

import (
	"context"
	"fmt"

	"facil/internal/engine"
	"facil/internal/parallel"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// Serving2Config parameterizes the event-driven cooperative serving
// sweep: arrival rate x replica count x lane-scheduling mode.
type Serving2Config struct {
	// Rates are the offered loads in queries/second.
	Rates []float64
	// Replicas are the device-fleet sizes swept.
	Replicas []int
	// Modes are the lane schedulers compared (serial baseline, FACIL
	// cooperative, re-layout hybrid).
	Modes []serve.Mode
	// Queries, Seed and Workload shape the traffic of every point.
	Queries  int
	Seed     int64
	Workload workload.Spec
	// QueueCap bounds the admission queue (0 = unbounded).
	QueueCap int
	// DeadlineTTLT is the goodput SLO in seconds (0 = none).
	DeadlineTTLT float64
	// PreemptSteps is the decode-lane quantum (0 = serve default).
	PreemptSteps int
}

// DefaultServing2Config mirrors the old serving extension's traffic
// (Alpaca arrivals on the Jetson) with a bounded queue and a TTLT SLO.
func DefaultServing2Config() Serving2Config {
	return Serving2Config{
		Rates:        []float64{0.2, 0.5},
		Replicas:     []int{1, 2},
		Modes:        serve.Modes(),
		Queries:      120,
		Seed:         11,
		Workload:     workload.AlpacaSpec(),
		QueueCap:     64,
		DeadlineTTLT: 20,
	}
}

// Serving2Kind maps a scheduling mode to the design whose latency model
// drives it: the re-layout hybrid is the paper's baseline, everything
// else runs FACIL (one weight copy, both processors).
func Serving2Kind(m serve.Mode) engine.Kind {
	if m == serve.RelayoutHybrid {
		return engine.HybridStatic
	}
	return engine.FACIL
}

// serving2Point is one (mode, rate, replicas) cell of the grid.
type serving2Point struct {
	mode     serve.Mode
	rate     float64
	replicas int
}

// serving2Points enumerates the grid mode-major so related rows group
// together in the rendered table.
func serving2Points(cfg Serving2Config) []serving2Point {
	var points []serving2Point
	for _, m := range cfg.Modes {
		for _, r := range cfg.Rates {
			for _, rep := range cfg.Replicas {
				points = append(points, serving2Point{mode: m, rate: r, replicas: rep})
			}
		}
	}
	return points
}

// Serving2Compute evaluates the full grid. Every point owns its arrival
// process (the RNG is seeded inside serve.Run), so points are
// independent sweep units and results are byte-identical at any
// parallelism. When the lab carries a tracer, every point records its
// timeline into it on a disjoint, deterministic pid block (labelled
// "mode rate xreplicas" in the trace), so one Perfetto file shows the
// whole sweep side by side.
func (l *Lab) Serving2Compute(ctx context.Context, cfg Serving2Config) ([]serve.Metrics, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return nil, err
	}
	points := serving2Points(cfg)
	// Pid blocks are assigned up front (replicas+1 tracks per point:
	// the replicas plus the admission-queue counter), keeping traces
	// deterministic at any sweep parallelism.
	pidBase := make([]int64, len(points))
	var next int64
	for i, pt := range points {
		pidBase[i] = next
		next += int64(pt.replicas) + 1
	}
	return parallel.Sweep(ctx, indexes(len(points)), func(ctx context.Context, i int) (serve.Metrics, error) {
		if err := ctx.Err(); err != nil {
			return serve.Metrics{}, err
		}
		pt := points[i]
		return serve.Run(s, serve.SimConfig{
			Mode:         pt.mode,
			Kind:         Serving2Kind(pt.mode),
			Replicas:     pt.replicas,
			ArrivalRate:  pt.rate,
			Queries:      cfg.Queries,
			Workload:     cfg.Workload,
			Seed:         cfg.Seed,
			QueueCap:     cfg.QueueCap,
			DeadlineTTLT: cfg.DeadlineTTLT,
			PreemptSteps: cfg.PreemptSteps,
			Tracer:       l.tracer,
			TracePIDBase: pidBase[i],
			TraceLabel:   fmt.Sprintf("%s %.2fq/s x%d", pt.mode, pt.rate, pt.replicas),
		})
	}, l.sweepOpts("serving2")...)
}

// indexes returns [0, 1, ..., n).
func indexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Serving2 renders the cooperative-serving comparison table.
func (l *Lab) Serving2(ctx context.Context, cfg Serving2Config) (Table, error) {
	mets, err := l.Serving2Compute(ctx, cfg)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:    "serving2",
		Title: "Extension: event-driven SoC/PIM cooperative serving (Jetson, " + cfg.Workload.Name + " traffic)",
		Header: []string{
			"mode", "rate", "replicas", "TTFT p50", "TTFT p99", "TBT p99",
			"TTLT p95", "throughput", "goodput", "rejected", "util SoC/PIM", "mean depth",
		},
		Notes: []string{
			fmt.Sprintf("%d queries/point, queue cap %d, TTLT SLO %.0f s; decode quantum %d steps",
				cfg.Queries, cfg.QueueCap, cfg.DeadlineTTLT, effectiveQuantum(cfg.PreemptSteps)),
			"serial mode reproduces the legacy closed-form queue (see serve.TestSerialMatchesLegacySimulate)",
		},
	}
	points := serving2Points(cfg)
	for i, m := range mets {
		tab.Rows = append(tab.Rows, []string{
			m.Mode.String(),
			fmt.Sprintf("%.2f q/s", points[i].rate),
			fmt.Sprintf("%d", m.Replicas),
			ms(m.TTFT.P50),
			ms(m.TTFT.P99),
			ms(m.TBT.P99),
			ms(m.TTLT.P95),
			fmt.Sprintf("%.3f q/s", m.ThroughputQPS),
			fmt.Sprintf("%.3f q/s", m.GoodputQPS),
			fmt.Sprintf("%d", m.Rejected),
			fmt.Sprintf("%s/%s", pc(m.SoCUtilization), pc(m.PIMUtilization)),
			fmt.Sprintf("%.2f", m.QueueDepth.Mean()),
		})
	}
	return tab, nil
}

// effectiveQuantum echoes serve's default resolution for the notes line.
func effectiveQuantum(q int) int {
	if q == 0 {
		return serve.DefaultPreemptSteps
	}
	return q
}
