package exp

import (
	"fmt"

	"facil/internal/engine"
	"facil/internal/soc"
)

// Fig3Result carries the Fig. 3 speedups.
type Fig3Result struct {
	GPUSeconds      float64
	IdealNPUSeconds float64
	PIMSeconds      float64
	// SpeedupVsGPU and SpeedupVsIdealNPU are end-to-end decode-phase
	// speedups (64 tokens, seq 64).
	SpeedupVsGPU      float64
	SpeedupVsIdealNPU float64
}

// Fig3Compute evaluates Fig. 3: decode of 64 tokens (input and output
// length 64) of Llama3-8B on Jetson, with GEMV offloaded to AiM-style PIM,
// compared against the GPU and against an ideal NPU with infinite FLOPS
// and 100% peak-bandwidth utilization.
func (l *Lab) Fig3Compute() (Fig3Result, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return Fig3Result{}, err
	}
	const prefill, decode = 64, 64
	var r Fig3Result
	for step := 0; step < decode; step++ {
		ctx := prefill + step
		gpu, err := s.DecodeStepSeconds(engine.SoCOnly, ctx)
		if err != nil {
			return Fig3Result{}, err
		}
		pim, err := s.DecodeStepSeconds(engine.FACIL, ctx)
		if err != nil {
			return Fig3Result{}, err
		}
		r.GPUSeconds += gpu
		r.PIMSeconds += pim
		r.IdealNPUSeconds += s.IdealNPUDecodeStepSeconds(ctx)
	}
	r.SpeedupVsGPU = r.GPUSeconds / r.PIMSeconds
	r.SpeedupVsIdealNPU = r.IdealNPUSeconds / r.PIMSeconds
	return r, nil
}

// Fig3 renders Fig3Compute.
func (l *Lab) Fig3() (Table, error) {
	r, err := l.Fig3Compute()
	if err != nil {
		return Table{}, err
	}
	return Table{
		ID:     "fig3",
		Title:  "Fig. 3: PIM potential for decode (Llama3-8B on Jetson, 64+64 tokens)",
		Header: []string{"executor", "decode time", "speedup vs GPU"},
		Rows: [][]string{
			{"GPU (SoC only)", fmt.Sprintf("%.2f s", r.GPUSeconds), x(1)},
			{"ideal NPU (peak-BW bound)", fmt.Sprintf("%.2f s", r.IdealNPUSeconds), x(r.GPUSeconds / r.IdealNPUSeconds)},
			{"AiM-style PIM", fmt.Sprintf("%.2f s", r.PIMSeconds), x(r.SpeedupVsGPU)},
		},
		Notes: []string{
			fmt.Sprintf("PIM over ideal NPU: %.2fx (paper: 3.32x)", r.SpeedupVsIdealNPU),
		},
	}, nil
}
