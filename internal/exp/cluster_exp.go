package exp

import (
	"context"
	"fmt"

	"facil/internal/cluster"
	"facil/internal/engine"
	"facil/internal/pim"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// ClusterConfig parameterizes the fleet-scale serving experiment: one
// heterogeneous device fleet, one arrival stream, and a sweep over
// balancing strategies — every strategy faces byte-identical arrivals,
// lengths, priority classes and fault schedules, so the comparison
// isolates routing.
type ClusterConfig struct {
	// Strategies are the balancing strategies swept (table rows).
	Strategies []cluster.StrategyKind
	// Fleet is the device-class roster (see cluster.ParseFleet for the
	// textual form).
	Fleet []cluster.DeviceClass
	// Rate is the cluster-wide offered load in queries/second; Queries,
	// Seed and Workload shape the traffic as in the other serving
	// sweeps.
	Rate     float64
	Queries  int
	Seed     int64
	Workload workload.Spec
	// SyncInterval, QueueCap, DeadlineTTLT, Policy and the breaker/
	// fault knobs mirror cluster.Config.
	SyncInterval           float64
	QueueCap               int
	DeadlineTTLT           float64
	Policy                 serve.Policy
	BreakerThreshold       int
	BreakerCooldown        float64
	DeviceBreakerThreshold int
	FaultMTBF              float64
	FaultMTTR              float64
	FaultFraction          float64
	FaultSeed              int64
	// Migration, when set, additionally runs every strategy with
	// cross-device work stealing enabled (cluster.Config.Steal): each
	// strategy contributes a second "+steal" summary row over the same
	// arrivals and fault schedules, so the table reads as a paired
	// with/without-migration comparison.
	Migration bool
	// StealThreshold is the in-system depth that triggers stealing from
	// a healthy device on the "+steal" rows (0 = breaker-driven
	// evacuation only; mirrors cluster.Config.StealThreshold).
	StealThreshold int
	// LatencySteal picks steal destinations by the TTFT-EWMA
	// expected-wait proxy instead of least-depth (mirrors
	// cluster.Config.LatencySteal).
	LatencySteal bool
}

// DefaultClusterConfig is the acceptance-scale fleet: 104 devices across
// the four platforms (26 each, the IdeaPad class carrying a derated PIM
// stack), 1e5 queries at 26 q/s — a quarter query per device-second —
// with a fifth of the fleet on a lane-fault diet and router health
// breakers armed.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Strategies: cluster.Strategies(),
		Fleet: []cluster.DeviceClass{
			{Platform: soc.Jetson, Count: 26},
			{Platform: soc.Macbook, Count: 26},
			{Platform: soc.IdeaPad, Count: 26, MACIntervalCycles: 8},
			{Platform: soc.IPhone, Count: 26},
		},
		Rate:                   26,
		Queries:                100000,
		Seed:                   11,
		Workload:               workload.AlpacaSpec(),
		SyncInterval:           5,
		QueueCap:               16,
		DeadlineTTLT:           30,
		Policy:                 serve.PolicySoCFallback,
		BreakerThreshold:       2,
		BreakerCooldown:        60,
		DeviceBreakerThreshold: 3,
		FaultMTBF:              900,
		FaultMTTR:              30,
		FaultFraction:          0.2,
		FaultSeed:              99,
		Migration:              true,
		StealThreshold:         12,
		LatencySteal:           true,
	}
}

// clusterSystem returns (building and caching on first use) the stack
// for one device class, sharing the lab's per-platform system when the
// class keeps the default PIM configuration and keying MAC-interval
// overrides separately.
func (l *Lab) clusterSystem(c cluster.DeviceClass) (*engine.System, error) {
	if c.MACIntervalCycles == 0 {
		return l.System(c.Platform)
	}
	key := fmt.Sprintf("%s/mac%d", c.Platform.Name, c.MACIntervalCycles)
	l.mu.Lock()
	e, ok := l.systems[key]
	if !ok {
		e = &systemEntry{}
		l.systems[key] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		cfg := l.cfg
		p := pim.DefaultAiM(c.Platform.Spec.Geometry)
		p.MACIntervalCycles = c.MACIntervalCycles
		cfg.PIM = &p
		e.s, e.err = engine.NewSystem(c.Platform, PlatformModel(c.Platform), cfg)
	})
	return e.s, e.err
}

// clusterConfig lowers one strategy's cell to a cluster.Config.
func (cfg ClusterConfig) clusterConfig(k cluster.StrategyKind, par int, steal bool) cluster.Config {
	return cluster.Config{
		Strategy:               k,
		ArrivalRate:            cfg.Rate,
		Queries:                cfg.Queries,
		Workload:               cfg.Workload,
		Seed:                   cfg.Seed,
		SyncInterval:           cfg.SyncInterval,
		QueueCap:               cfg.QueueCap,
		DeadlineTTLT:           cfg.DeadlineTTLT,
		Policy:                 cfg.Policy,
		BreakerThreshold:       cfg.BreakerThreshold,
		BreakerCooldown:        cfg.BreakerCooldown,
		DeviceBreakerThreshold: cfg.DeviceBreakerThreshold,
		FaultMTBF:              cfg.FaultMTBF,
		FaultMTTR:              cfg.FaultMTTR,
		FaultFraction:          cfg.FaultFraction,
		FaultSeed:              cfg.FaultSeed,
		Steal:                  steal,
		StealThreshold:         cfg.StealThreshold,
		LatencySteal:           cfg.LatencySteal,
		Parallelism:            par,
	}
}

// clusterRuns expands the strategy sweep into (strategy, steal) cells:
// with Migration on, each strategy runs plain and again with stealing,
// adjacent in the output so the rows read as paired comparisons.
func (cfg ClusterConfig) clusterRuns() []cluster.StrategyKind {
	if !cfg.Migration {
		return cfg.Strategies
	}
	runs := make([]cluster.StrategyKind, 0, 2*len(cfg.Strategies))
	for _, k := range cfg.Strategies {
		runs = append(runs, k, k)
	}
	return runs
}

// ClusterCompute evaluates every strategy over one shared fleet (twice
// per strategy — without and with stealing — when Migration is on). The
// runs execute sequentially: each cluster run already fans its devices
// out over the lab's worker bound between telemetry barriers, and
// results are byte-identical at any parallelism (the cluster merge's
// determinism, not the sweep order, carries the guarantee).
func (l *Lab) ClusterCompute(ctx context.Context, cfg ClusterConfig) ([]cluster.Metrics, error) {
	fl, err := cluster.NewFleet(cfg.Fleet, l.clusterSystem)
	if err != nil {
		return nil, err
	}
	runs := cfg.clusterRuns()
	mets := make([]cluster.Metrics, len(runs))
	for i, k := range runs {
		steal := cfg.Migration && i%2 == 1
		m, err := cluster.Run(ctx, fl, cfg.clusterConfig(k, l.par, steal))
		if err != nil {
			return nil, err
		}
		mets[i] = m
		if fn := l.progress; fn != nil {
			fn("cluster", i+1, len(runs))
		}
	}
	return mets, nil
}

// Cluster renders the fleet-scale routing comparison: a strategy
// summary table and a per-device-class breakdown.
func (l *Lab) Cluster(ctx context.Context, cfg ClusterConfig) ([]Table, error) {
	mets, err := l.ClusterCompute(ctx, cfg)
	if err != nil {
		return nil, err
	}
	devices := 0
	for _, c := range cfg.Fleet {
		devices += c.Count
	}
	summary := Table{
		ID: "cluster",
		Title: fmt.Sprintf("Extension: fleet-scale heterogeneous serving (%d devices, %s traffic)",
			devices, cfg.Workload.Name),
		Header: []string{
			"strategy", "routed", "stolen", "shed (i/s/b)", "completed", "rejected", "failed",
			"degraded", "health opens", "TTFT p50", "TTFT p99", "TTLT p95", "goodput", "makespan",
		},
		Notes: []string{
			fmt.Sprintf("%d queries at %.1f q/s cluster-wide; per-device queue cap %d, TTLT SLO %.0f s, telemetry barrier every %.0f s",
				cfg.Queries, cfg.Rate, cfg.QueueCap, cfg.DeadlineTTLT, cfg.SyncInterval),
			fmt.Sprintf("router health breakers: threshold %d, cooldown %.0f s; device policy %s",
				cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Policy),
			fmt.Sprintf("faults: %.0f%% of devices draw PIM-lane outages (MTBF %.0f s, MTTR %.0f s, seed %d)",
				100*cfg.FaultFraction, cfg.FaultMTBF, cfg.FaultMTTR, cfg.FaultSeed),
			"goodput is the fraction of offered queries completed within the SLO; shed splits by priority class (interactive/standard/batch)",
			"every strategy faces byte-identical arrivals, lengths, classes and fault schedules",
		},
	}
	if cfg.Migration {
		dest := "least-loaded destinations"
		if cfg.LatencySteal {
			dest = "destinations scored by TTFT-EWMA x (depth+1)"
		}
		summary.Notes = append(summary.Notes,
			fmt.Sprintf("\"+steal\" rows re-run the strategy with cross-device migration: barrier re-route phases evacuate breaker-open devices and steal queued work from devices deeper than %d in-system onto %s; stolen counts migrations (prefilled moves pay the KV handoff penalty)",
				cfg.StealThreshold, dest))
	}
	classes := Table{
		ID:     "cluster/classes",
		Title:  "Fleet breakdown by device class",
		Header: []string{"strategy", "class", "devices", "routed", "completed", "rejected", "TTFT p50", "TTFT p99", "PIM util", "availability"},
	}
	for _, m := range mets {
		label := m.Strategy.String()
		if m.Steal {
			label += "+steal"
		}
		summary.Rows = append(summary.Rows, []string{
			label,
			fmt.Sprintf("%d", m.Routed),
			fmt.Sprintf("%d", m.Stolen),
			fmt.Sprintf("%d/%d/%d", m.ShedByClass[cluster.Interactive], m.ShedByClass[cluster.Standard], m.ShedByClass[cluster.Batch]),
			fmt.Sprintf("%d", m.Completed),
			fmt.Sprintf("%d", m.Rejected),
			fmt.Sprintf("%d", m.Failed),
			fmt.Sprintf("%d", m.Degraded),
			fmt.Sprintf("%d", m.BreakerOpens),
			ms(m.TTFT.P50),
			ms(m.TTFT.P99),
			ms(m.TTLT.P95),
			pc(float64(m.SLOMet) / float64(m.Queries)),
			fmt.Sprintf("%.0f s", m.Makespan),
		})
		for _, pcm := range m.PerClass {
			classes.Rows = append(classes.Rows, []string{
				label,
				pcm.Class,
				fmt.Sprintf("%d", pcm.Devices),
				fmt.Sprintf("%d", pcm.Routed),
				fmt.Sprintf("%d", pcm.Completed),
				fmt.Sprintf("%d", pcm.Rejected),
				ms(pcm.TTFT.P50),
				ms(pcm.TTFT.P99),
				pc(pcm.PIMUtilization),
				pc(pcm.Availability),
			})
		}
	}
	return []Table{summary, classes}, nil
}
