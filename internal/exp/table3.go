package exp

import (
	"context"
	"fmt"

	"facil/internal/soc"
)

// Table3Row is one (platform, layer, prefill) slowdown measurement.
type Table3Row struct {
	Platform string
	Layer    string
	Prefill  int
	// MemSlowdown is the raw DRAM-bandwidth degradation of the weight
	// stream on the PIM layout; OpSlowdown scales it by the op's
	// memory-bound fraction (what the paper's Table III reports).
	MemSlowdown float64
	OpSlowdown  float64
}

// table3Point is one (platform, layer shape, prefill) measurement.
type table3Point struct {
	platform soc.Platform
	layer    string
	in, out  int
	dtype    int
	prefill  int
}

// table3Points enumerates the measurement grid in render order.
func table3Points() []table3Point {
	var points []table3Point
	for _, p := range soc.All() {
		m := PlatformModel(p)
		type layer struct {
			name    string
			in, out int
		}
		var layers []layer
		if m.KVDim() != m.Hidden {
			layers = append(layers,
				layer{"Q/O proj", m.Hidden, m.Hidden},
				layer{"K/V proj", m.Hidden, m.KVDim()},
			)
		} else {
			layers = append(layers, layer{"Q/K/V/O proj", m.Hidden, m.Hidden})
		}
		layers = append(layers,
			layer{"FC1", m.Hidden, m.Intermediate},
			layer{"FC2", m.Intermediate, m.Hidden},
		)
		for _, ly := range layers {
			for _, pf := range []int{4, 16, 64} {
				points = append(points, table3Point{
					platform: p,
					layer:    ly.name,
					in:       ly.in,
					out:      ly.out,
					dtype:    m.DTypeBytes,
					prefill:  pf,
				})
			}
		}
	}
	return points
}

// Table3Compute measures the GEMM slowdown on the PIM-optimized layout
// for every platform's layer shapes at prefill lengths {4, 16, 64},
// replacing the paper's GPGPU-Sim/ONNXim experiments with the in-repo
// DRAM-contention model. Every (platform, layer, prefill) measurement is
// an independent sweep point.
func (l *Lab) Table3Compute(ctx context.Context, cfg soc.LayoutSlowdownConfig) ([]Table3Row, error) {
	return sweep(ctx, l, "tab3", table3Points(), func(ctx context.Context, pt table3Point) (Table3Row, error) {
		op := soc.Linear{L: pt.prefill, In: pt.in, Out: pt.out, DTypeBytes: pt.dtype}
		mem, opS, err := soc.MeasureLayoutSlowdown(pt.platform, op, cfg)
		if err != nil {
			return Table3Row{}, fmt.Errorf("exp: table3 %s %s P%d: %w", pt.platform.Name, pt.layer, pt.prefill, err)
		}
		return Table3Row{
			Platform:    pt.platform.Name,
			Layer:       pt.layer,
			Prefill:     pt.prefill,
			MemSlowdown: mem,
			OpSlowdown:  opS,
		}, nil
	})
}

// Table3 renders the slowdown grid.
func (l *Lab) Table3(ctx context.Context, cfg soc.LayoutSlowdownConfig) (Table, error) {
	rows, err := l.Table3Compute(ctx, cfg)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "tab3",
		Title:  "Table III: GEMM slowdown on PIM-optimized layout",
		Header: []string{"platform", "layer", "P4", "P16", "P64"},
		Notes: []string{
			"paper worst cases: Jetson 2.1%, MacBook 0.1%, IdeaPad 1.1%, iPhone 1.6%",
			"substitution: DRAM-contention stream model replaces GPGPU-Sim/ONNXim",
		},
	}
	// Group rows by (platform, layer).
	type key struct{ p, l string }
	byKey := map[key][3]float64{}
	var order []key
	for _, r := range rows {
		k := key{r.Platform, r.Layer}
		v, ok := byKey[k]
		if !ok {
			order = append(order, k)
		}
		switch r.Prefill {
		case 4:
			v[0] = r.OpSlowdown
		case 16:
			v[1] = r.OpSlowdown
		case 64:
			v[2] = r.OpSlowdown
		}
		byKey[k] = v
	}
	for _, k := range order {
		v := byKey[k]
		tab.Rows = append(tab.Rows, []string{k.p, k.l, pc(v[0]), pc(v[1]), pc(v[2])})
	}
	return tab, nil
}

// Table3WorstCase returns the per-platform worst-case op slowdown, the
// constant the engine applies conservatively to all FACIL GEMMs.
func Table3WorstCase(rows []Table3Row) map[string]float64 {
	worst := map[string]float64{}
	for _, r := range rows {
		if r.OpSlowdown > worst[r.Platform] {
			worst[r.Platform] = r.OpSlowdown
		}
	}
	return worst
}
