// Package exp regenerates every table and figure of the paper's
// evaluation (plus the motivation figures) from the simulation stack.
// Each experiment returns structured rows and renders the same series the
// paper reports; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/obs"
	"facil/internal/parallel"
	"facil/internal/soc"
)

// Table is a rendered experiment result: the typed row/column model
// every experiment produces, rendered as aligned text (String), CSV
// (WriteCSV) or JSON (the struct marshals directly; see EXPERIMENTS.md
// "Machine-readable output" for the schema).
type Table struct {
	// ID is a stable machine-readable slug ("fig13", "fig14/jetson",
	// "ablations/row-policy") identifying the table across runs; the
	// text renderer ignores it.
	ID string `json:"id,omitempty"`
	// Title is the human-readable heading.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the rendered cells, row-major.
	Rows [][]string `json:"rows"`
	// Notes carries caveats (scaling, substitutions).
	Notes []string `json:"notes,omitempty"`
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// PlatformModel returns the paper's model assignment for a platform.
func PlatformModel(p soc.Platform) llm.Model {
	switch p.Name {
	case soc.IdeaPad.Name:
		return llm.OPT_6_7B()
	case soc.IPhone.Name:
		return llm.Phi1_5()
	default:
		return llm.Llama3_8B()
	}
}

// ProgressFunc observes sweep progress: done of total points finished
// for the named experiment. Calls are serialized per sweep but may come
// from different experiments concurrently, so implementations must be
// safe for concurrent use.
type ProgressFunc func(experiment string, done, total int)

// Lab caches one engine.System per platform so experiments share the
// (expensive) simulation caches, and carries the sweep configuration
// (worker bound, progress sink) every experiment runs under.
//
// A Lab is safe for concurrent use once configured: Run and the
// experiment methods may be called from multiple goroutines, and each
// ported experiment internally fans its points out over a bounded worker
// pool. Configure SetParallelism/SetProgress before the first Run; they
// are not synchronized against in-flight experiments.
type Lab struct {
	cfg      engine.Config
	par      int
	progress ProgressFunc
	tracer   *obs.Tracer

	mu      sync.Mutex
	systems map[string]*systemEntry
}

// systemEntry builds one platform's stack exactly once, allowing
// concurrent callers of other platforms to build in parallel.
type systemEntry struct {
	once sync.Once
	s    *engine.System
	err  error
}

// NewLab builds an empty lab.
func NewLab(cfg engine.Config) *Lab {
	return &Lab{cfg: cfg, systems: make(map[string]*systemEntry)}
}

// SetParallelism bounds the worker pool of every sweep the lab runs:
// 1 forces serial execution, 0 (the default) selects GOMAXPROCS.
// Results are byte-identical at any setting.
func (l *Lab) SetParallelism(n int) { l.par = n }

// Parallelism returns the configured worker bound (0 = GOMAXPROCS).
func (l *Lab) Parallelism() int { return l.par }

// SetProgress installs a progress observer for every sweep (nil disables).
func (l *Lab) SetProgress(fn ProgressFunc) { l.progress = fn }

// SetTracer attaches an observability tracer the tracing-aware
// experiments (serving2) record their timelines into; nil (the
// default) disables tracing. Like the other knobs, configure it before
// the first Run. The tracer is safe for concurrent sweep points.
func (l *Lab) SetTracer(tr *obs.Tracer) { l.tracer = tr }

// Tracer returns the configured tracer (nil = tracing off).
func (l *Lab) Tracer() *obs.Tracer { return l.tracer }

// System returns (building on first use) the shared stack for a
// platform. The returned System is goroutine-safe; sweep points of the
// same platform share it and its memoization caches.
func (l *Lab) System(p soc.Platform) (*engine.System, error) {
	l.mu.Lock()
	e, ok := l.systems[p.Name]
	if !ok {
		e = &systemEntry{}
		l.systems[p.Name] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		e.s, e.err = engine.NewSystem(p, PlatformModel(p), l.cfg)
	})
	return e.s, e.err
}

// FreshSystem builds a new, unshared stack for a platform with the lab's
// configuration. Use it when a sweep point needs exclusive ownership —
// e.g. to mutate configuration — instead of the shared System instance.
func (l *Lab) FreshSystem(p soc.Platform) (*engine.System, error) {
	return engine.NewSystem(p, PlatformModel(p), l.cfg)
}

// sweepOpts assembles the parallel options for one experiment's sweep.
func (l *Lab) sweepOpts(experiment string) []parallel.Option {
	opts := []parallel.Option{parallel.Workers(l.par)}
	if fn := l.progress; fn != nil {
		opts = append(opts, parallel.Progress(func(done, total int) {
			fn(experiment, done, total)
		}))
	}
	return opts
}

// sweep fans fn out over points with the lab's worker bound and progress
// sink; results land by point index (byte-identical to a serial run).
func sweep[P, R any](ctx context.Context, l *Lab, experiment string, points []P, fn func(ctx context.Context, point P) (R, error)) ([]R, error) {
	return parallel.Sweep(ctx, points, fn, l.sweepOpts(experiment)...)
}

// newDetRand returns a deterministic PRNG for experiment inputs.
func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// f2, f1, pc and ms format numeric cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pc(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ms(v float64) string { return fmt.Sprintf("%.1f ms", 1e3*v) }
func x(v float64) string  { return fmt.Sprintf("%.2fx", v) }
