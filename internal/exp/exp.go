// Package exp regenerates every table and figure of the paper's
// evaluation (plus the motivation figures) from the simulation stack.
// Each experiment returns structured rows and renders the same series the
// paper reports; EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/soc"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries caveats (scaling, substitutions).
	Notes []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// PlatformModel returns the paper's model assignment for a platform.
func PlatformModel(p soc.Platform) llm.Model {
	switch p.Name {
	case soc.IdeaPad.Name:
		return llm.OPT_6_7B()
	case soc.IPhone.Name:
		return llm.Phi1_5()
	default:
		return llm.Llama3_8B()
	}
}

// Lab caches one engine.System per platform so experiments share the
// (expensive) simulation caches.
type Lab struct {
	cfg     engine.Config
	systems map[string]*engine.System
}

// NewLab builds an empty lab.
func NewLab(cfg engine.Config) *Lab {
	return &Lab{cfg: cfg, systems: make(map[string]*engine.System)}
}

// System returns (building on first use) the stack for a platform.
func (l *Lab) System(p soc.Platform) (*engine.System, error) {
	if s, ok := l.systems[p.Name]; ok {
		return s, nil
	}
	s, err := engine.NewSystem(p, PlatformModel(p), l.cfg)
	if err != nil {
		return nil, err
	}
	l.systems[p.Name] = s
	return s, nil
}

// newDetRand returns a deterministic PRNG for experiment inputs.
func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// f2, f1, pc and ms format numeric cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pc(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ms(v float64) string { return fmt.Sprintf("%.1f ms", 1e3*v) }
func x(v float64) string  { return fmt.Sprintf("%.2fx", v) }
