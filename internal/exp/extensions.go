package exp

import (
	"fmt"

	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/mapping"
	"facil/internal/pim"
	"facil/internal/soc"
)

// Quant evaluates FACIL under weight quantization — the deployment the
// paper's references motivate (TinyChatEngine/AWQ run 8- and 4-bit
// weights on the Jetson). Quantization shrinks both the re-layout cost
// the baseline pays and the GEMM/GEMV memory traffic, so the question is
// whether FACIL's advantage survives. Not a paper figure.
func Quant() (Table, error) {
	tab := Table{
		ID:    "quant",
		Title: "Extension: FACIL under weight quantization (Jetson, Llama3-8B architecture)",
		Header: []string{
			"precision", "weights", "decode step (PIM)", "hybrid TTFT P32",
			"FACIL TTFT P32", "speedup",
		},
		Notes: []string{
			"quantization scales weight traffic for SoC, PIM and re-layout alike;",
			"FACIL's re-layout-free advantage persists across precisions",
		},
	}
	for _, prec := range []struct {
		name  string
		bytes int
	}{
		{"FP16", 2},
		{"INT8 (W8A8)", 1},
	} {
		m := llm.Llama3_8B()
		m.Name = fmt.Sprintf("Llama3-8B-%s", prec.name)
		m.DTypeBytes = prec.bytes
		s, err := engine.NewSystem(soc.Jetson, m, engine.DefaultConfig())
		if err != nil {
			return Table{}, err
		}
		step, err := s.DecodeStepSeconds(engine.FACIL, 64)
		if err != nil {
			return Table{}, err
		}
		base, err := s.TTFTStatic(engine.HybridStatic, 32)
		if err != nil {
			return Table{}, err
		}
		facil, err := s.TTFTStatic(engine.FACIL, 32)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{
			prec.name,
			fmt.Sprintf("%.1f GB", float64(m.TotalWeightBytes())/1e9),
			ms(step),
			ms(base),
			ms(facil),
			x(engine.Speedup(base, facil)),
		})
	}
	return tab, nil
}

// PIMStyle compares the two chunk formulations the paper derives mappings
// for (Sec. IV-B, Fig. 8): AiM's (1, 1024) chunks versus HBM-PIM's
// (8, 128) chunks, on the same LPDDR5 memory system. Not a paper figure —
// it exercises the HBM-PIM half of the formulation end to end.
func PIMStyle() (Table, error) {
	spec := soc.IPhone.Spec
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	tab := Table{
		ID:    "pimstyle",
		Title: "Extension: AiM-style vs HBM-PIM-style chunks on the iPhone memory system",
		Header: []string{
			"style", "chunk (rows x cols fp16)", "min MapID", "PIM mappings",
			"GEMV 4096x4096", "internal BW",
		},
		Notes: []string{
			"both styles share the MapID formulation; the chunk shape moves the",
			"chunk-row column bits above the low row bits (paper Fig. 8(b))",
		},
	}
	for _, cfg := range []pim.Config{
		pim.DefaultAiM(spec.Geometry),
		pim.DefaultHBMPIM(spec.Geometry),
	} {
		dev, err := pim.NewDevice(spec, cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := dev.GEMV(mapping.MatrixConfig{Rows: 4096, Cols: 4096, DTypeBytes: 2})
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{
			cfg.Chunk.Style.String(),
			fmt.Sprintf("%dx%d", cfg.Chunk.Rows, cfg.Chunk.ColElems(2)),
			fmt.Sprintf("%d", mapping.MinMapID(mc, cfg.Chunk)),
			fmt.Sprintf("%d", mapping.MapIDCount(mc, cfg.Chunk)),
			fmt.Sprintf("%.0f us", res.Seconds*1e6),
			fmt.Sprintf("%.0f GB/s", res.EffectiveInternalGBs),
		})
	}
	return tab, nil
}
