package exp

import (
	"context"
	"fmt"

	"facil/internal/cluster"
	"facil/internal/mapping"
	"facil/internal/parallel"
	"facil/internal/soc"
	"facil/internal/tune"
	"facil/internal/workload"
)

// MapTuneConfig parameterizes the mapping auto-tuner experiment: a
// (platform, workload) grid where each cell captures one canonical
// weight trace for the platform's representative projection matrix and
// searches the generalized permutation+XOR mapping space against it.
type MapTuneConfig struct {
	// Platforms are the memory systems tuned (row groups of the tables).
	Platforms []soc.Platform
	// Workloads shape the decode-vs-prefill weighting of each cell's
	// trace: the GEMV phase is weighted by the workload's median decode
	// length, the GEMM phase counts as one prefill pass.
	Workloads []workload.Spec
	// Budget, Seed, TopK and EstWindow mirror tune.Config.
	Budget    int
	Seed      int64
	TopK      int
	EstWindow int
	// SampleBytes bounds each trace phase (default one 2 MiB huge page).
	SampleBytes int64
}

// DefaultMapTuneConfig tunes the two geometry extremes — Jetson (16
// channels, one page-local row bit) and iPhone (4 channels, three) —
// under both paper workloads, with a budget the estimator clears in
// well under a second per cell.
func DefaultMapTuneConfig() MapTuneConfig {
	return MapTuneConfig{
		Platforms:   []soc.Platform{soc.Jetson, soc.IPhone},
		Workloads:   []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()},
		Budget:      256,
		Seed:        7,
		TopK:        4,
		EstWindow:   16384,
		SampleBytes: 2 << 20,
	}
}

// MapTuneCell is one (platform, workload) tuning outcome: the search
// result plus the full-scheduler re-validation of every Pareto-front
// and fixed-family member.
type MapTuneCell struct {
	// Platform and Workload identify the grid cell.
	Platform soc.Platform
	Workload workload.Spec
	// Matrix is the representative weight matrix the trace walks (the
	// platform model's hidden-dim square projection).
	Matrix mapping.MatrixConfig
	// Selection is select_mapping's verdict for the matrix — the fixed
	// baseline re-layout cost is measured against.
	Selection mapping.Selection
	// Trace is the captured canonical trace.
	Trace *tune.Trace
	// Result is the design-space search outcome.
	Result *tune.Result
	// FrontSim[i] / FixedSim[i] are the full-scheduler verdicts for
	// Result.Front[i] / Result.Fixed[i].
	FrontSim []tune.SimResult
	FixedSim []tune.SimResult
}

// mapTuneCell runs one grid cell: capture the trace, search the space,
// then re-validate the survivors and the fixed family on the real
// scheduler (fanned out over the lab's worker bound).
func (l *Lab) mapTuneCell(ctx context.Context, cfg MapTuneConfig, p soc.Platform, w workload.Spec) (MapTuneCell, error) {
	g := p.Spec.Geometry
	model := PlatformModel(p)
	matrix := mapping.MatrixConfig{Rows: model.Hidden, Cols: model.Hidden, DTypeBytes: model.DTypeBytes}
	mc := mapping.MemoryConfig{Geometry: g, HugePageBytes: 2 << 20}
	chunk := mapping.AiMChunk(g)
	sel, err := mapping.SelectMapping(matrix, mc, chunk)
	if err != nil {
		return MapTuneCell{}, err
	}
	tr, err := tune.CaptureTrace(g, tune.TraceConfig{
		Matrix:       matrix,
		Streams:      sel.RowsPerPass,
		SampleBytes:  cfg.SampleBytes,
		DecodeWeight: float64(w.Decode.MedianTokens),
	})
	if err != nil {
		return MapTuneCell{}, err
	}
	res, err := tune.Search(ctx, tune.Config{
		Spec:      p.Spec,
		Trace:     tr,
		Baseline:  sel.ID,
		Budget:    cfg.Budget,
		TopK:      cfg.TopK,
		Seed:      cfg.Seed,
		Workers:   l.par,
		EstWindow: cfg.EstWindow,
	})
	if err != nil {
		return MapTuneCell{}, err
	}
	genomes := make([]tune.Genome, 0, len(res.Front)+len(res.Fixed))
	for _, c := range res.Front {
		genomes = append(genomes, c.Genome)
	}
	for _, f := range res.Fixed {
		genomes = append(genomes, f.Genome)
	}
	sims, err := parallel.Sweep(ctx, genomes, func(_ context.Context, gn tune.Genome) (tune.SimResult, error) {
		m, err := res.Space.Build(gn)
		if err != nil {
			return tune.SimResult{}, err
		}
		return tune.SimScore(p.Spec, tr, m)
	}, parallel.Workers(l.par))
	if err != nil {
		return MapTuneCell{}, err
	}
	return MapTuneCell{
		Platform:  p,
		Workload:  w,
		Matrix:    matrix,
		Selection: sel,
		Trace:     tr,
		Result:    res,
		FrontSim:  sims[:len(res.Front)],
		FixedSim:  sims[len(res.Front):],
	}, nil
}

// MapTuneCompute evaluates the (platform, workload) grid. Cells run
// sequentially — each search and re-validation already fans out over
// the lab's worker bound — and every cell is byte-identical at any
// parallelism (the tuner's determinism contract).
func (l *Lab) MapTuneCompute(ctx context.Context, cfg MapTuneConfig) ([]MapTuneCell, error) {
	total := len(cfg.Platforms) * len(cfg.Workloads)
	cells := make([]MapTuneCell, 0, total)
	for _, p := range cfg.Platforms {
		for _, w := range cfg.Workloads {
			cell, err := l.mapTuneCell(ctx, cfg, p, w)
			if err != nil {
				return nil, fmt.Errorf("maptune %s/%s: %w", p.Name, w.Name, err)
			}
			cells = append(cells, cell)
			if fn := l.progress; fn != nil {
				fn("maptune", len(cells), total)
			}
		}
	}
	return cells, nil
}

// platformShort is the fleet-spec token for a platform ("jetson", ...).
func platformShort(p soc.Platform) string {
	return cluster.DeviceClass{Platform: p}.Label()
}

// familyID resolves a candidate key back to its fixed MapID when the
// search (re)discovered a family member.
func familyID(res *tune.Result, key string) (mapping.MapID, bool) {
	for _, f := range res.Fixed {
		if f.Key == key {
			return f.ID, true
		}
	}
	return 0, false
}

// f0 formats a cycle count cell.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// MapTune renders the mapping auto-tuner comparison: a per-cell summary
// (best searched mapping vs the best fixed MapID, both re-validated on
// the full scheduler) and the Pareto-front detail.
func (l *Lab) MapTune(ctx context.Context, cfg MapTuneConfig) ([]Table, error) {
	cells, err := l.MapTuneCompute(ctx, cfg)
	if err != nil {
		return nil, err
	}
	summary := Table{
		ID:    "maptune",
		Title: "Extension: DRAM mapping auto-tuner (generalized PA-to-DA design-space search)",
		Header: []string{
			"platform", "workload", "matrix", "bursts", "evaluated",
			"best fixed", "fixed sim", "tuned sim", "speedup", "hit rate", "moved",
		},
		Notes: []string{
			fmt.Sprintf("search: %d-candidate budget per cell (seed %d) over page-offset bit permutations plus up to 2 XOR hash terms — a strict superset of the MapID family; every candidate passes a PA/DA bijection check before scoring", cfg.Budget, cfg.Seed),
			"tier one ranks candidates with the paced trace-replay estimator; the Pareto front over (estimated cycles, moved fraction) and the fixed MapID family are then re-validated on the full FR-FCFS scheduler (the sim columns)",
			fmt.Sprintf("traces: one %d KiB window per phase; the gemv phase is weighted by the workload's median decode length, the gemm phase counts as one prefill pass", cfg.SampleBytes>>10),
			"speedup is best-fixed sim cycles over best-tuned sim cycles; moved is the fraction of weight bytes whose placement differs from the select_mapping baseline (re-layout cost)",
		},
	}
	front := Table{
		ID:     "maptune/front",
		Title:  "Pareto front detail (estimated cycles vs re-layout fraction)",
		Header: []string{"platform", "workload", "rank", "est cycles", "sim cycles", "hit rate", "moved", "mapping"},
		Notes: []string{
			"mappings read MSB to LSB over the 2 MiB huge-page offset; row bits above the page come from the page index untouched",
		},
	}
	for _, c := range cells {
		label := platformShort(c.Platform)
		bi := 0
		for i := range c.FixedSim {
			if c.FixedSim[i].SimCycles < c.FixedSim[bi].SimCycles {
				bi = i
			}
		}
		fi := 0
		for i := range c.FrontSim {
			if c.FrontSim[i].SimCycles < c.FrontSim[fi].SimCycles {
				fi = i
			}
		}
		summary.Rows = append(summary.Rows, []string{
			label,
			c.Workload.Name,
			fmt.Sprintf("%dx%d", c.Matrix.Rows, c.Matrix.Cols),
			fmt.Sprintf("%d", c.Trace.Bursts()),
			fmt.Sprintf("%d", c.Result.Evaluated),
			c.Result.Fixed[bi].ID.String(),
			f0(c.FixedSim[bi].SimCycles),
			f0(c.FrontSim[fi].SimCycles),
			x(c.FixedSim[bi].SimCycles / c.FrontSim[fi].SimCycles),
			pc(c.FrontSim[fi].RowHitRate),
			pc(c.Result.Front[fi].Cost.MovedFrac),
		})
		for rank, cand := range c.Result.Front {
			desc := cand.Genome.Describe()
			if id, ok := familyID(c.Result, cand.Key); ok {
				desc += " (= " + id.String() + ")"
			}
			front.Rows = append(front.Rows, []string{
				label,
				c.Workload.Name,
				fmt.Sprintf("%d", rank+1),
				f0(cand.Cost.EstCycles),
				f0(c.FrontSim[rank].SimCycles),
				pc(c.FrontSim[rank].RowHitRate),
				pc(cand.Cost.MovedFrac),
				desc,
			})
		}
	}
	return []Table{summary, front}, nil
}
