package exp

import (
	"context"
	"strings"
	"testing"

	"facil/internal/soc"
	"facil/internal/workload"
)

// smallMapTuneConfig keeps the determinism sweep cheap: one cell, a
// quarter of the default budget, half-size trace windows.
func smallMapTuneConfig() MapTuneConfig {
	cfg := DefaultMapTuneConfig()
	cfg.Platforms = []soc.Platform{soc.Jetson}
	cfg.Workloads = []workload.Spec{workload.AlpacaSpec()}
	cfg.Budget = 64
	cfg.SampleBytes = 1 << 19
	cfg.EstWindow = 4096
	return cfg
}

// renderMapTune concatenates the experiment's tables, the byte string
// the tuner regression tests compare.
func renderMapTune(t *testing.T, l *Lab, cfg MapTuneConfig) string {
	t.Helper()
	tabs, err := l.MapTune(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestMapTuneGolden pins the full default grid — the table EXPERIMENTS.md
// quotes, including the headline cell where a searched mapping beats the
// best fixed MapID on the full scheduler.
func TestMapTuneGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full tuner grid in -short mode")
	}
	checkGolden(t, "maptune", renderMapTune(t, testLab(), DefaultMapTuneConfig()))
}

// TestMapTuneBeatsFixed is the acceptance criterion of the tuner: on at
// least one (platform, workload) cell, a searched mapping must beat the
// best fixed MapID under the full FR-FCFS scheduler, not just under the
// estimator.
func TestMapTuneBeatsFixed(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full tuner grid in -short mode")
	}
	cells, err := testLab().MapTuneCompute(context.Background(), DefaultMapTuneConfig())
	if err != nil {
		t.Fatal(err)
	}
	won := false
	for _, c := range cells {
		bestFixed := c.FixedSim[0].SimCycles
		for _, s := range c.FixedSim {
			if s.SimCycles < bestFixed {
				bestFixed = s.SimCycles
			}
		}
		bestFound := c.FrontSim[0].SimCycles
		for _, s := range c.FrontSim {
			if s.SimCycles < bestFound {
				bestFound = s.SimCycles
			}
		}
		t.Logf("%s/%s: best fixed %.0f, best tuned %.0f (%.2fx)",
			platformShort(c.Platform), c.Workload.Name, bestFixed, bestFound, bestFixed/bestFound)
		if bestFound < bestFixed {
			won = true
		}
	}
	if !won {
		t.Error("no cell found a mapping beating the best fixed MapID in full simulation")
	}
}

// TestMapTuneDeterministic pins the exp-level determinism contract: the
// same config renders byte-identically serially, serially again, and at
// 8-way parallelism (the searches, re-validation sweeps and table
// rendering all assign results by index).
func TestMapTuneDeterministic(t *testing.T) {
	cfg := smallMapTuneConfig()
	render := func(par int) string {
		l := freshLab()
		l.SetParallelism(par)
		return renderMapTune(t, l, cfg)
	}
	serial := render(1)
	if again := render(1); again != serial {
		t.Errorf("repeated serial tuner runs differ:\n%s\nvs\n%s", serial, again)
	}
	if par := render(8); par != serial {
		t.Errorf("par 8 tuner run differs from serial:\n%s\nvs\n%s", serial, par)
	}
}
