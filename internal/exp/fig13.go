package exp

import (
	"strconv"

	"facil/internal/engine"
	"facil/internal/soc"
	"facil/internal/stats"
)

// Fig13Prefills is the paper's prefill sweep (P8..P128).
var Fig13Prefills = []int{8, 16, 32, 64, 128}

// Fig13Row is one platform's TTFT speedup series.
type Fig13Row struct {
	Platform string
	// Speedups holds FACIL-over-hybrid-static TTFT speedups per
	// prefill length.
	Speedups []float64
	Geomean  float64
}

// Fig13Compute evaluates the single-query TTFT speedup of FACIL over the
// SoC-PIM hybrid baseline on all four platforms (paper Fig. 13; both
// designs run the prefill on the SoC in this study).
func (l *Lab) Fig13Compute() ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, p := range soc.All() {
		s, err := l.System(p)
		if err != nil {
			return nil, err
		}
		row := Fig13Row{Platform: p.Name}
		for _, pf := range Fig13Prefills {
			base, err := s.TTFTStatic(engine.HybridStatic, pf)
			if err != nil {
				return nil, err
			}
			facil, err := s.TTFTStatic(engine.FACIL, pf)
			if err != nil {
				return nil, err
			}
			row.Speedups = append(row.Speedups, engine.Speedup(base, facil))
		}
		row.Geomean = stats.Geomean(row.Speedups)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13 renders the speedup table.
func (l *Lab) Fig13() (Table, error) {
	rows, err := l.Fig13Compute()
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		Title:  "Fig. 13: TTFT speedup of FACIL over SoC-PIM hybrid baseline",
		Header: []string{"platform"},
		Notes: []string{
			"paper geomeans: Jetson 2.89x, MacBook 2.19x, IdeaPad 1.55x, iPhone 2.36x",
		},
	}
	for _, pf := range Fig13Prefills {
		tab.Header = append(tab.Header, "P"+strconv.Itoa(pf))
	}
	tab.Header = append(tab.Header, "geomean")
	for _, r := range rows {
		cells := []string{r.Platform}
		for _, sp := range r.Speedups {
			cells = append(cells, x(sp))
		}
		cells = append(cells, x(r.Geomean))
		tab.Rows = append(tab.Rows, cells)
	}
	return tab, nil
}
