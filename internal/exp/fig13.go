package exp

import (
	"context"
	"strconv"

	"facil/internal/engine"
	"facil/internal/soc"
	"facil/internal/stats"
)

// Fig13Prefills is the paper's prefill sweep (P8..P128).
var Fig13Prefills = []int{8, 16, 32, 64, 128}

// Fig13Row is one platform's TTFT speedup series.
type Fig13Row struct {
	Platform string
	// Speedups holds FACIL-over-hybrid-static TTFT speedups per
	// prefill length.
	Speedups []float64
	Geomean  float64
}

// fig13Point is one (platform, prefill) cell of the sweep grid.
type fig13Point struct {
	platform soc.Platform
	prefill  int
}

// Fig13Compute evaluates the single-query TTFT speedup of FACIL over the
// SoC-PIM hybrid baseline on all four platforms (paper Fig. 13; both
// designs run the prefill on the SoC in this study). Points run on the
// lab's worker pool; rows reduce in platform order.
func (l *Lab) Fig13Compute(ctx context.Context) ([]Fig13Row, error) {
	platforms := soc.All()
	var points []fig13Point
	for _, p := range platforms {
		for _, pf := range Fig13Prefills {
			points = append(points, fig13Point{platform: p, prefill: pf})
		}
	}
	speedups, err := sweep(ctx, l, "fig13", points, func(ctx context.Context, pt fig13Point) (float64, error) {
		s, err := l.System(pt.platform)
		if err != nil {
			return 0, err
		}
		base, err := s.TTFTStatic(engine.HybridStatic, pt.prefill)
		if err != nil {
			return 0, err
		}
		facil, err := s.TTFTStatic(engine.FACIL, pt.prefill)
		if err != nil {
			return 0, err
		}
		return engine.Speedup(base, facil), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig13Row
	for pi, p := range platforms {
		row := Fig13Row{Platform: p.Name}
		row.Speedups = append(row.Speedups, speedups[pi*len(Fig13Prefills):(pi+1)*len(Fig13Prefills)]...)
		row.Geomean = stats.Geomean(row.Speedups)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13 renders the speedup table.
func (l *Lab) Fig13(ctx context.Context) (Table, error) {
	rows, err := l.Fig13Compute(ctx)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "fig13",
		Title:  "Fig. 13: TTFT speedup of FACIL over SoC-PIM hybrid baseline",
		Header: []string{"platform"},
		Notes: []string{
			"paper geomeans: Jetson 2.89x, MacBook 2.19x, IdeaPad 1.55x, iPhone 2.36x",
		},
	}
	for _, pf := range Fig13Prefills {
		tab.Header = append(tab.Header, "P"+strconv.Itoa(pf))
	}
	tab.Header = append(tab.Header, "geomean")
	for _, r := range rows {
		cells := []string{r.Platform}
		for _, sp := range r.Speedups {
			cells = append(cells, x(sp))
		}
		cells = append(cells, x(r.Geomean))
		tab.Rows = append(tab.Rows, cells)
	}
	return tab, nil
}
