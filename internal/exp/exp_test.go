package exp

import (
	"context"
	"strings"
	"sync"
	"testing"

	"facil/internal/engine"
	"facil/internal/soc"
	"facil/internal/workload"
)

// testLab returns a shared Lab for read-only use: experiments are pure
// functions of their config, and the Lab's System caches are immutable
// once warm, so tests reuse one instance instead of each paying cold
// latency computation. Tests that reconfigure the lab (SetParallelism,
// SetProgress) must use freshLab instead.
var labOnce = struct {
	sync.Once
	l *Lab
}{}

func testLab() *Lab {
	labOnce.Do(func() { labOnce.l = NewLab(engine.DefaultConfig()) })
	return labOnce.l
}

// freshLab builds a private Lab for tests that mutate lab configuration.
func freshLab() *Lab { return NewLab(engine.DefaultConfig()) }

func TestFig2aLinearDominates(t *testing.T) {
	l := testLab()
	tab, err := l.Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 7 {
		t.Errorf("Fig2a rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Notes[0], "paper reports >90%") {
		t.Errorf("note missing: %v", tab.Notes)
	}
}

func TestFig3ReproducesShape(t *testing.T) {
	l := testLab()
	r, err := l.Fig3Compute()
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupVsIdealNPU < 2 || r.SpeedupVsIdealNPU > 5 {
		t.Errorf("PIM vs ideal NPU = %.2f, paper reports 3.32", r.SpeedupVsIdealNPU)
	}
	if r.SpeedupVsGPU <= r.SpeedupVsIdealNPU {
		t.Errorf("GPU should be slower than ideal NPU: vsGPU %.2f vsNPU %.2f",
			r.SpeedupVsGPU, r.SpeedupVsIdealNPU)
	}
}

func TestFig6ReproducesShape(t *testing.T) {
	l := testLab()
	rows, err := l.Fig6Compute()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: ~3x TTFT increase (from ~100 ms to ~300 ms).
		if r.Increase < 1.5 || r.Increase > 5 {
			t.Errorf("P%d: increase = %.2fx outside plausible band", r.Prefill, r.Increase)
		}
	}
	// Increase shrinks as prefill grows (amortization).
	if rows[0].Increase <= rows[len(rows)-1].Increase {
		t.Errorf("re-layout increase not amortizing: %v", rows)
	}
	// Absolute TTFTs in the paper's ballpark (tens to hundreds of ms).
	last := rows[len(rows)-1]
	if last.BaselineSeconds < 0.02 || last.BaselineSeconds > 0.5 {
		t.Errorf("P64 baseline TTFT = %.3fs, paper ~0.1s", last.BaselineSeconds)
	}
}

func TestFig13ReproducesPaperOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full fig13 sweep in -short mode")
	}
	l := testLab()
	rows, err := l.Fig13Compute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	geo := map[string]float64{}
	for _, r := range rows {
		geo[r.Platform] = r.Geomean
		// Every platform speeds up, monotonically diminishing.
		for i := 1; i < len(r.Speedups); i++ {
			if r.Speedups[i] > r.Speedups[i-1]+1e-9 {
				t.Errorf("%s: speedup grew with prefill: %v", r.Platform, r.Speedups)
				break
			}
		}
		if r.Geomean < 1.2 {
			t.Errorf("%s: geomean %.2f too small", r.Platform, r.Geomean)
		}
	}
	// Paper ordering: IdeaPad shows the least speedup of the four.
	for name, g := range geo {
		if name == soc.IdeaPad.Name {
			continue
		}
		if geo[soc.IdeaPad.Name] >= g {
			t.Errorf("IdeaPad geomean %.2f not the smallest (%s: %.2f)",
				geo[soc.IdeaPad.Name], name, g)
		}
	}
}

func TestFig14Amortizes(t *testing.T) {
	l := testLab()
	cells, err := l.Fig14Compute(context.Background(), soc.Jetson)
	if err != nil {
		t.Fatal(err)
	}
	byPD := map[[2]int]float64{}
	for _, c := range cells {
		byPD[[2]int{c.Prefill, c.Decode}] = c.Speedup
	}
	if byPD[[2]int{64, 8}] <= byPD[[2]int{64, 128}] {
		t.Errorf("TTLT speedup not amortizing with decode: %v vs %v",
			byPD[[2]int{64, 8}], byPD[[2]int{64, 128}])
	}
	for pd, sp := range byPD {
		if sp < 1.0 {
			t.Errorf("P%d/D%d: FACIL slower than baseline (%.3f)", pd[0], pd[1], sp)
		}
	}
}

func TestDatasetEvaluationShape(t *testing.T) {
	l := testLab()
	cfg := DatasetConfig{Queries: 30, Seed: 7}
	res, err := l.EvalDataset(context.Background(), soc.Jetson, workload.AlpacaSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid static is its own baseline.
	if v := res.TTFTSpeedup[engine.HybridStatic]; v < 0.999 || v > 1.001 {
		t.Errorf("baseline self-speedup = %.3f", v)
	}
	// FACIL beats both hybrids on TTFT.
	if res.TTFTSpeedup[engine.FACIL] <= res.TTFTSpeedup[engine.HybridStatic] {
		t.Error("FACIL TTFT not above baseline")
	}
	if res.TTFTSpeedup[engine.FACIL] < res.TTFTSpeedup[engine.HybridDynamic]-1e-9 {
		t.Error("FACIL TTFT below hybrid dynamic")
	}
	// SoC-only loses badly on TTLT; FACIL wins it back.
	if res.TTLTSpeedup[engine.SoCOnly] >= 1 {
		t.Errorf("SoC-only TTLT speedup = %.2f, should be < 1", res.TTLTSpeedup[engine.SoCOnly])
	}
	if res.FACILOverSoCOnlyTTLT < 2 {
		t.Errorf("FACIL over SoC-only TTLT = %.2f, paper reports 3.55", res.FACILOverSoCOnlyTTLT)
	}
	// FACIL TTLT gain over the hybrid baseline is modest (paper: 1.20x).
	if v := res.TTLTSpeedup[engine.FACIL]; v < 1.0 || v > 2.0 {
		t.Errorf("FACIL TTLT speedup = %.2f, paper reports ~1.2", v)
	}
}

func TestTable1ShapeAtSmallScale(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Scale = 64 // 253 MB model in 1 GB memory: fast
	cells, err := testLab().Table1Compute(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Table1FMFIBands)*len(Table1FreeRels) {
		t.Fatalf("cell count = %d", len(cells))
	}
	// Normalized >= 1 everywhere; worst cell at high FMFI + pressure.
	var low, worst float64
	for _, c := range cells {
		if c.Result.Normalized < 1 {
			t.Errorf("cell %v normalized %.2f < 1", c, c.Result.Normalized)
		}
		if c.FMFILow == 0.0 && c.FreeRel == 2.5 {
			low = c.Result.Normalized
		}
		if c.FMFILow == 0.7 && c.FreeRel == 1.1 {
			worst = c.Result.Normalized
		}
	}
	if worst <= low {
		t.Errorf("worst cell %.2f not above best cell %.2f", worst, low)
	}
}

func TestMaxMapIDTable(t *testing.T) {
	tab, err := MaxMapID()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Worst-case row must show max MapID 13 with 4 PTE bits.
	if tab.Rows[0][2] != "13" || tab.Rows[0][5] != "4" {
		t.Errorf("worst-case row = %v", tab.Rows[0])
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := tab.String()
	for _, want := range []string{"demo", "333", "note: hello", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(AllIDs) {
		t.Errorf("registry has %d ids, AllIDs has %d", len(ids), len(AllIDs))
	}
	for _, id := range AllIDs {
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Errorf("AllIDs entry %q not registered", id)
		}
	}
	if _, err := testLab().Run(context.Background(), "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Spot-run the cheap ones end to end.
	l := testLab()
	for _, id := range []string{"tab2", "maxmap", "fig2b"} {
		tabs, err := l.Run(context.Background(), id)
		if err != nil {
			t.Errorf("Run(%q): %v", id, err)
			continue
		}
		if len(tabs) == 0 || tabs[0].String() == "" {
			t.Errorf("Run(%q) produced nothing", id)
		}
	}
}

func TestPlatformModelAssignment(t *testing.T) {
	if PlatformModel(soc.Jetson).Name != "Llama3-8B" ||
		PlatformModel(soc.Macbook).Name != "Llama3-8B" ||
		PlatformModel(soc.IdeaPad).Name != "OPT-6.7B" ||
		PlatformModel(soc.IPhone).Name != "Phi-1.5" {
		t.Error("platform-model assignment does not match Table II")
	}
}
