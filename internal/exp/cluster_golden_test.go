package exp

import (
	"context"
	"strings"
	"testing"

	"facil/internal/cluster"
	"facil/internal/soc"
)

// goldenClusterConfig keeps the cluster golden cheap: an 8-device
// heterogeneous fleet (two per platform, the IdeaPad pair on a derated
// PIM stack), 600 queries, and a hostile-enough fault diet to exercise
// the router health breakers.
func goldenClusterConfig() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Queries = 600
	cfg.Rate = 2.4
	cfg.Fleet = []cluster.DeviceClass{
		{Platform: soc.Jetson, Count: 2},
		{Platform: soc.Macbook, Count: 2},
		{Platform: soc.IdeaPad, Count: 2, MACIntervalCycles: 8},
		{Platform: soc.IPhone, Count: 2},
	}
	cfg.QueueCap = 8
	cfg.FaultMTBF = 120
	cfg.FaultMTTR = 20
	cfg.FaultFraction = 0.5
	return cfg
}

// renderCluster concatenates the experiment's tables, the byte string
// every cluster regression test compares.
func renderCluster(t *testing.T, l *Lab, cfg ClusterConfig) string {
	t.Helper()
	tabs, err := l.Cluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestClusterGolden pins the rendered fleet tables on the cheap config.
func TestClusterGolden(t *testing.T) {
	checkGolden(t, "cluster_small", renderCluster(t, testLab(), goldenClusterConfig()))
}

// TestClusterScaleGolden pins the acceptance-scale run: 1e5 queries over
// the default 104-device heterogeneous fleet, all four strategies.
func TestClusterScaleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fleet-scale golden case in -short mode")
	}
	checkGolden(t, "cluster_scale", renderCluster(t, testLab(), DefaultClusterConfig()))
}

// TestClusterDeterministic is the par1/parN acceptance criterion: the
// same fleet and seeds render byte-identically when devices advance
// serially and when they advance on 8 workers (and across repeated
// runs, so no state leaks between runs of one lab).
func TestClusterDeterministic(t *testing.T) {
	cfg := goldenClusterConfig()
	render := func(par int) string {
		l := freshLab()
		l.SetParallelism(par)
		return renderCluster(t, l, cfg)
	}
	serial := render(1)
	if again := render(1); again != serial {
		t.Errorf("repeated serial cluster runs differ:\n%s\nvs\n%s", serial, again)
	}
	if par := render(8); par != serial {
		t.Errorf("par 8 cluster run differs from serial:\n%s\nvs\n%s", serial, par)
	}
}

// TestClusterAccounting checks the router's conservation identities on
// every strategy of the cheap config: each arrival is routed or shed,
// every routed query reaches a device, and every device-side outcome is
// terminal once the drain completes.
func TestClusterAccounting(t *testing.T) {
	mets, err := testLab().ClusterCompute(context.Background(), goldenClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mets {
		if m.Routed+m.Shed != m.Queries {
			t.Errorf("%s: routed %d + shed %d != queries %d", m.Strategy, m.Routed, m.Shed, m.Queries)
		}
		if m.Arrived != m.Routed {
			t.Errorf("%s: device arrivals %d != routed %d", m.Strategy, m.Arrived, m.Routed)
		}
		if got := m.Completed + m.Failed + m.TimedOut + m.Rejected; got != m.Arrived {
			t.Errorf("%s: terminal outcomes %d != arrived %d", m.Strategy, got, m.Arrived)
		}
		shed := 0
		for _, s := range m.ShedByClass {
			shed += s
		}
		if shed != m.Shed {
			t.Errorf("%s: per-class shed %d != shed %d", m.Strategy, shed, m.Shed)
		}
		var routed, completed int
		for _, pcm := range m.PerClass {
			routed += pcm.Routed
			completed += pcm.Completed
		}
		if routed != m.Routed || completed != m.Completed {
			t.Errorf("%s: per-class sums routed %d/completed %d != %d/%d",
				m.Strategy, routed, completed, m.Routed, m.Completed)
		}
		if !m.TTFT.Finite() || !m.TTLT.Finite() {
			t.Errorf("%s: non-finite latency quantiles %+v %+v", m.Strategy, m.TTFT, m.TTLT)
		}
	}
}
