package exp

import (
	"context"
	"strings"
	"testing"

	"facil/internal/cluster"
	"facil/internal/soc"
)

// goldenClusterConfig keeps the cluster golden cheap: an 8-device
// heterogeneous fleet (two per platform, the IdeaPad pair on a derated
// PIM stack), 600 queries, and a hostile-enough fault diet to exercise
// the router health breakers.
func goldenClusterConfig() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Queries = 600
	// 0.45 q/s per device strains the fleet enough that queues build on
	// the slow/faulted devices — the regime where migration has work to
	// move (at the default 0.25 q/s every strategy's steal row is a
	// no-op and the goldens would pin nothing).
	cfg.Rate = 3.6
	cfg.Fleet = []cluster.DeviceClass{
		{Platform: soc.Jetson, Count: 2},
		{Platform: soc.Macbook, Count: 2},
		{Platform: soc.IdeaPad, Count: 2, MACIntervalCycles: 8},
		{Platform: soc.IPhone, Count: 2},
	}
	cfg.QueueCap = 8
	cfg.FaultMTBF = 120
	cfg.FaultMTTR = 20
	cfg.FaultFraction = 0.5
	// The default steal threshold sits below the default queue cap (16)
	// but above this config's cap of 8 — depth would never reach it, so
	// scale it down with the queue.
	cfg.StealThreshold = 6
	return cfg
}

// renderCluster concatenates the experiment's tables, the byte string
// every cluster regression test compares.
func renderCluster(t *testing.T, l *Lab, cfg ClusterConfig) string {
	t.Helper()
	tabs, err := l.Cluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestClusterGolden pins the rendered fleet tables on the cheap config.
func TestClusterGolden(t *testing.T) {
	checkGolden(t, "cluster_small", renderCluster(t, testLab(), goldenClusterConfig()))
}

// TestClusterScaleGolden pins the acceptance-scale run: 1e5 queries over
// the default 104-device heterogeneous fleet, all four strategies.
func TestClusterScaleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fleet-scale golden case in -short mode")
	}
	checkGolden(t, "cluster_scale", renderCluster(t, testLab(), DefaultClusterConfig()))
}

// TestClusterDeterministic is the par1/parN acceptance criterion: the
// same fleet and seeds render byte-identically when devices advance
// serially and when they advance on 8 workers (and across repeated
// runs, so no state leaks between runs of one lab).
func TestClusterDeterministic(t *testing.T) {
	cfg := goldenClusterConfig()
	render := func(par int) string {
		l := freshLab()
		l.SetParallelism(par)
		return renderCluster(t, l, cfg)
	}
	serial := render(1)
	if again := render(1); again != serial {
		t.Errorf("repeated serial cluster runs differ:\n%s\nvs\n%s", serial, again)
	}
	if par := render(8); par != serial {
		t.Errorf("par 8 cluster run differs from serial:\n%s\nvs\n%s", serial, par)
	}
}

// TestClusterAccounting checks the router's conservation identities on
// every (strategy, steal) cell of the cheap config: each arrival is
// routed or shed, every routed query reaches a device (device arrivals
// exceed routed by exactly the migrations), the migration flow balances
// (every retraction is a steal), and every routed query reaches a
// terminal outcome once the drain completes.
func TestClusterAccounting(t *testing.T) {
	mets, err := testLab().ClusterCompute(context.Background(), goldenClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	sawSteal := false
	for _, m := range mets {
		name := m.Strategy.String()
		if m.Steal {
			name += "+steal"
			sawSteal = true
		}
		if m.Routed+m.Shed != m.Queries {
			t.Errorf("%s: routed %d + shed %d != queries %d", name, m.Routed, m.Shed, m.Queries)
		}
		if m.Arrived != m.Routed+m.Stolen {
			t.Errorf("%s: device arrivals %d != routed %d + stolen %d", name, m.Arrived, m.Routed, m.Stolen)
		}
		if m.Retracted != m.Stolen {
			t.Errorf("%s: retracted %d != stolen %d", name, m.Retracted, m.Stolen)
		}
		if !m.Steal && m.Stolen != 0 {
			t.Errorf("%s: stolen %d without stealing enabled", name, m.Stolen)
		}
		if got := m.Completed + m.Failed + m.TimedOut + m.Rejected; got != m.Routed {
			t.Errorf("%s: terminal outcomes %d != routed %d", name, got, m.Routed)
		}
		shed := 0
		for _, s := range m.ShedByClass {
			shed += s
		}
		if shed != m.Shed {
			t.Errorf("%s: per-class shed %d != shed %d", name, shed, m.Shed)
		}
		var routed, completed int
		for _, pcm := range m.PerClass {
			routed += pcm.Routed
			completed += pcm.Completed
		}
		if routed != m.Routed || completed != m.Completed {
			t.Errorf("%s: per-class sums routed %d/completed %d != %d/%d",
				name, routed, completed, m.Routed, m.Completed)
		}
		if !m.TTFT.Finite() || !m.TTLT.Finite() {
			t.Errorf("%s: non-finite latency quantiles %+v %+v", name, m.TTFT, m.TTLT)
		}
	}
	if !sawSteal {
		t.Error("accounting sweep never exercised a stealing run")
	}
}
