package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"facil/internal/soc"
)

// TestAllIDsMatchesRegistry pins the experiment index: AllIDs and the
// registry must contain exactly the same identifiers (no drift in either
// direction, no duplicates in the presentation order).
func TestAllIDsMatchesRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range AllIDs {
		if seen[id] {
			t.Errorf("AllIDs lists %q twice", id)
		}
		seen[id] = true
		if _, ok := registry[id]; !ok {
			t.Errorf("AllIDs entry %q has no registry runner", id)
		}
	}
	for id := range registry {
		if !seen[id] {
			t.Errorf("registered experiment %q missing from AllIDs", id)
		}
	}
}

// TestParallelMatchesSerial is the determinism contract: a sweep fanned
// out over many workers must render byte-identical tables to a serial
// run. Exercised on fig13 (platform x prefill grid) and fig14 (TTLT
// grid); -race covers the shared System caches.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-registry parallel/serial comparison in -short mode (TestServing2Deterministic keeps a fast variant)")
	}
	ctx := context.Background()
	// One lab serves both runs: the serial pass populates the shared
	// System caches, the parallel pass then hammers them from 8 workers
	// (exercised under -race), and both must render identical bytes.
	l := freshLab()

	l.SetParallelism(1)
	s13, err := l.Fig13(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s14, err := l.Fig14(ctx, soc.Jetson)
	if err != nil {
		t.Fatal(err)
	}

	l.SetParallelism(8)
	p13, err := l.Fig13(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p14, err := l.Fig14(ctx, soc.Jetson)
	if err != nil {
		t.Fatal(err)
	}

	if s13.String() != p13.String() {
		t.Errorf("fig13 parallel table diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s13, p13)
	}
	if s14.String() != p14.String() {
		t.Errorf("fig14 parallel table diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s14, p14)
	}
}

// TestRunHonorsCancellation verifies a cancelled context aborts an
// experiment promptly with the context's error.
func TestRunHonorsCancellation(t *testing.T) {
	l := freshLab()
	l.SetParallelism(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := l.Run(ctx, "fig13")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// TestProgressReporting checks the lab-level progress plumbing on a
// synthetic sweep: one tick per point, tagged with the experiment name.
// Progress callbacks are serialized by the sweep, so the unlocked append
// is safe (and -race verifies that claim).
func TestProgressReporting(t *testing.T) {
	l := freshLab()
	l.SetParallelism(4)
	type tick struct {
		exp         string
		done, total int
	}
	var ticks []tick
	l.SetProgress(func(experiment string, done, total int) {
		ticks = append(ticks, tick{experiment, done, total})
	})
	points := make([]int, 24)
	for i := range points {
		points[i] = i
	}
	if _, err := sweep(context.Background(), l, "demo", points, func(ctx context.Context, p int) (int, error) {
		return p * p, nil
	}); err != nil {
		t.Fatal(err)
	}
	want := len(points)
	if len(ticks) != want {
		t.Fatalf("got %d progress ticks, want %d", len(ticks), want)
	}
	for _, tk := range ticks {
		if tk.exp != "demo" || tk.total != want {
			t.Errorf("tick = %+v, want experiment demo total %d", tk, want)
		}
	}
	if last := ticks[len(ticks)-1]; last.done != want {
		t.Errorf("final tick done = %d, want %d", last.done, want)
	}
}
