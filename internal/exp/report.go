package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"facil/internal/obs"
)

// slug lowercases s and maps every non-alphanumeric run to one dash —
// the stable table-ID form of platform and dataset names ("NVIDIA
// Jetson AGX Orin 64GB" -> "nvidia-jetson-agx-orin-64gb").
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	return b.String()
}

// Result is the machine-readable outcome of one experiment identifier:
// the rendered tables plus run accounting. It marshals to the JSON
// schema documented in EXPERIMENTS.md ("Machine-readable output").
type Result struct {
	// ID is the experiment identifier that was run ("fig13",
	// "serving2", ...).
	ID string `json:"id"`
	// Tables are the experiment's rendered tables (one per platform or
	// dataset for the multi-table experiments). Empty on error.
	Tables []Table `json:"tables,omitempty"`
	// ElapsedSeconds is the experiment's wall time.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Error is the failure message ("" = success).
	Error string `json:"error,omitempty"`
}

// Report bundles one whole invocation: the reproducibility manifest
// plus every experiment's Result in execution order. This is the
// document `facilsim -format json` emits.
type Report struct {
	// Manifest records the code revision, environment, command line
	// and wall time of the producing run.
	Manifest obs.Manifest `json:"manifest"`
	// Results holds one entry per experiment identifier, in the order
	// they were requested.
	Results []Result `json:"results"`
}

// WriteJSON serializes the report with indentation.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSON serializes one result with indentation (the per-experiment
// file form of `facilsim -format json -o dir`).
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits every table of the result in CSV form, each preceded
// by a `# <title>` comment line and separated by a blank line —
// byte-identical to what `facilsim -format csv` streams per experiment.
func (r Result) WriteCSV(w io.Writer) error {
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteText emits every table in the aligned-text form, each followed
// by a blank line (the `-format table -o dir` file form).
func (r Result) WriteText(w io.Writer) error {
	for _, t := range r.Tables {
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}
