package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"facil/internal/obs"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"NVIDIA Jetson AGX Orin 64GB": "nvidia-jetson-agx-orin-64gb",
		"Apple iPhone 15 Pro":         "apple-iphone-15-pro",
		"Code autocompletion":         "code-autocompletion",
		"Alpaca":                      "alpaca",
		"  odd -- input  ":            "odd-input",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

// sampleResult is a small but fully-populated Result for round-trips.
func sampleResult() Result {
	return Result{
		ID: "fig13",
		Tables: []Table{{
			ID:     "fig13",
			Title:  "Fig. 13: test",
			Header: []string{"a", "b"},
			Rows:   [][]string{{"1", "2"}, {"3", "4"}},
			Notes:  []string{"a note"},
		}},
		ElapsedSeconds: 1.5,
	}
}

// TestResultJSONRoundTrip pins that the Result model survives a
// marshal/unmarshal cycle unchanged — the schema documented in
// EXPERIMENTS.md is faithful to the in-memory model.
func TestResultJSONRoundTrip(t *testing.T) {
	want := sampleResult()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid result JSON: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the result:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestReportJSONSchema checks the report document's documented field
// names (manifest/results, snake_case manifest keys, table id/title).
func TestReportJSONSchema(t *testing.T) {
	mf := obs.NewManifest("facilsim", []string{"-id", "fig13"})
	mf.Seed = 42
	rep := Report{
		Manifest: mf,
		Results:  []Result{sampleResult()},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	man, ok := doc["manifest"].(map[string]any)
	if !ok {
		t.Fatal("report has no manifest object")
	}
	for _, key := range []string{"tool", "schema_version", "git_rev", "go_version", "os", "arch", "args", "start", "seed"} {
		if _, ok := man[key]; !ok {
			t.Errorf("manifest missing documented key %q", key)
		}
	}
	results, ok := doc["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("report results = %v, want one entry", doc["results"])
	}
	r0 := results[0].(map[string]any)
	if r0["id"] != "fig13" {
		t.Errorf("result id = %v, want fig13", r0["id"])
	}
	tables := r0["tables"].([]any)
	t0 := tables[0].(map[string]any)
	for _, key := range []string{"id", "title", "header", "rows", "notes"} {
		if _, ok := t0[key]; !ok {
			t.Errorf("table missing documented key %q", key)
		}
	}
}

// TestResultWriteCSV pins the per-experiment CSV stream form: a comment
// line with the title, the CSV body, a trailing blank line per table.
func TestResultWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# Fig. 13: test\na,b\n1,2\n3,4\n# a note,\n\n"
	if got != want {
		t.Fatalf("CSV stream = %q, want %q", got, want)
	}
}

// TestResultWriteText pins that the text form matches Table.String with
// a blank separator (so -o dir text files equal the stdout stream).
func TestResultWriteText(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), r.Tables[0].String()) {
		t.Fatalf("text form does not embed Table.String output:\n%s", buf.String())
	}
}

// TestTableIDsStableAndUnique spot-checks that the registry's fast
// experiments stamp the documented ID slugs onto their tables.
func TestTableIDsStableAndUnique(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// Checked inside golden tests for the slow ones; here only the
	// table-model invariant: every table of a Result carries an ID.
	for _, tab := range []Table{sampleResult().Tables[0]} {
		if tab.ID == "" {
			t.Errorf("table %q has no ID", tab.Title)
		}
	}
}
