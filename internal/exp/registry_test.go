package exp

import "testing"

// TestCatalogCoversRegistry pins the single-source-of-truth invariant
// behind every experiment listing: AllIDs, the registry map and the
// Catalog titles describe exactly the same identifier set, so the CLI
// -list output and the daemon /experiments endpoint cannot drift.
func TestCatalogCoversRegistry(t *testing.T) {
	if len(AllIDs) != len(registry) {
		t.Errorf("AllIDs has %d entries, registry %d", len(AllIDs), len(registry))
	}
	seen := map[string]bool{}
	for _, id := range AllIDs {
		if seen[id] {
			t.Errorf("AllIDs lists %q twice", id)
		}
		seen[id] = true
		if !Known(id) {
			t.Errorf("AllIDs lists %q but the registry does not know it", id)
		}
	}
	for id := range registry {
		if !seen[id] {
			t.Errorf("registry id %q missing from AllIDs", id)
		}
	}
	cat := Catalog()
	if len(cat) != len(AllIDs) {
		t.Fatalf("Catalog has %d entries, want %d", len(cat), len(AllIDs))
	}
	for i, info := range cat {
		if info.ID != AllIDs[i] {
			t.Errorf("Catalog[%d].ID = %q, want %q", i, info.ID, AllIDs[i])
		}
		if info.Title == "" {
			t.Errorf("experiment %q has no title", info.ID)
		}
	}
	for id := range titles {
		if !Known(id) {
			t.Errorf("title for unknown experiment %q", id)
		}
	}
}
