package exp

import (
	"context"
	"fmt"
	"sort"

	"facil/internal/soc"
	"facil/internal/workload"
)

// Run executes an experiment by its DESIGN.md identifier and returns the
// rendered tables. Ported experiments fan their sweep points out over the
// lab's worker pool and honor ctx cancellation between points.
func (l *Lab) Run(ctx context.Context, id string) ([]Table, error) {
	runner, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return runner(ctx, l)
}

// IDs lists the registered experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// runner produces one experiment's tables under a cancellation context.
type runner func(ctx context.Context, l *Lab) ([]Table, error)

// one adapts a serial (context-free) single-table experiment.
func one(f func(l *Lab) (Table, error)) runner {
	return func(ctx context.Context, l *Lab) ([]Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := f(l)
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
}

// onectx adapts a ctx-aware single-table experiment.
func onectx(f func(l *Lab, ctx context.Context) (Table, error)) runner {
	return func(ctx context.Context, l *Lab) ([]Table, error) {
		t, err := f(l, ctx)
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
}

var registry = map[string]runner{
	"fig2a": one((*Lab).Fig2a),
	"fig2b": one((*Lab).Fig2b),
	"fig3":  one((*Lab).Fig3),
	"fig6":  one((*Lab).Fig6),
	"tab1": onectx(func(l *Lab, ctx context.Context) (Table, error) {
		return l.Table1(ctx, DefaultTable1Config())
	}),
	"tab2": func(ctx context.Context, l *Lab) ([]Table, error) {
		return []Table{Table2()}, nil
	},
	"tab3": onectx(func(l *Lab, ctx context.Context) (Table, error) {
		return l.Table3(ctx, soc.LayoutSlowdownConfig{})
	}),
	"fig13": onectx((*Lab).Fig13),
	"fig14": func(ctx context.Context, l *Lab) ([]Table, error) {
		return sweep(ctx, l, "fig14 platforms", soc.All(), func(ctx context.Context, p soc.Platform) (Table, error) {
			return l.Fig14(ctx, p)
		})
	},
	"fig15": func(ctx context.Context, l *Lab) ([]Table, error) {
		return l.datasetPair(ctx, (*Lab).Fig15)
	},
	"fig16": func(ctx context.Context, l *Lab) ([]Table, error) {
		return l.datasetPair(ctx, (*Lab).Fig16)
	},
	"cosched": func(ctx context.Context, l *Lab) ([]Table, error) {
		t, err := Cosched()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"quant": func(ctx context.Context, l *Lab) ([]Table, error) {
		t, err := Quant()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"pimstyle": func(ctx context.Context, l *Lab) ([]Table, error) {
		t, err := PIMStyle()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"energy": one((*Lab).Energy),
	"serving": onectx(func(l *Lab, ctx context.Context) (Table, error) {
		return l.Serving(ctx)
	}),
	"serving2": onectx(func(l *Lab, ctx context.Context) (Table, error) {
		return l.Serving2(ctx, DefaultServing2Config())
	}),
	"resilience": onectx(func(l *Lab, ctx context.Context) (Table, error) {
		return l.Resilience(ctx, DefaultResilienceConfig())
	}),
	"cluster": func(ctx context.Context, l *Lab) ([]Table, error) {
		return l.Cluster(ctx, DefaultClusterConfig())
	},
	"maptune": func(ctx context.Context, l *Lab) ([]Table, error) {
		return l.MapTune(ctx, DefaultMapTuneConfig())
	},
	"maxmap": func(ctx context.Context, l *Lab) ([]Table, error) {
		t, err := MaxMapID()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	// The eight ablation studies run as sweep points of their own (each
	// internally fanning out further), reducing in the fixed table order.
	"ablations": func(ctx context.Context, l *Lab) ([]Table, error) {
		studies := []func(context.Context) (Table, error){
			func(ctx context.Context) (Table, error) { return l.AblationRelayoutPolicy() },
			l.AblationDynamicThreshold,
			l.AblationSchedulerWindow,
			l.AblationRowPolicy,
			l.AblationConventionalMapping,
			func(ctx context.Context) (Table, error) { return AblationXORHashing() },
			l.AblationGEMMStreams,
			l.AblationMACInterval,
		}
		return sweep(ctx, l, "ablations", studies, func(ctx context.Context, f func(context.Context) (Table, error)) (Table, error) {
			return f(ctx)
		})
	},
}

// datasetPair evaluates a figure over both paper datasets.
func (l *Lab) datasetPair(ctx context.Context, f func(*Lab, context.Context, workload.Spec, DatasetConfig) (Table, error)) ([]Table, error) {
	var out []Table
	for _, spec := range []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()} {
		t, err := f(l, ctx, spec, DefaultDatasetConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// AllIDs is the DESIGN.md experiment order for "run everything".
var AllIDs = []string{
	"fig2a", "fig2b", "fig3", "fig6",
	"tab1", "tab2", "tab3",
	"fig13", "fig14", "fig15", "fig16",
	"maxmap", "ablations",
	"cosched", "quant", "pimstyle", "energy", "serving", "serving2", "resilience",
	"cluster", "maptune",
}

// Info describes one registered experiment for listings: the identifier
// plus a one-line title. `facilsim -list` and the daemon's
// GET /experiments endpoint both render from Catalog, so the two
// listings cannot drift from the registry (or from each other).
type Info struct {
	// ID is the registry identifier ("fig13", "serving2", ...).
	ID string `json:"id"`
	// Title is the one-line human description.
	Title string `json:"title"`
}

// titles carries the one-line description of every registered
// experiment; TestCatalogCoversRegistry pins the 1:1 correspondence.
var titles = map[string]string{
	"fig2a":      "decode time breakdown (motivation)",
	"fig2b":      "GEMV utilization across PIM configs (motivation)",
	"fig3":       "PIM speedup potential over SoC decode (motivation)",
	"fig6":       "TTFT increase from weight re-layout (motivation)",
	"tab1":       "huge-page load time under memory fragmentation",
	"tab2":       "evaluated platforms and their PIM configurations",
	"tab3":       "GEMM slowdown on the PIM-optimized layout",
	"fig13":      "single-query TTFT speedup vs baselines",
	"fig14":      "single-query TTLT speedup per platform",
	"fig15":      "dataset TTFT distributions (Alpaca, autocomplete)",
	"fig16":      "dataset TTLT distributions (Alpaca, autocomplete)",
	"maxmap":     "largest MapID the mapping family needs",
	"ablations":  "eight design-choice ablation studies",
	"cosched":    "SoC/PIM co-scheduled memory-controller interleaving",
	"quant":      "weight-quantization sensitivity",
	"pimstyle":   "PIM microarchitecture style comparison",
	"energy":     "per-token energy model",
	"serving":    "closed-form serving queue (legacy extension)",
	"serving2":   "event-driven cooperative serving sweep",
	"resilience": "fault-injection and degradation-policy sweep",
	"cluster":    "fleet-scale heterogeneous serving with routing strategies",
	"maptune":    "auto-tuned PA-to-DA mappings vs the fixed MapID family",
}

// Catalog returns every registered experiment in DESIGN.md order with
// its one-line title — the single source for CLI and daemon listings.
func Catalog() []Info {
	out := make([]Info, 0, len(AllIDs))
	for _, id := range AllIDs {
		out = append(out, Info{ID: id, Title: titles[id]})
	}
	return out
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}
