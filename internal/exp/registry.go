package exp

import (
	"fmt"
	"sort"

	"facil/internal/soc"
	"facil/internal/workload"
)

// Run executes an experiment by its DESIGN.md identifier and returns the
// rendered tables. "all" runs every experiment.
func (l *Lab) Run(id string) ([]Table, error) {
	runner, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return runner(l)
}

// IDs lists the registered experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

type runner func(l *Lab) ([]Table, error)

func one(f func(l *Lab) (Table, error)) runner {
	return func(l *Lab) ([]Table, error) {
		t, err := f(l)
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
}

var registry = map[string]runner{
	"fig2a": one((*Lab).Fig2a),
	"fig2b": one((*Lab).Fig2b),
	"fig3":  one((*Lab).Fig3),
	"fig6":  one((*Lab).Fig6),
	"tab1": func(l *Lab) ([]Table, error) {
		t, err := Table1(DefaultTable1Config())
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"tab2": func(l *Lab) ([]Table, error) {
		return []Table{Table2()}, nil
	},
	"tab3": func(l *Lab) ([]Table, error) {
		t, err := Table3(soc.LayoutSlowdownConfig{})
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"fig13": one((*Lab).Fig13),
	"fig14": func(l *Lab) ([]Table, error) {
		var out []Table
		for _, p := range soc.All() {
			t, err := l.Fig14(p)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	},
	"fig15": func(l *Lab) ([]Table, error) {
		return l.datasetPair((*Lab).Fig15)
	},
	"fig16": func(l *Lab) ([]Table, error) {
		return l.datasetPair((*Lab).Fig16)
	},
	"cosched": func(l *Lab) ([]Table, error) {
		t, err := Cosched()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"quant": func(l *Lab) ([]Table, error) {
		t, err := Quant()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"pimstyle": func(l *Lab) ([]Table, error) {
		t, err := PIMStyle()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"energy": func(l *Lab) ([]Table, error) {
		t, err := l.Energy()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"serving": func(l *Lab) ([]Table, error) {
		t, err := l.Serving()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"maxmap": func(l *Lab) ([]Table, error) {
		t, err := MaxMapID()
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	},
	"ablations": func(l *Lab) ([]Table, error) {
		var out []Table
		t, err := l.AblationRelayoutPolicy()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = l.AblationDynamicThreshold()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = AblationSchedulerWindow()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = AblationRowPolicy()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = AblationConventionalMapping()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = AblationXORHashing()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = AblationGEMMStreams()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		t, err = AblationMACInterval()
		if err != nil {
			return nil, err
		}
		return append(out, t), nil
	},
}

// datasetPair evaluates a figure over both paper datasets.
func (l *Lab) datasetPair(f func(*Lab, workload.Spec, DatasetConfig) (Table, error)) ([]Table, error) {
	var out []Table
	for _, spec := range []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()} {
		t, err := f(l, spec, DefaultDatasetConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// AllIDs is the DESIGN.md experiment order for "run everything".
var AllIDs = []string{
	"fig2a", "fig2b", "fig3", "fig6",
	"tab1", "tab2", "tab3",
	"fig13", "fig14", "fig15", "fig16",
	"maxmap", "ablations",
	"cosched", "quant", "pimstyle", "energy", "serving",
}
