package exp

import (
	"strconv"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/soc"
)

// MaxMapID tabulates the mapping-family size for each platform geometry
// plus the paper's worst case (Sec. IV-B formula).
func MaxMapID() (Table, error) {
	tab := Table{
		ID:    "maxmap",
		Title: "max(MapID) = log2(hugePage / (totalBanks * transferBytes)) per platform",
		Header: []string{
			"memory system", "total banks", "max MapID", "min MapID (AiM)",
			"PIM mappings", "PTE bits",
		},
		Notes: []string{
			"paper worst case: single channel/rank 8-bank LPDDR5 -> max MapID 13, 4 PTE bits",
		},
	}
	worst := dram.Geometry{
		Channels:        1,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		Rows:            1 << 16,
		RowBytes:        2048,
		TransferBytes:   32,
	}
	type entry struct {
		name string
		g    dram.Geometry
	}
	entries := []entry{{"worst case (1ch/1rk/8bank)", worst}}
	for _, p := range soc.All() {
		entries = append(entries, entry{p.Spec.Name, p.Spec.Geometry})
	}
	for _, e := range entries {
		mc := mapping.MemoryConfig{Geometry: e.g, HugePageBytes: 2 << 20}
		if err := mc.Validate(); err != nil {
			return Table{}, err
		}
		chunk := mapping.AiMChunk(e.g)
		tab.Rows = append(tab.Rows, []string{
			e.name,
			strconv.Itoa(e.g.TotalBanks()),
			strconv.Itoa(int(mapping.MaxMapID(mc))),
			strconv.Itoa(int(mapping.MinMapID(mc, chunk))),
			strconv.Itoa(mapping.MapIDCount(mc, chunk)),
			strconv.Itoa(mapping.MapIDBits(mc, chunk)),
		})
	}
	return tab, nil
}
