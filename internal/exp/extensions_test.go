package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"facil/internal/soc"
)

func TestCoschedExperiment(t *testing.T) {
	tab, err := Cosched()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(tab.Rows))
	}
	// The dual-row-buffer row must show a PIM slowdown of 1.00x.
	var dual []string
	for _, r := range tab.Rows {
		if strings.Contains(r[0], "dual row buffer") {
			dual = r
		}
	}
	if dual == nil {
		t.Fatal("dual-row-buffer row missing")
	}
	if !strings.HasPrefix(dual[1], "1.0") {
		t.Errorf("dual row buffer PIM slowdown = %s, want ~1.00x", dual[1])
	}
}

func TestQuantExperiment(t *testing.T) {
	tab, err := Quant()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Speedups at both precisions stay in the paper band.
	for _, r := range tab.Rows {
		sp, err := strconv.ParseFloat(strings.TrimSuffix(r[len(r)-1], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", r[len(r)-1])
		}
		if sp < 1.5 || sp > 4 {
			t.Errorf("%s: speedup %.2f out of band", r[0], sp)
		}
	}
}

func TestPIMStyleExperiment(t *testing.T) {
	tab, err := PIMStyle()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][0], "AiM") || !strings.Contains(tab.Rows[1][0], "HBM-PIM") {
		t.Errorf("style rows = %v", tab.Rows)
	}
}

func TestEnergyExperiment(t *testing.T) {
	l := testLab()
	tab, err := l.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The note must report PIM using less energy (ratio > 1).
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "less DRAM energy") {
		t.Errorf("notes = %v", tab.Notes)
	}
}

func TestServingExperiment(t *testing.T) {
	l := testLab()
	tab, err := l.Serving(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 3 rates x 4 designs.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
}

func TestAblationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ablation sweeps in -short mode")
	}
	l := testLab()
	if tab, err := l.AblationDynamicThreshold(context.Background()); err != nil || len(tab.Rows) != len(soc.All()) {
		t.Errorf("dynamic threshold ablation: %v, %d rows", err, len(tab.Rows))
	}
	if tab, err := l.AblationSchedulerWindow(context.Background()); err != nil || len(tab.Rows) != 5 {
		t.Errorf("scheduler window ablation: %v", err)
	}
	if tab, err := l.AblationConventionalMapping(context.Background()); err != nil || len(tab.Rows) != 5 {
		t.Errorf("conventional mapping ablation: %v", err)
	}
}
