package exp

import (
	"context"
	"fmt"

	"facil/internal/fault"
	"facil/internal/parallel"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// ResilienceConfig parameterizes the fault-injection sweep: lane-fault
// rate x degradation policy x scheduling mode under one reproducible
// fault scenario per cell.
type ResilienceConfig struct {
	// Modes are the two-lane schedulers compared (Serial cannot host
	// the fault model).
	Modes []serve.Mode
	// Policies are the degradation responses swept.
	Policies []serve.Policy
	// LaneMTBFs are the mean times between PIM-lane failures swept, in
	// seconds (the fault-rate axis; smaller = more faults).
	LaneMTBFs []float64
	// LaneMTTR is the mean lane repair time in seconds.
	LaneMTTR float64
	// Thermal holds the thermal-throttle windows applied to every cell,
	// derating DRAM by the measured temperature-doubled-refresh ratio.
	Thermal []fault.Window
	// MapIDCorruptRate is the per-query PTE MapID corruption probability.
	MapIDCorruptRate float64
	// FaultSeed drives the fault scenario (independent of traffic Seed)
	// so every policy faces the same fault schedule.
	FaultSeed int64

	// Rate, Replicas, Queries, Seed and Workload shape the traffic.
	Rate     float64
	Replicas int
	Queries  int
	Seed     int64
	Workload workload.Spec
	// QueueCap, DeadlineTTLT, MaxRetries, BreakerThreshold mirror the
	// serve.SimConfig knobs of every cell.
	QueueCap         int
	DeadlineTTLT     float64
	MaxRetries       int
	BreakerThreshold int
}

// DefaultResilienceConfig exercises the full degradation story: both
// cooperative modes, all three policies, a calm and a hostile fault
// rate, a mid-run thermal window and a trickle of PTE corruption.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Modes:            []serve.Mode{serve.Cooperative, serve.RelayoutHybrid},
		Policies:         serve.Policies(),
		LaneMTBFs:        []float64{60, 15},
		LaneMTTR:         5,
		Thermal:          []fault.Window{{Start: 40, End: 100}},
		MapIDCorruptRate: 0.02,
		FaultSeed:        99,
		Rate:             0.3,
		Replicas:         2,
		Queries:          120,
		Seed:             11,
		Workload:         workload.AlpacaSpec(),
		QueueCap:         32,
		DeadlineTTLT:     30,
		MaxRetries:       3,
		BreakerThreshold: 3,
	}
}

// resiliencePoint is one (mode, policy, MTBF) cell of the grid.
type resiliencePoint struct {
	mode   serve.Mode
	policy serve.Policy
	mtbf   float64
}

// resiliencePoints enumerates the grid mode-major, then fault rate, then
// policy — so each fault rate's policy escalation reads as consecutive
// rows.
func resiliencePoints(cfg ResilienceConfig) []resiliencePoint {
	var points []resiliencePoint
	for _, m := range cfg.Modes {
		for _, mtbf := range cfg.LaneMTBFs {
			for _, p := range cfg.Policies {
				points = append(points, resiliencePoint{mode: m, policy: p, mtbf: mtbf})
			}
		}
	}
	return points
}

// scenario builds one cell's fault scenario. Policies within a cell
// share it byte-for-byte (same FaultSeed), so the comparison isolates
// the degradation response, not the fault schedule.
func (cfg ResilienceConfig) scenario(mtbf float64) fault.Scenario {
	return fault.Scenario{
		Seed:             cfg.FaultSeed,
		LaneMTBF:         mtbf,
		LaneMTTR:         cfg.LaneMTTR,
		Thermal:          cfg.Thermal,
		MapIDCorruptRate: cfg.MapIDCorruptRate,
	}
}

// ResilienceCompute evaluates the full grid. Every point owns its
// traffic and fault RNGs (seeded inside serve.Run and fault.Scenario),
// so results are byte-identical at any sweep parallelism; with a tracer
// attached, points record onto disjoint deterministic pid blocks.
func (l *Lab) ResilienceCompute(ctx context.Context, cfg ResilienceConfig) ([]serve.Metrics, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return nil, err
	}
	points := resiliencePoints(cfg)
	pidBase := make([]int64, len(points))
	var next int64
	for i := range points {
		pidBase[i] = next
		next += int64(cfg.Replicas) + 1
	}
	return parallel.Sweep(ctx, indexes(len(points)), func(ctx context.Context, i int) (serve.Metrics, error) {
		if err := ctx.Err(); err != nil {
			return serve.Metrics{}, err
		}
		pt := points[i]
		return serve.Run(s, serve.SimConfig{
			Mode:             pt.mode,
			Kind:             Serving2Kind(pt.mode),
			Replicas:         cfg.Replicas,
			ArrivalRate:      cfg.Rate,
			Queries:          cfg.Queries,
			Workload:         cfg.Workload,
			Seed:             cfg.Seed,
			QueueCap:         cfg.QueueCap,
			DeadlineTTLT:     cfg.DeadlineTTLT,
			MaxRetries:       cfg.MaxRetries,
			BreakerThreshold: cfg.BreakerThreshold,
			Policy:           pt.policy,
			Faults:           cfg.scenario(pt.mtbf),
			Tracer:           l.tracer,
			TracePIDBase:     pidBase[i],
			TraceLabel:       fmt.Sprintf("%s %s mtbf%g", pt.mode, pt.policy, pt.mtbf),
		})
	}, l.sweepOpts("resilience")...)
}

// Resilience renders the fault-injection comparison table: how much
// goodput each degradation policy preserves under the same fault
// schedule.
func (l *Lab) Resilience(ctx context.Context, cfg ResilienceConfig) (Table, error) {
	mets, err := l.ResilienceCompute(ctx, cfg)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID: "resilience",
		Title: "Extension: graceful degradation under PIM-lane faults (Jetson, " +
			cfg.Workload.Name + " traffic)",
		Header: []string{
			"mode", "policy", "lane MTBF", "completed", "failed", "degraded",
			"failed over", "retries", "goodput", "availability", "lane MTTR", "TTLT p95",
		},
		Notes: []string{
			fmt.Sprintf("%d queries/point at %.2f q/s, %d replicas, queue cap %d, TTLT SLO %.0f s, retry budget %d, breaker threshold %d",
				cfg.Queries, cfg.Rate, cfg.Replicas, cfg.QueueCap, cfg.DeadlineTTLT, cfg.MaxRetries, cfg.BreakerThreshold),
			fmt.Sprintf("lane MTTR %.0f s; thermal windows %v derate DRAM by the measured refresh-doubling ratio; MapID corruption rate %.2f",
				cfg.LaneMTTR, cfg.Thermal, cfg.MapIDCorruptRate),
			"goodput is the fraction of offered queries completed within the SLO (per-second rates would reward dropping the backlog)",
			"all policies within one (mode, MTBF) block face a byte-identical fault schedule",
		},
	}
	points := resiliencePoints(cfg)
	for i, m := range mets {
		tab.Rows = append(tab.Rows, []string{
			m.Mode.String(),
			points[i].policy.String(),
			fmt.Sprintf("%.0f s", points[i].mtbf),
			fmt.Sprintf("%d", m.Completed),
			fmt.Sprintf("%d", m.Failed),
			fmt.Sprintf("%d", m.Degraded),
			fmt.Sprintf("%d", m.FailedOver),
			fmt.Sprintf("%d", m.Retries),
			pc(float64(m.SLOMet) / float64(m.Arrived)),
			pc(m.Availability),
			ms(m.LaneMTTR),
			ms(m.TTLT.P95),
		})
	}
	return tab, nil
}
