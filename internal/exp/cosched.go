package exp

import (
	"fmt"

	"facil/internal/sched"
	"facil/internal/soc"
)

// Cosched evaluates the paper's "Remaining Challenges" discussion
// (Sec. V-C): how PIM and non-PIM requests interfere on shared channels,
// and how the NeuPIMs-style dual-row-buffer alternative resolves the
// conflict. Not a paper figure — an extension quantifying the paper's
// qualitative argument.
func Cosched() (Table, error) {
	spec := soc.IPhone.Spec // single-device scale, 4 channels; one is simulated
	w := sched.DefaultWorkload()
	tab := Table{
		ID:    "cosched",
		Title: "Extension: PIM / SoC co-scheduling on one shared channel (Sec. V-C discussion)",
		Header: []string{
			"policy", "PIM slowdown", "SoC mean latency", "SoC p99", "SoC slowdown",
		},
		Notes: []string{
			fmt.Sprintf("workload: %d PIM row passes + %d SoC bursts at %.2f req/cycle",
				w.PIMPasses, w.SoCRequests, w.SoCRate),
			"dual row buffers (NeuPIMs) keep both classes near isolated performance",
		},
	}
	for _, p := range sched.Policies() {
		r, err := sched.Cosimulate(spec, w, p)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{
			p.String(),
			x(r.PIMSlowdown),
			fmt.Sprintf("%.0f cycles", r.SoCMeanLatency),
			fmt.Sprintf("%.0f cycles", r.SoCP99Latency),
			x(r.SoCSlowdown),
		})
	}
	return tab, nil
}
