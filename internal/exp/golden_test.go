package exp

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// checkGolden compares rendered output byte-for-byte against the
// committed testdata/<name>.golden file.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s: output diverged from golden file (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// goldenServing2Config keeps the serving2 golden cheap: one rate, both
// replica counts, all three modes.
func goldenServing2Config() Serving2Config {
	cfg := DefaultServing2Config()
	cfg.Queries = 20
	cfg.Rates = []float64{0.3}
	cfg.Replicas = []int{1, 2}
	return cfg
}

// TestGoldenTables pins the rendered output of the headline experiments.
// Any change to latency models, sweep configs or table formatting shows
// up as a byte-level diff here.
func TestGoldenTables(t *testing.T) {
	l := testLab()
	ctx := context.Background()
	small := DatasetConfig{Queries: 10, Seed: 2024}
	cases := []struct {
		name string
		slow bool // skipped under -short (tens of seconds of compute)
		run  func() (Table, error)
	}{
		{"fig13", true, func() (Table, error) { return l.Fig13(ctx) }},
		{"fig14_iphone", false, func() (Table, error) { return l.Fig14(ctx, soc.IPhone) }},
		{"fig15_alpaca_q10", false, func() (Table, error) { return l.Fig15(ctx, workload.AlpacaSpec(), small) }},
		{"fig16_alpaca_q10", false, func() (Table, error) { return l.Fig16(ctx, workload.AlpacaSpec(), small) }},
		{"tab1_scale64", false, func() (Table, error) {
			cfg := DefaultTable1Config()
			cfg.Scale = 64
			return l.Table1(ctx, cfg)
		}},
		{"tab3", true, func() (Table, error) { return l.Table3(ctx, soc.LayoutSlowdownConfig{}) }},
		{"serving2_small", false, func() (Table, error) { return l.Serving2(ctx, goldenServing2Config()) }},
		{"resilience_small", false, func() (Table, error) { return l.Resilience(ctx, goldenResilienceConfig()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("skipping slow golden case in -short mode")
			}
			tab, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, tab.String())
		})
	}
}

// goldenResilienceConfig keeps the resilience golden cheap: one mode,
// one hostile fault rate, all three policies.
func goldenResilienceConfig() ResilienceConfig {
	cfg := DefaultResilienceConfig()
	cfg.Queries = 40
	cfg.Modes = []serve.Mode{serve.Cooperative}
	cfg.LaneMTBFs = []float64{15}
	return cfg
}

// TestServing2Deterministic renders the serving2 table serially, again
// serially, and at 8-way parallelism: all three must be byte-identical
// (the sweep assigns results by point index, and every point owns its
// RNG state).
func TestServing2Deterministic(t *testing.T) {
	cfg := goldenServing2Config()
	render := func(par int) string {
		l := freshLab()
		l.SetParallelism(par)
		tab, err := l.Serving2(context.Background(), cfg)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		return tab.String()
	}
	serial := render(1)
	if again := render(1); again != serial {
		t.Errorf("repeated serial runs differ:\n%s\nvs\n%s", serial, again)
	}
	if par := render(8); par != serial {
		t.Errorf("par 8 differs from serial:\n%s\nvs\n%s", serial, par)
	}
}

// TestResilienceDeterministic is the acceptance criterion of the fault
// sweep: the same seed and scenario render byte-identically at -par 1
// and -par 8 (stochastic fault schedules included — every cell owns its
// fault RNGs).
func TestResilienceDeterministic(t *testing.T) {
	cfg := goldenResilienceConfig()
	render := func(par int) string {
		l := freshLab()
		l.SetParallelism(par)
		tab, err := l.Resilience(context.Background(), cfg)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		return tab.String()
	}
	serial := render(1)
	if again := render(1); again != serial {
		t.Errorf("repeated serial runs differ:\n%s\nvs\n%s", serial, again)
	}
	if par := render(8); par != serial {
		t.Errorf("par 8 differs from serial:\n%s\nvs\n%s", serial, par)
	}
}

// TestResilienceMonotone asserts the degradation story on every (mode,
// MTBF) block of the default grid: under one fault schedule, failover
// preserves at least as many in-SLO completions as SoC-only
// degradation, which preserves at least as many as no policy at all.
func TestResilienceMonotone(t *testing.T) {
	cfg := DefaultResilienceConfig()
	mets, err := testLab().ResilienceCompute(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	points := resiliencePoints(cfg)
	slo := map[resiliencePoint]int{}
	for i, m := range mets {
		slo[points[i]] = m.SLOMet
	}
	for _, mode := range cfg.Modes {
		for _, mtbf := range cfg.LaneMTBFs {
			at := func(p serve.Policy) int {
				return slo[resiliencePoint{mode: mode, policy: p, mtbf: mtbf}]
			}
			none, fb, fo := at(serve.PolicyNone), at(serve.PolicySoCFallback), at(serve.PolicyFailover)
			if !(fo >= fb && fb >= none) {
				t.Errorf("%s mtbf %g: SLO completions not monotone: failover %d, fallback %d, none %d",
					mode, mtbf, fo, fb, none)
			}
		}
	}
}
