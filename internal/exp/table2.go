package exp

import (
	"fmt"

	"facil/internal/soc"
)

// Table2 renders the platform specification table (paper Table II).
func Table2() Table {
	tab := Table{
		ID:    "tab2",
		Title: "Table II: evaluated platforms and models",
		Header: []string{
			"platform", "processor", "type", "peak TFLOPS (FP16)",
			"DRAM", "bus", "capacity", "peak BW", "ridge AI", "model", "framework",
		},
	}
	for _, p := range soc.All() {
		m := PlatformModel(p)
		tab.Rows = append(tab.Rows, []string{
			p.Name,
			p.Processor,
			p.ProcessorType,
			f1(p.PeakTFLOPS),
			fmt.Sprintf("LPDDR5-%d", p.Spec.DataRateMbps),
			fmt.Sprintf("%d-bit", p.Spec.ChannelWidthBits*p.Spec.Geometry.Channels),
			fmt.Sprintf("%d GB", p.Spec.Geometry.CapacityBytes()>>30),
			fmt.Sprintf("%.1f GB/s", p.PeakBWGBs()),
			f1(p.RidgePoint()),
			m.Name,
			p.Framework,
		})
	}
	return tab
}
