package exp

import (
	"context"
	"testing"
)

func TestAblationRowPolicyShape(t *testing.T) {
	tab, err := testLab().AblationRowPolicy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
