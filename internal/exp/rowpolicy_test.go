package exp

import "testing"

func TestAblationRowPolicyShape(t *testing.T) {
	tab, err := AblationRowPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
