package exp

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", "z"}},
		Notes:  []string{"caveat"},
	}
	out, err := tab.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "# caveat") {
		t.Errorf("note row = %q", lines[3])
	}
}

func TestExperimentTablesExportCSV(t *testing.T) {
	tab := Table2()
	out, err := tab.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NVIDIA Jetson AGX Orin 64GB") {
		t.Error("CSV missing platform row")
	}
}
