package exp

import (
	"strconv"

	"facil/internal/engine"
	"facil/internal/soc"
)

// Fig6Row is one prefill length of the re-layout motivation study.
type Fig6Row struct {
	Prefill          int
	BaselineSeconds  float64 // prefill GEMM only (no re-layout)
	WithRelayoutSecs float64 // on-demand re-layout + prefill GEMM
	Increase         float64 // WithRelayout / Baseline
}

// Fig6Compute reproduces Fig. 6: the TTFT increase caused by on-demand
// re-layout on the Jetson with Llama3-8B, across input sequence lengths.
func (l *Lab) Fig6Compute() ([]Fig6Row, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for _, p := range []int{4, 8, 16, 32, 64} {
		base, err := s.TTFTStatic(engine.SoCOnly, p)
		if err != nil {
			return nil, err
		}
		withRe, err := s.TTFTStatic(engine.HybridStatic, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{
			Prefill:          p,
			BaselineSeconds:  base,
			WithRelayoutSecs: withRe,
			Increase:         withRe / base,
		})
	}
	return rows, nil
}

// Fig6 renders Fig6Compute.
func (l *Lab) Fig6() (Table, error) {
	rows, err := l.Fig6Compute()
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "fig6",
		Title:  "Fig. 6: TTFT increase due to re-layout (Llama3-8B on Jetson)",
		Header: []string{"prefill len", "TTFT w/o re-layout", "TTFT w/ re-layout", "increase"},
		Notes: []string{
			"paper: TTFT grows ~3x, from ~100 ms to ~300 ms",
		},
	}
	for _, r := range rows {
		tab.Rows = append(tab.Rows, []string{
			strconv.Itoa(r.Prefill), ms(r.BaselineSeconds), ms(r.WithRelayoutSecs), x(r.Increase),
		})
	}
	return tab, nil
}
