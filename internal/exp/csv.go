package exp

import (
	"encoding/csv"
	"io"
	"strings"
)

// WriteCSV emits the table in RFC-4180 CSV form: one header row followed
// by the data rows. Notes are appended as comment-style rows prefixed
// with "#" in the first column, so spreadsheet imports keep the caveats
// next to the numbers.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		row := make([]string, len(t.Header))
		if len(row) == 0 {
			row = []string{""}
		}
		row[0] = "# " + n
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the table as a CSV string.
func (t Table) CSV() (string, error) {
	var b strings.Builder
	if err := t.WriteCSV(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
