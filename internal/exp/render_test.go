package exp

import (
	"context"
	"strings"
	"testing"

	"facil/internal/soc"
	"facil/internal/workload"
)

// Rendering smoke tests: every table generator produces a non-empty,
// well-formed table with the expected headers.

func TestRenderFig2aFig3Fig6(t *testing.T) {
	l := testLab()
	for _, id := range []string{"fig2a", "fig3", "fig6"} {
		tabs, err := l.Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := tabs[0].String()
		if !strings.Contains(out, "Fig.") {
			t.Errorf("%s: missing title:\n%s", id, out)
		}
	}
}

func TestRenderFig13Fig14(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fig13/fig14 render in -short mode (golden files cover the output)")
	}
	l := testLab()
	tab, err := l.Fig13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || !strings.Contains(tab.Header[1], "P8") {
		t.Errorf("fig13 table malformed: %v", tab.Header)
	}
	tab, err = l.Fig14(context.Background(), soc.IPhone)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig14Lengths) {
		t.Errorf("fig14 rows = %d", len(tab.Rows))
	}
}

func TestRenderFig15Fig16Small(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fig15/fig16 render in -short mode (golden files cover the output)")
	}
	l := testLab()
	cfg := DatasetConfig{Queries: 10, Seed: 3}
	tab, err := l.Fig15(context.Background(), workload.AlpacaSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("fig15 rows = %d", len(tab.Rows))
	}
	tab, err = l.Fig16(context.Background(), workload.AlpacaSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Rows[0][len(tab.Rows[0])-1], "vs SoC-only") {
		t.Errorf("fig16 FACIL cell missing SoC-only comparison: %v", tab.Rows[0])
	}
}

func TestRenderTable1Small(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Scale = 64
	tab, err := testLab().Table1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Header) != 5 {
		t.Errorf("table1 shape: %dx%d", len(tab.Rows), len(tab.Header))
	}
	if !strings.Contains(tab.Rows[0][1], "s (") {
		t.Errorf("table1 cell format: %q", tab.Rows[0][1])
	}
}

func TestRenderAblationRelayoutPolicy(t *testing.T) {
	l := testLab()
	tab, err := l.AblationRelayoutPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("relayout-policy rows = %d", len(tab.Rows))
	}
}

func TestRenderXORHashing(t *testing.T) {
	tab, err := AblationXORHashing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("xor rows = %d", len(tab.Rows))
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "recovers") {
		t.Errorf("xor notes = %v", tab.Notes)
	}
}

func TestRenderTable2AndMaxMap(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 4 {
		t.Errorf("table2 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != len(tab.Header) {
			t.Errorf("table2 row width %d != header %d", len(r), len(tab.Header))
		}
	}
}
