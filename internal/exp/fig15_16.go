package exp

import (
	"context"
	"fmt"

	"facil/internal/engine"
	"facil/internal/soc"
	"facil/internal/stats"
	"facil/internal/workload"
)

// DatasetKinds are the designs compared on the real-world datasets,
// matching the bars of Figs. 15-16.
var DatasetKinds = []engine.Kind{
	engine.SoCOnly,
	engine.HybridStatic,
	engine.HybridDynamic,
	engine.FACIL,
}

// DatasetResult summarizes one (platform, dataset) evaluation.
type DatasetResult struct {
	Platform string
	Dataset  string
	// TTFTSpeedup and TTLTSpeedup hold geomean speedups over the
	// hybrid-static baseline, keyed like DatasetKinds.
	TTFTSpeedup map[engine.Kind]float64
	TTLTSpeedup map[engine.Kind]float64
	// FACILOverSoCOnlyTTLT is the paper's headline TTLT comparison
	// (3.55x Alpaca / 3.58x code on average).
	FACILOverSoCOnlyTTLT float64
}

// DatasetConfig sizes the sampled workloads.
type DatasetConfig struct {
	Queries int
	Seed    int64
}

// DefaultDatasetConfig mirrors the paper's sampling scale at a tractable
// query count.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{Queries: 150, Seed: 2024}
}

// queryRatios is one query's speedup measurements (the per-point result
// of the dataset sweep).
type queryRatios struct {
	ttft         []float64 // keyed like DatasetKinds
	ttlt         []float64
	facilOverSoC float64
}

// EvalDataset runs every design over a sampled dataset on one platform.
// The dataset is generated deterministically up front; queries then run
// as independent sweep points and the geomeans reduce in query order, so
// results match a serial evaluation exactly.
func (l *Lab) EvalDataset(ctx context.Context, p soc.Platform, spec workload.Spec, cfg DatasetConfig) (DatasetResult, error) {
	s, err := l.System(p)
	if err != nil {
		return DatasetResult{}, err
	}
	ds, err := workload.Generate(spec, cfg.Queries, cfg.Seed)
	if err != nil {
		return DatasetResult{}, err
	}
	perQuery, err := sweep(ctx, l, "dataset "+spec.Name, ds.Queries, func(ctx context.Context, q workload.Query) (queryRatios, error) {
		baseTTFT, err := s.TTFT(engine.HybridStatic, q.Prefill)
		if err != nil {
			return queryRatios{}, err
		}
		baseTTLT, err := s.TTLT(engine.HybridStatic, q.Prefill, q.Decode)
		if err != nil {
			return queryRatios{}, err
		}
		r := queryRatios{
			ttft: make([]float64, len(DatasetKinds)),
			ttlt: make([]float64, len(DatasetKinds)),
		}
		perKindTTLT := make(map[engine.Kind]float64)
		for ki, k := range DatasetKinds {
			ttft, err := s.TTFT(k, q.Prefill)
			if err != nil {
				return queryRatios{}, err
			}
			ttlt, err := s.TTLT(k, q.Prefill, q.Decode)
			if err != nil {
				return queryRatios{}, err
			}
			perKindTTLT[k] = ttlt
			r.ttft[ki] = engine.Speedup(baseTTFT, ttft)
			r.ttlt[ki] = engine.Speedup(baseTTLT, ttlt)
		}
		r.facilOverSoC = engine.Speedup(perKindTTLT[engine.SoCOnly], perKindTTLT[engine.FACIL])
		return r, nil
	})
	if err != nil {
		return DatasetResult{}, err
	}
	res := DatasetResult{
		Platform:    p.Name,
		Dataset:     spec.Name,
		TTFTSpeedup: make(map[engine.Kind]float64),
		TTLTSpeedup: make(map[engine.Kind]float64),
	}
	ttftRatios := make(map[engine.Kind][]float64)
	ttltRatios := make(map[engine.Kind][]float64)
	var facilOverSoC []float64
	for _, r := range perQuery {
		for ki, k := range DatasetKinds {
			ttftRatios[k] = append(ttftRatios[k], r.ttft[ki])
			ttltRatios[k] = append(ttltRatios[k], r.ttlt[ki])
		}
		facilOverSoC = append(facilOverSoC, r.facilOverSoC)
	}
	for _, k := range DatasetKinds {
		res.TTFTSpeedup[k] = stats.Geomean(ttftRatios[k])
		res.TTLTSpeedup[k] = stats.Geomean(ttltRatios[k])
	}
	res.FACILOverSoCOnlyTTLT = stats.Geomean(facilOverSoC)
	return res, nil
}

// datasetTable renders either the TTFT (Fig. 15) or TTLT (Fig. 16) view.
// Platforms evaluate as sweep points of their own (each fanning out its
// queries), with rows reducing in platform order.
func (l *Lab) datasetTable(ctx context.Context, spec workload.Spec, cfg DatasetConfig, ttft bool, id, title, note string) (Table, error) {
	tab := Table{
		ID:     id + "/" + slug(spec.Name),
		Title:  title,
		Header: []string{"platform"},
		Notes:  []string{note},
	}
	for _, k := range DatasetKinds {
		tab.Header = append(tab.Header, k.String())
	}
	results, err := sweep(ctx, l, "dataset platforms", soc.All(), func(ctx context.Context, p soc.Platform) (DatasetResult, error) {
		return l.EvalDataset(ctx, p, spec, cfg)
	})
	if err != nil {
		return Table{}, err
	}
	for _, res := range results {
		row := []string{res.Platform}
		for _, k := range DatasetKinds {
			v := res.TTFTSpeedup[k]
			if !ttft {
				v = res.TTLTSpeedup[k]
			}
			row = append(row, x(v))
		}
		if !ttft {
			row[len(row)-1] = fmt.Sprintf("%s (%.2fx vs SoC-only)",
				row[len(row)-1], res.FACILOverSoCOnlyTTLT)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Fig15 renders the dataset TTFT comparison (speedup over hybrid static).
func (l *Lab) Fig15(ctx context.Context, spec workload.Spec, cfg DatasetConfig) (Table, error) {
	return l.datasetTable(ctx, spec, cfg, true, "fig15",
		fmt.Sprintf("Fig. 15: normalized TTFT speedup on %s", spec.Name),
		"paper geomeans: FACIL 2.37x (Alpaca), 2.63x (code autocompletion) over hybrid static")
}

// Fig16 renders the dataset TTLT comparison.
func (l *Lab) Fig16(ctx context.Context, spec workload.Spec, cfg DatasetConfig) (Table, error) {
	return l.datasetTable(ctx, spec, cfg, false, "fig16",
		fmt.Sprintf("Fig. 16: normalized TTLT speedup on %s", spec.Name),
		"paper: FACIL TTLT 1.20x over hybrid static; 3.55x/3.58x over SoC-only")
}
