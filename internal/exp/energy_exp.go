package exp

import (
	"fmt"

	"facil/internal/energy"
	"facil/internal/engine"
	"facil/internal/mapping"
	"facil/internal/soc"
)

// Energy estimates the DRAM-side energy of one decode token under the
// SoC-only and FACIL (PIM-offloaded) designs — the companion analysis to
// the paper's latency results. PIM's decode win is twofold: weight bits
// never pay interface energy, and the step finishes faster so background
// power integrates over less time. Not a paper figure.
func (l *Lab) Energy() (Table, error) {
	s, err := l.System(soc.Jetson)
	if err != nil {
		return Table{}, err
	}
	p := energy.DefaultLPDDR5()
	spec := s.Platform.Spec
	m := s.Model
	const ctx = 64

	// SoC decode step: every weight byte and the KV cache stream over
	// the interface; streaming rows give high row locality.
	socStep, err := s.DecodeStepSeconds(engine.SoCOnly, ctx)
	if err != nil {
		return Table{}, err
	}
	trafficBytes := m.TotalWeightBytes() + m.AttentionBytesPerStep(ctx)
	socE := energy.SoCTraffic(p, spec, trafficBytes, 0, 0.95)
	socE.Add(energy.Background(p, socStep))

	// PIM decode step: weights stay in-device; inputs/outputs and the
	// non-offloaded work cross the interface.
	pimStep, err := s.DecodeStepSeconds(engine.FACIL, ctx)
	if err != nil {
		return Table{}, err
	}
	var pimE energy.Breakdown
	for _, w := range m.WeightMatrices() {
		count := int64(1)
		if w.PerLayer {
			count = int64(m.Layers)
		}
		res, err := s.PIMDevice().GEMV(w.Matrix(m.DTypeBytes))
		if err != nil {
			return Table{}, err
		}
		g := spec.Geometry
		acts := res.Activations * int64(g.Channels) * int64(g.RanksPerChannel)
		io := (res.InputBursts + res.OutputBursts) * int64(g.TransferBytes) * int64(g.Channels)
		e := energy.PIMGEMV(p, spec, w.Bytes(m.DTypeBytes), acts, io)
		for i := int64(0); i < count; i++ {
			pimE.Add(e)
		}
	}
	// Attention KV on PIM.
	kv := m.AttentionKVMatrix(ctx)
	kvRes, err := s.PIMDevice().GEMV(mapping.MatrixConfig{Rows: kv.Rows, Cols: kv.Cols, DTypeBytes: kv.DTypeBytes})
	if err != nil {
		return Table{}, err
	}
	g := spec.Geometry
	kvActs := kvRes.Activations * int64(g.Channels) * int64(g.RanksPerChannel)
	kvIO := (kvRes.InputBursts + kvRes.OutputBursts) * int64(g.TransferBytes) * int64(g.Channels)
	kvE := energy.PIMGEMV(p, spec, m.AttentionBytesPerStep(ctx)/2, kvActs, kvIO)
	for i := 0; i < 2*m.Layers; i++ {
		pimE.Add(kvE)
	}
	pimE.Add(energy.Background(p, pimStep))

	render := func(b energy.Breakdown) []string {
		return []string{
			fmt.Sprintf("%.1f mJ", 1e3*b.Total()),
			fmt.Sprintf("%.1f mJ", 1e3*b.Interface),
			fmt.Sprintf("%.1f mJ", 1e3*b.Array),
			fmt.Sprintf("%.1f mJ", 1e3*b.Activate),
			fmt.Sprintf("%.1f mJ", 1e3*b.MAC),
			fmt.Sprintf("%.1f mJ", 1e3*b.Background),
		}
	}
	tab := Table{
		ID:     "energy",
		Title:  "Extension: DRAM energy per decode token (Llama3-8B on Jetson, ctx 64)",
		Header: []string{"design", "total", "interface", "array", "activate", "MAC", "background"},
		Rows: [][]string{
			append([]string{"SoC-only (GPU GEMV)"}, render(socE)...),
			append([]string{"FACIL (PIM GEMV)"}, render(pimE)...),
		},
		Notes: []string{
			fmt.Sprintf("PIM uses %.2fx less DRAM energy per token; weight bits never cross the interface",
				socE.Total()/pimE.Total()),
		},
	}
	return tab, nil
}
