package exp

import (
	"context"
	"fmt"
	"strconv"

	"facil/internal/engine"
	"facil/internal/soc"
)

// Fig14Lengths is the paper's prefill-to-decode grid axis.
var Fig14Lengths = []int{8, 16, 32, 64, 128}

// Fig14Cell is one (platform, prefill, decode) TTLT speedup.
type Fig14Cell struct {
	Platform string
	Prefill  int
	Decode   int
	Speedup  float64
}

// Fig14Compute evaluates the single-query TTLT speedup of FACIL over the
// SoC-PIM hybrid baseline across prefill-to-decode combinations (paper
// Fig. 14). The grid points run on the lab's worker pool; cells return
// in (prefill, decode) order regardless of completion order.
func (l *Lab) Fig14Compute(ctx context.Context, platform soc.Platform) ([]Fig14Cell, error) {
	s, err := l.System(platform)
	if err != nil {
		return nil, err
	}
	var points [][2]int
	for _, pf := range Fig14Lengths {
		for _, dec := range Fig14Lengths {
			points = append(points, [2]int{pf, dec})
		}
	}
	return sweep(ctx, l, "fig14", points, func(ctx context.Context, pd [2]int) (Fig14Cell, error) {
		base, err := s.TTLTStatic(engine.HybridStatic, pd[0], pd[1])
		if err != nil {
			return Fig14Cell{}, err
		}
		facil, err := s.TTLTStatic(engine.FACIL, pd[0], pd[1])
		if err != nil {
			return Fig14Cell{}, err
		}
		return Fig14Cell{
			Platform: platform.Name,
			Prefill:  pd[0],
			Decode:   pd[1],
			Speedup:  engine.Speedup(base, facil),
		}, nil
	})
}

// Fig14 renders one platform's grid (rows: prefill, columns: decode).
func (l *Lab) Fig14(ctx context.Context, platform soc.Platform) (Table, error) {
	cells, err := l.Fig14Compute(ctx, platform)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "fig14/" + slug(platform.Name),
		Title:  fmt.Sprintf("Fig. 14: TTLT speedup of FACIL over hybrid baseline (%s)", platform.Name),
		Header: []string{"prefill \\ decode"},
		Notes: []string{
			"paper: speedup amortizes with decode length; ~10% remains at decode 64",
		},
	}
	for _, d := range Fig14Lengths {
		tab.Header = append(tab.Header, "D"+strconv.Itoa(d))
	}
	i := 0
	for _, pf := range Fig14Lengths {
		row := []string{"P" + strconv.Itoa(pf)}
		for range Fig14Lengths {
			row = append(row, x(cells[i].Speedup))
			i++
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
