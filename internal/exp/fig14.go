package exp

import (
	"fmt"
	"strconv"

	"facil/internal/engine"
	"facil/internal/soc"
)

// Fig14Lengths is the paper's prefill-to-decode grid axis.
var Fig14Lengths = []int{8, 16, 32, 64, 128}

// Fig14Cell is one (platform, prefill, decode) TTLT speedup.
type Fig14Cell struct {
	Platform string
	Prefill  int
	Decode   int
	Speedup  float64
}

// Fig14Compute evaluates the single-query TTLT speedup of FACIL over the
// SoC-PIM hybrid baseline across prefill-to-decode combinations (paper
// Fig. 14).
func (l *Lab) Fig14Compute(platform soc.Platform) ([]Fig14Cell, error) {
	s, err := l.System(platform)
	if err != nil {
		return nil, err
	}
	var cells []Fig14Cell
	for _, pf := range Fig14Lengths {
		for _, dec := range Fig14Lengths {
			base, err := s.TTLTStatic(engine.HybridStatic, pf, dec)
			if err != nil {
				return nil, err
			}
			facil, err := s.TTLTStatic(engine.FACIL, pf, dec)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Fig14Cell{
				Platform: platform.Name,
				Prefill:  pf,
				Decode:   dec,
				Speedup:  engine.Speedup(base, facil),
			})
		}
	}
	return cells, nil
}

// Fig14 renders one platform's grid (rows: prefill, columns: decode).
func (l *Lab) Fig14(platform soc.Platform) (Table, error) {
	cells, err := l.Fig14Compute(platform)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		Title:  fmt.Sprintf("Fig. 14: TTLT speedup of FACIL over hybrid baseline (%s)", platform.Name),
		Header: []string{"prefill \\ decode"},
		Notes: []string{
			"paper: speedup amortizes with decode length; ~10% remains at decode 64",
		},
	}
	for _, d := range Fig14Lengths {
		tab.Header = append(tab.Header, "D"+strconv.Itoa(d))
	}
	i := 0
	for _, pf := range Fig14Lengths {
		row := []string{"P" + strconv.Itoa(pf)}
		for range Fig14Lengths {
			row = append(row, x(cells[i].Speedup))
			i++
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
