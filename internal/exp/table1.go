package exp

import (
	"context"
	"fmt"

	"facil/internal/vm"
)

// Table1Cell is one cell of the huge-page load-time study.
type Table1Cell struct {
	FMFILow, FMFIHigh float64
	FreeRel           float64
	Result            vm.LoadResult
}

// Table1Config scales the simulation. The paper loads the 16.2 GB
// Llama3-8B checkpoint on a 64 GB Jetson; Scale divides both sizes (the
// normalized load times are scale-free, and absolute times are scaled
// back up linearly when rendering).
type Table1Config struct {
	ModelBytes int64
	TotalBytes int64
	Scale      int64
	Load       vm.LoadModelConfig
	Seed       int64
}

// DefaultTable1Config matches the paper at 1/8 scale for tractable runs.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		ModelBytes: 16200 << 20, // 16.2 GB
		TotalBytes: 64 << 30,
		Scale:      8,
		Load:       vm.DefaultLoadModelConfig(),
		Seed:       1,
	}
}

// Table1FMFIBands and Table1FreeRels are the paper's grid.
var (
	Table1FMFIBands = [][2]float64{{0.0, 0.1}, {0.4, 0.5}, {0.7, 0.8}}
	Table1FreeRels  = []float64{2.5, 2.0, 1.5, 1.1}
)

// table1Point is one (FMFI band, free-memory ratio) grid cell.
type table1Point struct {
	band [2]float64
	rel  float64
}

// Table1Compute runs the grid of Table I. Each cell simulates an
// independent model load (own seed-derived PRNG), so cells fan out over
// the lab's worker pool and reduce in grid order.
func (l *Lab) Table1Compute(ctx context.Context, cfg Table1Config) ([]Table1Cell, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	model := cfg.ModelBytes / cfg.Scale
	total := cfg.TotalBytes / cfg.Scale
	var points []table1Point
	for _, band := range Table1FMFIBands {
		for _, rel := range Table1FreeRels {
			points = append(points, table1Point{band: band, rel: rel})
		}
	}
	return sweep(ctx, l, "tab1", points, func(ctx context.Context, pt table1Point) (Table1Cell, error) {
		scatter := (pt.band[0] + pt.band[1]) / 2
		res, err := vm.SimulateModelLoad(model, total, pt.rel, scatter, cfg.Load, cfg.Seed)
		if err != nil {
			return Table1Cell{}, fmt.Errorf("exp: table1 FMFI %.1f-%.1f x%.1f: %w",
				pt.band[0], pt.band[1], pt.rel, err)
		}
		// Scale absolute times back to the paper's model size.
		res.Seconds *= float64(cfg.Scale)
		res.BaselineSeconds *= float64(cfg.Scale)
		return Table1Cell{
			FMFILow: pt.band[0], FMFIHigh: pt.band[1],
			FreeRel: pt.rel,
			Result:  res,
		}, nil
	})
}

// Table1 renders the grid in the paper's layout: rows are FMFI bands,
// columns are free-memory ratios, cells are "load time (normalized)".
func (l *Lab) Table1(ctx context.Context, cfg Table1Config) (Table, error) {
	cells, err := l.Table1Compute(ctx, cfg)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "tab1",
		Title:  "Table I: LLM weight load time with huge pages under fragmentation",
		Header: []string{"FMFI \\ free mem"},
	}
	for _, rel := range Table1FreeRels {
		tab.Header = append(tab.Header, fmt.Sprintf("%.1fx", rel))
	}
	i := 0
	for _, band := range Table1FMFIBands {
		row := []string{fmt.Sprintf("%.1f-%.1f", band[0], band[1])}
		for range Table1FreeRels {
			c := cells[i]
			row = append(row, fmt.Sprintf("%.2fs (%.2fx)", c.Result.Seconds, c.Result.Normalized))
			i++
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("simulated at 1/%d scale; absolute times scaled back up; paper worst case: 16.72s (1.90x)", cfg.Scale),
		"substitution: buddy-allocator + compaction model replaces the paper's Jetson+NVMe measurement")
	return tab, nil
}
