package relayout

import (
	"testing"

	"facil/internal/mapping"
)

func TestDistinctPairsMeasuredSeparately(t *testing.T) {
	e, tab, _ := testEngine(t)
	min, max := tab.Range()
	if min == max {
		t.Skip("geometry exposes a single PIM mapping")
	}
	a, err := e.Cost(min, mapping.ConventionalMapID, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Cost(max, mapping.ConventionalMapID, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Different source mappings produce independent measurements; both
	// must be positive and finite.
	if a.Seconds <= 0 || b.Seconds <= 0 {
		t.Errorf("non-positive costs: %g, %g", a.Seconds, b.Seconds)
	}
	if a.SimulatedBytes != b.SimulatedBytes {
		t.Errorf("sample windows differ: %d vs %d", a.SimulatedBytes, b.SimulatedBytes)
	}
}

func TestZeroBytesZeroCost(t *testing.T) {
	e, tab, _ := testEngine(t)
	min, _ := tab.Range()
	res, err := e.Cost(min, mapping.ConventionalMapID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds != 0 {
		t.Errorf("zero bytes cost %g s", res.Seconds)
	}
}

func TestPIMMappingSequentialReadSlower(t *testing.T) {
	// A purely sequential SoC stream through a PIM mapping loses the
	// channel interleave (whole chunks pin to one bank), so its
	// single-stream bandwidth must fall below the conventional mapping's.
	e, tab, _ := testEngine(t)
	min, _ := tab.Range()
	conv, err := e.SequentialReadBandwidth(mapping.ConventionalMapID)
	if err != nil {
		t.Fatal(err)
	}
	pim, err := e.SequentialReadBandwidth(min)
	if err != nil {
		t.Fatal(err)
	}
	if pim >= conv {
		t.Errorf("sequential read under PIM mapping (%.1f) not below conventional (%.1f)", pim, conv)
	}
}
