package relayout

import (
	"testing"

	"facil/internal/dram"
	"facil/internal/mapping"
)

func testEngine(t *testing.T) (*Engine, *mapping.Table, dram.Spec) {
	t.Helper()
	spec, err := dram.LPDDR5("relayout test", 64, 6400, 2, 2<<30) // 4 channels
	if err != nil {
		t.Fatal(err)
	}
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mc, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(spec, tab, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	return e, tab, spec
}

func TestConventionalSequentialNearPeak(t *testing.T) {
	e, _, spec := testEngine(t)
	bw, err := e.SequentialReadBandwidth(mapping.ConventionalMapID)
	if err != nil {
		t.Fatal(err)
	}
	peak := spec.PeakBandwidthGBs()
	// Paper Sec. VI-A: the conventional mapping "achieves near-peak
	// sequential read bandwidth".
	if bw < 0.85*peak {
		t.Errorf("conventional sequential read = %.1f GB/s, want >= 85%% of %.1f", bw, peak)
	}
}

func TestRelayoutCostScalesLinearly(t *testing.T) {
	e, tab, _ := testEngine(t)
	min, _ := tab.Range()
	small, err := e.Cost(min, mapping.ConventionalMapID, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	large, err := e.Cost(min, mapping.ConventionalMapID, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	ratio := large.Seconds / small.Seconds
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4x size gave %.2fx time", ratio)
	}
	if small.EffectiveGBs != large.EffectiveGBs {
		t.Error("cache miss: same pair measured twice with different bandwidth")
	}
}

func TestRelayoutBandwidthPlausible(t *testing.T) {
	e, tab, spec := testEngine(t)
	min, _ := tab.Range()
	res, err := e.Cost(min, mapping.ConventionalMapID, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	peak := spec.PeakBandwidthGBs()
	if res.EffectiveGBs <= 0.3*peak || res.EffectiveGBs > peak {
		t.Errorf("relayout effective BW = %.1f GB/s, peak %.1f", res.EffectiveGBs, peak)
	}
	// Sanity: 2*bytes at effective BW.
	want := 2 * float64(res.Bytes) / (res.EffectiveGBs * 1e9)
	if diff := res.Seconds - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Seconds = %g, want %g", res.Seconds, want)
	}
}

func TestRelayoutJetsonScaleMatchesPaperOrder(t *testing.T) {
	// On the Jetson memory system, re-laying the full 16 GB Llama3-8B
	// weight set must land in the hundreds-of-milliseconds range the
	// paper's Fig. 6 implies (~200 ms at ~160 GB/s effective).
	spec := dram.JetsonOrinLPDDR5
	mc := mapping.MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mc, mapping.AiMChunk(spec.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(spec, tab, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := tab.Range()
	res, err := e.Cost(min, mapping.ConventionalMapID, 16<<30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds < 0.1 || res.Seconds > 0.6 {
		t.Errorf("full-model relayout = %.3f s (eff %.1f GB/s), expected 0.1-0.6 s",
			res.Seconds, res.EffectiveGBs)
	}
}

func TestCostNegativeRejected(t *testing.T) {
	e, _, _ := testEngine(t)
	if _, err := e.Cost(0, 0, -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	spec, err := dram.LPDDR5("a", 32, 6400, 2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	other, err := dram.LPDDR5("b", 64, 6400, 2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mc := mapping.MemoryConfig{Geometry: other.Geometry, HugePageBytes: 2 << 20}
	tab, err := mapping.NewTable(mc, mapping.AiMChunk(other.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(spec, tab, 0); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
