// Package relayout models the cost of re-laying tensors between DRAM
// address mappings — the overhead FACIL eliminates. Following the paper's
// methodology (Sec. VI-A, "Baseline"), the cost is the memory access time
// required to read every byte of the tensor through the source mapping and
// write it back through the destination mapping, with the full memory
// bandwidth available. The traffic is replayed on the cycle-level DRAM
// simulator; for large tensors a sample window is simulated and scaled.
package relayout

import (
	"fmt"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/parallel"
)

// DefaultSampleBytes is the simulated window for large tensors. One window
// covers several huge pages, enough for the achieved bandwidth of the
// read+write stream to converge.
const DefaultSampleBytes = 8 << 20

// Result describes one re-layout measurement.
type Result struct {
	// Bytes is the tensor size re-laid.
	Bytes int64
	// Seconds is the modeled wall-clock re-layout time.
	Seconds float64
	// EffectiveGBs is the achieved combined read+write bandwidth.
	EffectiveGBs float64
	// SimulatedBytes is the sample window actually replayed.
	SimulatedBytes int64
	// RowHitRate of the combined stream.
	RowHitRate float64
}

// Engine measures re-layout costs for one platform. Measurements are
// cached per (src, dst) mapping pair: the achieved bandwidth of the
// streaming pattern is size-independent once past a few huge pages.
//
// An Engine is safe for concurrent use: each measurement replays its own
// fresh controller, and the pair cache is internally synchronized with
// in-flight deduplication, so concurrent misses on the same pair replay
// the stream exactly once and share the result.
type Engine struct {
	spec   dram.Spec
	table  *mapping.Table
	sample int64

	cache parallel.Flight[[2]mapping.MapID, Result]
}

// NewEngine builds a re-layout engine. sampleBytes <= 0 selects
// DefaultSampleBytes.
func NewEngine(spec dram.Spec, table *mapping.Table, sampleBytes int64) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if table.Memory().Geometry != spec.Geometry {
		return nil, fmt.Errorf("relayout: table geometry does not match spec %q", spec.Name)
	}
	if sampleBytes <= 0 {
		sampleBytes = DefaultSampleBytes
	}
	if sampleBytes > spec.Geometry.CapacityBytes() {
		sampleBytes = spec.Geometry.CapacityBytes()
	}
	return &Engine{
		spec:   spec,
		table:  table,
		sample: sampleBytes,
	}, nil
}

// measure replays a sample window: every burst of the window is read via
// the src mapping and rewritten via the dst mapping. The destination
// region is modeled at a distinct physical range (the transient
// conventional copy of the on-demand re-layout scheme).
func (e *Engine) measure(src, dst mapping.MapID) (Result, error) {
	return e.cache.Do([2]mapping.MapID{src, dst}, func() (Result, error) {
		return e.replay(src, dst)
	})
}

// replay runs one sample-window measurement; measure memoizes it.
func (e *Engine) replay(src, dst mapping.MapID) (Result, error) {
	g := e.spec.Geometry
	tb := int64(g.TransferBytes)
	n := e.sample / tb
	srcMap := e.table.Lookup(src)
	dstMap := e.table.Lookup(dst)
	// Destination buffer sits in a different physical region so source
	// reads and destination writes do not alias. The stream is generated
	// on demand — read then write per burst — so the window never
	// materializes as a request slice.
	dstBase := uint64(e.spec.Geometry.CapacityBytes() / 2)
	var i int64
	write := false
	sr, err := dram.MeasureStreamFunc(e.spec, func(r *dram.Request) bool {
		if i >= n {
			return false
		}
		pa := uint64(i) * uint64(tb)
		if !write {
			ra, _ := srcMap.Translate(pa)
			*r = dram.Request{Addr: ra, Write: false}
		} else {
			wa, _ := dstMap.Translate(dstBase + pa)
			*r = dram.Request{Addr: wa, Write: true}
			i++
		}
		write = !write
		return true
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		SimulatedBytes: e.sample,
		EffectiveGBs:   sr.BandwidthGBs,
		RowHitRate:     sr.RowHitRate,
	}
	return res, nil
}

// Cost returns the modeled re-layout time for `bytes` of tensor data moved
// from the src mapping to the dst mapping: 2*bytes of traffic at the
// achieved read+write bandwidth of the pattern.
func (e *Engine) Cost(src, dst mapping.MapID, bytes int64) (Result, error) {
	if bytes < 0 {
		return Result{}, fmt.Errorf("relayout: negative size %d", bytes)
	}
	base, err := e.measure(src, dst)
	if err != nil {
		return Result{}, err
	}
	res := base
	res.Bytes = bytes
	if base.EffectiveGBs > 0 {
		res.Seconds = 2 * float64(bytes) / (base.EffectiveGBs * 1e9)
	}
	return res, nil
}

// SequentialReadBandwidth measures the achieved bandwidth of a pure
// sequential read stream under a mapping — used to verify the paper's
// claim that the conventional row:rank:column:bank:channel mapping
// achieves near-peak sequential bandwidth.
func (e *Engine) SequentialReadBandwidth(id mapping.MapID) (float64, error) {
	g := e.spec.Geometry
	tb := int64(g.TransferBytes)
	n := e.sample / tb
	m := e.table.Lookup(id)
	var i int64
	sr, err := dram.MeasureStreamFunc(e.spec, func(r *dram.Request) bool {
		if i >= n {
			return false
		}
		a, _ := m.Translate(uint64(i) * uint64(tb))
		*r = dram.Request{Addr: a}
		i++
		return true
	})
	if err != nil {
		return 0, err
	}
	return sr.BandwidthGBs, nil
}
