package vm

import (
	"fmt"
	"sort"

	"facil/internal/mapping"
)

// Translation is the result of a page-table walk: everything the memory
// controller needs, matching paper Fig. 7(b)/(c) where "both pieces of
// information [physical address and MapID] are passed to the memory
// controller".
type Translation struct {
	Phys      uint64
	MapID     mapping.MapID
	PageBytes int
}

// PageTable maps virtual pages to PTEs. It supports mixed 4 KB and 2 MB
// entries; a virtual huge-page region is either mapped by one huge entry
// or by base entries, never both.
type PageTable struct {
	base map[uint64]PTE // keyed by VA >> BasePageBits
	huge map[uint64]PTE // keyed by VA >> HugePageBits
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{
		base: make(map[uint64]PTE),
		huge: make(map[uint64]PTE),
	}
}

// MapBase installs a 4 KB mapping at va.
func (pt *PageTable) MapBase(va, phys uint64, flags PTE) error {
	if va%BasePageBytes != 0 {
		return fmt.Errorf("vm: virtual address %#x not 4K-aligned", va)
	}
	if _, ok := pt.huge[va>>HugePageBits]; ok {
		return fmt.Errorf("vm: %#x already covered by a huge mapping", va)
	}
	e, err := NewPTE(phys, flags)
	if err != nil {
		return err
	}
	pt.base[va>>BasePageBits] = e
	return nil
}

// MapHuge installs a 2 MB mapping at va with a MapID.
func (pt *PageTable) MapHuge(va, phys uint64, id mapping.MapID, flags PTE) error {
	if va%HugePageBytes != 0 {
		return fmt.Errorf("vm: virtual address %#x not 2M-aligned", va)
	}
	for off := uint64(0); off < HugePageBytes; off += BasePageBytes {
		if _, ok := pt.base[(va+off)>>BasePageBits]; ok {
			return fmt.Errorf("vm: %#x already covered by base mappings", va)
		}
	}
	e, err := NewHugePTE(phys, id, flags)
	if err != nil {
		return err
	}
	pt.huge[va>>HugePageBits] = e
	return nil
}

// Unmap removes the mapping covering va (base or huge).
func (pt *PageTable) Unmap(va uint64) {
	if _, ok := pt.huge[va>>HugePageBits]; ok {
		delete(pt.huge, va>>HugePageBits)
		return
	}
	delete(pt.base, va>>BasePageBits)
}

// Walk translates a virtual address. It returns the physical address of
// the byte, the MapID governing the page and the page size.
func (pt *PageTable) Walk(va uint64) (Translation, error) {
	if e, ok := pt.huge[va>>HugePageBits]; ok && e.Present() {
		return Translation{
			Phys:      e.PhysAddr() | (va & (HugePageBytes - 1)),
			MapID:     e.MapID(),
			PageBytes: HugePageBytes,
		}, nil
	}
	if e, ok := pt.base[va>>BasePageBits]; ok && e.Present() {
		return Translation{
			Phys:      e.PhysAddr() | (va & (BasePageBytes - 1)),
			MapID:     mapping.ConventionalMapID,
			PageBytes: BasePageBytes,
		}, nil
	}
	return Translation{}, fmt.Errorf("vm: page fault at %#x", va)
}

// Entry returns the raw PTE covering va, if any.
func (pt *PageTable) Entry(va uint64) (PTE, bool) {
	if e, ok := pt.huge[va>>HugePageBits]; ok {
		return e, true
	}
	e, ok := pt.base[va>>BasePageBits]
	return e, ok
}

// Mapped returns the total mapped bytes.
func (pt *PageTable) Mapped() int64 {
	return int64(len(pt.base))*BasePageBytes + int64(len(pt.huge))*HugePageBytes
}

// HugeEntries returns the huge-page virtual bases in ascending order;
// useful for relayout walks and diagnostics.
func (pt *PageTable) HugeEntries() []uint64 {
	vas := make([]uint64, 0, len(pt.huge))
	for vpn := range pt.huge {
		vas = append(vas, vpn<<HugePageBits)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	return vas
}
