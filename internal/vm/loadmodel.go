package vm

import (
	"fmt"
	"math/rand"
)

// LoadModelConfig parameterizes the model-weight load-time model used for
// the paper's Table I experiment (Jetson AGX Orin + Samsung 980 Pro NVMe).
type LoadModelConfig struct {
	// StorageReadGBs is the effective sequential read bandwidth from
	// storage into memory during model load, including filesystem and
	// page-fault overheads (GB/s).
	StorageReadGBs float64
	// ZeroGBs is the bandwidth at which the kernel clears a freshly
	// allocated huge page at fault time (GB/s). Base pages are cleared
	// in the shadow of storage I/O and carry no extra cost here.
	ZeroGBs float64
	// CompactCopyGBs is the effective migration bandwidth of kernel
	// compaction, including page-table fixups (GB/s of bytes moved;
	// each moved byte is read and written).
	CompactCopyGBs float64
	// ScanWindow bounds the compaction region scan.
	ScanWindow int
}

// DefaultLoadModelConfig matches the paper's testbed scale: the baseline
// (non-huge-page) load of the 16.2 GB Llama3-8B checkpoint took ~8.8 s,
// i.e. ~1.83 GB/s effective storage bandwidth.
func DefaultLoadModelConfig() LoadModelConfig {
	return LoadModelConfig{
		StorageReadGBs: 1.83,
		ZeroGBs:        12.0,
		CompactCopyGBs: 2.0,
		ScanWindow:     4096,
	}
}

// LoadResult reports one simulated model load.
type LoadResult struct {
	// Seconds is the huge-page load time.
	Seconds float64
	// BaselineSeconds is the base-page load time (storage-bound).
	BaselineSeconds float64
	// Normalized is Seconds / BaselineSeconds, the parenthesized value
	// in the paper's Table I.
	Normalized float64
	// HugePages is the number of 2 MB pages allocated.
	HugePages int64
	// CompactedPages counts allocations that required compaction.
	CompactedPages int64
	// MovedBytes is the total migration traffic.
	MovedBytes int64
	// MeasuredFMFI is the fragmentation index of the synthesized state
	// at HugeOrder, before allocation began.
	MeasuredFMFI float64
	// FreeBytes is the synthesized free memory before allocation.
	FreeBytes int64
}

// SimulateModelLoad reproduces one cell of Table I: load `modelBytes` of
// weights into huge pages on a machine with `totalMemBytes` of DRAM, of
// which `freeRel` x modelBytes is free, fragmented to `scatter` FMFI.
func SimulateModelLoad(modelBytes, totalMemBytes int64, freeRel, scatter float64, cfg LoadModelConfig, seed int64) (LoadResult, error) {
	if modelBytes <= 0 || totalMemBytes <= 0 {
		return LoadResult{}, fmt.Errorf("vm: sizes must be positive")
	}
	freeBytes := int64(freeRel * float64(modelBytes))
	if freeBytes > totalMemBytes {
		return LoadResult{}, fmt.Errorf("vm: free memory %d exceeds total %d", freeBytes, totalMemBytes)
	}
	if freeBytes < modelBytes {
		return LoadResult{}, fmt.Errorf("vm: model %d does not fit in free memory %d", modelBytes, freeBytes)
	}
	frames := int(totalMemBytes / BasePageBytes)
	b, err := NewBuddy(frames, 0)
	if err != nil {
		return LoadResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	if err := SynthesizeFragmentation(b, freeBytes/BasePageBytes, scatter, rng); err != nil {
		return LoadResult{}, err
	}

	res := LoadResult{
		FreeBytes:    b.FreeFrames() * BasePageBytes,
		MeasuredFMFI: b.FMFI(HugeOrder),
	}
	pages := (modelBytes + HugePageBytes - 1) / HugePageBytes
	res.HugePages = pages
	cursor := 0
	var movedFrames int64
	for i := int64(0); i < pages; i++ {
		_, moved, err := b.AllocHugePage(&cursor, cfg.ScanWindow)
		if err != nil {
			return LoadResult{}, fmt.Errorf("vm: huge page %d/%d: %w", i, pages, err)
		}
		if moved > 0 {
			res.CompactedPages++
			movedFrames += int64(moved)
		}
	}
	res.MovedBytes = movedFrames * BasePageBytes

	readSec := float64(modelBytes) / (cfg.StorageReadGBs * 1e9)
	zeroSec := float64(pages*HugePageBytes) / (cfg.ZeroGBs * 1e9)
	// Compaction both reads and writes every moved byte.
	compactSec := 2 * float64(res.MovedBytes) / (cfg.CompactCopyGBs * 1e9)
	res.Seconds = readSec + zeroSec + compactSec
	res.BaselineSeconds = readSec
	res.Normalized = res.Seconds / res.BaselineSeconds
	return res, nil
}
