// Package vm models the virtual-memory side of FACIL: page-table entries
// carrying a MapID in otherwise-unused bits (paper Fig. 11), a page table
// and TLB, a buddy physical-page allocator with controllable external
// fragmentation (for the paper's Table I huge-page study), and the
// pimalloc allocation path (paper Fig. 7).
package vm

import (
	"fmt"

	"facil/internal/mapping"
)

// Page sizes used throughout the package.
const (
	// BasePageBits is log2 of the 4 KB base page.
	BasePageBits = 12
	// BasePageBytes is the base page size.
	BasePageBytes = 1 << BasePageBits
	// HugePageBits is log2 of the 2 MB huge page.
	HugePageBits = 21
	// HugePageBytes is the huge page size.
	HugePageBytes = 1 << HugePageBits
	// FramesPerHugePage is the number of base frames in one huge page.
	FramesPerHugePage = HugePageBytes / BasePageBytes
)

// PTE is an x86-64-style page-table entry. Layout (paper Fig. 11):
//
//	bits [0:9)   flags (present, write, huge, ...)
//	bits [12:48) physical frame number for 4 KB pages
//	bits [21:48) physical frame number for 2 MB pages
//
// For huge pages, bits [12:21) are not needed for the frame number; FACIL
// repurposes bits [12:16) to store the MapID — no extra memory, and since
// TLB entries accommodate both page sizes, the MapID travels through the
// TLB unmodified.
type PTE uint64

// PTE flag bits.
const (
	PTEPresent PTE = 1 << 0
	PTEWrite   PTE = 1 << 1
	PTEUser    PTE = 1 << 2
	PTEHuge    PTE = 1 << 7
)

const (
	pteMapIDShift   = 12
	pteMapIDBits    = 4
	pteMapIDMask    = PTE((1<<pteMapIDBits)-1) << pteMapIDShift
	pteAddrMask     = PTE(0x0000_FFFF_FFFF_F000)
	pteHugeAddrMask = PTE(0x0000_FFFF_FFE0_0000)
)

// MaxPTEMapID is the largest MapID encodable in the repurposed bits.
// The paper notes 4 bits suffice for the worst-case 14 mappings.
const MaxPTEMapID = (1 << pteMapIDBits) - 1

// NewPTE builds a present 4 KB entry for a physical address.
func NewPTE(phys uint64, flags PTE) (PTE, error) {
	if phys%BasePageBytes != 0 {
		return 0, fmt.Errorf("vm: physical address %#x not 4K-aligned", phys)
	}
	return PTE(phys)&pteAddrMask | flags | PTEPresent, nil
}

// NewHugePTE builds a present 2 MB entry carrying a MapID.
func NewHugePTE(phys uint64, id mapping.MapID, flags PTE) (PTE, error) {
	if phys%HugePageBytes != 0 {
		return 0, fmt.Errorf("vm: physical address %#x not 2M-aligned", phys)
	}
	if id < 0 || int(id) > MaxPTEMapID {
		return 0, fmt.Errorf("vm: MapID %d does not fit in %d PTE bits", id, pteMapIDBits)
	}
	e := PTE(phys)&pteHugeAddrMask | flags | PTEPresent | PTEHuge
	e |= PTE(id) << pteMapIDShift
	return e, nil
}

// Present reports whether the entry is valid.
func (p PTE) Present() bool { return p&PTEPresent != 0 }

// Huge reports whether the entry maps a 2 MB page.
func (p PTE) Huge() bool { return p&PTEHuge != 0 }

// PhysAddr returns the mapped physical base address.
func (p PTE) PhysAddr() uint64 {
	if p.Huge() {
		return uint64(p & pteHugeAddrMask)
	}
	return uint64(p & pteAddrMask)
}

// MapID extracts the FACIL mapping identifier. For 4 KB entries (whose
// low address bits are all in use) it is always the conventional mapping.
func (p PTE) MapID() mapping.MapID {
	if !p.Huge() {
		return mapping.ConventionalMapID
	}
	return mapping.MapID((p & pteMapIDMask) >> pteMapIDShift)
}

// WithMapID returns a copy of a huge entry with the MapID replaced.
func (p PTE) WithMapID(id mapping.MapID) (PTE, error) {
	if !p.Huge() {
		return 0, fmt.Errorf("vm: MapID requires a huge-page entry")
	}
	if id < 0 || int(id) > MaxPTEMapID {
		return 0, fmt.Errorf("vm: MapID %d does not fit in %d PTE bits", id, pteMapIDBits)
	}
	return p&^pteMapIDMask | PTE(id)<<pteMapIDShift, nil
}

// WithFlippedMapIDBit returns a copy of a huge entry with one bit of
// the embedded MapID field inverted — the fault model's single-event
// upset on the repurposed PTE bits of paper Fig. 11. bit is reduced
// modulo the field width, so any non-negative index selects a real bit.
// Non-huge entries carry no MapID field and are returned unchanged.
func (p PTE) WithFlippedMapIDBit(bit int) PTE {
	if !p.Huge() {
		return p
	}
	if bit < 0 {
		bit = -bit
	}
	return p ^ PTE(1)<<(pteMapIDShift+bit%pteMapIDBits)
}

// String renders the entry for diagnostics.
func (p PTE) String() string {
	if !p.Present() {
		return "PTE(not present)"
	}
	kind := "4K"
	if p.Huge() {
		kind = "2M"
	}
	return fmt.Sprintf("PTE(%s phys=%#x mapid=%d)", kind, p.PhysAddr(), p.MapID())
}
