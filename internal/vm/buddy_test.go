package vm

import (
	"math/rand"
	"testing"
)

func TestBuddyAllocFreeRoundTrip(t *testing.T) {
	b, err := NewBuddy(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreeFrames() != 1024 {
		t.Fatalf("fresh allocator has %d free frames", b.FreeFrames())
	}
	s, err := b.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreeFrames() != 1024-16 {
		t.Errorf("free frames after alloc = %d", b.FreeFrames())
	}
	if s%16 != 0 {
		t.Errorf("order-4 block start %d misaligned", s)
	}
	if err := b.Free(s, 4); err != nil {
		t.Fatal(err)
	}
	if b.FreeFrames() != 1024 {
		t.Errorf("free frames after free = %d", b.FreeFrames())
	}
	// Full coalescing: 1024 frames coalesce back into one order-10
	// block (the largest the range supports).
	counts := b.FreeBlocks()
	if counts[10] != 1 {
		t.Errorf("blocks did not coalesce: %v", counts)
	}
}

func TestBuddyExhaustion(t *testing.T) {
	b, err := NewBuddy(64, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(6); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(0); err == nil {
		t.Error("allocation from empty allocator succeeded")
	}
	if _, err := b.Alloc(7); err == nil {
		t.Error("order above max accepted")
	}
}

func TestBuddyDoubleFreeRejected(t *testing.T) {
	b, _ := NewBuddy(64, 6)
	s, err := b.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(s, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(s, 2); err == nil {
		t.Error("double free accepted")
	}
	if err := b.Free(3, 2); err == nil {
		t.Error("misaligned free accepted")
	}
}

// TestBuddyNoDoubleAllocationUnderChurn is the regression test for stale
// free-list entries: random alloc/free churn must never hand out
// overlapping blocks.
func TestBuddyNoDoubleAllocationUnderChurn(t *testing.T) {
	b, err := NewBuddy(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	type block struct{ start, order int }
	var live []block
	owner := make([]int, 4096) // frame -> -1 free, else block tag
	for i := range owner {
		owner[i] = -1
	}
	for iter := 0; iter < 20000; iter++ {
		if rng.Intn(2) == 0 && len(live) > 0 {
			i := rng.Intn(len(live))
			bl := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := b.Free(bl.start, bl.order); err != nil {
				t.Fatalf("iter %d: free: %v", iter, err)
			}
			for f := bl.start; f < bl.start+(1<<bl.order); f++ {
				owner[f] = -1
			}
		} else {
			order := rng.Intn(5)
			s, err := b.Alloc(order)
			if err != nil {
				continue // legitimately out of memory
			}
			for f := s; f < s+(1<<order); f++ {
				if owner[f] != -1 {
					t.Fatalf("iter %d: frame %d double-allocated", iter, f)
				}
				owner[f] = iter
			}
			live = append(live, block{s, order})
		}
	}
	// Accounting must agree with the shadow map.
	var used int64
	for _, o := range owner {
		if o != -1 {
			used++
		}
	}
	if got := int64(b.Frames()) - b.FreeFrames(); got != used {
		t.Errorf("allocator says %d used, shadow map says %d", got, used)
	}
}

func TestFMFIExtremes(t *testing.T) {
	// All free memory in 2 MB blocks: FMFI at HugeOrder == 0.
	b, _ := NewBuddy(4*FramesPerHugePage, 0)
	if got := b.FMFI(HugeOrder); got != 0 {
		t.Errorf("pristine FMFI = %g, want 0", got)
	}
	// Scatter: drain then free stride-2 singles -> FMFI == 1.
	rng := rand.New(rand.NewSource(1))
	if err := SynthesizeFragmentation(b, 256, 1.0, rng); err != nil {
		t.Fatal(err)
	}
	if got := b.FMFI(HugeOrder); got != 1 {
		t.Errorf("fully scattered FMFI = %g, want 1", got)
	}
}

func TestSynthesizeFragmentationHitsTargets(t *testing.T) {
	for _, scatter := range []float64{0.05, 0.45, 0.75} {
		b, err := NewBuddy(64*FramesPerHugePage, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		free := int64(32 * FramesPerHugePage)
		if err := SynthesizeFragmentation(b, free, scatter, rng); err != nil {
			t.Fatalf("scatter %g: %v", scatter, err)
		}
		if got := b.FreeFrames(); got != free {
			t.Errorf("scatter %g: free frames = %d, want %d", scatter, got, free)
		}
		fmfi := b.FMFI(HugeOrder)
		if fmfi < scatter-0.1 || fmfi > scatter+0.1 {
			t.Errorf("scatter %g: FMFI = %g", scatter, fmfi)
		}
	}
}

func TestSynthesizeFragmentationErrors(t *testing.T) {
	b, _ := NewBuddy(1024, 0)
	rng := rand.New(rand.NewSource(1))
	if err := SynthesizeFragmentation(b, 99999, 0.5, rng); err == nil {
		t.Error("freeFrames > frames accepted")
	}
	if err := SynthesizeFragmentation(b, 10, 1.5, rng); err == nil {
		t.Error("scatter > 1 accepted")
	}
}

func TestCompactionReclaimsHugePage(t *testing.T) {
	b, err := NewBuddy(16*FramesPerHugePage, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// All free memory scattered: direct order-9 allocation must fail.
	if err := SynthesizeFragmentation(b, 4*FramesPerHugePage, 1.0, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(HugeOrder); err == nil {
		t.Fatal("order-9 allocation succeeded on fully scattered memory")
	}
	cursor := 0
	freeBefore := b.FreeFrames()
	start, moved, err := b.AllocHugePage(&cursor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved <= 0 {
		t.Errorf("compaction reported %d moved frames", moved)
	}
	if start%FramesPerHugePage != 0 {
		t.Errorf("huge page start %d misaligned", start)
	}
	// Free memory shrank by exactly one huge page (migration reshuffles
	// but does not consume).
	if got := freeBefore - b.FreeFrames(); got != FramesPerHugePage {
		t.Errorf("allocation consumed %d frames, want %d", got, FramesPerHugePage)
	}
}

func TestAllocHugePageDirectWhenUnfragmented(t *testing.T) {
	b, _ := NewBuddy(16*FramesPerHugePage, 0)
	cursor := 0
	_, moved, err := b.AllocHugePage(&cursor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("pristine allocator compacted %d frames", moved)
	}
}

func TestFreeInRegion(t *testing.T) {
	b, _ := NewBuddy(1024, 0)
	if got := b.FreeInRegion(0, 1024); got != 1024 {
		t.Errorf("FreeInRegion = %d, want 1024", got)
	}
	s, err := b.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.FreeInRegion(s, 8); got != 0 {
		t.Errorf("allocated region reports %d free", got)
	}
	if !b.FrameFree(1023) {
		t.Error("frame 1023 should be free")
	}
}
