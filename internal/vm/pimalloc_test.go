package vm

import (
	"testing"

	"facil/internal/dram"
	"facil/internal/mapping"
)

func testAddressSpace(t *testing.T) *AddressSpace {
	t.Helper()
	g := dram.Geometry{
		Channels:        4,
		RanksPerChannel: 2,
		BanksPerRank:    8,
		Rows:            1 << 12, // 512 MiB total
		RowBytes:        2048,
		TransferBytes:   32,
	}
	mem := mapping.MemoryConfig{Geometry: g, HugePageBytes: HugePageBytes}
	as, err := NewAddressSpace(mem, mapping.AiMChunk(g), 1)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestPimallocRecordsMapIDInPTEs(t *testing.T) {
	as := testAddressSpace(t)
	m := mapping.MatrixConfig{Rows: 1024, Cols: 4096, DTypeBytes: 2} // 8 MiB
	reg, err := as.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	if reg.MapID != 8 {
		t.Errorf("region MapID = %d, want 8", reg.MapID)
	}
	if len(reg.Pages) != 4 {
		t.Errorf("8 MiB region backed by %d huge pages, want 4", len(reg.Pages))
	}
	// Every page walk must return the selected MapID.
	for off := int64(0); off < reg.MappedBytes; off += HugePageBytes {
		tr, err := as.PageTable().Walk(reg.VA + uint64(off))
		if err != nil {
			t.Fatal(err)
		}
		if tr.MapID != reg.MapID || tr.PageBytes != HugePageBytes {
			t.Errorf("walk at +%d: %+v", off, tr)
		}
	}
	// Physical pages are huge-page aligned.
	for _, p := range reg.Pages {
		if p%HugePageBytes != 0 {
			t.Errorf("physical page %#x misaligned", p)
		}
	}
}

func TestPimallocRegionGeometry(t *testing.T) {
	as := testAddressSpace(t)
	m := mapping.MatrixConfig{Rows: 100, Cols: 1000, DTypeBytes: 2}
	reg, err := as.Pimalloc(m)
	if err != nil {
		t.Fatal(err)
	}
	if reg.VA%HugePageBytes != 0 {
		t.Errorf("VA %#x not huge-aligned", reg.VA)
	}
	if reg.Bytes != m.PaddedBytes() {
		t.Errorf("Bytes = %d, want padded %d", reg.Bytes, m.PaddedBytes())
	}
	if reg.MappedBytes%HugePageBytes != 0 {
		t.Errorf("MappedBytes = %d not page multiple", reg.MappedBytes)
	}
	if !reg.Contains(reg.VA) || reg.Contains(reg.End()) {
		t.Error("Contains boundary check wrong")
	}
}

func TestConventionalAlloc(t *testing.T) {
	as := testAddressSpace(t)
	reg, err := as.Alloc(10 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if reg.MapID != mapping.ConventionalMapID {
		t.Errorf("conventional region MapID = %d", reg.MapID)
	}
	if len(reg.Pages) != 3 {
		t.Errorf("10 KB backed by %d base pages, want 3", len(reg.Pages))
	}
	tr, err := as.PageTable().Walk(reg.VA + 5000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PageBytes != BasePageBytes {
		t.Errorf("walk = %+v", tr)
	}
	if _, err := as.Alloc(0); err == nil {
		t.Error("zero-byte allocation accepted")
	}
}

func TestFreeReturnsMemory(t *testing.T) {
	as := testAddressSpace(t)
	before := as.Buddy().FreeFrames()
	reg, err := as.Pimalloc(mapping.MatrixConfig{Rows: 1024, Cols: 1024, DTypeBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if as.Buddy().FreeFrames() >= before {
		t.Error("allocation did not consume frames")
	}
	if err := as.Free(reg); err != nil {
		t.Fatal(err)
	}
	if got := as.Buddy().FreeFrames(); got != before {
		t.Errorf("free frames = %d after Free, want %d", got, before)
	}
	if _, err := as.PageTable().Walk(reg.VA); err == nil {
		t.Error("region still mapped after Free")
	}
}

func TestPimallocDistinctRegionsDoNotOverlap(t *testing.T) {
	as := testAddressSpace(t)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		reg, err := as.Pimalloc(mapping.MatrixConfig{Rows: 512, Cols: 2048, DTypeBytes: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range reg.Pages {
			if seen[p] {
				t.Fatalf("physical page %#x handed out twice", p)
			}
			seen[p] = true
		}
	}
}

func TestNewAddressSpaceValidation(t *testing.T) {
	g := dram.JetsonOrinLPDDR5.Geometry
	mem := mapping.MemoryConfig{Geometry: g, HugePageBytes: 4 << 20}
	if _, err := NewAddressSpace(mem, mapping.AiMChunk(g), 1); err == nil {
		t.Error("non-2MB huge page accepted")
	}
}
