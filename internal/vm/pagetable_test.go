package vm

import (
	"testing"

	"facil/internal/mapping"
)

func TestPageTableWalkBaseAndHuge(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapBase(0x1000, 0x8000, PTEWrite); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapHuge(2<<20, 8<<20, 6, PTEWrite); err != nil {
		t.Fatal(err)
	}

	tr, err := pt.Walk(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Phys != 0x8234 || tr.PageBytes != BasePageBytes || tr.MapID != mapping.ConventionalMapID {
		t.Errorf("base walk = %+v", tr)
	}

	tr, err = pt.Walk(2<<20 + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Phys != 8<<20+0x1234 || tr.PageBytes != HugePageBytes || tr.MapID != 6 {
		t.Errorf("huge walk = %+v", tr)
	}

	if _, err := pt.Walk(0x9999_0000); err == nil {
		t.Error("unmapped address walked successfully")
	}
}

func TestPageTableOverlapRejected(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapHuge(2<<20, 8<<20, 6, 0); err != nil {
		t.Fatal(err)
	}
	// A base mapping inside the huge region must be rejected.
	if err := pt.MapBase(2<<20+0x3000, 0x10000, 0); err == nil {
		t.Error("base mapping inside huge region accepted")
	}
	// And the converse.
	pt2 := NewPageTable()
	if err := pt2.MapBase(4<<20+0x3000, 0x10000, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt2.MapHuge(4<<20, 8<<20, 6, 0); err == nil {
		t.Error("huge mapping over base mappings accepted")
	}
}

func TestPageTableAlignment(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapBase(0x123, 0x8000, 0); err == nil {
		t.Error("misaligned base VA accepted")
	}
	if err := pt.MapHuge(1<<20, 8<<20, 6, 0); err == nil {
		t.Error("misaligned huge VA accepted")
	}
}

func TestPageTableUnmapAndMapped(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapHuge(2<<20, 8<<20, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapBase(0x1000, 0x8000, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := pt.Mapped(), int64(HugePageBytes+BasePageBytes); got != want {
		t.Errorf("Mapped = %d, want %d", got, want)
	}
	pt.Unmap(2<<20 + 0x5000)
	if _, err := pt.Walk(2 << 20); err == nil {
		t.Error("huge mapping survived Unmap")
	}
	pt.Unmap(0x1000)
	if pt.Mapped() != 0 {
		t.Errorf("Mapped = %d after unmapping everything", pt.Mapped())
	}
}

func TestHugeEntriesSorted(t *testing.T) {
	pt := NewPageTable()
	for _, va := range []uint64{6 << 20, 2 << 20, 4 << 20} {
		if err := pt.MapHuge(va, va+1<<30, 6, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := pt.HugeEntries()
	want := []uint64{2 << 20, 4 << 20, 6 << 20}
	if len(got) != len(want) {
		t.Fatalf("HugeEntries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HugeEntries = %v, want %v", got, want)
		}
	}
}

func TestTLBHitMissAndMapID(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapHuge(2<<20, 8<<20, 7, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapBase(0x1000, 0x8000, 0); err != nil {
		t.Fatal(err)
	}
	tlb, err := NewTLB(16, 4, pt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tlb.Translate(2<<20 + 42)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MapID != 7 {
		t.Errorf("TLB miss path lost MapID: %+v", tr)
	}
	if s := tlb.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Errorf("stats after first access: %+v", s)
	}
	// Same huge page, different offset: must hit and keep the MapID.
	tr, err = tlb.Translate(2<<20 + 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MapID != 7 || tr.Phys != 8<<20+1<<20 {
		t.Errorf("TLB hit path wrong: %+v", tr)
	}
	if s := tlb.Stats(); s.Hits != 1 {
		t.Errorf("stats after hit: %+v", s)
	}
	// Base page coexists.
	tr, err = tlb.Translate(0x1abc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MapID != mapping.ConventionalMapID || tr.Phys != 0x8abc {
		t.Errorf("base translation wrong: %+v", tr)
	}
	if _, err := tlb.Translate(0xdead_0000); err == nil {
		t.Error("TLB translated unmapped address")
	}
	// The faulting lookup still counts as a TLB miss.
	if s := tlb.Stats(); s.Misses != 3 {
		t.Errorf("stats after fault: %+v", s)
	}
	tlb.Flush()
	if _, err := tlb.Translate(2<<20 + 42); err != nil {
		t.Fatal(err)
	}
	if s := tlb.Stats(); s.Misses != 4 {
		t.Errorf("flush did not evict: %+v", s)
	}
}

func TestTLBEviction(t *testing.T) {
	pt := NewPageTable()
	// 1-set, 2-way TLB: third distinct page evicts the LRU.
	for i := uint64(0); i < 3; i++ {
		if err := pt.MapBase(i*BasePageBytes, (i+10)*BasePageBytes, 0); err != nil {
			t.Fatal(err)
		}
	}
	tlb, err := NewTLB(1, 2, pt)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if _, err := tlb.Translate(i * BasePageBytes); err != nil {
			t.Fatal(err)
		}
	}
	// Page 0 was LRU-evicted: accessing it misses again.
	if _, err := tlb.Translate(0); err != nil {
		t.Fatal(err)
	}
	if s := tlb.Stats(); s.Misses != 4 || s.Hits != 0 {
		t.Errorf("eviction stats: %+v", s)
	}
	// Hit rate math.
	if _, err := tlb.Translate(0); err != nil {
		t.Fatal(err)
	}
	if got := tlb.Stats().HitRate(); got != 0.2 {
		t.Errorf("HitRate = %g, want 0.2", got)
	}
}

func TestNewTLBValidation(t *testing.T) {
	pt := NewPageTable()
	if _, err := NewTLB(3, 4, pt); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewTLB(4, 0, pt); err == nil {
		t.Error("zero ways accepted")
	}
}
