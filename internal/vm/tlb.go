package vm

import (
	"fmt"

	"facil/internal/mapping"
)

// TLBEntry caches one translation together with its MapID. Because the
// MapID lives in PTE bits that exist anyway, caching it requires no TLB
// datapath change (paper Sec. V-A).
type TLBEntry struct {
	vpn   uint64
	huge  bool
	phys  uint64
	mapID mapping.MapID
	valid bool
	lru   uint64
}

// TLBStats counts lookups.
type TLBStats struct {
	Hits   int64
	Misses int64
}

// HitRate returns hits / lookups.
func (s TLBStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// TLB is a set-associative translation lookaside buffer supporting mixed
// 4 KB and 2 MB entries, backed by a PageTable on miss.
type TLB struct {
	sets  int
	ways  int
	ents  []TLBEntry // sets*ways
	pt    *PageTable
	clock uint64
	stats TLBStats
}

// NewTLB builds a TLB with the given sets and ways over a page table.
func NewTLB(sets, ways int, pt *PageTable) (*TLB, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("vm: TLB sets %d must be a positive power of two", sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("vm: TLB ways %d must be positive", ways)
	}
	return &TLB{sets: sets, ways: ways, ents: make([]TLBEntry, sets*ways), pt: pt}, nil
}

// Stats returns the lookup counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.ents {
		t.ents[i].valid = false
	}
}

// Translate looks va up, walking the page table on a miss.
func (t *TLB) Translate(va uint64) (Translation, error) {
	t.clock++
	// Probe both page sizes (hardware probes both in parallel; entries
	// of either size share the structure).
	for _, huge := range [2]bool{true, false} {
		vpn := va >> BasePageBits
		if huge {
			vpn = va >> HugePageBits
		}
		set := int(vpn) & (t.sets - 1)
		for w := 0; w < t.ways; w++ {
			e := &t.ents[set*t.ways+w]
			if e.valid && e.huge == huge && e.vpn == vpn {
				e.lru = t.clock
				t.stats.Hits++
				mask := uint64(BasePageBytes - 1)
				size := BasePageBytes
				if huge {
					mask = HugePageBytes - 1
					size = HugePageBytes
				}
				return Translation{
					Phys:      e.phys | (va & mask),
					MapID:     e.mapID,
					PageBytes: size,
				}, nil
			}
		}
	}
	t.stats.Misses++
	tr, err := t.pt.Walk(va)
	if err != nil {
		return Translation{}, err
	}
	t.fill(va, tr)
	return tr, nil
}

// fill inserts a translation, evicting the set's LRU victim.
func (t *TLB) fill(va uint64, tr Translation) {
	huge := tr.PageBytes == HugePageBytes
	vpn := va >> BasePageBits
	if huge {
		vpn = va >> HugePageBits
	}
	set := int(vpn) & (t.sets - 1)
	victim := set * t.ways
	for w := 0; w < t.ways; w++ {
		e := &t.ents[set*t.ways+w]
		if !e.valid {
			victim = set*t.ways + w
			break
		}
		if e.lru < t.ents[victim].lru {
			victim = set*t.ways + w
		}
	}
	mask := uint64(BasePageBytes - 1)
	if huge {
		mask = HugePageBytes - 1
	}
	t.ents[victim] = TLBEntry{
		vpn:   vpn,
		huge:  huge,
		phys:  tr.Phys &^ mask,
		mapID: tr.MapID,
		valid: true,
		lru:   t.clock,
	}
}
