package vm

import (
	"fmt"
	"math/rand"

	"facil/internal/mapping"
)

// Region is a virtually contiguous allocation returned by pimalloc or the
// conventional allocator.
type Region struct {
	// VA is the virtual base address (huge-page aligned for pimalloc).
	VA uint64
	// Bytes is the usable size requested.
	Bytes int64
	// MappedBytes is the size actually mapped (padded to page size).
	MappedBytes int64
	// MapID is the PA-to-DA mapping of every page in the region.
	MapID mapping.MapID
	// Selection records the placement decision for pimalloc regions.
	Selection mapping.Selection
	// Pages lists the physical base addresses backing the region in
	// virtual order.
	Pages []uint64
	// PageBytes is the page size used (HugePageBytes for pimalloc).
	PageBytes int
}

// End returns the first virtual address past the region.
func (r *Region) End() uint64 { return r.VA + uint64(r.MappedBytes) }

// Contains reports whether va falls inside the region.
func (r *Region) Contains(va uint64) bool { return va >= r.VA && va < r.End() }

// AddressSpace is the OS-side allocation state of one FACIL system: a
// physical buddy allocator, a page table, and the mapping selector wiring
// of paper Fig. 7(a):
//
//  1. the user passes the matrix configuration to Pimalloc,
//  2. the mapping selector picks a MapID,
//  3. huge pages are allocated and their PTEs record {PFN, MapID},
//  4. the virtual address is returned.
type AddressSpace struct {
	mem   mapping.MemoryConfig
	chunk mapping.ChunkConfig
	buddy *Buddy
	pt    *PageTable
	// physBase is the physical address of frame 0 (usually 0).
	physBase uint64
	nextVA   uint64
	cursor   int
	rng      *rand.Rand

	// MovedFrames accumulates compaction migration work (for load-time
	// accounting).
	MovedFrames int64
	// CompactedPages counts huge-page allocations that needed
	// compaction.
	CompactedPages int64
}

// NewAddressSpace builds an address space over the memory config. The
// buddy allocator covers the geometry's full capacity.
func NewAddressSpace(mem mapping.MemoryConfig, chunk mapping.ChunkConfig, seed int64) (*AddressSpace, error) {
	if err := mem.Validate(); err != nil {
		return nil, err
	}
	if err := chunk.Validate(mem.Geometry); err != nil {
		return nil, err
	}
	if mem.HugePageBytes != HugePageBytes {
		return nil, fmt.Errorf("vm: address space requires %d B huge pages, got %d",
			HugePageBytes, mem.HugePageBytes)
	}
	frames := mem.Geometry.CapacityBytes() / BasePageBytes
	if frames > int64(^uint32(0)>>1) {
		return nil, fmt.Errorf("vm: capacity %d too large for frame index", mem.Geometry.CapacityBytes())
	}
	b, err := NewBuddy(int(frames), 0)
	if err != nil {
		return nil, err
	}
	return &AddressSpace{
		mem:    mem,
		chunk:  chunk,
		buddy:  b,
		pt:     NewPageTable(),
		nextVA: 1 << 30, // arbitrary non-zero mmap base
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// PageTable exposes the address space's page table (for the TLB and the
// memory-controller request path).
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// Buddy exposes the physical allocator (for fragmentation experiments).
func (as *AddressSpace) Buddy() *Buddy { return as.buddy }

// Memory returns the memory configuration.
func (as *AddressSpace) Memory() mapping.MemoryConfig { return as.mem }

// Chunk returns the PIM chunk configuration.
func (as *AddressSpace) Chunk() mapping.ChunkConfig { return as.chunk }

// reserveVA carves an aligned virtual range.
func (as *AddressSpace) reserveVA(bytes int64, align uint64) uint64 {
	va := (as.nextVA + align - 1) &^ (align - 1)
	as.nextVA = va + uint64(bytes)
	return va
}

// Pimalloc allocates a weight matrix with a PIM-optimized mapping. It
// implements the paper's pimalloc flow: select the MapID from the matrix /
// memory / PIM configurations, back the region with huge pages (compacting
// when fragmentation demands it), and record the MapID in each PTE.
func (as *AddressSpace) Pimalloc(m mapping.MatrixConfig) (*Region, error) {
	sel, err := mapping.SelectMapping(m, as.mem, as.chunk)
	if err != nil {
		return nil, err
	}
	if int(sel.ID) > MaxPTEMapID {
		return nil, fmt.Errorf("vm: MapID %d exceeds PTE capacity %d", sel.ID, MaxPTEMapID)
	}
	bytes := m.PaddedBytes()
	mapped := (bytes + HugePageBytes - 1) / HugePageBytes * HugePageBytes
	va := as.reserveVA(mapped, HugePageBytes)
	reg := &Region{
		VA:          va,
		Bytes:       bytes,
		MappedBytes: mapped,
		MapID:       sel.ID,
		Selection:   sel,
		PageBytes:   HugePageBytes,
	}
	for off := int64(0); off < mapped; off += HugePageBytes {
		start, moved, err := as.buddy.AllocHugePage(&as.cursor, 4096)
		if err != nil {
			as.releasePages(reg)
			return nil, fmt.Errorf("vm: pimalloc: %w", err)
		}
		if moved > 0 {
			as.CompactedPages++
			as.MovedFrames += int64(moved)
		}
		phys := as.physBase + uint64(start)*BasePageBytes
		if err := as.pt.MapHuge(va+uint64(off), phys, sel.ID, PTEWrite|PTEUser); err != nil {
			as.releasePages(reg)
			return nil, err
		}
		reg.Pages = append(reg.Pages, phys)
	}
	return reg, nil
}

// Alloc allocates conventionally mapped memory backed by base pages.
func (as *AddressSpace) Alloc(bytes int64) (*Region, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("vm: allocation size %d must be positive", bytes)
	}
	mapped := (bytes + BasePageBytes - 1) / BasePageBytes * BasePageBytes
	va := as.reserveVA(mapped, BasePageBytes)
	reg := &Region{
		VA:          va,
		Bytes:       bytes,
		MappedBytes: mapped,
		MapID:       mapping.ConventionalMapID,
		PageBytes:   BasePageBytes,
	}
	for off := int64(0); off < mapped; off += BasePageBytes {
		start, err := as.buddy.Alloc(0)
		if err != nil {
			as.releasePages(reg)
			return nil, err
		}
		phys := as.physBase + uint64(start)*BasePageBytes
		if err := as.pt.MapBase(va+uint64(off), phys, PTEWrite|PTEUser); err != nil {
			as.releasePages(reg)
			return nil, err
		}
		reg.Pages = append(reg.Pages, phys)
	}
	return reg, nil
}

// Free unmaps and releases a region.
func (as *AddressSpace) Free(reg *Region) error {
	order := 0
	if reg.PageBytes == HugePageBytes {
		order = HugeOrder
	}
	for i, phys := range reg.Pages {
		as.pt.Unmap(reg.VA + uint64(i)*uint64(reg.PageBytes))
		frame := int((phys - as.physBase) / BasePageBytes)
		if err := as.buddy.Free(frame, order); err != nil {
			return err
		}
	}
	reg.Pages = nil
	return nil
}

// releasePages rolls back a partially built region.
func (as *AddressSpace) releasePages(reg *Region) {
	order := 0
	if reg.PageBytes == HugePageBytes {
		order = HugeOrder
	}
	for i, phys := range reg.Pages {
		as.pt.Unmap(reg.VA + uint64(i)*uint64(reg.PageBytes))
		frame := int((phys - as.physBase) / BasePageBytes)
		_ = as.buddy.Free(frame, order)
	}
	reg.Pages = nil
}
