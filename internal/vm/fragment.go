package vm

import (
	"fmt"
	"math/rand"
)

// SynthesizeFragmentation drives a fresh (fully free) buddy allocator into
// a state with `freeFrames` frames free and a free-memory fragmentation
// index at HugeOrder approximately equal to `scatter`.
//
// The technique: allocate every frame, then release memory back in two
// patterns — whole 2 MB-aligned chunks (usable for huge pages, FMFI
// contribution 0) and stride-2 single frames (never coalescing past order
// 0, FMFI contribution 1). The scattered fraction of the freed memory
// therefore directly sets the fragmentation index, mirroring how file
// cache and slab churn fragment real systems.
func SynthesizeFragmentation(b *Buddy, freeFrames int64, scatter float64, rng *rand.Rand) error {
	if freeFrames < 0 || freeFrames > int64(b.Frames()) {
		return fmt.Errorf("vm: freeFrames %d out of range [0, %d]", freeFrames, b.Frames())
	}
	if scatter < 0 || scatter > 1 {
		return fmt.Errorf("vm: scatter %g out of range [0,1]", scatter)
	}
	// Drain the allocator completely.
	for b.FreeFrames() > 0 {
		o := b.maxOrder
		for o > 0 {
			if _, err := b.Alloc(o); err == nil {
				break
			}
			o--
		}
		if o == 0 {
			if _, err := b.Alloc(0); err != nil {
				return fmt.Errorf("vm: drain failed: %w", err)
			}
		}
	}

	scatterFrames := int64(float64(freeFrames)*scatter + 0.5)
	chunkFrames := freeFrames - scatterFrames
	fullChunks := int(chunkFrames / FramesPerHugePage)
	remainder := int(chunkFrames % FramesPerHugePage)
	chunkRegions := fullChunks
	if remainder > 0 {
		chunkRegions++
	}

	// Scattered frees occupy the top of memory as a run/gap pattern:
	// runs of free frames separated by at least one used frame. Runs
	// stay below 512 frames, so they can never coalesce into an
	// order-9 (huge-page) block — each freed frame counts fully toward
	// the fragmentation index. The run length adapts to the free
	// density so that even nearly-full-free memories can be driven to
	// high FMFI.
	zoneTop := int64(b.Frames())
	// The bottom chunkRegions huge-page regions are reserved for the
	// chunked frees.
	zoneBottom := int64(chunkRegions) * FramesPerHugePage
	zone := zoneTop - zoneBottom
	pos := zoneTop - 1
	if scatterFrames > 0 {
		if zone <= scatterFrames {
			return fmt.Errorf("vm: no room to scatter %d frames in a %d-frame zone", scatterFrames, zone)
		}
		// Pick run/gap lengths so the pattern provably fits:
		// ceil(scatterFrames/runLen) gaps of gapLen used frames must
		// fit in the zone's zone-scatterFrames non-freed frames.
		runLen, gapLen := int64(1), int64(1)
		spare := zone - scatterFrames
		if spare >= scatterFrames {
			// Low density: single-frame runs, floor-divided gaps.
			gapLen = spare / scatterFrames
		} else {
			// High density: minimal runs separated by single gaps.
			runLen = (scatterFrames + spare - 1) / spare
			if runLen > 256 {
				runLen = 256
			}
		}
		for scatterFrames > 0 && pos >= zoneBottom {
			n := runLen
			if n > scatterFrames {
				n = scatterFrames
			}
			for i := int64(0); i < n && pos >= zoneBottom; i++ {
				if err := b.Free(int(pos), 0); err != nil {
					return err
				}
				scatterFrames--
				pos--
			}
			pos -= gapLen
		}
		if scatterFrames > 0 {
			return fmt.Errorf("vm: ran out of frames for scattered frees")
		}
	}

	// Chunked frees: random 2 MB-aligned regions from the reserved
	// bottom zone. A final partial chunk is released as smaller aligned
	// blocks inside one extra region so the requested free-frame count
	// is met exactly.
	regions := int(zoneBottom / FramesPerHugePage)
	if regions < chunkRegions {
		return fmt.Errorf("vm: no room for chunked frees (%d regions, need %d)", regions, chunkRegions)
	}
	if zoneBottom > zoneTop {
		return fmt.Errorf("vm: chunk zone (%d frames) exceeds memory (%d)", zoneBottom, zoneTop)
	}
	perm := rng.Perm(regions)
	for i := 0; i < fullChunks; i++ {
		if err := b.Free(perm[i]*FramesPerHugePage, HugeOrder); err != nil {
			return err
		}
	}
	if remainder > 0 {
		base := perm[fullChunks] * FramesPerHugePage
		off := 0
		for order := HugeOrder - 1; order >= 0; order-- {
			if remainder&(1<<order) != 0 {
				if err := b.Free(base+off, order); err != nil {
					return err
				}
				off += 1 << order
			}
		}
	}
	return nil
}

// CompactResult reports one huge-page compaction.
type CompactResult struct {
	// Start is the frame index of the reclaimed 2 MB region.
	Start int
	// MovedFrames is how many in-use frames were migrated out.
	MovedFrames int
}

// CompactHugePage models kernel memory compaction: it selects the 2 MB-
// aligned region with the most free frames within a bounded scan, migrates
// the region's remaining used frames into free frames elsewhere, and
// returns the region as a free order-9 block. Callers invoke it after an
// order-9 allocation fails.
//
// scanWindow bounds how many regions are examined (0 means all); the scan
// rotates via `cursor`, which callers thread between invocations to avoid
// rescanning reclaimed regions.
func (b *Buddy) CompactHugePage(cursor *int, scanWindow int) (CompactResult, error) {
	regions := b.Frames() / FramesPerHugePage
	if regions == 0 {
		return CompactResult{}, fmt.Errorf("vm: memory smaller than one huge page")
	}
	if scanWindow <= 0 || scanWindow > regions {
		scanWindow = regions
	}
	best, bestFree := -1, 0
	for i := 0; i < scanWindow; i++ {
		r := (*cursor + i) % regions
		free := b.FreeInRegion(r*FramesPerHugePage, FramesPerHugePage)
		if free == FramesPerHugePage {
			// Fully free region inside a larger free block; the
			// caller's Alloc would have succeeded. Skip.
			continue
		}
		if free > bestFree {
			best, bestFree = r, free
		}
	}
	if best < 0 {
		return CompactResult{}, fmt.Errorf("vm: compaction found no region with free frames")
	}
	*cursor = (best + 1) % regions
	start := best * FramesPerHugePage
	moved := FramesPerHugePage - bestFree
	if int64(moved) > b.FreeFrames()-int64(bestFree) {
		return CompactResult{}, fmt.Errorf("vm: not enough free memory to migrate %d frames", moved)
	}

	// Extract the region's free sub-blocks. Since no free block of
	// order >= HugeOrder exists when compaction runs, every free block
	// with a start inside the region lies entirely inside it.
	for f := start; f < start+FramesPerHugePage; f++ {
		if b.blockFree[f] {
			b.removeFreeBlock(f)
		}
	}
	// Migrate used frames to free frames elsewhere.
	for i := 0; i < moved; i++ {
		if _, err := b.Alloc(0); err != nil {
			return CompactResult{}, fmt.Errorf("vm: migration target allocation failed: %w", err)
		}
	}
	// The region is now wholly reclaimable.
	if err := b.Free(start, HugeOrder); err != nil {
		return CompactResult{}, err
	}
	return CompactResult{Start: start, MovedFrames: moved}, nil
}

// AllocHugePage allocates one 2 MB page, compacting if necessary. It
// returns the start frame and the number of frames migrated (0 when the
// buddy allocator could satisfy the request directly).
func (b *Buddy) AllocHugePage(cursor *int, scanWindow int) (start, moved int, err error) {
	if s, err := b.Alloc(HugeOrder); err == nil {
		return s, 0, nil
	}
	res, err := b.CompactHugePage(cursor, scanWindow)
	if err != nil {
		return 0, 0, err
	}
	s, err := b.Alloc(HugeOrder)
	if err != nil {
		return 0, 0, fmt.Errorf("vm: allocation failed after compaction: %w", err)
	}
	return s, res.MovedFrames, nil
}
