package vm

import (
	"fmt"
)

// HugeOrder is the buddy order of a 2 MB huge page (512 x 4 KB frames).
const HugeOrder = 9

// Buddy is a binary buddy allocator over 4 KB physical frames, with the
// frame-level instrumentation needed to measure external fragmentation
// (Gorman's free-memory fragmentation index, FMFI) and to model huge-page
// compaction for the paper's Table I experiment.
type Buddy struct {
	frames   int
	maxOrder int
	// freeLists[o] holds candidate start frames of free blocks of
	// order o. Entries are lazily invalidated: an entry is valid only
	// while its generation stamp matches blockGen[start], the block is
	// free and has order o.
	freeLists [][]listEntry
	// blockOrder[s] is the order of the free block starting at s
	// (meaningful only when blockFree[s]).
	blockOrder []int8
	// blockFree[s] marks s as the start of a free block.
	blockFree []bool
	// blockGen[s] increments on every insertFree(s, .), invalidating
	// stale free-list entries for s.
	blockGen []uint32
	// frameFree marks each frame free or used (for region scans).
	frameFree []bool
	freeCount int64 // free frames
}

// NewBuddy builds an allocator over `frames` 4 KB frames, all free.
// maxOrder caps block size (HugeOrder+2 by default if maxOrder <= 0).
func NewBuddy(frames, maxOrder int) (*Buddy, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("vm: buddy needs a positive frame count, got %d", frames)
	}
	if maxOrder <= 0 {
		maxOrder = HugeOrder + 2
	}
	b := &Buddy{
		frames:     frames,
		maxOrder:   maxOrder,
		freeLists:  make([][]listEntry, maxOrder+1),
		blockOrder: make([]int8, frames),
		blockFree:  make([]bool, frames),
		blockGen:   make([]uint32, frames),
		frameFree:  make([]bool, frames),
	}
	// Carve the range into maximal aligned free blocks.
	pos := 0
	for pos < frames {
		o := maxOrder
		for o > 0 && (pos&((1<<o)-1) != 0 || pos+(1<<o) > frames) {
			o--
		}
		b.insertFree(pos, o)
		pos += 1 << o
	}
	return b, nil
}

// listEntry is a stamped free-list slot.
type listEntry struct {
	start int32
	gen   uint32
}

// insertFree registers a free block.
func (b *Buddy) insertFree(start, order int) {
	b.blockFree[start] = true
	b.blockOrder[start] = int8(order)
	b.blockGen[start]++
	b.freeLists[order] = append(b.freeLists[order], listEntry{int32(start), b.blockGen[start]})
	for f := start; f < start+(1<<order); f++ {
		b.frameFree[f] = true
	}
	b.freeCount += int64(1) << order
}

// removeFreeBlock unregisters a free block (the free-list entry is left to
// lazy invalidation).
func (b *Buddy) removeFreeBlock(start int) int {
	order := int(b.blockOrder[start])
	b.blockFree[start] = false
	for f := start; f < start+(1<<order); f++ {
		b.frameFree[f] = false
	}
	b.freeCount -= int64(1) << order
	return order
}

// popFree returns a valid free block of exactly `order`, or -1.
func (b *Buddy) popFree(order int) int {
	list := b.freeLists[order]
	for len(list) > 0 {
		e := list[len(list)-1]
		list = list[:len(list)-1]
		s := int(e.start)
		if b.blockFree[s] && int(b.blockOrder[s]) == order && b.blockGen[s] == e.gen {
			b.freeLists[order] = list
			return s
		}
	}
	b.freeLists[order] = list
	return -1
}

// Alloc allocates a block of 2^order frames and returns its start frame.
func (b *Buddy) Alloc(order int) (int, error) {
	if order < 0 || order > b.maxOrder {
		return 0, fmt.Errorf("vm: order %d out of range [0,%d]", order, b.maxOrder)
	}
	for o := order; o <= b.maxOrder; o++ {
		s := b.popFree(o)
		if s < 0 {
			continue
		}
		b.removeFreeBlock(s)
		// Split back down, freeing the upper halves.
		for cur := o; cur > order; cur-- {
			b.insertFree(s+(1<<(cur-1)), cur-1)
		}
		return s, nil
	}
	return 0, fmt.Errorf("vm: out of memory at order %d (%d frames free)", order, b.freeCount)
}

// Free releases a block previously allocated (or a sub-block of one; the
// model permits freeing arbitrary aligned ranges, which the fragmentation
// synthesizer uses). Buddies coalesce eagerly.
func (b *Buddy) Free(start, order int) error {
	if order < 0 || order > b.maxOrder {
		return fmt.Errorf("vm: order %d out of range", order)
	}
	if start < 0 || start+(1<<order) > b.frames || start&((1<<order)-1) != 0 {
		return fmt.Errorf("vm: block (%d, order %d) out of range or misaligned", start, order)
	}
	for f := start; f < start+(1<<order); f++ {
		if b.frameFree[f] {
			return fmt.Errorf("vm: double free of frame %d", f)
		}
	}
	for order < b.maxOrder {
		buddy := start ^ (1 << order)
		if buddy+(1<<order) > b.frames || !b.blockFree[buddy] || int(b.blockOrder[buddy]) != order {
			break
		}
		b.removeFreeBlock(buddy)
		if buddy < start {
			start = buddy
		}
		order++
	}
	b.insertFree(start, order)
	return nil
}

// Frames returns the total frame count.
func (b *Buddy) Frames() int { return b.frames }

// FreeFrames returns the number of free 4 KB frames.
func (b *Buddy) FreeFrames() int64 { return b.freeCount }

// FreeBlocks counts valid free blocks per order.
func (b *Buddy) FreeBlocks() []int64 {
	counts := make([]int64, b.maxOrder+1)
	for s := 0; s < b.frames; s++ {
		if b.blockFree[s] {
			counts[b.blockOrder[s]]++
		}
	}
	return counts
}

// FMFI computes Gorman's free-memory fragmentation index at `order`:
//
//	FMFI_j = (TotalFree - sum_{i >= j} 2^i * k_i) / TotalFree
//
// where k_i is the number of free blocks of order i. 0 means all free
// memory is usable for order-j allocations; values near 1 mean free
// memory exists only in fragments smaller than 2^j frames.
func (b *Buddy) FMFI(order int) float64 {
	if b.freeCount == 0 {
		return 0
	}
	counts := b.FreeBlocks()
	var usable int64
	for i := order; i <= b.maxOrder; i++ {
		usable += counts[i] << i
	}
	return float64(b.freeCount-usable) / float64(b.freeCount)
}

// FreeInRegion counts free frames within [start, start+n).
func (b *Buddy) FreeInRegion(start, n int) int {
	end := start + n
	if end > b.frames {
		end = b.frames
	}
	c := 0
	for f := start; f < end; f++ {
		if b.frameFree[f] {
			c++
		}
	}
	return c
}

// FrameFree reports whether one frame is free.
func (b *Buddy) FrameFree(f int) bool { return b.frameFree[f] }
