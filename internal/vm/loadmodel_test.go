package vm

import "testing"

// The load-time model runs on scaled-down sizes in unit tests; the Table I
// bench uses the paper's full 16.2 GB / 64 GB configuration.

func TestSimulateModelLoadBaseline(t *testing.T) {
	cfg := DefaultLoadModelConfig()
	model := int64(256 << 20)
	total := int64(2 << 30)
	res, err := SimulateModelLoad(model, total, 2.5, 0.05, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normalized < 1.0 {
		t.Errorf("huge pages faster than baseline: %+v", res)
	}
	// With low fragmentation, the overhead is just zeroing: bounded by
	// 1 + read/zero ratio.
	maxFloor := 1 + cfg.ZeroGBs/cfg.StorageReadGBs // generous bound
	if res.Normalized > maxFloor {
		t.Errorf("low-fragmentation normalized = %g too high", res.Normalized)
	}
	if res.CompactedPages != 0 {
		t.Errorf("unfragmented load compacted %d pages", res.CompactedPages)
	}
	if res.HugePages != 128 {
		t.Errorf("HugePages = %d, want 128", res.HugePages)
	}
}

func TestSimulateModelLoadMonotoneInFMFI(t *testing.T) {
	cfg := DefaultLoadModelConfig()
	model := int64(256 << 20)
	total := int64(2 << 30)
	prev := 0.0
	for _, scatter := range []float64{0.05, 0.45, 0.75} {
		res, err := SimulateModelLoad(model, total, 1.1, scatter, cfg, 42)
		if err != nil {
			t.Fatalf("scatter %g: %v", scatter, err)
		}
		if res.Seconds < prev {
			t.Errorf("load time not monotone in FMFI: %g then %g at scatter %g",
				prev, res.Seconds, scatter)
		}
		prev = res.Seconds
	}
}

func TestSimulateModelLoadMonotoneInPressure(t *testing.T) {
	cfg := DefaultLoadModelConfig()
	model := int64(256 << 20)
	total := int64(2 << 30)
	prev := 0.0
	// Tighter free memory (lower freeRel) must not speed up the load.
	for _, rel := range []float64{2.5, 2.0, 1.5, 1.1} {
		res, err := SimulateModelLoad(model, total, rel, 0.45, cfg, 42)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		if res.Seconds+1e-9 < prev {
			t.Errorf("load time decreased under pressure: %g -> %g at rel %g",
				prev, res.Seconds, rel)
		}
		prev = res.Seconds
	}
}

func TestSimulateModelLoadHighFragmentationCompacts(t *testing.T) {
	cfg := DefaultLoadModelConfig()
	res, err := SimulateModelLoad(256<<20, 2<<30, 1.1, 0.75, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompactedPages == 0 {
		t.Error("heavily fragmented load required no compaction")
	}
	if res.MovedBytes == 0 {
		t.Error("compaction moved no bytes")
	}
	if res.MeasuredFMFI < 0.6 {
		t.Errorf("synthesized FMFI = %g, want >= 0.6", res.MeasuredFMFI)
	}
}

func TestSimulateModelLoadErrors(t *testing.T) {
	cfg := DefaultLoadModelConfig()
	if _, err := SimulateModelLoad(0, 1<<30, 2, 0.1, cfg, 1); err == nil {
		t.Error("zero model size accepted")
	}
	if _, err := SimulateModelLoad(1<<30, 1<<30, 2, 0.1, cfg, 1); err == nil {
		t.Error("free memory larger than total accepted")
	}
	if _, err := SimulateModelLoad(1<<30, 4<<30, 0.5, 0.1, cfg, 1); err == nil {
		t.Error("model larger than free memory accepted")
	}
}
