package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"facil/internal/mapping"
)

func TestPTEBasic(t *testing.T) {
	e, err := NewPTE(0x1234_5000, PTEWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Present() || e.Huge() {
		t.Errorf("4K entry flags wrong: %v", e)
	}
	if e.PhysAddr() != 0x1234_5000 {
		t.Errorf("PhysAddr = %#x", e.PhysAddr())
	}
	if e.MapID() != mapping.ConventionalMapID {
		t.Errorf("4K entry MapID = %d, want conventional", e.MapID())
	}
	if _, err := NewPTE(0x1234_5678, 0); err == nil {
		t.Error("misaligned physical address accepted")
	}
}

func TestHugePTEMapIDRoundTrip(t *testing.T) {
	for id := mapping.MapID(0); id <= MaxPTEMapID; id++ {
		e, err := NewHugePTE(0x4000_0000, id, PTEWrite)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Huge() || !e.Present() {
			t.Fatalf("huge entry flags wrong: %v", e)
		}
		if e.MapID() != id {
			t.Errorf("MapID round trip: got %d, want %d", e.MapID(), id)
		}
		if e.PhysAddr() != 0x4000_0000 {
			t.Errorf("huge PhysAddr = %#x", e.PhysAddr())
		}
	}
	if _, err := NewHugePTE(0x4000_0000, MaxPTEMapID+1, 0); err == nil {
		t.Error("oversized MapID accepted")
	}
	if _, err := NewHugePTE(0x4000_1000, 1, 0); err == nil {
		t.Error("non-2M-aligned huge page accepted")
	}
}

// TestMapIDDoesNotDisturbAddress is the paper's Fig. 11 claim: the MapID
// occupies bits a 2 MB PTE does not use, so address and flags survive any
// MapID.
func TestMapIDDoesNotDisturbAddress(t *testing.T) {
	f := func(pfn uint32, idSeed uint8) bool {
		phys := (uint64(pfn) << HugePageBits) & uint64(pteHugeAddrMask)
		id := mapping.MapID(idSeed % (MaxPTEMapID + 1))
		e, err := NewHugePTE(phys, id, PTEWrite|PTEUser)
		if err != nil {
			return false
		}
		return e.PhysAddr() == phys && e.MapID() == id &&
			e.Present() && e.Huge() && e&PTEWrite != 0 && e&PTEUser != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithMapID(t *testing.T) {
	e, err := NewHugePTE(0x4000_0000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.WithMapID(7)
	if err != nil {
		t.Fatal(err)
	}
	if e2.MapID() != 7 || e2.PhysAddr() != e.PhysAddr() {
		t.Errorf("WithMapID broke entry: %v", e2)
	}
	base, _ := NewPTE(0x1000, 0)
	if _, err := base.WithMapID(1); err == nil {
		t.Error("WithMapID on 4K entry accepted")
	}
	if _, err := e.WithMapID(MaxPTEMapID + 1); err == nil {
		t.Error("WithMapID accepted oversized ID")
	}
}

func TestPTEString(t *testing.T) {
	var zero PTE
	if got := zero.String(); got != "PTE(not present)" {
		t.Errorf("zero PTE string = %q", got)
	}
	e, _ := NewHugePTE(0x4000_0000, 5, 0)
	if got := e.String(); !strings.Contains(got, "2M") || !strings.Contains(got, "mapid=5") {
		t.Errorf("huge PTE string = %q", got)
	}
}

func TestWithFlippedMapIDBit(t *testing.T) {
	pte, err := NewHugePTE(64<<21, 5, PTEWrite)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 4; bit++ {
		f := pte.WithFlippedMapIDBit(bit)
		if f.MapID() == pte.MapID() {
			t.Errorf("bit %d flip left MapID %d unchanged", bit, pte.MapID())
		}
		if got, want := int(f.MapID())^int(pte.MapID()), 1<<bit; got != want {
			t.Errorf("bit %d flip changed MapID by %#x, want %#x", bit, got, want)
		}
		if f.PhysAddr() != pte.PhysAddr() || !f.Huge() || !f.Present() {
			t.Errorf("bit %d flip disturbed non-MapID fields: %v vs %v", bit, f, pte)
		}
		if f.WithFlippedMapIDBit(bit) != pte {
			t.Errorf("double flip of bit %d is not the identity", bit)
		}
	}
	// Index reduction: bit 4 targets the same bit as 0, negatives fold.
	if pte.WithFlippedMapIDBit(4) != pte.WithFlippedMapIDBit(0) {
		t.Error("bit index not reduced modulo the field width")
	}
	if pte.WithFlippedMapIDBit(-1) != pte.WithFlippedMapIDBit(1) {
		t.Error("negative bit index not folded")
	}
	// A 4 KB entry has no MapID field to corrupt.
	small, err := NewPTE(0x5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.WithFlippedMapIDBit(2) != small {
		t.Error("non-huge PTE modified")
	}
}
