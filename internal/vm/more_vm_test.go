package vm

import (
	"math/rand"
	"testing"

	"facil/internal/mapping"
)

func TestFMFIAcrossOrders(t *testing.T) {
	// Free memory held as order-5 blocks: usable at order <= 5,
	// fragmented at order > 5.
	b, err := NewBuddy(4*FramesPerHugePage, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := SynthesizeFragmentation(b, 0, 0, rng); err != nil {
		t.Fatal(err)
	}
	for start := 0; start < 16*32; start += 64 {
		if err := b.Free(start, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.FMFI(5); got != 0 {
		t.Errorf("FMFI(5) = %g, want 0", got)
	}
	if got := b.FMFI(HugeOrder); got != 1 {
		t.Errorf("FMFI(9) = %g, want 1 (all blocks below order 9)", got)
	}
}

func TestCompactionScanWindowBoundsWork(t *testing.T) {
	// A tiny scan window still reclaims a page, just possibly a worse
	// one (more frames moved).
	mk := func() *Buddy {
		b, err := NewBuddy(32*FramesPerHugePage, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		if err := SynthesizeFragmentation(b, 8*FramesPerHugePage, 1.0, rng); err != nil {
			t.Fatal(err)
		}
		return b
	}
	bSmall, bBig := mk(), mk()
	cs, cb := 0, 0
	_, movedSmall, err := bSmall.AllocHugePage(&cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, movedBig, err := bBig.AllocHugePage(&cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if movedSmall < movedBig {
		t.Errorf("narrow scan moved %d frames, full scan %d — full scan should pick the best region",
			movedSmall, movedBig)
	}
}

func TestAddressSpaceCompactionCountersAccumulate(t *testing.T) {
	as := testAddressSpace(t)
	// Fragment the buddy underneath the address space, then pimalloc.
	b := as.Buddy()
	// Consume most free memory as singles to force compaction.
	total := b.FreeFrames()
	for i := int64(0); i < total-3*FramesPerHugePage; i++ {
		if _, err := b.Alloc(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := as.Pimalloc(mapping.MatrixConfig{Rows: 512, Cols: 1024, DTypeBytes: 2}); err != nil {
		t.Fatal(err)
	}
	// Whether compaction triggered depends on interleaving; the counters
	// must at least be consistent.
	if as.CompactedPages < 0 || as.MovedFrames < 0 {
		t.Errorf("counters negative: %d, %d", as.CompactedPages, as.MovedFrames)
	}
	if as.CompactedPages == 0 && as.MovedFrames != 0 {
		t.Errorf("moved frames without compacted pages")
	}
}
