package parallel

import "sync"

// Flight is a concurrency-safe memoization cache with in-flight
// deduplication: concurrent Do calls for the same key run the compute
// function exactly once and share its result, instead of redundantly
// recomputing it on every cache-missing goroutine. This matters for the
// sweep workers, which hit the simulation caches cold in a storm — with
// a plain locked map each worker would duplicate the expensive compute
// before the first store lands.
//
// Successful results are cached forever; errors are returned to every
// waiter of that flight but not cached, so a later Do retries. The zero
// Flight is ready to use. fn runs outside the lock and must not call Do
// on the same Flight with the same key (it would deadlock on itself).
type Flight[K comparable, V any] struct {
	mu       sync.Mutex
	done     map[K]V
	inflight map[K]*flightCall[V]
}

// flightCall tracks one in-flight computation.
type flightCall[V any] struct {
	wg  sync.WaitGroup
	v   V
	err error
}

// Do returns the cached value for key, waiting for an in-flight
// computation of the same key if one is running, and otherwise computing
// it via fn.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.done == nil {
		f.done = make(map[K]V)
		f.inflight = make(map[K]*flightCall[V])
	}
	if v, ok := f.done[key]; ok {
		f.mu.Unlock()
		return v, nil
	}
	if c, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		c.wg.Wait()
		return c.v, c.err
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	f.inflight[key] = c
	f.mu.Unlock()

	c.v, c.err = fn()

	f.mu.Lock()
	if c.err == nil {
		f.done[key] = c.v
	}
	delete(f.inflight, key)
	f.mu.Unlock()
	c.wg.Done()
	return c.v, c.err
}
