package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightDeduplicatesConcurrentMisses is the singleflight contract:
// many goroutines missing on the same key run the compute function once
// and all observe its result.
func TestFlightDeduplicatesConcurrentMisses(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int64
	release := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = f.Do("k", func() (int, error) {
				calls.Add(1)
				<-release // hold the flight open so every waiter joins it
				return 42, nil
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("compute function ran %d times, want 1", n)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Errorf("waiter %d: got (%d, %v), want (42, nil)", i, results[i], errs[i])
		}
	}
}

// TestFlightCachesSuccess verifies a second Do on a completed key returns
// the stored value without re-running fn.
func TestFlightCachesSuccess(t *testing.T) {
	var f Flight[int, string]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := f.Do(7, func() (string, error) {
			calls++
			return "seven", nil
		})
		if err != nil || v != "seven" {
			t.Fatalf("Do #%d = (%q, %v), want (seven, nil)", i, v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute function ran %d times, want 1", calls)
	}
}

// TestFlightDoesNotCacheErrors verifies a failed flight is retried: the
// error reaches the caller, but a later Do computes again and can succeed.
func TestFlightDoesNotCacheErrors(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	if _, err := f.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, err := f.Do("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry Do = (%d, %v), want (9, nil)", v, err)
	}
}

// TestFlightIndependentKeys verifies distinct keys do not share flights
// or cached values.
func TestFlightIndependentKeys(t *testing.T) {
	var f Flight[int, int]
	for k := 0; k < 5; k++ {
		v, err := f.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("Do(%d) = (%d, %v), want (%d, nil)", k, v, err, k*k)
		}
	}
}
