package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestSweepOrdersResultsByIndex exercises a many-point, many-worker sweep
// (the -race build makes this a data-race probe of the pool itself) and
// checks that results land by point index, not completion order.
func TestSweepOrdersResultsByIndex(t *testing.T) {
	points := make([]int, 200)
	for i := range points {
		points[i] = i
	}
	got, err := Sweep(context.Background(), points, func(_ context.Context, p int) (int, error) {
		// Stagger completions so late indexes often finish first.
		if p%7 == 0 {
			time.Sleep(time.Millisecond)
		}
		return p * p, nil
	}, Workers(16))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i*i)
		}
	}
}

// TestSweepMatchesSerial runs the same sweep at worker counts 1 and 8 and
// requires identical result slices — the determinism contract every
// experiment table rests on.
func TestSweepMatchesSerial(t *testing.T) {
	points := make([]float64, 64)
	for i := range points {
		points[i] = float64(i) / 3
	}
	fn := func(_ context.Context, p float64) (string, error) {
		return fmt.Sprintf("%.6f", p*p+1), nil
	}
	serial, err := Sweep(context.Background(), points, fn, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(context.Background(), points, fn, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("results diverge at %d: serial %q parallel %q", i, serial[i], par[i])
		}
	}
}

// TestSweepFirstErrorCancels checks that a failing point cancels the
// context seen by other points and that the lowest-index error wins.
func TestSweepFirstErrorCancels(t *testing.T) {
	errBoom := errors.New("boom")
	var cancelled atomic.Int64
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	_, err := Sweep(context.Background(), points, func(ctx context.Context, p int) (int, error) {
		if p == 3 {
			return 0, errBoom
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return 0, ctx.Err()
		case <-time.After(20 * time.Millisecond):
			return p, nil
		}
	}, Workers(4))
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	if cancelled.Load() == 0 {
		t.Error("no in-flight point observed cancellation")
	}
}

// TestSweepContextCancellation cancels the parent context mid-sweep and
// requires a prompt return with ctx.Err().
func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	go func() {
		<-started
		cancel()
	}()
	points := make([]int, 100)
	begin := time.Now()
	_, err := Sweep(ctx, points, func(ctx context.Context, _ int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return 0, nil
		}
	}, Workers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSweepSerialPathHonorsCancelledContext checks the workers==1 path
// stops between points once the context dies.
func TestSweepSerialPathHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	points := make([]int, 10)
	_, err := Sweep(ctx, points, func(_ context.Context, _ int) (int, error) {
		ran++
		cancel()
		return 0, nil
	}, Workers(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d points after cancellation, want 1", ran)
	}
}

// TestSweepProgress checks the progress callback fires once per point
// with a final (total, total) call, at both worker counts.
func TestSweepProgress(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var calls int
		var last int
		points := make([]int, 30)
		_, err := Sweep(context.Background(), points, func(_ context.Context, p int) (int, error) {
			return p, nil
		}, Workers(workers), Progress(func(done, total int) {
			calls++
			last = done
			if total != len(points) {
				t.Errorf("workers=%d: total = %d, want %d", workers, total, len(points))
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(points) || last != len(points) {
			t.Errorf("workers=%d: %d progress calls (last %d), want %d", workers, calls, last, len(points))
		}
	}
}

// TestSweepEmpty returns immediately with no error.
func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(context.Background(), nil, func(_ context.Context, _ int) (int, error) {
		t.Fatal("fn called for empty sweep")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty sweep = (%v, %v)", got, err)
	}
}
