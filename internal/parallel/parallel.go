// Package parallel is the sweep substrate for the experiment stack: a
// bounded worker pool that evaluates independent points of a parameter
// grid concurrently while keeping results byte-identical to a serial
// run.
//
// Determinism contract: results land in the output slice by point index,
// never by completion order, and every point's computation is independent
// of every other point's, so a sweep at any worker count produces exactly
// the same output slice. Callers that reduce results (geomeans, rendered
// tables) therefore emit identical bytes whether the sweep ran on one
// worker or many.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// options collects the sweep knobs.
type options struct {
	workers  int
	progress func(done, total int)
}

// Option tunes a Sweep.
type Option func(*options)

// Workers bounds the worker pool. n <= 0 selects runtime.GOMAXPROCS(0);
// the pool never exceeds the point count.
func Workers(n int) Option {
	return func(o *options) { o.workers = n }
}

// Progress installs a completion callback, invoked once per finished
// point with the number of points done so far and the total. Calls are
// serialized by the sweep (the callback needs no locking of its own) but
// run on worker goroutines, so it should return quickly.
func Progress(fn func(done, total int)) Option {
	return func(o *options) { o.progress = fn }
}

// Sweep evaluates fn over every point with a bounded worker pool and
// returns the results indexed like points.
//
// Cancellation: the first point error cancels the context passed to the
// remaining fn invocations and stops new points from being dispatched;
// Sweep then returns the error of the lowest-index failing point among
// those that ran. If ctx itself is cancelled, Sweep returns ctx.Err()
// promptly (as soon as in-flight points notice the cancellation).
func Sweep[P, R any](ctx context.Context, points []P, fn func(ctx context.Context, point P) (R, error), opts ...Option) ([]R, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n := len(points)
	if n == 0 {
		return nil, ctx.Err()
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if workers == 1 {
		// Serial fast path: same semantics, no goroutines.
		results := make([]R, n)
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, p)
			if err != nil {
				return nil, err
			}
			results[i] = r
			if o.progress != nil {
				o.progress(i+1, n)
			}
		}
		return results, nil
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]R, n)
	var (
		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = n // lowest failing index seen so far
	)
	indexes := make(chan int)
	go func() {
		defer close(indexes)
		for i := 0; i < n; i++ {
			select {
			case indexes <- i:
			case <-sctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				if sctx.Err() != nil {
					// Drain dispatched indexes without running them once
					// the sweep is cancelled; the results are discarded.
					continue
				}
				r, err := fn(sctx, points[i])
				mu.Lock()
				if err != nil {
					// Points that merely echo the sweep's own
					// cancellation do not outrank the causing error.
					if i < errIdx && !(errors.Is(err, context.Canceled) && sctx.Err() != nil && ctx.Err() == nil) {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = r
				done++
				if o.progress != nil {
					o.progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
