package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// jsonEvent is the wire form of one trace-event record.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format of the trace-event spec, the shape
// Perfetto and chrome://tracing load directly.
type traceFile struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteJSON serializes the buffered trace in Chrome trace-event JSON
// object format. Metadata (track names) is emitted first, then every
// buffered event sorted by timestamp, so the file's event stream is
// monotonic even though duration slices are recorded at their *end*
// time. WriteJSON is a cold path: it allocates freely and may run while
// recording continues (it works on a snapshot).
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Snapshot()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]jsonEvent, 0, len(events)+t.metaLen())}
	for _, m := range t.Metadata() {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: m.Name, Ph: string(PhaseMetadata), PID: m.PID, TID: m.TID,
			Args: map[string]any{"name": m.Str},
		})
	}
	for _, e := range events {
		je := jsonEvent{Name: e.Name, Ph: string(e.Phase), TS: e.TS, PID: e.PID, TID: e.TID}
		if e.Phase == PhaseComplete {
			d := e.Dur
			je.Dur = &d
		}
		if e.Phase == PhaseInstant {
			je.S = "t" // thread-scoped marker
		}
		if e.ArgName != "" {
			je.Args = map[string]any{e.ArgName: e.Arg}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// metaLen returns the metadata count (0 for nil).
func (t *Tracer) metaLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.meta)
}

// WriteFile writes the trace to path (0644), creating or truncating it.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
