// Package obs is the observability layer of the simulation stack: a
// lightweight structured event tracer plus a reproducibility manifest.
//
// The tracer records simulator activity — lane occupancy spans, queue
// depth counters, admission/rejection instants, DRAM scheduler counters —
// into a fixed-capacity ring buffer and serializes it in the Chrome
// trace-event format (the `trace_event` JSON schema), so a serving
// timeline opens directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing with no conversion step.
//
// Tracing is off by default and is designed to cost nothing when off: a
// nil *Tracer is the disabled tracer, every recording method is a
// nil-receiver no-op, and BenchmarkTracerDisabled pins the disabled-path
// overhead (a single pointer test, ≤2 ns/event). When enabled, the hot
// path appends a fixed-size Event value into a preallocated ring — no
// allocation, no formatting; all rendering happens in WriteJSON after
// the simulation finishes.
package obs

import "sync"

// Phase is the trace-event phase discriminator (the "ph" field of the
// Chrome trace-event format).
type Phase byte

// The phases the tracer emits. Complete events carry a start timestamp
// plus a duration (one slice in the timeline), instants are zero-width
// markers, counters render as stacked area charts, and metadata events
// name the process/thread tracks.
const (
	// PhaseComplete is a duration slice ("X"): ts + dur.
	PhaseComplete Phase = 'X'
	// PhaseInstant is a zero-width marker ("i").
	PhaseInstant Phase = 'i'
	// PhaseCounter is a sampled counter track ("C").
	PhaseCounter Phase = 'C'
	// PhaseMetadata names a process or thread track ("M").
	PhaseMetadata Phase = 'M'
)

// Event is one fixed-size trace record. Timestamps and durations are in
// trace microseconds (the unit Perfetto expects); PID/TID select the
// process and thread track the event renders on. Exactly one optional
// numeric argument (ArgName/Arg) is carried inline so the hot path never
// allocates; Str is only used by metadata events (track names).
type Event struct {
	// Phase discriminates the record kind (complete/instant/counter/
	// metadata).
	Phase Phase
	// PID and TID are the process and thread track identifiers.
	PID, TID int64
	// TS is the start timestamp in microseconds; Dur the duration of a
	// complete event (0 otherwise).
	TS, Dur float64
	// Name labels the slice, marker or counter series.
	Name string
	// ArgName and Arg carry one optional numeric argument ("" = none).
	ArgName string
	// Arg is the numeric argument value.
	Arg float64
	// Str is the string argument of metadata events (the track name).
	Str string
}

// DefaultCapacity is the ring size New uses when given a non-positive
// capacity: 256 Ki events (~30 MB), enough for several serving2 sweeps.
const DefaultCapacity = 1 << 18

// Tracer is a bounded in-memory trace recorder. A nil *Tracer is the
// disabled tracer: every method is a nil-safe no-op, so callers thread a
// possibly-nil tracer through hot paths without guards.
//
// A Tracer is safe for concurrent use; recording takes one short mutex
// hold (parallel sweep points share a tracer). When the ring is full the
// oldest events are overwritten — the trace keeps the *most recent*
// window, and Dropped reports how many events were evicted. Metadata
// (track names) is stored out of band and never evicted.
type Tracer struct {
	mu      sync.Mutex
	events  []Event // ring storage, len grows to cap then stays
	start   int     // index of the oldest event once wrapped
	dropped uint64
	meta    []Event
}

// New builds an enabled tracer holding at most capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{events: make([]Event, 0, capacity)}
}

// Enabled reports whether the tracer records events (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// record appends e to the ring, evicting the oldest event when full.
func (t *Tracer) record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
	} else {
		t.events[t.start] = e
		t.start++
		if t.start == len(t.events) {
			t.start = 0
		}
		t.dropped++
	}
	t.mu.Unlock()
}

// Complete records a duration slice on (pid, tid) starting at tsUS and
// lasting durUS microseconds.
func (t *Tracer) Complete(pid, tid int64, name string, tsUS, durUS float64) {
	if t == nil {
		return
	}
	t.record(Event{Phase: PhaseComplete, PID: pid, TID: tid, Name: name, TS: tsUS, Dur: durUS})
}

// CompleteArg is Complete with one numeric argument attached.
func (t *Tracer) CompleteArg(pid, tid int64, name string, tsUS, durUS float64, argName string, arg float64) {
	if t == nil {
		return
	}
	t.record(Event{Phase: PhaseComplete, PID: pid, TID: tid, Name: name, TS: tsUS, Dur: durUS, ArgName: argName, Arg: arg})
}

// Instant records a zero-width marker on (pid, tid) at tsUS.
func (t *Tracer) Instant(pid, tid int64, name string, tsUS float64) {
	if t == nil {
		return
	}
	t.record(Event{Phase: PhaseInstant, PID: pid, TID: tid, Name: name, TS: tsUS})
}

// InstantArg is Instant with one numeric argument attached.
func (t *Tracer) InstantArg(pid, tid int64, name string, tsUS float64, argName string, arg float64) {
	if t == nil {
		return
	}
	t.record(Event{Phase: PhaseInstant, PID: pid, TID: tid, Name: name, TS: tsUS, ArgName: argName, Arg: arg})
}

// Counter records a sample of the named counter series on pid at tsUS.
// Consecutive samples of one name render as a stepped area chart.
func (t *Tracer) Counter(pid int64, name string, tsUS, value float64) {
	if t == nil {
		return
	}
	t.record(Event{Phase: PhaseCounter, PID: pid, Name: name, TS: tsUS, ArgName: "value", Arg: value})
}

// ProcessName labels the pid track (trace viewers sort and title process
// groups by it). Metadata is never evicted by ring wrap-around.
func (t *Tracer) ProcessName(pid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, Event{Phase: PhaseMetadata, PID: pid, Name: "process_name", Str: name})
	t.mu.Unlock()
}

// ThreadName labels the (pid, tid) track.
func (t *Tracer) ThreadName(pid, tid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, Event{Phase: PhaseMetadata, PID: pid, TID: tid, Name: "thread_name", Str: name})
	t.mu.Unlock()
}

// Len returns the number of buffered (non-metadata) events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the ring evicted to make room.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the buffered events oldest-first (metadata excluded).
// The returned slice is a copy; recording may continue concurrently.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Metadata returns a copy of the recorded track-name events.
func (t *Tracer) Metadata() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.meta...)
}
