package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Build identifies one compiled binary: the module version plus the VCS
// facts the Go toolchain bakes into build info. Both front ends expose
// it (facilsim -version, facild GET /version) and manifests embed it,
// so any exported result names the exact build that produced it.
type Build struct {
	// Version is the module version ("(devel)" for source builds,
	// "unknown" when build info is unavailable, e.g. plain go test).
	Version string `json:"version"`
	// GitRev is the VCS revision ("unknown" for non-VCS builds).
	GitRev string `json:"git_rev"`
	// GitDirty marks a build from a modified working tree.
	GitDirty bool `json:"git_dirty,omitempty"`
	// GoVersion is the toolchain that compiled the binary.
	GoVersion string `json:"go_version"`
	// OS and Arch locate the binary's target platform.
	OS string `json:"os"`
	// Arch is the target architecture (GOARCH).
	Arch string `json:"arch"`
}

// CurrentBuild reads the running binary's build identity from
// runtime/debug.ReadBuildInfo.
func CurrentBuild() Build {
	b := Build{
		Version:   "unknown",
		GitRev:    "unknown",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.GitRev = s.Value
		case "vcs.modified":
			b.GitDirty = s.Value == "true"
		}
	}
	return b
}

// String renders the build as a one-line banner, e.g.
// "facil (devel) rev 8c92959 (dirty) go1.22.0 linux/amd64".
func (b Build) String() string {
	rev := b.GitRev
	if len(rev) > 12 {
		rev = rev[:12]
	}
	dirty := ""
	if b.GitDirty {
		dirty = " (dirty)"
	}
	return fmt.Sprintf("facil %s rev %s%s %s %s/%s", b.Version, rev, dirty, b.GoVersion, b.OS, b.Arch)
}
