package obs

import "testing"

// sinkTracer defeats dead-code elimination of the nil receiver.
var sinkTracer *Tracer

// BenchmarkTracerDisabled pins the cost of an event on the disabled
// (nil) tracer — a single pointer test, the price every hot path pays
// when tracing is off. The observability budget (DESIGN.md §8) requires
// ≤2 ns/event; on this container it measures well under 1 ns.
func BenchmarkTracerDisabled(b *testing.B) {
	tr := sinkTracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.CompleteArg(1, 0, "prefill", float64(i), 1, "query", float64(i))
	}
}

// BenchmarkTracerEnabled measures the enabled hot path: one mutex
// hold plus a fixed-size copy into the preallocated ring — no
// allocation (ReportAllocs must show 0 allocs/op).
func BenchmarkTracerEnabled(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CompleteArg(1, 0, "prefill", float64(i), 1, "query", float64(i))
	}
}

// TestTracerDisabledOverhead enforces the disabled-path budget with a
// miniature benchmark run. The bound is deliberately loose (20 ns vs
// the ~1 ns measured) so a shared CI runner cannot flake it, while a
// regression that adds locking or allocation to the disabled path still
// fails outright.
func TestTracerDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkTracerDisabled)
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled tracer allocates: %d allocs/op", res.AllocsPerOp())
	}
	if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns > 20 {
		t.Fatalf("disabled tracer costs %.1f ns/event, want ≤2 (20 with CI slack)", ns)
	}
}

// TestTracerEnabledNoAllocs pins the zero-alloc contract of the enabled
// hot path.
func TestTracerEnabledNoAllocs(t *testing.T) {
	tr := New(1 << 10)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Complete(1, 0, "prefill", 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer allocates %.1f allocs/op on the hot path", allocs)
	}
}
