package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedDocComments is the repo's exported-identifier comment
// check (the revive `exported` rule, self-hosted so CI needs no extra
// tool): every exported top-level type, function, method, constant and
// variable in the audited packages must carry a doc comment. It runs as
// part of `go test ./...`, which the CI workflow executes on every
// push, so missing comments fail the build.
func TestExportedDocComments(t *testing.T) {
	for _, dir := range []string{".", "../serve", "../stats", "../fault", "../run", "../daemon", "../cluster", "../tune"} {
		checkPackageDocs(t, dir)
	}
}

// checkPackageDocs parses one package directory (tests excluded) and
// reports every undocumented exported declaration.
func checkPackageDocs(t *testing.T, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(t, fset, decl)
			}
		}
	}
}

// checkDecl flags an undocumented exported declaration.
func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment",
				fset.Position(d.Pos()), declKind(d), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					t.Errorf("%s: exported type %s has no doc comment",
						fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						t.Errorf("%s: exported %s has no doc comment",
							fset.Position(s.Pos()), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a function is free-standing or a
// method on an exported type (methods on unexported types are internal
// API and exempt, matching revive).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// declKind names a FuncDecl for the error message.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
