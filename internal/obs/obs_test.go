package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestNilTracerIsNoOp exercises every method on the disabled (nil)
// tracer: nothing may panic, record, or report state.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Complete(1, 2, "a", 0, 1)
	tr.CompleteArg(1, 2, "a", 0, 1, "x", 3)
	tr.Instant(1, 2, "b", 0)
	tr.InstantArg(1, 2, "b", 0, "x", 3)
	tr.Counter(1, "c", 0, 4)
	tr.ProcessName(1, "p")
	tr.ThreadName(1, 2, "t")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil || tr.Metadata() != nil {
		t.Fatal("nil tracer holds state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil tracer emits invalid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 0 {
		t.Fatalf("nil tracer emitted %d events", len(tf.TraceEvents))
	}
}

// TestRingEviction fills a 4-slot ring with 7 events and checks the
// oldest three were evicted, keeping the most recent window in order.
func TestRingEviction(t *testing.T) {
	tr := New(4)
	for i := 0; i < 7; i++ {
		tr.Instant(0, 0, "e", float64(i))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	snap := tr.Snapshot()
	for i, e := range snap {
		if want := float64(3 + i); e.TS != want {
			t.Errorf("snapshot[%d].TS = %v, want %v", i, e.TS, want)
		}
	}
}

// TestWriteJSONValidAndMonotonic records spans out of chronological
// order (as the simulator does: a slice is recorded when it *ends*) and
// checks the serialized stream parses as trace-event JSON with
// non-decreasing timestamps and metadata up front.
func TestWriteJSONValidAndMonotonic(t *testing.T) {
	tr := New(64)
	tr.ProcessName(1, "replica 0")
	tr.ThreadName(1, 0, "SoC lane")
	tr.Complete(1, 0, "late", 50, 10)
	tr.Complete(1, 0, "early", 5, 40) // recorded second, starts first
	tr.CompleteArg(1, 1, "decode", 20, 5, "query", 7)
	tr.Instant(1, 0, "arrival", 30)
	tr.Counter(1, "depth", 35, 2)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int64          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(tf.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(tf.TraceEvents))
	}
	if tf.TraceEvents[0].Ph != "M" || tf.TraceEvents[1].Ph != "M" {
		t.Errorf("metadata not emitted first: %+v", tf.TraceEvents[:2])
	}
	last := -1.0
	for _, e := range tf.TraceEvents[2:] {
		if e.TS < last {
			t.Fatalf("timestamps not monotonic: %v after %v", e.TS, last)
		}
		last = e.TS
	}
	for _, e := range tf.TraceEvents {
		if e.Name == "decode" {
			if v, ok := e.Args["query"].(float64); !ok || v != 7 {
				t.Errorf("decode args = %v, want query=7", e.Args)
			}
		}
	}
}

// TestConcurrentRecording hammers one tracer from several goroutines;
// run under -race this pins the locking contract.
func TestConcurrentRecording(t *testing.T) {
	tr := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Complete(int64(g), 0, "work", float64(i), 1)
				tr.Counter(int64(g), "n", float64(i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 4000 {
		t.Fatalf("buffered+dropped = %d, want 4000", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestManifestRoundTrip checks the manifest serializes and carries the
// runtime facts.
func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("facilsim", []string{"-format", "json", "serving2"})
	m.WallSeconds = 1.5
	m.Experiments = []string{"serving2"}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "facilsim" || back.SchemaVersion != SchemaVersion ||
		back.GoVersion == "" || back.GitRev == "" || len(back.Args) != 3 {
		t.Fatalf("manifest lost fields: %+v", back)
	}
}
