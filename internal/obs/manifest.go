package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Manifest captures everything needed to reproduce one tool invocation:
// the code revision, the runtime environment, the command line, and the
// run's wall time. facilsim writes it as manifest.json next to exported
// results (and embeds it in -format json output), so a results directory
// is self-describing.
type Manifest struct {
	// Tool names the producing binary (e.g. "facilsim").
	Tool string `json:"tool"`
	// SchemaVersion versions the export schema documented in
	// EXPERIMENTS.md; consumers should reject unknown major versions.
	SchemaVersion int `json:"schema_version"`
	// Version is the module version from build info ("(devel)" for
	// source builds, "unknown" when build info is unavailable).
	Version string `json:"version,omitempty"`
	// GitRev is the VCS revision baked into the binary by the Go
	// toolchain ("unknown" for non-VCS builds such as go run in tests).
	GitRev string `json:"git_rev"`
	// GitDirty marks a build from a modified working tree.
	GitDirty bool `json:"git_dirty,omitempty"`
	// GoVersion, OS and Arch describe the build and host.
	GoVersion string `json:"go_version"`
	// OS is the runtime operating system (GOOS).
	OS string `json:"os"`
	// Arch is the runtime architecture (GOARCH).
	Arch string `json:"arch"`
	// NumCPU and Maxprocs describe the host's parallelism envelope.
	NumCPU int `json:"num_cpu"`
	// Maxprocs is runtime.GOMAXPROCS at startup.
	Maxprocs int `json:"gomaxprocs"`
	// Args is the full command line (os.Args[1:]).
	Args []string `json:"args"`
	// Start is the invocation's start time; WallSeconds its duration.
	Start time.Time `json:"start"`
	// WallSeconds is the run's total wall-clock time in seconds.
	WallSeconds float64 `json:"wall_seconds"`
	// Seed echoes the -seed override (0 = experiment defaults).
	Seed int64 `json:"seed,omitempty"`
	// Parallelism echoes -par (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Experiments lists the experiment IDs the invocation ran, and
	// Failed the subset that returned errors.
	Experiments []string `json:"experiments,omitempty"`
	// Failed lists the experiment IDs that errored.
	Failed []string `json:"failed,omitempty"`
}

// SchemaVersion is the current machine-readable export schema version
// (see EXPERIMENTS.md "Machine-readable output").
const SchemaVersion = 1

// NewManifest fills a manifest with build/runtime facts: the module
// version, VCS revision and dirty bit from the binary's build info, Go
// version, OS, architecture, CPU counts and the start timestamp.
func NewManifest(tool string, args []string) Manifest {
	b := CurrentBuild()
	return Manifest{
		Tool:          tool,
		SchemaVersion: SchemaVersion,
		Version:       b.Version,
		GitRev:        b.GitRev,
		GitDirty:      b.GitDirty,
		GoVersion:     b.GoVersion,
		OS:            b.OS,
		Arch:          b.Arch,
		NumCPU:        runtime.NumCPU(),
		Maxprocs:      runtime.GOMAXPROCS(0),
		Args:          args,
		Start:         time.Now(),
	}
}

// WriteJSON serializes the manifest with indentation.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
