// Package sched models the co-scheduling of PIM and non-PIM memory
// requests on shared channels — the integration challenge the paper's
// Discussion (Sec. V-C) leaves open. It implements three arbitration
// policies over the cycle-level channel simulator:
//
//   - PIMFirst: the lock-step PIM schedule never waits; SoC requests fill
//     the remaining command/data-bus slots. Single row buffer: every PIM
//     pass evicts the SoC's open rows and vice versa.
//   - SoCFirst: ready SoC requests drain before each PIM pass begins.
//   - DualRowBuffer: the NeuPIMs-style alternative the paper cites — PIM
//     operations use a second per-bank row buffer, eliminating row-buffer
//     conflicts between the two classes while still sharing command slots
//     and the MAC cadence.
package sched

import (
	"fmt"
	"math/rand"

	"facil/internal/dram"
	"facil/internal/stats"
)

// Policy selects the arbitration scheme.
type Policy int

// The co-scheduling policies.
const (
	PIMFirst Policy = iota
	SoCFirst
	DualRowBuffer
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PIMFirst:
		return "PIM-first (shared row buffer)"
	case SoCFirst:
		return "SoC-first (shared row buffer)"
	case DualRowBuffer:
		return "dual row buffer (NeuPIMs-style)"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Policies lists all schemes.
func Policies() []Policy { return []Policy{PIMFirst, SoCFirst, DualRowBuffer} }

// Workload describes one co-scheduling scenario on a single channel.
type Workload struct {
	// PIMPasses is the number of all-bank row passes (ACT + one MAC per
	// row burst + PRE on each rank) the PIM job executes.
	PIMPasses int
	// SoCRequests is the number of background SoC bursts.
	SoCRequests int
	// SoCRate is the SoC arrival rate in requests per burst cycle
	// (e.g. 0.25 = one request every 4 cycles).
	SoCRate float64
	// MACInterval is the PIM MAC cadence in burst cycles.
	MACInterval int
	// Seed drives the SoC address stream.
	Seed int64
}

// DefaultWorkload returns a medium-contention scenario.
func DefaultWorkload() Workload {
	return Workload{
		PIMPasses:   64,
		SoCRequests: 4096,
		SoCRate:     0.25,
		MACInterval: 6,
		Seed:        1,
	}
}

// Result summarizes one co-scheduled run.
type Result struct {
	Policy Policy
	// PIMCycles is the completion cycle of the PIM job.
	PIMCycles int64
	// PIMSlowdown is PIMCycles / isolated PIM cycles.
	PIMSlowdown float64
	// SoCMeanLatency and SoCP99Latency are request latencies in cycles
	// (Done - Arrival).
	SoCMeanLatency float64
	SoCP99Latency  float64
	// SoCSlowdown is mean latency / isolated mean latency.
	SoCSlowdown float64
	// SoCFinished counts completed SoC requests.
	SoCFinished int
}

// socStream builds the background SoC request stream: random addresses
// (conventional-mapping locality: sequential bursts with occasional
// jumps) paced at the requested rate.
func socStream(spec dram.Spec, w Workload) []dram.Request {
	rng := rand.New(rand.NewSource(w.Seed))
	g := spec.Geometry
	reqs := make([]dram.Request, 0, w.SoCRequests)
	row, bank, col := rng.Intn(g.Rows), rng.Intn(g.BanksPerRank), 0
	var cycle float64
	step := 1 / w.SoCRate
	for i := 0; i < w.SoCRequests; i++ {
		if rng.Float64() < 0.05 { // jump to a new row
			row, bank, col = rng.Intn(g.Rows), rng.Intn(g.BanksPerRank), rng.Intn(g.ColumnsPerRow())
		}
		reqs = append(reqs, dram.Request{
			Addr: dram.Addr{
				Rank:   i % g.RanksPerChannel,
				Bank:   bank,
				Row:    row,
				Column: col,
			},
			Write:   rng.Intn(4) == 0,
			Arrival: int64(cycle),
		})
		col++
		if col >= g.ColumnsPerRow() {
			col = 0
			bank = rng.Intn(g.BanksPerRank)
		}
		cycle += step
	}
	return reqs
}

// runPIMPass executes one all-bank row pass on every rank.
func runPIMPass(ch *dram.Channel, spec dram.Spec, row, macInterval int, interleave func()) error {
	g := spec.Geometry
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		// Single-row-buffer mode requires all banks precharged; SoC
		// rows are evicted here (the contention cost).
		if _, err := ch.AllBankPRE(rk); err != nil {
			return err
		}
		if _, err := ch.AllBankACT(rk, row%g.Rows); err != nil {
			return err
		}
	}
	for b := 0; b < g.ColumnsPerRow(); b++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			if _, err := ch.AllBankMAC(rk, b, macInterval); err != nil {
				return err
			}
		}
		interleave()
	}
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		if _, err := ch.AllBankPRE(rk); err != nil {
			return err
		}
	}
	return nil
}

// isolatedPIMCycles times the PIM job alone.
func isolatedPIMCycles(spec dram.Spec, w Workload) (int64, error) {
	ch := dram.NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	for p := 0; p < w.PIMPasses; p++ {
		if err := runPIMPass(ch, spec, p, w.MACInterval, func() {}); err != nil {
			return 0, err
		}
	}
	return ch.Now(), nil
}

// isolatedSoCLatency times the SoC stream alone.
func isolatedSoCLatency(spec dram.Spec, w Workload) (mean float64, err error) {
	ch := dram.NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	reqs := socStream(spec, w)
	for i := range reqs {
		if err := ch.Enqueue(&reqs[i]); err != nil {
			return 0, err
		}
	}
	ch.Drain()
	lat := make([]float64, len(reqs))
	for i := range reqs {
		lat[i] = float64(reqs[i].Done - reqs[i].Arrival)
	}
	return stats.Mean(lat), nil
}

// Cosimulate runs the PIM job and the SoC stream concurrently on one
// channel under a policy and reports interference metrics.
func Cosimulate(spec dram.Spec, w Workload, policy Policy) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if w.PIMPasses <= 0 || w.SoCRequests <= 0 || w.SoCRate <= 0 {
		return Result{}, fmt.Errorf("sched: workload fields must be positive: %+v", w)
	}
	basePIM, err := isolatedPIMCycles(spec, w)
	if err != nil {
		return Result{}, err
	}
	baseSoC, err := isolatedSoCLatency(spec, w)
	if err != nil {
		return Result{}, err
	}

	ch := dram.NewChannel(&spec)
	ch.SetRefreshEnabled(false)
	if policy == DualRowBuffer {
		ch.SetDualRowBuffer(true)
	}
	reqs := socStream(spec, w)
	for i := range reqs {
		if err := ch.Enqueue(&reqs[i]); err != nil {
			return Result{}, err
		}
	}
	drainReady := func() {
		for ch.PendingReady() > 0 {
			ch.StepOne()
		}
	}
	// With a single (shared) row buffer, SoC requests cannot interleave
	// inside a PIM pass: they would evict the PIM row mid-stream. They
	// run between passes (SoCFirst) or only after the job (PIMFirst).
	// Dual row buffers remove the hazard, so SoC requests fill the free
	// command/data slots between MAC commands.
	interleave := func() {}
	if policy == DualRowBuffer {
		interleave = func() {
			if ch.PendingReady() > 0 {
				ch.StepOne()
			}
		}
	}
	var pimDone int64
	for p := 0; p < w.PIMPasses; p++ {
		if policy == SoCFirst {
			drainReady()
		}
		if err := runPIMPass(ch, spec, p, w.MACInterval, interleave); err != nil {
			return Result{}, err
		}
		pimDone = ch.Now()
	}
	// Finish remaining SoC traffic.
	ch.Drain()

	res := Result{
		Policy:      policy,
		PIMCycles:   pimDone,
		PIMSlowdown: float64(pimDone) / float64(basePIM),
	}
	lat := make([]float64, 0, len(reqs))
	for i := range reqs {
		if reqs[i].Done > 0 {
			lat = append(lat, float64(reqs[i].Done-reqs[i].Arrival))
			res.SoCFinished++
		}
	}
	res.SoCMeanLatency = stats.Mean(lat)
	res.SoCP99Latency = stats.Percentile(lat, 99)
	if baseSoC > 0 {
		res.SoCSlowdown = res.SoCMeanLatency / baseSoC
	}
	return res, nil
}
