package sched

import (
	"testing"

	"facil/internal/dram"
)

func schedSpec() dram.Spec {
	s, _ := dram.LPDDR5("sched test", 16, 6400, 2, 256<<20) // 1 channel
	return s
}

func TestCosimulateAllPolicies(t *testing.T) {
	spec := schedSpec()
	w := DefaultWorkload()
	results := map[Policy]Result{}
	for _, p := range Policies() {
		r, err := Cosimulate(spec, w, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.SoCFinished != w.SoCRequests {
			t.Errorf("%v: %d/%d SoC requests finished", p, r.SoCFinished, w.SoCRequests)
		}
		if r.PIMSlowdown < 0.999 {
			t.Errorf("%v: PIM ran faster than isolated (%.3f)", p, r.PIMSlowdown)
		}
		if r.SoCMeanLatency <= 0 {
			t.Errorf("%v: no SoC latency recorded", p)
		}
		results[p] = r
	}

	// PIM-first: the PIM job is unharmed, SoC traffic starves the most.
	if results[PIMFirst].PIMSlowdown > 1.05 {
		t.Errorf("PIM-first slowed PIM by %.3f", results[PIMFirst].PIMSlowdown)
	}
	if results[PIMFirst].SoCMeanLatency <= results[SoCFirst].SoCMeanLatency {
		t.Errorf("PIM-first SoC latency (%.0f) not above SoC-first (%.0f)",
			results[PIMFirst].SoCMeanLatency, results[SoCFirst].SoCMeanLatency)
	}
	// SoC-first trades PIM time for SoC latency.
	if results[SoCFirst].PIMSlowdown <= results[PIMFirst].PIMSlowdown {
		t.Errorf("SoC-first did not slow PIM: %.3f vs %.3f",
			results[SoCFirst].PIMSlowdown, results[PIMFirst].PIMSlowdown)
	}
	// Dual row buffer dominates: near-isolated PIM time AND lower SoC
	// latency than either shared-buffer policy.
	if results[DualRowBuffer].PIMSlowdown > results[SoCFirst].PIMSlowdown {
		t.Errorf("dual row buffer PIM slowdown %.3f worse than SoC-first %.3f",
			results[DualRowBuffer].PIMSlowdown, results[SoCFirst].PIMSlowdown)
	}
	if results[DualRowBuffer].SoCMeanLatency >= results[PIMFirst].SoCMeanLatency {
		t.Errorf("dual row buffer SoC latency %.0f not below PIM-first %.0f",
			results[DualRowBuffer].SoCMeanLatency, results[PIMFirst].SoCMeanLatency)
	}
}

func TestCosimulateValidation(t *testing.T) {
	spec := schedSpec()
	w := DefaultWorkload()
	w.PIMPasses = 0
	if _, err := Cosimulate(spec, w, PIMFirst); err == nil {
		t.Error("zero passes accepted")
	}
	w = DefaultWorkload()
	w.SoCRate = 0
	if _, err := Cosimulate(spec, w, PIMFirst); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range Policies() {
		if p.String() == "" {
			t.Errorf("empty name for policy %d", p)
		}
	}
}

func TestSoCStreamPacing(t *testing.T) {
	spec := schedSpec()
	w := DefaultWorkload()
	reqs := socStream(spec, w)
	if len(reqs) != w.SoCRequests {
		t.Fatalf("stream length %d", len(reqs))
	}
	// Arrivals are non-decreasing and pace at ~1/rate.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
	span := float64(reqs[len(reqs)-1].Arrival)
	wantSpan := float64(w.SoCRequests) / w.SoCRate
	if span < 0.9*wantSpan || span > 1.1*wantSpan {
		t.Errorf("arrival span %.0f, want ~%.0f", span, wantSpan)
	}
}

// TestInterleavePathConsumesReadyRequests pins the interleave mechanism
// itself — the PendingReady/StepOne loop that slips SoC requests into
// free command slots between PIM MACs, now backed by the scheduler's
// incremental ready tracking. If interleaving broke (PendingReady stuck
// at 0 mid-pass, or StepOne refusing queue work between all-bank ops),
// every SoC request would wait for the PIM job tail and the mean latency
// would be on the order of the whole job; with interleaving it must sit
// far below that.
func TestInterleavePathConsumesReadyRequests(t *testing.T) {
	spec := schedSpec()
	w := DefaultWorkload()
	r, err := Cosimulate(spec, w, DualRowBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if r.SoCMeanLatency >= float64(r.PIMCycles)/2 {
		t.Errorf("mean SoC latency %.0f suggests no interleaving (PIM job spans %d cycles)",
			r.SoCMeanLatency, r.PIMCycles)
	}
	// P99 must also stay below the job span: interleaving serves the
	// tail of the SoC stream during the job, not after it.
	if r.SoCP99Latency >= float64(r.PIMCycles) {
		t.Errorf("p99 SoC latency %.0f not below PIM job span %d", r.SoCP99Latency, r.PIMCycles)
	}
}

func TestHigherSoCRateHurtsMore(t *testing.T) {
	spec := schedSpec()
	low := DefaultWorkload()
	low.SoCRate = 0.05
	high := DefaultWorkload()
	high.SoCRate = 0.5
	rLow, err := Cosimulate(spec, low, SoCFirst)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := Cosimulate(spec, high, SoCFirst)
	if err != nil {
		t.Fatal(err)
	}
	if rHigh.PIMSlowdown < rLow.PIMSlowdown {
		t.Errorf("heavier SoC traffic reduced PIM slowdown: %.3f vs %.3f",
			rHigh.PIMSlowdown, rLow.PIMSlowdown)
	}
}
