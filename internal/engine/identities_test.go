package engine

import (
	"math"
	"testing"
)

// Numerical identities that tie the metric definitions together; they
// guard against accounting regressions.

func TestTTLTDecomposition(t *testing.T) {
	s := jetsonSystem(t)
	for _, k := range Kinds() {
		for _, pd := range [][2]int{{8, 4}, {32, 16}, {64, 64}} {
			ttft, err := s.TTFT(k, pd[0])
			if err != nil {
				t.Fatal(err)
			}
			dec, err := s.DecodeSeconds(k, pd[0], pd[1])
			if err != nil {
				t.Fatal(err)
			}
			ttlt, err := s.TTLT(k, pd[0], pd[1])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ttlt-(ttft+dec)) > 1e-12 {
				t.Errorf("%v P%d/D%d: TTLT %.9f != TTFT %.9f + decode %.9f",
					k, pd[0], pd[1], ttlt, ttft, dec)
			}
		}
	}
}

func TestDecodeSecondsAdditivity(t *testing.T) {
	// Decode over D tokens equals the sum of the individual steps.
	s := jetsonSystem(t)
	const p, d = 16, 10
	total, err := s.DecodeSeconds(FACIL, p, d)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for step := 1; step < d; step++ {
		st, err := s.DecodeStepSeconds(FACIL, p+step)
		if err != nil {
			t.Fatal(err)
		}
		sum += st
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Errorf("DecodeSeconds %.9f != sum of steps %.9f", total, sum)
	}
}

func TestDecodeStepMonotoneInContext(t *testing.T) {
	// Growing KV context can only lengthen a decode step.
	s := jetsonSystem(t)
	for _, k := range []Kind{SoCOnly, FACIL} {
		prev := 0.0
		for _, ctx := range []int{1, 16, 64, 256, 1024} {
			st, err := s.DecodeStepSeconds(k, ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st < prev {
				t.Errorf("%v: step shrank with context at ctx=%d", k, ctx)
			}
			prev = st
		}
	}
}

func TestDecodeStepBreakdownSumsToStep(t *testing.T) {
	s := jetsonSystem(t)
	for _, k := range []Kind{SoCOnly, FACIL} {
		b, err := s.DecodeStepBreakdown(k, 64)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.DecodeStepSeconds(k, 64)
		if err != nil {
			t.Fatal(err)
		}
		sum := b.LinearSeconds + b.AttentionSeconds + b.OtherSeconds
		if math.Abs(sum-st)/st > 1e-9 {
			t.Errorf("%v: breakdown %.9f != step %.9f", k, sum, st)
		}
	}
}

func TestTTFTMonotoneInPrefill(t *testing.T) {
	s := jetsonSystem(t)
	for _, k := range Kinds() {
		prev := 0.0
		for _, l := range []int{1, 4, 16, 64, 256} {
			ttft, err := s.TTFT(k, l)
			if err != nil {
				t.Fatal(err)
			}
			if ttft+1e-15 < prev {
				t.Errorf("%v: TTFT shrank at prefill %d (%.6f < %.6f)", k, l, ttft, prev)
			}
			prev = ttft
		}
	}
}

func TestHybridStaticEqualsSoCOnlyPlusRelayout(t *testing.T) {
	s := jetsonSystem(t)
	re, err := s.RelayoutAllWeightsSeconds()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{8, 64} {
		socT, err := s.TTFTStatic(SoCOnly, l)
		if err != nil {
			t.Fatal(err)
		}
		hy, err := s.TTFTStatic(HybridStatic, l)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hy-(socT+re)) > 1e-12 {
			t.Errorf("P%d: hybrid TTFT %.9f != SoC %.9f + relayout %.9f", l, hy, socT, re)
		}
	}
}

func TestFACILTTFTIsSlowdownScaledSoC(t *testing.T) {
	s := jetsonSystem(t)
	socT, err := s.TTFTStatic(SoCOnly, 32)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := s.TTFTStatic(FACIL, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := socT * (1 + s.Platform.GEMMSlowdown)
	if math.Abs(fa-want)/want > 1e-9 {
		t.Errorf("FACIL TTFT %.9f != slowdown-scaled SoC %.9f", fa, want)
	}
}
