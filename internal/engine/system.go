// Package engine assembles the full FACIL evaluation stack: a platform
// (SoC roofline model + DRAM spec), an LLM, a PIM device simulation, a
// re-layout cost engine and the FACIL mapping machinery. It computes the
// paper's end-to-end metrics — time-to-first-token (TTFT) and
// time-to-last-token (TTLT) — for each of the compared designs:
//
//   - SoCOnly: weights in the conventional mapping, everything on the SoC.
//   - HybridStatic: single weight copy in PIM layout; prefill GEMMs on the
//     SoC after an on-demand re-layout of each matrix; decode on PIM.
//   - HybridDynamic: HybridStatic plus the profiling-based choice to run
//     short prefills directly on PIM (paper Sec. VI-C).
//   - FACIL: flexible mapping lets the SoC run GEMMs directly on the
//     PIM-laid-out weights (worst-case Table III slowdown applied), no
//     re-layout ever; includes the dynamic prefill offload.
//   - WeightDuplication: two weight copies (Fig. 5(a)) — fast but 2x
//     memory.
package engine

import (
	"fmt"

	"facil/internal/llm"
	"facil/internal/mapping"
	"facil/internal/parallel"
	"facil/internal/pim"
	"facil/internal/relayout"
	"facil/internal/soc"
)

// Kind selects an execution design.
type Kind int

// The compared designs.
const (
	SoCOnly Kind = iota
	HybridStatic
	HybridDynamic
	FACIL
	WeightDuplication
)

// String names the design as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case SoCOnly:
		return "SoC-only"
	case HybridStatic:
		return "hybrid static"
	case HybridDynamic:
		return "hybrid dynamic"
	case FACIL:
		return "FACIL"
	case WeightDuplication:
		return "weight duplication"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists all designs in presentation order.
func Kinds() []Kind {
	return []Kind{SoCOnly, HybridStatic, HybridDynamic, FACIL, WeightDuplication}
}

// Config tunes secondary modeling constants.
type Config struct {
	// OtherFraction sizes the non-linear per-token work (norms,
	// softmax, rope, sampling, kernel launches) that stays on the SoC,
	// as a fraction of the SoC's decode-phase linear time. The paper's
	// Fig. 2(a) shows linear ops take >90% of decode time, so the
	// default is 0.09.
	OtherFraction float64
	// RelayoutSampleBytes bounds the re-layout simulation window.
	RelayoutSampleBytes int64
	// PIM overrides the default AiM configuration when non-nil.
	PIM *pim.Config
}

// DefaultConfig returns the paper-calibrated constants.
func DefaultConfig() Config {
	return Config{OtherFraction: 0.09}
}

// System is one platform+model evaluation stack.
//
// A System is safe for concurrent use by multiple goroutines: every
// query-path field is immutable after NewSystem returns, and the
// memoization caches (here and in the pim.Device and relayout.Engine it
// owns) are internally synchronized with in-flight deduplication, so
// concurrent misses on the same key compute the value exactly once and
// all callers observe identical results.
type System struct {
	Platform soc.Platform
	Model    llm.Model
	cfg      Config

	mem      mapping.MemoryConfig
	table    *mapping.Table
	pimDev   *pim.Device
	relayout *relayout.Engine

	// weights caches the model's weight matrices with their placement.
	weights []placedWeight
	// decodeCache memoizes per-step decode latencies by (kind, ctx),
	// deduplicating concurrent misses so a worker storm computes each
	// step exactly once.
	decodeCache parallel.Flight[decodeKey, float64]
}

type placedWeight struct {
	w      llm.WeightMatrix
	matrix mapping.MatrixConfig
	sel    mapping.Selection
	count  int // instances (layers or 1)
}

type decodeKey struct {
	kind Kind
	ctx  int
}

// NewSystem builds the stack for a platform and model.
func NewSystem(p soc.Platform, m llm.Model, cfg Config) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.OtherFraction < 0 || cfg.OtherFraction >= 1 {
		return nil, fmt.Errorf("engine: OtherFraction %g out of [0,1)", cfg.OtherFraction)
	}
	s := &System{
		Platform: p,
		Model:    m,
		cfg:      cfg,
		mem:      mapping.MemoryConfig{Geometry: p.Spec.Geometry, HugePageBytes: 2 << 20},
	}
	pimCfg := pim.DefaultAiM(p.Spec.Geometry)
	if cfg.PIM != nil {
		pimCfg = *cfg.PIM
	}
	var err error
	if s.table, err = mapping.NewTable(s.mem, pimCfg.Chunk); err != nil {
		return nil, err
	}
	if s.pimDev, err = pim.NewDevice(p.Spec, pimCfg); err != nil {
		return nil, err
	}
	if s.relayout, err = relayout.NewEngine(p.Spec, s.table, cfg.RelayoutSampleBytes); err != nil {
		return nil, err
	}
	for _, w := range m.WeightMatrices() {
		matrix := w.Matrix(m.DTypeBytes)
		sel, err := mapping.SelectMapping(matrix, s.mem, pimCfg.Chunk)
		if err != nil {
			return nil, err
		}
		count := 1
		if w.PerLayer {
			count = m.Layers
		}
		s.weights = append(s.weights, placedWeight{w: w, matrix: matrix, sel: sel, count: count})
	}
	return s, nil
}

// PIMDevice exposes the PIM simulation (for Fig. 3-style analyses).
func (s *System) PIMDevice() *pim.Device { return s.pimDev }

// Relayout exposes the re-layout engine.
func (s *System) Relayout() *relayout.Engine { return s.relayout }

// Table exposes the mapping table.
func (s *System) Table() *mapping.Table { return s.table }

// WeightFootprint returns the memory the design holds for weights:
// WeightDuplication stores two copies.
func (s *System) WeightFootprint(k Kind) int64 {
	b := s.Model.TotalWeightBytes()
	if k == WeightDuplication {
		return 2 * b
	}
	return b
}
